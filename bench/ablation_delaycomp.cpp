// Ablation: delay compensation (Section 3.3).  Compares the paper's
// adaptive algorithm (anchor on the observed schedule arrival) against
// anchoring on the proxy's clock stamp and against no early transition at
// all, under realistic access-point jitter.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  struct Mode {
    const char* name;
    client::CompensationMode mode;
  };
  const std::vector<Mode> modes{
      {"adaptive (paper)", client::CompensationMode::Adaptive},
      {"proxy clock", client::CompensationMode::ProxyClock},
      {"no early transition", client::CompensationMode::None},
  };

  std::vector<exp::sweep::Item> items;
  for (const auto& m : modes) {
    items.push_back({m.name, exp::ScenarioBuilder{}
                                 .video(5, 0)
                                 .policy(exp::IntervalPolicy::Fixed100)
                                 .seed(42)
                                 .duration_s(140.0)
                                 .compensation(m.mode)
                                 // Pronounced AP jitter, as on real hardware.
                                 .ap_jitter(0.08, sim::Time::ms(8))
                                 .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Ablation: delay compensation algorithms"};
  auto& sec = rep.section();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& clients = sweep.outcomes[i].record.clients;
    std::uint64_t miss = 0, pkts = 0;
    for (const auto& c : clients) {
      miss += c.schedules_missed;
      pkts += c.packets_missed;
    }
    sec.row()
        .cell("algorithm", modes[i].name)
        .cell("avg%", exp::summarize_all(clients).avg, 1)
        .cell("loss%", exp::average_loss_pct(clients), 2)
        .cell("sched-miss", miss)
        .cell("missed-pkts", pkts);
  }
  rep.note(
      "the adaptive anchor absorbs access-point delay shifts; fixed anchors "
      "miss schedules whenever the path delay drifts.");
  return bench::emit(rep, opts);
}

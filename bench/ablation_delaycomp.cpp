// Ablation: delay compensation (Section 3.3).  Compares the paper's
// adaptive algorithm (anchor on the observed schedule arrival) against
// anchoring on the proxy's clock stamp and against no early transition at
// all, under realistic access-point jitter.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Ablation: delay compensation algorithms");

  struct Mode {
    const char* name;
    client::CompensationMode mode;
  };
  const std::vector<Mode> modes{
      {"adaptive (paper)", client::CompensationMode::Adaptive},
      {"proxy clock", client::CompensationMode::ProxyClock},
      {"no early transition", client::CompensationMode::None},
  };

  std::vector<exp::ScenarioConfig> cfgs;
  for (const auto& m : modes) {
    exp::ScenarioConfig cfg;
    cfg.roles = std::vector<int>(5, 0);
    cfg.policy = exp::IntervalPolicy::Fixed100;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfg.compensation = m.mode;
    // Pronounced AP jitter, as on real hardware.
    net::AccessPointParams ap;
    ap.p_spike = 0.08;
    ap.spike_max = sim::Time::ms(8);
    cfg.ap = ap;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-22s %8s %8s %10s %14s\n", "algorithm", "avg%", "loss%",
              "sched-miss", "missed-pkts");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    std::uint64_t miss = 0, pkts = 0;
    for (const auto& c : results[i].clients) {
      miss += c.schedules_missed;
      pkts += c.packets_missed;
    }
    std::printf("%-22s %8.1f %8.2f %10llu %14llu\n", modes[i].name,
                exp::summarize_all(results[i].clients).avg,
                exp::average_loss_pct(results[i].clients),
                static_cast<unsigned long long>(miss),
                static_cast<unsigned long long>(pkts));
  }
  std::printf(
      "\nthe adaptive anchor absorbs access-point delay shifts; fixed "
      "anchors miss\nschedules whenever the path delay drifts.\n");
  return 0;
}

// Robustness check: the headline Figure-4 numbers replicated across eight
// seeds, with 95% confidence intervals.  The paper's orderings should hold
// not just for one lucky seed.
#include <cstdio>

#include "bench_util.hpp"
#include "exp/replicate.hpp"

int main() {
  using namespace pp;
  bench::heading("Replication: Figure-4 cells across 8 seeds");

  std::printf("%-10s %-10s %8s %8s %10s %8s %8s\n", "pattern", "interval",
              "mean%", "±95CI", "stddev", "min%", "max%");
  struct Cell {
    const char* pattern;
    std::vector<int> roles;
    exp::IntervalPolicy policy;
    const char* interval;
  };
  const std::vector<Cell> cells{
      {"56K", std::vector<int>(10, 0), exp::IntervalPolicy::Fixed500, "500ms"},
      {"56K", std::vector<int>(10, 0), exp::IntervalPolicy::Fixed100, "100ms"},
      {"512K", std::vector<int>(10, 3), exp::IntervalPolicy::Fixed500, "500ms"},
      {"512K", std::vector<int>(10, 3), exp::IntervalPolicy::Variable, "var"},
  };
  std::vector<exp::ReplicateStats> stats;
  for (const auto& cell : cells) {
    exp::ScenarioConfig cfg;
    cfg.roles = cell.roles;
    cfg.policy = cell.policy;
    cfg.duration_s = 140.0;
    const auto s = exp::replicate_saved(cfg, 8);
    stats.push_back(s);
    std::printf("%-10s %-10s %8.2f %8.2f %10.2f %8.2f %8.2f\n", cell.pattern,
                cell.interval, s.mean, s.ci95(), s.stddev, s.min, s.max);
  }

  // The orderings must be statistically solid, not within-CI ties.
  const bool interval_ordering =
      stats[0].mean - stats[0].ci95() > stats[1].mean + stats[1].ci95();
  const bool variable_between =
      stats[3].mean < stats[2].mean + stats[2].ci95();
  std::printf("\n500ms > 100ms beyond CIs: %s\n",
              interval_ordering ? "yes" : "NO");
  std::printf("variable <= 500ms (512K): %s\n",
              variable_between ? "yes" : "NO");
  return 0;
}

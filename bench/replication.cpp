// Robustness check: the headline Figure-4 numbers replicated across eight
// seeds, with 95% confidence intervals.  The paper's orderings should hold
// not just for one lucky seed.
//
// replicate_saved varies the seed internally, so these runs do not go
// through the result cache; they still ride the work-stealing pool.
#include "bench/battery.hpp"
#include "exp/builder.hpp"
#include "exp/replicate.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  struct Cell {
    const char* pattern;
    std::vector<int> roles;
    exp::IntervalPolicy policy;
    const char* interval;
  };
  const std::vector<Cell> cells{
      {"56K", std::vector<int>(10, 0), exp::IntervalPolicy::Fixed500, "500ms"},
      {"56K", std::vector<int>(10, 0), exp::IntervalPolicy::Fixed100, "100ms"},
      {"512K", std::vector<int>(10, 3), exp::IntervalPolicy::Fixed500, "500ms"},
      {"512K", std::vector<int>(10, 3), exp::IntervalPolicy::Variable, "var"},
  };

  bench::Report rep{"Replication: Figure-4 cells across 8 seeds"};
  auto& sec = rep.section();
  std::vector<exp::ReplicateStats> stats;
  for (const auto& cell : cells) {
    const auto cfg = exp::ScenarioBuilder{}
                         .roles(cell.roles)
                         .policy(cell.policy)
                         .duration_s(140.0)
                         .build();
    const auto s = exp::replicate_saved(cfg, 8);
    stats.push_back(s);
    sec.row()
        .cell("pattern", cell.pattern)
        .cell("interval", cell.interval)
        .cell("mean%", s.mean, 2)
        .cell("ci95", s.ci95(), 2)
        .cell("stddev", s.stddev, 2)
        .cell("min%", s.min, 2)
        .cell("max%", s.max, 2);
  }

  // The orderings must be statistically solid, not within-CI ties.
  const bool interval_ordering =
      stats[0].mean - stats[0].ci95() > stats[1].mean + stats[1].ci95();
  const bool variable_between = stats[3].mean < stats[2].mean + stats[2].ci95();
  rep.note(std::string("500ms > 100ms beyond CIs: ") +
           (interval_ordering ? "yes" : "NO"));
  rep.note(std::string("variable <= 500ms (512K): ") +
           (variable_between ? "yes" : "NO"));
  return bench::emit(rep, opts);
}

// Section 4.3 "Comparison to optimal": the closed-form optimal energy
// saving for each stream fidelity versus what the scheduled clients
// actually achieve (ten identical clients, 500 ms interval).
//
// Paper reference: optimal 90 / 83 / 77 % for 56K / 256K / 512K, versus
// measured 77 / 66 / 53 %; the median client lands within 10-15% of
// optimal.  Best-case 512K clients can *exceed* the 512K optimal because
// stream adaptation downshifts their stream (the anomaly discussed there).
//
// These runs keep their wireless trace (optimal airtime is integrated from
// it), so the engine treats them as uncacheable and always runs live.
#include "bench/battery.hpp"
#include "energy/wnic.hpp"
#include "exp/builder.hpp"
#include "workload/video.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::vector<int> fidelities{0, 2, 3};
  std::vector<exp::sweep::Item> items;
  for (int f : fidelities) {
    items.push_back({exp::role_name(f),
                     exp::ScenarioBuilder{}
                         .video(10, f)
                         .policy(exp::IntervalPolicy::Fixed500)
                         .seed(42)
                         .duration_s(140.0)
                         .keep_trace()
                         .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Comparison to optimal (ten clients, 500 ms interval)"};
  auto& sec = rep.section();
  const char* paper[] = {"90/77", "83/66", "77/53"};
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& res = *sweep.outcomes[i].live;
    // t_opt: airtime to receive the whole stream back to back, from the
    // actual bytes delivered and the calibrated channel cost.
    double total_airtime_s = 0;
    for (const auto& r : res.trace) {
      if (r.from_ap && !r.is_broadcast() && r.dst == res.clients[0].ip)
        total_airtime_s += r.airtime.to_seconds();
    }
    energy::OptimalInput in{140.0, total_airtime_s, {}};
    const double opt = 100.0 * energy::optimal_energy_saved_fraction(in);
    const auto s = exp::summarize_all(res.clients);
    sec.row()
        .cell("stream", exp::role_name(fidelities[i]))
        .cell("optimal%", opt, 1)
        .cell("measured%", s.avg, 1)
        .cell("best%", s.max, 1)
        .cell("gap-pts", opt - s.avg, 1)
        .cell("paper(opt/meas)", paper[i]);
  }
  rep.note(
      "paper's headline claim: savings within 10-15% of optimal are common.");
  return bench::emit(rep, opts);
}

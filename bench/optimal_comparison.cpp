// Section 4.3 "Comparison to optimal": the closed-form optimal energy
// saving for each stream fidelity versus what the scheduled clients
// actually achieve (ten identical clients, 500 ms interval).
//
// Paper reference: optimal 90 / 83 / 77 % for 56K / 256K / 512K, versus
// measured 77 / 66 / 53 %; the median client lands within 10-15% of
// optimal.  Best-case 512K clients can *exceed* the 512K optimal because
// stream adaptation downshifts their stream (the anomaly discussed there).
#include <cstdio>

#include "bench_util.hpp"
#include "energy/wnic.hpp"
#include "workload/video.hpp"

int main() {
  using namespace pp;
  bench::heading("Comparison to optimal (ten clients, 500 ms interval)");

  std::vector<exp::ScenarioConfig> cfgs;
  std::vector<int> fidelities{0, 2, 3};
  for (int f : fidelities) {
    exp::ScenarioConfig cfg;
    cfg.roles = std::vector<int>(10, f);
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfg.keep_trace = true;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-8s %10s %10s %10s %12s %12s\n", "stream", "optimal%",
              "measured%", "best%", "gap(pts)", "paper(opt/meas)");
  const char* paper[] = {"90/77", "83/66", "77/53"};
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const int f = fidelities[i];
    // t_opt: airtime to receive the whole stream back to back, from the
    // actual bytes delivered and the calibrated channel cost.
    double total_airtime_s = 0;
    double span_s = cfgs[i].duration_s;
    for (const auto& r : results[i].trace) {
      if (r.from_ap && !r.is_broadcast() &&
          r.dst == results[i].clients[0].ip)
        total_airtime_s += r.airtime.to_seconds();
    }
    energy::OptimalInput in{span_s, total_airtime_s, {}};
    const double opt = 100.0 * energy::optimal_energy_saved_fraction(in);
    const auto s = exp::summarize_all(results[i].clients);
    std::printf("%-8s %10.1f %10.1f %10.1f %12.1f %12s\n",
                exp::role_name(f).c_str(), opt, s.avg, s.max, opt - s.avg,
                paper[i]);
  }
  std::printf(
      "\npaper's headline claim: savings within 10-15%% of optimal are "
      "common.\n");
  return 0;
}

// Smoke test for the battery pipeline (ctest label: bench-smoke).
//
// Runs a tiny three-item sweep twice against a fresh cache directory and
// asserts the engine's core contract end to end:
//   - the first (cold) pass runs everything live and stores it,
//   - the second (warm) pass is pure cache hits — zero simulations,
//   - both passes render byte-identical JSON and identical run digests.
//
// Exits nonzero with a diagnostic on any violation.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/battery.hpp"
#include "exp/builder.hpp"

namespace {

pp::bench::Report render(const pp::exp::sweep::SweepResult& sweep) {
  using namespace pp;
  bench::Report rep{"bench smoke battery"};
  auto& sec = rep.section();
  for (const auto& oc : sweep.outcomes) {
    const auto s = exp::summarize_all(oc.record.clients);
    sec.row()
        .cell("scenario", oc.label)
        .cell("avg%", s.avg, 2)
        .cell("loss%", exp::average_loss_pct(oc.record.clients), 2)
        .cell("digest", oc.record.digest);
  }
  return rep;
}

int fail(const char* what) {
  std::fprintf(stderr, "bench_smoke FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  auto opts = bench::parse_args(argc, argv);
  opts.progress = false;

  namespace fs = std::filesystem;
  fs::path cache_dir;
  if (opts.cache_dir.empty()) {
    cache_dir = fs::temp_directory_path() /
                ("pp-bench-smoke." + std::to_string(::getpid()));
    opts.cache_dir = cache_dir.string();
  } else {
    cache_dir = opts.cache_dir;
  }
  std::error_code ec;
  fs::remove_all(cache_dir, ec);  // guarantee the first pass is cold

  std::vector<exp::sweep::Item> items;
  items.push_back({"video-2x56K", exp::ScenarioBuilder{}
                                      .video(2, 0)
                                      .policy(exp::IntervalPolicy::Fixed500)
                                      .seed(11)
                                      .duration_s(8.0)
                                      .build()});
  items.push_back({"web-x2", exp::ScenarioBuilder{}
                                 .web(2)
                                 .policy(exp::IntervalPolicy::Fixed100)
                                 .seed(12)
                                 .duration_s(8.0)
                                 .build()});
  items.push_back({"lossy-mixed", exp::ScenarioBuilder{}
                                      .video(1, 1)
                                      .web(1)
                                      .policy(exp::IntervalPolicy::Variable)
                                      .seed(13)
                                      .duration_s(8.0)
                                      .wireless_p_loss(0.05)
                                      .build()});

  const auto cold = bench::run_battery(items, opts);
  const auto warm = bench::run_battery(items, opts);
  fs::remove_all(cache_dir, ec);

  if (cold.stats.hits != 0) return fail("cold pass had cache hits");
  if (cold.stats.misses != items.size()) {
    return fail("cold pass did not run every item");
  }
  if (warm.stats.hits != items.size()) {
    return fail("warm pass was not pure cache hits");
  }
  if (warm.stats.misses != 0 || warm.stats.uncacheable != 0) {
    return fail("warm pass ran simulations");
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (cold.outcomes[i].record.digest != warm.outcomes[i].record.digest) {
      return fail("digest mismatch between cold and warm pass");
    }
    if (cold.outcomes[i].record.digest == 0) {
      return fail("zero digest (observability disabled?)");
    }
  }
  const std::string cold_json = render(cold).json();
  const std::string warm_json = render(warm).json();
  if (cold_json != warm_json) {
    return fail("warm JSON is not byte-identical to cold JSON");
  }

  std::printf("bench_smoke OK: %zu items cold->warm, all hits, %zu-byte "
              "JSON identical\n",
              items.size(), cold_json.size());
  return 0;
}

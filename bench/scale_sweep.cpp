// Multi-cell scale sweep: aggregate throughput of the lockstep-epoch
// engine on a large mostly-idle fleet (E17).
//
// The full configuration is 16 cells x 6250 clients = 100k clients: a few
// video and web clients per cell generate in-cell load, deterministic
// backbone cross-traffic touches the idle majority, and per-client
// observability is off (the flat SoA counters and cell-level streams
// remain).  Reported metrics are aggregate simulated events per wall
// second and delivered bytes per client-second, plus the parallel speedup
// over a serial (1-worker) pass of the same fleet.
//
// --smoke shrinks the fleet (4 cells x 250 clients, 2 s) for the
// bench-smoke ctest label; that mode also re-runs the fleet at the
// resolved worker count and asserts the replay digest is bit-identical to
// the serial pass — the cross-thread determinism property the multi-cell
// engine guarantees.  --check=FILE re-measures the smoke fleet and gates
// events/sec against the committed BENCH_scale.json row (tolerance from
// PP_PERF_TOLERANCE, default 0.5 — CI machines are noisy and small).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "exp/multicell.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"

namespace {

int g_failures = 0;

void expect_ok(bool ok, const char* what) {
  if (ok) {
    std::printf("  ok   %s\n", what);
  } else {
    std::printf("  FAIL %s\n", what);
    ++g_failures;
  }
}

struct FleetSpec {
  const char* tag;
  int cells;
  int clients_per_cell;
  double seconds;
};

pp::exp::MultiCellConfig fleet_config(const FleetSpec& spec) {
  using namespace pp;
  exp::MultiCellConfig mc;
  mc.num_cells = spec.cells;
  // Per cell: four 128K video streams and four web browsers drive in-cell
  // load; everyone else is idle (associated, power-managed, reachable
  // over the backbone).  This is the mix that makes 100k tractable — the
  // paper's cell holds ~10 active clients, and the fleet scales by adding
  // mostly-quiet cells, not by making one cell absurd.
  const int active_video = std::min(4, spec.clients_per_cell);
  const int active_web =
      std::min(4, std::max(0, spec.clients_per_cell - active_video));
  mc.cell.roles.assign(static_cast<std::size_t>(spec.clients_per_cell),
                       exp::kRoleIdle);
  for (int i = 0; i < active_video; ++i) mc.cell.roles[i] = 1;  // 128K
  for (int i = 0; i < active_web; ++i)
    mc.cell.roles[active_video + i] = exp::kRoleWeb;
  mc.cell.policy = exp::IntervalPolicy::Fixed500;
  mc.cell.seed = 2026;
  mc.cell.duration_s = spec.seconds;
  mc.cell.video_start_s = 1.0;
  mc.cell.video_spacing_s = 0.25;
  mc.cell.web_pages = 2;
  mc.cell.per_client_obs = false;  // cell-level streams only at scale
  mc.backbone_latency = sim::Time::ms(20);
  mc.cross.period = sim::Time::ms(100);
  mc.cross.bytes = 600;
  mc.cross.fanout = 4;
  return mc;
}

struct Measurement {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
  std::uint64_t backbone = 0;
  std::uint64_t digest = 0;
};

Measurement measure(const pp::exp::MultiCellConfig& mc, unsigned threads) {
  // pp-lint: allow(wall-clock): perf harness; wall time is the measurement
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  pp::exp::MultiCellResult res = pp::exp::run_multicell(mc, threads);
  const auto t1 = clock::now();
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = res.events_total;
  m.backbone = res.backbone_messages;
  m.digest = res.digest;
  for (const auto& cell : res.cells)
    for (const auto& c : cell.clients) m.bytes += c.bytes_received;
  return m;
}

// Pull `"events_per_sec":<num>` out of the row tagged `"bench":"<tag>"`.
double baseline_events_per_sec(const std::string& doc,
                               const std::string& tag) {
  const std::string row_tag = "\"bench\":\"" + tag + "\"";
  const std::size_t row = doc.find(row_tag);
  if (row == std::string::npos) return -1;
  const std::string key = "\"events_per_sec\":";
  const std::size_t val = doc.find(key, row);
  if (val == std::string::npos) return -1;
  return std::strtod(doc.c_str() + val + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;

  bool smoke = false;
  std::string out_path;
  std::string check_path;
  unsigned threads = 0;  // 0 = resolve from PP_THREADS / hardware
  int cells = 16;
  int per_cell = 6250;
  double seconds = 4.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    else if (arg.rfind("--check=", 0) == 0) check_path = arg.substr(8);
    else if (arg.rfind("--threads=", 0) == 0)
      threads = static_cast<unsigned>(std::atoi(arg.c_str() + 10));
    else if (arg.rfind("--cells=", 0) == 0) cells = std::atoi(arg.c_str() + 8);
    else if (arg.rfind("--clients=", 0) == 0)
      per_cell = std::atoi(arg.c_str() + 10);
    else if (arg.rfind("--seconds=", 0) == 0)
      seconds = std::atof(arg.c_str() + 10);
  }

  const bool smoke_only = smoke || !check_path.empty();
  std::vector<FleetSpec> specs;
  if (!smoke_only) specs.push_back(FleetSpec{"full", cells, per_cell, seconds});
  // The smoke fleet always runs: it carries the determinism checks and is
  // the row the CI gate compares against.
  specs.push_back(FleetSpec{"smoke", 4, 250, 2.0});

  bench::Report rep{"multi-cell scale sweep"};
  auto& sec = rep.section("aggregate throughput");
  double smoke_eps = 0;

  for (const FleetSpec& spec : specs) {
    const exp::MultiCellConfig mc = fleet_config(spec);
    const int total_clients = spec.cells * spec.clients_per_cell;
    const unsigned resolved = exp::resolve_threads(
        threads, static_cast<std::size_t>(spec.cells));

    std::printf("scale_sweep: %d cells x %d clients = %d, %.1f s horizon, "
                "%u worker(s)\n",
                spec.cells, spec.clients_per_cell, total_clients,
                spec.seconds, resolved);

    // Serial reference pass: the determinism anchor and the speedup
    // denominator.
    const Measurement serial = measure(mc, 1);
    Measurement par = serial;
    double speedup = 1.0;
    if (resolved > 1) {
      par = measure(mc, resolved);
      expect_ok(par.digest == serial.digest,
                "parallel digest bit-identical to serial");
      expect_ok(par.events == serial.events, "event count worker-invariant");
      speedup = par.wall_s > 0 ? serial.wall_s / par.wall_s : 0.0;
    } else if (smoke_only) {
      // One hardware thread: re-run serial and still require digest
      // stability across repeated runs.
      const Measurement again = measure(mc, 1);
      expect_ok(again.digest == serial.digest,
                "repeated serial digest bit-identical");
    }
    expect_ok(serial.digest != 0, "replay digest available (obs enabled)");
    expect_ok(serial.backbone > 0, "backbone carried cross-cell traffic");

    const double eps = par.wall_s > 0
                           ? static_cast<double>(par.events) / par.wall_s
                           : 0.0;
    if (std::strcmp(spec.tag, "smoke") == 0) smoke_eps = eps;
    const double bytes_per_client_sec =
        static_cast<double>(par.bytes) /
        (static_cast<double>(total_clients) * spec.seconds);

    sec.row()
        .cell("bench", spec.tag)
        .cell("cells", spec.cells)
        .cell("clients", total_clients)
        .cell("sim_s", spec.seconds, 1)
        .cell("threads", resolved)
        .cell("wall_s", par.wall_s, 2)
        .cell("events", par.events)
        .cell("events_per_sec", eps, 0)
        .cell("bytes_per_client_sec", bytes_per_client_sec, 1)
        .cell("backbone_msgs", par.backbone)
        .cell("speedup_vs_serial", speedup, 2);
  }
  rep.note("speedup_vs_serial is measured on this machine's core count; "
           "1.00 on a single-core runner is expected, not a regression");
  rep.note("refresh: Release build, quiet machine: "
           "scale_sweep --out=BENCH_scale.json");
  const double eps = smoke_eps;

  if (!check_path.empty()) {
    std::ifstream in{check_path};
    if (!in) {
      std::fprintf(stderr, "scale_sweep: cannot read baseline %s\n",
                   check_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    double tolerance = 0.5;
    if (const char* env = std::getenv("PP_PERF_TOLERANCE"))
      tolerance = std::strtod(env, nullptr);
    const double base = baseline_events_per_sec(ss.str(), "smoke");
    if (base <= 0) {
      std::fprintf(stderr, "scale_sweep: smoke baseline row missing in %s\n",
                   check_path.c_str());
      return 2;
    }
    const double floor = base * (1.0 - tolerance);
    const bool ok = eps >= floor;
    std::printf("smoke %12.0f ev/s  baseline %12.0f  floor %12.0f  %s\n",
                eps, base, floor, ok ? "OK" : "REGRESSED");
    if (!ok) {
      std::fprintf(stderr,
                   "scale_sweep: events/sec regressed beyond %.0f%% "
                   "(set PP_PERF_TOLERANCE to adjust)\n",
                   tolerance * 100.0);
      return 1;
    }
  }

  if (!out_path.empty()) {
    std::ofstream out{out_path};
    out << rep.json() << "\n";
  }
  rep.print();
  if (g_failures > 0) {
    std::fprintf(stderr, "scale_sweep: %d check(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}

// Section 4.3 drop studies.
//
// (a) Netfilter-style experiment: packets that arrive while the client
//     sleeps really are dropped (that is how our medium always behaves);
//     measure the ftp transfer-time inflation versus an always-on client.
// (b) DummyNet-style experiment: a 4 Mb/s channel with ~2 ms RTT and a 5%
//     random drop rate.
//
// Paper reference: dropping packets while asleep costs no more than a 10%
// increase in transmission time (=> no more than ~5% extra energy), because
// the proxy-client RTT is small; the DummyNet run behaves similarly.
#include <cstdio>

#include "bench_util.hpp"

namespace {

pp::exp::ScenarioResult run_ftp(bool naive_like, double p_loss) {
  using namespace pp;
  exp::ScenarioConfig cfg;
  cfg.roles = {exp::kRoleFtp};
  cfg.policy = exp::IntervalPolicy::Fixed500;
  cfg.seed = 31;
  cfg.duration_s = 200.0;
  cfg.ftp_bytes = 2'000'000;
  if (naive_like) {
    // Direct baseline: no shaping, client always in high power.
    cfg.proxy_mode = proxy::ProxyMode::Passthrough;
    cfg.naive_clients = true;
  }
  if (p_loss > 0) {
    net::WirelessParams wp;
    wp.p_loss = p_loss;
    cfg.wireless = wp;
  }
  return exp::run_scenario(cfg);
}

}  // namespace

int main() {
  using namespace pp;
  bench::heading("Drop studies (2 MB ftp download)");

  const auto direct = run_ftp(/*naive_like=*/true, 0.0);
  const auto sched = run_ftp(/*naive_like=*/false, 0.0);
  const auto lossy = run_ftp(/*naive_like=*/false, 0.05);

  const double t_direct = direct.clients[0].ftp_seconds;
  const double t_sched = sched.clients[0].ftp_seconds;
  const double t_lossy = lossy.clients[0].ftp_seconds;

  std::printf("%-34s %12s %10s %10s\n", "configuration", "transfer(s)",
              "saved%", "loss%");
  std::printf("%-34s %12.2f %10.1f %10.2f\n", "direct (passthrough proxy)",
              t_direct, direct.clients[0].saved_pct,
              direct.clients[0].loss_pct);
  std::printf("%-34s %12.2f %10.1f %10.2f\n",
              "scheduled (drops while asleep)", t_sched,
              sched.clients[0].saved_pct, sched.clients[0].loss_pct);
  std::printf("%-34s %12.2f %10.1f %10.2f\n",
              "scheduled + 5% medium drop (4Mb/s)", t_lossy,
              lossy.clients[0].saved_pct, lossy.clients[0].loss_pct);

  if (t_direct > 0 && t_sched > 0) {
    std::printf(
        "\nscheduling slows the transfer %.1fx (bursts trade latency for "
        "energy);\n5%% random drops add %.1f%% on top of the scheduled "
        "time.\n",
        t_sched / t_direct,
        t_lossy > 0 ? 100.0 * (t_lossy - t_sched) / t_sched : -1.0);
  }
  std::printf(
      "paper: the *drop-when-asleep* effect itself is <= 10%% transfer-time "
      "increase\n(<= ~5%% energy), thanks to the short proxy-client RTT.\n");
  return 0;
}

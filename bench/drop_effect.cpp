// Section 4.3 drop studies.
//
// (a) Netfilter-style experiment: packets that arrive while the client
//     sleeps really are dropped (that is how our medium always behaves);
//     measure the ftp transfer-time inflation versus an always-on client.
// (b) DummyNet-style experiment: a 4 Mb/s channel with ~2 ms RTT and a 5%
//     random drop rate.
//
// Paper reference: dropping packets while asleep costs no more than a 10%
// increase in transmission time (=> no more than ~5% extra energy), because
// the proxy-client RTT is small; the DummyNet run behaves similarly.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

namespace {

pp::exp::ScenarioConfig ftp_cfg(bool naive_like, double p_loss) {
  using namespace pp;
  exp::ScenarioBuilder b;
  b.ftp()
      .policy(exp::IntervalPolicy::Fixed500)
      .seed(31)
      .duration_s(200.0)
      .ftp_bytes(2'000'000);
  if (naive_like) {
    // Direct baseline: no shaping, client always in high power.
    b.proxy_mode(proxy::ProxyMode::Passthrough).naive_clients();
  }
  if (p_loss > 0) {
    net::WirelessParams wp;
    wp.p_loss = p_loss;
    b.wireless(wp);
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::vector<exp::sweep::Item> items{
      {"direct", ftp_cfg(/*naive_like=*/true, 0.0)},
      {"scheduled", ftp_cfg(/*naive_like=*/false, 0.0)},
      {"scheduled+5%drop", ftp_cfg(/*naive_like=*/false, 0.05)},
  };
  const auto sweep = bench::run_battery(items, opts);

  const char* kNames[] = {"direct (passthrough proxy)",
                          "scheduled (drops while asleep)",
                          "scheduled + 5% medium drop (4Mb/s)"};
  bench::Report rep{"Drop studies (2 MB ftp download)"};
  auto& sec = rep.section();
  double t[3] = {0, 0, 0};
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& c = sweep.outcomes[i].record.clients[0];
    t[i] = c.ftp_seconds;
    sec.row()
        .cell("configuration", kNames[i])
        .cell("transfer-s", c.ftp_seconds, 2)
        .cell("saved%", c.saved_pct, 1)
        .cell("loss%", c.loss_pct, 2);
  }

  if (t[0] > 0 && t[1] > 0) {
    char note[192];
    std::snprintf(note, sizeof note,
                  "scheduling slows the transfer %.1fx (bursts trade latency "
                  "for energy); 5%% random drops add %.1f%% on top of the "
                  "scheduled time.",
                  t[1] / t[0],
                  t[2] > 0 ? 100.0 * (t[2] - t[1]) / t[1] : -1.0);
    rep.note(note);
  }
  rep.note(
      "paper: the *drop-when-asleep* effect itself is <= 10% transfer-time "
      "increase (<= ~5% energy), thanks to the short proxy-client RTT.");
  return bench::emit(rep, opts);
}

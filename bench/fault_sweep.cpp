// Graceful degradation under injected faults: how much energy do lost
// schedule broadcasts cost, and how much of that cost do the hardening
// knobs (proxy k-repeat of the SRP broadcast, client miss escalation) buy
// back?
//
// The fault battery models short correlated nulls — microwave bursts,
// channel scans — that clip the broadcast instant: every SRP, one client
// (round-robin) is deep-faded for [SRP-2ms, SRP+8ms), killing the original
// schedule frame on its channel.  With k=1 that client burns the rest of
// the interval awake (the paper's Section 4.3 worst case); with k>=2 and a
// 12 ms repeat spacing the second transmission lands after the null and
// resynchronizes it almost for free.  One access-point stall window rides
// along so the sweep also crosses a frozen-queue outage.
//
// The penalty column is energy above the fault-free baseline, per client.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  constexpr int kClients = 6;
  constexpr double kDuration = 120.0;

  struct Config {
    const char* name;
    bool faults;
    int repeats;
    bool escalation;
  };
  const std::vector<Config> rows{
      {"no-fault", false, 1, false},
      {"fault k=1", true, 1, false},
      {"fault k=2", true, 2, false},
      {"fault k=3", true, 3, false},
      {"fault k=2+esc", true, 2, true},
  };

  std::vector<exp::sweep::Item> items;
  for (const auto& r : rows) {
    items.push_back(
        {r.name, exp::ScenarioBuilder::fault_battery(kClients, kDuration,
                                                     r.faults)
                     .schedule_repeats(r.repeats)
                     .schedule_repeat_spacing(sim::Time::ms(12))  // clears null
                     .miss_escalation(r.escalation)
                     .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  const auto& clients0 = sweep.outcomes[0].record.clients;
  double base_energy = 0;
  for (const auto& c : clients0) base_energy += c.energy_mj;
  base_energy /= static_cast<double>(clients0.size());

  bench::Report rep{
      "Fault sweep: SRP-blackout fades + AP stall, k-repeat and escalation"};
  auto& sec = rep.section();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& cs = sweep.outcomes[i].record.clients;
    double energy = 0, saved = 0;
    std::uint64_t missed = 0, first = 0, repeats = 0, resyncs = 0, esc = 0,
                  deduped = 0;
    for (const auto& c : cs) {
      energy += c.energy_mj;
      saved += c.saved_pct;
      missed += c.schedules_missed;
      first += c.first_misses;
      repeats += c.repeat_misses;
      resyncs += c.resyncs;
      esc += c.escalated_sleeps;
      deduped += c.repeats_deduped;
    }
    const double n = static_cast<double>(cs.size());
    energy /= n;
    sec.row()
        .cell("config", rows[i].name)
        .cell("avg-mJ", energy, 1)
        .cell("penalty-mJ", energy - base_energy, 1)
        .cell("missed", missed)
        .cell("first", first)
        .cell("rep", repeats)
        .cell("resyncs", resyncs)
        .cell("esc", esc)
        .cell("deduped", deduped)
        .cell("saved%", saved / n, 1);
  }

  const auto& fs = sweep.outcomes[1].record.fault_stats;
  rep.note("fault layer (k=1 run): fade windows=" +
           std::to_string(fs.windows_activated) + "/" +
           std::to_string(fs.windows_recovered) +
           " fade_losses=" + std::to_string(fs.fade_losses));
  rep.note(
      "expected: k>=2 repeats shrink the energy penalty sharply vs k=1 (the "
      "staggered copy survives the null, so clients stop burning intervals "
      "awake); escalation stays roughly neutral on these one-SRP outages.");
  return bench::emit(rep, opts);
}

// Graceful degradation under injected faults: how much energy do lost
// schedule broadcasts cost, and how much of that cost do the hardening
// knobs (proxy k-repeat of the SRP broadcast, client miss escalation) buy
// back?
//
// The fault battery models short correlated nulls — microwave bursts,
// channel scans — that clip the broadcast instant: every SRP, one client
// (round-robin) is deep-faded for [SRP-2ms, SRP+8ms), killing the original
// schedule frame on its channel.  With k=1 that client burns the rest of
// the interval awake (the paper's Section 4.3 worst case); with k>=2 and a
// 12 ms repeat spacing the second transmission lands after the null and
// resynchronizes it almost for free.  One access-point stall window rides
// along so the sweep also crosses a frozen-queue outage.
//
// The penalty column is energy above the fault-free baseline, per client.
#include <cstdio>

#include "bench_util.hpp"

namespace {

constexpr int kClients = 6;
constexpr double kDuration = 120.0;

pp::exp::ScenarioConfig base_config() {
  pp::exp::ScenarioConfig cfg;
  cfg.roles = std::vector<int>(kClients, 1);  // six 128K video clients
  cfg.policy = pp::exp::IntervalPolicy::Fixed500;
  cfg.seed = 42;
  cfg.duration_s = kDuration;
  cfg.wireless_p_loss = 0.0;  // fades are the only channel loss
  return cfg;
}

void add_faults(pp::exp::ScenarioConfig& cfg) {
  using pp::sim::Time;
  // SRPs fire at 500 ms + k * 500 ms; blackout the broadcast instant for
  // client (k mod kClients).  Stop early enough that every window closes
  // before the horizon (the auditor requires recovery by end of run).
  for (int k = 0;; ++k) {
    const Time srp = Time::ms(500 + 500 * k);
    if (srp.to_seconds() >= kDuration - 0.1) break;
    cfg.fault.fade(pp::exp::testbed_client_ip(k % kClients),
                   srp - Time::ms(2), Time::ms(10));
  }
  cfg.fault.ap_stall(Time::seconds(60.0), Time::ms(800));
}

}  // namespace

int main() {
  using namespace pp;
  bench::heading(
      "Fault sweep: SRP-blackout fades + AP stall, k-repeat and escalation");

  struct Row {
    const char* name;
    bool faults;
    int repeats;
    bool escalation;
  };
  const std::vector<Row> rows{
      {"no-fault", false, 1, false},
      {"fault k=1", true, 1, false},
      {"fault k=2", true, 2, false},
      {"fault k=3", true, 3, false},
      {"fault k=2+esc", true, 2, true},
  };

  std::vector<exp::ScenarioConfig> cfgs;
  for (const auto& r : rows) {
    exp::ScenarioConfig cfg = base_config();
    if (r.faults) add_faults(cfg);
    cfg.schedule_repeats = r.repeats;
    cfg.schedule_repeat_spacing = sim::Time::ms(12);  // clears the null
    cfg.miss_escalation = r.escalation;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  const auto& clients0 = results[0].clients;
  double base_energy = 0;
  for (const auto& c : clients0) base_energy += c.energy_mj;
  base_energy /= static_cast<double>(clients0.size());

  std::printf("%-14s %10s %12s %7s %6s %6s %7s %6s %8s %8s\n", "config",
              "avg-mJ", "penalty-mJ", "missed", "first", "rep", "resyncs",
              "esc", "deduped", "saved%");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& cs = results[i].clients;
    double energy = 0, saved = 0;
    std::uint64_t missed = 0, first = 0, rep = 0, resyncs = 0, esc = 0,
                  deduped = 0;
    for (const auto& c : cs) {
      energy += c.energy_mj;
      saved += c.saved_pct;
      missed += c.schedules_missed;
      first += c.first_misses;
      rep += c.repeat_misses;
      resyncs += c.resyncs;
      esc += c.escalated_sleeps;
      deduped += c.repeats_deduped;
    }
    const double n = static_cast<double>(cs.size());
    energy /= n;
    std::printf("%-14s %10.1f %12.1f %7llu %6llu %6llu %7llu %6llu %8llu "
                "%8.1f\n",
                rows[i].name, energy, energy - base_energy,
                static_cast<unsigned long long>(missed),
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(rep),
                static_cast<unsigned long long>(resyncs),
                static_cast<unsigned long long>(esc),
                static_cast<unsigned long long>(deduped), saved / n);
  }

  const auto& fs = results[1].fault_stats;
  std::printf(
      "\nfault layer (k=1 run): fade windows=%llu/%llu fade_losses=%llu\n",
      static_cast<unsigned long long>(fs.windows_activated),
      static_cast<unsigned long long>(fs.windows_recovered),
      static_cast<unsigned long long>(fs.fade_losses));
  std::printf(
      "expected: k>=2 repeats shrink the energy penalty sharply vs k=1 (the\n"
      "staggered copy survives the null, so clients stop burning intervals\n"
      "awake); escalation stays roughly neutral on these one-SRP outages.\n");
  return 0;
}

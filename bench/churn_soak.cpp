// Long-horizon churn soak: sustained join/leave under a churn storm.
//
// Phase A (replay stability): a 32-client churn-storm scenario (25% of the
// cell flapping) is digested twice under different hash salts; the digests
// must be bit-identical and non-zero, proving membership churn stays a
// pure function of the config.  run_scenario's finalize_audit re-checks
// byte/energy conservation and departed-state cleanliness on both runs.
//
// Phase B (footprint): the same storm driven directly on a Testbed with
// observability detached and UDP video load on every client.  After a
// warmup quarter of the horizon, the engine's pooled-callback counters
// must stay zero across the whole run (every churn capture fits the SBO
// buffer, so the scheduling path never touches the heap) and the live
// heap-block count must stay flat (no per-cycle leak, bounded memory).
//
// --smoke shrinks the horizon for the bench-smoke ctest label; full runs
// scale with --seconds/--clients to reach 1e8+ events of sustained churn.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>  // pp-lint: allow(raw-new): header name, not an expression
#include <vector>

#include "exp/builder.hpp"
#include "exp/digest.hpp"
#include "exp/scenario.hpp"
#include "exp/testbed.hpp"
#include "net/addr.hpp"
#include "proxy/scheduler.hpp"
#include "workload/video.hpp"

namespace {

// Live-block accounting: single-threaded binary, plain counters are fine.
std::uint64_t g_news = 0;
std::uint64_t g_deletes = 0;

void* counted_alloc(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }  // pp-lint: allow(raw-new): counting operator new replacement under test
void* operator new[](std::size_t n) { return counted_alloc(n); }  // pp-lint: allow(raw-new): counting operator new replacement under test
// pp-lint: allow(raw-new): counting operator new replacement under test
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(n ? n : 1);
}
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p) noexcept {
  ++g_deletes;
  std::free(p);
}
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete[](void* p) noexcept {
  ++g_deletes;
  std::free(p);
}
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p, std::size_t) noexcept {
  ++g_deletes;
  std::free(p);
}
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete[](void* p, std::size_t) noexcept {
  ++g_deletes;
  std::free(p);
}
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ++g_deletes;
  std::free(p);
}

namespace {

int g_failures = 0;

void expect_ok(bool ok, const char* what) {
  if (ok) {
    std::printf("  ok   %s\n", what);
  } else {
    std::printf("  FAIL %s\n", what);
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  using sim::Time;

  bool smoke = false;
  bool profile = false;
  double seconds = 240.0;
  int clients = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--profile") == 0) profile = true;
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
      seconds = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
      clients = std::atoi(argv[++i]);
  }
  if (smoke) seconds = 30.0;
  if (clients < 4) clients = 4;

  // -- Phase A: replay digests under sustained churn ------------------------------
  const double digest_s = smoke ? 16.0 : 40.0;
  exp::ScenarioBuilder builder = exp::ScenarioBuilder{}
                                     .video(clients, 1)  // 128K streams
                                     .policy(exp::IntervalPolicy::Fixed500)
                                     .seed(42)
                                     .duration_s(digest_s)
                                     .schedule_repeats(2);
  builder.fault_spec().churn_storm(Time::seconds(2.0),
                                   Time::seconds(digest_s - 4.0), 0.25);
  const exp::ScenarioConfig cfg = builder.build();

  std::printf("churn_soak: phase A — %d-client storm, %.0fs, double digest\n",
              clients, digest_s);
  net::set_hash_salt(1);
  const std::uint64_t d1 = exp::run_digest(cfg);
  net::set_hash_salt(99991);
  const std::uint64_t d2 = exp::run_digest(cfg);
  net::set_hash_salt(0);
  expect_ok(d1 != 0, "digest is non-zero");
  expect_ok(d1 == d2, "digests identical across hash salts");
  std::printf("  digest %016llx\n", static_cast<unsigned long long>(d1));

  // -- Phase B: footprint soak (observability detached) ----------------------------
  std::printf("churn_soak: phase B — %.0fs soak, %d clients flapping\n",
              seconds, clients);
  exp::TestbedParams tp;
  tp.seed = 7;
  tp.num_clients = clients;
  tp.observe = false;
  tp.wireless.p_loss = 0.01;
  tp.fault.churn_storm(Time::seconds(2.0), Time::seconds(seconds - 2.0),
                       0.25);
  // Fast flapping: several full leave/rejoin cycles per flapper per minute
  // keeps the join/leave machinery hot for the whole soak.
  tp.fault.storm.min_away = Time::ms(800);
  tp.fault.storm.max_away = Time::ms(2000);
  tp.fault.storm.min_home = Time::ms(800);
  tp.fault.storm.max_home = Time::ms(2000);

  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           Time::ms(500))};
  net::Node& video_node = bed.add_server("realserver");
  workload::VideoServerParams vsp;
  vsp.trace_seed = tp.seed * 7919 + 13;
  // A steady state must exist for the footprint check to mean anything:
  // per-packet airtime overhead caps the cell near ~400 small packets/s,
  // and 32 clients at the default 24 fps oversubscribe it (proxy queues
  // then grow for the whole run — backlog, not leak).  8 fps at the
  // lowest fidelity keeps the aggregate near ~290 packets/s, inside
  // capacity, so queues drain every interval and the footprint is flat.
  vsp.trace.fps = 8;
  vsp.trace.gop = 8;
  workload::VideoServer video_server{video_node, vsp};
  std::vector<std::unique_ptr<workload::VideoClient>> apps;
  apps.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    auto& cl = bed.client(i);
    video_server.expect_client(cl.ip(), 0);
    auto app =
        std::make_unique<workload::VideoClient>(cl.node(), video_node.ip());
    app->play(Time::seconds(2.0) + Time::ms(50 * i));
    apps.push_back(std::move(app));
  }
  bed.start(Time::ms(500));

  // The monitoring station retains every frame it sniffs (including each
  // packet's message payload) — the paper's tcpdump archive.  A soak
  // measures component state, not the archive, so discard it periodically
  // to keep the footprint flat over arbitrarily long horizons.
  struct DrainTrace {
    exp::Testbed& bed;
    void operator()() const {
      (void)bed.monitor().take();
      bed.sim().after(Time::seconds(5.0), DrainTrace{bed});
    }
  };
  bed.sim().after(Time::seconds(5.0), DrainTrace{bed});

  const sim::Time horizon = Time::seconds(seconds);
  // Warmup: deques, slab, free lists, and the storm itself all reach
  // steady state inside the first quarter.
  const double warmup_s = seconds * 0.25;
  bed.run_until(Time::seconds(warmup_s));
  (void)bed.monitor().take();
  const std::int64_t live_before =
      static_cast<std::int64_t>(g_news) - static_cast<std::int64_t>(g_deletes);
  // --profile: snapshot live blocks at each decile of the measurement
  // window to localise any growth in time (leak vs late high-water mark).
  std::int64_t prev = live_before;
  for (int d = 1; d <= 10; ++d) {
    bed.run_until(
        Time::seconds(warmup_s + (seconds - warmup_s) * 0.1 * d));
    (void)bed.monitor().take();
    const std::int64_t live_now = static_cast<std::int64_t>(g_news) -
                                  static_cast<std::int64_t>(g_deletes);
    if (profile)
      std::printf("  decile %2d  live %+lld\n", d,
                  static_cast<long long>(live_now - prev));
    prev = live_now;
  }
  const std::int64_t live_after = prev;
  bed.finalize_audit(horizon);

  const sim::EventQueue::Stats& qs = bed.sim().queue_stats();
  const proxy::ProxyStats& ps = bed.proxy().stats();
  const std::int64_t growth = live_after - live_before;
  std::printf(
      "  events fired      %llu\n"
      "  joins/leaves      %llu / %llu (renegotiations %llu)\n"
      "  drained/dropped   %llu B / %llu B\n"
      "  live-block growth %lld after warmup\n",
      static_cast<unsigned long long>(qs.fired),
      static_cast<unsigned long long>(ps.joins),
      static_cast<unsigned long long>(ps.leaves),
      static_cast<unsigned long long>(ps.renegotiations),
      static_cast<unsigned long long>(ps.churn_drained_bytes),
      static_cast<unsigned long long>(ps.churn_dropped_bytes),
      static_cast<long long>(growth));
  expect_ok(ps.joins > 0 && ps.leaves > 0, "storm produced joins and leaves");
  expect_ok(qs.alloc.callbacks_pooled == 0,
        "no event capture outgrew the SBO buffer");
  expect_ok(qs.alloc.pool_allocs == 0, "callback pool never touched the heap");
  // Flat footprint: steady-state churn must not accrete memory.  A small
  // slack absorbs late container high-water marks (slab growth to the
  // horizon's peak event depth, deque block rounding).
  expect_ok(growth <= 512, "live heap blocks flat after warmup (leak check)");
  expect_ok(bed.sim().now() >= horizon, "soak ran to the horizon");

  if (g_failures > 0) {
    std::printf("churn_soak: %d FAILURE(S)\n", g_failures);
    return 1;
  }
  std::printf("churn_soak: all checks passed\n");
  return 0;
}

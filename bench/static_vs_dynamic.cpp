// Section 4.3 "Comparison to static schedules": when every client views an
// identical-fidelity stream, a permanent equal-slot schedule needs no
// per-interval schedule reception, lowering both the mean energy and its
// variance — but it cannot adapt to heterogeneous or TCP traffic.
//
// Paper reference: static lowers average energy usage and variance for
// identical streams (100 ms interval, ten clients at 56/256/512K); the
// dynamic schedule wins once fidelities differ, averaging ~69% on the
// mixed patterns.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  std::vector<exp::sweep::Item> items;
  for (int fidelity : {0, 2, 3}) {
    for (auto policy : {exp::IntervalPolicy::StaticEqual100,
                        exp::IntervalPolicy::Fixed100}) {
      const std::string label =
          exp::role_name(fidelity) + "/" +
          (policy == exp::IntervalPolicy::StaticEqual100 ? "static"
                                                         : "dynamic");
      items.push_back(
          {label, exp::ScenarioBuilder::fig4(std::vector<int>(10, fidelity),
                                             policy)
                      .build()});
    }
  }
  // Heterogeneous pattern: static equal slots waste bandwidth here.
  for (auto policy : {exp::IntervalPolicy::StaticEqual100,
                      exp::IntervalPolicy::Fixed100}) {
    const std::string label =
        std::string("56K_512K/") +
        (policy == exp::IntervalPolicy::StaticEqual100 ? "static" : "dynamic");
    items.push_back(
        {label, exp::ScenarioBuilder::fig4({0, 0, 0, 0, 0, 3, 3, 3, 3, 3},
                                           policy)
                    .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Static vs dynamic schedules (ten clients, 100 ms)"};
  auto& sec = rep.section();
  for (const auto& oc : sweep.outcomes) {
    const auto s = exp::summarize_all(oc.record.clients);
    sec.row()
        .cell("pattern/policy", oc.label)
        .cell("avg%", s.avg, 1)
        .cell("min%", s.min, 1)
        .cell("max%", s.max, 1)
        .cell("spread", s.max - s.min, 1)
        .cell("loss%", exp::average_loss_pct(oc.record.clients), 2);
  }
  rep.note(
      "paper: static improves identical-fidelity streams (no schedule "
      "reception), but the dynamic schedule handles mixed fidelities "
      "seamlessly.");
  return bench::emit(rep, opts);
}

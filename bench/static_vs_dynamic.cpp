// Section 4.3 "Comparison to static schedules": when every client views an
// identical-fidelity stream, a permanent equal-slot schedule needs no
// per-interval schedule reception, lowering both the mean energy and its
// variance — but it cannot adapt to heterogeneous or TCP traffic.
//
// Paper reference: static lowers average energy usage and variance for
// identical streams (100 ms interval, ten clients at 56/256/512K); the
// dynamic schedule wins once fidelities differ, averaging ~69% on the
// mixed patterns.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Static vs dynamic schedules (ten clients, 100 ms)");

  std::vector<exp::ScenarioConfig> cfgs;
  std::vector<std::string> labels;
  for (int fidelity : {0, 2, 3}) {
    for (auto policy : {exp::IntervalPolicy::StaticEqual100,
                        exp::IntervalPolicy::Fixed100}) {
      exp::ScenarioConfig cfg;
      cfg.roles = std::vector<int>(10, fidelity);
      cfg.policy = policy;
      cfg.seed = 42;
      cfg.duration_s = 140.0;
      cfgs.push_back(cfg);
      labels.push_back(exp::role_name(fidelity) + "/" +
                       (policy == exp::IntervalPolicy::StaticEqual100
                            ? "static"
                            : "dynamic"));
    }
  }
  // Heterogeneous pattern: static equal slots waste bandwidth here.
  for (auto policy : {exp::IntervalPolicy::StaticEqual100,
                      exp::IntervalPolicy::Fixed100}) {
    exp::ScenarioConfig cfg;
    cfg.roles = {0, 0, 0, 0, 0, 3, 3, 3, 3, 3};
    cfg.policy = policy;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfgs.push_back(cfg);
    labels.push_back(std::string("56K_512K/") +
                     (policy == exp::IntervalPolicy::StaticEqual100
                          ? "static"
                          : "dynamic"));
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-18s %8s %8s %8s %9s %8s\n", "pattern/policy", "avg%",
              "min%", "max%", "spread", "loss%");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto s = exp::summarize_all(results[i].clients);
    std::printf("%-18s %8.1f %8.1f %8.1f %9.1f %8.2f\n", labels[i].c_str(),
                s.avg, s.min, s.max, s.max - s.min,
                exp::average_loss_pct(results[i].clients));
  }
  std::printf(
      "\npaper: static improves identical-fidelity streams (no schedule "
      "reception),\nbut the dynamic schedule handles mixed fidelities "
      "seamlessly.\n");
  return 0;
}

// The compile-time-off half of the obs overhead microbenchmark: this TU
// builds the identical hot loop with PP_OBS_DISABLED, so PP_OBS(...)
// expands to nothing and obs::Hook is the empty obs_off variant.
#define PP_OBS_DISABLED 1

#include "bench/obs_overhead_kernel.hpp"

std::uint64_t obs_compiled_out_hot_loop(std::uint64_t iters) {
  return pp_bench::burst_hot_loop(pp::obs::Hook{}, iters);
}

// How much does observability cost on the proxy burst hot loop?
//
// Three states of the same kernel (bench/obs_overhead_common.hpp):
//   Attached    — hook wired to a live MetricsRegistry + Timeline
//   Detached    — hook present but null: one predictable branch per site
//   CompiledOut — built with -DPP_OBS_DISABLED: instrumentation erased
// Detached vs CompiledOut is the claim under test: the runtime-off path
// should be indistinguishable from the compile-time-off path, and both
// should match the raw loop.
//
// A scenario-level pair (Testbed with observe on/off) closes the loop on
// real end-to-end overhead.
#include <benchmark/benchmark.h>

#include <memory>

#include "exp/testbed.hpp"
#include "obs/observer.hpp"
#include "bench/obs_overhead_kernel.hpp"
#include "proxy/scheduler.hpp"

namespace {

using namespace pp;

constexpr std::uint64_t kPacketsPerIter = 4096;

void BM_HotLoopAttached(benchmark::State& state) {
  obs::Observer ob;
  for (auto _ : state) {
    auto q = pp_bench::burst_hot_loop(ob.hook(), kPacketsPerIter);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPacketsPerIter));
}
BENCHMARK(BM_HotLoopAttached);

void BM_HotLoopDetached(benchmark::State& state) {
  for (auto _ : state) {
    auto q = pp_bench::burst_hot_loop(obs::Hook{}, kPacketsPerIter);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPacketsPerIter));
}
BENCHMARK(BM_HotLoopDetached);

void BM_HotLoopCompiledOut(benchmark::State& state) {
  for (auto _ : state) {
    auto q = obs_compiled_out_hot_loop(kPacketsPerIter);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPacketsPerIter));
}
BENCHMARK(BM_HotLoopCompiledOut);

void run_testbed(bool observe) {
  exp::TestbedParams tp;
  tp.num_clients = 4;
  tp.observe = observe;
  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           sim::Time::ms(100))};
  bed.start();
  bed.run_until(sim::Time::seconds(5));
}

void BM_TestbedObserveOn(benchmark::State& state) {
  for (auto _ : state) run_testbed(true);
}
BENCHMARK(BM_TestbedObserveOn)->Unit(benchmark::kMillisecond);

void BM_TestbedObserveOff(benchmark::State& state) {
  for (auto _ : state) run_testbed(false);
}
BENCHMARK(BM_TestbedObserveOff)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

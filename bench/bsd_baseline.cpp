// Baseline: the Bounded Slowdown protocol (the paper's reference [9])
// versus 802.11 PSM and the proxy schedule.
//
// Section 2's argument: BSD improves 802.11 PSM for request/response
// traffic (web pages), but "like 802.11b, this protocol is aimed at long
// periods of inactivity followed by small amounts of data ... our work is
// focused on multimedia streams, which by their nature have packets
// arriving for a long period of time."  This bench shows exactly that:
// BSD is competitive for web browsing and poor for streams.
//
// The hand-built BSD half runs directly (it is not a ScenarioConfig); the
// proxy rows go through the sweep engine and its cache.
#include <memory>
#include <vector>

#include "bench/battery.hpp"
#include "client/bsd_client.hpp"
#include "exp/builder.hpp"
#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "workload/video.hpp"
#include "workload/web.hpp"

namespace {

using namespace pp;

struct Run {
  double avg_saved = 0;
  double avg_loss = 0;
  int pages = 0;
};

// BSD clients over a PSM access point; role: video fidelity or web.
Run run_bsd(int clients, int role, double duration_s) {
  exp::TestbedParams tp;
  tp.num_clients = 0;
  tp.proxy.mode = proxy::ProxyMode::Passthrough;
  tp.wireless.p_loss = 0.01;
  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           sim::Time::ms(500))};
  bed.access_point().enable_psm(sim::Time::ms(100));

  std::vector<std::unique_ptr<client::BsdClient>> stations;
  for (int i = 0; i < clients; ++i) {
    stations.push_back(std::make_unique<client::BsdClient>(
        bed.sim(), bed.medium(), exp::testbed_client_ip(i),
        "bsd" + std::to_string(i)));
    bed.access_point().register_psm_station(stations[i]->ip());
  }

  net::Node& server_node = bed.add_server("server");
  workload::VideoServer video_server{server_node};
  workload::HttpServer http_server{server_node};
  std::vector<std::unique_ptr<workload::VideoClient>> video_apps;
  std::vector<std::unique_ptr<workload::WebBrowsingClient>> web_apps;
  for (int i = 0; i < clients; ++i) {
    if (exp::is_video_role(role)) {
      video_server.expect_client(stations[i]->ip(), role);
      video_apps.push_back(std::make_unique<workload::VideoClient>(
          stations[i]->node(), server_node.ip()));
      video_apps.back()->play(sim::Time::seconds(2.0 + i));
    } else {
      auto script = workload::generate_web_script(42 * 131 + i);
      http_server.add_script(stations[i]->ip(), script);
      web_apps.push_back(std::make_unique<workload::WebBrowsingClient>(
          stations[i]->node(), server_node.ip(), std::move(script)));
      web_apps.back()->start(sim::Time::seconds(1.0 + 0.3 * i));
    }
  }
  bed.start(sim::Time::ms(500));
  const sim::Time horizon = sim::Time::seconds(duration_s);
  bed.run_until(horizon);

  Run out;
  for (auto& st : stations) {
    out.avg_saved += 100.0 * st->energy_saved_fraction(horizon);
    out.avg_loss += 100.0 * st->loss_fraction();
  }
  out.avg_saved /= clients;
  out.avg_loss /= clients;
  for (auto& w : web_apps) out.pages += w->stats().pages_completed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_args(argc, argv);

  struct Case {
    const char* name;
    int role;
    int clients;
  };
  const std::vector<Case> cases{
      {"web x10", exp::kRoleWeb, 10},
      {"56K video x10", 0, 10},
      {"512K video x10", 3, 10},
  };

  std::vector<exp::sweep::Item> items;
  for (const auto& c : cases) {
    items.push_back(
        {c.name, exp::ScenarioBuilder::fig4(std::vector<int>(c.clients,
                                                             c.role),
                                            exp::IntervalPolicy::Fixed500)
                     .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Baseline: Bounded Slowdown [9] vs the proxy schedule"};
  auto& sec = rep.section();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto bsd = run_bsd(cases[i].clients, cases[i].role, 140.0);
    sec.row()
        .cell("workload", cases[i].name)
        .cell("policy", "bounded slowdown")
        .cell("avg%", bsd.avg_saved, 1)
        .cell("loss%", bsd.avg_loss, 2)
        .cell("pages", bsd.pages);
    const auto& clients = sweep.outcomes[i].record.clients;
    int pages = 0;
    for (const auto& c : clients) pages += c.pages_completed;
    sec.row()
        .cell("workload", cases[i].name)
        .cell("policy", "proxy schedule (500ms)")
        .cell("avg%", exp::summarize_all(clients).avg, 1)
        .cell("loss%", exp::average_loss_pct(clients), 2)
        .cell("pages", pages);
  }
  rep.note(
      "bounded slowdown shines on request/response gaps and idles; for "
      "long-lived streams its skip ladder never grows and it degenerates "
      "to per-beacon PSM — the paper's motivation for scheduling "
      "multimedia explicitly.");
  return bench::emit(rep, opts);
}

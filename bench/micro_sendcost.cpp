// Section 3.2.2 microbenchmarks, in two parts.
//
// Part 1 — "Bandwidth Constraints": measure per-frame channel time across
// payload sizes and fit the linear send-cost model the proxy uses to size
// bursts.  Prints the samples, the fitted line, and the residuals, plus
// round-trip checks of the slot-budget inversion.
//
// Part 2 — proxy-forwarding micro-bench (BENCH_proxy_path.json): wall-clock
// packets/sec and bytes/sec through the splice's queue-and-burst path.  A
// driver injects UDP datagrams straight into the proxy's wired sink; each
// datagram is queued per client, snapshotted at the SRP, laid out into a
// slot, and burst through the proxy->AP link, the AP forwarding queue, and
// the wireless medium to an always-listening station.  This is the 8-step
// downlink path minus the LAN hop (which is workload generation, not
// forwarding), so the number isolates the chunk-queue/burst machinery.
//
// Modes:
//   micro_sendcost                   send-cost tables only
//   micro_sendcost --forward         adds the forwarding measurement
//   micro_sendcost --out=FILE        also write the JSON document
//   micro_sendcost --check=FILE      regression gate: re-measure forwarding
//       and fail (exit 1) if packets/sec drops more than 30% below FILE's
//       recorded pkts_per_sec (override via PP_PERF_TOLERANCE, a fraction)
//
// Refresh the committed baseline from a Release build on a quiet machine:
//   cmake --preset perf && cmake --build --preset perf -j
//   ./build-perf/bench/micro_sendcost --forward --out=BENCH_proxy_path.json
//
// pp-lint: allow(wall-clock): perf harness; wall time is the measurement
// here and never feeds simulation state.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/battery.hpp"
#include "net/access_point.hpp"
#include "net/link.hpp"
#include "net/wireless.hpp"
#include "proxy/bandwidth.hpp"
#include "proxy/scheduler.hpp"
#include "proxy/transparent_proxy.hpp"
#include "sim/simulator.hpp"

namespace {

// pp-lint: allow(wall-clock): perf harness, see header note
using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// Always-listening receiver: counts what the burst path delivers.
struct CountingStation final : pp::net::WirelessStation {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  bool listening() const override { return true; }
  void deliver(pp::net::Packet pkt, pp::sim::Duration) override {
    if (pkt.dst_port != 7000) return;  // data only, not schedule broadcasts
    ++packets;
    bytes += pkt.payload;
  }
};

struct DiscardSink final : pp::net::PacketSink {
  void handle_packet(pp::net::Packet) override {}
};

struct ForwardResult {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double pkts_per_sec = 0;
  double bytes_per_sec = 0;
};

// One forwarding trial: `sim_seconds` of saturating 4-client UDP downlink.
// Injection is sized just under the per-interval channel capacity so the
// queue->burst path runs loaded but not drop-bound.
ForwardResult measure_forwarding(double sim_seconds) {
  using namespace pp;
  constexpr int kClients = 4;
  constexpr std::uint32_t kPayload = 1000;
  constexpr int kPerClientPerInterval = 25;  // ~83% of channel capacity

  sim::Simulator sim{12061};
  net::WirelessParams wp;
  wp.per_frame_overhead = sim::Time::us(100);  // dense bursts, ~10 Mb/s
  net::WirelessMedium medium{sim, wp};
  net::AccessPointParams app;
  app.p_spike = 0;  // jitter only; spikes just add variance to the measure
  net::AccessPoint ap{sim, medium, app};

  proxy::ProxyParams pp_params;
  auto proxy = std::make_unique<proxy::TransparentProxy>(
      sim,
      std::make_unique<proxy::FixedIntervalScheduler>(sim::Time::ms(100)),
      pp_params);

  net::PointToPointLink link{sim, net::WiredParams{}, proxy->wireless_sink(),
                             ap};
  DiscardSink uplink;
  ap.set_uplink_sink(uplink);
  proxy->set_wired_tx([](net::Packet) {});
  proxy->set_wireless_tx(
      [&link](net::Packet pkt) { link.send_a_to_b(std::move(pkt)); });
  proxy->set_wireless_burst_tx([&link](net::ChunkQueue burst) {
    link.send_burst_a_to_b(std::move(burst));
  });

  std::vector<std::unique_ptr<CountingStation>> stations;
  for (int i = 0; i < kClients; ++i) {
    auto st = std::make_unique<CountingStation>();
    const auto ip = net::Ipv4Addr::octets(172, 16, 0,
                                          static_cast<std::uint8_t>(i + 1));
    medium.attach_station(*st, ip);
    proxy->register_client(ip);
    stations.push_back(std::move(st));
  }

  proxy->calibrate(medium);
  proxy->start(sim::Time::ms(10));

  // Driver: one event per interval injects the whole interval's datagrams
  // straight into the proxy's wired sink (LAN generation excluded from the
  // measured path).
  struct Driver {
    sim::Simulator& sim;
    proxy::TransparentProxy& proxy;
    sim::Time horizon;
    void operator()() {
      if (sim.now() >= horizon) return;
      for (int c = 0; c < kClients; ++c) {
        for (int k = 0; k < kPerClientPerInterval; ++k) {
          net::Packet pkt = net::make_packet();
          pkt.src = net::Ipv4Addr::octets(10, 0, 0, 1);
          pkt.src_port = 5000;
          pkt.dst = net::Ipv4Addr::octets(172, 16, 0,
                                          static_cast<std::uint8_t>(c + 1));
          pkt.dst_port = 7000;
          pkt.proto = net::Protocol::Udp;
          pkt.payload = kPayload;
          pkt.sent_at = sim.now();
          proxy.wired_sink().handle_packet(std::move(pkt));
        }
      }
      sim.after(sim::Time::ms(100), Driver{sim, proxy, horizon});
    }
  };
  const sim::Time horizon = sim::Time::seconds(sim_seconds);
  sim.at(sim::Time::ms(5), Driver{sim, *proxy, horizon});

  const auto t0 = WallClock::now();
  sim.run_until(horizon);
  const double wall = seconds_since(t0);

  ForwardResult r;
  for (const auto& st : stations) {
    r.packets += st->packets;
    r.bytes += st->bytes;
  }
  r.pkts_per_sec = static_cast<double>(r.packets) / wall;
  r.bytes_per_sec = static_cast<double>(r.bytes) / wall;
  proxy->stop();
  return r;
}

ForwardResult best_of_forwarding(int trials, double sim_seconds) {
  ForwardResult best;
  for (int t = 0; t < trials; ++t) {
    const ForwardResult r = measure_forwarding(sim_seconds);
    if (r.pkts_per_sec > best.pkts_per_sec) best = r;
  }
  return best;
}

// Pull `"pkts_per_sec":<num>` out of the committed Report JSON document.
double baseline_pkts_per_sec(const std::string& doc) {
  const std::string key = "\"pkts_per_sec\":";
  const std::size_t val = doc.find(key);
  if (val == std::string::npos) return -1;
  return std::strtod(doc.c_str() + val + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  std::string out_path;
  std::string check_path;
  bool forward = false;
  double sim_seconds = 120.0;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
      forward = true;
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
      forward = true;
    } else if (arg == "--forward") {
      forward = true;
    } else if (arg.rfind("--sim-seconds=", 0) == 0) {
      sim_seconds = std::atof(arg.c_str() + 14);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto opts = bench::parse_args(static_cast<int>(passthrough.size()),
                                      passthrough.data());

  sim::Simulator sim;
  net::WirelessMedium medium{sim};

  bench::Report rep{"send-cost + proxy-forwarding microbenchmark (3.2.2)"};
  std::vector<proxy::BandwidthEstimator::Sample> samples;
  auto& probes = rep.section("per-frame channel time");
  for (std::uint32_t payload = 40; payload <= 1400; payload += 136) {
    net::Packet probe = net::make_packet();
    probe.payload = payload;
    probe.dst = net::Ipv4Addr::octets(172, 16, 0, 1);
    const double s = medium.airtime_of(probe).to_seconds();
    samples.push_back({payload, s});
    probes.row().cell("payload", payload).cell("channel-us", s * 1e6, 1);
  }

  proxy::BandwidthEstimator est{samples};
  double worst = 0;
  for (const auto& s : samples) {
    const double pred = est.packet_cost(s.payload_bytes).to_seconds();
    worst = std::max(worst, std::abs(pred - s.seconds));
  }
  auto& fit = rep.section("fitted linear model");
  fit.row()
      .cell("overhead-us", est.overhead_seconds() * 1e6, 1)
      .cell("us-per-byte", est.seconds_per_byte() * 1e6, 4)
      .cell("max-residual-us", worst * 1e6, 3);

  auto& inv = rep.section("slot-budget inversion (bulk_cost -> payload_budget)");
  for (std::uint64_t bytes : {1400ull, 10'000ull, 60'000ull, 250'000ull}) {
    const auto slot = est.bulk_cost(bytes, 1400, 40);
    inv.row()
        .cell("bytes", bytes)
        .cell("slot-ms", slot.to_ms(), 2)
        .cell("budget", est.payload_budget(slot, 1400, 40));
  }

  const double goodput =
      1400.0 * 8.0 / est.packet_cost(1400).to_seconds() / 1e6;
  char note[160];
  std::snprintf(note, sizeof note,
                "implied UDP goodput at full frames: %.2f Mb/s (paper "
                "measured ~4 Mb/s effective)",
                goodput);
  rep.note(note);

  if (forward) {
    // Warmup trial (page in, clock up), then best-of-3 measured trials.
    (void)measure_forwarding(std::min(sim_seconds, 20.0));
    const ForwardResult r = best_of_forwarding(3, sim_seconds);
    auto& fwd = rep.section("proxy forwarding (queue -> burst -> medium)");
    fwd.row()
        .cell("bench", "splice_forward")
        .cell("pkts_per_sec", r.pkts_per_sec, 0)
        .cell("bytes_per_sec", r.bytes_per_sec, 0)
        .cell("packets", r.packets);
    rep.note("refresh: Release build, quiet machine: "
             "micro_sendcost --forward --out=BENCH_proxy_path.json");

    if (!check_path.empty()) {
      std::ifstream in(check_path);
      if (!in) {
        std::fprintf(stderr, "micro_sendcost: cannot read %s\n",
                     check_path.c_str());
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      const double base = baseline_pkts_per_sec(ss.str());
      if (base <= 0) {
        std::fprintf(stderr,
                     "micro_sendcost: no pkts_per_sec baseline in %s\n",
                     check_path.c_str());
        return 1;
      }
      double tolerance = 0.30;
      if (const char* env = std::getenv("PP_PERF_TOLERANCE"))
        tolerance = std::atof(env);
      const double floor = base * (1.0 - tolerance);
      std::printf("forwarding gate: measured %.0f pkts/s, baseline %.0f, "
                  "floor %.0f\n",
                  r.pkts_per_sec, base, floor);
      if (r.pkts_per_sec < floor) {
        std::fprintf(stderr,
                     "micro_sendcost: forwarding throughput regressed "
                     "below the floor\n");
        return 1;
      }
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << rep.json();
    std::printf("wrote %s\n", out_path.c_str());
  }
  const int rc = bench::emit(rep, opts);
  return rc;
}

// Section 3.2.2 "Bandwidth Constraints" microbenchmark: measure per-frame
// channel time across payload sizes and fit the linear send-cost model the
// proxy uses to size bursts.  Prints the samples, the fitted line, and the
// residuals, plus round-trip checks of the slot-budget inversion.
#include <cstdio>

#include "net/wireless.hpp"
#include "proxy/bandwidth.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace pp;
  std::printf("=== send-cost microbenchmark (Section 3.2.2) ===\n\n");

  sim::Simulator sim;
  net::WirelessMedium medium{sim};

  std::vector<proxy::BandwidthEstimator::Sample> samples;
  std::printf("%8s %14s\n", "payload", "channel (us)");
  for (std::uint32_t payload = 40; payload <= 1400; payload += 136) {
    net::Packet probe = net::make_packet();
    probe.payload = payload;
    probe.dst = net::Ipv4Addr::octets(172, 16, 0, 1);
    const double s = medium.airtime_of(probe).to_seconds();
    samples.push_back({payload, s});
    std::printf("%8u %14.1f\n", payload, s * 1e6);
  }

  proxy::BandwidthEstimator est{samples};
  std::printf("\nfit: cost(n) = %.1f us + %.4f us/byte\n",
              est.overhead_seconds() * 1e6, est.seconds_per_byte() * 1e6);

  double worst = 0;
  for (const auto& s : samples) {
    const double pred = est.packet_cost(s.payload_bytes).to_seconds();
    worst = std::max(worst, std::abs(pred - s.seconds));
  }
  std::printf("max residual: %.3f us\n", worst * 1e6);

  std::printf("\nslot-budget inversion (bulk_cost -> payload_budget):\n");
  std::printf("%10s %14s %12s\n", "bytes", "slot (ms)", "budget");
  for (std::uint64_t bytes : {1400ull, 10'000ull, 60'000ull, 250'000ull}) {
    const auto slot = est.bulk_cost(bytes, 1400, 40);
    std::printf("%10llu %14.2f %12llu\n",
                static_cast<unsigned long long>(bytes), slot.to_ms(),
                static_cast<unsigned long long>(
                    est.payload_budget(slot, 1400, 40)));
  }

  const double goodput =
      1400.0 * 8.0 / est.packet_cost(1400).to_seconds() / 1e6;
  std::printf("\nimplied UDP goodput at full frames: %.2f Mb/s "
              "(paper measured ~4 Mb/s effective)\n", goodput);
  return 0;
}

// Section 3.2.2 "Bandwidth Constraints" microbenchmark: measure per-frame
// channel time across payload sizes and fit the linear send-cost model the
// proxy uses to size bursts.  Prints the samples, the fitted line, and the
// residuals, plus round-trip checks of the slot-budget inversion.
//
// No scenarios run here, so there is nothing to sweep or cache; the
// binary still renders through the shared Report sink.
#include <algorithm>
#include <cmath>

#include "bench/battery.hpp"
#include "net/wireless.hpp"
#include "proxy/bandwidth.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  sim::Simulator sim;
  net::WirelessMedium medium{sim};

  bench::Report rep{"send-cost microbenchmark (Section 3.2.2)"};
  std::vector<proxy::BandwidthEstimator::Sample> samples;
  auto& probes = rep.section("per-frame channel time");
  for (std::uint32_t payload = 40; payload <= 1400; payload += 136) {
    net::Packet probe = net::make_packet();
    probe.payload = payload;
    probe.dst = net::Ipv4Addr::octets(172, 16, 0, 1);
    const double s = medium.airtime_of(probe).to_seconds();
    samples.push_back({payload, s});
    probes.row().cell("payload", payload).cell("channel-us", s * 1e6, 1);
  }

  proxy::BandwidthEstimator est{samples};
  double worst = 0;
  for (const auto& s : samples) {
    const double pred = est.packet_cost(s.payload_bytes).to_seconds();
    worst = std::max(worst, std::abs(pred - s.seconds));
  }
  auto& fit = rep.section("fitted linear model");
  fit.row()
      .cell("overhead-us", est.overhead_seconds() * 1e6, 1)
      .cell("us-per-byte", est.seconds_per_byte() * 1e6, 4)
      .cell("max-residual-us", worst * 1e6, 3);

  auto& inv = rep.section("slot-budget inversion (bulk_cost -> payload_budget)");
  for (std::uint64_t bytes : {1400ull, 10'000ull, 60'000ull, 250'000ull}) {
    const auto slot = est.bulk_cost(bytes, 1400, 40);
    inv.row()
        .cell("bytes", bytes)
        .cell("slot-ms", slot.to_ms(), 2)
        .cell("budget", est.payload_budget(slot, 1400, 40));
  }

  const double goodput =
      1400.0 * 8.0 / est.packet_cost(1400).to_seconds() / 1e6;
  char note[128];
  std::snprintf(note, sizeof note,
                "implied UDP goodput at full frames: %.2f Mb/s (paper "
                "measured ~4 Mb/s effective)",
                goodput);
  rep.note(note);
  return bench::emit(rep, opts);
}

// Ablation: the schedule-reuse extension (Section 5, future work).
//
// When the schedule does not change between intervals the proxy sets the
// reuse flag, letting clients skip waking for the next broadcast and wake
// only at their burst rendezvous point.  With a static schedule this
// halves the wake transitions.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  std::vector<exp::sweep::Item> items;
  for (bool honor : {true, false}) {
    items.push_back({honor ? "reuse" : "wake",
                     exp::ScenarioBuilder{}
                         .video(10, 0)
                         .policy(exp::IntervalPolicy::StaticEqual100)
                         .seed(42)
                         .duration_s(140.0)
                         .honor_reuse(honor)
                         .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Ablation: schedule reuse (the paper's future-work idea)"};
  auto& sec = rep.section();
  const char* kNames[] = {"reuse (skip schedule)", "wake for schedule"};
  for (int i = 0; i < 2; ++i) {
    const auto& clients = sweep.outcomes[i].record.clients;
    std::uint64_t scheds = 0, sleeps = 0;
    for (const auto& c : clients) {
      scheds += c.schedules_received;
      sleeps += c.sleeps;
    }
    sec.row()
        .cell("client behaviour", kNames[i])
        .cell("avg%", exp::summarize_all(clients).avg, 1)
        .cell("loss%", exp::average_loss_pct(clients), 2)
        .cell("sched-rcvd", scheds)
        .cell("sleeps", sleeps);
  }
  rep.note(
      "reuse removes the per-interval schedule wake: fewer transitions and "
      "less early-transition waste, exactly the saving Section 5 "
      "anticipates.");
  return bench::emit(rep, opts);
}

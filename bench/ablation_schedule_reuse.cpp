// Ablation: the schedule-reuse extension (Section 5, future work).
//
// When the schedule does not change between intervals the proxy sets the
// reuse flag, letting clients skip waking for the next broadcast and wake
// only at their burst rendezvous point.  With a static schedule this
// halves the wake transitions.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Ablation: schedule reuse (the paper's future-work idea)");

  std::vector<exp::ScenarioConfig> cfgs;
  for (bool honor : {true, false}) {
    exp::ScenarioConfig cfg;
    cfg.roles = std::vector<int>(10, 0);
    cfg.policy = exp::IntervalPolicy::StaticEqual100;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfg.honor_reuse = honor;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-22s %8s %8s %12s %12s\n", "client behaviour", "avg%",
              "loss%", "sched-rcvd", "sleeps");
  const char* names[] = {"reuse (skip schedule)", "wake for schedule"};
  for (int i = 0; i < 2; ++i) {
    std::uint64_t scheds = 0, sleeps = 0;
    for (const auto& c : results[i].clients) {
      scheds += c.schedules_received;
      sleeps += c.sleeps;
    }
    std::printf("%-22s %8.1f %8.2f %12llu %12llu\n", names[i],
                exp::summarize_all(results[i].clients).avg,
                exp::average_loss_pct(results[i].clients),
                static_cast<unsigned long long>(scheds),
                static_cast<unsigned long long>(sleeps));
  }
  std::printf(
      "\nreuse removes the per-interval schedule wake: fewer transitions "
      "and less early-\ntransition waste, exactly the saving Section 5 "
      "anticipates.\n");
  return 0;
}

// Baseline comparison: 802.11 power-save mode vs the paper's proxy
// scheduling, for multimedia streams (Section 2: PSM "is not a good match
// for multimedia").
//
// The PSM topology is assembled by hand from the library's pieces: the
// proxy runs in passthrough mode (no shaping), the access point broadcasts
// beacons and parks frames for dozing stations, and PsmClient dozes
// between beacons.  The hand-built half cannot express itself as a
// ScenarioConfig, so it runs directly; the proxy rows go through the
// sweep engine (and its cache) like every other battery.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench/battery.hpp"
#include "client/psm_client.hpp"
#include "exp/builder.hpp"
#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "workload/video.hpp"

namespace {

using namespace pp;

struct PsmRun {
  double avg_saved = 0, min_saved = 0, max_saved = 0;
  double avg_loss = 0;
};

PsmRun run_psm(int clients, int fidelity, double duration_s) {
  exp::TestbedParams tp;
  tp.num_clients = 0;  // we attach PSM clients ourselves
  tp.proxy.mode = proxy::ProxyMode::Passthrough;
  tp.wireless.p_loss = 0.01;
  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           sim::Time::ms(500))};
  bed.access_point().enable_psm(sim::Time::ms(100));

  std::vector<std::unique_ptr<client::PsmClient>> stations;
  for (int i = 0; i < clients; ++i) {
    stations.push_back(std::make_unique<client::PsmClient>(
        bed.sim(), bed.medium(), exp::testbed_client_ip(i),
        "psm" + std::to_string(i)));
    bed.access_point().register_psm_station(stations[i]->ip());
  }

  net::Node& server_node = bed.add_server("realserver");
  workload::VideoServer server{server_node};
  std::vector<std::unique_ptr<workload::VideoClient>> apps;
  for (int i = 0; i < clients; ++i) {
    server.expect_client(stations[i]->ip(), fidelity);
    apps.push_back(std::make_unique<workload::VideoClient>(
        stations[i]->node(), server_node.ip()));
    apps[i]->play(sim::Time::seconds(2.0 + i));
  }
  bed.start(sim::Time::ms(500));
  const sim::Time horizon = sim::Time::seconds(duration_s);
  bed.run_until(horizon);

  PsmRun out;
  out.min_saved = 100.0;
  for (auto& st : stations) {
    const double s = 100.0 * st->energy_saved_fraction(horizon);
    out.avg_saved += s;
    out.min_saved = std::min(out.min_saved, s);
    out.max_saved = std::max(out.max_saved, s);
    out.avg_loss += 100.0 * st->loss_fraction();
  }
  out.avg_saved /= clients;
  out.avg_loss /= clients;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_args(argc, argv);
  const std::vector<int> fidelities{0, 2, 3};

  std::vector<exp::sweep::Item> items;
  for (int fidelity : fidelities) {
    items.push_back(
        {exp::role_name(fidelity),
         exp::ScenarioBuilder::fig4(std::vector<int>(10, fidelity),
                                    exp::IntervalPolicy::Fixed500)
             .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{
      "Baseline: 802.11 PSM vs proxy scheduling (video clients)"};
  auto& sec = rep.section();
  for (std::size_t i = 0; i < fidelities.size(); ++i) {
    const auto psm = run_psm(10, fidelities[i], 140.0);
    sec.row()
        .cell("stream", exp::role_name(fidelities[i]))
        .cell("policy", "802.11 PSM (100ms)")
        .cell("avg%", psm.avg_saved, 1)
        .cell("min%", psm.min_saved, 1)
        .cell("max%", psm.max_saved, 1)
        .cell("loss%", psm.avg_loss, 2);
    const auto& clients = sweep.outcomes[i].record.clients;
    const auto s = exp::summarize_all(clients);
    sec.row()
        .cell("stream", exp::role_name(fidelities[i]))
        .cell("policy", "proxy schedule (500ms)")
        .cell("avg%", s.avg, 1)
        .cell("min%", s.min, 1)
        .cell("max%", s.max, 1)
        .cell("loss%", exp::average_loss_pct(clients), 2);
  }
  rep.note(
      "PSM wakes for every beacon and stays up through the whole drain of "
      "its parked frames; for continuous media the TIM bit is always set, "
      "so it approximates a 100 ms schedule without the proxy's burst "
      "shaping — which is why the paper builds the proxy instead.");
  return bench::emit(rep, opts);
}

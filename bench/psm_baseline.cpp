// Baseline comparison: 802.11 power-save mode vs the paper's proxy
// scheduling, for multimedia streams (Section 2: PSM "is not a good match
// for multimedia").
//
// The PSM topology is assembled by hand from the library's pieces: the
// proxy runs in passthrough mode (no shaping), the access point broadcasts
// beacons and parks frames for dozing stations, and PsmClient dozes
// between beacons.  The proxy rows reuse the standard scenario runner.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "client/psm_client.hpp"
#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "workload/video.hpp"

namespace {

using namespace pp;

struct PsmRun {
  double avg_saved = 0, min_saved = 0, max_saved = 0;
  double avg_loss = 0;
};

PsmRun run_psm(int clients, int fidelity, double duration_s) {
  exp::TestbedParams tp;
  tp.num_clients = 0;  // we attach PSM clients ourselves
  tp.proxy.mode = proxy::ProxyMode::Passthrough;
  tp.wireless.p_loss = 0.01;
  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           sim::Time::ms(500))};
  bed.access_point().enable_psm(sim::Time::ms(100));

  std::vector<std::unique_ptr<client::PsmClient>> stations;
  for (int i = 0; i < clients; ++i) {
    stations.push_back(std::make_unique<client::PsmClient>(
        bed.sim(), bed.medium(), exp::testbed_client_ip(i),
        "psm" + std::to_string(i)));
    bed.access_point().register_psm_station(stations[i]->ip());
  }

  net::Node& server_node = bed.add_server("realserver");
  workload::VideoServer server{server_node};
  std::vector<std::unique_ptr<workload::VideoClient>> apps;
  for (int i = 0; i < clients; ++i) {
    server.expect_client(stations[i]->ip(), fidelity);
    apps.push_back(std::make_unique<workload::VideoClient>(
        stations[i]->node(), server_node.ip()));
    apps[i]->play(sim::Time::seconds(2.0 + i));
  }
  bed.start(sim::Time::ms(500));
  const sim::Time horizon = sim::Time::seconds(duration_s);
  bed.run_until(horizon);

  PsmRun out;
  out.min_saved = 100.0;
  for (auto& st : stations) {
    const double s = 100.0 * st->energy_saved_fraction(horizon);
    out.avg_saved += s;
    out.min_saved = std::min(out.min_saved, s);
    out.max_saved = std::max(out.max_saved, s);
    out.avg_loss += 100.0 * st->loss_fraction();
  }
  out.avg_saved /= clients;
  out.avg_loss /= clients;
  return out;
}

}  // namespace

int main() {
  bench::heading("Baseline: 802.11 PSM vs proxy scheduling (video clients)");

  std::printf("%-8s %-22s %8s %8s %8s %8s\n", "stream", "policy", "avg%",
              "min%", "max%", "loss%");
  for (int fidelity : {0, 2, 3}) {
    const auto psm = run_psm(10, fidelity, 140.0);
    std::printf("%-8s %-22s %8.1f %8.1f %8.1f %8.2f\n",
                exp::role_name(fidelity).c_str(), "802.11 PSM (100ms)",
                psm.avg_saved, psm.min_saved, psm.max_saved, psm.avg_loss);

    exp::ScenarioConfig cfg;
    cfg.roles = std::vector<int>(10, fidelity);
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    const auto res = exp::run_scenario(cfg);
    const auto s = exp::summarize_all(res.clients);
    std::printf("%-8s %-22s %8.1f %8.1f %8.1f %8.2f\n",
                exp::role_name(fidelity).c_str(), "proxy schedule (500ms)",
                s.avg, s.min, s.max, exp::average_loss_pct(res.clients));
  }
  std::printf(
      "\nPSM wakes for every beacon and stays up through the whole drain of "
      "its parked\nframes; for continuous media the TIM bit is always set, "
      "so it approximates a\n100 ms schedule without the proxy's burst "
      "shaping — which is why the paper\nbuilds the proxy instead.\n");
  return 0;
}

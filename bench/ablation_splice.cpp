// Ablation: why the transparent proxy splices TCP (Section 3.2 / Figure 3).
//
// Buffering packets of an *end-to-end* TCP connection (BufferedPassthrough)
// inflates the sender's measured RTT by the burst delay, collapsing its
// throughput to ~window/RTT.  The double connection hides the buffering
// from the sender, so transfers finish much faster at the same energy
// policy.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

namespace {

pp::exp::ScenarioConfig mode_cfg(pp::proxy::ProxyMode mode) {
  using namespace pp;
  return exp::ScenarioBuilder{}
      .ftp()
      .policy(exp::IntervalPolicy::Fixed500)
      .seed(37)
      .duration_s(400.0)
      .ftp_bytes(2'000'000)
      .proxy_mode(mode)
      .build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::vector<exp::sweep::Item> items{
      {"spliced", mode_cfg(proxy::ProxyMode::Splice)},
      {"buffered", mode_cfg(proxy::ProxyMode::BufferedPassthrough)},
  };
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Ablation: spliced connections vs buffered passthrough"};
  auto& sec = rep.section();
  const char* kNames[] = {"spliced (double conn)", "buffered passthrough"};
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& c = sweep.outcomes[i].record.clients[0];
    sec.row()
        .cell("mode", kNames[i])
        .cell("transfer-s", c.ftp_seconds, 2)
        .cell("saved%", c.saved_pct, 1)
        .cell("bytes", c.app_bytes);
  }

  const double ts = sweep.outcomes[0].record.clients[0].ftp_seconds;
  const double tb = sweep.outcomes[1].record.clients[0].ftp_seconds;
  if (ts > 0 && tb > 0) {
    char note[192];
    std::snprintf(note, sizeof note,
                  "splicing speeds the transfer up %.1fx: the server's RTT "
                  "excludes the burst delay, so its window opens instead of "
                  "stalling at window/RTT.",
                  tb / ts);
    rep.note(note);
  } else if (tb <= 0) {
    rep.note(
        "buffered passthrough did not even finish within the horizon — the "
        "end-to-end connection collapsed to window/RTT throughput. That is "
        "exactly why the paper splices.");
  }
  return bench::emit(rep, opts);
}

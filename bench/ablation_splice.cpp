// Ablation: why the transparent proxy splices TCP (Section 3.2 / Figure 3).
//
// Buffering packets of an *end-to-end* TCP connection (BufferedPassthrough)
// inflates the sender's measured RTT by the burst delay, collapsing its
// throughput to ~window/RTT.  The double connection hides the buffering
// from the sender, so transfers finish much faster at the same energy
// policy.
#include <cstdio>

#include "bench_util.hpp"

namespace {

pp::exp::ScenarioResult run_mode(pp::proxy::ProxyMode mode) {
  using namespace pp;
  exp::ScenarioConfig cfg;
  cfg.roles = {exp::kRoleFtp};
  cfg.policy = exp::IntervalPolicy::Fixed500;
  cfg.seed = 37;
  cfg.duration_s = 400.0;
  cfg.ftp_bytes = 2'000'000;
  cfg.proxy_mode = mode;
  return exp::run_scenario(cfg);
}

}  // namespace

int main() {
  using namespace pp;
  bench::heading("Ablation: spliced connections vs buffered passthrough");

  const auto spliced = run_mode(proxy::ProxyMode::Splice);
  const auto buffered = run_mode(proxy::ProxyMode::BufferedPassthrough);

  auto report = [](const char* name, const exp::ScenarioResult& r) {
    const auto& c = r.clients[0];
    std::printf("%-24s transfer=%8.2fs  saved=%5.1f%%  bytes=%llu\n", name,
                c.ftp_seconds, c.saved_pct,
                static_cast<unsigned long long>(c.app_bytes));
  };
  report("spliced (double conn)", spliced);
  report("buffered passthrough", buffered);

  const double ts = spliced.clients[0].ftp_seconds;
  const double tb = buffered.clients[0].ftp_seconds;
  if (ts > 0 && tb > 0) {
    std::printf("\nsplicing speeds the transfer up %.1fx: the server's RTT "
                "excludes the burst delay,\nso its window opens instead of "
                "stalling at window/RTT.\n", tb / ts);
  } else if (tb <= 0) {
    std::printf("\nbuffered passthrough did not even finish within the "
                "horizon — the end-to-end\nconnection collapsed to "
                "window/RTT throughput. That is exactly why the paper "
                "splices.\n");
  }
  return 0;
}

// Section 4.3 "Packets lost or dropped": per-client loss across the video,
// web, and mixed experiment families.
//
// Paper reference: usually less than 2% with a few outliers — data is sent
// according to the schedule, so sleeping clients rarely miss anything.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Packet loss across experiment families (500 ms interval)");

  struct Family {
    std::string name;
    std::vector<int> roles;
  };
  std::vector<Family> families{
      {"video 56K x10", std::vector<int>(10, 0)},
      {"video 256K x10", std::vector<int>(10, 2)},
      {"video 512K x10", std::vector<int>(10, 3)},
      {"web x10", std::vector<int>(10, exp::kRoleWeb)},
      {"mixed 7v+3w", {0, 0, 1, 1, 2, 2, 3, exp::kRoleWeb, exp::kRoleWeb,
                       exp::kRoleWeb}},
  };
  std::vector<exp::ScenarioConfig> cfgs;
  for (const auto& f : families) {
    exp::ScenarioConfig cfg;
    cfg.roles = f.roles;
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-16s %10s %10s %10s %14s\n", "family", "avg-loss%",
              "max-loss%", "<2%-count", "app-loss(avg)%");
  for (std::size_t i = 0; i < families.size(); ++i) {
    double mx = 0, app = 0;
    int under2 = 0;
    for (const auto& c : results[i].clients) {
      mx = std::max(mx, c.loss_pct);
      app += c.app_loss_pct;
      under2 += c.loss_pct < 2.0;
    }
    std::printf("%-16s %10.2f %10.2f %7d/10 %14.2f\n",
                families[i].name.c_str(),
                exp::average_loss_pct(results[i].clients), mx, under2,
                app / results[i].clients.size());
  }
  std::printf("\npaper: typically < 2%% missed packets, a few outliers.\n");

  // -- Uniform vs Gilbert-Elliott channel sweep ------------------------------------
  // Same average corruption rate, two very different loss processes:
  // independent per-frame drops vs correlated bad-state bursts.  The GE
  // rows fix p_bad_good (sojourn length) and solve p_good_bad for the
  // target average, so the curves are comparable point by point.
  bench::heading("Uniform vs Gilbert-Elliott loss (mixed 4v+2w, 60 s)");
  const std::vector<double> targets{0.005, 0.01, 0.02, 0.05, 0.1};
  const double p_bad_good = 0.02;
  const double loss_bad = 0.85;
  const double loss_good = 0.0;

  std::vector<exp::ScenarioConfig> sweep;
  for (const double p : targets) {
    exp::ScenarioConfig cfg;
    cfg.roles = {1, 1, 2, 2, exp::kRoleWeb, exp::kRoleWeb};
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 42;
    cfg.duration_s = 60.0;
    cfg.wireless_p_loss = p;
    sweep.push_back(cfg);
  }
  for (const double p : targets) {
    exp::ScenarioConfig cfg = sweep[0];
    cfg.wireless_p_loss = 0.0;
    cfg.fault.ge.enabled = true;
    const double f_bad = p / loss_bad;  // stationary bad-state fraction
    cfg.fault.ge.p_good_bad = p_bad_good * f_bad / (1.0 - f_bad);
    cfg.fault.ge.p_bad_good = p_bad_good;
    cfg.fault.ge.loss_good = loss_good;
    cfg.fault.ge.loss_bad = loss_bad;
    sweep.push_back(cfg);
  }
  const auto curves = bench::run_batch(sweep);

  auto miss_sum = [](const exp::ScenarioResult& r) {
    std::uint64_t m = 0;
    for (const auto& c : r.clients) m += c.schedules_missed;
    return m;
  };
  std::printf("{\n  \"uniform\": [");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& r = curves[i];
    std::printf(
        "%s\n    {\"p\": %.3f, \"avg_loss_pct\": %.3f, \"avg_saved_pct\": "
        "%.2f, \"schedules_missed\": %llu}",
        i ? "," : "", targets[i], exp::average_loss_pct(r.clients),
        exp::summarize_all(r.clients).avg,
        static_cast<unsigned long long>(miss_sum(r)));
  }
  std::printf("\n  ],\n  \"gilbert_elliott\": [");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& r = curves[targets.size() + i];
    std::printf(
        "%s\n    {\"p_avg\": %.3f, \"p_good_bad\": %.5f, \"p_bad_good\": "
        "%.3f, \"loss_bad\": %.2f, \"avg_loss_pct\": %.3f, "
        "\"avg_saved_pct\": %.2f, \"schedules_missed\": %llu, "
        "\"ge_bad_entries\": %llu}",
        i ? "," : "", targets[i],
        sweep[targets.size() + i].fault.ge.p_good_bad, p_bad_good, loss_bad,
        exp::average_loss_pct(r.clients), exp::summarize_all(r.clients).avg,
        static_cast<unsigned long long>(miss_sum(r)),
        static_cast<unsigned long long>(r.fault_stats.ge_bad_entries));
  }
  std::printf(
      "\n  ]\n}\n"
      "same average rate, different process: correlated GE bursts take out\n"
      "whole schedule+burst exchanges where uniform loss nicks single "
      "frames.\n");
  return 0;
}

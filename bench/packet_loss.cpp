// Section 4.3 "Packets lost or dropped": per-client loss across the video,
// web, and mixed experiment families.
//
// Paper reference: usually less than 2% with a few outliers — data is sent
// according to the schedule, so sleeping clients rarely miss anything.
#include <algorithm>

#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  struct Family {
    std::string name;
    std::vector<int> roles;
  };
  const std::vector<Family> families{
      {"video 56K x10", std::vector<int>(10, 0)},
      {"video 256K x10", std::vector<int>(10, 2)},
      {"video 512K x10", std::vector<int>(10, 3)},
      {"web x10", std::vector<int>(10, exp::kRoleWeb)},
      {"mixed 7v+3w",
       {0, 0, 1, 1, 2, 2, 3, exp::kRoleWeb, exp::kRoleWeb, exp::kRoleWeb}},
  };
  std::vector<exp::sweep::Item> items;
  for (const auto& f : families) {
    items.push_back({f.name, exp::ScenarioBuilder::fig4(
                                 f.roles, exp::IntervalPolicy::Fixed500)
                                 .build()});
  }

  // -- Uniform vs Gilbert-Elliott channel sweep ------------------------------------
  // Same average corruption rate, two very different loss processes:
  // independent per-frame drops vs correlated bad-state bursts.  The GE
  // rows fix p_bad_good (sojourn length) and solve p_good_bad for the
  // target average, so the curves are comparable point by point.
  const std::vector<double> targets{0.005, 0.01, 0.02, 0.05, 0.1};
  const double p_bad_good = 0.02;
  const double loss_bad = 0.85;
  const double loss_good = 0.0;

  auto curve_base = [] {
    return exp::ScenarioBuilder{}
        .video(2, 1)
        .video(2, 2)
        .web(2)
        .policy(exp::IntervalPolicy::Fixed500)
        .seed(42)
        .duration_s(60.0);
  };
  std::vector<double> solved_p_good_bad;
  for (const double p : targets) {
    items.push_back({"uniform p=" + std::to_string(p),
                     curve_base().wireless_p_loss(p).build()});
  }
  for (const double p : targets) {
    auto b = curve_base().wireless_p_loss(0.0);
    const double f_bad = p / loss_bad;  // stationary bad-state fraction
    auto& ge = b.fault_spec().ge;
    ge.enabled = true;
    ge.p_good_bad = p_bad_good * f_bad / (1.0 - f_bad);
    ge.p_bad_good = p_bad_good;
    ge.loss_good = loss_good;
    ge.loss_bad = loss_bad;
    solved_p_good_bad.push_back(ge.p_good_bad);
    items.push_back({"ge p=" + std::to_string(p), b.build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Packet loss across experiment families (500 ms interval)"};
  auto& fam = rep.section();
  for (std::size_t i = 0; i < families.size(); ++i) {
    const auto& clients = sweep.outcomes[i].record.clients;
    double mx = 0, app = 0;
    int under2 = 0;
    for (const auto& c : clients) {
      mx = std::max(mx, c.loss_pct);
      app += c.app_loss_pct;
      under2 += c.loss_pct < 2.0;
    }
    fam.row()
        .cell("family", families[i].name)
        .cell("avg-loss%", exp::average_loss_pct(clients), 2)
        .cell("max-loss%", mx, 2)
        .cell("<2%-count", under2)
        .cell("app-loss-avg%", app / static_cast<double>(clients.size()), 2);
  }
  rep.note("paper: typically < 2% missed packets, a few outliers.");

  const auto miss_sum = [](const exp::sweep::RunRecord& r) {
    std::uint64_t m = 0;
    for (const auto& c : r.clients) m += c.schedules_missed;
    return m;
  };
  auto& uni = rep.section("uniform loss (mixed 4v+2w, 60 s)");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& r = sweep.outcomes[families.size() + i].record;
    uni.row()
        .cell("p", targets[i], 3)
        .cell("avg-loss%", exp::average_loss_pct(r.clients), 3)
        .cell("avg-saved%", exp::summarize_all(r.clients).avg, 2)
        .cell("schedules-missed", miss_sum(r));
  }
  auto& ge = rep.section("gilbert-elliott loss (mixed 4v+2w, 60 s)");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& r =
        sweep.outcomes[families.size() + targets.size() + i].record;
    ge.row()
        .cell("p-avg", targets[i], 3)
        .cell("p-good-bad", solved_p_good_bad[i], 5)
        .cell("p-bad-good", p_bad_good, 3)
        .cell("loss-bad", loss_bad, 2)
        .cell("avg-loss%", exp::average_loss_pct(r.clients), 3)
        .cell("avg-saved%", exp::summarize_all(r.clients).avg, 2)
        .cell("schedules-missed", miss_sum(r))
        .cell("ge-bad-entries", r.fault_stats.ge_bad_entries);
  }
  rep.note(
      "same average rate, different process: correlated GE bursts take out "
      "whole schedule+burst exchanges where uniform loss nicks single "
      "frames.");
  return bench::emit(rep, opts);
}

// Section 4.3 "Packets lost or dropped": per-client loss across the video,
// web, and mixed experiment families.
//
// Paper reference: usually less than 2% with a few outliers — data is sent
// according to the schedule, so sleeping clients rarely miss anything.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Packet loss across experiment families (500 ms interval)");

  struct Family {
    std::string name;
    std::vector<int> roles;
  };
  std::vector<Family> families{
      {"video 56K x10", std::vector<int>(10, 0)},
      {"video 256K x10", std::vector<int>(10, 2)},
      {"video 512K x10", std::vector<int>(10, 3)},
      {"web x10", std::vector<int>(10, exp::kRoleWeb)},
      {"mixed 7v+3w", {0, 0, 1, 1, 2, 2, 3, exp::kRoleWeb, exp::kRoleWeb,
                       exp::kRoleWeb}},
  };
  std::vector<exp::ScenarioConfig> cfgs;
  for (const auto& f : families) {
    exp::ScenarioConfig cfg;
    cfg.roles = f.roles;
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-16s %10s %10s %10s %14s\n", "family", "avg-loss%",
              "max-loss%", "<2%-count", "app-loss(avg)%");
  for (std::size_t i = 0; i < families.size(); ++i) {
    double mx = 0, app = 0;
    int under2 = 0;
    for (const auto& c : results[i].clients) {
      mx = std::max(mx, c.loss_pct);
      app += c.app_loss_pct;
      under2 += c.loss_pct < 2.0;
    }
    std::printf("%-16s %10.2f %10.2f %7d/10 %14.2f\n",
                families[i].name.c_str(),
                exp::average_loss_pct(results[i].clients), mx, under2,
                app / results[i].clients.size());
  }
  std::printf("\npaper: typically < 2%% missed packets, a few outliers.\n");
  return 0;
}

// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one of the paper's artifacts and prints the
// measured series next to the paper's reported values, so shape deviations
// are visible at a glance.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/scenario.hpp"

namespace pp::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_header() {
  std::printf("%-14s %-12s %8s %8s %8s %8s %10s\n", "pattern", "interval",
              "avg%", "min%", "max%", "loss%", "paper-avg%");
}

inline void print_row(const std::string& pattern, const std::string& interval,
                      const exp::Summary& s, double loss_pct,
                      const char* paper = "-") {
  std::printf("%-14s %-12s %8.1f %8.1f %8.1f %8.2f %10s\n", pattern.c_str(),
              interval.c_str(), s.avg, s.min, s.max, loss_pct, paper);
}

// The paper's five Figure-4 access patterns, ten clients each.
// 0=56K 1=128K 2=256K 3=512K.
inline std::vector<std::pair<std::string, std::vector<int>>> fig4_patterns() {
  return {
      {"56K", std::vector<int>(10, 0)},
      {"256K", std::vector<int>(10, 2)},
      {"512K", std::vector<int>(10, 3)},
      {"56K_512K", {0, 0, 0, 0, 0, 3, 3, 3, 3, 3}},
      {"All", {0, 0, 0, 0, 0, 0, 1, 2, 2, 3}},
  };
}

// Figure 5: seven video clients + three web clients.
inline std::vector<std::pair<std::string, std::vector<int>>> fig5_patterns() {
  using exp::kRoleWeb;
  auto mixed = [](std::vector<int> video) {
    video.insert(video.end(), {kRoleWeb, kRoleWeb, kRoleWeb});
    return video;
  };
  return {
      {"56K/TCP", mixed(std::vector<int>(7, 0))},
      {"256K/TCP", mixed(std::vector<int>(7, 2))},
      {"512K/TCP", mixed(std::vector<int>(7, 3))},
      {"All/TCP", mixed({0, 0, 1, 1, 2, 2, 3})},
  };
}

inline std::vector<std::pair<std::string, exp::IntervalPolicy>>
dynamic_intervals() {
  return {{"100ms", exp::IntervalPolicy::Fixed100},
          {"500ms", exp::IntervalPolicy::Fixed500},
          {"variable", exp::IntervalPolicy::Variable}};
}

// Run a batch of scenarios in parallel, preserving order.
inline std::vector<exp::ScenarioResult> run_batch(
    const std::vector<exp::ScenarioConfig>& cfgs) {
  std::vector<std::function<exp::ScenarioResult()>> tasks;
  tasks.reserve(cfgs.size());
  for (const auto& c : cfgs)
    tasks.emplace_back([c] { return exp::run_scenario(c); });
  return exp::run_parallel(tasks);
}

}  // namespace pp::bench

// Figure 7 reproduction: fixed-size TCP/UDP slots at a 500 ms burst
// interval with medium background TCP traffic.  The TCP slot weight is
// varied (10% / 33% / 56%).
//
// Left panel: energy for ten multimedia clients (by fidelity) — a larger
// TCP slot means every client stays awake longer, wasting energy.
// Right panel: the TCP client's energy (bars) and end-to-end latency
// (dots) — shrinking the TCP slot raises background-traffic latency.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Figure 7: slotted static schedule @ 500 ms");

  const std::vector<double> weights{0.10, 0.33, 0.56};
  std::vector<exp::ScenarioConfig> cfgs;
  for (int fidelity : {0, 1, 2, 3}) {
    for (double w : weights) {
      exp::ScenarioConfig cfg;
      // Nine video clients of one fidelity + one background web client
      // ("medium" background traffic).
      cfg.roles = std::vector<int>(9, fidelity);
      cfg.roles.push_back(exp::kRoleWeb);
      cfg.policy = exp::IntervalPolicy::SlottedStatic500;
      cfg.slotted_tcp_weight = w;
      cfg.web_think_mean_s = 2.0;  // medium background level
      cfg.seed = 42;
      cfg.duration_s = 140.0;
      cfgs.push_back(cfg);
    }
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("left panel: UDP client energy used (%% of naive; lower is "
              "better)\n");
  std::printf("%-8s %14s %14s %14s\n", "stream", "TCP wt=10%",
              "TCP wt=33%", "TCP wt=56%");
  int idx = 0;
  for (int fidelity : {0, 1, 2, 3}) {
    double used[3];
    for (int k = 0; k < 3; ++k) {
      const auto s = exp::summarize_video(results[idx + k].clients);
      used[k] = 100.0 - s.avg;  // energy *used*, as the paper plots
    }
    std::printf("%-8s %13.1f%% %13.1f%% %13.1f%%\n",
                exp::role_name(fidelity).c_str(), used[0], used[1], used[2]);
    idx += 3;
  }

  std::printf("\nright panel: the TCP (background) client\n");
  std::printf("%-12s %16s %22s\n", "TCP weight", "energy used (%)",
              "end-to-end latency (ms)");
  // Use the 256K block (paper's "medium general client" panel).
  idx = 6;
  for (int k = 0; k < 3; ++k) {
    const auto& res = results[idx + k];
    double energy_used = 0, latency = 0;
    for (const auto& c : res.clients) {
      if (exp::is_video_role(c.role)) continue;
      energy_used = 100.0 - c.saved_pct;
      latency = c.page_time_ms;
    }
    std::printf("%10.0f%% %15.1f%% %22.0f\n", weights[k] * 100.0,
                energy_used, latency);
  }
  std::printf(
      "\npaper: a small TCP slot minimizes UDP-client energy but inflates "
      "TCP latency;\na large slot wastes energy on every client.\n");
  return 0;
}

// Figure 7 reproduction: fixed-size TCP/UDP slots at a 500 ms burst
// interval with medium background TCP traffic.  The TCP slot weight is
// varied (10% / 33% / 56%).
//
// Left panel: energy for ten multimedia clients (by fidelity) — a larger
// TCP slot means every client stays awake longer, wasting energy.
// Right panel: the TCP client's energy (bars) and end-to-end latency
// (dots) — shrinking the TCP slot raises background-traffic latency.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::vector<double> weights{0.10, 0.33, 0.56};
  std::vector<exp::sweep::Item> items;
  for (int fidelity : {0, 1, 2, 3}) {
    for (double w : weights) {
      items.push_back(
          {exp::role_name(fidelity) + "/w" + std::to_string(w),
           exp::ScenarioBuilder::fig7(fidelity, w).build()});
    }
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Figure 7: slotted static schedule @ 500 ms"};
  auto& left =
      rep.section("left panel: UDP client energy used (% of naive; lower is "
                  "better)");
  int idx = 0;
  for (int fidelity : {0, 1, 2, 3}) {
    auto& row = left.row().cell("stream", exp::role_name(fidelity));
    static const char* kCols[3] = {"TCP wt=10%", "TCP wt=33%", "TCP wt=56%"};
    for (int k = 0; k < 3; ++k) {
      const auto s =
          exp::summarize_video(sweep.outcomes[idx + k].record.clients);
      row.cell(kCols[k], 100.0 - s.avg, 1);  // energy *used*, as plotted
    }
    idx += 3;
  }

  // Use the 256K block (paper's "medium general client" panel).
  auto& right = rep.section("right panel: the TCP (background) client");
  idx = 6;
  for (int k = 0; k < 3; ++k) {
    double energy_used = 0, latency = 0;
    for (const auto& c : sweep.outcomes[idx + k].record.clients) {
      if (exp::is_video_role(c.role)) continue;
      energy_used = 100.0 - c.saved_pct;
      latency = c.page_time_ms;
    }
    right.row()
        .cell("tcp-weight%", weights[k] * 100.0, 0)
        .cell("energy-used%", energy_used, 1)
        .cell("latency-ms", latency, 0);
  }
  rep.note(
      "paper: a small TCP slot minimizes UDP-client energy but inflates "
      "TCP latency; a large slot wastes energy on every client.");
  return bench::emit(rep, opts);
}

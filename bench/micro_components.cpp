// google-benchmark microbenchmarks for the hot components: event queue,
// RNG, schedule construction, the marker, and whole-scenario throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "exp/scenario.hpp"
#include "proxy/marker.hpp"
#include "proxy/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pp;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng{1};
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(sim::Time::ns(static_cast<std::int64_t>(rng.next_u64() % 1'000'000)),
             [] {});
    }
    while (!q.empty()) q.pop().fn();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(10'000);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng{7};
  std::uint64_t sink = 0;
  for (auto _ : state) sink ^= rng.next_u64();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngU64);

void BM_SchedulerBuild(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  proxy::FixedIntervalScheduler sched{sim::Time::ms(100)};
  std::vector<proxy::BandwidthEstimator::Sample> samples{
      {100, 2e-3}, {700, 3.2e-3}, {1400, 4.6e-3}};
  proxy::BandwidthEstimator est{samples};
  std::vector<proxy::ClientDemand> demands;
  for (int i = 0; i < clients; ++i) {
    demands.push_back({net::Ipv4Addr{static_cast<std::uint32_t>(i + 1)},
                       10'000, 5'000, 8});
  }
  for (auto _ : state) {
    auto b = sched.build(demands, est);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_SchedulerBuild)->Arg(10)->Arg(100);

void BM_MarkerEgress(benchmark::State& state) {
  proxy::BurstMarker m;
  std::uint64_t seq = 0;
  m.bytes_written(1ull << 40);
  for (auto _ : state) {
    net::Packet p = net::make_packet();
    p.proto = net::Protocol::Tcp;
    p.payload = 1400;
    p.tcp.seq = seq + 1;
    seq += 1400;
    m.on_egress(p);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MarkerEgress);

void BM_ScenarioSecondsSimulated(benchmark::State& state) {
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.roles = {0, 0, 0};
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 5;
    cfg.duration_s = 30.0;
    auto res = exp::run_scenario(cfg);
    benchmark::DoNotOptimize(res);
  }
  // Items = simulated seconds, so the rate reads as sim-seconds/second.
  state.SetItemsProcessed(state.iterations() * 30);
}
BENCHMARK(BM_ScenarioSecondsSimulated)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

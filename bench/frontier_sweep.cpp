// The energy-delay Pareto frontier of the scheduler zoo.
//
// Grid: load (video client count x fidelity) x channel burstiness (quality
// ladder steepness), with every policy run on every cell:
//
//   fixed-500ms      — the paper's dynamic baseline (channel-blind)
//   lqf-500ms        — longest-queue-first priority, tail starved
//   opportunistic    — defer worst-rung clients within their deadline slack
//   probabilistic    — randomized buffer-threshold admission (q/(q+q0))
//
// Each cell reports mean downlink datagram delay against mean per-client
// energy: one (delay, energy) point per policy, the cell's Pareto frontier.
// On bursty channels the opportunistic policy should strictly dominate LQF
// (lower delay AND lower energy): deferred clients sleep through fades
// instead of burning the interval awake re-trying a dead channel, and the
// reclaimed airtime drains good-state queues sooner.
//
// --smoke shrinks the grid for the bench-smoke ctest label.
#include <cstring>
#include <string>

#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const double duration = smoke ? 24.0 : 60.0;

  struct Load {
    const char* name;
    int clients;
    int fidelity;
  };
  // The heavy cell overcommits the 500 ms interval (the regime where who
  // gets airtime matters); the light cell fits comfortably.
  const std::vector<Load> loads{
      {"6x128K", 6, 1},
      {"12x256K", 12, 2},
  };
  struct Burst {
    const char* name;
    double burstiness;
  };
  const std::vector<Burst> bursts{
      {"calm", 0.3},
      {"bursty", 0.85},
  };
  struct Policy {
    const char* name;
    exp::IntervalPolicy policy;
  };
  const std::vector<Policy> policies{
      {"fixed-500ms", exp::IntervalPolicy::Fixed500},
      {"lqf-500ms", exp::IntervalPolicy::LongestQueue500},
      {"opportunistic", exp::IntervalPolicy::Opportunistic500},
      {"probabilistic", exp::IntervalPolicy::Probabilistic500},
  };

  std::vector<exp::sweep::Item> items;
  for (const auto& l : loads) {
    for (const auto& b : bursts) {
      for (const auto& p : policies) {
        const std::string name = std::string{l.name} + "/" + b.name + "/" +
                                 p.name;
        items.push_back(
            {name, exp::ScenarioBuilder{}
                       .video(l.clients, l.fidelity)
                       // Fixed-rate streams: RealServer-style downshift
                       // would collapse demand on lossy cells and mask the
                       // policy differences the sweep exists to measure.
                       .video_adaptive(false)
                       .policy(p.policy)
                       .seed(42)
                       .duration_s(duration)
                       .wireless_p_loss(0.0)  // the ladder is the only loss
                       .channel(channel::ChannelSpec::ladder(3, b.burstiness))
                       .build()});
      }
    }
  }
  const auto sweep = bench::run_battery(items, opts);

  struct Point {
    // pp-lint: allow(naked-duration): derived report statistic, not sim state
    double delay_ms = 0;
    double energy_mj = 0;
  };
  // points[load][burst][policy]
  std::vector<Point> points(items.size());

  bench::Report rep{
      "Frontier sweep: energy vs delay across load x channel burstiness"};
  auto& sec = rep.section();
  std::size_t idx = 0;
  for (const auto& l : loads) {
    for (const auto& b : bursts) {
      for (const auto& p : policies) {
        const auto& cs = sweep.outcomes[idx].record.clients;
        double energy = 0, saved = 0, loss = 0, delay_weighted = 0;
        std::uint64_t samples = 0;
        for (const auto& c : cs) {
          energy += c.energy_mj;
          saved += c.saved_pct;
          loss += c.loss_pct;
          delay_weighted +=
              c.mean_delay_ms * static_cast<double>(c.delay_samples);
          samples += c.delay_samples;
        }
        const double n = static_cast<double>(cs.size());
        Point pt;
        pt.energy_mj = energy / n;
        pt.delay_ms =
            samples > 0 ? delay_weighted / static_cast<double>(samples) : 0;
        points[idx] = pt;
        sec.row()
            .cell("load", l.name)
            .cell("channel", b.name)
            .cell("policy", p.name)
            .cell("mean-delay-ms", pt.delay_ms, 1)
            .cell("energy-mJ", pt.energy_mj, 1)
            .cell("loss%", loss / n, 2)
            .cell("saved%", saved / n, 1);
        ++idx;
      }
    }
  }

  // Dominance audit: per cell, does the opportunistic point sit strictly
  // below-left of LQF (less delay AND less energy)?
  std::size_t cell = 0;
  for (const auto& l : loads) {
    for (const auto& b : bursts) {
      const Point& lqf = points[cell * policies.size() + 1];
      const Point& opp = points[cell * policies.size() + 2];
      const bool dominates =
          opp.delay_ms < lqf.delay_ms && opp.energy_mj < lqf.energy_mj;
      rep.note(std::string{l.name} + "/" + b.name +
               ": opportunistic vs lqf delta-delay-ms=" +
               std::to_string(opp.delay_ms - lqf.delay_ms) +
               " delta-energy-mJ=" +
               std::to_string(opp.energy_mj - lqf.energy_mj) +
               (dominates ? "  [strictly dominates]" : ""));
      ++cell;
    }
  }
  rep.note(
      "expected: on bursty cells opportunistic strictly dominates lqf — "
      "deferring worst-rung clients converts awake-through-fade waste into "
      "sleep and gives the airtime to good-state queues.");
  return bench::emit(rep, opts);
}

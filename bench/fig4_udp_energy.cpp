// Figure 4 reproduction: ten clients viewing UDP (video) streams with
// 100 ms, 500 ms, and variable burst intervals, for five access patterns
// (56K, 256K, 512K, half-and-half, mixed-all).  Reports average, minimum,
// and maximum energy saved versus the naive client.
//
// Paper reference (500 ms): 56K ~77%, 256K ~66%, 512K ~53%; the two mixed
// patterns average ~69%.  100 ms is several points worse than 500 ms
// (5x the WNIC wake transitions); variable falls in between for
// high-bandwidth streams and tracks 100 ms for low-bandwidth ones.
#include <map>

#include "bench_util.hpp"
#include "workload/video.hpp"

int main() {
  using namespace pp;
  bench::heading("Figure 4: ten UDP video clients, energy saved vs naive");

  const std::map<std::string, std::map<std::string, const char*>> paper{
      {"56K", {{"500ms", "77"}}},
      {"256K", {{"500ms", "66"}}},
      {"512K", {{"500ms", "53"}}},
      {"56K_512K", {{"500ms", "~69"}}},
      {"All", {{"500ms", "~69"}}},
  };

  std::vector<exp::ScenarioConfig> cfgs;
  std::vector<std::pair<std::string, std::string>> labels;
  for (const auto& [iname, policy] : bench::dynamic_intervals()) {
    for (const auto& [pname, roles] : bench::fig4_patterns()) {
      exp::ScenarioConfig cfg;
      cfg.roles = roles;
      cfg.policy = policy;
      cfg.seed = 42;
      cfg.duration_s = 140.0;
      cfgs.push_back(cfg);
      labels.emplace_back(pname, iname);
    }
  }
  const auto results = bench::run_batch(cfgs);

  std::string last_interval;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [pattern, interval] = labels[i];
    if (interval != last_interval) {
      std::printf("\n-- burst interval: %s --\n", interval.c_str());
      bench::row_header();
      last_interval = interval;
    }
    const char* ref = "-";
    if (auto pit = paper.find(pattern); pit != paper.end()) {
      if (auto iit = pit->second.find(interval); iit != pit->second.end())
        ref = iit->second;
    }
    bench::print_row(pattern, interval,
                     exp::summarize_all(results[i].clients),
                     exp::average_loss_pct(results[i].clients), ref);
  }

  // The 512K anomaly (Section 4.3): peak demand of ten 512K streams
  // exceeds the effective wireless bandwidth, so RealServer-style
  // adaptation downshifts some streams.
  std::printf("\n512K stream adaptation (500 ms interval):\n");
  for (const auto& c : results[7].clients) {  // 500ms block, 512K pattern
    if (!exp::is_video_role(c.role)) continue;
    std::printf("  client %-12s final fidelity=%dK  app-loss=%.2f%%\n",
                c.ip.str().c_str(),
                c.video_fidelity_final >= 0
                    ? pp::workload::kFidelities[c.video_fidelity_final]
                          .nominal_kbps
                    : -1,
                c.app_loss_pct);
  }
  return 0;
}

// Figure 4 reproduction: ten clients viewing UDP (video) streams with
// 100 ms, 500 ms, and variable burst intervals, for five access patterns
// (56K, 256K, 512K, half-and-half, mixed-all).  Reports average, minimum,
// and maximum energy saved versus the naive client.
//
// Paper reference (500 ms): 56K ~77%, 256K ~66%, 512K ~53%; the two mixed
// patterns average ~69%.  100 ms is several points worse than 500 ms
// (5x the WNIC wake transitions); variable falls in between for
// high-bandwidth streams and tracks 100 ms for low-bandwidth ones.
#include <map>

#include "bench/battery.hpp"
#include "exp/builder.hpp"
#include "workload/video.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::map<std::string, std::map<std::string, const char*>> paper{
      {"56K", {{"500ms", "77"}}},
      {"256K", {{"500ms", "66"}}},
      {"512K", {{"500ms", "53"}}},
      {"56K_512K", {{"500ms", "~69"}}},
      {"All", {{"500ms", "~69"}}},
  };

  std::vector<exp::sweep::Item> items;
  std::vector<std::pair<std::string, std::string>> labels;
  for (const auto& [iname, policy] : exp::presets::dynamic_intervals()) {
    for (const auto& [pname, roles] : exp::presets::fig4_patterns()) {
      items.push_back({pname + "/" + iname,
                       exp::ScenarioBuilder::fig4(roles, policy).build()});
      labels.emplace_back(pname, iname);
    }
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Figure 4: ten UDP video clients, energy saved vs naive"};
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    const auto& [pattern, interval] = labels[i];
    const auto& clients = sweep.outcomes[i].record.clients;
    const auto s = exp::summarize_all(clients);
    const char* ref = "-";
    if (auto pit = paper.find(pattern); pit != paper.end()) {
      if (auto iit = pit->second.find(interval); iit != pit->second.end())
        ref = iit->second;
    }
    rep.section("burst interval: " + interval)
        .row()
        .cell("pattern", pattern)
        .cell("avg%", s.avg, 1)
        .cell("min%", s.min, 1)
        .cell("max%", s.max, 1)
        .cell("loss%", exp::average_loss_pct(clients), 2)
        .cell("paper-avg%", ref);
  }

  // The 512K anomaly (Section 4.3): peak demand of ten 512K streams
  // exceeds the effective wireless bandwidth, so RealServer-style
  // adaptation downshifts some streams.
  auto& adapt = rep.section("512K stream adaptation (500 ms interval)");
  for (const auto& c : sweep.outcomes[7].record.clients) {
    if (!exp::is_video_role(c.role)) continue;
    adapt.row()
        .cell("client", c.ip.str())
        .cell("final-fidelity-kbps",
              c.video_fidelity_final >= 0
                  ? workload::kFidelities[c.video_fidelity_final].nominal_kbps
                  : -1)
        .cell("app-loss%", c.app_loss_pct, 2);
  }
  return bench::emit(rep, opts);
}

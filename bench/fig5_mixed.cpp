// Figure 5 reproduction: ten clients, seven viewing UDP (video) streams and
// three downloading TCP (HTTP) data, for 100 ms / 500 ms / variable burst
// intervals.  One bar pair per access pattern: UDP clients vs TCP clients.
//
// Paper reference: savings range from just over 50% to just under 90%;
// best-case energy savings among video clients is similar across
// fidelities (stream adaptation, Section 4.3); TCP clients show lower
// variance than the UDP ones.
#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Figure 5: 7 video + 3 web clients, energy saved by group");

  std::vector<exp::ScenarioConfig> cfgs;
  std::vector<std::pair<std::string, std::string>> labels;
  for (const auto& [iname, policy] : bench::dynamic_intervals()) {
    for (const auto& [pname, roles] : bench::fig5_patterns()) {
      exp::ScenarioConfig cfg;
      cfg.roles = roles;
      cfg.policy = policy;
      cfg.seed = 42;
      cfg.duration_s = 140.0;
      cfgs.push_back(cfg);
      labels.emplace_back(pname, iname);
    }
  }
  const auto results = bench::run_batch(cfgs);

  std::string last_interval;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [pattern, interval] = labels[i];
    if (interval != last_interval) {
      std::printf("\n-- burst interval: %s --\n", interval.c_str());
      std::printf("%-12s  %28s   %28s\n", "", "UDP clients (avg/min/max %)",
                  "TCP clients (avg/min/max %)");
      last_interval = interval;
    }
    const auto v = exp::summarize_video(results[i].clients);
    const auto t = exp::summarize_tcp(results[i].clients);
    std::printf("%-12s  %8.1f %8.1f %8.1f    %8.1f %8.1f %8.1f\n",
                pattern.c_str(), v.avg, v.min, v.max, t.avg, t.min, t.max);
  }

  // Variance comparison (Section 4.3: "TCP clients have a lower variance").
  std::printf("\nspread (max-min) at 500 ms:\n");
  for (std::size_t i = 4; i < 8; ++i) {
    const auto v = exp::summarize_video(results[i].clients);
    const auto t = exp::summarize_tcp(results[i].clients);
    std::printf("  %-12s UDP spread=%5.1f  TCP spread=%5.1f\n",
                labels[i].first.c_str(), v.max - v.min, t.max - t.min);
  }
  return 0;
}

// Figure 5 reproduction: ten clients, seven viewing UDP (video) streams and
// three downloading TCP (HTTP) data, for 100 ms / 500 ms / variable burst
// intervals.  One bar pair per access pattern: UDP clients vs TCP clients.
//
// Paper reference: savings range from just over 50% to just under 90%;
// best-case energy savings among video clients is similar across
// fidelities (stream adaptation, Section 4.3); TCP clients show lower
// variance than the UDP ones.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  std::vector<exp::sweep::Item> items;
  std::vector<std::pair<std::string, std::string>> labels;
  for (const auto& [iname, policy] : exp::presets::dynamic_intervals()) {
    for (const auto& [pname, roles] : exp::presets::fig5_patterns()) {
      items.push_back({pname + "/" + iname,
                       exp::ScenarioBuilder::fig5(roles, policy).build()});
      labels.emplace_back(pname, iname);
    }
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Figure 5: 7 video + 3 web clients, energy saved by group"};
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    const auto& [pattern, interval] = labels[i];
    const auto v = exp::summarize_video(sweep.outcomes[i].record.clients);
    const auto t = exp::summarize_tcp(sweep.outcomes[i].record.clients);
    rep.section("burst interval: " + interval)
        .row()
        .cell("pattern", pattern)
        .cell("udp-avg%", v.avg, 1)
        .cell("udp-min%", v.min, 1)
        .cell("udp-max%", v.max, 1)
        .cell("tcp-avg%", t.avg, 1)
        .cell("tcp-min%", t.min, 1)
        .cell("tcp-max%", t.max, 1);
  }

  // Variance comparison (Section 4.3: "TCP clients have a lower variance").
  auto& spread = rep.section("spread (max-min) at 500 ms");
  for (std::size_t i = 4; i < 8; ++i) {
    const auto v = exp::summarize_video(sweep.outcomes[i].record.clients);
    const auto t = exp::summarize_tcp(sweep.outcomes[i].record.clients);
    spread.row()
        .cell("pattern", labels[i].first)
        .cell("udp-spread", v.max - v.min, 1)
        .cell("tcp-spread", t.max - t.min, 1);
  }
  return bench::emit(rep, opts);
}

// Section 4.2 "Multiple TCP clients": ten clients browsing the web, each
// with multiple concurrent TCP streams, over scripted (repeatable) traffic.
//
// Paper reference: clients save between 70 and 80% versus a naive client,
// for all three burst-interval policies, with lower variance than video.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  std::vector<exp::sweep::Item> items;
  std::vector<std::string> labels;
  for (const auto& [iname, policy] : exp::presets::dynamic_intervals()) {
    items.push_back({"webx10/" + iname, exp::ScenarioBuilder{}
                                            .web(10)
                                            .policy(policy)
                                            .seed(7)
                                            .duration_s(140.0)
                                            .build()});
    labels.push_back(iname);
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{
      "Multiple TCP clients: ten web-browsing clients, energy saved"};
  auto& sec = rep.section();
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    const auto& clients = sweep.outcomes[i].record.clients;
    const auto s = exp::summarize_all(clients);
    sec.row()
        .cell("pattern", "web x10")
        .cell("interval", labels[i])
        .cell("avg%", s.avg, 1)
        .cell("min%", s.min, 1)
        .cell("max%", s.max, 1)
        .cell("loss%", exp::average_loss_pct(clients), 2)
        .cell("paper-avg%", "70-80");
  }

  auto& detail = rep.section("per-client detail (500 ms)");
  for (const auto& c : sweep.outcomes[1].record.clients) {
    detail.row()
        .cell("client", c.ip.str())
        .cell("saved%", c.saved_pct, 1)
        .cell("pages", c.pages_completed)
        .cell("mean-page-ms", c.page_time_ms, 0)
        .cell("bytes", c.app_bytes);
  }
  return bench::emit(rep, opts);
}

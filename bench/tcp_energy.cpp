// Section 4.2 "Multiple TCP clients": ten clients browsing the web, each
// with multiple concurrent TCP streams, over scripted (repeatable) traffic.
//
// Paper reference: clients save between 70 and 80% versus a naive client,
// for all three burst-interval policies, with lower variance than video.
#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading(
      "Multiple TCP clients: ten web-browsing clients, energy saved");

  std::vector<exp::ScenarioConfig> cfgs;
  std::vector<std::string> labels;
  for (const auto& [iname, policy] : bench::dynamic_intervals()) {
    exp::ScenarioConfig cfg;
    cfg.roles = std::vector<int>(10, exp::kRoleWeb);
    cfg.policy = policy;
    cfg.seed = 7;
    cfg.duration_s = 140.0;
    cfgs.push_back(cfg);
    labels.push_back(iname);
  }
  const auto results = bench::run_batch(cfgs);

  bench::row_header();
  for (std::size_t i = 0; i < results.size(); ++i) {
    bench::print_row("web x10", labels[i],
                     exp::summarize_all(results[i].clients),
                     exp::average_loss_pct(results[i].clients), "70-80");
  }

  std::printf("\nper-client detail (500 ms):\n");
  for (const auto& c : results[1].clients) {
    std::printf(
        "  %-12s saved=%5.1f%% pages=%2d mean-page-time=%6.0f ms "
        "bytes=%llu\n",
        c.ip.str().c_str(), c.saved_pct, c.pages_completed, c.page_time_ms,
        static_cast<unsigned long long>(c.app_bytes));
  }
  return 0;
}

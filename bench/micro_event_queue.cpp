// Event-engine perf baseline (BENCH_sim_core.json).
//
// Measures the simulator core two ways:
//   micro    events/sec through sim::EventQueue for the two hot shapes —
//            schedule-fire (packet-sized captures, depth-64 churn) and
//            schedule-cancel (half the events cancelled before firing)
//   battery  cold vs warm wall time for a scaled-down Figure-7 battery
//            through the sweep engine (9 video + 1 web clients, 20 s,
//            two fidelities) — the end-to-end shape every figure pays
//
// Modes:
//   micro_event_queue                     table to stdout (micro only)
//   micro_event_queue --battery           adds the fig7 battery section
//   micro_event_queue --out=FILE          also write the JSON document
//   micro_event_queue --check=FILE        regression gate: re-measure the
//       micro numbers and fail (exit 1) if either drops more than 30%
//       below FILE's recorded events_per_sec (override the tolerance via
//       PP_PERF_TOLERANCE, a fraction, e.g. 0.5)
//
// Refresh the committed baseline from a Release build on a quiet machine:
//   cmake --preset perf && cmake --build --preset perf -j
//   ./build-perf/bench/micro_event_queue --battery --out=BENCH_sim_core.json
//
// pp-lint: allow(wall-clock): perf harness; wall time is the measurement
// here and never feeds simulation state.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/battery.hpp"
#include "bench/report.hpp"
#include "exp/builder.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace {

// pp-lint: allow(wall-clock): perf harness, see header note
using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// The capture every packet hop schedules: `this` plus a net::Packet.
struct PacketSized {
  unsigned char bytes[120] = {};
};
static_assert(pp::sim::EventCallback::fits_inline<PacketSized>());

constexpr int kDepth = 64;  // concurrent events, ~the testbed's working set

// Push/fire churn: every event fires.  Returns events/sec.
double measure_schedule_fire(std::int64_t target_events) {
  using pp::sim::EventQueue;
  using pp::sim::Time;
  EventQueue q;
  pp::sim::Rng rng{2026};
  std::uint64_t sink = 0;
  std::int64_t done = 0;
  const auto t0 = WallClock::now();
  while (done < target_events) {
    for (int i = 0; i < kDepth; ++i) {
      PacketSized payload;
      payload.bytes[0] = static_cast<unsigned char>(i);
      const auto when = static_cast<std::int64_t>(rng.next_u64() % 1'000'000);
      q.push(Time::ns(when), [&sink, payload] { sink += payload.bytes[0]; });
    }
    while (!q.empty()) {
      q.pop().fn();
      ++done;
    }
  }
  const double secs = seconds_since(t0);
  if (sink == 0) std::fprintf(stderr, "(impossible: sink == 0)\n");
  return static_cast<double>(done) / secs;
}

// Push/cancel/fire churn: half the scheduled events are cancelled before
// they fire.  Throughput counts every scheduled event (the work done).
double measure_schedule_cancel(std::int64_t target_events) {
  using pp::sim::EventQueue;
  using pp::sim::Time;
  EventQueue q;
  pp::sim::Rng rng{4052};
  std::int64_t scheduled = 0;
  const auto t0 = WallClock::now();
  while (scheduled < target_events) {
    pp::sim::EventHandle hs[kDepth];
    for (int i = 0; i < kDepth; ++i) {
      PacketSized payload;
      const auto when = static_cast<std::int64_t>(rng.next_u64() % 1'000'000);
      hs[i] = q.push(Time::ns(when), [payload] {});
    }
    scheduled += kDepth;
    for (int i = 0; i < kDepth; i += 2) hs[i].cancel();
    while (!q.empty()) q.pop().fn();
  }
  const double secs = seconds_since(t0);
  return static_cast<double>(scheduled) / secs;
}

double best_of(int trials, double (*fn)(std::int64_t), std::int64_t events) {
  double best = 0;
  for (int t = 0; t < trials; ++t) {
    const double eps = fn(events);
    if (eps > best) best = eps;
  }
  return best;
}

// Scaled-down Figure-7 battery: cold pass simulates, warm pass replays
// from the sweep cache.  Returns {cold_s, warm_s}.
struct BatteryTimes {
  double cold_s = 0;
  double warm_s = 0;
  std::size_t items = 0;
};

BatteryTimes measure_fig7_battery() {
  using namespace pp;
  namespace fs = std::filesystem;
  std::vector<exp::sweep::Item> items;
  for (int fidelity : {1, 2}) {
    items.push_back({"fig7-f" + std::to_string(fidelity) + "/w0.33/20s",
                     exp::ScenarioBuilder::fig7(fidelity, 0.33)
                         .duration_s(20.0)
                         .build()});
  }
  bench::BatteryOptions opts;
  opts.progress = false;
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("pp-perf-fig7." + std::to_string(::getpid()));
  opts.cache_dir = cache_dir.string();
  std::error_code ec;
  fs::remove_all(cache_dir, ec);  // guarantee the first pass is cold

  BatteryTimes bt;
  bt.items = items.size();
  auto t0 = WallClock::now();
  const auto cold = bench::run_battery(items, opts);
  bt.cold_s = seconds_since(t0);
  t0 = WallClock::now();
  const auto warm = bench::run_battery(items, opts);
  bt.warm_s = seconds_since(t0);
  fs::remove_all(cache_dir, ec);
  if (cold.stats.misses != items.size() || warm.stats.hits != items.size()) {
    std::fprintf(stderr,
                 "micro_event_queue: fig7 battery cache behaved "
                 "unexpectedly (cold misses %zu, warm hits %zu)\n",
                 cold.stats.misses, warm.stats.hits);
  }
  return bt;
}

// Pull `"events_per_sec":<num>` out of the row tagged with this bench
// name in a committed Report JSON document.  Returns < 0 when absent.
double baseline_events_per_sec(const std::string& doc,
                               const std::string& bench) {
  const std::string tag = "\"bench\":\"" + bench + "\"";
  const std::size_t row = doc.find(tag);
  if (row == std::string::npos) return -1;
  const std::string key = "\"events_per_sec\":";
  const std::size_t val = doc.find(key, row);
  if (val == std::string::npos) return -1;
  return std::strtod(doc.c_str() + val + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  std::string out_path;
  std::string check_path;
  bool with_battery = false;
  std::int64_t events = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
    } else if (arg == "--battery") {
      with_battery = true;
    } else if (arg.rfind("--events=", 0) == 0) {
      events = std::atoll(arg.c_str() + 9);
    }
  }

  // Warmup pass (page in, clock up), then best-of-3 measured trials.
  (void)measure_schedule_fire(events / 4);
  const double fire_eps = best_of(3, measure_schedule_fire, events);
  const double cancel_eps = best_of(3, measure_schedule_cancel, events);

  bench::Report rep{"sim core perf baseline"};
  auto& micro = rep.section("micro: event queue throughput");
  micro.row()
      .cell("bench", "schedule_fire")
      .cell("events_per_sec", fire_eps, 0)
      .cell("depth", kDepth);
  micro.row()
      .cell("bench", "schedule_cancel")
      .cell("events_per_sec", cancel_eps, 0)
      .cell("depth", kDepth);

  if (with_battery) {
    const BatteryTimes bt = measure_fig7_battery();
    auto& bat = rep.section("fig7 battery, scaled (9 video + 1 web, 20 s)");
    bat.row()
        .cell("pass", "cold")
        .cell("seconds", bt.cold_s, 2)
        .cell("items", static_cast<std::uint64_t>(bt.items));
    bat.row()
        .cell("pass", "warm")
        .cell("seconds", bt.warm_s, 2)
        .cell("items", static_cast<std::uint64_t>(bt.items));
  }
  rep.note(
      "refresh: Release build, quiet machine: "
      "micro_event_queue --battery --out=BENCH_sim_core.json");

  if (!check_path.empty()) {
    std::ifstream in{check_path};
    if (!in) {
      std::fprintf(stderr, "micro_event_queue: cannot read baseline %s\n",
                   check_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    double tolerance = 0.30;
    if (const char* env = std::getenv("PP_PERF_TOLERANCE")) {
      tolerance = std::strtod(env, nullptr);
    }
    int failures = 0;
    const struct {
      const char* bench;
      double measured;
    } checks[] = {{"schedule_fire", fire_eps},
                  {"schedule_cancel", cancel_eps}};
    for (const auto& c : checks) {
      const double base = baseline_events_per_sec(doc, c.bench);
      if (base <= 0) {
        std::fprintf(stderr, "micro_event_queue: baseline for %s missing\n",
                     c.bench);
        ++failures;
        continue;
      }
      const double floor = base * (1.0 - tolerance);
      const bool ok = c.measured >= floor;
      std::printf("%-16s %12.0f ev/s  baseline %12.0f  floor %12.0f  %s\n",
                  c.bench, c.measured, base, floor, ok ? "OK" : "REGRESSED");
      if (!ok) ++failures;
    }
    if (failures > 0) {
      std::fprintf(stderr,
                   "micro_event_queue: %d regression(s) beyond %.0f%% "
                   "(set PP_PERF_TOLERANCE to adjust)\n",
                   failures, tolerance * 100.0);
      return 1;
    }
    return 0;
  }

  if (!out_path.empty()) {
    std::ofstream out{out_path};
    out << rep.json() << "\n";
  }
  rep.print();
  return 0;
}

// Figure 6 reproduction: the effect of the early transition amount on
// wasted energy, for a single client with a 100 ms burst interval.
//
// One live run captures the wireless trace; the postmortem analyzer then
// replays it under early transition amounts of 0, 2, 4, 6, 8 and 10 ms —
// exactly the paper's methodology (the simulator reads the tcpdump trace).
//
// Paper reference: wasted energy decomposes into an "Early" component that
// grows with the early transition amount and a "MissedSched" component
// that grows as it shrinks; 6 ms is the best value, and missed packets
// range from 0.97% (10 ms early) to 1.83% (0 ms early).
//
// The scenario keeps its wireless trace, so it is uncacheable by design:
// the sweep engine always runs it live and hands back the full result.
#include "bench/battery.hpp"
#include "exp/builder.hpp"
#include "trace/postmortem.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::vector<exp::sweep::Item> items{
      {"fig6", exp::ScenarioBuilder::fig6().build()}};
  const auto sweep = bench::run_battery(items, opts);
  const auto& res = *sweep.outcomes[0].live;

  bench::Report rep{"Figure 6: early transition amount vs wasted energy"};
  auto& sec = rep.section();
  trace::PostmortemAnalyzer analyzer{res.trace};
  // pp-lint: allow(naked-duration): sweep axis label, converted at use
  for (int early_ms : {0, 2, 4, 6, 8, 10}) {
    client::DaemonConfig dc;
    dc.comp.early = sim::Time::ms(early_ms);
    const auto pm = analyzer.analyze(res.clients[0].ip, dc, res.horizon);
    sec.row()
        .cell("early-ms", early_ms)
        .cell("early-J", pm.early_wait_mj / 1000.0, 2)
        .cell("missed-sched-J", pm.missed_wait_mj / 1000.0, 2)
        .cell("total-J", (pm.early_wait_mj + pm.missed_wait_mj) / 1000.0, 2)
        .cell("missed-pkt%", pm.loss_fraction * 100.0, 2)
        .cell("sched-missed", pm.schedules_missed);
  }
  rep.note("live run: " + std::to_string(res.trace.size()) +
           " frames captured");
  rep.note(
      "paper: Early grows with the amount, MissedSched shrinks; 6 ms "
      "minimizes the total.");
  return bench::emit(rep, opts);
}

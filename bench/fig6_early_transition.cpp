// Figure 6 reproduction: the effect of the early transition amount on
// wasted energy, for a single client with a 100 ms burst interval.
//
// One live run captures the wireless trace; the postmortem analyzer then
// replays it under early transition amounts of 0, 2, 4, 6, 8 and 10 ms —
// exactly the paper's methodology (the simulator reads the tcpdump trace).
//
// Paper reference: wasted energy decomposes into an "Early" component that
// grows with the early transition amount and a "MissedSched" component
// that grows as it shrinks; 6 ms is the best value, and missed packets
// range from 0.97% (10 ms early) to 1.83% (0 ms early).
#include <cstdio>

#include "bench_util.hpp"
#include "trace/postmortem.hpp"

int main() {
  using namespace pp;
  bench::heading("Figure 6: early transition amount vs wasted energy");

  exp::ScenarioConfig cfg;
  cfg.roles = {0};  // a single 56K video client
  cfg.policy = exp::IntervalPolicy::Fixed100;
  cfg.seed = 19;
  cfg.duration_s = 140.0;
  cfg.keep_trace = true;
  // Stress the timing: heavier access-point jitter makes the trade-off
  // visible, as the paper's real access point did.
  net::AccessPointParams ap;
  ap.p_spike = 0.08;
  ap.spike_max = sim::Time::ms(8);
  cfg.ap = ap;
  const auto res = exp::run_scenario(cfg);
  std::printf("live run: %zu frames captured\n", res.trace.size());

  trace::PostmortemAnalyzer analyzer{res.trace};
  std::printf("\n%8s %12s %14s %12s %12s %12s\n", "early", "Early (J)",
              "MissedSched(J)", "total (J)", "missed-pkt%", "sched-missed");
  for (int early_ms : {0, 2, 4, 6, 8, 10}) {
    client::DaemonConfig dc;
    dc.comp.early = sim::Time::ms(early_ms);
    const auto rep =
        analyzer.analyze(res.clients[0].ip, dc, res.horizon);
    std::printf("%6dms %12.2f %14.2f %12.2f %12.2f %12llu\n", early_ms,
                rep.early_wait_mj / 1000.0, rep.missed_wait_mj / 1000.0,
                (rep.early_wait_mj + rep.missed_wait_mj) / 1000.0,
                rep.loss_fraction * 100.0,
                static_cast<unsigned long long>(rep.schedules_missed));
  }
  std::printf(
      "\npaper: Early grows with the amount, MissedSched shrinks; 6 ms "
      "minimizes the total.\n");
  return 0;
}

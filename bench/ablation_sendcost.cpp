// Ablation: the linear send-cost model (Section 3.2.2 "Bandwidth
// Constraints").  Scaling the calibrated model below 1.0 makes the proxy
// believe the channel is faster than it is, so bursts overrun their slots
// and subsequent clients sit awake waiting for data that arrives late —
// the exact failure mode the paper's microbenchmarks exist to prevent.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pp;
  bench::heading("Ablation: send-cost model calibration");

  std::vector<exp::ScenarioConfig> cfgs;
  const std::vector<double> scales{1.0, 0.7, 0.5, 0.3};
  for (double scale : scales) {
    exp::ScenarioConfig cfg;
    cfg.roles = std::vector<int>(10, 2);  // ten 256K clients
    cfg.policy = exp::IntervalPolicy::Fixed500;
    cfg.seed = 42;
    cfg.duration_s = 140.0;
    cfg.cost_model_scale = scale;
    cfgs.push_back(cfg);
  }
  const auto results = bench::run_batch(cfgs);

  std::printf("%-12s %8s %8s %8s %8s\n", "model scale", "avg%", "min%",
              "loss%", "ap-drops");
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const auto s = exp::summarize_all(results[i].clients);
    std::printf("%11.1fx %8.1f %8.1f %8.2f %8llu\n", scales[i], s.avg, s.min,
                exp::average_loss_pct(results[i].clients),
                static_cast<unsigned long long>(results[i].ap_drops));
  }
  std::printf(
      "\nan optimistic cost model overruns slots: later clients wake on "
      "time but their\ndata is still queued behind the overrun, wasting "
      "energy and missing packets.\n");
  return 0;
}

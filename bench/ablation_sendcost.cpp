// Ablation: the linear send-cost model (Section 3.2.2 "Bandwidth
// Constraints").  Scaling the calibrated model below 1.0 makes the proxy
// believe the channel is faster than it is, so bursts overrun their slots
// and subsequent clients sit awake waiting for data that arrives late —
// the exact failure mode the paper's microbenchmarks exist to prevent.
#include "bench/battery.hpp"
#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const auto opts = bench::parse_args(argc, argv);

  const std::vector<double> scales{1.0, 0.7, 0.5, 0.3};
  std::vector<exp::sweep::Item> items;
  for (double scale : scales) {
    items.push_back({"scale=" + std::to_string(scale),
                     exp::ScenarioBuilder{}
                         .video(10, 2)  // ten 256K clients
                         .policy(exp::IntervalPolicy::Fixed500)
                         .seed(42)
                         .duration_s(140.0)
                         .cost_model_scale(scale)
                         .build()});
  }
  const auto sweep = bench::run_battery(items, opts);

  bench::Report rep{"Ablation: send-cost model calibration"};
  auto& sec = rep.section();
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const auto& r = sweep.outcomes[i].record;
    const auto s = exp::summarize_all(r.clients);
    sec.row()
        .cell("model-scale", scales[i], 1)
        .cell("avg%", s.avg, 1)
        .cell("min%", s.min, 1)
        .cell("loss%", exp::average_loss_pct(r.clients), 2)
        .cell("ap-drops", r.ap_drops);
  }
  rep.note(
      "an optimistic cost model overruns slots: later clients wake on time "
      "but their data is still queued behind the overrun, wasting energy "
      "and missing packets.");
  return bench::emit(rep, opts);
}

// ChunkQueue unit contract: refcounted view lifetime, offset/length splits,
// per-datagram metadata preservation, and the zero-allocation steady state
// of the queue -> burst -> medium path.
//
// Like alloc_test, this binary replaces global operator new/delete with
// counting versions so the steady-state assertions measure the real heap,
// not a proxy for it.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>  // pp-lint: allow(raw-new): header name, not an expression
#include <utility>

#include "net/access_point.hpp"
#include "net/chunk.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/wireless.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

std::uint64_t g_allocs = 0;  // single-threaded binary; plain counter is fine

void* counted_alloc(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }  // pp-lint: allow(raw-new): counting operator new replacement under test
void* operator new[](std::size_t n) { return counted_alloc(n); }  // pp-lint: allow(raw-new): counting operator new replacement under test
// pp-lint: allow(raw-new): counting operator new replacement under test
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete[](void* p) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p, std::size_t) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pp::net {
namespace {

using sim::Time;

Packet test_packet(std::uint32_t payload, std::uint8_t host = 1) {
  Packet pkt = make_packet();
  pkt.src = Ipv4Addr::octets(10, 0, 0, 1);
  pkt.src_port = 5000;
  pkt.dst = Ipv4Addr::octets(172, 16, 0, host);
  pkt.dst_port = 7000;
  pkt.proto = Protocol::Udp;
  pkt.payload = payload;
  pkt.sent_at = Time::ms(42);
  return pkt;
}

struct TestMessage : Message {};

// -- Refcount lifetime -------------------------------------------------------------

TEST(ChunkQueueTest, SoleFullViewMovesPacketOutWithoutCopy) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  Packet pkt = test_packet(1000);
  const std::uint64_t id = pkt.id;
  auto msg = std::make_shared<const TestMessage>();
  pkt.data = msg;
  q.push(std::move(pkt));
  EXPECT_EQ(msg.use_count(), 2);  // ours + the queued datagram

  Packet out = q.pop_packet();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(out.id, id);               // the same packet, moved
  EXPECT_EQ(out.data.get(), msg.get());
  EXPECT_EQ(msg.use_count(), 2);       // ours + out; the datagram released
}

TEST(ChunkQueueTest, DatagramReleasedOnlyWhenLastViewGoes) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  Packet pkt = test_packet(1000);
  auto msg = std::make_shared<const TestMessage>();
  pkt.data = msg;
  q.push(std::move(pkt));

  q.split_front(400);  // two views over one datagram
  ASSERT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.front()->data->refs, 2u);
  EXPECT_EQ(msg.use_count(), 2);

  q.drop_front();  // one view down; the datagram must stay alive
  EXPECT_EQ(q.packets(), 1u);
  EXPECT_EQ(msg.use_count(), 2);

  q.drop_front();  // last view: payload storage released back to the pool
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(msg.use_count(), 1);
}

TEST(ChunkQueueTest, ClearReleasesEveryView) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  auto msg = std::make_shared<const TestMessage>();
  for (int i = 0; i < 4; ++i) {
    Packet pkt = test_packet(100);
    pkt.data = msg;
    q.push(std::move(pkt));
  }
  EXPECT_EQ(msg.use_count(), 5);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(msg.use_count(), 1);
}

// -- Splits ------------------------------------------------------------------------

TEST(ChunkQueueTest, SplitFrontDividesViewAndConservesBytes) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  q.push(test_packet(1000));
  q.mark_tail();
  q.split_front(400);

  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.bytes(), 1000u);  // byte total conserved across the split
  const Chunk* head = q.front();
  ASSERT_NE(head, nullptr);
  ASSERT_NE(head->next, nullptr);
  EXPECT_EQ(head->offset, 0u);
  EXPECT_EQ(head->length, 400u);
  EXPECT_EQ(head->next->offset, 400u);
  EXPECT_EQ(head->next->length, 600u);
  EXPECT_EQ(head->data, head->next->data);
  // The mark terminates the burst, so it must ride the LAST fragment.
  EXPECT_FALSE(head->marked);
  EXPECT_TRUE(head->next->marked);
  q.audit();

  // A shared partial view materializes as a copy sized to the view.
  Packet first = q.pop_packet();
  EXPECT_EQ(first.payload, 400u);
  EXPECT_FALSE(first.marked);
  Packet rest = q.pop_packet();
  EXPECT_EQ(rest.payload, 600u);
  EXPECT_TRUE(rest.marked);
}

// -- Metadata preservation ---------------------------------------------------------

TEST(ChunkQueueTest, PopPreservesMetadataAndOrsMark) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  Packet pkt = test_packet(640);
  pkt.marked = false;
  q.push(std::move(pkt));
  q.mark_tail();  // mark set on the view, not the datagram

  Packet out = q.pop_packet();
  EXPECT_TRUE(out.marked);  // view mark OR-ed onto the materialized packet
  EXPECT_EQ(out.dst, Ipv4Addr::octets(172, 16, 0, 1));
  EXPECT_EQ(out.dst_port, 7000);
  EXPECT_EQ(out.src_port, 5000);
  EXPECT_EQ(out.proto, Protocol::Udp);
  EXPECT_EQ(out.sent_at, Time::ms(42));  // arrival stamp for delay slack
}

TEST(ChunkQueueTest, AlreadyMarkedPacketStaysMarked) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  Packet pkt = test_packet(64);
  pkt.marked = true;
  q.push(std::move(pkt));
  EXPECT_TRUE(q.pop_packet().marked);
}

TEST(ChunkQueueTest, HandoffPreservesOrderAndTotals) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue src{pool};
  ChunkQueue dst{pool};
  std::uint64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    Packet pkt = test_packet(100 * (static_cast<std::uint32_t>(i) + 1));
    ids[i] = pkt.id;
    src.push(std::move(pkt));
  }
  src.pop_front_to(dst);  // per-hop handoff moves the view, not the bytes
  EXPECT_EQ(src.packets(), 2u);
  EXPECT_EQ(dst.packets(), 1u);
  EXPECT_EQ(dst.bytes(), 100u);
  src.move_all_to(dst);  // O(1) splice of the remainder
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(dst.packets(), 3u);
  EXPECT_EQ(dst.bytes(), 600u);
  dst.audit();
  for (std::uint64_t id : ids) EXPECT_EQ(dst.pop_packet().id, id);
}

TEST(ChunkQueueTest, WireBytesFollowProtocol) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  q.push(test_packet(1000));  // UDP: 20 IP + 8 UDP
  EXPECT_EQ(chunk_wire_bytes(*q.front()), 1028u);
  Packet tcp = test_packet(1000);
  tcp.proto = Protocol::Tcp;  // 20 IP + 20 TCP
  q.push(std::move(tcp));
  EXPECT_EQ(chunk_wire_bytes(*q.back()), 1040u);
}

// -- Zero-allocation steady state --------------------------------------------------

TEST(ChunkQueueAlloc, QueueChurnIsAllocationFreeAfterWarmup) {
  auto pool = std::make_shared<ChunkPool>();
  ChunkQueue q{pool};
  ChunkQueue chain{pool};
  auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < 32; ++i) q.push(test_packet(1000));
      while (!q.empty()) q.pop_front_to(chain);
      chain.mark_tail();
      while (!chain.empty()) (void)chain.pop_packet();
    }
  };
  churn(2);  // warmup: slabs and free lists reach steady size
  const std::uint64_t slabs = pool->slab_allocs();
  const std::uint64_t before = g_allocs;
  churn(50);
  EXPECT_EQ(g_allocs - before, 0u)
      << "queue push/handoff/pop churn hit the heap after warmup";
  EXPECT_EQ(pool->slab_allocs(), slabs) << "pool grew after warmup";
}

// Station stub for the end-to-end loop: always listening, discards frames.
struct CountingStation : WirelessStation {
  std::uint64_t packets = 0;
  bool listening() const override { return true; }
  void deliver(Packet, sim::Duration) override { ++packets; }
};

// The full downlink burst path — ChunkQueue -> wired Channel -> AccessPoint
// -> WirelessMedium -> station — allocates nothing per burst after warmup:
// chunk nodes recycle through the pool, the chains ride the event queue's
// inline callback storage, and every hop moves views instead of buffers.
TEST(ChunkQueueAlloc, BurstPathEndToEndIsAllocationFreeAfterWarmup) {
  sim::Simulator sim{7};
  WirelessMedium medium{sim};
  AccessPointParams app;
  app.p_spike = 0;  // spikes only stretch delays; keep the loop compact
  AccessPoint ap{sim, medium, app};
  PointToPointLink link{sim, WiredParams{}, ap, ap};
  CountingStation st;
  medium.attach_station(st, Ipv4Addr::octets(172, 16, 0, 1));

  auto pool = std::make_shared<ChunkPool>();
  sim::Time t = Time::ms(1);
  auto one_burst = [&] {
    ChunkQueue burst{pool};
    for (int i = 0; i < 25; ++i) burst.push(test_packet(1000));
    burst.mark_tail();
    sim.at(t, [&link, b = std::move(burst)]() mutable {
      link.send_burst_a_to_b(std::move(b));
    });
    t = t + Time::ms(100);
    sim.run_until(t);
  };
  for (int i = 0; i < 3; ++i) one_burst();  // warmup
  const std::uint64_t slabs = pool->slab_allocs();
  const std::uint64_t before = g_allocs;
  const std::uint64_t delivered = st.packets;
  for (int i = 0; i < 50; ++i) one_burst();
  EXPECT_EQ(g_allocs - before, 0u)
      << "queue -> burst -> medium path hit the heap after warmup";
  EXPECT_EQ(pool->slab_allocs(), slabs);
  EXPECT_EQ(st.packets - delivered, 50u * 25u);  // everything arrived
}

}  // namespace
}  // namespace pp::net

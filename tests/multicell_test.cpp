// Multi-cell engine tests: the lockstep-epoch exchange must produce
// bit-identical replay digests regardless of worker count, hash salt, and
// the order cells are dispatched in — and the backbone must actually carry
// traffic between cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/multicell.hpp"
#include "exp/scenario.hpp"
#include "net/addr.hpp"

namespace pp::exp {
namespace {

using sim::Time;

// Restores the process-wide hash salt on scope exit so tests compose.
struct ScopedHashSalt {
  explicit ScopedHashSalt(std::uint64_t salt) : prev_(net::hash_salt()) {
    net::set_hash_salt(salt);
  }
  ~ScopedHashSalt() { net::set_hash_salt(prev_); }

 private:
  std::uint64_t prev_;
};

// A small but non-trivial fleet: three cells of mixed video/web/idle
// clients, short horizon, cross-traffic on.
MultiCellConfig small_fleet() {
  MultiCellConfig mc;
  mc.num_cells = 3;
  mc.cell.roles = {1, kRoleWeb, kRoleIdle, kRoleIdle};
  mc.cell.policy = IntervalPolicy::Fixed500;
  mc.cell.seed = 42;
  mc.cell.duration_s = 6.0;
  mc.cell.web_pages = 3;
  mc.backbone_latency = Time::ms(20);
  mc.cross.period = Time::ms(150);
  mc.cross.bytes = 400;
  return mc;
}

TEST(MultiCell, BackboneCarriesTrafficBetweenCells) {
  const MultiCellConfig mc = small_fleet();
  MultiCellResult res = run_multicell(mc, /*threads=*/1);
  ASSERT_EQ(static_cast<int>(res.cells.size()), mc.num_cells);
  EXPECT_GT(res.backbone_messages, 0u);
  EXPECT_GT(res.events_total, 0u);
  // Idle clients run no application; any bytes they received arrived over
  // the backbone through the proxy's normal downlink path.
  std::uint64_t idle_bytes = 0;
  for (const ScenarioResult& cell : res.cells) {
    for (const ClientResult& c : cell.clients) {
      if (c.role == kRoleIdle) idle_bytes += c.bytes_received;
    }
  }
  EXPECT_GT(idle_bytes, 0u);
}

TEST(MultiCell, DigestIndependentOfWorkerCount) {
  const MultiCellConfig mc = small_fleet();
  const std::uint64_t serial = run_multicell(mc, 1).digest;
  ASSERT_NE(serial, 0u) << "observability disabled; digest test is vacuous";
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_multicell(mc, threads).digest)
        << "digest diverged at " << threads << " workers";
  }
}

TEST(MultiCell, DigestInvariantUnderHashSalt) {
  const MultiCellConfig mc = small_fleet();
  std::uint64_t a, b;
  {
    ScopedHashSalt s{1};
    a = run_multicell(mc, 2).digest;
  }
  {
    ScopedHashSalt s{0x9E3779B97F4A7C15ULL};
    b = run_multicell(mc, 2).digest;
  }
  EXPECT_EQ(a, b) << "hash-bucket iteration order leaked into behaviour";
}

TEST(MultiCell, DigestInvariantUnderCellDispatchOrder) {
  const MultiCellConfig mc = small_fleet();
  MultiCellTestbed forward{mc};
  const MultiCellResult fr = forward.run(2, {0, 1, 2});
  MultiCellTestbed reversed{mc};
  const MultiCellResult rr = reversed.run(2, {2, 1, 0});
  ASSERT_NE(fr.digest, 0u);
  EXPECT_EQ(fr.digest, rr.digest);
  EXPECT_EQ(fr.backbone_messages, rr.backbone_messages);
  EXPECT_EQ(fr.events_total, rr.events_total);
}

TEST(MultiCell, MergedRegistryAggregatesCells) {
  MultiCellConfig mc = small_fleet();
  mc.cell.keep_obs = true;  // retain per-cell registries to check against
  MultiCellResult res = run_multicell(mc, 1);
  // Counter names are cell-agnostic, so the merged registry must hold the
  // exact sum of the per-cell values, name by name.
  std::uint64_t merged = 0;
  if (const auto* c = res.merged.find_counter("proxy.schedules_sent"))
    merged = c->value();
  std::uint64_t per_cell_sum = 0;
  for (const ScenarioResult& cell : res.cells) {
    ASSERT_NE(cell.obs, nullptr);
    if (const auto* c = cell.obs->metrics.find_counter("proxy.schedules_sent"))
      per_cell_sum += c->value();
  }
  EXPECT_GT(per_cell_sum, 0u);
  EXPECT_EQ(merged, per_cell_sum);
}

TEST(MultiCell, SingleCellNoCrossTrafficMatchesPlainScenario) {
  // One cell with cross-traffic off is exactly run_scenario: same events,
  // same results — the epoch loop must not perturb anything.
  MultiCellConfig mc;
  mc.num_cells = 1;
  mc.cell.roles = {1, kRoleWeb};
  mc.cell.seed = 7;
  mc.cell.duration_s = 6.0;
  mc.cell.web_pages = 3;
  mc.cross.enabled = false;
  const MultiCellResult res = run_multicell(mc, 1);
  const ScenarioResult plain = run_scenario(mc.cell);
  ASSERT_EQ(res.cells.size(), 1u);
  EXPECT_EQ(res.backbone_messages, 0u);
  ASSERT_EQ(res.cells[0].clients.size(), plain.clients.size());
  for (std::size_t i = 0; i < plain.clients.size(); ++i) {
    EXPECT_EQ(res.cells[0].clients[i].packets_received,
              plain.clients[i].packets_received);
    EXPECT_EQ(res.cells[0].clients[i].bytes_received,
              plain.clients[i].bytes_received);
    EXPECT_DOUBLE_EQ(res.cells[0].clients[i].energy_mj,
                     plain.clients[i].energy_mj);
  }
}

TEST(MultiCell, SixteenBitClientAddressing) {
  EXPECT_EQ(testbed_client_ip(0).str(), "172.16.0.1");
  EXPECT_EQ(testbed_client_ip(254).str(), "172.16.0.255");
  EXPECT_EQ(testbed_client_ip(255).str(), "172.16.1.0");
  EXPECT_EQ(testbed_client_ip(6249).str(), "172.16.24.106");
  // Distinctness over a large prefix of the index space.
  EXPECT_NE(testbed_client_ip(255).raw(), testbed_client_ip(511).raw());
}

TEST(MultiCell, PerClientObsOffStillYieldsClientResults) {
  MultiCellConfig mc = small_fleet();
  mc.cell.per_client_obs = false;
  const MultiCellResult res = run_multicell(mc, 1);
  ASSERT_NE(res.digest, 0u);
  for (const ScenarioResult& cell : res.cells) {
    for (const ClientResult& c : cell.clients) {
      if (c.role == kRoleIdle) continue;
      EXPECT_GT(c.energy_mj, 0.0);
      EXPECT_GT(c.naive_mj, 0.0);
    }
  }
}

}  // namespace
}  // namespace pp::exp

// Tests for the Bounded Slowdown baseline client.
#include <gtest/gtest.h>

#include <memory>

#include "client/bsd_client.hpp"
#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "transport/udp.hpp"

namespace pp::client {
namespace {

using sim::Time;

struct BsdFixture : ::testing::Test {
  BsdFixture() {
    exp::TestbedParams tp;
    tp.num_clients = 0;
    tp.proxy.mode = proxy::ProxyMode::Passthrough;
    bed = std::make_unique<exp::Testbed>(
        tp,
        std::make_unique<proxy::FixedIntervalScheduler>(Time::ms(500)));
    bed->access_point().enable_psm(Time::ms(100));
    station = std::make_unique<BsdClient>(bed->sim(), bed->medium(),
                                          exp::testbed_client_ip(0), "bsd0");
    bed->access_point().register_psm_station(station->ip());
    server = &bed->add_server("srv");
    sock = std::make_unique<transport::UdpSocket>(*server, 7000);
  }

  std::unique_ptr<exp::Testbed> bed;
  std::unique_ptr<BsdClient> station;
  net::Node* server = nullptr;
  std::unique_ptr<transport::UdpSocket> sock;
};

TEST_F(BsdFixture, SkipLadderGrowsWhenIdle) {
  bed->start(Time::ms(400));
  bed->run_until(Time::sec(3));
  EXPECT_EQ(station->current_beacon_skip(), 8);  // capped maximum
}

TEST_F(BsdFixture, IdleClientSavesMoreThanPerBeaconPsm) {
  bed->start(Time::ms(400));
  bed->run_until(Time::sec(20));
  // Skipping up to 8 beacons: far fewer wakes than per-beacon PSM.
  EXPECT_GT(station->energy_saved_fraction(Time::sec(20)), 0.78);
}

TEST_F(BsdFixture, TrafficResetsTheLadder) {
  bed->start(Time::ms(400));
  bed->run_until(Time::sec(3));
  ASSERT_EQ(station->current_beacon_skip(), 8);
  // Parked traffic is delivered at a beacon the client attends; receiving
  // it resets the skip to 1.
  bed->sim().at(Time::ms(3050), [&] {
    sock->send_to(station->ip(), 7100, 600);
  });
  bed->run_until(Time::sec(5));
  EXPECT_GE(station->traffic().packets_received, 1u);
  // After the reset the ladder regrows from 1, so at some point shortly
  // after delivery it was small.
  EXPECT_GT(station->traffic().bytes_received, 0u);
}

TEST_F(BsdFixture, AwakeWindowCatchesImmediateResponses) {
  bed->start(Time::ms(400));
  transport::UdpSocket server_rx{*server, 7001};
  transport::UdpSocket client_sock{station->node(), 7100};
  // A request-like TCP uplink opens the awake window; verify by checking
  // the client stays listening right after sending.
  bed->sim().at(Time::ms(2500), [&] {
    net::Packet syn = net::make_packet();
    syn.src = station->ip();
    syn.dst = server->ip();
    syn.src_port = 40000;
    syn.dst_port = 80;
    syn.proto = net::Protocol::Tcp;
    syn.tcp.syn = true;
    station->node().send(std::move(syn));
  });
  bed->run_until(Time::ms(2700));
  EXPECT_TRUE(station->listening());  // inside the 300 ms awake window
  bed->run_until(Time::ms(3400));
  EXPECT_FALSE(station->listening());  // window over, dozing again
}

TEST_F(BsdFixture, ParkedFramesWaitForAnAttendedBeacon) {
  bed->start(Time::ms(400));
  bed->run_until(Time::sec(3));  // ladder at max: attends every 8th beacon
  bed->sim().at(Time::ms(3050), [&] {
    sock->send_to(station->ip(), 7100, 500);
  });
  bed->run_until(Time::ms(3150));
  // The 3.1 s beacon may pass while the client dozes; the frame stays
  // parked rather than being transmitted into the void.
  EXPECT_EQ(station->traffic().packets_missed, 0u);
  bed->run_until(Time::sec(5));
  EXPECT_EQ(station->traffic().packets_received, 1u);
  EXPECT_EQ(station->loss_fraction(), 0.0);
}

}  // namespace
}  // namespace pp::client

// Fault-injection layer tests: deterministic fault streams, the
// Gilbert-Elliott channel, component effects (AP stall, link flap, proxy
// pause), graceful degradation end-to-end through the wireless medium, and
// the auditor's fault-window pairing invariant.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "exp/builder.hpp"
#include "exp/scenario.hpp"
#include "exp/testbed.hpp"
#include "fault/plan.hpp"
#include "fault/spec.hpp"
#include "net/access_point.hpp"
#include "net/link.hpp"
#include "net/wireless.hpp"
#include "sim/simulator.hpp"

namespace pp::fault {
namespace {

using sim::Time;

const net::Ipv4Addr kClient = net::Ipv4Addr::octets(172, 16, 0, 1);

net::Packet downlink_to(net::Ipv4Addr dst) {
  net::Packet p = net::make_packet();
  p.src = net::Ipv4Addr::octets(10, 0, 0, 1);
  p.dst = dst;
  p.proto = net::Protocol::Udp;
  p.payload = 500;
  return p;
}

// -- Named RNG stream --------------------------------------------------------------

TEST(FaultStream, ReproduciblePerSeedAndIndependent) {
  sim::Rng a = fault_stream(42);
  sim::Rng b = fault_stream(42);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  sim::Rng c = fault_stream(43);
  sim::Rng d = fault_stream(42);
  // Different run seed diverges immediately; the stream tag keeps the
  // fault stream distinct from a raw Rng{seed} (the simulator's stream).
  EXPECT_NE(c.next_u64(), d.next_u64());
  EXPECT_NE(sim::Rng{42}.next_u64(), fault_stream(42).next_u64());
}

// -- Gilbert-Elliott channel -------------------------------------------------------

TEST(GilbertElliott, CorruptionSequenceIsDeterministic) {
  sim::Simulator sim1{7};
  sim::Simulator sim2{7};
  FaultSpec spec;
  spec.ge.enabled = true;
  spec.ge.p_good_bad = 0.1;
  spec.ge.p_bad_good = 0.2;
  FaultPlan p1{sim1, spec, 7};
  FaultPlan p2{sim2, spec, 7};
  const net::Packet pkt = downlink_to(kClient);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(p1.corrupted(pkt, kClient, Time::ms(i)),
              p2.corrupted(pkt, kClient, Time::ms(i)));
  }
  EXPECT_EQ(p1.stats().ge_losses, p2.stats().ge_losses);
  EXPECT_EQ(p1.stats().ge_bad_entries, p2.stats().ge_bad_entries);
  EXPECT_GT(p1.stats().ge_losses, 0u);
  EXPECT_GT(p1.stats().ge_bad_entries, 0u);
}

TEST(GilbertElliott, LossesClusterInBadState) {
  // With rare entries into a long, lossy bad state, overall loss must sit
  // far above the good-state rate yet losses must arrive in bursts: more
  // clustered than independent drops at the same average rate.
  sim::Simulator sim{11};
  FaultSpec spec;
  spec.ge.enabled = true;
  spec.ge.p_good_bad = 0.01;
  spec.ge.p_bad_good = 0.05;
  spec.ge.loss_good = 0.0;
  spec.ge.loss_bad = 0.9;
  FaultPlan plan{sim, spec, 11};
  const net::Packet pkt = downlink_to(kClient);
  const int n = 20000;
  int losses = 0;
  int adjacent = 0;  // lost frame immediately following a lost frame
  bool prev = false;
  for (int i = 0; i < n; ++i) {
    const bool lost = plan.corrupted(pkt, kClient, Time::ms(i));
    if (lost) {
      ++losses;
      if (prev) ++adjacent;
    }
    prev = lost;
  }
  const double rate = static_cast<double>(losses) / n;
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.5);
  // Independent losses would give adjacent/losses ~= rate; bursty losses
  // repeat far more often.
  EXPECT_GT(static_cast<double>(adjacent) / losses, 3.0 * rate);
}

TEST(GilbertElliott, PerClientChainsAreIndependent) {
  sim::Simulator sim{3};
  FaultSpec spec;
  spec.ge.enabled = true;
  spec.ge.p_good_bad = 0.05;
  spec.ge.p_bad_good = 0.05;
  spec.ge.loss_good = 0.0;
  spec.ge.loss_bad = 1.0;
  FaultPlan plan{sim, spec, 3};
  const net::Ipv4Addr other = net::Ipv4Addr::octets(172, 16, 0, 2);
  // Interleaved draws on two channels both make progress; the keying uses
  // the receiver for downlink and the source for uplink (AP receiver).
  const net::Packet down_a = downlink_to(kClient);
  net::Packet up_a = net::make_packet();
  up_a.src = kClient;
  up_a.dst = net::Ipv4Addr::octets(10, 0, 0, 1);
  int a_lost = 0;
  int b_lost = 0;
  for (int i = 0; i < 5000; ++i) {
    if (plan.corrupted(down_a, kClient, Time::ms(i))) ++a_lost;
    if (plan.corrupted(downlink_to(other), other, Time::ms(i))) ++b_lost;
    // Uplink frame from kClient advances the same chain as its downlink.
    plan.corrupted(up_a, net::Ipv4Addr{}, Time::ms(i));
  }
  EXPECT_GT(a_lost, 0);
  EXPECT_GT(b_lost, 0);
}

// -- Deep fade ---------------------------------------------------------------------

TEST(DeepFade, TotalLossInsideWindowOnly) {
  sim::Simulator sim{5};
  FaultSpec spec;
  spec.fade(kClient, Time::ms(100), Time::ms(50));
  FaultPlan plan{sim, spec, 5};
  const net::Packet pkt = downlink_to(kClient);
  EXPECT_FALSE(plan.corrupted(pkt, kClient, Time::ms(99)));
  EXPECT_TRUE(plan.corrupted(pkt, kClient, Time::ms(100)));
  EXPECT_TRUE(plan.corrupted(pkt, kClient, Time::ms(149)));
  EXPECT_FALSE(plan.corrupted(pkt, kClient, Time::ms(150)));
  // Another client's channel is untouched.
  const net::Ipv4Addr other = net::Ipv4Addr::octets(172, 16, 0, 2);
  EXPECT_FALSE(plan.corrupted(downlink_to(other), other, Time::ms(120)));
  EXPECT_EQ(plan.stats().fade_losses, 2u);
}

// -- Component effects -------------------------------------------------------------

TEST(LinkFlap, DownChannelDropsEverything) {
  sim::Simulator sim{1};
  struct CountSink : net::PacketSink {
    int n = 0;
    void handle_packet(net::Packet) override { ++n; }
  } sink;
  net::Channel ch{sim, net::WiredParams{}, sink};
  ch.set_down(true);
  EXPECT_FALSE(ch.transmit(downlink_to(kClient)));
  EXPECT_EQ(ch.packets_dropped(), 1u);
  ch.set_down(false);
  EXPECT_TRUE(ch.transmit(downlink_to(kClient)));
  sim.run();
  EXPECT_EQ(sink.n, 1);
  EXPECT_EQ(ch.packets_sent(), 1u);
}

TEST(ApStall, FreezesQueueAndReleasesInOrder) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  sim::Simulator sim{1};
  net::WirelessMedium medium{sim};
  net::AccessPoint ap{sim, medium};
  struct St : net::WirelessStation {
    std::vector<std::uint64_t> ids;
    bool listening() const override { return true; }
    void deliver(net::Packet p, sim::Duration) override {
      ids.push_back(p.id);
    }
  } st;
  medium.attach_station(st, kClient);

  ap.set_stalled(true);
  net::Packet a = downlink_to(kClient);
  net::Packet b = downlink_to(kClient);
  const std::uint64_t id_a = a.id;
  const std::uint64_t id_b = b.id;
  sim.at(Time::ms(1), [&, a, b]() mutable {
    ap.handle_packet(std::move(a));
    ap.handle_packet(std::move(b));
  });
  sim.run_until(Time::ms(100));
  EXPECT_TRUE(st.ids.empty());
  EXPECT_EQ(ap.stalled_frames(), 2u);
  EXPECT_NO_THROW(ap.audit());  // frozen frames still counted as backlog

  sim.at(Time::ms(101), [&] { ap.set_stalled(false); });
  sim.run_until(Time::ms(200));
  ASSERT_EQ(st.ids.size(), 2u);
  EXPECT_EQ(st.ids[0], id_a);  // FIFO across the stall
  EXPECT_EQ(st.ids[1], id_b);
  EXPECT_EQ(ap.stalled_frames(), 0u);
  EXPECT_NO_THROW(ap.audit());
}

// -- Auditor pairing ---------------------------------------------------------------

TEST(AuditorFaults, EndWithoutStartTrips) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  check::Auditor a;
  const obs::TimelineEvent e{Time::ms(1), Time::zero(),
                             obs::EventKind::FaultEnd, 1, 2};
  EXPECT_THROW(a.on_event(e), check::CheckError);
}

TEST(AuditorFaults, UnclosedWindowTripsAtFinalize) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  check::Auditor a;
  a.on_event({Time::ms(1), Time::zero(), obs::EventKind::FaultStart, 1, 2});
  EXPECT_THROW(a.finalize(Time::ms(10)), check::CheckError);
}

TEST(AuditorFaults, PairedAndNestedWindowsPass) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  check::Auditor a;
  // Two overlapping windows of the same (subject, kind) nest.
  a.on_event({Time::ms(1), Time::zero(), obs::EventKind::FaultStart, 1, 2});
  a.on_event({Time::ms(2), Time::zero(), obs::EventKind::FaultStart, 1, 2});
  a.on_event({Time::ms(3), Time::zero(), obs::EventKind::FaultEnd, 1, 2});
  a.on_event({Time::ms(4), Time::zero(), obs::EventKind::FaultEnd, 1, 2});
  // Distinct kinds are independent keys.
  a.on_event({Time::ms(5), Time::zero(), obs::EventKind::FaultStart, 0, 3});
  a.on_event({Time::ms(6), Time::zero(), obs::EventKind::FaultEnd, 0, 3});
  EXPECT_NO_THROW(a.finalize(Time::ms(10)));
}

// -- End-to-end through the testbed ------------------------------------------------

// Deterministic injected schedule loss, end-to-end through the wireless
// medium: a deep fade on client 0 spanning three SRPs (1000/1500/2000 ms at
// the Fixed500 policy) makes it miss schedule broadcasts while client 1
// keeps receiving them.  Exercises the missed-schedule path the paper's
// Section 4.3 analyzes, plus the resync bookkeeping.
TEST(FaultEndToEnd, DeepFadeCausesMissedSchedulesAndResync) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(2, 1)  // two 128K video clients
      .policy(exp::IntervalPolicy::Fixed500)
      .duration_s(10.0)
      .wireless_p_loss(0.0);  // fade is the only loss source; AP spikes
                              // stay on — the jitter-derived early guard
                              // absorbs them, so only the fade can miss
  b.fault_spec().fade(exp::testbed_client_ip(0), Time::ms(950), Time::ms(1200));
  const exp::ScenarioResult res = exp::run_scenario(b.build());

  const exp::ClientResult& faded = res.clients[0];
  const exp::ClientResult& clean = res.clients[1];
  // Legacy (paper) policy: the grace timer fires once per outage, then the
  // client waits awake — one counted miss however many SRPs the fade ate.
  EXPECT_EQ(faded.schedules_missed, 1u);
  EXPECT_EQ(faded.first_misses, 1u);
  EXPECT_EQ(faded.repeat_misses, 0u);
  EXPECT_EQ(faded.resyncs, 1u);
  EXPECT_EQ(clean.schedules_missed, 0u);
  EXPECT_EQ(res.fault_stats.windows_activated, 1u);
  EXPECT_EQ(res.fault_stats.windows_recovered, 1u);
  EXPECT_GT(res.fault_stats.fade_losses, 0u);
}

// The same fade with escalation enabled: the daemon gives up waiting after
// one awake miss and sleeps between SRP attempts, trading missed_wait for
// escalated sleeps.
TEST(FaultEndToEnd, EscalationConvertsMissedWaitIntoSleep) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(2, 1)
      .policy(exp::IntervalPolicy::Fixed500)
      .duration_s(10.0)
      .wireless_p_loss(0.0);  // see DeepFade above: spikes stay on
  b.fault_spec().fade(exp::testbed_client_ip(0), Time::ms(950), Time::ms(1700));

  const exp::ScenarioResult r_base = exp::run_scenario(b.build());
  const exp::ScenarioResult r_esc =
      exp::run_scenario(b.miss_escalation().build());
  // Baseline counts one miss and burns the outage awake; escalation re-arms
  // per expected SRP (so it counts repeat misses) and sleeps the intervals.
  EXPECT_EQ(r_base.clients[0].escalated_sleeps, 0u);
  EXPECT_EQ(r_base.clients[0].schedules_missed, 1u);
  EXPECT_GE(r_esc.clients[0].schedules_missed, 3u);
  EXPECT_GE(r_esc.clients[0].repeat_misses, 2u);
  EXPECT_GE(r_esc.clients[0].escalated_sleeps, 2u);
  EXPECT_GE(r_esc.clients[0].resyncs, 1u);
  // Sleeping through the outage must cost less than waiting it out awake.
  EXPECT_LT(r_esc.clients[0].energy_mj, r_base.clients[0].energy_mj);
}

TEST(FaultEndToEnd, ApStallWindowPreservesConservation) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(1, 1).web(1).policy(exp::IntervalPolicy::Fixed500).duration_s(10.0);
  b.fault_spec().ap_stall(Time::ms(2000), Time::ms(800));
  const exp::ScenarioResult res = exp::run_scenario(b.build());  // audits inside
  EXPECT_EQ(res.fault_stats.windows_activated, 1u);
  EXPECT_EQ(res.fault_stats.windows_recovered, 1u);
  // Traffic kept flowing after recovery.
  EXPECT_GT(res.clients[0].packets_received, 0u);
}

TEST(FaultEndToEnd, ProxyPausePreservesQueuesAcrossWindow) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(2, 1).policy(exp::IntervalPolicy::Fixed500).duration_s(10.0);
  b.fault_spec().proxy_pause(Time::ms(3000), Time::ms(900));
  const exp::ScenarioResult res = exp::run_scenario(b.build());
  EXPECT_EQ(res.proxy_stats.pauses, 1u);
  // The proxy queue audit ran inside run_scenario: queued == burst +
  // residual held across the pause.  Scheduling resumed afterwards.
  EXPECT_GT(res.proxy_stats.schedules_sent, 10u);
  EXPECT_GT(res.clients[0].packets_received, 0u);
}

TEST(FaultEndToEnd, LinkFlapRecoversAndAuditsPass) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(1, 1).policy(exp::IntervalPolicy::Fixed500).duration_s(10.0);
  b.fault_spec().link_flap(Time::ms(4000), Time::ms(600));
  const exp::ScenarioResult res = exp::run_scenario(b.build());
  EXPECT_EQ(res.fault_stats.windows_activated, 1u);
  EXPECT_EQ(res.fault_stats.windows_recovered, 1u);
  EXPECT_GT(res.clients[0].packets_received, 0u);
}

// Schedule k-repeat: with a clean channel every repeat is a duplicate, so
// clients dedupe k-1 copies per interval and the schedule state machine is
// untouched (same schedules_received as the k=1 run).
TEST(FaultEndToEnd, ScheduleRepeatsAreDeduplicated) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(2, 1)
      .policy(exp::IntervalPolicy::Fixed500)
      .duration_s(10.0)
      .wireless_p_loss(0.0);
  const exp::ScenarioResult r1 = exp::run_scenario(b.build());
  const exp::ScenarioResult r3 =
      exp::run_scenario(b.schedule_repeats(3).build());
  // Two repeats per SRP; the final SRP's repeats may land past the horizon.
  EXPECT_GE(r3.proxy_stats.schedule_repeats_sent,
            2 * (r3.proxy_stats.schedules_sent - 1));
  EXPECT_LE(r3.proxy_stats.schedule_repeats_sent,
            2 * r3.proxy_stats.schedules_sent);
  EXPECT_GT(r3.clients[0].repeats_deduped, 0u);
  EXPECT_EQ(r1.clients[0].schedules_received,
            r3.clients[0].schedules_received);
}

// The acceptance scenario: a Gilbert-Elliott bad-state burst spanning
// multiple SRPs plus an AP stall window, with k-repeat and escalation on.
// Completing run_scenario means every conservation audit (AP, proxy,
// energy, auditor pairing) passed under the throwing handler.
TEST(FaultEndToEnd, CombinedGeBurstAndApStallPassesAllAudits) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(2, 1)
      .web(1)
      .policy(exp::IntervalPolicy::Fixed500)
      .duration_s(12.0)
      .wireless_p_loss(0.0)
      .schedule_repeats(2)
      .miss_escalation();
  auto& f = b.fault_spec();
  f.ge.enabled = true;
  f.ge.p_good_bad = 0.02;
  f.ge.p_bad_good = 0.01;  // mean bad sojourn ~100 attempts
  f.ge.loss_bad = 0.95;
  f.ap_stall(Time::ms(5000), Time::ms(700));
  const exp::ScenarioResult res = exp::run_scenario(b.build());
  EXPECT_GT(res.fault_stats.ge_losses, 0u);
  EXPECT_GT(res.fault_stats.ge_bad_entries, 0u);
  EXPECT_EQ(res.fault_stats.windows_activated, 1u);
  EXPECT_EQ(res.fault_stats.windows_recovered, 1u);
}

}  // namespace
}  // namespace pp::fault

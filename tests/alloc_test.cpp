// Zero-allocation contract for the scheduling hot path.
//
// The test binary replaces global operator new/delete with counting
// versions, warms an EventQueue / Simulator to its steady-state footprint
// (slab, heap array, and free list at peak depth), and then asserts that
// further schedule/fire/cancel churn — including packet-sized captures —
// performs exactly zero heap allocations.  A scenario-level test runs a
// UDP video-streaming workload and checks the engine's own accounting:
// every capture in the whole run fits the SBO buffer, so the pool fallback
// never fires.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>  // pp-lint: allow(raw-new): header name, not an expression

#include "exp/builder.hpp"
#include "exp/scenario.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

std::uint64_t g_allocs = 0;  // single-threaded binary; plain counter is fine

void* counted_alloc(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }  // pp-lint: allow(raw-new): counting operator new replacement under test
void* operator new[](std::size_t n) { return counted_alloc(n); }  // pp-lint: allow(raw-new): counting operator new replacement under test
// pp-lint: allow(raw-new): counting operator new replacement under test
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete[](void* p) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p, std::size_t) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }  // pp-lint: allow(raw-delete): operator delete replacement under test
// pp-lint: allow(raw-delete): operator delete replacement under test
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pp {
namespace {

using sim::EventQueue;
using sim::Time;

// Mimics the fattest steady-state capture: `this` + a net::Packet-sized
// payload, comfortably under EventCallback::kInlineCapacity.
struct PacketSized {
  unsigned char bytes[120] = {};
};
static_assert(sim::EventCallback::fits_inline<PacketSized>());

TEST(Alloc, QueueChurnIsAllocationFreeAfterWarmup) {
  EventQueue q;
  constexpr int kDepth = 64;
  std::uint64_t sink = 0;
  auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < kDepth; ++i) {
        PacketSized payload;
        payload.bytes[0] = static_cast<unsigned char>(i);
        q.push(Time::ms(r * kDepth + i),
               [&sink, payload] { sink += payload.bytes[0]; });
      }
      while (!q.empty()) q.pop().fn();
    }
  };
  churn(2);  // warmup: slab, heap array, free list reach steady size
  const std::uint64_t before = g_allocs;
  churn(50);
  EXPECT_EQ(g_allocs - before, 0u)
      << "schedule/fire churn with inline-sized captures hit the heap";
  EXPECT_GT(sink, 0u);
  EXPECT_EQ(q.stats().alloc.callbacks_pooled, 0u);
}

TEST(Alloc, CancelChurnIsAllocationFreeAfterWarmup) {
  EventQueue q;
  constexpr int kDepth = 64;
  auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      sim::EventHandle hs[kDepth];
      for (int i = 0; i < kDepth; ++i) {
        PacketSized payload;
        hs[i] = q.push(Time::ms(r * kDepth + i), [payload] {});
      }
      for (int i = 0; i < kDepth; i += 2) hs[i].cancel();
      while (!q.empty()) q.pop().fn();
    }
  };
  churn(2);
  const std::uint64_t before = g_allocs;
  churn(50);
  EXPECT_EQ(g_allocs - before, 0u)
      << "schedule/cancel churn hit the heap after warmup";
}

TEST(Alloc, SimulatorSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  constexpr int kTicks = 2000;
  int fired = 0;
  // Self-rescheduling tick chain with a packet-sized capture, the shape of
  // every periodic component in the testbed.
  struct Tick {
    sim::Simulator& sim;
    int& fired;
    PacketSized payload;
    void operator()() {
      ++fired;
      if (fired < kTicks) sim.after(Time::us(50), Tick{sim, fired, payload});
    }
  };
  sim.after(Time::us(50), Tick{sim, fired, PacketSized{}});
  // Warmup: run the first handful of ticks, then measure the rest.
  sim.run_until(Time::us(50) * 10);
  const std::uint64_t before = g_allocs;
  sim.run();
  EXPECT_EQ(g_allocs - before, 0u)
      << "steady-state simulator ticking hit the heap";
  EXPECT_EQ(fired, kTicks);
}

TEST(Alloc, OversizedCapturesReusePoolBlocks) {
  EventQueue q;
  struct Oversized {
    unsigned char bytes[512] = {};
  };
  static_assert(!sim::EventCallback::fits_inline<Oversized>());
  auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      Oversized big;
      q.push(Time::ms(r), [big] {});
      q.pop().fn();
    }
  };
  churn(1);
  EXPECT_EQ(q.stats().alloc.pool_allocs, 1u);
  const std::uint64_t before = g_allocs;
  churn(100);
  EXPECT_EQ(g_allocs - before, 0u)
      << "pool fallback should recycle blocks, not re-allocate";
  EXPECT_EQ(q.stats().alloc.callbacks_pooled, 101u);
  EXPECT_EQ(q.stats().alloc.pool_allocs, 1u);
  EXPECT_EQ(q.stats().alloc.pool_reuses, 100u);
}

// Scenario-level contract: across an entire UDP video-streaming run —
// every packet hop, timer, TCP control exchange, and schedule broadcast —
// no capture exceeds the SBO threshold, so the scheduling path never takes
// the pool fallback (and a fortiori never the raw heap).
TEST(Alloc, UdpStreamingScenarioSchedulesEverythingInline) {
  exp::ScenarioConfig cfg = exp::ScenarioBuilder{}
                                .video(2, 3)  // 512 kbps UDP streams
                                .policy(exp::IntervalPolicy::Fixed500)
                                .seed(7)
                                .duration_s(8.0)  // streams start at t=2s
                                .keep_obs()
                                .build();
  const exp::ScenarioResult res = exp::run_scenario(cfg);
  ASSERT_NE(res.obs, nullptr);
  obs::MetricsRegistry& m = res.obs->metrics;
  EXPECT_GT(m.counter("sim.events.scheduled")->value(), 1000u);
  EXPECT_EQ(m.counter("sim.alloc.callbacks_pooled")->value(), 0u)
      << "a scenario capture outgrew EventCallback::kInlineCapacity";
  EXPECT_EQ(m.counter("sim.alloc.pool_allocs")->value(), 0u);
}

}  // namespace
}  // namespace pp

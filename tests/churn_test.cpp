// Client-churn lifecycle tests: proxy membership (register/deregister,
// mid-interval demand shrink), the association state machine's
// deterministic backoff, scenario-level churn windows and storms
// (conservation + digest stability), graceful set_away teardown, and the
// access point's association table.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "client/association.hpp"
#include "client/psm_client.hpp"
#include "exp/builder.hpp"
#include "exp/digest.hpp"
#include "exp/scenario.hpp"
#include "exp/testbed.hpp"
#include "net/access_point.hpp"
#include "net/addr.hpp"
#include "proxy/scheduler.hpp"
#include "sim/simulator.hpp"
#include "transport/udp.hpp"

namespace pp {
namespace {

using sim::Time;

// -- Proxy membership --------------------------------------------------------------

struct ProxyChurnFixture : ::testing::Test {
  ProxyChurnFixture() {
    exp::TestbedParams tp;
    tp.num_clients = 2;
    bed = std::make_unique<exp::Testbed>(
        tp, std::make_unique<proxy::FixedIntervalScheduler>(Time::ms(500)));
    server = &bed->add_server("srv");
    sock = std::make_unique<transport::UdpSocket>(*server, 5000);
  }

  check::ScopedFailureHandler guard{check::throwing_handler};
  std::unique_ptr<exp::Testbed> bed;
  net::Node* server = nullptr;
  std::unique_ptr<transport::UdpSocket> sock;
};

TEST_F(ProxyChurnFixture, RegisterDeregisterRegisterLeavesNoStaleState) {
  const net::Ipv4Addr ip = bed->client(0).ip();
  bed->start(Time::ms(500));
  bed->sim().at(Time::ms(100), [&] {
    for (int i = 0; i < 3; ++i) sock->send_to(ip, 7000, 1200);
  });
  bed->run_until(Time::ms(300));  // queued at the proxy, first SRP is at 500
  ASSERT_TRUE(bed->proxy().client_active(ip));

  bed->proxy().deregister_client(ip);
  const proxy::ProxyStats& ps = bed->proxy().stats();
  EXPECT_FALSE(bed->proxy().client_active(ip));
  EXPECT_EQ(ps.leaves, 1u);
  EXPECT_EQ(ps.churn_dropped_packets, 3u);
  EXPECT_EQ(ps.churn_dropped_bytes, 3600u);
  EXPECT_NO_THROW(bed->proxy().audit());

  // Downlink for a departed client is dropped at the door, and the next
  // schedule carries no slot for it.
  bed->sim().at(Time::ms(350), [&] { sock->send_to(ip, 7000, 900); });
  bed->run_until(Time::ms(1100));
  EXPECT_GE(ps.queue_drops, 1u);
  ASSERT_NE(bed->proxy().last_schedule(), nullptr);
  for (const auto& e : bed->proxy().last_schedule()->entries)
    EXPECT_NE(e.client, ip);

  // Revival: a fresh register starts from a clean queue and traffic flows.
  bed->proxy().register_client(ip);
  EXPECT_TRUE(bed->proxy().client_active(ip));
  bed->sim().at(Time::ms(1150), [&] {
    for (int i = 0; i < 3; ++i) sock->send_to(ip, 7000, 1000);
  });
  bed->run_until(Time::ms(2400));
  EXPECT_GT(bed->client(0).traffic().packets_received, 0u);
  EXPECT_NO_THROW(bed->proxy().audit());
}

TEST_F(ProxyChurnFixture, MidIntervalShrinkSkipsDepartedSlot) {
  const net::Ipv4Addr ip = bed->client(0).ip();
  bed->start(Time::ms(500));
  bed->sim().at(Time::ms(100), [&] {
    for (int i = 0; i < 3; ++i) sock->send_to(ip, 7000, 1200);
  });
  // The SRP at 500 builds a slot for client 0 (lead pushes the burst to
  // ~504); departing in between must leave the slot unused, not revive
  // proxy state for a client that is gone.
  bed->run_until(Time::ms(502));
  bed->proxy().deregister_client(ip);
  bed->run_until(Time::ms(1000));
  const proxy::ProxyStats& ps = bed->proxy().stats();
  EXPECT_GE(ps.bursts_skipped, 1u);
  EXPECT_EQ(ps.churn_dropped_packets, 3u);
  EXPECT_EQ(bed->client(0).traffic().packets_received, 0u);
  EXPECT_NO_THROW(bed->proxy().audit());
}

// -- Association state machine -----------------------------------------------------

// Run one agent against a dead proxy (no acks) and record transmit times.
std::vector<sim::Time> join_send_times(std::uint64_t seed, net::Ipv4Addr ip,
                                       sim::Time horizon) {
  sim::Simulator sim{seed};
  std::vector<sim::Time> times;
  client::AssocParams ap;
  ap.enabled = true;
  ap.run_seed = seed;
  client::AssociationAgent agent{
      sim, ip, ap, [&](net::Packet) { times.push_back(sim.now()); }, [] {}};
  sim.at(Time::ms(10), [&] { agent.join(); });
  sim.run_until(horizon);
  return times;
}

TEST(AssocBackoff, DeterministicPerSeedAndDivergentPerClient) {
  const net::Ipv4Addr ip0 = exp::testbed_client_ip(0);
  const net::Ipv4Addr ip1 = exp::testbed_client_ip(1);
  const std::vector<sim::Time> a = join_send_times(42, ip0, Time::sec(5));
  const std::vector<sim::Time> b = join_send_times(42, ip0, Time::sec(5));
  // Unacked joins retransmit with exponential backoff: 120ms doubling to
  // the 2s cap gives several retries inside 5s.
  ASSERT_GE(a.size(), 4u);
  EXPECT_EQ(a, b);
  // The jitter stream is salted per client address, so two clients with
  // the same run seed never retry in lockstep.
  const std::vector<sim::Time> c = join_send_times(42, ip1, Time::sec(5));
  ASSERT_GE(c.size(), 2u);
  EXPECT_NE(a, c);
  // And the run seed itself moves the whole pattern.
  const std::vector<sim::Time> d = join_send_times(43, ip0, Time::sec(5));
  EXPECT_NE(a, d);
}

TEST(AssocBackoff, StatsSeparateFirstSendFromRetries) {
  sim::Simulator sim{7};
  client::AssocParams ap;
  ap.enabled = true;
  ap.run_seed = 7;
  int sends = 0;
  client::AssociationAgent agent{sim, exp::testbed_client_ip(0), ap,
                                 [&](net::Packet) { ++sends; }, [] {}};
  sim.at(Time::ms(10), [&] { agent.join(); });
  sim.run_until(Time::sec(5));
  EXPECT_EQ(agent.stats().joins_sent, 1u);
  EXPECT_GE(agent.stats().join_retries, 3u);
  EXPECT_EQ(static_cast<std::uint64_t>(sends),
            agent.stats().joins_sent + agent.stats().join_retries);
  EXPECT_EQ(agent.state(), client::AssociationAgent::State::Associating);
}

// -- End-to-end churn --------------------------------------------------------------

TEST(ChurnEndToEnd, WindowDrivesLeaveAndRejoinWithConservation) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder b;
  b.video(2, 1).policy(exp::IntervalPolicy::Fixed500).duration_s(10.0);
  b.fault_spec().churn(exp::testbed_client_ip(0), Time::sec(3), Time::sec(2));
  const exp::ScenarioResult res = exp::run_scenario(b.build());  // audits inside
  EXPECT_EQ(res.fault_stats.windows_activated, 1u);
  EXPECT_EQ(res.fault_stats.windows_recovered, 1u);
  // One graceful departure, one re-join, and each edge forced an
  // immediate SRP renegotiation.
  EXPECT_GE(res.proxy_stats.leaves, 1u);
  EXPECT_GE(res.proxy_stats.joins, 1u);
  EXPECT_GE(res.proxy_stats.renegotiations, 2u);
  EXPECT_GE(res.clients[0].assoc_leaves, 1u);
  EXPECT_GE(res.clients[0].assoc_joins, 1u);
  // The bystander never handshakes; both keep receiving after recovery.
  EXPECT_EQ(res.clients[1].assoc_joins, 0u);
  EXPECT_GT(res.clients[0].packets_received, 0u);
  EXPECT_GT(res.clients[1].packets_received, 0u);
}

TEST(ChurnEndToEnd, StormDigestIsHashSaltInvariant) {
  exp::ScenarioBuilder b;
  b.video(8, 1).policy(exp::IntervalPolicy::Fixed500).seed(5).duration_s(
      12.0);
  b.fault_spec().churn_storm(Time::sec(1), Time::sec(10), 0.25);
  const exp::ScenarioConfig cfg = b.build();
  net::set_hash_salt(1);
  const std::uint64_t d1 = exp::run_digest(cfg);
  net::set_hash_salt(99991);
  const std::uint64_t d2 = exp::run_digest(cfg);
  net::set_hash_salt(0);
  EXPECT_NE(d1, 0u);
  EXPECT_EQ(d1, d2);
}

TEST(ChurnEndToEnd, SetAwayTearsDownAndRejoins) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::TestbedParams tp;
  tp.num_clients = 2;
  tp.client.assoc.enabled = true;
  tp.client.assoc.run_seed = tp.seed;
  exp::Testbed bed{tp,
                   std::make_unique<proxy::FixedIntervalScheduler>(
                       Time::ms(500))};
  net::Node& server = bed.add_server("srv");
  transport::UdpSocket sock{server, 5000};
  bed.start(Time::ms(500));
  // Steady downlink trickle to both clients across the whole run.
  for (int i = 0; i < 80; ++i) {
    bed.sim().at(Time::ms(100 + 100 * i), [&, i] {
      sock.send_to(bed.client(i % 2).ip(), 7000, 600);
    });
  }
  bed.sim().at(Time::sec(3), [&] { bed.client(0).set_away(true); });
  bed.sim().at(Time::sec(6), [&] { bed.client(0).set_away(false); });
  bed.run_until(Time::sec(9));
  bed.finalize_audit(Time::sec(9));

  const client::AssociationAgent* a = bed.client(0).assoc();
  ASSERT_NE(a, nullptr);
  EXPECT_GE(a->stats().leaves_sent, 1u);
  EXPECT_GE(a->stats().leave_acks, 1u);
  EXPECT_GE(a->stats().joins_sent, 1u);
  EXPECT_GE(a->stats().join_acks, 1u);
  EXPECT_TRUE(a->associated());
  EXPECT_GE(bed.proxy().stats().leaves, 1u);
  EXPECT_GE(bed.proxy().stats().joins, 1u);
  // Packets arriving while away are dropped or drained, never wedged; the
  // returned client receives again.
  EXPECT_GT(bed.client(0).traffic().packets_received, 0u);
  EXPECT_GT(bed.client(1).traffic().packets_received, 0u);
}

// -- Access-point association table ------------------------------------------------

TEST(ApChurn, DisassociateFlushesParkedPsmFrames) {
  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::TestbedParams tp;
  tp.num_clients = 0;
  tp.proxy.mode = proxy::ProxyMode::Passthrough;
  exp::Testbed bed{tp,
                   std::make_unique<proxy::FixedIntervalScheduler>(
                       Time::ms(500))};
  bed.access_point().enable_psm(Time::ms(100));
  client::PsmClient station{bed.sim(), bed.medium(),
                            exp::testbed_client_ip(0), "psm0"};
  bed.access_point().register_psm_station(station.ip());
  net::Node& server = bed.add_server("srv");
  transport::UdpSocket sock{server, 5000};
  bed.start(Time::ms(400));

  // Park a frame mid-beacon-interval, then yank the station.
  bed.sim().at(Time::ms(150), [&] { sock.send_to(station.ip(), 7100, 800); });
  bed.run_until(Time::ms(190));
  ASSERT_EQ(bed.access_point().psm_buffered_frames(), 1u);
  bed.access_point().disassociate(station.ip());
  EXPECT_EQ(bed.access_point().assoc_flushed_frames(), 1u);
  EXPECT_EQ(bed.access_point().psm_buffered_frames(), 0u);
  EXPECT_NO_THROW(bed.access_point().audit());

  // A returning registered station gets a fresh parked queue.
  bed.access_point().associate(station.ip());
  bed.sim().at(Time::ms(250), [&] { sock.send_to(station.ip(), 7100, 700); });
  bed.run_until(Time::ms(280));
  EXPECT_EQ(bed.access_point().psm_buffered_frames(), 1u);
  bed.run_until(Time::ms(400));  // released by the next TIM beacon
  EXPECT_EQ(bed.access_point().psm_buffered_frames(), 0u);
  EXPECT_EQ(station.traffic().packets_received, 1u);
  EXPECT_NO_THROW(bed.access_point().audit());
}

// -- Builder gates -----------------------------------------------------------------

TEST(ChurnBuilder, MeasuredGoodputComposesWithDemandDrivenPolicies) {
  // Static schedules ignore per-client slot costs, so the knob stays
  // rejected there.
  exp::ScenarioBuilder static_eq;
  static_eq.video(1, 1)
      .policy(exp::IntervalPolicy::StaticEqual100)
      .duration_s(4.0)
      .measured_goodput();
  EXPECT_THROW(static_eq.build(), std::invalid_argument);
  exp::ScenarioBuilder slotted;
  slotted.video(1, 1)
      .web(1)
      .policy(exp::IntervalPolicy::SlottedStatic500)
      .duration_s(4.0)
      .measured_goodput();
  EXPECT_THROW(slotted.build(), std::invalid_argument);

  // Every demand-driven policy now accepts it.
  for (const auto p :
       {exp::IntervalPolicy::Fixed100, exp::IntervalPolicy::Fixed500,
        exp::IntervalPolicy::Variable, exp::IntervalPolicy::LongestQueue500,
        exp::IntervalPolicy::Opportunistic500,
        exp::IntervalPolicy::Probabilistic500}) {
    exp::ScenarioBuilder b;
    b.video(1, 1).policy(p).duration_s(4.0).measured_goodput();
    EXPECT_NO_THROW(b.build()) << exp::policy_name(p);
  }

  check::ScopedFailureHandler guard{check::throwing_handler};
  exp::ScenarioBuilder ok;
  ok.video(2, 1)
      .policy(exp::IntervalPolicy::Opportunistic500)
      .duration_s(6.0)
      .measured_goodput();
  const exp::ScenarioResult res = exp::run_scenario(ok.build());
  EXPECT_GT(res.clients[0].packets_received, 0u);

  // A newly legal combination also runs end-to-end.
  exp::ScenarioBuilder lqf;
  lqf.video(2, 1)
      .policy(exp::IntervalPolicy::LongestQueue500)
      .duration_s(6.0)
      .measured_goodput();
  const exp::ScenarioResult res_lqf = exp::run_scenario(lqf.build());
  EXPECT_GT(res_lqf.clients[0].packets_received, 0u);
}

TEST(ChurnBuilder, StormAndWindowValidation) {
  {
    exp::ScenarioBuilder b;
    b.video(1, 1).duration_s(4.0);
    b.fault_spec().churn_storm(Time::sec(1), Time::sec(2), 1.5);
    EXPECT_THROW(b.build(), std::invalid_argument);  // flap_fraction > 1
  }
  {
    exp::ScenarioBuilder b;
    b.video(1, 1).duration_s(4.0);
    b.fault_spec().churn_storm(Time::sec(3), Time::sec(2), 0.25);
    EXPECT_THROW(b.build(), std::invalid_argument);  // runs past horizon
  }
  {
    exp::ScenarioBuilder b;
    b.video(1, 1).duration_s(4.0);
    // A churn window without a client address is rejected.
    b.fault_spec().churn(net::Ipv4Addr{}, Time::sec(1), Time::sec(1));
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pp

#include <gtest/gtest.h>

#include <vector>

#include "net/access_point.hpp"
#include "net/addr.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/wireless.hpp"
#include "sim/simulator.hpp"

namespace pp::net {
namespace {

using sim::Time;

TEST(Addr, Formatting) {
  EXPECT_EQ(Ipv4Addr::octets(192, 168, 1, 42).str(), "192.168.1.42");
  EXPECT_EQ(Ipv4Addr::broadcast().str(), "255.255.255.255");
  EXPECT_TRUE(Ipv4Addr::broadcast().is_broadcast());
  EXPECT_FALSE(Ipv4Addr::octets(10, 0, 0, 1).is_broadcast());
}

TEST(Addr, FlowKeyReversal) {
  const FlowKey k{Ipv4Addr::octets(1, 1, 1, 1), 100,
                  Ipv4Addr::octets(2, 2, 2, 2), 200, Protocol::Tcp};
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src, k.dst);
  EXPECT_EQ(r.src_port, k.dst_port);
  EXPECT_EQ(r.dst, k.src);
  EXPECT_EQ(r.reversed(), k);
}

TEST(Addr, FlowKeyHashDistinguishesPorts) {
  const FlowKey a{Ipv4Addr{1}, 10, Ipv4Addr{2}, 20, Protocol::Udp};
  FlowKey b = a;
  b.src_port = 11;
  EXPECT_NE(FlowKeyHash{}(a), FlowKeyHash{}(b));
}

TEST(Packet, UniqueIds) {
  const Packet a = make_packet();
  const Packet b = make_packet();
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(a.id, b.id);
}

TEST(Packet, WireSizeIncludesHeaders) {
  Packet p = make_packet();
  p.payload = 1000;
  p.proto = Protocol::Udp;
  EXPECT_EQ(p.wire_size(), 1028u);
  p.proto = Protocol::Tcp;
  EXPECT_EQ(p.wire_size(), 1040u);
}

class CollectSink : public PacketSink {
 public:
  void handle_packet(Packet pkt) override {
    times.push_back(sim_ ? sim_->now() : sim::Time::zero());
    pkts.push_back(std::move(pkt));
  }
  sim::Simulator* sim_ = nullptr;
  std::vector<Packet> pkts;
  std::vector<sim::Time> times;
};

TEST(Channel, SerializesAtLinkRate) {
  sim::Simulator sim;
  CollectSink sink;
  sink.sim_ = &sim;
  WiredParams params;
  params.rate_bps = 8e6;  // 1 byte per microsecond
  params.propagation = Time::zero();
  params.framing_bytes = 0;
  Channel ch{sim, params, sink};

  Packet p = make_packet();
  p.payload = 972;  // 1000 wire bytes with UDP+IP headers
  ch.transmit(p);
  ch.transmit(p);
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 2u);
  EXPECT_EQ(sink.times[0], Time::us(1000));
  EXPECT_EQ(sink.times[1], Time::us(2000));
}

TEST(Channel, DropsWhenQueueFull) {
  sim::Simulator sim;
  CollectSink sink;
  WiredParams params;
  params.rate_bps = 1e3;  // very slow so the queue backs up
  params.queue_limit_bytes = 3000;
  Channel ch{sim, params, sink};
  Packet p = make_packet();
  p.payload = 1000;
  EXPECT_TRUE(ch.transmit(p));
  EXPECT_TRUE(ch.transmit(p));
  EXPECT_FALSE(ch.transmit(p));  // third exceeds 3000-byte cap
  EXPECT_EQ(ch.packets_dropped(), 1u);
}

TEST(Channel, BacklogDrainsAfterDelivery) {
  sim::Simulator sim;
  CollectSink sink;
  Channel ch{sim, {}, sink};
  Packet p = make_packet();
  p.payload = 500;
  ch.transmit(p);
  EXPECT_GT(ch.backlog_bytes(), 0u);
  sim.run();
  EXPECT_EQ(ch.backlog_bytes(), 0u);
  EXPECT_EQ(ch.packets_sent(), 1u);
}

TEST(EthernetLan, RoutesByDestinationIp) {
  sim::Simulator sim;
  CollectSink s1, s2, sbridge;
  EthernetLan lan{sim};
  const auto ip1 = Ipv4Addr::octets(10, 0, 0, 1);
  const auto ip2 = Ipv4Addr::octets(10, 0, 0, 2);
  const auto p1 = lan.attach(s1, ip1);
  lan.attach(s2, ip2);
  lan.attach_default(sbridge);

  Packet p = make_packet();
  p.src = ip1;
  p.dst = ip2;
  lan.send(p1, p);
  sim.run();
  EXPECT_EQ(s2.pkts.size(), 1u);
  EXPECT_TRUE(s1.pkts.empty());
  EXPECT_TRUE(sbridge.pkts.empty());
}

TEST(EthernetLan, UnknownDestinationGoesToDefaultPort) {
  sim::Simulator sim;
  CollectSink s1, sbridge;
  EthernetLan lan{sim};
  const auto p1 = lan.attach(s1, Ipv4Addr::octets(10, 0, 0, 1));
  lan.attach_default(sbridge);
  Packet p = make_packet();
  p.dst = Ipv4Addr::octets(172, 16, 0, 9);  // a wireless-side client
  lan.send(p1, p);
  sim.run();
  EXPECT_EQ(sbridge.pkts.size(), 1u);
}

// -- Wireless ------------------------------------------------------------------

class FakeStation : public WirelessStation {
 public:
  bool listening() const override { return listen; }
  void deliver(Packet pkt, sim::Duration airtime) override {
    delivered.push_back(std::move(pkt));
    last_airtime = airtime;
  }
  void missed(const Packet&, sim::Duration) override { ++missed_count; }
  void on_air(sim::Time, sim::Duration d) override { air_total += d; }

  bool listen = true;
  std::vector<Packet> delivered;
  int missed_count = 0;
  sim::Duration last_airtime;
  sim::Duration air_total;
};

struct WirelessFixture : ::testing::Test {
  WirelessFixture() : sim(5), medium(sim, params()) {
    ap_id = medium.attach_access_point(ap);
    c1_id = medium.attach_station(c1, Ipv4Addr::octets(172, 16, 0, 1));
    c2_id = medium.attach_station(c2, Ipv4Addr::octets(172, 16, 0, 2));
  }
  static WirelessParams params() {
    WirelessParams p;
    p.per_frame_overhead = Time::us(100);
    p.propagation = Time::zero();
    return p;
  }
  Packet downlink_to(Ipv4Addr dst, std::uint32_t bytes = 1000) {
    Packet p = make_packet();
    p.src = Ipv4Addr::octets(10, 0, 0, 1);
    p.dst = dst;
    p.payload = bytes;
    return p;
  }
  sim::Simulator sim;
  WirelessMedium medium;
  FakeStation ap, c1, c2;
  WirelessMedium::StationId ap_id, c1_id, c2_id;
};

TEST_F(WirelessFixture, UnicastDownlinkReachesAddressedStationOnly) {
  medium.transmit(ap_id, downlink_to(Ipv4Addr::octets(172, 16, 0, 1)));
  sim.run();
  EXPECT_EQ(c1.delivered.size(), 1u);
  EXPECT_TRUE(c2.delivered.empty());
  EXPECT_EQ(c2.missed_count, 0);
}

TEST_F(WirelessFixture, SleepingStationMissesFrame) {
  c1.listen = false;
  medium.transmit(ap_id, downlink_to(Ipv4Addr::octets(172, 16, 0, 1)));
  sim.run();
  EXPECT_TRUE(c1.delivered.empty());
  EXPECT_EQ(c1.missed_count, 1);
  EXPECT_EQ(medium.frames_missed(), 1u);
}

TEST_F(WirelessFixture, BroadcastReachesAllListeningStations) {
  c2.listen = false;
  medium.transmit(ap_id, downlink_to(Ipv4Addr::broadcast()));
  sim.run();
  EXPECT_EQ(c1.delivered.size(), 1u);
  EXPECT_EQ(c2.missed_count, 1);
}

TEST_F(WirelessFixture, UplinkAlwaysGoesToAccessPoint) {
  Packet p = make_packet();
  p.src = Ipv4Addr::octets(172, 16, 0, 1);
  p.dst = Ipv4Addr::octets(10, 0, 0, 7);  // a wired server
  medium.transmit(c1_id, p);
  sim.run();
  EXPECT_EQ(ap.delivered.size(), 1u);
  EXPECT_TRUE(c2.delivered.empty());
}

TEST_F(WirelessFixture, ChannelSerializesTransmissions) {
  medium.transmit(ap_id, downlink_to(Ipv4Addr::octets(172, 16, 0, 1)));
  medium.transmit(ap_id, downlink_to(Ipv4Addr::octets(172, 16, 0, 2)));
  // Both queued at t=0; the second must wait for the first's airtime.
  const sim::Duration one = medium.airtime_of(downlink_to(Ipv4Addr{1}));
  sim.run();
  EXPECT_EQ(sim.now(), one * 2);
}

TEST_F(WirelessFixture, AirtimeChargedToSender) {
  auto pkt = downlink_to(Ipv4Addr::octets(172, 16, 0, 1));
  const sim::Duration at = medium.airtime_of(pkt);
  medium.transmit(ap_id, pkt);
  sim.run();
  EXPECT_EQ(ap.air_total, at);
}

TEST_F(WirelessFixture, BroadcastUsesBasicRate) {
  Packet uni = downlink_to(Ipv4Addr::octets(172, 16, 0, 1));
  Packet bc = downlink_to(Ipv4Addr::broadcast());
  EXPECT_GT(medium.airtime_of(bc), medium.airtime_of(uni));
}

TEST_F(WirelessFixture, SnifferSeesEveryFrameWithDeliveryFlag) {
  std::vector<SnifferRecord> records;
  medium.add_sniffer([&](const SnifferRecord& r) { records.push_back(r); });
  c1.listen = false;
  medium.transmit(ap_id, downlink_to(Ipv4Addr::octets(172, 16, 0, 1)));
  medium.transmit(ap_id, downlink_to(Ipv4Addr::octets(172, 16, 0, 2)));
  sim.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].delivered);
  EXPECT_TRUE(records[1].delivered);
  EXPECT_TRUE(records[0].from_ap);
}

TEST_F(WirelessFixture, RandomLossDropsFraction) {
  WirelessParams p = params();
  p.p_loss = 0.5;
  sim::Simulator sim2(9);
  WirelessMedium m2{sim2, p};
  FakeStation ap2, st;
  auto apid = m2.attach_access_point(ap2);
  m2.attach_station(st, Ipv4Addr::octets(172, 16, 0, 1));
  for (int i = 0; i < 200; ++i) {
    Packet pkt = make_packet();
    pkt.dst = Ipv4Addr::octets(172, 16, 0, 1);
    pkt.payload = 100;
    m2.transmit(apid, pkt);
  }
  sim2.run();
  EXPECT_GT(st.delivered.size(), 60u);
  EXPECT_LT(st.delivered.size(), 140u);
  EXPECT_EQ(st.delivered.size() + st.missed_count, 200u);
}

// -- Access point ---------------------------------------------------------------

TEST(AccessPoint, ForwardsDownlinkInFifoOrder) {
  sim::Simulator sim(3);
  WirelessParams wp;
  wp.propagation = Time::zero();
  WirelessMedium medium{sim, wp};
  AccessPointParams app;
  app.p_spike = 0.5;  // heavy jitter to provoke reordering attempts
  app.spike_max = Time::ms(4);
  AccessPoint ap{sim, medium, app};
  FakeStation client;
  medium.attach_station(client, Ipv4Addr::octets(172, 16, 0, 1));

  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet();
    p.dst = Ipv4Addr::octets(172, 16, 0, 1);
    p.payload = 100;
    ap.handle_packet(p);
  }
  sim.run();
  ASSERT_EQ(client.delivered.size(), 50u);
  for (std::size_t i = 1; i < client.delivered.size(); ++i)
    EXPECT_LT(client.delivered[i - 1].id, client.delivered[i].id);
}

TEST(AccessPoint, UplinkForwardedToWiredSink) {
  sim::Simulator sim(3);
  WirelessMedium medium{sim};
  AccessPoint ap{sim, medium, {}};
  CollectSink wired;
  ap.set_uplink_sink(wired);
  FakeStation client;
  auto cid = medium.attach_station(client, Ipv4Addr::octets(172, 16, 0, 1));
  Packet p = make_packet();
  p.src = Ipv4Addr::octets(172, 16, 0, 1);
  p.dst = Ipv4Addr::octets(10, 0, 0, 1);
  medium.transmit(cid, p);
  sim.run();
  EXPECT_EQ(wired.pkts.size(), 1u);
}

TEST(AccessPoint, DropsWhenQueueFull) {
  sim::Simulator sim(3);
  WirelessMedium medium{sim};
  AccessPointParams app;
  app.queue_limit_bytes = 2000;
  AccessPoint ap{sim, medium, app};
  FakeStation client;
  medium.attach_station(client, Ipv4Addr::octets(172, 16, 0, 1));
  for (int i = 0; i < 5; ++i) {
    Packet p = make_packet();
    p.dst = Ipv4Addr::octets(172, 16, 0, 1);
    p.payload = 900;
    ap.handle_packet(p);
  }
  EXPECT_GT(ap.downlink_dropped(), 0u);
}

// -- Node demux -----------------------------------------------------------------

class FakeDatagramHandler : public DatagramHandler {
 public:
  void on_datagram(const Packet& p) override { received.push_back(p); }
  std::vector<Packet> received;
};

TEST(Node, UdpDemuxByPort) {
  sim::Simulator sim;
  Node n{sim, Ipv4Addr::octets(10, 0, 0, 1), "n"};
  FakeDatagramHandler h5, h6;
  n.bind_udp(5000, h5);
  n.bind_udp(6000, h6);
  Packet p = make_packet();
  p.proto = Protocol::Udp;
  p.dst_port = 6000;
  n.handle_packet(p);
  EXPECT_TRUE(h5.received.empty());
  EXPECT_EQ(h6.received.size(), 1u);
}

TEST(Node, UnroutedPacketsCounted) {
  sim::Simulator sim;
  Node n{sim, Ipv4Addr::octets(10, 0, 0, 1), "n"};
  Packet p = make_packet();
  p.proto = Protocol::Udp;
  p.dst_port = 1234;
  n.handle_packet(p);
  EXPECT_EQ(n.packets_unrouted(), 1u);
}

TEST(Node, DuplicateUdpBindThrows) {
  sim::Simulator sim;
  Node n{sim, Ipv4Addr::octets(10, 0, 0, 1), "n"};
  FakeDatagramHandler h;
  n.bind_udp(5000, h);
  EXPECT_THROW(n.bind_udp(5000, h), std::logic_error);
}

TEST(Node, SendStampsTimestamp) {
  sim::Simulator sim;
  Node n{sim, Ipv4Addr::octets(10, 0, 0, 1), "n"};
  Packet out;
  n.set_transmitter([&](Packet p) { out = std::move(p); });
  sim.after(Time::ms(5), [&] {
    Packet p = make_packet();
    n.send(std::move(p));
  });
  sim.run();
  EXPECT_EQ(out.sent_at, Time::ms(5));
}

TEST(Node, EphemeralPortsUnique) {
  sim::Simulator sim;
  Node n{sim, Ipv4Addr::octets(10, 0, 0, 1), "n"};
  EXPECT_NE(n.alloc_port(), n.alloc_port());
}

}  // namespace
}  // namespace pp::net

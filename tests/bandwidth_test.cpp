#include <gtest/gtest.h>

#include "net/wireless.hpp"
#include "proxy/bandwidth.hpp"
#include "sim/simulator.hpp"

namespace pp::proxy {
namespace {

using sim::Time;

BandwidthEstimator fit_linear(double a, double b) {
  std::vector<BandwidthEstimator::Sample> samples;
  for (std::uint32_t n : {100u, 400u, 700u, 1000u, 1400u})
    samples.push_back({n, a + b * n});
  return BandwidthEstimator{samples};
}

TEST(BandwidthEstimator, RecoversExactLinearModel) {
  const auto est = fit_linear(1e-3, 2e-6);
  EXPECT_NEAR(est.overhead_seconds(), 1e-3, 1e-9);
  EXPECT_NEAR(est.seconds_per_byte(), 2e-6, 1e-12);
  EXPECT_TRUE(est.fitted());
}

TEST(BandwidthEstimator, FitFromNoisySamplesIsClose) {
  std::vector<BandwidthEstimator::Sample> samples;
  sim::Rng rng{5};
  for (std::uint32_t n = 100; n <= 1400; n += 100) {
    const double y = 1e-3 + 2e-6 * n + rng.uniform(-2e-5, 2e-5);
    samples.push_back({n, y});
  }
  BandwidthEstimator est{samples};
  EXPECT_NEAR(est.overhead_seconds(), 1e-3, 1e-4);
  EXPECT_NEAR(est.seconds_per_byte(), 2e-6, 2e-7);
}

TEST(BandwidthEstimator, PacketCostIsAffine) {
  const auto est = fit_linear(1e-3, 2e-6);
  EXPECT_NEAR(est.packet_cost(0).to_seconds(), 1e-3, 1e-9);
  EXPECT_NEAR(est.packet_cost(1000).to_seconds(), 3e-3, 1e-9);
}

TEST(BandwidthEstimator, BulkCostCountsPacketsAndTail) {
  const auto est = fit_linear(1e-3, 1e-6);
  // 3000 bytes at mtu 1400: two full packets + a 200-byte tail.
  const double expect =
      2 * (1e-3 + 1.4e-3) + (1e-3 + 0.2e-3);
  EXPECT_NEAR(est.bulk_cost(3000, 1400).to_seconds(), expect, 1e-9);
}

TEST(BandwidthEstimator, BulkCostChargesAcks) {
  const auto est = fit_linear(1e-3, 1e-6);
  const double no_ack = est.bulk_cost(2800, 1400).to_seconds();
  const double with_ack = est.bulk_cost(2800, 1400, 40).to_seconds();
  EXPECT_NEAR(with_ack - no_ack, 2 * (1e-3 + 40e-6), 1e-9);
}

TEST(BandwidthEstimator, ZeroBytesCostNothing) {
  const auto est = fit_linear(1e-3, 1e-6);
  EXPECT_EQ(est.bulk_cost(0, 1400), Time::zero());
  EXPECT_EQ(est.payload_budget(Time::zero(), 1400), 0u);
}

TEST(BandwidthEstimator, BudgetInvertsBulkCost) {
  const auto est = fit_linear(1.75e-3, 2e-6);
  for (std::uint64_t bytes : {1ull, 551ull, 1400ull, 6151ull, 40000ull,
                              123456ull}) {
    const sim::Duration cost = est.bulk_cost(bytes, 1400, 40);
    // A slot sized by bulk_cost must admit at least that many bytes.
    EXPECT_GE(est.payload_budget(cost, 1400, 40), bytes)
        << "bytes=" << bytes;
  }
}

TEST(BandwidthEstimator, BudgetDoesNotWildlyOvershoot) {
  const auto est = fit_linear(1.75e-3, 2e-6);
  for (std::uint64_t bytes : {1400ull, 14000ull, 140000ull}) {
    const sim::Duration cost = est.bulk_cost(bytes, 1400, 40);
    EXPECT_LE(est.payload_budget(cost, 1400, 40), bytes + 1400);
  }
}

TEST(BandwidthEstimator, BudgetMonotoneInSlot) {
  const auto est = fit_linear(1.75e-3, 2e-6);
  std::uint64_t prev = 0;
  for (int ms = 1; ms <= 100; ms += 3) {
    const auto b = est.payload_budget(Time::ms(ms), 1400, 40);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BandwidthEstimator, CalibrationAgainstMediumMatchesAirtime) {
  sim::Simulator sim;
  net::WirelessMedium medium{sim};
  std::vector<BandwidthEstimator::Sample> samples;
  for (std::uint32_t payload : {100u, 500u, 900u, 1400u}) {
    net::Packet p = net::make_packet();
    p.payload = payload;
    p.dst = net::Ipv4Addr::octets(1, 2, 3, 4);
    samples.push_back({payload, medium.airtime_of(p).to_seconds()});
  }
  BandwidthEstimator est{samples};
  // The medium's airtime IS affine in payload, so the fit is exact.
  net::Packet probe = net::make_packet();
  probe.payload = 777;
  probe.dst = net::Ipv4Addr::octets(1, 2, 3, 4);
  EXPECT_NEAR(est.packet_cost(777).to_seconds(),
              medium.airtime_of(probe).to_seconds(), 1e-9);
}

}  // namespace
}  // namespace pp::proxy

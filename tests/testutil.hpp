// Shared helpers for unit tests: two nodes joined by a configurable
// (rate, delay, loss) duplex pipe — enough to exercise transports without
// the full testbed.
#pragma once

#include <memory>
#include <utility>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace pp::test {

// Drops packets with probability p before handing them on.
class LossySink : public net::PacketSink {
 public:
  LossySink(sim::Simulator& sim, net::PacketSink& next, double p_loss)
      : sim_{sim}, next_{next}, p_loss_{p_loss} {}

  void set_loss(double p) { p_loss_ = p; }
  std::uint64_t dropped() const { return dropped_; }

  void handle_packet(net::Packet pkt) override {
    if (p_loss_ > 0 && sim_.rng().chance(p_loss_)) {
      ++dropped_;
      return;
    }
    next_.handle_packet(std::move(pkt));
  }

 private:
  sim::Simulator& sim_;
  net::PacketSink& next_;
  double p_loss_;
  std::uint64_t dropped_ = 0;
};

// Two nodes, A and B, joined by a duplex wired pipe with optional loss.
struct NodePair {
  explicit NodePair(std::uint64_t seed = 7, net::WiredParams params = {},
                    double p_loss = 0.0)
      : sim(seed),
        a(sim, net::Ipv4Addr::octets(10, 0, 0, 1), "A"),
        b(sim, net::Ipv4Addr::octets(10, 0, 0, 2), "B"),
        drop_to_b(sim, b, p_loss),
        drop_to_a(sim, a, p_loss),
        to_b(sim, params, drop_to_b),
        to_a(sim, params, drop_to_a) {
    a.set_transmitter([this](net::Packet p) { to_b.transmit(std::move(p)); });
    b.set_transmitter([this](net::Packet p) { to_a.transmit(std::move(p)); });
  }

  sim::Simulator sim;
  net::Node a;
  net::Node b;
  LossySink drop_to_b;
  LossySink drop_to_a;
  net::Channel to_b;
  net::Channel to_a;
};

}  // namespace pp::test

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/delay_comp.hpp"
#include "client/power_daemon.hpp"
#include "sim/simulator.hpp"

namespace pp::client {
namespace {

using sim::Time;

const net::Ipv4Addr kSelf = net::Ipv4Addr::octets(172, 16, 0, 1);
const net::Ipv4Addr kOther = net::Ipv4Addr::octets(172, 16, 0, 2);

std::shared_ptr<proxy::ScheduleMessage> schedule(
    sim::Time srp, sim::Duration interval,
    std::vector<proxy::ScheduleEntry> entries, bool reuse = false) {
  auto msg = std::make_shared<proxy::ScheduleMessage>();
  static std::uint64_t seq = 0;
  msg->seq_no = ++seq;
  msg->srp_time = srp;
  msg->interval = interval;
  msg->reuse_next = reuse;
  msg->entries = std::move(entries);
  return msg;
}

net::Packet data_pkt(bool marked, std::uint32_t payload = 1000) {
  net::Packet p = net::make_packet();
  p.proto = net::Protocol::Udp;
  p.dst = kSelf;
  p.payload = payload;
  p.marked = marked;
  return p;
}

struct Harness {
  explicit Harness(DaemonConfig cfg = {})
      : daemon{sim, kSelf, cfg, [this](bool awake) {
                 transitions.emplace_back(sim.now(), awake);
               }} {
    daemon.start();
  }
  // Deliver a schedule at absolute time t (only if the daemon is awake,
  // mirroring the radio).
  void schedule_at(sim::Time t, std::shared_ptr<proxy::ScheduleMessage> msg) {
    sim.at(t, [this, msg] {
      if (daemon.awake()) daemon.on_schedule(msg);
    });
  }
  void data_at(sim::Time t, bool marked) {
    sim.at(t, [this, marked] {
      if (daemon.awake()) {
        auto p = data_pkt(marked);
        daemon.on_data(p);
        ++delivered;
      } else {
        ++missed;
      }
    });
  }
  bool awake_during(sim::Time t) const {
    bool awake = true;  // starts awake
    for (const auto& [when, a] : transitions) {
      if (when > t) break;
      awake = a;
    }
    return awake;
  }

  sim::Simulator sim;
  std::vector<std::pair<sim::Time, bool>> transitions;
  int delivered = 0;
  int missed = 0;
  PowerDaemon daemon;
};

TEST(PowerDaemon, StartsAwakeAwaitingSchedule) {
  Harness h;
  EXPECT_TRUE(h.daemon.awake());
}

TEST(PowerDaemon, SleepsAfterNoEntryScheduleUntilNextSrp) {
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(700));
  EXPECT_FALSE(h.daemon.awake());
  // Wakes early (6 ms default) before the next schedule at 1000 ms.
  h.sim.run_until(Time::ms(995));
  EXPECT_TRUE(h.daemon.awake());
}

TEST(PowerDaemon, AdaptiveWakeAnchorsOnArrival) {
  Harness h;
  // Schedule reaches the client 3 ms late (AP delay).
  h.schedule_at(Time::ms(503), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.run();
  // Expected next arrival 1003 ms; wake at 997 ms (early = 6 ms).
  EXPECT_FALSE(h.awake_during(Time::ms(996)));
  EXPECT_TRUE(h.awake_during(Time::ms(998)));
}

TEST(PowerDaemon, WakesForOwnBurstAndSleepsOnMark) {
  Harness h;
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kSelf, Time::ms(100), Time::ms(50), proxy::SlotKind::Any}}));
  h.sim.run_until(Time::ms(550));
  // Sleeping between schedule and RP (offset 100 ms).
  EXPECT_FALSE(h.daemon.awake());
  h.sim.run_until(Time::ms(596));
  EXPECT_TRUE(h.daemon.awake());  // woke 6 ms early for RP at 600
  h.data_at(Time::ms(602), false);
  h.data_at(Time::ms(605), true);  // marked
  h.sim.run_until(Time::ms(610));
  EXPECT_FALSE(h.daemon.awake());  // slept on the mark
  EXPECT_EQ(h.daemon.stats().bursts_completed, 1u);
  EXPECT_EQ(h.delivered, 2);
}

TEST(PowerDaemon, OtherClientsEntriesIgnored) {
  Harness h;
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kOther, Time::ms(100), Time::ms(50), proxy::SlotKind::Any}}));
  h.sim.run_until(Time::ms(700));
  EXPECT_FALSE(h.daemon.awake());  // no reason to wake at kOther's RP
  EXPECT_FALSE(h.awake_during(Time::ms(600)));
}

TEST(PowerDaemon, MissedScheduleKeepsClientAwake) {
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  // The schedule at 1000 ms never arrives; the next one comes at 2000 ms.
  h.sim.run_until(Time::ms(1900));
  EXPECT_EQ(h.daemon.stats().schedules_missed, 1u);
  EXPECT_TRUE(h.daemon.awake());  // high power until the next schedule
  h.schedule_at(Time::ms(2000), schedule(Time::ms(2000), Time::ms(500), {}));
  h.sim.run_until(Time::ms(2100));
  // Awake from the grace expiry (~1036 ms) until 2000 ms.
  EXPECT_GT(h.daemon.stats().missed_wait, Time::ms(800));
}

TEST(PowerDaemon, ResyncsAfterMiss) {
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  // Miss at 1000; next schedule arrives at 1500 while we are awake.
  h.schedule_at(Time::ms(1500), schedule(Time::ms(1500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(1600));
  EXPECT_FALSE(h.daemon.awake());  // back on schedule, sleeping
}

TEST(PowerDaemon, DataBeforeScheduleIsAccepted) {
  // Rule (2) of Section 3.2.2.
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  // Awake for the 1000 ms schedule; burst data arrives slightly before it.
  h.data_at(Time::ms(998), false);
  h.schedule_at(
      Time::ms(1000),
      schedule(Time::ms(1000), Time::ms(500),
               {{kSelf, Time::ms(4), Time::ms(20), proxy::SlotKind::Any}}));
  h.sim.run_until(Time::ms(999));
  EXPECT_EQ(h.delivered, 1);
}

TEST(PowerDaemon, ScheduleDuringBurstDeferredUntilMark) {
  // Rule (1) of Section 3.2.2.
  DaemonConfig cfg;
  Harness h{cfg};
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kSelf, Time::ms(480), Time::ms(40), proxy::SlotKind::Any}}));
  // Burst starts at ~980 and is still unmarked when the next schedule
  // (1000 ms) arrives; the mark comes at 1010.
  h.data_at(Time::ms(985), false);
  auto next = schedule(Time::ms(1000), Time::ms(500),
                       {{kSelf, Time::ms(100), Time::ms(20),
                         proxy::SlotKind::Any}});
  h.schedule_at(Time::ms(1000), next);
  h.data_at(Time::ms(1010), true);
  h.sim.run_until(Time::ms(1050));
  // After the mark, the deferred schedule applies: sleep, then wake for
  // the RP at ~1100.
  EXPECT_FALSE(h.daemon.awake());
  h.sim.run_until(Time::ms(1097));
  EXPECT_TRUE(h.daemon.awake());
}

TEST(PowerDaemon, SecondScheduleEndsBurstWhenMarkLost) {
  Harness h;
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kSelf, Time::ms(480), Time::ms(40), proxy::SlotKind::Any}}));
  h.data_at(Time::ms(985), false);  // burst begins; mark is lost
  h.schedule_at(Time::ms(1000), schedule(Time::ms(1000), Time::ms(500), {}));
  h.schedule_at(Time::ms(1500), schedule(Time::ms(1500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(1400));
  EXPECT_TRUE(h.daemon.awake());  // still waiting: one deferred schedule
  h.sim.run_until(Time::ms(1600));
  // The second schedule forcibly ended the burst and applied.
  EXPECT_FALSE(h.daemon.awake());
}

TEST(PowerDaemon, ReuseFlagSkipsScheduleWake) {
  DaemonConfig cfg;
  Harness h{cfg};
  // Static schedule: reuse set, own entry at 50 ms offset each interval.
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(100),
               {{kSelf, Time::ms(50), Time::ms(10), proxy::SlotKind::Any}},
               /*reuse=*/true));
  // Bursts with marks at each RP (550, 650, 750...).
  for (int k = 0; k < 5; ++k)
    h.data_at(Time::ms(552 + 100 * k), true);
  h.sim.run_until(Time::ms(1000));
  EXPECT_EQ(h.delivered, 5);
  // Without reuse the daemon would wake at 594 for the 600 ms schedule;
  // with reuse it sleeps straight through to the 644 wake for RP at 650.
  EXPECT_FALSE(h.awake_during(Time::ms(620)));
  EXPECT_EQ(h.daemon.stats().schedules_received, 1u);
}

TEST(PowerDaemon, SlotEndFallbackSleepsWithoutMark) {
  DaemonConfig cfg;
  cfg.sleep_at_slot_end = true;
  Harness h{cfg};
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kSelf, Time::ms(100), Time::ms(40), proxy::SlotKind::Any}}));
  // No data at all in the slot (600-640).
  h.sim.run_until(Time::ms(660));
  EXPECT_FALSE(h.daemon.awake());
  EXPECT_EQ(h.daemon.stats().slot_end_sleeps, 1u);
}

TEST(PowerDaemon, ForceAwakeWakesAndResyncs) {
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(700));
  EXPECT_FALSE(h.daemon.awake());
  h.sim.at(Time::ms(750), [&] { h.daemon.force_awake(); });
  h.sim.run_until(Time::ms(760));
  EXPECT_TRUE(h.daemon.awake());
  EXPECT_EQ(h.daemon.stats().forced_wakes, 1u);
  // Still wakes correctly for the next schedule.
  h.schedule_at(Time::ms(1002), schedule(Time::ms(1000), Time::ms(500), {}));
  h.sim.run_until(Time::ms(1100));
  EXPECT_FALSE(h.daemon.awake());
}

TEST(PowerDaemon, ActivityHoldDefersSleep) {
  DaemonConfig cfg;
  cfg.activity_hold = Time::ms(50);
  Harness h{cfg};
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(600));
  EXPECT_FALSE(h.daemon.awake());
  h.sim.at(Time::ms(700), [&] { h.daemon.force_awake(); });
  // A schedule with no entry for us arrives during the hold: the daemon
  // must NOT sleep before the hold expires (a response may be in flight).
  h.sim.run_until(Time::ms(730));
  EXPECT_TRUE(h.daemon.awake());
  h.sim.run_until(Time::ms(760));
  EXPECT_FALSE(h.daemon.awake());  // hold expired at 750 -> sleep resumed
}

TEST(PowerDaemon, PureControlPacketsDoNotDisturbState) {
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.at(Time::ms(500), [&] {
    net::Packet ack = net::make_packet();
    ack.proto = net::Protocol::Tcp;
    ack.payload = 0;
    if (h.daemon.awake()) h.daemon.on_data(ack);
  });
  h.sim.run_until(Time::ms(700));
  // The zero-payload segment did not flip us into Receiving; the no-entry
  // schedule put us to sleep normally.
  EXPECT_FALSE(h.daemon.awake());
  EXPECT_EQ(h.daemon.stats().data_packets, 0u);
}

TEST(PowerDaemon, EarlyWaitAccumulates) {
  Harness h;
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.schedule_at(Time::ms(1000), schedule(Time::ms(1000), Time::ms(500), {}));
  h.sim.run_until(Time::ms(1100));
  // Woke at 994 for the 1000 ms arrival: ~6 ms of early wait.
  EXPECT_GE(h.daemon.stats().early_wait, Time::ms(5));
  EXPECT_LE(h.daemon.stats().early_wait, Time::ms(8));
}

TEST(PowerDaemon, MultipleEntriesWakeSequentially) {
  Harness h;
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kSelf, Time::ms(50), Time::ms(20), proxy::SlotKind::Any},
                {kSelf, Time::ms(300), Time::ms(20), proxy::SlotKind::Any}}));
  h.data_at(Time::ms(552), true);  // first burst marked
  h.data_at(Time::ms(802), true);  // second burst marked
  h.sim.run_until(Time::ms(700));
  EXPECT_FALSE(h.daemon.awake());  // asleep between the two bursts
  h.sim.run_until(Time::ms(796));
  EXPECT_TRUE(h.daemon.awake());  // awake for the second RP
  h.sim.run_until(Time::ms(810));
  EXPECT_FALSE(h.daemon.awake());
  EXPECT_EQ(h.delivered, 2);
}

TEST(PowerDaemon, CompensationModesDifferInAnchor) {
  DelayCompensation adaptive{CompensationMode::Adaptive, Time::ms(6)};
  DelayCompensation proxy_clock{CompensationMode::ProxyClock, Time::ms(6)};
  DelayCompensation none{CompensationMode::None, Time::ms(6)};
  const sim::Time arrival = Time::ms(503);
  const sim::Time stamp = Time::ms(500);
  EXPECT_EQ(adaptive.wake_time(arrival, stamp, Time::ms(100)), Time::ms(597));
  EXPECT_EQ(proxy_clock.wake_time(arrival, stamp, Time::ms(100)),
            Time::ms(594));
  EXPECT_EQ(none.wake_time(arrival, stamp, Time::ms(100)), Time::ms(603));
}

// Sweep: smaller early-transition amounts wake later.
class EarlySweep : public ::testing::TestWithParam<int> {};

TEST_P(EarlySweep, WakeTimeShiftsWithEarlyAmount) {
  DaemonConfig cfg;
  cfg.comp.early = Time::ms(GetParam());
  Harness h{cfg};
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.run();
  // Find the wake transition for the 1000 ms schedule.
  sim::Time wake;
  for (const auto& [when, awake] : h.transitions)
    if (awake && when > Time::ms(600)) wake = when;
  EXPECT_EQ(wake, Time::ms(1000 - GetParam()));
}

INSTANTIATE_TEST_SUITE_P(EarlyAmounts, EarlySweep,
                         ::testing::Values(0, 2, 4, 6, 8, 10));

// -- Graceful degradation: k-repeat dedupe and miss escalation ---------------------

TEST(PowerDaemon, RepeatedScheduleCopyIsDeduped) {
  Harness h;
  auto orig = schedule(Time::ms(500), Time::ms(500), {});
  auto copy = std::make_shared<proxy::ScheduleMessage>(*orig);
  copy->repeat_offset = Time::ms(3);
  h.schedule_at(Time::ms(500), orig);
  // Deliver the k-repeat copy directly: the radio may well be awake for it
  // (first-slot clients are), and the state machine must shrug it off.
  h.sim.at(Time::ms(503), [&, copy] { h.daemon.on_schedule(copy); });
  h.sim.run_until(Time::ms(996));
  EXPECT_EQ(h.daemon.stats().schedules_received, 1u);
  EXPECT_EQ(h.daemon.stats().repeats_deduped, 1u);
  // The duplicate did not wake or re-anchor anything: next wake is still
  // ~994 ms for the 1000 ms arrival.
  EXPECT_FALSE(h.awake_during(Time::ms(992)));
  EXPECT_TRUE(h.awake_during(Time::ms(995)));
}

TEST(PowerDaemon, RepeatCopyAnchorsOnOriginalArrivalTime) {
  Harness h;
  // The original broadcast is lost; only the second transmission (3 ms
  // later) gets through.  Delay compensation must anchor on where the
  // original would have arrived, not on the repeat's own lagged arrival.
  auto copy = schedule(Time::ms(500), Time::ms(500), {});
  copy->repeat_offset = Time::ms(3);
  h.schedule_at(Time::ms(503), copy);
  h.sim.run();
  // Anchor 500 ms -> next arrival expected 1000 ms -> wake at 994 ms.
  // (Without the offset it would anchor at 503 and wake at 997.)
  EXPECT_FALSE(h.awake_during(Time::ms(992)));
  EXPECT_TRUE(h.awake_during(Time::ms(995)));
}

TEST(PowerDaemon, EscalationBacksOffAndSleepsThroughDeepOutage) {
  DaemonConfig cfg;
  cfg.escalation.enabled = true;
  cfg.escalation.awake_misses = 1;
  cfg.escalation.backoff = 2.0;
  cfg.escalation.max_grace = Time::ms(240);
  Harness h{cfg};
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  // Every subsequent schedule is lost until 3000 ms.
  h.sim.run_until(Time::ms(1100));
  // Miss #1 at 1030 (grace 30 ms): stay awake, grace widened to 60 ms and
  // re-armed on the next expected SRP (1500 + 60).
  EXPECT_EQ(h.daemon.stats().schedules_missed, 1u);
  EXPECT_EQ(h.daemon.stats().first_misses, 1u);
  EXPECT_TRUE(h.daemon.awake());

  h.sim.run_until(Time::ms(1700));
  // Miss #2 at 1560: beyond awake_misses, so the daemon sleeps through to
  // just before the next expected SRP (wakes at 1994).
  EXPECT_EQ(h.daemon.stats().schedules_missed, 2u);
  EXPECT_EQ(h.daemon.stats().repeat_misses, 1u);
  EXPECT_EQ(h.daemon.stats().escalated_sleeps, 1u);
  EXPECT_FALSE(h.daemon.awake());

  h.sim.run_until(Time::ms(2000));
  EXPECT_TRUE(h.daemon.awake());  // up for the 2000 ms SRP attempt
  h.sim.run_until(Time::ms(2200));
  // Miss #3 at 2120 (grace now 120 ms): escalated sleep again.
  EXPECT_EQ(h.daemon.stats().schedules_missed, 3u);
  EXPECT_EQ(h.daemon.stats().escalated_sleeps, 2u);
  EXPECT_FALSE(h.daemon.awake());

  // Miss #4 at 2740 (grace capped at 240 ms), then the 3000 ms schedule
  // arrives while the daemon is awake for its SRP attempt (woke at 2994).
  h.schedule_at(Time::ms(3000), schedule(Time::ms(3000), Time::ms(500), {}));
  h.sim.run_until(Time::ms(3100));
  EXPECT_EQ(h.daemon.stats().schedules_missed, 4u);
  EXPECT_EQ(h.daemon.stats().resyncs, 1u);
  EXPECT_FALSE(h.daemon.awake());  // back on schedule, sleeping
  // Grace reset on resync: a subsequent clean interval behaves normally.
  h.schedule_at(Time::ms(3500), schedule(Time::ms(3500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(3600));
  EXPECT_EQ(h.daemon.stats().schedules_missed, 4u);
}

TEST(PowerDaemon, EscalationDisabledStaysAwakeAllOutage) {
  Harness h;  // escalation off by default (paper behavior)
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(2900));
  // One counted miss, then awake for the whole outage.
  EXPECT_EQ(h.daemon.stats().schedules_missed, 1u);
  EXPECT_EQ(h.daemon.stats().escalated_sleeps, 0u);
  EXPECT_TRUE(h.daemon.awake());
  EXPECT_TRUE(h.awake_during(Time::ms(1800)));
  EXPECT_TRUE(h.awake_during(Time::ms(2600)));
}

TEST(PowerDaemon, CoastBoundForcesReanchorAfterRepeatedBlindCoasts) {
  // A client that keeps missing schedules but catching its burst data
  // re-anchors by estimate alone each interval ("blind coast").  If the
  // anchor is systematically stale, that loop never hears a broadcast and
  // coasts desynchronized forever; max_blind_coasts (default 2) must cut
  // the streak and hold the radio awake until a real schedule re-anchors.
  Harness h;
  h.schedule_at(
      Time::ms(500),
      schedule(Time::ms(500), Time::ms(500),
               {{kSelf, Time::ms(100), Time::ms(50), proxy::SlotKind::Any}}));
  h.data_at(Time::ms(602), false);
  h.data_at(Time::ms(605), true);
  // SRPs at 1000/1500/2000 are lost, but the data bursts still flow at the
  // (stale) slot offsets the daemon estimates.
  for (int i = 1; i <= 3; ++i) {
    h.data_at(Time::ms(1000 * 1 + 500 * (i - 1) + 102), false);
    h.data_at(Time::ms(1000 * 1 + 500 * (i - 1) + 105), true);
  }
  h.schedule_at(Time::ms(2500), schedule(Time::ms(2500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(2600));
  // Coasts #1 and #2 slept between mark and the next estimated SRP...
  EXPECT_FALSE(h.awake_during(Time::ms(1300)));
  EXPECT_FALSE(h.awake_during(Time::ms(1800)));
  // ...but the third mark hit the coast bound: awake until the 2500
  // broadcast instead of blindly sleeping on the suspect anchor.
  EXPECT_TRUE(h.awake_during(Time::ms(2200)));
  EXPECT_TRUE(h.awake_during(Time::ms(2450)));
  EXPECT_EQ(h.daemon.stats().coast_breaks, 1u);
  EXPECT_EQ(h.daemon.stats().schedules_missed, 3u);
  EXPECT_EQ(h.daemon.stats().schedules_received, 2u);
  EXPECT_EQ(h.delivered, 8);  // every burst was caught, coasting or not
  h.sim.run_until(Time::ms(2900));
  EXPECT_FALSE(h.awake_during(Time::ms(2800)));  // re-anchored, sleeping
}

TEST(PowerDaemon, ResyncRecordsOutageDepth) {
  DaemonConfig cfg;
  cfg.escalation.enabled = true;
  Harness h{cfg};
  h.schedule_at(Time::ms(500), schedule(Time::ms(500), Time::ms(500), {}));
  h.schedule_at(Time::ms(2500), schedule(Time::ms(2500), Time::ms(500), {}));
  h.sim.run_until(Time::ms(2600));
  // SRPs at 1000/1500/2000 lost; the 2500 one resynchronizes.
  EXPECT_EQ(h.daemon.stats().resyncs, 1u);
  EXPECT_GE(h.daemon.stats().schedules_missed, 2u);
  EXPECT_EQ(h.daemon.stats().first_misses, 1u);
  EXPECT_GE(h.daemon.stats().repeat_misses, 1u);
  EXPECT_GT(h.daemon.stats().missed_wait, Time::zero());
}

}  // namespace
}  // namespace pp::client

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace pp::sim {
namespace {

TEST(Time, FactoriesAndAccessors) {
  EXPECT_EQ(Time::ms(3).count_ns(), 3'000'000);
  EXPECT_EQ(Time::us(5).count_ns(), 5'000);
  EXPECT_EQ(Time::sec(2).count_ms(), 2'000);
  EXPECT_DOUBLE_EQ(Time::ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::us(2500).to_ms(), 2.5);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::ms(2) + Time::ms(3), Time::ms(5));
  EXPECT_EQ(Time::sec(1) - Time::ms(250), Time::ms(750));
  EXPECT_EQ(Time::ms(10) * 3, Time::ms(30));
  EXPECT_EQ(Time::ms(10) / 4, Time::us(2500));
  EXPECT_DOUBLE_EQ(Time::ms(1).ratio(Time::ms(4)), 0.25);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::ms(1), Time::ms(2));
  EXPECT_LE(Time::zero(), Time::ns(0));
  EXPECT_GT(Time::max(), Time::sec(1'000'000));
}

TEST(Time, SecondsFactoryRounds) {
  EXPECT_EQ(Time::seconds(0.001).count_ns(), 1'000'000);
  EXPECT_EQ(Time::seconds(1.5).count_ms(), 1'500);
}

TEST(Time, Streaming) {
  EXPECT_EQ(Time::ms(5).str(), "5.000ms");
  EXPECT_EQ(Time::sec(2).str(), "2.000000s");
  EXPECT_EQ(Time::ns(17).str(), "17ns");
}

TEST(Rng, Deterministic) {
  Rng r1{42};
  Rng r2{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng r1{1};
  Rng r2{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += r1.next_u64() == r2.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{3};
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r{11};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r{13};
  double sum = 0, sq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.15);
}

TEST(Rng, ParetoBounded) {
  Rng r{17};
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.pareto(1.2, 100.0, 1e6);
    ASSERT_GE(x, 100.0);
    ASSERT_LE(x, 1e6 + 1);
  }
}

TEST(Rng, ForkIndependent) {
  Rng parent{23};
  Rng child = parent.fork();
  // The child stream should not be a shifted copy of the parent's.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::ms(3), [&] { fired.push_back(3); });
  q.push(Time::ms(1), [&] { fired.push_back(1); });
  q.push(Time::ms(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.push(Time::ms(5), [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  auto h = q.push(Time::ms(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnEmptyHandle) {
  EventHandle h;
  h.cancel();
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  q.push(Time::ms(9), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), Time::ms(9));
}

TEST(EventQueue, HandleReportsFiredAsNotPending) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen;
  sim.after(Time::ms(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::ms(7));
  EXPECT_EQ(sim.now(), Time::ms(7));
}

TEST(Simulator, RunUntilAdvancesClockToBound) {
  Simulator sim;
  int count = 0;
  sim.after(Time::ms(1), [&] { ++count; });
  sim.after(Time::ms(100), [&] { ++count; });
  sim.run_until(Time::ms(50));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), Time::ms(50));
  sim.run_until(Time::ms(200));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<std::int64_t> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now().count_ms());
    if (times.size() < 5) sim.after(Time::ms(10), tick);
  };
  sim.after(Time::ms(10), tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 20, 30, 40, 50}));
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    sim.after(Time::ms(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), Time::ms(3));
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.after(Time::ms(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 17u);
}

}  // namespace
}  // namespace pp::sim

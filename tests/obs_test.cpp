#include <gtest/gtest.h>

#include <sstream>

#include "exp/builder.hpp"
#include "exp/scenario.hpp"
#include "obs/export.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/timeline.hpp"

namespace pp::obs {
namespace {

using sim::Time;

TEST(Counter, AccumulatesIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(TimeWeightedGauge, MeanIsTimeIntegralOverSpan) {
  TimeWeightedGauge g;
  g.set(Time::seconds(0), 2.0);
  g.set(Time::seconds(10), 6.0);
  g.finalize(Time::seconds(20));
  // 2.0 held for 10 s + 6.0 held for 10 s over a 20 s span.
  EXPECT_DOUBLE_EQ(g.mean(), 4.0);
  EXPECT_DOUBLE_EQ(g.min(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 6.0);
  EXPECT_DOUBLE_EQ(g.last(), 6.0);
}

TEST(TimeWeightedGauge, DutyCycleOfSquareWave) {
  // Awake 1/4 of the time: 1 for 1 s, 0 for 3 s, repeated twice.
  TimeWeightedGauge g;
  for (int rep = 0; rep < 2; ++rep) {
    g.set(Time::seconds(rep * 4), 1.0);
    g.set(Time::seconds(rep * 4 + 1), 0.0);
  }
  g.finalize(Time::seconds(8));
  EXPECT_DOUBLE_EQ(g.mean(), 0.25);
}

TEST(TimeWeightedGauge, NeverMovedReportsHeldValue) {
  TimeWeightedGauge g;
  g.set(Time::ms(5), 3.5);
  EXPECT_DOUBLE_EQ(g.mean(), 3.5);
  g.finalize(Time::ms(5));  // zero span is still the held value
  EXPECT_DOUBLE_EQ(g.mean(), 3.5);
}

TEST(TimeWeightedGauge, FinalizeIsIdempotent) {
  TimeWeightedGauge g;
  g.set(Time::seconds(0), 1.0);
  g.set(Time::seconds(1), 3.0);
  g.finalize(Time::seconds(2));
  const double first = g.mean();
  g.finalize(Time::seconds(2));
  EXPECT_DOUBLE_EQ(g.mean(), first);
}

TEST(Histogram, BucketIndexIsLog2) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64);
}

TEST(Histogram, BucketFloorInvertsIndex) {
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(Histogram::bucket_floor(11), 1024u);
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull, 123456789ull}) {
    const int i = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_floor(i), v);
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::bucket_floor(i + 1), v);
    }
  }
}

TEST(Histogram, ObserveTracksStats) {
  Histogram h;
  h.observe(0);
  h.observe(3);
  h.observe(3);
  h.observe(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 257.5);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[11], 1u);
}

TEST(Registry, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  a->inc();
  // Creating other entries must not invalidate `a`; same name, same node.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(reg.counter("x"), a);
  EXPECT_EQ(reg.counter("x")->value(), 1u);
}

TEST(Registry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);  // pp-lint: allow(obs-name-consistency): deliberately unregistered name
  EXPECT_EQ(reg.find_time_gauge("nope"), nullptr);  // pp-lint: allow(obs-name-consistency): deliberately unregistered name
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);  // pp-lint: allow(obs-name-consistency): deliberately unregistered name
  reg.counter("yes");
  EXPECT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_TRUE(reg.counters().size() == 1);
}

TEST(Timeline, RecordsAndCapsAtCapacity) {
  Timeline tl;
  tl.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    tl.record(Time::ms(i), EventKind::Wake, 7, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl.dropped(), 2u);
  EXPECT_EQ(tl.events()[2].value, 2u);
}

TEST(Timeline, EventKindNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(EventKind::ScheduleMissed); ++i) {
    const auto k = static_cast<EventKind>(i);
    EventKind back{};
    ASSERT_TRUE(event_kind_from_string(to_string(k), back)) << to_string(k);
    EXPECT_EQ(back, k);
  }
  EventKind out{};
  EXPECT_FALSE(event_kind_from_string("no_such_kind", out));
}

TEST(Hook, DetachedHookIsFalsy) {
  Hook h;
  EXPECT_FALSE(h);
#if PP_OBS_ENABLED
  EXPECT_EQ(h.metrics(), nullptr);
  EXPECT_EQ(h.timeline(), nullptr);
  Observer ob;
  Hook attached = ob.hook();
  EXPECT_TRUE(attached);
  EXPECT_EQ(attached.metrics(), &ob.metrics);
  EXPECT_EQ(attached.timeline(), &ob.timeline);
#endif
}

TEST(Export, JsonlRoundTripPreservesEverything) {
  MetricsRegistry reg;
  reg.counter("proxy.schedules_sent")->inc(280);
  reg.gauge("calib.per_byte_ns")->set(0.815);
  auto* twg = reg.time_gauge("proxy.queue_depth_bytes");
  twg->set(Time::seconds(0), 0.0);
  twg->set(Time::seconds(1), 3000.0);
  twg->set(Time::seconds(3), 500.0);
  reg.finalize(Time::seconds(4));
  auto* h = reg.histogram("proxy.burst_bytes");
  h->observe(0);
  h->observe(1400);
  h->observe(65536);

  Timeline tl;
  tl.record(Time::ms(500), EventKind::ScheduleBroadcast, 0, 4);
  tl.span(Time::ms(600), Time::ms(20), EventKind::Burst, 0xAC100001u, 14000);
  tl.record(Time::ms(900), EventKind::Sleep, 0xAC100002u);

  const Report out = snapshot(reg, &tl);
  std::stringstream ss;
  write_jsonl(ss, out);
  const Report in = read_jsonl(ss);

  ASSERT_EQ(in.counters.size(), 1u);
  EXPECT_EQ(in.counters[0].name, "proxy.schedules_sent");
  EXPECT_EQ(in.counters[0].value, 280u);

  ASSERT_EQ(in.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(in.gauges[0].value, 0.815);

  const auto* g = in.find_time_gauge("proxy.queue_depth_bytes");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->mean, twg->mean());
  EXPECT_DOUBLE_EQ(g->max, 3000.0);
  EXPECT_DOUBLE_EQ(g->last, 500.0);

  const auto* hist = in.find_histogram("proxy.burst_bytes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 66936u);
  EXPECT_EQ(hist->min, 0u);
  EXPECT_EQ(hist->max, 65536u);
  ASSERT_EQ(hist->buckets.size(), 3u);
  EXPECT_EQ(hist->buckets[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1}));

  ASSERT_EQ(in.events.size(), 3u);
  EXPECT_EQ(in.events[0].kind, EventKind::ScheduleBroadcast);
  EXPECT_EQ(in.events[0].value, 4u);
  EXPECT_EQ(in.events[1].kind, EventKind::Burst);
  EXPECT_EQ(in.events[1].subject, 0xAC100001u);
  EXPECT_EQ(in.events[1].dur, Time::ms(20));
  EXPECT_EQ(in.events[1].value, 14000u);
  EXPECT_EQ(in.events[2].at, Time::ms(900));
}

TEST(Export, ReadRejectsMalformedInput) {
  std::stringstream ss{"{\"type\":\"counter\",\"value\":1}\n"};
  EXPECT_THROW(read_jsonl(ss), std::runtime_error);
  std::stringstream garbage{"not json at all\n"};
  EXPECT_THROW(read_jsonl(garbage), std::runtime_error);
}

TEST(Export, CsvHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.counter("a.count")->inc(7);
  auto* twg = reg.time_gauge("b.depth");
  twg->set(Time::seconds(0), 1.0);
  reg.finalize(Time::seconds(1));
  Timeline tl;
  tl.record(Time::ms(1), EventKind::Wake, 0xAC100001u);

  const Report rep = snapshot(reg, &tl);
  std::stringstream metrics;
  write_metrics_csv(metrics, rep);
  const std::string m = metrics.str();
  EXPECT_NE(m.find("type,name,value,mean,min,max,last,count,sum"),
            std::string::npos);
  EXPECT_NE(m.find("counter,a.count,7,"), std::string::npos);
  EXPECT_NE(m.find("time_gauge,b.depth,"), std::string::npos);

  std::stringstream timeline;
  write_timeline_csv(timeline, rep);
  const std::string t = timeline.str();
  EXPECT_NE(t.find("t_ns,dur_ns,kind,subject,value"), std::string::npos);
  EXPECT_NE(t.find("wake,172.16.0.1,"), std::string::npos);
}

TEST(Export, SubjectStrRendersDottedQuadOrDash) {
  EXPECT_EQ(subject_str(0), "-");
  EXPECT_EQ(subject_str(0xAC100001u), "172.16.0.1");
}

#if PP_OBS_ENABLED
// End-to-end: a short scenario populates the registry with the metrics the
// report tooling depends on, and they survive a JSONL round trip.
TEST(ObsIntegration, ScenarioExportsTopLineMetrics) {
  const auto cfg = exp::ScenarioBuilder{}
                       .video(1, 0)
                       .web(1)
                       .policy(exp::IntervalPolicy::Fixed500)
                       .duration_s(20.0)
                       .keep_obs()
                       .build();
  const auto res = exp::run_scenario(cfg);
  ASSERT_NE(res.obs, nullptr);

  const Report rep = snapshot(res.obs->metrics, &res.obs->timeline);
  std::stringstream ss;
  write_jsonl(ss, rep);
  const Report back = read_jsonl(ss);

  // Schedule broadcast count matches the proxy's own stats.
  const auto* sched = back.find_counter("proxy.schedules_sent");
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->value, res.proxy_stats.schedules_sent);
  EXPECT_GT(sched->value, 30u);  // 20 s at 500 ms

  // Time-weighted proxy queue depth (mean/max).
  const auto* depth = back.find_time_gauge("proxy.queue_depth_bytes");
  ASSERT_NE(depth, nullptr);
  EXPECT_GE(depth->max, depth->mean);
  EXPECT_GT(depth->max, 0.0);

  // Per-client sleep duty cycle: awake gauge in (0, 1).
  for (int i = 0; i < 2; ++i) {
    const std::string name =
        "client." + exp::testbed_client_ip(i).str() + ".awake";
    const auto* awake = back.find_time_gauge(name);
    ASSERT_NE(awake, nullptr) << name;
    EXPECT_GT(awake->mean, 0.0);
    EXPECT_LT(awake->mean, 1.0);  // it slept at least some of the time
  }

  // Burst-duration histogram.
  const auto* bursts = back.find_histogram("proxy.burst_duration_us");
  ASSERT_NE(bursts, nullptr);
  EXPECT_GT(bursts->count, 0u);

  // Drop counters exist (zero is fine in a calm run).
  EXPECT_NE(back.find_counter("proxy.queue_drops"), nullptr);
  EXPECT_NE(back.find_counter("ap.downlink_dropped"), nullptr);

  // Timeline saw schedule broadcasts, bursts, and sleep/wake transitions.
  std::uint64_t n_sched = 0, n_burst = 0, n_sleep = 0;
  for (const auto& e : back.events) {
    if (e.kind == EventKind::ScheduleBroadcast) ++n_sched;
    if (e.kind == EventKind::Burst) ++n_burst;
    if (e.kind == EventKind::Sleep) ++n_sleep;
  }
  EXPECT_EQ(n_sched, res.proxy_stats.schedules_sent);
  EXPECT_GT(n_burst, 0u);
  EXPECT_GT(n_sleep, 0u);
}

TEST(ObsIntegration, ObserveFalseDetachesEverything) {
  exp::TestbedParams tp;
  tp.num_clients = 1;
  tp.observe = false;
  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           sim::Time::ms(500))};
  EXPECT_EQ(bed.observer(), nullptr);
  EXPECT_EQ(bed.metrics(), nullptr);
  bed.start();
  bed.run_until(Time::seconds(2));  // runs fine with hooks detached
}
#endif

}  // namespace
}  // namespace pp::obs

#include <gtest/gtest.h>

#include <memory>

#include "testutil.hpp"
#include "workload/ftp.hpp"
#include "workload/video.hpp"
#include "workload/web.hpp"

namespace pp::workload {
namespace {

using sim::Time;
using test::NodePair;

// -- Video trace generation --------------------------------------------------------

TEST(VideoTrace, TotalBytesMatchEffectiveBitrate) {
  for (const auto& f : kFidelities) {
    const auto trace = generate_video_trace(f.effective_kbps, 1);
    std::uint64_t total = 0;
    for (const auto& p : trace) total += p.bytes;
    const double expect = f.effective_kbps * 1000.0 / 8.0 * 119.0;
    EXPECT_NEAR(static_cast<double>(total), expect, expect * 0.02)
        << f.nominal_kbps << "K";
  }
}

TEST(VideoTrace, Deterministic) {
  const auto a = generate_video_trace(225, 7);
  const auto b = generate_video_trace(225, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

TEST(VideoTrace, DifferentSeedsDiffer) {
  const auto a = generate_video_trace(225, 7);
  const auto b = generate_video_trace(225, 8);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i)
    differ = a[i].bytes != b[i].bytes;
  EXPECT_TRUE(differ);
}

TEST(VideoTrace, OffsetsMonotoneAndWithinDuration) {
  const auto trace = generate_video_trace(450, 3);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].offset, trace[i - 1].offset);
  EXPECT_LE(trace.back().offset, Time::seconds(119.0));
}

TEST(VideoTrace, PacketsRespectMtu) {
  const auto trace = generate_video_trace(450, 3);
  for (const auto& p : trace) {
    EXPECT_GT(p.bytes, 0u);
    EXPECT_LE(p.bytes, 1400u);
  }
}

TEST(VideoTrace, IsVariableBitrate) {
  // Per-second byte counts must vary (scene structure), not be constant.
  const auto trace = generate_video_trace(225, 5);
  std::vector<std::uint64_t> per_sec(119, 0);
  for (const auto& p : trace) {
    const auto s = static_cast<std::size_t>(p.offset.to_seconds());
    if (s < per_sec.size()) per_sec[s] += p.bytes;
  }
  std::uint64_t mn = ~0ull, mx = 0;
  for (auto v : per_sec) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx, mn * 3 / 2) << "trace looks constant-bitrate";
}

TEST(VideoTrace, FidelityIndexLookup) {
  EXPECT_EQ(fidelity_index(56), 0);
  EXPECT_EQ(fidelity_index(512), 3);
  EXPECT_THROW(fidelity_index(64), std::invalid_argument);
}

// -- Video server/client over a plain pipe (no proxy) -------------------------------

struct VideoFixture : ::testing::Test {
  VideoFixture() : np{3}, server{np.a}, client{np.b, np.a.ip()} {
    server.expect_client(np.b.ip(), 0);
  }
  NodePair np;
  VideoServer server;
  VideoClient client;
};

TEST_F(VideoFixture, PlayStartsStreamAndDeliversPackets) {
  client.play(Time::ms(100));
  np.sim.run_until(Time::sec(20));
  EXPECT_EQ(server.streams_started(), 1);
  EXPECT_GT(client.stats().packets, 50u);
  EXPECT_EQ(client.loss_fraction(), 0.0);
  EXPECT_EQ(client.stats().fidelity_seen, 0);
}

TEST_F(VideoFixture, StreamFinishesAfterTrailerDuration) {
  client.play(Time::ms(100));
  np.sim.run_until(Time::sec(125));
  const auto* st = server.stats_for(np.b.ip());
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->finished);
  const double expect = 34 * 1000.0 / 8.0 * 119.0;
  EXPECT_NEAR(static_cast<double>(client.stats().bytes), expect,
              expect * 0.03);
}

TEST_F(VideoFixture, ReceiverReportsFlow) {
  client.play(Time::ms(100));
  np.sim.run_until(Time::sec(30));
  EXPECT_GT(client.stats().reports_sent, 5u);
}

TEST_F(VideoFixture, UnknownClientIgnored) {
  // A client that was never registered with the server gets no stream.
  NodePair np2{9};
  VideoServer s2{np2.a};
  VideoClient c2{np2.b, np2.a.ip()};
  c2.play(Time::ms(100));
  np2.sim.run_until(Time::sec(5));
  EXPECT_EQ(s2.streams_started(), 0);
  EXPECT_EQ(c2.stats().packets, 0u);
}

TEST(VideoAdaptation, ServerDownshiftsOnReportedLoss) {
  NodePair np{5, {}, 0.10};  // 10% loss on the pipe
  VideoServer server{np.a};
  server.expect_client(np.b.ip(), 3);  // 512K
  VideoClient client{np.b, np.a.ip()};
  client.play(Time::ms(100));
  np.sim.run_until(Time::sec(60));
  const auto* st = server.stats_for(np.b.ip());
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->downshifts, 0);
  EXPECT_LT(st->current_fidelity, 3);
}

TEST(VideoAdaptation, DisabledServerNeverAdapts) {
  NodePair np{5, {}, 0.10};
  VideoServerParams params;
  params.adaptive = false;
  VideoServer server{np.a, params};
  server.expect_client(np.b.ip(), 3);
  VideoClient client{np.b, np.a.ip()};
  client.play(Time::ms(100));
  np.sim.run_until(Time::sec(60));
  const auto* st = server.stats_for(np.b.ip());
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->downshifts, 0);
}

// -- Web scripts & browsing ----------------------------------------------------------

TEST(WebScript, DeterministicAndSized) {
  const auto a = generate_web_script(3);
  const auto b = generate_web_script(3);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(script_bytes(a), script_bytes(b));
  EXPECT_EQ(a.size(), 20u);
}

TEST(WebScript, ObjectCountsInRange) {
  WebScriptParams p;
  p.min_objects = 2;
  p.max_objects = 8;
  const auto script = generate_web_script(7, p);
  for (const auto& v : script) {
    EXPECT_GE(v.objects.size(), 2u);
    EXPECT_LE(v.objects.size(), 8u);
    EXPECT_GE(v.main_bytes, 2'000u);
    for (auto o : v.objects) EXPECT_GE(o, 2'000u);
  }
}

TEST(WebBrowsing, CompletesPagesOverPlainPipe) {
  NodePair np{11};
  HttpServer server{np.a};
  WebScriptParams wsp;
  wsp.pages = 4;
  wsp.think_mean_s = 0.3;
  const auto script = generate_web_script(2, wsp);
  server.add_script(np.b.ip(), script);
  WebBrowsingClient client{np.b, np.a.ip(), script};
  client.start(Time::ms(100));
  np.sim.run_until(Time::sec(60));
  EXPECT_EQ(client.stats().pages_completed, 4);
  EXPECT_TRUE(client.finished());
  EXPECT_EQ(client.stats().bytes_received, script_bytes(script));
}

TEST(WebBrowsing, ParallelismBounded) {
  NodePair np{11};
  HttpServer server{np.a};
  WebScriptParams wsp;
  wsp.pages = 1;
  wsp.min_objects = wsp.max_objects = 8;
  const auto script = generate_web_script(2, wsp);
  server.add_script(np.b.ip(), script);
  WebClientParams cp;
  cp.max_parallel = 2;
  WebBrowsingClient client{np.b, np.a.ip(), script, cp};
  client.start(Time::zero());
  np.sim.run_until(Time::sec(60));
  EXPECT_EQ(client.stats().objects_completed, 9);  // main + 8
}

// -- Ftp -----------------------------------------------------------------------------

TEST(Ftp, DownloadCompletesAndTimes) {
  NodePair np{13};
  FtpServer server{np.a};
  server.add_file(np.b.ip(), 500'000);
  FtpClient client{np.b, np.a.ip()};
  client.download(Time::ms(100));
  np.sim.run_until(Time::sec(60));
  EXPECT_TRUE(client.stats().finished);
  EXPECT_EQ(client.stats().bytes_received, 500'000u);
  EXPECT_GT(client.stats().transfer_seconds(), 0.0);
}

TEST(Ftp, UnregisteredClientGetsNothing) {
  NodePair np{13};
  FtpServer server{np.a};
  FtpClient client{np.b, np.a.ip()};
  client.download(Time::ms(100));
  np.sim.run_until(Time::sec(5));
  EXPECT_FALSE(client.stats().finished);
  EXPECT_EQ(client.stats().bytes_received, 0u);
}

}  // namespace
}  // namespace pp::workload

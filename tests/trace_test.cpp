#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>

#include "exp/builder.hpp"
#include "exp/scenario.hpp"
#include "trace/io.hpp"
#include "trace/monitor.hpp"
#include "trace/postmortem.hpp"

namespace pp::trace {
namespace {

using sim::Time;

TraceRecord make_record(std::int64_t us, bool from_ap = true) {
  TraceRecord r;
  r.air_start = Time::us(us);
  r.airtime = Time::us(900);
  r.pkt_id = static_cast<std::uint64_t>(us);
  r.src = net::Ipv4Addr::octets(10, 0, 0, 1);
  r.src_port = 554;
  r.dst = net::Ipv4Addr::octets(172, 16, 0, 1);
  r.dst_port = 5004;
  r.proto = net::Protocol::Udp;
  r.payload = 1000;
  r.from_ap = from_ap;
  r.delivered = true;
  return r;
}

TEST(TraceIo, BinaryRoundTripPlainRecords) {
  TraceBuffer buf;
  for (int i = 0; i < 100; ++i) {
    auto r = make_record(1000 * i);
    r.marked = i % 7 == 0;
    r.delivered = i % 11 != 0;
    buf.push_back(r);
  }
  std::stringstream ss;
  write_trace(ss, buf);
  const TraceBuffer back = read_trace(ss);
  ASSERT_EQ(back.size(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(back[i].air_start, buf[i].air_start);
    EXPECT_EQ(back[i].airtime, buf[i].airtime);
    EXPECT_EQ(back[i].src, buf[i].src);
    EXPECT_EQ(back[i].dst, buf[i].dst);
    EXPECT_EQ(back[i].payload, buf[i].payload);
    EXPECT_EQ(back[i].marked, buf[i].marked);
    EXPECT_EQ(back[i].delivered, buf[i].delivered);
    EXPECT_EQ(back[i].proto, buf[i].proto);
  }
}

TEST(TraceIo, ScheduleMessagesRoundTrip) {
  auto sched = std::make_shared<proxy::ScheduleMessage>();
  sched->seq_no = 42;
  sched->srp_time = Time::ms(500);
  sched->interval = Time::ms(100);
  sched->reuse_next = true;
  sched->entries.push_back({net::Ipv4Addr::octets(172, 16, 0, 1), Time::ms(4),
                            Time::ms(20), proxy::SlotKind::TcpOnly});
  sched->entries.push_back({net::Ipv4Addr::octets(172, 16, 0, 2), Time::ms(24),
                            Time::ms(30), proxy::SlotKind::Any});
  TraceRecord r = make_record(0);
  r.dst = net::Ipv4Addr::broadcast();
  r.dst_port = proxy::kSchedulePort;
  r.data = sched;
  TraceBuffer buf{r};

  std::stringstream ss;
  write_trace(ss, buf);
  const TraceBuffer back = read_trace(ss);
  ASSERT_EQ(back.size(), 1u);
  const auto* got =
      dynamic_cast<const proxy::ScheduleMessage*>(back[0].data.get());
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->seq_no, 42u);
  EXPECT_EQ(got->srp_time, Time::ms(500));
  EXPECT_EQ(got->interval, Time::ms(100));
  EXPECT_TRUE(got->reuse_next);
  ASSERT_EQ(got->entries.size(), 2u);
  EXPECT_EQ(got->entries[0].kind, proxy::SlotKind::TcpOnly);
  EXPECT_EQ(got->entries[1].rp_offset, Time::ms(24));
}

TEST(TraceIo, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOTATRACE";
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, TruncatedInputRejected) {
  TraceBuffer buf{make_record(0), make_record(1000)};
  std::stringstream ss;
  write_trace(ss, buf);
  std::string s = ss.str();
  s.resize(s.size() / 2);
  std::stringstream cut{s};
  EXPECT_THROW(read_trace(cut), std::runtime_error);
}

TEST(TraceIo, FileSaveLoad) {
  TraceBuffer buf{make_record(0), make_record(5000)};
  const std::string path = "/tmp/pp_trace_test.bin";
  save_trace(path, buf);
  const TraceBuffer back = load_trace(path);
  EXPECT_EQ(back.size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceIo, TextDumpContainsKeyFields) {
  TraceBuffer buf;
  auto r = make_record(0);
  r.marked = true;
  r.delivered = false;
  buf.push_back(r);
  std::ostringstream os;
  dump_trace(os, buf);
  const std::string s = os.str();
  EXPECT_NE(s.find("10.0.0.1:554"), std::string::npos);
  EXPECT_NE(s.find("[mark]"), std::string::npos);
  EXPECT_NE(s.find("[lost]"), std::string::npos);
}

// -- Monitoring + postmortem over a live scenario ---------------------------------

struct ScenarioTraceFixture : ::testing::Test {
  static const exp::ScenarioResult& result() {
    static exp::ScenarioResult res = [] {
      const auto cfg = exp::ScenarioBuilder{}
                           .video(3, 0)  // three 56K video clients
                           .policy(exp::IntervalPolicy::Fixed500)
                           .seed(11)
                           .duration_s(60.0)
                           .keep_trace()
                           .build();
      return exp::run_scenario(cfg);
    }();
    return res;
  }
};

TEST_F(ScenarioTraceFixture, MonitoringStationHeardTraffic) {
  const auto& res = result();
  EXPECT_GT(res.trace.size(), 500u);
  // The trace contains schedule broadcasts and marked packets.
  int schedules = 0, marks = 0;
  for (const auto& r : res.trace) {
    if (r.is_broadcast()) ++schedules;
    marks += r.marked;
  }
  EXPECT_GT(schedules, 100);
  EXPECT_GT(marks, 50);
}

TEST_F(ScenarioTraceFixture, PostmortemAgreesWithLiveClient) {
  const auto& res = result();
  PostmortemAnalyzer analyzer{res.trace};
  client::DaemonConfig cfg;  // the live clients ran the default config
  for (const auto& live : res.clients) {
    const auto rep = analyzer.analyze(live.ip, cfg, res.horizon);
    // Same daemon code, same trace: savings agree closely.  Exact equality
    // is not expected — the replay cannot re-roll per-receiver frame
    // corruption (it assumes an awake client receives every frame), so it
    // is mildly optimistic; the paper's tcpdump-based method shares this
    // limitation.
    EXPECT_NEAR(rep.saved_fraction * 100.0, live.saved_pct, 6.0)
        << "client " << live.ip.str();
    EXPECT_GE(rep.saved_fraction * 100.0, live.saved_pct - 1.0)
        << "replay should not be pessimistic; client " << live.ip.str();
    EXPECT_NEAR(static_cast<double>(rep.packets_received),
                static_cast<double>(live.packets_received),
                0.05 * static_cast<double>(live.packets_received) + 20);
  }
}

TEST_F(ScenarioTraceFixture, PostmortemNaiveBaselineDominates) {
  const auto& res = result();
  PostmortemAnalyzer analyzer{res.trace};
  client::DaemonConfig cfg;
  for (const auto& live : res.clients) {
    const auto rep = analyzer.analyze(live.ip, cfg, res.horizon);
    EXPECT_GT(rep.naive_energy_mj, rep.energy_mj);
    EXPECT_GT(rep.saved_fraction, 0.5);
  }
}

TEST_F(ScenarioTraceFixture, EarlyTransitionSweepTradesWasteForMisses) {
  // Figure 6's mechanism: less early waking means less early-wait energy.
  const auto& res = result();
  PostmortemAnalyzer analyzer{res.trace};
  client::DaemonConfig lo, hi;
  lo.comp.early = Time::ms(0);
  hi.comp.early = Time::ms(10);
  const auto rep_lo = analyzer.analyze(res.clients[0].ip, lo, res.horizon);
  const auto rep_hi = analyzer.analyze(res.clients[0].ip, hi, res.horizon);
  EXPECT_LT(rep_lo.early_wait_mj, rep_hi.early_wait_mj);
}

TEST_F(ScenarioTraceFixture, TraceRoundTripPreservesPostmortem) {
  const auto& res = result();
  std::stringstream ss;
  write_trace(ss, res.trace);
  const TraceBuffer back = read_trace(ss);
  PostmortemAnalyzer a1{res.trace}, a2{back};
  client::DaemonConfig cfg;
  const auto r1 = a1.analyze(res.clients[0].ip, cfg, res.horizon);
  const auto r2 = a2.analyze(res.clients[0].ip, cfg, res.horizon);
  EXPECT_DOUBLE_EQ(r1.energy_mj, r2.energy_mj);
  EXPECT_EQ(r1.packets_received, r2.packets_received);
  EXPECT_EQ(r1.schedules_received, r2.schedules_received);
}

}  // namespace
}  // namespace pp::trace

// Channel subsystem: draw discipline, stream isolation, and the observer
// surface.
#include <gtest/gtest.h>

#include <vector>

#include "channel/model.hpp"
#include "fault/plan.hpp"

namespace pp::channel {
namespace {

net::Ipv4Addr client_a() { return net::Ipv4Addr::octets(172, 16, 0, 1); }
net::Ipv4Addr client_b() { return net::Ipv4Addr::octets(172, 16, 0, 2); }

// Shared-stream two-state mode must reproduce the legacy Gilbert-Elliott
// draw discipline bit for bit: one transition draw per attempt, then a
// loss draw only when the post-transition state can lose.  This is what
// keeps faulted replay digests unchanged across the FaultPlan delegation.
TEST(ChannelModel, SharedStreamMatchesLegacyGilbertElliott) {
  const double p_good_bad = 0.01, p_bad_good = 0.05;
  const double loss_good = 0.0, loss_bad = 0.85;
  const std::uint64_t seed = 42;

  ChannelModel model{
      ChannelSpec::two_state(p_good_bad, p_bad_good, loss_good, loss_bad),
      fault::fault_stream(seed)};

  // The legacy FaultPlan implementation, hand-rolled: a bool state per
  // channel, all channels sharing one stream in attempt order.
  sim::Rng legacy = fault::fault_stream(seed);
  bool bad_a = false, bad_b = false;

  for (int i = 0; i < 20000; ++i) {
    const net::Ipv4Addr who = (i % 3 == 0) ? client_b() : client_a();
    bool& bad = (who == client_b()) ? bad_b : bad_a;
    if (bad) {
      if (legacy.chance(p_bad_good)) bad = false;
    } else {
      if (legacy.chance(p_good_bad)) bad = true;
    }
    const double p = bad ? loss_bad : loss_good;
    const bool legacy_lost = p > 0 && legacy.chance(p);

    const ChannelModel::Attempt a = model.attempt(who);
    ASSERT_EQ(a.lost, legacy_lost) << "attempt " << i;
    ASSERT_EQ(a.state == 1, bad) << "attempt " << i;
  }
}

// Per-client streams: one client's attempt volume must not shift another
// client's draw sequence.  B alone vs B interleaved with heavy A traffic
// must see the identical loss sequence.
TEST(ChannelModel, PerClientStreamsAreIndependent) {
  const ChannelSpec spec = ChannelSpec::ladder(3, 0.8);
  const std::uint64_t seed = 7;

  ChannelModel solo{spec, seed};
  std::vector<bool> solo_losses;
  for (int i = 0; i < 5000; ++i) {
    solo_losses.push_back(solo.attempt(client_b()).lost);
  }

  ChannelModel mixed{spec, seed};
  std::vector<bool> mixed_losses;
  for (int i = 0; i < 5000; ++i) {
    mixed.attempt(client_a());
    mixed.attempt(client_a());
    mixed_losses.push_back(mixed.attempt(client_b()).lost);
  }

  EXPECT_EQ(solo_losses, mixed_losses);
}

// Same spec + same seed => bit-identical behaviour (both stream modes are
// pure functions of their seeds).
TEST(ChannelModel, SameSeedReproduces) {
  const ChannelSpec spec = ChannelSpec::ladder(4, 0.5);
  ChannelModel m1{spec, 99991};
  ChannelModel m2{spec, 99991};
  for (int i = 0; i < 3000; ++i) {
    const auto a1 = m1.attempt(client_a());
    const auto a2 = m2.attempt(client_a());
    ASSERT_EQ(a1.lost, a2.lost);
    ASSERT_EQ(a1.state, a2.state);
  }
}

TEST(ChannelModel, LadderStateStaysInBounds) {
  const ChannelSpec spec = ChannelSpec::ladder(3, 0.9);
  ChannelModel model{spec, 13};
  for (int i = 0; i < 50000; ++i) {
    const auto a = model.attempt(client_a());
    ASSERT_GE(a.state, 0);
    ASSERT_LT(a.state, spec.num_states());
  }
  const ChannelView v = model.view_of(client_a());
  EXPECT_TRUE(v.known);
  EXPECT_GE(v.loss_ewma, 0.0);
  EXPECT_LE(v.loss_ewma, 1.0);
  EXPECT_GT(model.stats().attempts, 0u);
}

TEST(ChannelModel, ViewOfUnknownClientIsBestRungNominal) {
  const ChannelSpec spec = ChannelSpec::ladder(3, 0.5);
  ChannelModel model{spec, 1};
  const ChannelView v = model.view_of(client_a());
  EXPECT_FALSE(v.known);
  EXPECT_EQ(v.state, 0);
  EXPECT_EQ(v.num_states, 3);
  EXPECT_DOUBLE_EQ(v.goodput_bps, spec.rungs[0].goodput_bps);
  EXPECT_FALSE(v.bad());
}

TEST(ChannelModel, BadMeansWorstRung) {
  // Force the chain into the worst rung with a certain down-transition.
  ChannelSpec spec;
  spec.enabled = true;
  spec.rungs = {ChannelRung{0.0, 1.0, 0.0, 4e6},
                ChannelRung{0.0, 0.0, 1.0, 1e6}};
  ChannelModel model{spec, 5};
  const auto a = model.attempt(client_a());
  EXPECT_EQ(a.state, 1);
  EXPECT_TRUE(a.lost);
  EXPECT_TRUE(a.worsened);
  const ChannelView v = model.view_of(client_a());
  EXPECT_TRUE(v.bad());
  // Certain loss drags goodput below nominal via the EWMA discount.
  EXPECT_LT(v.goodput_bps, spec.rungs[1].goodput_bps);
}

// Time-based stepping (tick_s > 0): the chain is caught up with one
// transition draw per elapsed tick at each attempt, so a fade evolves in
// wall-clock time even while the client receives nothing.
TEST(ChannelModel, TickedChainCatchesUpWithElapsedTime) {
  ChannelSpec spec;
  spec.enabled = true;
  spec.tick_s = 0.02;
  // Certain one-way descent: each tick moves the chain one rung down.
  spec.rungs = {ChannelRung{0.0, 1.0, 0.0, 4e6},
                ChannelRung{0.0, 1.0, 0.0, 2e6},
                ChannelRung{0.0, 0.0, 0.0, 1e6}};
  ChannelModel model{spec, 3};
  // Two ticks elapsed by t=41ms: bottom of a 3-rung ladder.
  const auto a = model.attempt_at(client_a(), sim::Time::ms(41));
  EXPECT_EQ(a.state, 2);
  EXPECT_TRUE(a.worsened);
  // No further ticks before t=59ms: state unchanged, no transition draws.
  const auto b = model.attempt_at(client_a(), sim::Time::ms(59));
  EXPECT_EQ(b.state, 2);
  EXPECT_FALSE(b.worsened);
}

TEST(ChannelModel, TickedAttemptsAreDeterministic) {
  const ChannelSpec spec = ChannelSpec::ladder(3, 0.85);
  ASSERT_GT(spec.tick_s, 0.0);
  ChannelModel m1{spec, 99991};
  ChannelModel m2{spec, 99991};
  for (int i = 1; i <= 2000; ++i) {
    const sim::Time t = sim::Time::ms(7 * i);
    const auto a1 = m1.attempt_at(client_a(), t);
    const auto a2 = m2.attempt_at(client_a(), t);
    ASSERT_EQ(a1.lost, a2.lost);
    ASSERT_EQ(a1.state, a2.state);
  }
}

TEST(ChannelModel, ZeroTickAttemptAtMatchesLegacyAttempt) {
  const ChannelSpec spec =
      ChannelSpec::two_state(0.01, 0.05, 0.0, 0.85);
  ASSERT_EQ(spec.tick_s, 0.0);
  ChannelModel timed{spec, 11};
  ChannelModel legacy{spec, 11};
  for (int i = 0; i < 5000; ++i) {
    const auto a = timed.attempt_at(client_a(), sim::Time::ms(i));
    const auto b = legacy.attempt(client_a());
    ASSERT_EQ(a.lost, b.lost);
    ASSERT_EQ(a.state, b.state);
  }
}

// The observer surface is pure: querying never changes subsequent draws.
TEST(ChannelModel, ViewOfNeverPerturbsDraws) {
  const ChannelSpec spec = ChannelSpec::ladder(3, 0.7);
  ChannelModel quiet{spec, 23};
  ChannelModel queried{spec, 23};
  for (int i = 0; i < 2000; ++i) {
    const auto a1 = quiet.attempt(client_a());
    for (int q = 0; q < 3; ++q) (void)queried.view_of(client_a());
    const auto a2 = queried.attempt(client_a());
    ASSERT_EQ(a1.lost, a2.lost);
    ASSERT_EQ(a1.state, a2.state);
  }
}

}  // namespace
}  // namespace pp::channel

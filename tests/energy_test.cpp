#include <gtest/gtest.h>

#include "energy/wnic.hpp"

namespace pp::energy {
namespace {

using sim::Time;

TEST(WnicPowerModel, WavelanNumbersMatchPaper) {
  const auto m = WnicPowerModel::wavelan();
  EXPECT_DOUBLE_EQ(m.mw(WnicMode::Idle), 1319.0);
  EXPECT_DOUBLE_EQ(m.mw(WnicMode::Receive), 1425.0);
  EXPECT_DOUBLE_EQ(m.mw(WnicMode::Transmit), 1675.0);
  EXPECT_DOUBLE_EQ(m.mw(WnicMode::Sleep), 177.0);
  EXPECT_EQ(m.wake_transition, Time::ms(2));
}

TEST(EnergyAccountant, IdleOnlyIntegration) {
  EnergyAccountant acc{WnicPowerModel::wavelan(), Time::zero()};
  // 10 seconds idle at 1319 mW = 13190 mJ.
  EXPECT_NEAR(acc.energy_mj(Time::sec(10)), 13190.0, 1e-6);
}

TEST(EnergyAccountant, SleepSavesEnergy) {
  EnergyAccountant idle{WnicPowerModel::wavelan(), Time::zero()};
  EnergyAccountant sleepy{WnicPowerModel::wavelan(), Time::zero()};
  sleepy.set_mode(Time::zero(), WnicMode::Sleep);
  EXPECT_LT(sleepy.energy_mj(Time::sec(10)), idle.energy_mj(Time::sec(10)));
  EXPECT_NEAR(sleepy.energy_mj(Time::sec(10)), 1770.0, 1e-6);
}

TEST(EnergyAccountant, ModeTimeline) {
  EnergyAccountant acc{WnicPowerModel::wavelan(), Time::zero()};
  acc.set_mode(Time::sec(1), WnicMode::Sleep);
  acc.set_mode(Time::sec(4), WnicMode::Idle);
  acc.set_mode(Time::sec(5), WnicMode::Receive);
  acc.set_mode(Time::sec(6), WnicMode::Idle);
  // idle 1s + sleep 3s + idle 1s + receive 1s, then idle onward.
  EXPECT_EQ(acc.time_in(WnicMode::Sleep), Time::sec(3));
  EXPECT_EQ(acc.time_in(WnicMode::Receive), Time::sec(1));
  const double expect = 1319.0 * 1 + 177.0 * 3 + 1319.0 * 1 + 1425.0 * 1 +
                        WnicPowerModel::wavelan().wake_energy_mj();
  EXPECT_NEAR(acc.energy_mj(Time::sec(6)), expect, 1e-6);
}

TEST(EnergyAccountant, WakeTransitionPenaltyCharged) {
  EnergyAccountant acc{WnicPowerModel::wavelan(), Time::zero()};
  acc.set_mode(Time::zero(), WnicMode::Sleep);
  acc.set_mode(Time::sec(1), WnicMode::Idle);
  acc.set_mode(Time::sec(2), WnicMode::Sleep);
  acc.set_mode(Time::sec(3), WnicMode::Idle);
  EXPECT_EQ(acc.wake_transitions(), 2u);
  EXPECT_NEAR(acc.wake_penalty_mj(), 2 * 1319.0 * 0.002, 1e-9);
}

TEST(EnergyAccountant, RedundantTransitionIsNoop) {
  EnergyAccountant acc{WnicPowerModel::wavelan(), Time::zero()};
  acc.set_mode(Time::sec(1), WnicMode::Idle);
  EXPECT_EQ(acc.wake_transitions(), 0u);
}

TEST(EnergyAccountant, TransientReceiveChargesDelta) {
  EnergyAccountant acc{WnicPowerModel::wavelan(), Time::zero()};
  acc.add_transient(WnicMode::Receive, Time::ms(500));
  // 1s idle + 0.5s of (1425-1319) delta.
  EXPECT_NEAR(acc.energy_mj(Time::sec(1)), 1319.0 + 0.5 * 106.0, 1e-6);
}

TEST(EnergyAccountant, HighPowerTimeExcludesSleep) {
  EnergyAccountant acc{WnicPowerModel::wavelan(), Time::zero()};
  acc.set_mode(Time::sec(2), WnicMode::Sleep);
  acc.set_mode(Time::sec(5), WnicMode::Receive);
  acc.set_mode(Time::sec(6), WnicMode::Idle);
  acc.set_mode(Time::sec(7), WnicMode::Sleep);  // settle receive+idle
  EXPECT_EQ(acc.high_power_time(), Time::sec(4));
}

TEST(OptimalFormula, MatchesHandComputation) {
  // 1 second of receive airtime in a 119-second stream.
  OptimalInput in{119.0, 1.0, WnicPowerModel::wavelan()};
  const double opt = optimal_energy_saved_fraction(in);
  const double e_opt = 1.0 * 1425 + 118.0 * 177;
  const double e_naive = 1.0 * 1425 + 118.0 * 1319;
  EXPECT_NEAR(opt, 1.0 - e_opt / e_naive, 1e-12);
}

TEST(OptimalFormula, LowerBandwidthSavesMore) {
  // Smaller receive airtime (lower-bitrate stream) => larger saving.
  OptimalInput low{119.0, 1.0};
  OptimalInput high{119.0, 12.0};
  EXPECT_GT(optimal_energy_saved_fraction(low),
            optimal_energy_saved_fraction(high));
}

TEST(OptimalFormula, ApproachesSleepIdleRatioForTinyStreams) {
  OptimalInput in{1000.0, 0.001};
  const double limit = 1.0 - 177.0 / 1319.0;  // ~0.8658
  EXPECT_NEAR(optimal_energy_saved_fraction(in), limit, 0.01);
}

}  // namespace
}  // namespace pp::energy

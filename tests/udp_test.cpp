#include <gtest/gtest.h>

#include "testutil.hpp"
#include "transport/udp.hpp"

namespace pp::transport {
namespace {

using test::NodePair;

TEST(UdpSocket, SendReceiveRoundTrip) {
  NodePair np;
  UdpSocket sa{np.a, 1000};
  UdpSocket sb{np.b, 2000};
  std::uint64_t got = 0;
  sb.set_receive_fn([&](const net::Packet& p) { got += p.payload; });
  sa.send_to(np.b.ip(), 2000, 1234);
  np.sim.run();
  EXPECT_EQ(got, 1234u);
  EXPECT_EQ(sa.datagrams_sent(), 1u);
  EXPECT_EQ(sb.datagrams_received(), 1u);
}

TEST(UdpSocket, EphemeralPortAssigned) {
  NodePair np;
  UdpSocket s{np.a};
  EXPECT_GE(s.port(), 40000);
}

TEST(UdpSocket, UnbindsOnDestruction) {
  NodePair np;
  {
    UdpSocket s{np.a, 1000};
  }
  UdpSocket again{np.a, 1000};  // would throw if still bound
  SUCCEED();
}

TEST(UdpSocket, CarriesApplicationMessage) {
  struct Hello : net::Message {
    int value = 42;
  };
  NodePair np;
  UdpSocket sa{np.a, 1000};
  UdpSocket sb{np.b, 2000};
  int seen = 0;
  sb.set_receive_fn([&](const net::Packet& p) {
    if (auto* m = dynamic_cast<const Hello*>(p.data.get())) seen = m->value;
  });
  sa.send_to(np.b.ip(), 2000, 100, std::make_shared<Hello>());
  np.sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(UdpSocket, LossDropsDatagramsSilently) {
  NodePair np{3, {}, 1.0};
  UdpSocket sa{np.a, 1000};
  UdpSocket sb{np.b, 2000};
  int count = 0;
  sb.set_receive_fn([&](const net::Packet&) { ++count; });
  for (int i = 0; i < 10; ++i) sa.send_to(np.b.ip(), 2000, 100);
  np.sim.run();
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace pp::transport

#include <gtest/gtest.h>

#include "proxy/scheduler.hpp"

namespace pp::proxy {
namespace {

using sim::Time;

net::Ipv4Addr ip(int i) {
  return net::Ipv4Addr::octets(172, 16, 0, static_cast<std::uint8_t>(i));
}

BandwidthEstimator linear_est() {
  std::vector<BandwidthEstimator::Sample> samples;
  for (std::uint32_t n : {100u, 700u, 1400u})
    samples.push_back({n, 1e-3 + 2e-6 * n});
  return BandwidthEstimator{samples};
}

// Entries must be back-to-back, non-overlapping, inside the interval.
void check_layout(const BuiltSchedule& b, bool allow_overlap = false) {
  ASSERT_FALSE(b.entries.empty());
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    const auto& e = b.entries[i];
    EXPECT_GE(e.rp_offset, Time::zero());
    EXPECT_GE(e.duration, Time::zero());
    EXPECT_LE((e.rp_offset + e.duration).count_ns(),
              b.interval.count_ns() + 1000);
    if (i > 0 && !allow_overlap) {
      EXPECT_GE(e.rp_offset, b.entries[i - 1].rp_offset);
    }
  }
}

TEST(FixedIntervalScheduler, EmptyDemandsYieldNoEntries) {
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  const auto b = sched.build({}, est);
  EXPECT_EQ(b.interval, Time::ms(100));
  EXPECT_TRUE(b.entries.empty());
  EXPECT_FALSE(b.reuse_next);
}

TEST(FixedIntervalScheduler, IdleClientsGetNoSlot) {
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{{ip(1), 5000, 0}, {ip(2), 0, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].client, ip(1));
}

TEST(FixedIntervalScheduler, SlotCoversDrainCost) {
  FixedIntervalScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{{ip(1), 20000, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_GE(b.entries[0].duration, est.bulk_cost(20000, 1400));
  check_layout(b);
}

TEST(FixedIntervalScheduler, OvercommitSharesProportionally) {
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  // Way more demand than 100 ms can carry; 3:1 queue ratio.
  std::vector<ClientDemand> d{{ip(1), 300000, 0}, {ip(2), 100000, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 2u);
  const double ratio = b.entries[0].duration.ratio(b.entries[1].duration);
  EXPECT_NEAR(ratio, 3.0, 0.05);
  // Slots fill (nearly) the whole interval.
  const auto total = b.entries[0].duration + b.entries[1].duration;
  EXPECT_GE(total.count_ns(), (b.interval - Time::ms(5)).count_ns() * 9 / 10);
  check_layout(b);
}

TEST(FixedIntervalScheduler, TcpDemandCostsMoreThanUdp) {
  FixedIntervalScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> udp{{ip(1), 50000, 0}};
  std::vector<ClientDemand> tcp{{ip(1), 0, 50000}};
  const auto bu = sched.build(udp, est);
  const auto bt = sched.build(tcp, est);
  EXPECT_GT(bt.entries[0].duration, bu.entries[0].duration);
}

TEST(VariableIntervalScheduler, ShrinksToMinWhenIdle) {
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  const auto b = sched.build({{ip(1), 100, 0}}, est);
  EXPECT_EQ(b.interval, Time::ms(100));
}

TEST(VariableIntervalScheduler, GrowsWithDemand) {
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  // ~75000 bytes ~= 204 ms of channel time: interval must stretch.
  const auto b = sched.build({{ip(1), 75000, 0}}, est);
  EXPECT_GT(b.interval, Time::ms(150));
  EXPECT_LT(b.interval, Time::ms(500));
  // Slot drains the queue.
  EXPECT_GE(b.entries[0].duration, est.bulk_cost(75000, 1400));
}

TEST(VariableIntervalScheduler, CapsAtMaxAndScalesSlots) {
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  const auto b =
      sched.build({{ip(1), 400000, 0}, {ip(2), 400000, 0}}, est);
  EXPECT_EQ(b.interval, Time::ms(500));
  check_layout(b);
  // Equal demands -> equal scaled slots.
  EXPECT_NEAR(b.entries[0].duration.ratio(b.entries[1].duration), 1.0, 0.01);
}

TEST(VariableIntervalScheduler, IntervalBetweenBounds) {
  VariableIntervalScheduler sched{Time::ms(100), Time::ms(500)};
  const auto est = linear_est();
  for (std::uint64_t bytes : {0ull, 1000ull, 50000ull, 200000ull, 900000ull}) {
    const auto b = sched.build({{ip(1), bytes, 0}}, est);
    EXPECT_GE(b.interval, Time::ms(100));
    EXPECT_LE(b.interval, Time::ms(500));
  }
}

TEST(StaticScheduler, EqualSlotsForAllClientsRegardlessOfDemand) {
  StaticScheduler sched{Time::ms(100), {ip(1), ip(2), ip(3), ip(4)}};
  const auto est = linear_est();
  // No demand at all: entries still exist.
  const auto b = sched.build({}, est);
  ASSERT_EQ(b.entries.size(), 4u);
  for (const auto& e : b.entries)
    EXPECT_EQ(e.duration, b.entries[0].duration);
  EXPECT_TRUE(b.reuse_next);
  check_layout(b);
}

TEST(StaticScheduler, ScheduleIsIdenticalAcrossTicks) {
  StaticScheduler sched{Time::ms(100), {ip(1), ip(2)}};
  const auto est = linear_est();
  const auto b1 = sched.build({{ip(1), 99999, 0}}, est);
  const auto b2 = sched.build({{ip(2), 5, 0}}, est);
  ASSERT_EQ(b1.entries.size(), b2.entries.size());
  for (std::size_t i = 0; i < b1.entries.size(); ++i) {
    EXPECT_EQ(b1.entries[i].client, b2.entries[i].client);
    EXPECT_EQ(b1.entries[i].rp_offset, b2.entries[i].rp_offset);
    EXPECT_EQ(b1.entries[i].duration, b2.entries[i].duration);
  }
}

TEST(SlottedStaticScheduler, TcpSlotThenUdpSlots) {
  SlottedStaticScheduler sched{Time::ms(500), 0.33, {ip(1), ip(2)}, {ip(3)}};
  const auto est = linear_est();
  const auto b = sched.build({}, est);
  // 3 TCP-slot entries (everyone awake) + 2 UDP slots.
  ASSERT_EQ(b.entries.size(), 5u);
  int tcp_entries = 0, udp_entries = 0;
  sim::Duration tcp_end;
  for (const auto& e : b.entries) {
    if (e.kind == SlotKind::TcpOnly) {
      ++tcp_entries;
      tcp_end = e.rp_offset + e.duration;
    } else if (e.kind == SlotKind::UdpOnly) {
      ++udp_entries;
      EXPECT_GE(e.rp_offset, tcp_end);  // UDP slots follow the TCP slot
    }
  }
  EXPECT_EQ(tcp_entries, 3);
  EXPECT_EQ(udp_entries, 2);
  EXPECT_TRUE(b.reuse_next);
}

TEST(SlottedStaticScheduler, TcpWeightControlsSlotSize) {
  const auto est = linear_est();
  SlottedStaticScheduler small{Time::ms(500), 0.10, {ip(1)}, {ip(2)}};
  SlottedStaticScheduler large{Time::ms(500), 0.56, {ip(1)}, {ip(2)}};
  const auto bs = small.build({}, est);
  const auto bl = large.build({}, est);
  sim::Duration ds, dl;
  for (const auto& e : bs.entries)
    if (e.kind == SlotKind::TcpOnly) ds = e.duration;
  for (const auto& e : bl.entries)
    if (e.kind == SlotKind::TcpOnly) dl = e.duration;
  EXPECT_NEAR(dl.ratio(ds), 5.6, 0.05);
}

// Parameterized sweep: every scheduler respects basic layout invariants for
// a range of demand mixes.
struct SchedCase {
  std::uint64_t udp;
  std::uint64_t tcp;
  int clients;
};

class SchedulerLayoutSweep : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerLayoutSweep, FixedLayoutInvariants) {
  const auto p = GetParam();
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  std::vector<ClientDemand> d;
  for (int i = 0; i < p.clients; ++i) d.push_back({ip(i + 1), p.udp, p.tcp});
  const auto b = sched.build(d, est);
  if (p.udp + p.tcp == 0) {
    EXPECT_TRUE(b.entries.empty());
    return;
  }
  check_layout(b);
  EXPECT_EQ(b.entries.size(), static_cast<std::size_t>(p.clients));
}

TEST_P(SchedulerLayoutSweep, VariableLayoutInvariants) {
  const auto p = GetParam();
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  std::vector<ClientDemand> d;
  for (int i = 0; i < p.clients; ++i) d.push_back({ip(i + 1), p.udp, p.tcp});
  const auto b = sched.build(d, est);
  EXPECT_GE(b.interval, Time::ms(100));
  EXPECT_LE(b.interval, Time::ms(500));
  if (p.udp + p.tcp > 0) check_layout(b);
}

INSTANTIATE_TEST_SUITE_P(
    DemandMixes, SchedulerLayoutSweep,
    ::testing::Values(SchedCase{0, 0, 3}, SchedCase{1000, 0, 1},
                      SchedCase{0, 1000, 1}, SchedCase{5000, 5000, 4},
                      SchedCase{50000, 0, 10}, SchedCase{0, 80000, 10},
                      SchedCase{200000, 200000, 10}, SchedCase{1, 1, 2}));

}  // namespace
}  // namespace pp::proxy

#include <gtest/gtest.h>

#include "proxy/policies.hpp"
#include "proxy/scheduler.hpp"

namespace pp::proxy {
namespace {

using sim::Time;

net::Ipv4Addr ip(int i) {
  return net::Ipv4Addr::octets(172, 16, 0, static_cast<std::uint8_t>(i));
}

BandwidthEstimator linear_est() {
  std::vector<BandwidthEstimator::Sample> samples;
  for (std::uint32_t n : {100u, 700u, 1400u})
    samples.push_back({n, 1e-3 + 2e-6 * n});
  return BandwidthEstimator{samples};
}

// Entries must be back-to-back, non-overlapping, inside the interval.
void check_layout(const BuiltSchedule& b, bool allow_overlap = false) {
  ASSERT_FALSE(b.entries.empty());
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    const auto& e = b.entries[i];
    EXPECT_GE(e.rp_offset, Time::zero());
    EXPECT_GE(e.duration, Time::zero());
    EXPECT_LE((e.rp_offset + e.duration).count_ns(),
              b.interval.count_ns() + 1000);
    if (i > 0 && !allow_overlap) {
      EXPECT_GE(e.rp_offset, b.entries[i - 1].rp_offset);
    }
  }
}

TEST(FixedIntervalScheduler, EmptyDemandsYieldNoEntries) {
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  const auto b = sched.build({}, est);
  EXPECT_EQ(b.interval, Time::ms(100));
  EXPECT_TRUE(b.entries.empty());
  EXPECT_FALSE(b.reuse_next);
}

TEST(FixedIntervalScheduler, IdleClientsGetNoSlot) {
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{{ip(1), 5000, 0}, {ip(2), 0, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].client, ip(1));
}

TEST(FixedIntervalScheduler, SlotCoversDrainCost) {
  FixedIntervalScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{{ip(1), 20000, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_GE(b.entries[0].duration, est.bulk_cost(20000, 1400));
  check_layout(b);
}

TEST(FixedIntervalScheduler, OvercommitSharesProportionally) {
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  // Way more demand than 100 ms can carry; 3:1 queue ratio.
  std::vector<ClientDemand> d{{ip(1), 300000, 0}, {ip(2), 100000, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 2u);
  const double ratio = b.entries[0].duration.ratio(b.entries[1].duration);
  EXPECT_NEAR(ratio, 3.0, 0.05);
  // Slots fill (nearly) the whole interval.
  const auto total = b.entries[0].duration + b.entries[1].duration;
  EXPECT_GE(total.count_ns(), (b.interval - Time::ms(5)).count_ns() * 9 / 10);
  check_layout(b);
}

TEST(FixedIntervalScheduler, TcpDemandCostsMoreThanUdp) {
  FixedIntervalScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> udp{{ip(1), 50000, 0}};
  std::vector<ClientDemand> tcp{{ip(1), 0, 50000}};
  const auto bu = sched.build(udp, est);
  const auto bt = sched.build(tcp, est);
  EXPECT_GT(bt.entries[0].duration, bu.entries[0].duration);
}

TEST(VariableIntervalScheduler, ShrinksToMinWhenIdle) {
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  const auto b = sched.build({{ip(1), 100, 0}}, est);
  EXPECT_EQ(b.interval, Time::ms(100));
}

TEST(VariableIntervalScheduler, GrowsWithDemand) {
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  // ~75000 bytes ~= 204 ms of channel time: interval must stretch.
  const auto b = sched.build({{ip(1), 75000, 0}}, est);
  EXPECT_GT(b.interval, Time::ms(150));
  EXPECT_LT(b.interval, Time::ms(500));
  // Slot drains the queue.
  EXPECT_GE(b.entries[0].duration, est.bulk_cost(75000, 1400));
}

TEST(VariableIntervalScheduler, CapsAtMaxAndScalesSlots) {
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  const auto b =
      sched.build({{ip(1), 400000, 0}, {ip(2), 400000, 0}}, est);
  EXPECT_EQ(b.interval, Time::ms(500));
  check_layout(b);
  // Equal demands -> equal scaled slots.
  EXPECT_NEAR(b.entries[0].duration.ratio(b.entries[1].duration), 1.0, 0.01);
}

TEST(VariableIntervalScheduler, IntervalBetweenBounds) {
  VariableIntervalScheduler sched{Time::ms(100), Time::ms(500)};
  const auto est = linear_est();
  for (std::uint64_t bytes : {0ull, 1000ull, 50000ull, 200000ull, 900000ull}) {
    const auto b = sched.build({{ip(1), bytes, 0}}, est);
    EXPECT_GE(b.interval, Time::ms(100));
    EXPECT_LE(b.interval, Time::ms(500));
  }
}

TEST(StaticScheduler, EqualSlotsForAllClientsRegardlessOfDemand) {
  StaticScheduler sched{Time::ms(100), {ip(1), ip(2), ip(3), ip(4)}};
  const auto est = linear_est();
  // No demand at all: entries still exist.
  const auto b = sched.build({}, est);
  ASSERT_EQ(b.entries.size(), 4u);
  for (const auto& e : b.entries)
    EXPECT_EQ(e.duration, b.entries[0].duration);
  EXPECT_TRUE(b.reuse_next);
  check_layout(b);
}

TEST(StaticScheduler, ScheduleIsIdenticalAcrossTicks) {
  StaticScheduler sched{Time::ms(100), {ip(1), ip(2)}};
  const auto est = linear_est();
  const auto b1 = sched.build({{ip(1), 99999, 0}}, est);
  const auto b2 = sched.build({{ip(2), 5, 0}}, est);
  ASSERT_EQ(b1.entries.size(), b2.entries.size());
  for (std::size_t i = 0; i < b1.entries.size(); ++i) {
    EXPECT_EQ(b1.entries[i].client, b2.entries[i].client);
    EXPECT_EQ(b1.entries[i].rp_offset, b2.entries[i].rp_offset);
    EXPECT_EQ(b1.entries[i].duration, b2.entries[i].duration);
  }
}

TEST(SlottedStaticScheduler, TcpSlotThenUdpSlots) {
  SlottedStaticScheduler sched{Time::ms(500), 0.33, {ip(1), ip(2)}, {ip(3)}};
  const auto est = linear_est();
  const auto b = sched.build({}, est);
  // 3 TCP-slot entries (everyone awake) + 2 UDP slots.
  ASSERT_EQ(b.entries.size(), 5u);
  int tcp_entries = 0, udp_entries = 0;
  sim::Duration tcp_end;
  for (const auto& e : b.entries) {
    if (e.kind == SlotKind::TcpOnly) {
      ++tcp_entries;
      tcp_end = e.rp_offset + e.duration;
    } else if (e.kind == SlotKind::UdpOnly) {
      ++udp_entries;
      EXPECT_GE(e.rp_offset, tcp_end);  // UDP slots follow the TCP slot
    }
  }
  EXPECT_EQ(tcp_entries, 3);
  EXPECT_EQ(udp_entries, 2);
  EXPECT_TRUE(b.reuse_next);
}

TEST(SlottedStaticScheduler, TcpWeightControlsSlotSize) {
  const auto est = linear_est();
  SlottedStaticScheduler small{Time::ms(500), 0.10, {ip(1)}, {ip(2)}};
  SlottedStaticScheduler large{Time::ms(500), 0.56, {ip(1)}, {ip(2)}};
  const auto bs = small.build({}, est);
  const auto bl = large.build({}, est);
  sim::Duration ds, dl;
  for (const auto& e : bs.entries)
    if (e.kind == SlotKind::TcpOnly) ds = e.duration;
  for (const auto& e : bl.entries)
    if (e.kind == SlotKind::TcpOnly) dl = e.duration;
  EXPECT_NEAR(dl.ratio(ds), 5.6, 0.05);
}

// Parameterized sweep: every scheduler respects basic layout invariants for
// a range of demand mixes.
struct SchedCase {
  std::uint64_t udp;
  std::uint64_t tcp;
  int clients;
};

class SchedulerLayoutSweep : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerLayoutSweep, FixedLayoutInvariants) {
  const auto p = GetParam();
  FixedIntervalScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  std::vector<ClientDemand> d;
  for (int i = 0; i < p.clients; ++i) d.push_back({ip(i + 1), p.udp, p.tcp});
  const auto b = sched.build(d, est);
  if (p.udp + p.tcp == 0) {
    EXPECT_TRUE(b.entries.empty());
    return;
  }
  check_layout(b);
  EXPECT_EQ(b.entries.size(), static_cast<std::size_t>(p.clients));
}

TEST_P(SchedulerLayoutSweep, VariableLayoutInvariants) {
  const auto p = GetParam();
  VariableIntervalScheduler sched;
  const auto est = linear_est();
  std::vector<ClientDemand> d;
  for (int i = 0; i < p.clients; ++i) d.push_back({ip(i + 1), p.udp, p.tcp});
  const auto b = sched.build(d, est);
  EXPECT_GE(b.interval, Time::ms(100));
  EXPECT_LE(b.interval, Time::ms(500));
  if (p.udp + p.tcp > 0) check_layout(b);
}

INSTANTIATE_TEST_SUITE_P(
    DemandMixes, SchedulerLayoutSweep,
    ::testing::Values(SchedCase{0, 0, 3}, SchedCase{1000, 0, 1},
                      SchedCase{0, 1000, 1}, SchedCase{5000, 5000, 4},
                      SchedCase{50000, 0, 10}, SchedCase{0, 80000, 10},
                      SchedCase{200000, 200000, 10}, SchedCase{1, 1, 2}));

// -- Slot non-overlap invariant ----------------------------------------------------

// Every slot carries data (no zero-length entries) and no pair illegally
// shares channel time (the proxy's schedule_tick PP_CHECK predicate).
void check_slots(const BuiltSchedule& b) {
  for (const auto& e : b.entries) {
    EXPECT_GT(e.duration, Time::zero());
    EXPECT_LE((e.rp_offset + e.duration).count_ns(),
              b.interval.count_ns() + 1000);
  }
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < b.entries.size(); ++j) {
      EXPECT_FALSE(slots_conflict(b.entries[i], b.entries[j]))
          << "entries " << i << " and " << j;
    }
  }
}

TEST(SlotsConflict, DetectsSharedChannelTime) {
  const ScheduleEntry a{ip(1), Time::ms(4), Time::ms(10)};
  const ScheduleEntry overlapping{ip(2), Time::ms(8), Time::ms(10)};
  const ScheduleEntry adjacent{ip(2), Time::ms(14), Time::ms(10)};
  EXPECT_TRUE(slots_conflict(a, overlapping));
  EXPECT_TRUE(slots_conflict(overlapping, a));
  EXPECT_FALSE(slots_conflict(a, adjacent));
  // TcpOnly pairs deliberately share one listening slot.
  ScheduleEntry ta = a, tb = overlapping;
  ta.kind = tb.kind = SlotKind::TcpOnly;
  EXPECT_FALSE(slots_conflict(ta, tb));
  // Mixed kinds still conflict.
  tb.kind = SlotKind::UdpOnly;
  EXPECT_TRUE(slots_conflict(ta, tb));
}

// -- Edge cases: zero demand, over-capacity single client, packet-count ------------

TEST(SchedulerEdgeCases, ZeroDemandSetYieldsNoEntries) {
  const auto est = linear_est();
  std::vector<ClientDemand> idle{{ip(1), 0, 0}, {ip(2), 0, 0}, {ip(3), 0, 0}};
  FixedIntervalScheduler fixed{Time::ms(500)};
  VariableIntervalScheduler variable;
  LongestQueueFirstScheduler lqf{Time::ms(500)};
  ChannelAwareOpportunisticScheduler opp{Time::ms(500)};
  BufferAwareProbabilisticScheduler prob{Time::ms(500), 42};
  EXPECT_TRUE(fixed.build(idle, est).entries.empty());
  EXPECT_TRUE(variable.build(idle, est).entries.empty());
  EXPECT_TRUE(lqf.build(idle, est).entries.empty());
  EXPECT_TRUE(opp.build(idle, est).entries.empty());
  EXPECT_TRUE(prob.build(idle, est).entries.empty());
}

TEST(SchedulerEdgeCases, SingleClientExceedingMaxIntervalStaysInBounds) {
  const auto est = linear_est();
  // ~10 MB is far more than any 500 ms interval can carry.
  std::vector<ClientDemand> d{{ip(1), 10'000'000, 0}};
  FixedIntervalScheduler fixed{Time::ms(500)};
  const auto bf = fixed.build(d, est);
  ASSERT_EQ(bf.entries.size(), 1u);
  check_slots(bf);
  VariableIntervalScheduler variable;
  const auto bv = variable.build(d, est);
  EXPECT_EQ(bv.interval, Time::ms(500));  // capped at max
  ASSERT_EQ(bv.entries.size(), 1u);
  check_slots(bv);
  LongestQueueFirstScheduler lqf{Time::ms(500)};
  const auto bl = lqf.build(d, est);
  ASSERT_EQ(bl.entries.size(), 1u);
  check_slots(bl);
}

TEST(SchedulerEdgeCases, UdpPacketCountDominatedDemand) {
  const auto est = linear_est();
  // Thousands of tiny datagrams: per-packet overhead dwarfs the byte cost,
  // so the slot must cover queue_cost (packet framing), not just bulk_cost.
  ClientDemand d{ip(1), 4000, 0};
  d.udp_packets = 2000;  // 2-byte datagrams
  FixedIntervalScheduler fixed{Time::ms(5000)};
  const auto b = fixed.build({d}, est);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_GE(b.entries[0].duration, est.queue_cost(2000, 4000));
  EXPECT_GT(est.queue_cost(2000, 4000), est.bulk_cost(4000, 1400));
  check_slots(b);
}

// -- Policy zoo --------------------------------------------------------------------

ClientDemand bad_channel_demand(net::Ipv4Addr who, std::uint64_t bytes,
                                sim::Duration slack) {
  ClientDemand d{who, bytes, 0};
  d.channel.known = true;
  d.channel.num_states = 2;
  d.channel.state = 1;  // worst rung
  d.deadline_slack = slack;
  return d;
}

TEST(LongestQueueFirstScheduler, DeepestQueueGoesFirst) {
  LongestQueueFirstScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{
      {ip(1), 1000, 0}, {ip(2), 50000, 0}, {ip(3), 9000, 0}};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 3u);
  EXPECT_EQ(b.entries[0].client, ip(2));
  EXPECT_EQ(b.entries[1].client, ip(3));
  EXPECT_EQ(b.entries[2].client, ip(1));
  check_slots(b);
  // Full drain cost for everyone when the interval has room.
  EXPECT_GE(b.entries[0].duration, est.bulk_cost(50000, 1400));
}

TEST(LongestQueueFirstScheduler, TailStarvedWhenOvercommitted) {
  LongestQueueFirstScheduler sched{Time::ms(100)};
  const auto est = linear_est();
  // Each queue alone eats the whole 100 ms interval.
  std::vector<ClientDemand> d;
  for (int i = 1; i <= 5; ++i) {
    d.push_back({ip(i), 100000ull * static_cast<std::uint64_t>(i), 0});
  }
  const auto b = sched.build(d, est);
  ASSERT_FALSE(b.entries.empty());
  EXPECT_LT(b.entries.size(), d.size());       // somebody starved
  EXPECT_EQ(b.entries[0].client, ip(5));       // deepest first
  check_slots(b);
}

TEST(ChannelAwareOpportunisticScheduler, DefersBadChannelWithinSlack) {
  ChannelAwareOpportunisticScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{{ip(1), 20000, 0}};
  d[0].deadline_slack = Time::ms(750);
  d.push_back(bad_channel_demand(ip(2), 20000, Time::ms(750)));
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);  // bad-channel client sat out
  EXPECT_EQ(b.entries[0].client, ip(1));
  check_slots(b);
}

TEST(ChannelAwareOpportunisticScheduler, DeadlineOverridesDeferral) {
  ChannelAwareOpportunisticScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  // Bad channel but no slack: serving is mandatory.
  std::vector<ClientDemand> d{
      bad_channel_demand(ip(1), 20000, Time::zero())};
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].client, ip(1));
}

TEST(ChannelAwareOpportunisticScheduler, SkipCapForcesService) {
  const int max_deferrals = 2;
  ChannelAwareOpportunisticScheduler sched{Time::ms(500), max_deferrals};
  const auto est = linear_est();
  const auto d = std::vector<ClientDemand>{
      bad_channel_demand(ip(1), 20000, Time::seconds(10))};
  // Ample slack: deferred for max_deferrals SRPs, then served regardless.
  for (int i = 0; i < max_deferrals; ++i) {
    EXPECT_TRUE(sched.build(d, est).entries.empty()) << "SRP " << i;
  }
  const auto b = sched.build(d, est);
  ASSERT_EQ(b.entries.size(), 1u);
  // The forced serve reset the streak: the next SRP defers again.
  EXPECT_TRUE(sched.build(d, est).entries.empty());
}

TEST(ChannelAwareOpportunisticScheduler, GoodChannelNeverDeferred) {
  ChannelAwareOpportunisticScheduler sched{Time::ms(500)};
  const auto est = linear_est();
  std::vector<ClientDemand> d{{ip(1), 20000, 0}};
  d[0].deadline_slack = Time::seconds(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sched.build(d, est).entries.size(), 1u);
  }
}

TEST(BufferAwareProbabilisticScheduler, SameSeedReproduces) {
  const auto est = linear_est();
  BufferAwareProbabilisticScheduler s1{Time::ms(500), 1234};
  BufferAwareProbabilisticScheduler s2{Time::ms(500), 1234};
  std::vector<ClientDemand> d;
  for (int i = 1; i <= 4; ++i) {
    d.push_back({ip(i), 2000ull * static_cast<std::uint64_t>(i), 0});
    d.back().deadline_slack = Time::seconds(10);  // draws decide, not deadlines
  }
  for (int srp = 0; srp < 50; ++srp) {
    const auto b1 = s1.build(d, est);
    const auto b2 = s2.build(d, est);
    ASSERT_EQ(b1.entries.size(), b2.entries.size()) << "SRP " << srp;
    for (std::size_t i = 0; i < b1.entries.size(); ++i) {
      EXPECT_EQ(b1.entries[i].client, b2.entries[i].client);
      EXPECT_EQ(b1.entries[i].duration, b2.entries[i].duration);
    }
    check_slots(b1);
  }
}

TEST(BufferAwareProbabilisticScheduler, DeadlineForcesService) {
  const auto est = linear_est();
  // Tiny queue (admission p ~ 0.01) but zero slack: always served.
  BufferAwareProbabilisticScheduler sched{Time::ms(500), 7};
  std::vector<ClientDemand> d{{ip(1), 170, 0}};
  for (int srp = 0; srp < 30; ++srp) {
    EXPECT_EQ(sched.build(d, est).entries.size(), 1u) << "SRP " << srp;
  }
}

TEST(BufferAwareProbabilisticScheduler, ShallowQueuesSkipDeepQueuesStay) {
  const auto est = linear_est();
  BufferAwareProbabilisticScheduler sched{Time::ms(500), 99};
  // q0 = 16 KB: a 170-byte queue is admitted ~1% of SRPs, a 1.6 MB queue
  // ~99%.  Count service rates over many SRPs.
  std::vector<ClientDemand> d{{ip(1), 170, 0}, {ip(2), 1'600'000, 0}};
  d[0].deadline_slack = d[1].deadline_slack = Time::seconds(10);
  int shallow = 0, deep = 0;
  for (int srp = 0; srp < 400; ++srp) {
    const auto b = sched.build(d, est);
    check_slots(b);
    for (const auto& e : b.entries) {
      if (e.client == ip(1)) ++shallow;
      if (e.client == ip(2)) ++deep;
    }
  }
  EXPECT_LT(shallow, 40);   // ~1% expected
  EXPECT_GT(deep, 360);     // ~99% expected
}

}  // namespace
}  // namespace pp::proxy

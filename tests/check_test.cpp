// Fault-injection tests for the invariant checkers in src/check/.
//
// Each test installs a throwing failure handler (so a tripped PP_CHECK
// raises check::CheckError instead of aborting), then deliberately breaks
// one invariant and asserts that exactly the right checker fires.  No
// death tests: the handler mechanism keeps everything in-process.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "check/sorted.hpp"
#include "energy/wnic.hpp"
#include "net/chunk.hpp"
#include "net/packet.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace pp::check {
namespace {

using sim::Time;

struct CheckFixture : ::testing::Test {
  ScopedFailureHandler scoped{throwing_handler};
};

// -- PP_CHECK core ---------------------------------------------------------------

TEST_F(CheckFixture, PassingCheckIsSilent) {
  PP_CHECK(1 + 1 == 2, "test.core");
  PP_CHECK_AT(true, "test.core", Time::ms(5));
}

TEST_F(CheckFixture, FailingCheckThrowsWithContext) {
  try {
    PP_CHECK(1 == 2, "test.component");
    FAIL() << "PP_CHECK did not fire";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test.component"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
  }
}

TEST_F(CheckFixture, FailingCheckAtReportsSimTime) {
  try {
    PP_CHECK_AT(false, "test.timed", Time::ms(1500));
    FAIL() << "PP_CHECK_AT did not fire";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("t=1.5"), std::string::npos)
        << e.what();
  }
}

TEST(CheckHandlerTest, ScopedHandlerRestoresPrevious) {
  {
    ScopedFailureHandler outer{throwing_handler};
    { ScopedFailureHandler inner{nullptr}; }
    // outer's handler must be back in force.
    EXPECT_THROW(PP_CHECK(false, "test.scope"), CheckError);
  }
}

// -- Simulator invariants --------------------------------------------------------

TEST_F(CheckFixture, SchedulingIntoThePastTrips) {
  sim::Simulator sim{1};
  sim.at(Time::ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(Time::ms(5), [] {}), CheckError);
}

// -- Timeline auditor ------------------------------------------------------------

TEST_F(CheckFixture, AuditorAcceptsMonotoneEvents) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(1), obs::EventKind::ScheduleBroadcast);
  tl.record(Time::ms(1), obs::EventKind::Drop, 7);
  tl.span(Time::ms(2), Time::ms(3), obs::EventKind::Burst, 7, 100);
  a.finalize(Time::ms(10));
  EXPECT_EQ(a.events_audited(), 3u);
}

TEST_F(CheckFixture, AuditorRejectsTimeRegression) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(5), obs::EventKind::ScheduleBroadcast);
  EXPECT_THROW(tl.record(Time::ms(4), obs::EventKind::Drop), CheckError);
}

TEST_F(CheckFixture, AuditorRejectsNegativeSpan) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  EXPECT_THROW(
      tl.span(Time::ms(5), Time::ms(1) - Time::ms(2), obs::EventKind::Burst),
      CheckError);
}

TEST_F(CheckFixture, AuditorRejectsDoubleSleep) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(1), obs::EventKind::Sleep, 42);
  tl.record(Time::ms(2), obs::EventKind::Wake, 42);
  tl.record(Time::ms(3), obs::EventKind::Sleep, 42);
  EXPECT_THROW(tl.record(Time::ms(4), obs::EventKind::Sleep, 42),
               CheckError);
}

TEST_F(CheckFixture, AuditorRejectsWakeWhileAwake) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  // Clients boot awake: an initial Wake is a violation.
  EXPECT_THROW(tl.record(Time::ms(1), obs::EventKind::Wake, 42), CheckError);
}

TEST_F(CheckFixture, AuditorRejectsEventsBeyondHorizon) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(500), obs::EventKind::Drop);
  EXPECT_THROW(a.finalize(Time::ms(400)), CheckError);
}

// -- Energy accounting -----------------------------------------------------------

TEST_F(CheckFixture, EnergyAuditPassesOnConsistentTimeline) {
  energy::EnergyAccountant acc{energy::WnicPowerModel::wavelan(),
                               Time::ms(100)};
  acc.set_mode(Time::ms(200), energy::WnicMode::Sleep);
  acc.set_mode(Time::ms(300), energy::WnicMode::Receive);
  acc.finish(Time::ms(450));
  acc.audit(Time::ms(450), "test.energy");
  EXPECT_EQ(acc.time_in(energy::WnicMode::Sleep), Time::ms(100));
}

TEST_F(CheckFixture, EnergyAuditCatchesUnaccountedTime) {
  energy::EnergyAccountant acc{energy::WnicPowerModel::wavelan(),
                               Time::ms(100)};
  acc.set_mode(Time::ms(200), energy::WnicMode::Sleep);
  acc.finish(Time::ms(300));
  // Auditing against a *different* end time than the one settled must
  // expose the hole in the accounting.
  EXPECT_THROW(acc.audit(Time::ms(250), "test.energy"), CheckError);
}

TEST_F(CheckFixture, EnergySettleRejectsTimeRegression) {
  energy::EnergyAccountant acc{energy::WnicPowerModel::wavelan(),
                               Time::ms(100)};
  acc.set_mode(Time::ms(200), energy::WnicMode::Sleep);
  EXPECT_THROW(acc.set_mode(Time::ms(150), energy::WnicMode::Idle),
               CheckError);
}

// -- TCP sequence continuity -----------------------------------------------------

TEST_F(CheckFixture, TcpConsumeBeyondDeliveredTrips) {
  sim::Simulator sim{1};
  transport::TcpOptions opts;
  opts.manual_consume = true;
  transport::TcpConnection conn{
      sim,           [](net::Packet) {},
      {net::Ipv4Addr::octets(10, 0, 0, 1), 80},
      {net::Ipv4Addr::octets(10, 0, 0, 2), 999},
      opts,          /*passive=*/true};
  EXPECT_THROW(conn.consume(1), CheckError);
}

TEST_F(CheckFixture, TcpConsumeWithoutManualModeTrips) {
  sim::Simulator sim{1};
  transport::TcpConnection conn{
      sim,  [](net::Packet) {},
      {net::Ipv4Addr::octets(10, 0, 0, 1), 80},
      {net::Ipv4Addr::octets(10, 0, 0, 2), 999},
      {},   /*passive=*/true};
  EXPECT_THROW(conn.consume(0), CheckError);
}

TEST_F(CheckFixture, TcpDoubleConnectTrips) {
  sim::Simulator sim{1};
  transport::TcpConnection conn{
      sim, [](net::Packet) {},
      {net::Ipv4Addr::octets(10, 0, 0, 1), 80},
      {net::Ipv4Addr::octets(10, 0, 0, 2), 999},
      {},  /*passive=*/false};
  conn.connect();
  EXPECT_THROW(conn.connect(), CheckError);
}

// -- Chunk queues ----------------------------------------------------------------

TEST_F(CheckFixture, ChunkQueueMisuseTrips) {
  auto pool = std::make_shared<net::ChunkPool>();
  net::ChunkQueue q{pool};
  EXPECT_THROW((void)q.pop_packet(), CheckError);  // net.chunk.pop_empty
  EXPECT_THROW(q.mark_tail(), CheckError);         // net.chunk.mark_empty

  net::ChunkQueue no_pool;
  EXPECT_THROW(no_pool.push(net::make_packet()), CheckError);

  q.push(net::make_packet());
  net::ChunkQueue other{std::make_shared<net::ChunkPool>()};
  EXPECT_THROW(q.pop_front_to(other), CheckError);  // net.chunk.pool_mismatch

  // split_front bounds: 0 and >= length are both out of range.
  net::Packet pkt = net::make_packet();
  pkt.payload = 100;
  net::ChunkQueue s{pool};
  s.push(std::move(pkt));
  EXPECT_THROW(s.split_front(0), CheckError);    // net.chunk.split_range
  EXPECT_THROW(s.split_front(100), CheckError);  // net.chunk.split_range
}

// Chunk-granularity conservation: however a datagram is split and handed
// between queues, audit() holds at every step and the view lengths always
// re-assemble to the original payload.
TEST_F(CheckFixture, ChunkConservationAcrossSplitsAndHandoffs) {
  auto pool = std::make_shared<net::ChunkPool>();
  net::ChunkQueue q{pool};
  net::Packet pkt = net::make_packet();
  pkt.payload = 900;
  q.push(std::move(pkt));
  q.split_front(300);  // 300 | 600
  q.audit();
  net::ChunkQueue burst{pool};
  q.pop_front_to(burst);
  q.split_front(200);  // queue: 200 | 400, burst: 300
  q.audit();
  burst.audit();
  q.move_all_to(burst);
  EXPECT_TRUE(q.empty());
  q.audit();
  burst.audit();
  EXPECT_EQ(burst.packets(), 3u);
  EXPECT_EQ(burst.bytes(), 900u);  // nothing lost, nothing invented
  std::uint64_t reassembled = 0;
  burst.for_each([&reassembled](const net::Chunk& c) {
    reassembled += c.length;
  });
  EXPECT_EQ(reassembled, 900u);
}

// -- sorted_items / sorted_keys --------------------------------------------------

TEST(SortedTest, ItemsSortedByKeyAndMutable) {
  std::unordered_map<int, std::string> m{{3, "c"}, {1, "a"}, {2, "b"}};
  std::vector<int> keys;
  for (auto* kv : sorted_items(m)) {
    keys.push_back(kv->first);
    kv->second += "!";
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(m.at(2), "b!");
}

TEST(SortedTest, KeysSortedForMapAndSet) {
  std::unordered_map<int, int> m{{5, 0}, {4, 0}, {9, 0}};
  EXPECT_EQ(sorted_keys(m), (std::vector<int>{4, 5, 9}));
  std::unordered_set<int> s{7, 2, 11};
  EXPECT_EQ(sorted_keys(s), (std::vector<int>{2, 7, 11}));
}

}  // namespace
}  // namespace pp::check

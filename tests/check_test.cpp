// Fault-injection tests for the invariant checkers in src/check/.
//
// Each test installs a throwing failure handler (so a tripped PP_CHECK
// raises check::CheckError instead of aborting), then deliberately breaks
// one invariant and asserts that exactly the right checker fires.  No
// death tests: the handler mechanism keeps everything in-process.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "check/sorted.hpp"
#include "energy/wnic.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace pp::check {
namespace {

using sim::Time;

struct CheckFixture : ::testing::Test {
  ScopedFailureHandler scoped{throwing_handler};
};

// -- PP_CHECK core ---------------------------------------------------------------

TEST_F(CheckFixture, PassingCheckIsSilent) {
  PP_CHECK(1 + 1 == 2, "test.core");
  PP_CHECK_AT(true, "test.core", Time::ms(5));
}

TEST_F(CheckFixture, FailingCheckThrowsWithContext) {
  try {
    PP_CHECK(1 == 2, "test.component");
    FAIL() << "PP_CHECK did not fire";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test.component"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
  }
}

TEST_F(CheckFixture, FailingCheckAtReportsSimTime) {
  try {
    PP_CHECK_AT(false, "test.timed", Time::ms(1500));
    FAIL() << "PP_CHECK_AT did not fire";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("t=1.5"), std::string::npos)
        << e.what();
  }
}

TEST(CheckHandlerTest, ScopedHandlerRestoresPrevious) {
  {
    ScopedFailureHandler outer{throwing_handler};
    { ScopedFailureHandler inner{nullptr}; }
    // outer's handler must be back in force.
    EXPECT_THROW(PP_CHECK(false, "test.scope"), CheckError);
  }
}

// -- Simulator invariants --------------------------------------------------------

TEST_F(CheckFixture, SchedulingIntoThePastTrips) {
  sim::Simulator sim{1};
  sim.at(Time::ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(Time::ms(5), [] {}), CheckError);
}

// -- Timeline auditor ------------------------------------------------------------

TEST_F(CheckFixture, AuditorAcceptsMonotoneEvents) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(1), obs::EventKind::ScheduleBroadcast);
  tl.record(Time::ms(1), obs::EventKind::Drop, 7);
  tl.span(Time::ms(2), Time::ms(3), obs::EventKind::Burst, 7, 100);
  a.finalize(Time::ms(10));
  EXPECT_EQ(a.events_audited(), 3u);
}

TEST_F(CheckFixture, AuditorRejectsTimeRegression) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(5), obs::EventKind::ScheduleBroadcast);
  EXPECT_THROW(tl.record(Time::ms(4), obs::EventKind::Drop), CheckError);
}

TEST_F(CheckFixture, AuditorRejectsNegativeSpan) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  EXPECT_THROW(
      tl.span(Time::ms(5), Time::ms(1) - Time::ms(2), obs::EventKind::Burst),
      CheckError);
}

TEST_F(CheckFixture, AuditorRejectsDoubleSleep) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(1), obs::EventKind::Sleep, 42);
  tl.record(Time::ms(2), obs::EventKind::Wake, 42);
  tl.record(Time::ms(3), obs::EventKind::Sleep, 42);
  EXPECT_THROW(tl.record(Time::ms(4), obs::EventKind::Sleep, 42),
               CheckError);
}

TEST_F(CheckFixture, AuditorRejectsWakeWhileAwake) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  // Clients boot awake: an initial Wake is a violation.
  EXPECT_THROW(tl.record(Time::ms(1), obs::EventKind::Wake, 42), CheckError);
}

TEST_F(CheckFixture, AuditorRejectsEventsBeyondHorizon) {
  Auditor a;
  obs::Timeline tl;
  tl.set_sink(&a);
  tl.record(Time::ms(500), obs::EventKind::Drop);
  EXPECT_THROW(a.finalize(Time::ms(400)), CheckError);
}

// -- Energy accounting -----------------------------------------------------------

TEST_F(CheckFixture, EnergyAuditPassesOnConsistentTimeline) {
  energy::EnergyAccountant acc{energy::WnicPowerModel::wavelan(),
                               Time::ms(100)};
  acc.set_mode(Time::ms(200), energy::WnicMode::Sleep);
  acc.set_mode(Time::ms(300), energy::WnicMode::Receive);
  acc.finish(Time::ms(450));
  acc.audit(Time::ms(450), "test.energy");
  EXPECT_EQ(acc.time_in(energy::WnicMode::Sleep), Time::ms(100));
}

TEST_F(CheckFixture, EnergyAuditCatchesUnaccountedTime) {
  energy::EnergyAccountant acc{energy::WnicPowerModel::wavelan(),
                               Time::ms(100)};
  acc.set_mode(Time::ms(200), energy::WnicMode::Sleep);
  acc.finish(Time::ms(300));
  // Auditing against a *different* end time than the one settled must
  // expose the hole in the accounting.
  EXPECT_THROW(acc.audit(Time::ms(250), "test.energy"), CheckError);
}

TEST_F(CheckFixture, EnergySettleRejectsTimeRegression) {
  energy::EnergyAccountant acc{energy::WnicPowerModel::wavelan(),
                               Time::ms(100)};
  acc.set_mode(Time::ms(200), energy::WnicMode::Sleep);
  EXPECT_THROW(acc.set_mode(Time::ms(150), energy::WnicMode::Idle),
               CheckError);
}

// -- TCP sequence continuity -----------------------------------------------------

TEST_F(CheckFixture, TcpConsumeBeyondDeliveredTrips) {
  sim::Simulator sim{1};
  transport::TcpOptions opts;
  opts.manual_consume = true;
  transport::TcpConnection conn{
      sim,           [](net::Packet) {},
      {net::Ipv4Addr::octets(10, 0, 0, 1), 80},
      {net::Ipv4Addr::octets(10, 0, 0, 2), 999},
      opts,          /*passive=*/true};
  EXPECT_THROW(conn.consume(1), CheckError);
}

TEST_F(CheckFixture, TcpConsumeWithoutManualModeTrips) {
  sim::Simulator sim{1};
  transport::TcpConnection conn{
      sim,  [](net::Packet) {},
      {net::Ipv4Addr::octets(10, 0, 0, 1), 80},
      {net::Ipv4Addr::octets(10, 0, 0, 2), 999},
      {},   /*passive=*/true};
  EXPECT_THROW(conn.consume(0), CheckError);
}

TEST_F(CheckFixture, TcpDoubleConnectTrips) {
  sim::Simulator sim{1};
  transport::TcpConnection conn{
      sim, [](net::Packet) {},
      {net::Ipv4Addr::octets(10, 0, 0, 1), 80},
      {net::Ipv4Addr::octets(10, 0, 0, 2), 999},
      {},  /*passive=*/false};
  conn.connect();
  EXPECT_THROW(conn.connect(), CheckError);
}

// -- sorted_items / sorted_keys --------------------------------------------------

TEST(SortedTest, ItemsSortedByKeyAndMutable) {
  std::unordered_map<int, std::string> m{{3, "c"}, {1, "a"}, {2, "b"}};
  std::vector<int> keys;
  for (auto* kv : sorted_items(m)) {
    keys.push_back(kv->first);
    kv->second += "!";
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(m.at(2), "b!");
}

TEST(SortedTest, KeysSortedForMapAndSet) {
  std::unordered_map<int, int> m{{5, 0}, {4, 0}, {9, 0}};
  EXPECT_EQ(sorted_keys(m), (std::vector<int>{4, 5, 9}));
  std::unordered_set<int> s{7, 2, 11};
  EXPECT_EQ(sorted_keys(s), (std::vector<int>{2, 7, 11}));
}

}  // namespace
}  // namespace pp::check

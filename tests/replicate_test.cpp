#include <gtest/gtest.h>

#include "exp/replicate.hpp"

namespace pp::exp {
namespace {

TEST(ReplicateStats, SummaryOfKnownSamples) {
  const auto s = summarize_samples({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, 2.1380899, 1e-6);  // sample stddev
  EXPECT_GT(s.ci95(), 0.0);
}

TEST(ReplicateStats, EmptyAndSingleton) {
  EXPECT_EQ(summarize_samples({}).n, 0);
  const auto s = summarize_samples({3.0});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Replicate, RunsSeedsAndSummarizes) {
  ScenarioConfig cfg;
  cfg.roles = {0, 0};
  cfg.policy = IntervalPolicy::Fixed500;
  cfg.duration_s = 30.0;
  const auto s = replicate_saved(cfg, 3, /*base_seed=*/50);
  EXPECT_EQ(s.n, 3);
  EXPECT_GT(s.mean, 50.0);
  EXPECT_LT(s.mean, 90.0);
  EXPECT_LE(s.min, s.mean);
  EXPECT_GE(s.max, s.mean);
}

TEST(Replicate, DeterministicGivenBaseSeed) {
  ScenarioConfig cfg;
  cfg.roles = {0};
  cfg.policy = IntervalPolicy::Fixed500;
  cfg.duration_s = 20.0;
  const auto a = replicate_saved(cfg, 2, 7);
  const auto b = replicate_saved(cfg, 2, 7);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Replicate, CustomMetric) {
  ScenarioConfig cfg;
  cfg.roles = {0};
  cfg.policy = IntervalPolicy::Fixed500;
  cfg.duration_s = 20.0;
  const auto s = replicate(
      cfg, 2,
      [](const ScenarioResult& r) {
        return static_cast<double>(r.proxy_stats.schedules_sent);
      },
      7);
  // 20 s at 500 ms intervals starting at 0.5 s -> 40 schedules.
  EXPECT_NEAR(s.mean, 40.0, 1.0);
}

}  // namespace
}  // namespace pp::exp

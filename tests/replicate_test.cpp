#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "exp/builder.hpp"
#include "exp/parallel.hpp"
#include "exp/replicate.hpp"

namespace pp::exp {
namespace {

TEST(RunParallel, ResultsLandInOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 32; ++i) tasks.push_back([i] { return i * i; });
  const auto out = run_parallel(tasks, 4);
  ASSERT_EQ(out.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RunParallel, ThrowingTaskRethrowsInCaller) {
  // Before the fix this escaped the jthread and called std::terminate.
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i]() -> int {
      if (i == 5) throw std::runtime_error("task 5 failed");
      return i;
    });
  }
  EXPECT_THROW(
      {
        try {
          run_parallel(tasks, 4);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task 5 failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(RunParallel, FailureStopsLaunchingQueuedTasks) {
  // With a single worker the order is deterministic: once task 0 throws,
  // no later task may start.
  std::atomic<int> started{0};
  std::vector<std::function<int()>> tasks;
  tasks.push_back([]() -> int { throw std::runtime_error("boom"); });
  for (int i = 1; i < 8; ++i) {
    tasks.push_back([&started] {
      started.fetch_add(1);
      return 0;
    });
  }
  EXPECT_THROW(run_parallel(tasks, 1), std::runtime_error);
  EXPECT_EQ(started.load(), 0);
}

TEST(RunParallel, FirstErrorWinsWhenAllThrow) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> int {
      throw std::runtime_error("fail " + std::to_string(i));
    });
  }
  // Whichever task completes (fails) first is reported; with one thread
  // that is task 0.
  EXPECT_THROW(
      {
        try {
          run_parallel(tasks, 1);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "fail 0");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ReplicateStats, SummaryOfKnownSamples) {
  const auto s = summarize_samples({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, 2.1380899, 1e-6);  // sample stddev
  EXPECT_GT(s.ci95(), 0.0);
}

TEST(ReplicateStats, EmptyAndSingleton) {
  EXPECT_EQ(summarize_samples({}).n, 0);
  const auto s = summarize_samples({3.0});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Replicate, RunsSeedsAndSummarizes) {
  const auto cfg = ScenarioBuilder{}
                       .video(2, 0)
                       .policy(IntervalPolicy::Fixed500)
                       .duration_s(30.0)
                       .build();
  const auto s = replicate_saved(cfg, 3, /*base_seed=*/50);
  EXPECT_EQ(s.n, 3);
  EXPECT_GT(s.mean, 50.0);
  EXPECT_LT(s.mean, 90.0);
  EXPECT_LE(s.min, s.mean);
  EXPECT_GE(s.max, s.mean);
}

TEST(Replicate, DeterministicGivenBaseSeed) {
  const auto cfg = ScenarioBuilder{}
                       .video(1, 0)
                       .policy(IntervalPolicy::Fixed500)
                       .duration_s(20.0)
                       .build();
  const auto a = replicate_saved(cfg, 2, 7);
  const auto b = replicate_saved(cfg, 2, 7);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Replicate, CustomMetric) {
  const auto cfg = ScenarioBuilder{}
                       .video(1, 0)
                       .policy(IntervalPolicy::Fixed500)
                       .duration_s(20.0)
                       .build();
  const auto s = replicate(
      cfg, 2,
      [](const ScenarioResult& r) {
        return static_cast<double>(r.proxy_stats.schedules_sent);
      },
      7);
  // 20 s at 500 ms intervals starting at 0.5 s -> 40 schedules.
  EXPECT_NEAR(s.mean, 40.0, 1.0);
}

}  // namespace
}  // namespace pp::exp

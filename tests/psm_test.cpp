// Tests for the 802.11 power-save-mode baseline: AP beacons + TIM parking
// and the dozing PSM client.
#include <gtest/gtest.h>

#include <memory>

#include "client/psm_client.hpp"
#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "transport/udp.hpp"

namespace pp::client {
namespace {

using sim::Time;

struct PsmFixture : ::testing::Test {
  PsmFixture() {
    exp::TestbedParams tp;
    tp.num_clients = 0;
    tp.proxy.mode = proxy::ProxyMode::Passthrough;
    bed = std::make_unique<exp::Testbed>(
        tp,
        std::make_unique<proxy::FixedIntervalScheduler>(Time::ms(500)));
    bed->access_point().enable_psm(Time::ms(100));
    station = std::make_unique<PsmClient>(bed->sim(), bed->medium(),
                                          exp::testbed_client_ip(0), "psm0");
    bed->access_point().register_psm_station(station->ip());
    server = &bed->add_server("srv");
    sock = std::make_unique<transport::UdpSocket>(*server, 7000);
  }

  std::unique_ptr<exp::Testbed> bed;
  std::unique_ptr<PsmClient> station;
  net::Node* server = nullptr;
  std::unique_ptr<transport::UdpSocket> sock;
};

TEST_F(PsmFixture, BeaconsBroadcastEveryInterval) {
  bed->start(Time::ms(400));
  bed->run_until(Time::sec(2));
  EXPECT_GE(bed->access_point().beacons_sent(), 19u);
  EXPECT_LE(bed->access_point().beacons_sent(), 21u);
}

TEST_F(PsmFixture, ClientDozesBetweenEmptyBeacons) {
  bed->start(Time::ms(400));
  bed->run_until(Time::sec(10));
  const double saved = station->energy_saved_fraction(Time::sec(10));
  EXPECT_GT(saved, 0.6);  // mostly asleep
  EXPECT_GT(station->beacons_received(), 90u);
}

TEST_F(PsmFixture, FramesParkedUntilBeacon) {
  bed->start(Time::ms(400));
  // Send mid-beacon-interval: the frame must wait at the AP.
  bed->sim().at(Time::ms(150), [&] {
    sock->send_to(station->ip(), 7100, 800);
  });
  bed->run_until(Time::ms(190));
  EXPECT_EQ(bed->access_point().psm_buffered_frames(), 1u);
  EXPECT_EQ(station->traffic().packets_received, 0u);
  bed->run_until(Time::ms(260));  // beacon at ~200 releases it
  EXPECT_EQ(bed->access_point().psm_buffered_frames(), 0u);
  EXPECT_EQ(station->traffic().packets_received, 1u);
  EXPECT_EQ(station->traffic().bytes_received, 800u);
}

TEST_F(PsmFixture, FinalFrameCarriesMoreDataClearedMark) {
  bed->start(Time::ms(400));
  bed->sim().at(Time::ms(150), [&] {
    for (int i = 0; i < 3; ++i) sock->send_to(station->ip(), 7100, 300);
  });
  int marks = 0, frames = 0;
  bed->medium().add_sniffer([&](const net::SnifferRecord& r) {
    if (r.pkt.dst == station->ip() && r.pkt.proto == net::Protocol::Udp) {
      ++frames;
      marks += r.pkt.marked;
    }
  });
  bed->run_until(Time::ms(400));
  EXPECT_EQ(frames, 3);
  EXPECT_EQ(marks, 1);
}

TEST_F(PsmFixture, ClientSleepsAfterDrainingItsQueue) {
  bed->start(Time::ms(400));
  bed->sim().at(Time::ms(150), [&] {
    sock->send_to(station->ip(), 7100, 500);
  });
  // Shortly after the ~200 ms beacon + release, the client is dozing.
  bed->run_until(Time::ms(280));
  EXPECT_FALSE(station->listening());
  // And it wakes again before the next beacon's arrival (the beacon airs
  // at ~300 ms and reaches the client at ~302 ms).
  bed->run_until(Time::ms(301));
  EXPECT_TRUE(station->listening());
}

TEST_F(PsmFixture, NoLossForParkedTraffic) {
  bed->start(Time::ms(400));
  for (int t = 150; t < 3000; t += 70) {
    bed->sim().at(Time::ms(t), [&] {
      sock->send_to(station->ip(), 7100, 400);
    });
  }
  bed->run_until(Time::sec(4));
  EXPECT_EQ(station->loss_fraction(), 0.0);
  EXPECT_GT(station->traffic().packets_received, 30u);
}

TEST_F(PsmFixture, UplinkWakesTheRadio) {
  bed->start(Time::ms(400));
  transport::UdpSocket client_sock{station->node(), 7100};
  transport::UdpSocket server_rx{*server, 7001};
  int got = 0;
  server_rx.set_receive_fn([&](const net::Packet&) { ++got; });
  bed->sim().at(Time::ms(250), [&] {
    client_sock.send_to(server->ip(), 7001, 200);
  });
  bed->run_until(Time::ms(400));
  EXPECT_EQ(got, 1);
}

TEST_F(PsmFixture, PsmSavesLessThanLongProxyIntervals) {
  // The qualitative claim of Section 2: for continuous media, PSM behaves
  // like a 100 ms schedule at best.  Here: steady traffic through PSM.
  bed->start(Time::ms(400));
  for (int t = 150; t < 20000; t += 50) {
    bed->sim().at(Time::ms(t), [&] {
      sock->send_to(station->ip(), 7100, 500);
    });
  }
  bed->run_until(Time::sec(21));
  const double psm_saved = station->energy_saved_fraction(Time::sec(21));
  EXPECT_GT(psm_saved, 0.3);
  EXPECT_LT(psm_saved, 0.85);
}

}  // namespace
}  // namespace pp::client

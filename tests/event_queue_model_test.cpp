// Model/fuzz tests for the slab-pooled EventQueue: randomized
// schedule/cancel/pop/reschedule sequences checked against a reference
// std::multimap ordered by (time, insertion-seq) — the contract the
// engine's determinism rests on — plus handle-generation safety (a stale
// handle must never observe or cancel a recycled slot).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pp::sim {
namespace {

// Reference model: pop order is strictly (when, seq) ascending.
using ModelKey = std::pair<std::int64_t, std::uint64_t>;

struct Fuzzer {
  explicit Fuzzer(std::uint64_t seed) : rng{seed} {}

  void push_one() {
    const std::int64_t when = static_cast<std::int64_t>(rng.next_u64() % 1000);
    const int id = next_id++;
    handles.push_back(
        {q.push(Time::ns(when), [this, id] { fired.push_back(id); }), id});
    model.emplace(ModelKey{when, seq}, id);
    ++seq;
  }

  // Cancel a uniformly chosen handle — live, already-fired, or
  // already-cancelled; the queue must tolerate all three.
  void cancel_one() {
    if (handles.empty()) return;
    auto& [h, id] = handles[rng.next_u64() % handles.size()];
    const bool was_live = model_contains(id);
    EXPECT_EQ(h.pending(), was_live);
    h.cancel();
    EXPECT_FALSE(h.pending());
    if (was_live) model_erase(id);
  }

  void pop_one() {
    if (model.empty()) {
      EXPECT_TRUE(q.empty());
      return;
    }
    const auto expect = *model.begin();
    model.erase(model.begin());
    auto [when, fn] = q.pop();
    EXPECT_EQ(when.count_ns(), expect.first.first);
    const std::size_t before = fired.size();
    fn();
    ASSERT_EQ(fired.size(), before + 1);
    EXPECT_EQ(fired.back(), expect.second);
  }

  void check_invariants() {
    EXPECT_EQ(q.empty(), model.empty());
    EXPECT_EQ(q.size(), model.size());
    const Time expect_next =
        model.empty() ? Time::max() : Time::ns(model.begin()->first.first);
    EXPECT_EQ(q.next_time(), expect_next);
    // Lazy pruning never holds more than one stale node per cancellation.
    EXPECT_GE(q.size_bound(), q.size());
  }

  bool model_contains(int id) const {
    for (const auto& [k, v] : model)
      if (v == id) return true;
    return false;
  }
  void model_erase(int id) {
    for (auto it = model.begin(); it != model.end(); ++it) {
      if (it->second == id) {
        model.erase(it);
        return;
      }
    }
  }

  Rng rng;
  EventQueue q;
  std::multimap<ModelKey, int> model;
  std::vector<std::pair<EventHandle, int>> handles;
  std::vector<int> fired;
  std::uint64_t seq = 0;
  int next_id = 0;
};

TEST(EventQueueModel, RandomizedOpsMatchReference) {
  for (std::uint64_t seed : {11u, 202u, 3033u, 40404u}) {
    Fuzzer f{seed};
    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t op = f.rng.next_u64() % 10;
      if (op < 4) {
        f.push_one();
      } else if (op < 6) {
        f.cancel_one();
      } else if (op < 9) {
        f.pop_one();
      } else {
        // Reschedule: cancel one, then push a replacement.
        f.cancel_one();
        f.push_one();
      }
      f.check_invariants();
    }
    // Drain; the tail must still come out in model order.
    while (!f.q.empty()) f.pop_one();
    f.check_invariants();
  }
}

TEST(EventQueueModel, PopOrderIsTimeThenInsertionSeq) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::ms(5), [&] { order.push_back(50); });
  q.push(Time::ms(1), [&] { order.push_back(10); });
  q.push(Time::ms(5), [&] { order.push_back(51); });
  q.push(Time::ms(1), [&] { order.push_back(11); });
  q.push(Time::ms(3), [&] { order.push_back(30); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 30, 50, 51}));
}

// A handle from a fired event must not touch whatever reuses its slot.
TEST(EventQueueModel, StaleHandleAfterFireCannotCancelReusedSlot) {
  EventQueue q;
  bool a_fired = false;
  bool b_fired = false;
  EventHandle ha = q.push(Time::ms(1), [&] { a_fired = true; });
  EXPECT_TRUE(ha.pending());
  q.pop().fn();
  EXPECT_TRUE(a_fired);
  EXPECT_FALSE(ha.pending());

  // The freed slot is reused eagerly, so B lands exactly where A lived.
  EventHandle hb = q.push(Time::ms(2), [&] { b_fired = true; });
  ha.cancel();  // stale: generation mismatch, must be a no-op
  EXPECT_FALSE(ha.pending());
  EXPECT_TRUE(hb.pending());
  ASSERT_FALSE(q.empty());
  q.pop().fn();
  EXPECT_TRUE(b_fired);
}

TEST(EventQueueModel, StaleHandleAfterCancelCannotCancelReusedSlot) {
  EventQueue q;
  bool b_fired = false;
  EventHandle ha = q.push(Time::ms(1), [] {});
  ha.cancel();
  EXPECT_TRUE(q.empty());

  EventHandle hb = q.push(Time::ms(2), [&] { b_fired = true; });
  ha.cancel();  // stale again; B must survive
  ha.cancel();  // and cancel stays idempotent
  EXPECT_TRUE(hb.pending());
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(b_fired);
}

TEST(EventQueueModel, HandleCopiesObserveOneEvent) {
  EventQueue q;
  EventHandle h1 = q.push(Time::ms(1), [] {});
  EventHandle h2 = h1;
  EXPECT_TRUE(h2.pending());
  h1.cancel();
  EXPECT_FALSE(h2.pending());
  h2.cancel();  // no-op on the same (already released) slot
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueModel, HandleReportsNotPendingInsideOwnCallback) {
  EventQueue q;
  EventHandle h;
  bool pending_inside = true;
  h = q.push(Time::ms(1), [&] { pending_inside = h.pending(); });
  q.pop().fn();
  EXPECT_FALSE(pending_inside);
}

// Cancelling and rescheduling from inside a running callback must not
// corrupt the slab even when the running event's slot gets reused by the
// push that the callback itself performs.
TEST(EventQueueModel, CallbackMayPushIntoItsOwnReleasedSlot) {
  EventQueue q;
  int fired = 0;
  q.push(Time::ms(1), [&] {
    // Our slot was released before invocation; this push may land in it.
    q.push(Time::ms(2), [&] { ++fired; });
  });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueModel, StalePruningIsBounded) {
  EventQueue q;
  std::vector<EventHandle> hs;
  hs.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    hs.push_back(q.push(Time::ms(i), [] {}));
  }
  for (auto& h : hs) h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());  // prunes every stale node
  EXPECT_EQ(q.size_bound(), 0u);
  EXPECT_EQ(q.stats().cancelled, 1000u);
  EXPECT_EQ(q.stats().stale_pruned, 1000u);
}

TEST(EventQueueModel, StatsCount) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  q.push(Time::ms(2), [] {});
  h.cancel();
  q.pop().fn();
  EXPECT_EQ(q.stats().scheduled, 2u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  EXPECT_EQ(q.stats().fired, 1u);
  EXPECT_EQ(q.stats().alloc.callbacks_inline, 2u);
  EXPECT_EQ(q.stats().alloc.callbacks_pooled, 0u);
}

}  // namespace
}  // namespace pp::sim

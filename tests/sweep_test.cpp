// Sweep engine tests: builder validation, content-addressed cache keys,
// RunRecord round-trip exactness, cold/warm cache behaviour, and the
// parallel-equals-serial determinism contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exp/builder.hpp"
#include "exp/parallel.hpp"
#include "exp/sweep/cache.hpp"
#include "exp/sweep/key.hpp"
#include "exp/sweep/sweep.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "bench/report.hpp"

namespace pp::exp {
namespace {

namespace fs = std::filesystem;
using sim::Time;

// A fresh cache directory per test, wiped on construction and teardown.
struct ScopedCacheDir {
  explicit ScopedCacheDir(const std::string& tag)
      : path{fs::path{::testing::TempDir()} /
             ("pp_sweep_test_" + tag + "." + std::to_string(::getpid()))} {
    fs::remove_all(path);
  }
  ~ScopedCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
  std::string str() const { return path.string(); }
};

// Small-but-real scenario for cache tests: one 56K client, a few seconds.
ScenarioBuilder tiny(std::uint64_t seed, double duration_s = 4.0) {
  return ScenarioBuilder{}
      .video(1, 0)
      .policy(IntervalPolicy::Fixed500)
      .seed(seed)
      .duration_s(duration_s);
}

// -- Builder validation ------------------------------------------------------------

TEST(Builder, RejectsEmptyRoles) {
  EXPECT_THROW(ScenarioBuilder{}.build(), std::invalid_argument);
}

TEST(Builder, RejectsUnknownFidelity) {
  EXPECT_THROW(ScenarioBuilder{}.video(1, 99).build(), std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder{}.roles({-7}).build(), std::invalid_argument);
}

TEST(Builder, RejectsSlottedWeightOnNonSlottedPolicy) {
  EXPECT_THROW(ScenarioBuilder{}
                   .video(1, 0)
                   .web(1)
                   .policy(IntervalPolicy::Fixed500)
                   .slotted_tcp_weight(0.33)
                   .build(),
               std::invalid_argument);
}

TEST(Builder, RejectsSlottedPolicyWithoutBothKinds) {
  EXPECT_THROW(ScenarioBuilder{}
                   .video(2, 0)
                   .policy(IntervalPolicy::SlottedStatic500)
                   .slotted_tcp_weight(0.33)
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder{}
                   .web(2)
                   .policy(IntervalPolicy::SlottedStatic500)
                   .slotted_tcp_weight(0.33)
                   .build(),
               std::invalid_argument);
}

TEST(Builder, RejectsOutOfRangeSlottedWeight) {
  auto b = ScenarioBuilder{}.video(1, 0).web(1).policy(
      IntervalPolicy::SlottedStatic500);
  EXPECT_THROW(ScenarioBuilder{b}.slotted_tcp_weight(0.0).build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder{b}.slotted_tcp_weight(1.0).build(),
               std::invalid_argument);
  EXPECT_NO_THROW(ScenarioBuilder{b}.slotted_tcp_weight(0.5).build());
}

TEST(Builder, RejectsNonPositiveDuration) {
  EXPECT_THROW(tiny(1).duration_s(0.0).build(), std::invalid_argument);
  EXPECT_THROW(tiny(1).duration_s(-3.0).build(), std::invalid_argument);
}

TEST(Builder, RejectsBadGeProbabilities) {
  auto b = tiny(1);
  b.fault_spec().ge.enabled = true;
  b.fault_spec().ge.p_good_bad = 1.5;
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, RejectsFaultWindowPastHorizon) {
  auto b = tiny(1, 4.0);
  b.fault_spec().ap_stall(Time::ms(3800), Time::ms(500));  // ends at 4.3 s
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, PresetsBuildCleanly) {
  for (const auto& [name, pattern] : presets::fig4_patterns()) {
    for (const auto& [pname, pol] : presets::dynamic_intervals()) {
      EXPECT_NO_THROW(ScenarioBuilder::fig4(pattern, pol).build()) << name;
    }
  }
  EXPECT_NO_THROW(ScenarioBuilder::fig6().build());
  EXPECT_NO_THROW(ScenarioBuilder::fig7(2, 0.33).build());
  EXPECT_NO_THROW(ScenarioBuilder::fault_battery(6, 120.0, true).build());
  EXPECT_NO_THROW(ScenarioBuilder::degradation(40.0).build());
  // fig6 retains the trace for postmortems, so it is never cacheable.
  EXPECT_TRUE(ScenarioBuilder::fig6().build().keep_trace);
  EXPECT_FALSE(sweep::cacheable(ScenarioBuilder::fig6().build()));
}

// -- Cache keys --------------------------------------------------------------------

TEST(SweepKey, StableAndSaltSensitive) {
  const auto cfg = tiny(7).build();
  EXPECT_EQ(sweep::config_key(cfg), sweep::config_key(cfg));
  EXPECT_NE(sweep::config_key(cfg), sweep::config_key(cfg, 123));
  const std::string hex = sweep::key_hex(sweep::config_key(cfg));
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// Every knob the builder exposes must reach the canonical serialization;
// a field the key misses would alias distinct configs onto one entry.
TEST(SweepKey, EveryMutationChangesTheKey) {
  const auto base = tiny(7).build();
  const std::uint64_t k0 = sweep::config_key(base);
  std::vector<ScenarioConfig> variants;
  variants.push_back(tiny(8).build());
  variants.push_back(tiny(7, 5.0).build());
  variants.push_back(tiny(7).video(1, 1).build());
  variants.push_back(tiny(7).policy(IntervalPolicy::Fixed100).build());
  variants.push_back(tiny(7).early_transition(Time::ms(4)).build());
  variants.push_back(tiny(7).schedule_repeats(2).build());
  variants.push_back(tiny(7).miss_escalation().build());
  variants.push_back(tiny(7).wireless_p_loss(0.05).build());
  variants.push_back(tiny(7).cost_model_scale(0.5).build());
  variants.push_back(tiny(7).naive_clients().build());
  variants.push_back(tiny(7).ftp_bytes(123).build());
  variants.push_back(tiny(7).web_pages(9).build());
  variants.push_back(tiny(7).video_adaptive(false).build());
  variants.push_back(
      tiny(7).proxy_mode(proxy::ProxyMode::Passthrough).build());
  variants.push_back(tiny(7).ap_jitter(0.1, Time::ms(6)).build());
  {
    auto b = tiny(7);
    b.fault_spec().ge.enabled = true;
    b.fault_spec().ge.p_good_bad = 0.01;
    b.fault_spec().ge.p_bad_good = 0.5;
    b.fault_spec().ge.loss_bad = 0.9;
    variants.push_back(b.build());
  }
  {
    auto b = tiny(7);
    b.fault_spec().ap_stall(Time::ms(1000), Time::ms(200));
    variants.push_back(b.build());
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(sweep::config_key(variants[i]), k0) << "variant " << i;
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(sweep::config_key(variants[i]), sweep::config_key(variants[j]))
          << i << " vs " << j;
    }
  }
}

// Fleet-level axes (cell count, backbone latency, cross-traffic shape) and
// every embedded cell-level axis must reach the multicell key.
TEST(SweepKey, MulticellAxesChangeTheKey) {
  MultiCellConfig base;
  base.num_cells = 3;
  base.cell = tiny(7).build();
  const std::uint64_t k0 = sweep::multicell_key(base);
  EXPECT_EQ(sweep::multicell_key(base), k0);  // stable
  // Fleet keys and scenario keys live in disjoint namespaces even for
  // equal salt inputs.
  EXPECT_NE(k0, sweep::config_key(base.cell));

  std::vector<MultiCellConfig> variants;
  {
    auto v = base;
    v.num_cells = 4;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.backbone_latency = sim::Time::ms(35);
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cross.enabled = false;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cross.period = sim::Time::ms(111);
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cross.bytes = 601;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cross.fanout = 2;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cross.start_s = 1.5;
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cell = tiny(8).build();  // cell-level change propagates to fleet key
    variants.push_back(v);
  }
  {
    auto v = base;
    v.cell.per_client_obs = false;
    variants.push_back(v);
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(sweep::multicell_key(variants[i]), k0) << "variant " << i;
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(sweep::multicell_key(variants[i]),
                sweep::multicell_key(variants[j]))
          << i << " vs " << j;
    }
  }
}

// -- RunRecord round trip ----------------------------------------------------------

TEST(RunRecord, RoundTripsBitExactly) {
  const auto res = run_scenario(tiny(3).build());
  const sweep::RunRecord rec = sweep::make_record(res, 0xDEADBEEFu);

  std::stringstream ss;
  sweep::write_record(ss, rec);
  sweep::RunRecord back;
  ASSERT_TRUE(sweep::read_record(ss, back));

  // Serialize the reloaded record again: hexfloat round-trips bit-exactly,
  // so the two renderings must be byte-identical.
  std::stringstream ss2;
  sweep::write_record(ss2, back);
  EXPECT_EQ(ss.str(), ss2.str());

  ASSERT_EQ(back.clients.size(), rec.clients.size());
  for (std::size_t i = 0; i < rec.clients.size(); ++i) {
    EXPECT_EQ(back.clients[i].saved_pct, rec.clients[i].saved_pct);  // exact
    EXPECT_EQ(back.clients[i].energy_mj, rec.clients[i].energy_mj);
    EXPECT_EQ(back.clients[i].bytes_received, rec.clients[i].bytes_received);
    EXPECT_EQ(back.clients[i].role, rec.clients[i].role);
    EXPECT_EQ(back.clients[i].ip.raw(), rec.clients[i].ip.raw());
  }
  EXPECT_EQ(back.horizon_ns, rec.horizon_ns);
  EXPECT_EQ(back.digest, rec.digest);
  EXPECT_EQ(back.proxy_stats.schedules_sent, rec.proxy_stats.schedules_sent);
}

TEST(RunRecord, ReadRejectsGarbage) {
  std::stringstream ss{"not a record\n"};
  sweep::RunRecord out;
  EXPECT_FALSE(sweep::read_record(ss, out));
}

// -- Cache cold/warm ---------------------------------------------------------------

TEST(SweepCache, ColdMissesThenWarmHitsByteIdentically) {
  ScopedCacheDir dir{"coldwarm"};
  const std::vector<sweep::Item> items{
      {"a", tiny(1).build()},
      {"b", tiny(2).build()},
  };
  sweep::Options opts;
  opts.cache_dir = dir.str();
  opts.threads = 1;

  auto render = [](const sweep::SweepResult& sr) {
    bench::Report rep{"sweep_test"};
    for (const auto& oc : sr.outcomes) {
      rep.row()
          .cell("label", oc.label)
          .cell("saved%", oc.record.clients[0].saved_pct, 3)
          .cell("energy", oc.record.clients[0].energy_mj, 6)
          .cell("digest", oc.record.digest);
    }
    return rep.json();
  };

  const auto cold = sweep::run(items, opts);
  EXPECT_EQ(cold.stats.total, 2u);
  EXPECT_EQ(cold.stats.hits, 0u);
  EXPECT_EQ(cold.stats.misses, 2u);

  const auto warm = sweep::run(items, opts);
  EXPECT_EQ(warm.stats.hits, 2u);
  EXPECT_EQ(warm.stats.misses, 0u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE(warm.outcomes[i].cache_hit);
    EXPECT_EQ(warm.outcomes[i].key, cold.outcomes[i].key);
    EXPECT_EQ(warm.outcomes[i].record.digest, cold.outcomes[i].record.digest);
  }
  EXPECT_EQ(render(cold), render(warm));
}

TEST(SweepCache, SaltChangeMisses) {
  ScopedCacheDir dir{"salt"};
  const std::vector<sweep::Item> items{{"a", tiny(1).build()}};
  sweep::Options opts;
  opts.cache_dir = dir.str();
  opts.threads = 1;
  (void)sweep::run(items, opts);  // populate

  opts.salt = sweep::kCodeVersionSalt + 1;
  const auto r = sweep::run(items, opts);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_EQ(r.stats.misses, 1u);
}

TEST(SweepCache, ConfigChangeMisses) {
  ScopedCacheDir dir{"cfg"};
  sweep::Options opts;
  opts.cache_dir = dir.str();
  opts.threads = 1;
  (void)sweep::run({{"a", tiny(1).build()}}, opts);
  const auto r = sweep::run({{"a", tiny(1, 5.0).build()}}, opts);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_EQ(r.stats.misses, 1u);
}

TEST(SweepCache, DisabledCacheAlwaysRuns) {
  ScopedCacheDir dir{"nocache"};
  sweep::Options opts;
  opts.cache_dir = dir.str();
  opts.threads = 1;
  opts.use_cache = false;
  (void)sweep::run({{"a", tiny(1).build()}}, opts);
  const auto r = sweep::run({{"a", tiny(1).build()}}, opts);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_EQ(r.stats.misses, 1u);
}

TEST(SweepCache, UncacheableItemsRunLiveWithFullResult) {
  ScopedCacheDir dir{"live"};
  sweep::Options opts;
  opts.cache_dir = dir.str();
  opts.threads = 1;
  const std::vector<sweep::Item> items{
      {"traced", tiny(1).keep_trace().build()}};
  const auto cold = sweep::run(items, opts);
  EXPECT_EQ(cold.stats.uncacheable, 1u);
  ASSERT_NE(cold.outcomes[0].live, nullptr);
  EXPECT_GT(cold.outcomes[0].live->trace.size(), 0u);
  // Still uncacheable on the second pass: never stored, never a hit.
  const auto warm = sweep::run(items, opts);
  EXPECT_EQ(warm.stats.uncacheable, 1u);
  EXPECT_EQ(warm.stats.hits, 0u);
}

// -- Parallel == serial ------------------------------------------------------------

TEST(SweepParallel, DigestSequenceMatchesSerial) {
  const std::vector<sweep::Item> items{
      {"a", tiny(1).build()},
      {"b", tiny(2).build()},
      {"c", tiny(3).build()},
      {"d", tiny(4, 5.0).build()},
  };
  sweep::Options serial;
  serial.use_cache = false;
  serial.threads = 1;
  sweep::Options parallel = serial;
  parallel.threads = 4;

  const auto s = sweep::run(items, serial);
  const auto p = sweep::run(items, parallel);
  ASSERT_EQ(s.outcomes.size(), p.outcomes.size());
  for (std::size_t i = 0; i < s.outcomes.size(); ++i) {
    EXPECT_EQ(s.outcomes[i].label, items[i].label);
    EXPECT_EQ(p.outcomes[i].label, items[i].label);
    EXPECT_EQ(s.outcomes[i].record.digest, p.outcomes[i].record.digest) << i;
#if PP_OBS_ENABLED
    EXPECT_NE(s.outcomes[i].record.digest, 0u);
#endif
  }
}

TEST(SweepParallel, ProgressReachesTotalMonotonically) {
  const std::vector<sweep::Item> items{
      {"a", tiny(1).build()},
      {"b", tiny(2).build()},
  };
  sweep::Options opts;
  opts.use_cache = false;
  opts.threads = 2;
  std::size_t last_done = 0;
  std::size_t calls = 0;
  opts.on_progress = [&](const sweep::Progress& pr) {
    EXPECT_GE(pr.done, last_done);
    EXPECT_EQ(pr.total, 2u);
    last_done = pr.done;
    ++calls;
  };
  (void)sweep::run(items, opts);
  EXPECT_GT(calls, 0u);
  EXPECT_EQ(last_done, 2u);
}

#if PP_OBS_ENABLED
TEST(SweepMetrics, CountersLandInRegistry) {
  ScopedCacheDir dir{"metrics"};
  obs::MetricsRegistry reg;
  sweep::Options opts;
  opts.cache_dir = dir.str();
  opts.threads = 1;
  opts.metrics = &reg;
  const std::vector<sweep::Item> items{
      {"a", tiny(1).build()},
      {"traced", tiny(2).keep_trace().build()},
  };
  (void)sweep::run(items, opts);
  (void)sweep::run(items, opts);
  EXPECT_EQ(reg.counter("sweep.cache_misses")->value(), 1u);
  EXPECT_EQ(reg.counter("sweep.cache_hits")->value(), 1u);
  EXPECT_EQ(reg.counter("sweep.uncacheable")->value(), 2u);
  EXPECT_EQ(reg.counter("sweep.runs")->value(), 3u);  // 1 miss + 2 live
}
#endif

// -- Thread resolution -------------------------------------------------------------

// Restores (or clears) an environment variable on scope exit.
struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_{name} {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) prev_ = prev;
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, prev_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string prev_;
  bool had_ = false;
};

TEST(ResolveThreads, ExplicitArgumentWins) {
  ScopedEnv env{"PP_THREADS", "7"};
  EXPECT_EQ(resolve_threads(3, 100), 3u);
}

TEST(ResolveThreads, HonorsEnvWhenUnpinned) {
  ScopedEnv env{"PP_THREADS", "5"};
  EXPECT_EQ(resolve_threads(0, 100), 5u);
}

TEST(ResolveThreads, IgnoresGarbageEnv) {
  ScopedEnv env{"PP_THREADS", "banana"};
  const unsigned t = resolve_threads(0, 100);
  EXPECT_GE(t, 1u);
  if (kSanitizedBuild) {
    EXPECT_EQ(t, 1u);
  }
}

TEST(ResolveThreads, CapsAtTaskCount) {
  ScopedEnv env{"PP_THREADS", "64"};
  EXPECT_EQ(resolve_threads(0, 2), 2u);
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_EQ(resolve_threads(1, 0), 1u);
}

TEST(ResolveThreads, SanitizedBuildsDefaultToOne) {
  ScopedEnv env{"PP_THREADS", nullptr};
  if (kSanitizedBuild) {
    EXPECT_EQ(resolve_threads(0, 100), 1u);
  } else {
    EXPECT_GE(resolve_threads(0, 100), 1u);
  }
}

}  // namespace
}  // namespace pp::exp

#include <gtest/gtest.h>

#include <memory>

#include "testutil.hpp"
#include "transport/tcp.hpp"

namespace pp::transport {
namespace {

using sim::Time;
using test::NodePair;

struct TcpFixture : ::testing::Test {
  // The node pair must be a fixture member declared before server/client:
  // their destructors unregister from the nodes, so the nodes have to
  // outlive them (members destroy in reverse declaration order).
  NodePair& make(std::uint64_t seed = 7, net::WiredParams params = {},
                 double p_loss = 0.0) {
    pair_ = std::make_unique<NodePair>(seed, params, p_loss);
    return *pair_;
  }

  // Builds a server on B and an active connection from A, returns both.
  void start(NodePair& np, TcpOptions copts = {}, TcpOptions sopts = {}) {
    server = std::make_unique<TcpServer>(np.b, 80, sopts);
    server->set_on_accept([this](TcpConnection& c) {
      accepted = &c;
      c.set_on_deliver([this](std::uint64_t n) { server_received += n; });
    });
    client = tcp_connect(np.a, np.b.ip(), 80, copts);
    client->set_on_deliver([this](std::uint64_t n) { client_received += n; });
  }

  std::unique_ptr<NodePair> pair_;
  std::unique_ptr<TcpServer> server;
  std::unique_ptr<TcpConnection> client;
  TcpConnection* accepted = nullptr;
  std::uint64_t client_received = 0;
  std::uint64_t server_received = 0;
};

TEST_F(TcpFixture, ThreeWayHandshake) {
  auto& np = make();
  start(np);
  np.sim.run();
  ASSERT_NE(accepted, nullptr);
  EXPECT_TRUE(client->established());
  EXPECT_TRUE(accepted->established());
}

TEST_F(TcpFixture, ClientToServerTransfer) {
  auto& np = make();
  start(np);
  client->send(100'000);
  np.sim.run();
  EXPECT_EQ(server_received, 100'000u);
  EXPECT_EQ(client->bytes_acked(), 100'000u);
}

TEST_F(TcpFixture, ServerToClientTransferAfterAccept) {
  auto& np = make();
  start(np);
  np.sim.after(Time::ms(50), [&] { accepted->send(250'000); });
  np.sim.run();
  EXPECT_EQ(client_received, 250'000u);
}

TEST_F(TcpFixture, BidirectionalTransfer) {
  auto& np = make();
  start(np);
  client->send(40'000);
  np.sim.after(Time::ms(10), [&] { accepted->send(60'000); });
  np.sim.run();
  EXPECT_EQ(server_received, 40'000u);
  EXPECT_EQ(client_received, 60'000u);
}

TEST_F(TcpFixture, CleanCloseBothSides) {
  auto& np = make();
  start(np);
  bool client_closed = false;
  client->send(10'000);
  client->set_on_closed([&] { client_closed = true; });
  np.sim.after(Time::ms(5), [&] {
    client->close();
    accepted->close();
  });
  np.sim.run();
  EXPECT_TRUE(client->done());
  EXPECT_TRUE(accepted->done());
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(server_received, 10'000u);
}

TEST_F(TcpFixture, TransferSurvivesHeavyLoss) {
  auto& np = make(11, {}, 0.1);  // 10% loss each way
  start(np);
  client->send(200'000);
  np.sim.run_until(Time::sec(120));
  EXPECT_EQ(server_received, 200'000u);
  EXPECT_GT(client->stats().retransmissions, 0u);
}

TEST_F(TcpFixture, FastRetransmitTriggersBeforeTimeout) {
  auto& np = make(23, {}, 0.02);
  start(np);
  client->send(2'000'000);
  np.sim.run_until(Time::sec(300));
  EXPECT_EQ(server_received, 2'000'000u);
  EXPECT_GT(client->stats().fast_retransmits, 0u);
}

TEST_F(TcpFixture, HandshakeRetriesWhenSynLost) {
  auto& np = make(5);
  np.drop_to_b.set_loss(1.0);  // SYN always lost initially
  start(np);
  np.sim.after(Time::ms(1500), [&] { np.drop_to_b.set_loss(0.0); });
  np.sim.run_until(Time::sec(20));
  EXPECT_TRUE(client->established());
}

TEST_F(TcpFixture, SendGateHoldsTraffic) {
  auto& np = make();
  start(np);
  np.sim.run_until(Time::ms(100));  // establish
  accepted->set_send_gate(false);
  accepted->send(50'000);
  np.sim.run_until(Time::ms(500));
  EXPECT_EQ(client_received, 0u);
  accepted->set_send_gate(true);
  np.sim.run_until(Time::sec(10));
  EXPECT_EQ(client_received, 50'000u);
}

TEST_F(TcpFixture, ManualConsumeThrottlesSender) {
  auto& np = make();
  TcpOptions sopts;
  sopts.manual_consume = true;
  sopts.recv_window = 32 * 1024;
  start(np, {}, sopts);
  client->send(1'000'000);
  np.sim.run_until(Time::sec(5));
  // Server never consumes: at most one window (plus a probe) arrives.
  EXPECT_LE(server_received, 33'000u);
  EXPECT_GT(server_received, 0u);

  // Consuming reopens the window and the rest flows.
  std::function<void()> drain = [&] {
    if (accepted != nullptr && server_received > 0) {
      static std::uint64_t consumed = 0;
      if (server_received > consumed) {
        accepted->consume(server_received - consumed);
        consumed = server_received;
      }
    }
    if (server_received < 1'000'000) np.sim.after(Time::ms(50), drain);
  };
  np.sim.after(Time::zero(), drain);
  np.sim.run_until(Time::sec(300));
  EXPECT_EQ(server_received, 1'000'000u);
}

TEST_F(TcpFixture, EgressHookSeesEverySegment) {
  auto& np = make();
  start(np);
  std::uint64_t hook_count = 0;
  client->set_egress_hook([&](net::Packet&) { ++hook_count; });
  client->send(20'000);
  np.sim.run();
  EXPECT_EQ(hook_count, client->stats().segments_sent - 1);  // SYN preceded hook
}

TEST_F(TcpFixture, RttEstimateTracksPathDelay) {
  net::WiredParams wp;
  wp.propagation = Time::ms(20);
  auto& np = make(7, wp);
  start(np);
  client->send(500'000);
  np.sim.run();
  EXPECT_GE(client->srtt(), Time::ms(40));
  EXPECT_LE(client->srtt(), Time::ms(120));
}

TEST_F(TcpFixture, StatsCountBytesAndSegments) {
  auto& np = make();
  start(np);
  client->send(14'000);  // exactly 10 MSS
  np.sim.run();
  const TcpStats& st = client->stats();
  EXPECT_EQ(st.bytes_sent, 14'000u);
  EXPECT_GE(st.segments_sent, 11u);  // SYN + 10 data
  EXPECT_EQ(accepted->stats().bytes_delivered, 14'000u);
}

TEST_F(TcpFixture, DeferredRetransmissionWaitsForGate) {
  auto& np = make(31);
  TcpOptions sopts;
  sopts.defer_rtx_when_gated = true;
  start(np, {}, sopts);
  np.sim.run_until(Time::ms(100));
  ASSERT_TRUE(accepted->established());

  // Lose everything to the client, then gate off; the RTO must not fire
  // retransmissions while gated.
  np.drop_to_a.set_loss(1.0);
  accepted->send(5'000);
  np.sim.run_until(Time::ms(300));
  accepted->set_send_gate(false);
  np.drop_to_a.set_loss(0.0);
  const auto rtx_before = accepted->stats().retransmissions;
  np.sim.run_until(Time::sec(30));
  EXPECT_EQ(accepted->stats().retransmissions, rtx_before);
  accepted->set_send_gate(true);
  np.sim.run_until(Time::sec(60));
  EXPECT_EQ(client_received, 5'000u);
}

TEST_F(TcpFixture, CongestionWindowGrowsFromSlowStart) {
  auto& np = make();
  start(np);
  const auto initial_cwnd = client->cwnd();
  client->send(500'000);
  np.sim.run();
  EXPECT_GT(client->cwnd(), initial_cwnd);
}

TEST(TcpServer, ReapRemovesClosedConnections) {
  NodePair np;
  TcpServer server{np.b, 80};
  server.set_on_accept([](TcpConnection& c) {
    c.set_on_established([&c] { c.close(); });
  });
  auto c1 = tcp_connect(np.a, np.b.ip(), 80);
  c1->close();
  np.sim.run_until(Time::sec(10));
  EXPECT_EQ(server.connection_count(), 1u);
  server.reap_done();
  EXPECT_EQ(server.connection_count(), 0u);
}

TEST(TcpServer, AcceptsMultipleConcurrentConnections) {
  NodePair np;
  TcpServer server{np.b, 80};
  std::uint64_t total = 0;
  server.set_on_accept([&](TcpConnection& c) {
    c.set_on_deliver([&](std::uint64_t n) { total += n; });
  });
  auto c1 = tcp_connect(np.a, np.b.ip(), 80);
  auto c2 = tcp_connect(np.a, np.b.ip(), 80);
  auto c3 = tcp_connect(np.a, np.b.ip(), 80);
  c1->send(10'000);
  c2->send(20'000);
  c3->send(30'000);
  np.sim.run();
  EXPECT_EQ(server.connection_count(), 3u);
  EXPECT_EQ(total, 60'000u);
}

}  // namespace
}  // namespace pp::transport

#include <gtest/gtest.h>

#include "proxy/marker.hpp"

namespace pp::proxy {
namespace {

net::Packet data_segment(std::uint64_t data_seq, std::uint32_t len) {
  net::Packet p = net::make_packet();
  p.proto = net::Protocol::Tcp;
  p.payload = len;
  p.tcp.seq = data_seq + 1;  // wire coords: SYN occupies 0
  return p;
}

net::Packet fin_segment(std::uint64_t data_seq) {
  net::Packet p = data_segment(data_seq, 0);
  p.tcp.fin = true;
  return p;
}

TEST(BurstMarker, MarksSegmentCarryingArmedByte) {
  BurstMarker m;
  m.arm_after(3000);
  m.bytes_written(3000);
  auto s1 = data_segment(0, 1400);
  auto s2 = data_segment(1400, 1400);
  auto s3 = data_segment(2800, 200);
  m.on_egress(s1);
  m.on_egress(s2);
  m.on_egress(s3);
  EXPECT_FALSE(s1.marked);
  EXPECT_FALSE(s2.marked);
  EXPECT_TRUE(s3.marked);
  EXPECT_EQ(m.marks_emitted(), 1u);
  EXPECT_FALSE(m.armed());
}

TEST(BurstMarker, InvariantSAtLeastQ) {
  BurstMarker m;
  m.bytes_written(2800);
  auto s1 = data_segment(0, 1400);
  m.on_egress(s1);
  EXPECT_LE(m.sent(), m.written());
  auto s2 = data_segment(1400, 1400);
  m.on_egress(s2);
  EXPECT_EQ(m.sent(), m.written());
}

TEST(BurstMarker, RetransmissionDoesNotAdvanceQ) {
  BurstMarker m;
  m.bytes_written(2800);
  auto s1 = data_segment(0, 1400);
  m.on_egress(s1);
  const auto q_before = m.sent();
  auto rtx = data_segment(0, 1400);  // same bytes again
  m.on_egress(rtx);
  EXPECT_EQ(m.sent(), q_before);
  EXPECT_FALSE(rtx.marked);
}

TEST(BurstMarker, RetransmittedMarkedSegmentIsNotRemarked) {
  // The paper: if the marked packet is dropped and retransmitted, Q is not
  // incremented, so the retransmission carries no mark (the client recovers
  // via the next schedule instead).
  BurstMarker m;
  m.arm_after(1400);
  m.bytes_written(1400);
  auto seg = data_segment(0, 1400);
  m.on_egress(seg);
  EXPECT_TRUE(seg.marked);
  auto rtx = data_segment(0, 1400);
  m.on_egress(rtx);
  EXPECT_FALSE(rtx.marked);
  EXPECT_EQ(m.marks_emitted(), 1u);
}

TEST(BurstMarker, SecondBurstMarksAgain) {
  BurstMarker m;
  m.arm_after(1000);
  m.bytes_written(1000);
  auto s1 = data_segment(0, 1000);
  m.on_egress(s1);
  EXPECT_TRUE(s1.marked);
  m.arm_after(500);
  m.bytes_written(500);
  auto s2 = data_segment(1000, 500);
  m.on_egress(s2);
  EXPECT_TRUE(s2.marked);
  EXPECT_EQ(m.marks_emitted(), 2u);
}

TEST(BurstMarker, ArmNowMarksFirstSegmentReachingCurrentS) {
  BurstMarker m;
  m.bytes_written(2000);  // written earlier (previous slot, cwnd-limited)
  m.arm_now();
  auto s1 = data_segment(0, 1400);
  auto s2 = data_segment(1400, 600);
  m.on_egress(s1);
  m.on_egress(s2);
  EXPECT_FALSE(s1.marked);
  EXPECT_TRUE(s2.marked);
}

TEST(BurstMarker, UnarmedNeverMarks) {
  BurstMarker m;
  m.bytes_written(5000);
  for (std::uint64_t off = 0; off < 5000; off += 1000) {
    auto s = data_segment(off, 1000);
    m.on_egress(s);
    EXPECT_FALSE(s.marked);
  }
}

TEST(BurstMarker, SynAndPureAcksIgnored) {
  BurstMarker m;
  m.arm_after(0);
  net::Packet syn = net::make_packet();
  syn.proto = net::Protocol::Tcp;
  syn.tcp.syn = true;
  m.on_egress(syn);
  EXPECT_FALSE(syn.marked);
  net::Packet ack = data_segment(0, 0);
  m.on_egress(ack);
  EXPECT_FALSE(ack.marked);
}

TEST(BurstMarker, FinModeMarksTheFinNotTheData) {
  BurstMarker m;
  m.arm_after_with_fin(1400);
  m.bytes_written(1400);
  auto data = data_segment(0, 1400);
  m.on_egress(data);
  EXPECT_FALSE(data.marked) << "data must not steal the mark from the FIN";
  auto fin = fin_segment(1400);
  m.on_egress(fin);
  EXPECT_TRUE(fin.marked);
}

TEST(BurstMarker, FinModeWaitsForAllDataBeforeMarkingFin) {
  BurstMarker m;
  m.arm_after_with_fin(2800);
  m.bytes_written(2800);
  auto s1 = data_segment(0, 1400);
  m.on_egress(s1);
  // An early FIN (out-of-order emission) with data outstanding: no mark.
  auto early_fin = fin_segment(2800);
  // q (1400) < m (2800) -> not marked.
  m.on_egress(early_fin);
  EXPECT_FALSE(early_fin.marked);
  auto s2 = data_segment(1400, 1400);
  m.on_egress(s2);
  EXPECT_FALSE(s2.marked);
  auto fin = fin_segment(2800);
  m.on_egress(fin);
  EXPECT_TRUE(fin.marked);
}

TEST(BurstMarker, DisarmCancelsPendingMark) {
  BurstMarker m;
  m.arm_after(1000);
  m.disarm();
  m.bytes_written(1000);
  auto s = data_segment(0, 1000);
  m.on_egress(s);
  EXPECT_FALSE(s.marked);
}

TEST(BurstMarker, UdpPacketsIgnored) {
  BurstMarker m;
  m.arm_after(0);
  net::Packet udp = net::make_packet();
  udp.proto = net::Protocol::Udp;
  udp.payload = 500;
  m.on_egress(udp);
  EXPECT_FALSE(udp.marked);
  EXPECT_TRUE(m.armed());
}

// Property sweep: for any split of a burst into segments, exactly the final
// segment is marked.
class MarkerSplitSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MarkerSplitSweep, ExactlyLastSegmentMarked) {
  const std::uint32_t seg_size = GetParam();
  const std::uint64_t total = 10'000;
  BurstMarker m;
  m.arm_after(total);
  m.bytes_written(total);
  int marks = 0;
  bool last_marked = false;
  for (std::uint64_t off = 0; off < total; off += seg_size) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(seg_size, total - off));
    auto s = data_segment(off, len);
    m.on_egress(s);
    marks += s.marked;
    last_marked = s.marked;
  }
  EXPECT_EQ(marks, 1);
  EXPECT_TRUE(last_marked);
}

INSTANTIATE_TEST_SUITE_P(SegmentSizes, MarkerSplitSweep,
                         ::testing::Values(1u, 7u, 128u, 999u, 1400u, 1500u,
                                           4096u, 9999u, 10000u));

}  // namespace
}  // namespace pp::proxy

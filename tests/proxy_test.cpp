// Integration tests for the transparent proxy on a miniature testbed:
// real wired LAN, AP, wireless medium, and energy-aware clients.
#include <gtest/gtest.h>

#include <memory>

#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace pp::proxy {
namespace {

using sim::Time;

struct ProxyFixture : ::testing::Test {
  std::unique_ptr<exp::Testbed> make_bed(int clients,
                                         sim::Duration interval = Time::ms(100),
                                         ProxyMode mode = ProxyMode::Splice) {
    exp::TestbedParams tp;
    tp.num_clients = clients;
    tp.proxy.mode = mode;
    return std::make_unique<exp::Testbed>(
        tp, std::make_unique<FixedIntervalScheduler>(interval));
  }
};

TEST_F(ProxyFixture, CalibrationFitsMediumCostModel) {
  auto bed = make_bed(1);
  bed->start();
  const auto& est = bed->proxy().estimator();
  EXPECT_TRUE(est.fitted());
  // The fit must match the medium's actual airtime for a UDP packet.
  net::Packet p = net::make_packet();
  p.payload = 1000;
  p.dst = bed->client_ip(0);
  EXPECT_NEAR(est.packet_cost(1000).to_seconds(),
              bed->medium().airtime_of(p).to_seconds(), 1e-9);
}

TEST_F(ProxyFixture, SchedulesBroadcastEveryInterval) {
  auto bed = make_bed(2, Time::ms(100));
  bed->start(Time::ms(500));
  bed->run_until(Time::sec(2));
  // (2000 - 500) / 100 + 1 = 16 schedules.
  EXPECT_EQ(bed->proxy().stats().schedules_sent, 16u);
  ASSERT_NE(bed->proxy().last_schedule(), nullptr);
  EXPECT_EQ(bed->proxy().last_schedule()->interval, Time::ms(100));
}

TEST_F(ProxyFixture, UdpDownlinkIsBufferedAndBurst) {
  auto bed = make_bed(1, Time::ms(100));
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(100));
  // Send a datagram mid-interval; it must be held until the next burst.
  bed->sim().at(Time::ms(150), [&] {
    sock.send_to(bed->client_ip(0), 7100, 800);
  });
  bed->run_until(Time::ms(180));
  EXPECT_EQ(bed->proxy().buffered_bytes(bed->client_ip(0)), 800u);
  EXPECT_EQ(bed->client(0).traffic().bytes_received, 0u);
  bed->run_until(Time::ms(300));
  EXPECT_EQ(bed->proxy().buffered_bytes(bed->client_ip(0)), 0u);
  EXPECT_GE(bed->proxy().stats().udp_bytes_burst, 800u);
}

TEST_F(ProxyFixture, BurstEndsWithMarkedPacket) {
  auto bed = make_bed(1, Time::ms(100));
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(100));
  bed->sim().at(Time::ms(150), [&] {
    for (int i = 0; i < 3; ++i) sock.send_to(bed->client_ip(0), 7100, 500);
  });
  int marks = 0, datagrams = 0;
  bed->medium().add_sniffer([&](const net::SnifferRecord& r) {
    if (r.pkt.proto == net::Protocol::Udp && !r.pkt.is_broadcast() &&
        r.pkt.dst_port == 7100) {
      ++datagrams;
      marks += r.pkt.marked;
    }
  });
  bed->run_until(Time::ms(400));
  EXPECT_EQ(datagrams, 3);
  EXPECT_EQ(marks, 1);  // only the burst's final packet carries the mark
}

TEST_F(ProxyFixture, PerClientQueueCapDropsExcess) {
  exp::TestbedParams tp;
  tp.num_clients = 1;
  tp.proxy.queue_limit_bytes = 2000;
  exp::Testbed bed{tp, std::make_unique<FixedIntervalScheduler>(Time::sec(10))};
  net::Node& server = bed.add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed.start(Time::sec(9));  // no bursts for a long while
  bed.sim().at(Time::ms(100), [&] {
    for (int i = 0; i < 10; ++i) sock.send_to(bed.client_ip(0), 7100, 500);
  });
  bed.run_until(Time::sec(1));
  EXPECT_GT(bed.proxy().stats().queue_drops, 0u);
  EXPECT_LE(bed.proxy().buffered_bytes(bed.client_ip(0)), 2000u);
}

TEST_F(ProxyFixture, QueueDropAccountingMatchesMonitoringStation) {
  // Every datagram the server sends is either dropped at the proxy's
  // per-client cap or eventually aired — the monitoring station hears the
  // latter, so sent == aired + queue_drops once the queue drains.
  exp::TestbedParams tp;
  tp.num_clients = 1;
  tp.wireless.p_loss = 0;  // lossless air so the count is exact
  tp.proxy.queue_limit_bytes = 2000;
  exp::Testbed bed{tp, std::make_unique<FixedIntervalScheduler>(Time::sec(1))};
  net::Node& server = bed.add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed.start(Time::ms(500));
  constexpr int kSent = 10;
  bed.sim().at(Time::ms(100), [&] {
    for (int i = 0; i < kSent; ++i) sock.send_to(bed.client_ip(0), 7100, 500);
  });
  bed.run_until(Time::sec(3));
  ASSERT_EQ(bed.proxy().buffered_bytes(bed.client_ip(0)), 0u);  // drained

  std::uint64_t aired = 0;
  for (const auto& r : bed.monitor().buffer()) {
    if (r.proto == net::Protocol::Udp && !r.is_broadcast() &&
        r.dst_port == 7100) {
      ++aired;
    }
  }
  const std::uint64_t drops = bed.proxy().stats().queue_drops;
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(aired + drops, static_cast<std::uint64_t>(kSent));
  // 2000-byte cap on 500-byte datagrams: exactly 4 queued, 6 dropped.
  EXPECT_EQ(drops, 6u);

#if PP_OBS_ENABLED
  // The metrics registry and the drop timeline agree with ProxyStats.
  ASSERT_NE(bed.metrics(), nullptr);
  const auto* ctr = bed.metrics()->find_counter("proxy.queue_drops");
  ASSERT_NE(ctr, nullptr);
  EXPECT_EQ(ctr->value(), drops);
  std::uint64_t drop_events = 0;
  for (const auto& e : bed.timeline()->events()) {
    if (e.kind == obs::EventKind::Drop &&
        e.subject == bed.client_ip(0).raw()) {
      ++drop_events;
    }
  }
  EXPECT_EQ(drop_events, drops);
#endif
}

TEST_F(ProxyFixture, TcpSpliceEstablishesAndTransfers) {
  auto bed = make_bed(1, Time::ms(100));
  net::Node& server = bed->add_server("srv");
  transport::TcpServer tcp_server{server, 8000};
  std::uint64_t served = 0;
  tcp_server.set_on_accept([&](transport::TcpConnection& c) {
    c.set_on_deliver([&c, &served](std::uint64_t n) {
      if (served == 0) c.send(50'000);
      served += n;
    });
  });
  bed->start(Time::ms(100));

  std::uint64_t client_got = 0;
  std::unique_ptr<transport::TcpConnection> conn;
  bed->sim().at(Time::ms(200), [&] {
    conn = transport::tcp_connect(bed->client(0).node(), server.ip(), 8000);
    conn->set_on_established([&] { conn->send(100); });
    conn->set_on_deliver([&](std::uint64_t n) { client_got += n; });
  });
  bed->run_until(Time::sec(5));
  EXPECT_EQ(bed->proxy().stats().splices_created, 1u);
  EXPECT_EQ(served, 100u);
  EXPECT_EQ(client_got, 50'000u);
}

TEST_F(ProxyFixture, SpliceMasqueradesAddresses) {
  auto bed = make_bed(1, Time::ms(100));
  net::Node& server = bed->add_server("srv");
  transport::TcpServer tcp_server{server, 8000};
  transport::TcpConnection* accepted = nullptr;
  tcp_server.set_on_accept([&](transport::TcpConnection& c) { accepted = &c; });
  bed->start(Time::ms(100));
  std::unique_ptr<transport::TcpConnection> conn;
  bed->sim().at(Time::ms(200), [&] {
    conn = transport::tcp_connect(bed->client(0).node(), server.ip(), 8000);
  });
  bed->run_until(Time::sec(2));
  ASSERT_NE(accepted, nullptr);
  // The server believes it talks to the client directly...
  EXPECT_EQ(accepted->remote().ip, bed->client_ip(0));
  // ...and the client believes it talks to the server directly.
  EXPECT_EQ(conn->remote().ip, server.ip());
  EXPECT_TRUE(conn->established());
}

TEST_F(ProxyFixture, SpliceClosesAndReaps) {
  auto bed = make_bed(1, Time::ms(100));
  net::Node& server = bed->add_server("srv");
  transport::TcpServer tcp_server{server, 8000};
  tcp_server.set_on_accept([&](transport::TcpConnection& c) {
    auto done = std::make_shared<bool>(false);
    c.set_on_deliver([&c, done](std::uint64_t) {
      if (*done) return;
      *done = true;
      c.send(10'000);
      c.close();
    });
  });
  bed->start(Time::ms(100));
  std::unique_ptr<transport::TcpConnection> conn;
  bed->sim().at(Time::ms(200), [&] {
    conn = transport::tcp_connect(bed->client(0).node(), server.ip(), 8000);
    conn->set_on_established([&] { conn->send(100); });
    conn->set_on_remote_fin([&] { conn->close(); });
  });
  bed->run_until(Time::sec(10));
  EXPECT_EQ(bed->proxy().stats().splices_created, 1u);
  EXPECT_EQ(bed->proxy().stats().splices_closed, 1u);
  EXPECT_EQ(bed->proxy().splice_count(), 0u);
  EXPECT_TRUE(conn->done());
}

TEST_F(ProxyFixture, ServerSideRttExcludesClientBuffering) {
  // The double connection keeps the wired sender's RTT small even though
  // client delivery waits for bursts — the core argument for splicing.
  auto bed = make_bed(1, Time::ms(500));
  net::Node& server = bed->add_server("srv");
  transport::TcpServer tcp_server{server, 8000};
  transport::TcpConnection* accepted = nullptr;
  tcp_server.set_on_accept([&](transport::TcpConnection& c) {
    accepted = &c;
    c.set_on_deliver([&c](std::uint64_t) {
      static bool sent = false;
      if (!sent) {
        sent = true;
        c.send(200'000);
      }
    });
  });
  bed->start(Time::ms(100));
  std::unique_ptr<transport::TcpConnection> conn;
  bed->sim().at(Time::ms(200), [&] {
    conn = transport::tcp_connect(bed->client(0).node(), server.ip(), 8000);
    conn->set_on_established([&] { conn->send(100); });
  });
  bed->run_until(Time::sec(20));
  ASSERT_NE(accepted, nullptr);
  // Wired RTT is sub-millisecond; burst intervals are 500 ms.  Without the
  // splice the server's srtt would be dominated by the burst delay.
  EXPECT_LT(accepted->srtt(), Time::ms(50));
}

TEST_F(ProxyFixture, UplinkUdpPassesThroughUnbuffered) {
  auto bed = make_bed(1, Time::ms(500));
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket server_sock{server, 7000};
  sim::Time arrival;
  server_sock.set_receive_fn(
      [&](const net::Packet&) { arrival = bed->sim().now(); });
  bed->start(Time::ms(400));
  transport::UdpSocket client_sock{bed->client(0).node(), 7100};
  bed->sim().at(Time::ms(50), [&] {
    client_sock.send_to(server.ip(), 7000, 100);
  });
  bed->run_until(Time::ms(200));
  // Arrived within ~10 ms, long before any burst interval machinery.
  EXPECT_GT(arrival, Time::ms(50));
  EXPECT_LT(arrival, Time::ms(60));
}

TEST_F(ProxyFixture, PassthroughModeForwardsImmediately) {
  auto bed = make_bed(1, Time::ms(500), ProxyMode::Passthrough);
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(400));
  bed->sim().at(Time::ms(50), [&] {
    sock.send_to(bed->client_ip(0), 7100, 800);
  });
  bed->run_until(Time::ms(100));
  // Naive-style delivery: no buffering at all.  (The client daemon is still
  // running, but at t=50ms it has not yet seen a schedule, so it is awake.)
  EXPECT_EQ(bed->client(0).traffic().bytes_received, 800u);
  EXPECT_EQ(bed->proxy().stats().queued_packets, 0u);
}

TEST_F(ProxyFixture, BufferedPassthroughShapesWithoutSplicing) {
  auto bed = make_bed(1, Time::ms(100), ProxyMode::BufferedPassthrough);
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(100));
  bed->sim().at(Time::ms(150), [&] {
    sock.send_to(bed->client_ip(0), 7100, 900);
  });
  bed->run_until(Time::ms(180));
  EXPECT_EQ(bed->client(0).traffic().bytes_received, 0u);  // held
  bed->run_until(Time::ms(300));
  EXPECT_EQ(bed->proxy().stats().splices_created, 0u);
  EXPECT_GE(bed->client(0).traffic().bytes_received, 900u);
}

TEST_F(ProxyFixture, MultipleClientsGetDisjointSlots) {
  auto bed = make_bed(3, Time::ms(100));
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(100));
  bed->sim().at(Time::ms(120), [&] {
    for (int c = 0; c < 3; ++c)
      for (int i = 0; i < 2; ++i) sock.send_to(bed->client_ip(c), 7100, 1000);
  });
  // Inspect the schedule for the interval that carries the data (SRP at
  // 200 ms) before the next, empty one replaces it.
  bed->run_until(Time::ms(280));
  const auto sched = *bed->proxy().last_schedule();
  // Each client appears once, slots non-overlapping.
  ASSERT_EQ(sched.entries.size(), 3u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GE(sched.entries[i].rp_offset,
              sched.entries[i - 1].rp_offset + sched.entries[i - 1].duration);
  }
  bed->run_until(Time::ms(400));
  for (int c = 0; c < 3; ++c)
    EXPECT_EQ(bed->client(c).traffic().bytes_received, 2000u);
}

TEST_F(ProxyFixture, StopHaltsScheduleLoop) {
  auto bed = make_bed(1, Time::ms(100));
  bed->start(Time::ms(100));
  bed->run_until(Time::ms(450));
  const auto sent = bed->proxy().stats().schedules_sent;
  bed->proxy().stop();
  bed->run_until(Time::sec(2));
  EXPECT_EQ(bed->proxy().stats().schedules_sent, sent);
}

}  // namespace
}  // namespace pp::proxy

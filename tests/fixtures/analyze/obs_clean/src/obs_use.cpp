// Negative fixture: cross-file read resolves; dynamic names are skipped.
struct Reg {
  const int* find_counter(const char*) const { return nullptr; }
};
struct S { const char* c_str() const { return ""; } };
int fixture(const Reg& r, const S& name) {
  const int* ok = r.find_counter("proxy.bursts");
  const int* dynamic = r.find_counter(name.c_str());
  return (ok ? 1 : 0) + (dynamic ? 1 : 0);
}

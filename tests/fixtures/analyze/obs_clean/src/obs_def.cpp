// Registration half lives in a different file than the read half.
struct Reg {
  int* counter(const char*) { return nullptr; }
};
void fixture_def(Reg& r) { r.counter("proxy.bursts"); }

// Positive fixture: one read site names a metric nobody registers, and
// one reads a histogram name through find_counter (type mismatch).
struct Reg {
  int* counter(const char*) { return nullptr; }
  int* histogram(const char*) { return nullptr; }
  const int* find_counter(const char*) const { return nullptr; }
  const int* find_histogram(const char*) const { return nullptr; }
};
int fixture(Reg& r) {
  r.counter("proxy.bursts");
  r.histogram("proxy.burst_bytes");
  const int* ok = r.find_counter("proxy.bursts");
  const int* typo = r.find_counter("proxy.burts");
  const int* mismatch = r.find_counter("proxy.burst_bytes");
  return (ok ? 1 : 0) + (typo ? 1 : 0) + (mismatch ? 1 : 0);
}

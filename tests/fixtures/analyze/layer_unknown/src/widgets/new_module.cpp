// A module missing from the layer table must be declared, not guessed.
int fixture() { return 0; }

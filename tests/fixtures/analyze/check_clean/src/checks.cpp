// Negative fixture: comparisons, lambdas with default capture, shifts.
#define PP_CHECK(cond, comp) ((void)(cond), (void)(comp))
void fixture(int x, int y) {
  PP_CHECK(x == y, "fixture.eq");
  PP_CHECK(x != y && x >= 0, "fixture.ne");
  PP_CHECK([=] { return x <= y; }(), "fixture.lambda");
  PP_CHECK((x >> 1) < (y << 1), "fixture.shift");
}

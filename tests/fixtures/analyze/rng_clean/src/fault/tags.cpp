// Negative fixture: distinct tags, and an inline xor literal distinct too.
#include <cstdint>
namespace {
constexpr std::uint64_t kFaultStreamTag = 0xDEAD'BEEFULL;
constexpr std::uint64_t kPolicyStreamTag = 0xFEED'FACEULL;
}  // namespace
struct Rng { explicit Rng(std::uint64_t) {} };
Rng fixture_stream(std::uint64_t run_seed) {
  return Rng{run_seed ^ 0x1234ULL};
}
std::uint64_t fixture_tags() { return kFaultStreamTag + kPolicyStreamTag; }

#pragma once
// Not a hot root, but included from src/net — the closure makes it hot.
#include <functional>
inline int pulled_in() {
  std::function<int()> f = [] { return 1; };
  return f();
}

// Same constructs outside the closure: not included by sim/net, no finding.
#include <functional>
#include <string>
int fixture_cold() {
  std::function<int()> f = [] { return 2; };
  return f() + static_cast<int>(std::to_string(42).size());
}

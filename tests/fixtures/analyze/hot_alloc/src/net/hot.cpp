// Positive fixture: allocating constructs inside the hot root module.
#include <functional>
#include <string>
#include <vector>
#include "energy/pulled_in.hpp"
std::function<void()> g_cb;
int fixture(const std::vector<int>& in) {
  std::vector<int> grows;
  for (int v : in) grows.push_back(v);
  std::vector<int> reserved;
  reserved.reserve(in.size());
  for (int v : in) reserved.push_back(v);
  std::string label = std::to_string(in.size());
  std::string tagged = "n=" + label;
  return static_cast<int>(grows.size() + reserved.size() + tagged.size()) +
         pulled_in();
}

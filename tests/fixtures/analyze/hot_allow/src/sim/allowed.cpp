// Allow-comment fixture: the same violation, suppressed with justification.
#include <functional>
// pp-lint: allow(hot-path-alloc): wired once at setup, never per event
std::function<void()> g_cb;
// pp-lint: allow(hot-path-alloc)
std::function<void()> g_unjustified;

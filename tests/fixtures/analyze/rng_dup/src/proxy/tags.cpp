// Same literal value as src/fault/tags.cpp — streams would correlate.
#include <cstdint>
namespace {
constexpr std::uint64_t kPolicyStreamTag = 0xDEADBEEFull;
}  // namespace
std::uint64_t fixture_tags2(std::uint64_t run_seed) {
  struct Rng { explicit Rng(std::uint64_t) {} };
  Rng r{run_seed ^ kPolicyStreamTag};
  return kPolicyStreamTag;
}

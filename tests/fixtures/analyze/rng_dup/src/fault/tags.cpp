// Positive fixture: two stream tags share a value, plus a zero tag.
#include <cstdint>
namespace {
constexpr std::uint64_t kFaultStreamTag = 0xDEAD'BEEFULL;
constexpr std::uint64_t kZeroStreamTag = 0x0;
}  // namespace
std::uint64_t fixture_tags() { return kFaultStreamTag + kZeroStreamTag; }

// Same literal value as src/fault/churn_tags.cpp — the backoff jitter
// stream would replay the storm's draws.
#include <cstdint>
namespace {
constexpr std::uint64_t kAssocStreamTag = 0xC1108A17F1A55EEDull;
}  // namespace
std::uint64_t fixture_assoc_stream(std::uint64_t run_seed) {
  struct Rng { explicit Rng(std::uint64_t) {} };
  Rng r{run_seed ^ kAssocStreamTag};
  return kAssocStreamTag;
}

// Positive fixture: the churn-storm stream tag collides with the
// association backoff tag in src/client — flap timing and backoff jitter
// would correlate across the two subsystems.
#include <cstdint>
namespace {
constexpr std::uint64_t kChurnStreamTag = 0xC1108A17'F1A55EEDULL;
}  // namespace
std::uint64_t fixture_churn_stream(std::uint64_t run_seed) {
  struct Rng { explicit Rng(std::uint64_t) {} };
  Rng r{run_seed ^ kChurnStreamTag};
  return kChurnStreamTag;
}

// Negative fixture: the deterministic idioms the rules steer toward.
#include <map>
#include <memory>
struct Time { long long count_ns() const { return 0; } };
int fixture() {
  auto owned = std::make_unique<int>(1);
  Time sleep;
  std::map<int, int> table;
  int sum = *owned;
  for (const auto& kv : table) sum += kv.second;
  return sum + static_cast<int>(sleep.count_ns());
}

// Negative fixture: proxy -> net and proxy -> check are both allowed.
#include "check/api.hpp"
#include "net/api.hpp"
int fixture() { return net_api() + check_api(); }

#pragma once
inline int net_api() { return 1; }

#pragma once
inline int check_api() { return 2; }

// Positive fixture: three mutating checks among passing ones.
#define PP_CHECK(cond, comp) ((void)(cond), (void)(comp))
#define PP_CHECK_AT(cond, comp, t) ((void)(cond), (void)(comp), (void)(t))
void fixture(int x, int y) {
  PP_CHECK(x == y, "fixture.eq");
  PP_CHECK(x <= y, "fixture.le");
  PP_CHECK(++x > 0, "fixture.increment");
  PP_CHECK(x = y, "fixture.assign");
  PP_CHECK_AT(x += 2, "fixture.compound", 0);
}

// Positive fixture for the single-file families.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>
int fixture() {
  auto t = std::chrono::system_clock::now();
  std::mt19937 gen(42);
  int* leak = new int{static_cast<int>(gen())};
  int sleep_ms = 5;
  std::unordered_map<int, int> table;
  int sum = sleep_ms;
  for (const auto& kv : table) sum += kv.second;
  delete leak;
  return sum + static_cast<int>(t.time_since_epoch().count());
}

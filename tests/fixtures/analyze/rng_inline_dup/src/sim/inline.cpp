// Inline xor literal colliding with a named tag elsewhere in the file.
#include <cstdint>
namespace {
constexpr std::uint64_t kChainStreamTag = 0x42ULL;
}  // namespace
struct Rng { explicit Rng(std::uint64_t) {} };
Rng fixture_stream(std::uint64_t run_seed) {
  (void)kChainStreamTag;
  return Rng{run_seed ^ 0x42};
}

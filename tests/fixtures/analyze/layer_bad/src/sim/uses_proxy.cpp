// Positive fixture: the bottom layer reaching up into the proxy.
#include "proxy/api.hpp"
int fixture() { return proxy_api(); }

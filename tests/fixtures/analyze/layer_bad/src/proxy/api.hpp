#pragma once
inline int proxy_api() { return 1; }

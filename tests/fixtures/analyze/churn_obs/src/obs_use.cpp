// Positive fixture: a churn counter is registered under one name but a
// read site spells it with a transposition — the dashboard would silently
// show zero churn.
struct Reg {
  int* counter(const char*) { return nullptr; }
  int* histogram(const char*) { return nullptr; }
  const int* find_counter(const char*) const { return nullptr; }
  const int* find_histogram(const char*) const { return nullptr; }
};
int fixture(Reg& r) {
  r.counter("proxy.churn.joins");
  r.counter("proxy.churn.leaves");
  const int* ok = r.find_counter("proxy.churn.leaves");
  const int* typo = r.find_counter("proxy.churn.jions");
  return (ok ? 1 : 0) + (typo ? 1 : 0);
}

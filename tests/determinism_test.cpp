// Determinism harness tests: replay digests must be identical across runs
// and across unordered-container hash salts, and must be sensitive to any
// real divergence in what the simulation did.
//
// The CTest target digest_double_run exercises the same property across
// processes (two pp_digest invocations with different PP_HASH_SEED); these
// tests run the double-run in-process so a regression points directly at
// the scenario runner rather than the harness plumbing.
#include <gtest/gtest.h>

#include <cstdint>

#include "exp/builder.hpp"
#include "exp/digest.hpp"
#include "exp/scenario.hpp"
#include "net/addr.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::exp {
namespace {

using sim::Time;

// Restores the process-wide hash salt on scope exit so tests compose.
struct ScopedHashSalt {
  explicit ScopedHashSalt(std::uint64_t salt) : prev_(net::hash_salt()) {
    net::set_hash_salt(salt);
  }
  ~ScopedHashSalt() { net::set_hash_salt(prev_); }

 private:
  std::uint64_t prev_;
};

// -- Digest primitives -------------------------------------------------------------

TEST(DigestTest, TimelineDigestIsValueSensitive) {
  obs::Timeline a;
  obs::Timeline b;
  a.record(Time::ms(1), obs::EventKind::Drop, /*subject=*/1, /*value=*/10);
  b.record(Time::ms(1), obs::EventKind::Drop, /*subject=*/1, /*value=*/11);
  EXPECT_NE(timeline_digest(a), timeline_digest(b));
  EXPECT_EQ(timeline_digest(a), timeline_digest(a));
}

TEST(DigestTest, TimelineDigestIsOrderSensitive) {
  obs::Timeline a;
  obs::Timeline b;
  a.record(Time::ms(1), obs::EventKind::Sleep, 1);
  a.record(Time::ms(1), obs::EventKind::Sleep, 2);
  b.record(Time::ms(1), obs::EventKind::Sleep, 2);
  b.record(Time::ms(1), obs::EventKind::Sleep, 1);
  EXPECT_NE(timeline_digest(a), timeline_digest(b));
}

TEST(DigestTest, TimelineDigestIsTimeSensitive) {
  obs::Timeline a;
  obs::Timeline b;
  a.record(Time::ms(1), obs::EventKind::Wake, 1);
  b.record(Time::ms(2), obs::EventKind::Wake, 1);
  EXPECT_NE(timeline_digest(a), timeline_digest(b));
}

TEST(DigestTest, MetricsDigestIsSensitiveToCountersAndHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  const std::uint64_t empty = metrics_digest(a);
  a.counter("pkts")->inc(3);
  b.counter("pkts")->inc(4);
  EXPECT_NE(metrics_digest(a), empty);
  EXPECT_NE(metrics_digest(a), metrics_digest(b));
  a.counter("pkts")->inc();
  EXPECT_EQ(metrics_digest(a), metrics_digest(b));
  a.histogram("lat")->observe(5);
  EXPECT_NE(metrics_digest(a), metrics_digest(b));
}

// -- Hash-salt plumbing ------------------------------------------------------------

TEST(HashSaltTest, SaltActuallyChangesBucketHashes) {
  const net::FlowKey k{net::Ipv4Addr::octets(10, 0, 0, 1), 4000,
                       net::Ipv4Addr::octets(10, 0, 0, 2), 80,
                       net::Protocol::Tcp};
  ScopedHashSalt s1{1};
  const std::size_t h1 = net::FlowKeyHash{}(k);
  const std::size_t a1 = net::Ipv4AddrHash{}(k.src);
  net::set_hash_salt(99991);
  EXPECT_NE(net::FlowKeyHash{}(k), h1);
  EXPECT_NE(net::Ipv4AddrHash{}(k.src), a1);
}

TEST(HashSaltTest, ScopedSaltRestores) {
  const std::uint64_t before = net::hash_salt();
  { ScopedHashSalt s{12345}; EXPECT_EQ(net::hash_salt(), 12345u); }
  EXPECT_EQ(net::hash_salt(), before);
}

// -- End-to-end determinism --------------------------------------------------------

#if PP_OBS_ENABLED

// A short mixed scenario: video + web + ftp touches every subsystem the
// digest folds (schedules, bursts, PSM, TCP splices) in ~seconds of sim
// time.
ScenarioBuilder short_mixed_builder() {
  return ScenarioBuilder{}
      .roles({1, kRoleWeb, kRoleFtp})
      .policy(IntervalPolicy::Variable)
      .duration_s(12.0)
      .web_pages(3)
      .ftp_bytes(200'000);
}

ScenarioConfig short_mixed_config() { return short_mixed_builder().build(); }

TEST(DeterminismTest, SameConfigSameSaltSameDigest) {
  const ScenarioConfig cfg = short_mixed_config();
  ScopedHashSalt s{1};
  const std::uint64_t d1 = run_digest(cfg);
  const std::uint64_t d2 = run_digest(cfg);
  EXPECT_NE(d1, 0u);
  EXPECT_EQ(d1, d2);
}

// The tentpole property: bucket iteration order must never leak into
// simulation behaviour, so permuting every unordered container's layout
// via the hash salt must leave the replay digest untouched.
TEST(DeterminismTest, DigestInvariantUnderHashSalt) {
  const ScenarioConfig cfg = short_mixed_config();
  std::uint64_t d1 = 0;
  std::uint64_t d2 = 0;
  {
    ScopedHashSalt s{1};
    d1 = run_digest(cfg);
  }
  {
    ScopedHashSalt s{99991};
    d2 = run_digest(cfg);
  }
  EXPECT_NE(d1, 0u);
  EXPECT_EQ(d1, d2);
}

TEST(DeterminismTest, DigestIsSensitiveToConfig) {
  ScopedHashSalt s{1};
  ScenarioConfig a = short_mixed_config();
  ScenarioConfig b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(run_digest(a), run_digest(b));
}

// The acceptance property for the fault layer: a run with the full fault
// battery armed — Gilbert-Elliott bursty loss, every window kind, k-repeat
// and miss escalation — stays a pure function of its config.  The fault
// stream is named (derived from the run seed, never sim_.rng()), so the
// hash salt must not leak into any fault draw or recovery path.
ScenarioConfig faulted_config() {
  ScenarioBuilder b = short_mixed_builder();
  auto& f = b.fault_spec();
  f.ge.enabled = true;
  f.ge.p_good_bad = 0.02;
  f.ge.p_bad_good = 0.01;  // bad sojourns span multiple SRPs
  f.ge.loss_bad = 0.9;
  f.fade(testbed_client_ip(0), Time::ms(2500), Time::ms(1200));
  f.ap_stall(Time::ms(5000), Time::ms(700));
  f.link_flap(Time::ms(7000), Time::ms(400));
  f.proxy_pause(Time::ms(9000), Time::ms(600));
  return b.schedule_repeats(2).miss_escalation().build();
}

TEST(DeterminismTest, FaultedDigestInvariantUnderHashSalt) {
  const ScenarioConfig cfg = faulted_config();
  std::uint64_t d1 = 0;
  std::uint64_t d2 = 0;
  {
    ScopedHashSalt s{1};
    d1 = run_digest(cfg);
  }
  {
    ScopedHashSalt s{99991};
    d2 = run_digest(cfg);
  }
  EXPECT_NE(d1, 0u);
  EXPECT_EQ(d1, d2);
}

TEST(DeterminismTest, DigestIsSensitiveToFaultSpec) {
  ScopedHashSalt s{1};
  const ScenarioConfig a = short_mixed_config();
  ScenarioConfig b = a;
  b.fault.ge.enabled = true;
  b.fault.ge.p_good_bad = 0.05;
  b.fault.ge.p_bad_good = 0.05;
  b.fault.ge.loss_bad = 0.9;
  EXPECT_NE(run_digest(a), run_digest(b));
}

// -- Policy zoo determinism --------------------------------------------------------

// Each new policy on a bursty per-client channel: digests must survive the
// hash-salt permutation (channel streams are named, per-client chain state
// lives in ordered maps, policy layout order never follows bucket order).
ScenarioConfig channel_policy_config(IntervalPolicy p) {
  return ScenarioBuilder{}
      .roles({1, 1, 2})
      .policy(p)
      .duration_s(10.0)
      .wireless_p_loss(0.0)
      .channel(channel::ChannelSpec::ladder(3, 0.8))
      .build();
}

class PolicyDeterminismTest : public ::testing::TestWithParam<IntervalPolicy> {
};

TEST_P(PolicyDeterminismTest, DigestInvariantUnderHashSalt) {
  const ScenarioConfig cfg = channel_policy_config(GetParam());
  std::uint64_t d1 = 0;
  std::uint64_t d2 = 0;
  {
    ScopedHashSalt s{1};
    d1 = run_digest(cfg);
  }
  {
    ScopedHashSalt s{99991};
    d2 = run_digest(cfg);
  }
  EXPECT_NE(d1, 0u);
  EXPECT_EQ(d1, d2);
}

TEST_P(PolicyDeterminismTest, SameConfigSameDigest) {
  const ScenarioConfig cfg = channel_policy_config(GetParam());
  ScopedHashSalt s{1};
  EXPECT_EQ(run_digest(cfg), run_digest(cfg));
}

INSTANTIATE_TEST_SUITE_P(Zoo, PolicyDeterminismTest,
                         ::testing::Values(IntervalPolicy::LongestQueue500,
                                           IntervalPolicy::Opportunistic500,
                                           IntervalPolicy::Probabilistic500));

TEST(DeterminismTest, DigestIsSensitiveToChannelSpec) {
  ScopedHashSalt s{1};
  const ScenarioConfig a =
      channel_policy_config(IntervalPolicy::Opportunistic500);
  ScenarioConfig b = a;
  b.channel = channel::ChannelSpec::ladder(3, 0.3);  // calmer ladder
  EXPECT_NE(run_digest(a), run_digest(b));
}

// -- Pinned digests (reference toolchain) ------------------------------------------

// Bit-exact fingerprints of the example scenarios.  Re-pinned for the
// chunk-queue data path (salt 0005): batched burst emission draws one AP
// service delay per burst instead of per frame and lands a slot's frames
// inside one medium reservation, which legitimately moves delivery times
// and the RNG draw order.  Any further diff here means a change altered
// replay behaviour.  Values match tools/digest/pp_digest under
// PP_HASH_SEED=1 on the reference toolchain.
#if defined(__GLIBCXX__) && defined(__x86_64__)

ScenarioConfig digest_base() {
  ScenarioConfig cfg;
  cfg.duration_s = 20.0;
  cfg.web_pages = 4;
  cfg.ftp_bytes = 400'000;
  return cfg;
}

TEST(PinnedDigestTest, LegacyScenariosUnchanged) {
  ScopedHashSalt s{1};
  ScenarioConfig all_video = digest_base();
  all_video.roles = {1, 1, 2, 3};
  EXPECT_EQ(run_digest(all_video), 0xb878b7dd47327dbbull);

  ScenarioConfig mixed = digest_base();
  mixed.roles = {1, 2, kRoleWeb, kRoleFtp};
  mixed.policy = IntervalPolicy::Variable;
  EXPECT_EQ(run_digest(mixed), 0x9cbb5496c7ba2285ull);

  ScenarioConfig web = digest_base();
  web.roles = {kRoleWeb, kRoleWeb};
  web.policy = IntervalPolicy::Fixed100;
  EXPECT_EQ(run_digest(web), 0x4d758b7f3509f48aull);
}

TEST(PinnedDigestTest, FaultedScenariosUnchangedAcrossGeDelegation) {
  ScopedHashSalt s{1};
  // The full fault battery (faulted_config above).
  EXPECT_EQ(run_digest(faulted_config()), 0x0f80905f0979b14cull);

  // Pure Gilbert-Elliott corruption, no windows: the delegated
  // channel::ChannelModel must consume the exact legacy draw sequence.
  ScenarioConfig ge = digest_base();
  ge.roles = {1, 1, 2, kRoleWeb};
  ge.duration_s = 15.0;
  ge.web_pages = 3;
  ge.fault.ge.enabled = true;
  ge.fault.ge.p_good_bad = 0.01;
  ge.fault.ge.p_bad_good = 0.05;
  ge.fault.ge.loss_bad = 0.85;
  EXPECT_EQ(run_digest(ge), 0x4bde2b9a752abe5dull);
}

#endif  // __GLIBCXX__ && __x86_64__

#endif  // PP_OBS_ENABLED

}  // namespace
}  // namespace pp::exp

// Integration tests for the live energy-aware client: WNIC accounting,
// naive baseline, schedule-driven sleep, and loss bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"
#include "transport/udp.hpp"

namespace pp::client {
namespace {

using sim::Time;

std::unique_ptr<exp::Testbed> make_bed(int clients, ClientParams cp = {},
                                       double p_loss = 0.0) {
  exp::TestbedParams tp;
  tp.num_clients = clients;
  tp.client = cp;
  tp.wireless.p_loss = p_loss;
  return std::make_unique<exp::Testbed>(
      tp, std::make_unique<proxy::FixedIntervalScheduler>(Time::ms(100)));
}

TEST(EnergyAwareClient, IdleClientSleepsBetweenSchedules) {
  auto bed = make_bed(1);
  bed->start(Time::ms(100));
  bed->run_until(Time::sec(10));
  const auto& acc = bed->client(0).accountant();
  // No traffic: the client should spend the vast majority asleep.
  const double saved = bed->client(0).energy_saved_fraction(Time::sec(10));
  EXPECT_GT(saved, 0.75);
  EXPECT_GT(acc.wake_transitions(), 50u);  // woke for ~99 schedules
}

TEST(EnergyAwareClient, NaiveClientNeverSleeps) {
  ClientParams cp;
  cp.naive = true;
  auto bed = make_bed(1, cp);
  bed->start(Time::ms(100));
  bed->run_until(Time::sec(5));
  EXPECT_EQ(bed->client(0).accountant().wake_transitions(), 0u);
  EXPECT_NEAR(bed->client(0).energy_saved_fraction(Time::sec(5)), 0.0, 0.02);
  EXPECT_TRUE(bed->client(0).listening());
}

TEST(EnergyAwareClient, EnergyNeverExceedsNaive) {
  auto bed = make_bed(2);
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(100));
  for (int t = 150; t < 5000; t += 120) {
    bed->sim().at(Time::ms(t), [&, t] {
      sock.send_to(bed->client_ip(t % 2), 7100, 700);
    });
  }
  bed->run_until(Time::sec(6));
  for (int i = 0; i < 2; ++i) {
    EXPECT_LT(bed->client(i).energy_mj(Time::sec(6)),
              bed->client(i).naive_energy_mj(Time::sec(6)));
  }
}

TEST(EnergyAwareClient, ReceiveAirtimeAccountedOnDelivery) {
  auto bed = make_bed(1);
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed->start(Time::ms(100));
  bed->sim().at(Time::ms(150), [&] {
    sock.send_to(bed->client_ip(0), 7100, 1400);
  });
  bed->run_until(Time::ms(400));
  const auto& tr = bed->client(0).traffic();
  EXPECT_EQ(tr.packets_received, 1u);
  EXPECT_GT(tr.receive_airtime, Time::ms(2));  // ~2.8 ms at 4 Mb/s
}

TEST(EnergyAwareClient, TransmitAirtimeAccountedOnUplink) {
  auto bed = make_bed(1);
  net::Node& server = bed->add_server("srv");
  transport::UdpSocket server_sock{server, 7000};
  bed->start(Time::ms(100));
  transport::UdpSocket client_sock{bed->client(0).node(), 7100};
  bed->sim().at(Time::ms(150), [&] {
    client_sock.send_to(server.ip(), 7000, 500);
  });
  bed->run_until(Time::ms(300));
  EXPECT_GT(bed->client(0).traffic().transmit_airtime, Time::ms(1));
}

TEST(EnergyAwareClient, MissedPacketsCountedWhileAsleep) {
  // Disable the schedule system entirely: proxy in passthrough forwards
  // immediately, client daemon sleeps after empty schedules, so a
  // mid-interval datagram finds the radio off.
  exp::TestbedParams tp;
  tp.num_clients = 1;
  tp.proxy.mode = proxy::ProxyMode::Passthrough;
  exp::Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(
                           Time::ms(500))};
  net::Node& server = bed.add_server("srv");
  transport::UdpSocket sock{server, 7000};
  bed.start(Time::ms(100));
  bed.sim().at(Time::ms(850), [&] {  // mid-interval, client asleep
    sock.send_to(bed.client_ip(0), 7100, 900);
  });
  bed.run_until(Time::sec(2));
  EXPECT_EQ(bed.client(0).traffic().packets_missed, 1u);
  EXPECT_GT(bed.client(0).loss_fraction(), 0.99);
}

TEST(EnergyAwareClient, BroadcastMissesTrackedSeparately) {
  auto bed = make_bed(1);
  bed->start(Time::ms(100));
  bed->run_until(Time::sec(5));
  const auto& tr = bed->client(0).traffic();
  // Schedules the client slept through (e.g. during min-sleep windows)
  // are broadcast misses, not data loss.
  EXPECT_EQ(tr.packets_missed, 0u);
  EXPECT_EQ(bed->client(0).loss_fraction(), 0.0);
}

TEST(EnergyAwareClient, SavingsImproveWithLongerIntervals) {
  double saved[2];
  int k = 0;
  for (auto interval : {Time::ms(100), Time::ms(500)}) {
    exp::TestbedParams tp;
    tp.num_clients = 1;
    exp::Testbed bed{
        tp, std::make_unique<proxy::FixedIntervalScheduler>(interval)};
    bed.start(Time::ms(100));
    bed.run_until(Time::sec(20));
    saved[k++] = bed.client(0).energy_saved_fraction(Time::sec(20));
  }
  EXPECT_GT(saved[1], saved[0]);
}

TEST(EnergyAwareClient, WakePenaltyScalesWithTransitions) {
  auto bed100 = make_bed(1);
  bed100->start(Time::ms(100));
  bed100->run_until(Time::sec(20));
  const auto wakes = bed100->client(0).accountant().wake_transitions();
  // ~199 schedule wakes in 20 s at 100 ms intervals.
  EXPECT_GT(wakes, 150u);
  EXPECT_LT(wakes, 220u);
  EXPECT_NEAR(bed100->client(0).accountant().wake_penalty_mj(),
              static_cast<double>(wakes) * 1319.0 * 0.002, 1e-6);
}

TEST(EnergyAwareClient, LossFractionZeroWithoutTraffic) {
  auto bed = make_bed(1);
  bed->start(Time::ms(100));
  bed->run_until(Time::sec(1));
  EXPECT_EQ(bed->client(0).loss_fraction(), 0.0);
}

}  // namespace
}  // namespace pp::client

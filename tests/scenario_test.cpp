// End-to-end scenario tests: topology assembly, determinism, and the
// paper's qualitative orderings as executable invariants.
#include <gtest/gtest.h>

#include <functional>

#include "exp/builder.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "exp/testbed.hpp"
#include "proxy/scheduler.hpp"

namespace pp::exp {
namespace {

using sim::Time;

ScenarioBuilder small_video(IntervalPolicy pol, int fidelity, int n = 3,
                            std::uint64_t seed = 17) {
  return ScenarioBuilder{}
      .video(n, fidelity)
      .policy(pol)
      .seed(seed)
      .duration_s(60.0);
}

TEST(Testbed, ClientAddressingIsStable) {
  EXPECT_EQ(testbed_client_ip(0).str(), "172.16.0.1");
  EXPECT_EQ(testbed_client_ip(9).str(), "172.16.0.10");
}

TEST(Testbed, ServersGetSequentialAddresses) {
  TestbedParams tp;
  tp.num_clients = 1;
  Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(Time::ms(100))};
  EXPECT_EQ(bed.add_server("a").ip().str(), "10.0.0.1");
  EXPECT_EQ(bed.add_server("b").ip().str(), "10.0.0.2");
}

TEST(Testbed, AddServerAfterStartThrows) {
  TestbedParams tp;
  tp.num_clients = 1;
  Testbed bed{tp, std::make_unique<proxy::FixedIntervalScheduler>(Time::ms(100))};
  bed.start();
  EXPECT_THROW(bed.add_server("late"), std::logic_error);
}

TEST(Scenario, RoleNames) {
  EXPECT_EQ(role_name(0), "56K");
  EXPECT_EQ(role_name(3), "512K");
  EXPECT_EQ(role_name(kRoleWeb), "TCP/web");
  EXPECT_EQ(role_name(kRoleFtp), "TCP/ftp");
}

TEST(Scenario, DeterministicAcrossRuns) {
  const auto cfg = small_video(IntervalPolicy::Fixed500, 0).build();
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.clients[i].saved_pct, b.clients[i].saved_pct);
    EXPECT_EQ(a.clients[i].packets_received, b.clients[i].packets_received);
    EXPECT_EQ(a.clients[i].bytes_received, b.clients[i].bytes_received);
  }
  EXPECT_EQ(a.proxy_stats.schedules_sent, b.proxy_stats.schedules_sent);
}

TEST(Scenario, SeedChangesOutcomeDetails) {
  const auto c1 = small_video(IntervalPolicy::Fixed500, 0, 3, 17).build();
  const auto c2 = small_video(IntervalPolicy::Fixed500, 0, 3, 18).build();
  const auto a = run_scenario(c1);
  const auto b = run_scenario(c2);
  // Byte totals are normalized to the effective bitrate, so compare exact
  // energy: different seeds produce different jitter and VBR patterns.
  bool differ = false;
  for (std::size_t i = 0; i < a.clients.size(); ++i)
    differ |= a.clients[i].energy_mj != b.clients[i].energy_mj;
  EXPECT_TRUE(differ);
}

TEST(Scenario, VideoClientsSaveSubstantialEnergy) {
  const auto res =
      run_scenario(small_video(IntervalPolicy::Fixed500, 0).build());
  for (const auto& c : res.clients) {
    EXPECT_GT(c.saved_pct, 60.0);
    EXPECT_LT(c.saved_pct, 90.0);  // cannot beat the sleep/idle ratio
    EXPECT_LT(c.loss_pct, 5.0);
    EXPECT_GT(c.bytes_received, 100'000u);
  }
}

TEST(Scenario, FiveHundredBeatsOneHundredMs) {
  // The paper's core interval result: 100 ms wakes the WNIC five times as
  // often, so 500 ms saves more.
  const auto r500 =
      run_scenario(small_video(IntervalPolicy::Fixed500, 0).build());
  const auto r100 =
      run_scenario(small_video(IntervalPolicy::Fixed100, 0).build());
  EXPECT_GT(summarize_all(r500.clients).avg,
            summarize_all(r100.clients).avg + 3.0);
}

TEST(Scenario, LowerFidelitySavesMore) {
  const auto r56 =
      run_scenario(small_video(IntervalPolicy::Fixed500, 0, 5).build());
  const auto r512 =
      run_scenario(small_video(IntervalPolicy::Fixed500, 3, 5).build());
  EXPECT_GT(summarize_all(r56.clients).avg, summarize_all(r512.clients).avg);
}

TEST(Scenario, VariableIntervalBetweenFixedOnes) {
  const auto rv =
      run_scenario(small_video(IntervalPolicy::Variable, 3, 5).build());
  const auto r100 =
      run_scenario(small_video(IntervalPolicy::Fixed100, 3, 5).build());
  const auto r500 =
      run_scenario(small_video(IntervalPolicy::Fixed500, 3, 5).build());
  const double v = summarize_all(rv.clients).avg;
  EXPECT_GE(v, summarize_all(r100.clients).avg - 1.0);
  EXPECT_LE(v, summarize_all(r500.clients).avg + 1.0);
}

TEST(Scenario, MixedTrafficBothGroupsSave) {
  const auto cfg = ScenarioBuilder{}
                       .video(3, 0)
                       .web(2)
                       .policy(IntervalPolicy::Fixed500)
                       .seed(21)
                       .duration_s(60.0)
                       .build();
  const auto res = run_scenario(cfg);
  const auto v = summarize_video(res.clients);
  const auto t = summarize_tcp(res.clients);
  EXPECT_EQ(v.n, 3);
  EXPECT_EQ(t.n, 2);
  EXPECT_GT(v.avg, 40.0);
  EXPECT_GT(t.avg, 30.0);
}

TEST(Scenario, StaticScheduleWorksForIdenticalStreams) {
  const auto res =
      run_scenario(small_video(IntervalPolicy::StaticEqual100, 0).build());
  // 60 s at 100 ms intervals = ~600 broadcasts sent.
  EXPECT_GT(res.proxy_stats.schedules_sent, 550u);
  std::uint64_t heard = 0;
  for (const auto& c : res.clients) {
    EXPECT_GT(c.saved_pct, 55.0);
    heard += c.schedules_received;
  }
  // Static/reuse: clients do not wake for schedules.  A client whose RP
  // abuts the SRP overhears broadcasts anyway, but on average clients hear
  // well under half of them (a dynamic client hears nearly all).
  EXPECT_LT(heard, res.proxy_stats.schedules_sent *
                       res.clients.size() / 2);
}

TEST(Scenario, SlottedStaticRunsWithBothKinds) {
  const auto cfg = ScenarioBuilder{}
                       .video(3, 0)
                       .web(1)
                       .policy(IntervalPolicy::SlottedStatic500)
                       .slotted_tcp_weight(0.33)
                       .seed(23)
                       .duration_s(60.0)
                       .build();
  const auto res = run_scenario(cfg);
  EXPECT_GT(summarize_video(res.clients).avg, 20.0);
}

TEST(Scenario, SlottedStaticRequiresBothKinds) {
  // Raw aggregate on purpose: run_scenario has its own validation for
  // configs that bypass the builder, and this pins that path.
  ScenarioConfig cfg;
  cfg.roles = {0, 0};
  cfg.policy = IntervalPolicy::SlottedStatic500;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  // The builder rejects the same nonsense at build() time.
  EXPECT_THROW(ScenarioBuilder{}
                   .video(2, 0)
                   .policy(IntervalPolicy::SlottedStatic500)
                   .build(),
               std::invalid_argument);
}

TEST(Scenario, FtpDownloadCompletesThroughProxy) {
  const auto cfg = ScenarioBuilder{}
                       .ftp()
                       .policy(IntervalPolicy::Fixed500)
                       .ftp_bytes(1'000'000)
                       .seed(29)
                       .duration_s(100.0)
                       .build();
  const auto res = run_scenario(cfg);
  EXPECT_GT(res.clients[0].ftp_seconds, 0.0);
  EXPECT_EQ(res.clients[0].app_bytes, 1'000'000u);
}

TEST(Scenario, KeepTraceCapturesFrames) {
  const auto cfg =
      small_video(IntervalPolicy::Fixed500, 0, 1).keep_trace().build();
  const auto res = run_scenario(cfg);
  EXPECT_GT(res.trace.size(), 100u);
}

TEST(Scenario, WirelessOverrideApplies) {
  net::WirelessParams wp;
  wp.p_loss = 0.3;  // very lossy medium
  const auto cfg =
      small_video(IntervalPolicy::Fixed500, 0, 1).wireless(wp).build();
  const auto res = run_scenario(cfg);
  EXPECT_GT(res.clients[0].loss_pct, 5.0);
}

TEST(Scenario, PassthroughModeBreaksTheSleepContract) {
  // In passthrough mode the proxy still broadcasts (empty) schedules, so a
  // schedule-following client sleeps — but its data arrives unshaped, so
  // it misses most of it.  This is the ablation showing that buffering is
  // what makes sleeping safe.
  const auto cfg = small_video(IntervalPolicy::Fixed500, 0, 1)
                       .proxy_mode(proxy::ProxyMode::Passthrough)
                       .build();
  const auto res = run_scenario(cfg);
  EXPECT_GT(res.clients[0].loss_pct, 30.0);
}

TEST(Summaries, MinMaxAvg) {
  std::vector<ClientResult> rs(3);
  rs[0].saved_pct = 10;
  rs[1].saved_pct = 20;
  rs[2].saved_pct = 60;
  const auto s = summarize_all(rs);
  EXPECT_EQ(s.n, 3);
  EXPECT_DOUBLE_EQ(s.avg, 30.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 60.0);
}

TEST(Summaries, RoleFilters) {
  std::vector<ClientResult> rs(2);
  rs[0].role = 0;
  rs[0].saved_pct = 80;
  rs[1].role = kRoleWeb;
  rs[1].saved_pct = 60;
  EXPECT_DOUBLE_EQ(summarize_video(rs).avg, 80.0);
  EXPECT_DOUBLE_EQ(summarize_tcp(rs).avg, 60.0);
}

TEST(ParallelRunner, MatchesSequentialResults) {
  std::vector<ScenarioConfig> cfgs{
      small_video(IntervalPolicy::Fixed500, 0, 2).build(),
      small_video(IntervalPolicy::Fixed100, 0, 2).build(),
  };
  std::vector<std::function<ScenarioResult()>> tasks;
  for (const auto& c : cfgs)
    tasks.emplace_back([c] { return run_scenario(c); });
  const auto par = run_parallel(tasks, 2);
  ASSERT_EQ(par.size(), 2u);
  const auto seq0 = run_scenario(cfgs[0]);
  EXPECT_DOUBLE_EQ(summarize_all(par[0].clients).avg,
                   summarize_all(seq0.clients).avg);
}

TEST(ParallelRunner, HandlesManyTasksWithFewThreads) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 20; ++i) tasks.emplace_back([i] { return i * i; });
  const auto out = run_parallel(tasks, 3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace pp::exp

// Self-tests for the pp_analyze / pp_lint rule families.
//
// Each rule runs against small positive/negative fixture trees under
// tests/fixtures/analyze/ (PP_ANALYZE_FIXTURES points there).  Fixture
// trees mirror the project layout (src/<module>/...), so the project
// rules see the same shape they see in the real repo.  The positive
// fixtures double as the CI injection check: if a rule stops firing on
// its fixture, this suite fails tier-1.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/index.hpp"
#include "analyze/rules.hpp"

namespace {

using pp::analyze::apply_allow_comments;
using pp::analyze::apply_baseline;
using pp::analyze::BaselineEntry;
using pp::analyze::Finding;
using pp::analyze::finding_line_text;
using pp::analyze::ProjectIndex;

ProjectIndex load_fixture(const std::string& name) {
  return ProjectIndex::load(std::string{PP_ANALYZE_FIXTURES} + "/" + name,
                            {"src", "bench", "examples", "tests"});
}

int count_rule(const std::vector<Finding>& findings,
               const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool has_finding(const std::vector<Finding>& findings,
                 const std::string& rule, const std::string& file_suffix) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file.size() >= file_suffix.size() &&
           f.file.compare(f.file.size() - file_suffix.size(),
                          file_suffix.size(), file_suffix) == 0;
  });
}

// -- rng-stream-unique ------------------------------------------------------

TEST(RngStreamUnique, FlagsDuplicateTagsAcrossFiles) {
  const ProjectIndex idx = load_fixture("rng_dup");
  std::vector<Finding> out;
  pp::analyze::rule_rng_stream_unique(idx, out);
  // Both sites of the duplicated value, plus the zero tag.
  EXPECT_EQ(count_rule(out, "rng-stream-unique"), 3);
  EXPECT_TRUE(has_finding(out, "rng-stream-unique", "src/fault/tags.cpp"));
  EXPECT_TRUE(has_finding(out, "rng-stream-unique", "src/proxy/tags.cpp"));
}

TEST(RngStreamUnique, FlagsInlineLiteralCollidingWithTag) {
  const ProjectIndex idx = load_fixture("rng_inline_dup");
  std::vector<Finding> out;
  pp::analyze::rule_rng_stream_unique(idx, out);
  EXPECT_EQ(count_rule(out, "rng-stream-unique"), 2);
}

TEST(RngStreamUnique, FlagsChurnBackoffTagCollision) {
  const ProjectIndex idx = load_fixture("churn_rng");
  std::vector<Finding> out;
  pp::analyze::rule_rng_stream_unique(idx, out);
  // Both sites of the shared churn/backoff tag value.
  EXPECT_EQ(count_rule(out, "rng-stream-unique"), 2);
  EXPECT_TRUE(
      has_finding(out, "rng-stream-unique", "src/fault/churn_tags.cpp"));
  EXPECT_TRUE(
      has_finding(out, "rng-stream-unique", "src/client/assoc_tags.cpp"));
}

TEST(RngStreamUnique, CleanOnDistinctTags) {
  const ProjectIndex idx = load_fixture("rng_clean");
  std::vector<Finding> out;
  pp::analyze::rule_rng_stream_unique(idx, out);
  EXPECT_TRUE(out.empty());
}

// -- obs-name-consistency ---------------------------------------------------

TEST(ObsNameConsistency, FlagsTypoAndKindMismatch) {
  const ProjectIndex idx = load_fixture("obs_typo");
  std::vector<Finding> out;
  pp::analyze::rule_obs_name_consistency(idx, out);
  EXPECT_EQ(count_rule(out, "obs-name-consistency"), 2);
  // The typo'd name and the histogram name read through find_counter.
  bool saw_typo = false, saw_mismatch = false;
  for (const Finding& f : out) {
    if (f.message.find("proxy.burts") != std::string::npos) saw_typo = true;
    if (f.message.find("proxy.burst_bytes") != std::string::npos)
      saw_mismatch = true;
  }
  EXPECT_TRUE(saw_typo);
  EXPECT_TRUE(saw_mismatch);
}

TEST(ObsNameConsistency, FlagsChurnCounterTypo) {
  const ProjectIndex idx = load_fixture("churn_obs");
  std::vector<Finding> out;
  pp::analyze::rule_obs_name_consistency(idx, out);
  ASSERT_EQ(count_rule(out, "obs-name-consistency"), 1);
  EXPECT_NE(out[0].message.find("proxy.churn.jions"), std::string::npos);
}

TEST(ObsNameConsistency, ResolvesAcrossFilesAndSkipsDynamicNames) {
  const ProjectIndex idx = load_fixture("obs_clean");
  std::vector<Finding> out;
  pp::analyze::rule_obs_name_consistency(idx, out);
  EXPECT_TRUE(out.empty());
}

// -- check-side-effect ------------------------------------------------------

TEST(CheckSideEffect, FlagsMutationsInsideChecks) {
  const ProjectIndex idx = load_fixture("check_mut");
  std::vector<Finding> out;
  for (const auto& f : idx.files()) {
    pp::analyze::rule_check_side_effect(f, out);
  }
  // ++x, x = y, x += 2 — one finding each.
  EXPECT_EQ(count_rule(out, "check-side-effect"), 3);
}

TEST(CheckSideEffect, AcceptsComparisonsLambdasAndShifts) {
  const ProjectIndex idx = load_fixture("check_clean");
  std::vector<Finding> out;
  for (const auto& f : idx.files()) {
    pp::analyze::rule_check_side_effect(f, out);
  }
  EXPECT_TRUE(out.empty());
}

// -- layer-dag --------------------------------------------------------------

TEST(LayerDag, FlagsUpwardInclude) {
  const ProjectIndex idx = load_fixture("layer_bad");
  std::vector<Finding> out;
  pp::analyze::rule_layer_dag(idx, out);
  EXPECT_EQ(count_rule(out, "layer-dag"), 1);
  EXPECT_TRUE(has_finding(out, "layer-dag", "src/sim/uses_proxy.cpp"));
}

TEST(LayerDag, AcceptsDeclaredAndFoundationEdges) {
  const ProjectIndex idx = load_fixture("layer_clean");
  std::vector<Finding> out;
  pp::analyze::rule_layer_dag(idx, out);
  EXPECT_TRUE(out.empty());
}

TEST(LayerDag, FlagsModuleMissingFromTable) {
  const ProjectIndex idx = load_fixture("layer_unknown");
  std::vector<Finding> out;
  pp::analyze::rule_layer_dag(idx, out);
  EXPECT_EQ(count_rule(out, "layer-dag"), 1);
  EXPECT_TRUE(
      has_finding(out, "layer-dag", "src/widgets/new_module.cpp"));
}

// -- hot-path-alloc ---------------------------------------------------------

TEST(HotPathAlloc, FlagsAllocatingConstructsInHotClosure) {
  const ProjectIndex idx = load_fixture("hot_alloc");
  std::vector<Finding> out;
  pp::analyze::rule_hot_path_alloc(idx, out);
  // hot.cpp: std::function, unreserved push_back loop, std::to_string,
  // "literal" + concat.  The reserved loop is clean.
  EXPECT_EQ(count_rule(out, "hot-path-alloc"), 5);
  EXPECT_TRUE(has_finding(out, "hot-path-alloc", "src/net/hot.cpp"));
  // The closure reaches a header outside the root modules...
  EXPECT_TRUE(
      has_finding(out, "hot-path-alloc", "src/energy/pulled_in.hpp"));
  // ...but not a file nobody on the hot path includes.
  EXPECT_FALSE(has_finding(out, "hot-path-alloc", "src/energy/cold.cpp"));
}

TEST(HotPathAlloc, HotClosureFollowsIncludes) {
  const ProjectIndex idx = load_fixture("hot_alloc");
  const auto hot = idx.hot_closure({"sim", "net"});
  std::vector<std::string> rels;
  rels.reserve(hot.size());
  for (const std::size_t fi : hot) rels.push_back(idx.files()[fi].rel);
  EXPECT_NE(std::find(rels.begin(), rels.end(), "src/net/hot.cpp"),
            rels.end());
  EXPECT_NE(std::find(rels.begin(), rels.end(),
                      "src/energy/pulled_in.hpp"),
            rels.end());
  EXPECT_EQ(std::find(rels.begin(), rels.end(), "src/energy/cold.cpp"),
            rels.end());
}

// -- allow comments and baseline --------------------------------------------

TEST(Suppression, AllowCommentNeedsJustification) {
  const ProjectIndex idx = load_fixture("hot_allow");
  std::vector<Finding> out;
  pp::analyze::rule_hot_path_alloc(idx, out);
  ASSERT_EQ(out.size(), 2u);
  apply_allow_comments(idx, out);
  // The justified allow suppresses; the bare allow() does not.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(
      finding_line_text(idx, out[0]).find("g_unjustified"),
      std::string::npos);
}

TEST(Suppression, BaselineConsumesMatchingFindingsAndReportsStale) {
  const ProjectIndex idx = load_fixture("hot_alloc");
  std::vector<Finding> out;
  pp::analyze::rule_hot_path_alloc(idx, out);
  ASSERT_EQ(out.size(), 5u);

  std::vector<BaselineEntry> baseline;
  for (const Finding& f : out) {
    baseline.push_back({f.rule, f.file, finding_line_text(idx, f), false});
  }
  baseline.push_back(
      {"hot-path-alloc", "src/net/gone.cpp", "stale line", false});

  const auto stale = apply_baseline(idx, baseline, out);
  EXPECT_TRUE(out.empty());  // everything baselined
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "src/net/gone.cpp");
}

TEST(Suppression, BaselineMatchesContentNotLineNumber) {
  const ProjectIndex idx = load_fixture("hot_alloc");
  std::vector<Finding> out;
  pp::analyze::rule_hot_path_alloc(idx, out);
  ASSERT_FALSE(out.empty());
  // An entry keyed on the same content matches even though the recorded
  // line number in the finding is irrelevant to the entry.
  Finding moved = out[0];
  std::vector<BaselineEntry> baseline{
      {moved.rule, moved.file, finding_line_text(idx, moved), false}};
  std::vector<Finding> just_one{moved};
  const auto stale = apply_baseline(idx, baseline, just_one);
  EXPECT_TRUE(just_one.empty());
  EXPECT_TRUE(stale.empty());
}

// -- per-file determinism families ------------------------------------------

TEST(FileRules, EachFamilyFiresOnItsViolation) {
  const ProjectIndex idx = load_fixture("file_rules");
  std::vector<Finding> out;
  for (const auto& f : idx.files()) {
    pp::analyze::run_file_rules(f, nullptr, out);
  }
  EXPECT_EQ(count_rule(out, "wall-clock"), 1);
  EXPECT_EQ(count_rule(out, "randomness"), 1);
  EXPECT_EQ(count_rule(out, "raw-new"), 1);
  EXPECT_EQ(count_rule(out, "raw-delete"), 1);
  EXPECT_EQ(count_rule(out, "naked-duration"), 1);
  EXPECT_EQ(count_rule(out, "unordered-iter"), 1);
  EXPECT_EQ(count_rule(out, "check-side-effect"), 0);
}

TEST(FileRules, CleanOnDeterministicIdioms) {
  const ProjectIndex idx = load_fixture("file_rules_clean");
  std::vector<Finding> out;
  for (const auto& f : idx.files()) {
    pp::analyze::run_file_rules(f, nullptr, out);
  }
  EXPECT_TRUE(out.empty());
}

// -- whole-project pass over a fixture tree ---------------------------------

TEST(RunAllRules, AggregatesSortsAndAppliesAllows) {
  const ProjectIndex idx = load_fixture("hot_alloc");
  const std::vector<Finding> out = pp::analyze::run_all_rules(idx);
  EXPECT_EQ(count_rule(out, "hot-path-alloc"), 5);
  EXPECT_TRUE(std::is_sorted(
      out.begin(), out.end(), [](const Finding& a, const Finding& b) {
        return a.file < b.file || (a.file == b.file && a.line <= b.line);
      }));
}

}  // namespace

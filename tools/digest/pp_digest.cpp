// pp_digest: print replay digests for a fixed set of example scenarios.
//
// The determinism harness runs this binary twice with different
// PP_HASH_SEED values (which salt every unordered-container hash, see
// net::set_hash_salt) and diffs the output: identical lines mean no code
// path let hash-bucket iteration order leak into simulation behaviour.
//
//   PP_HASH_SEED=1 pp_digest > a.txt
//   PP_HASH_SEED=2 pp_digest > b.txt
//   diff a.txt b.txt
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "channel/spec.hpp"
#include "exp/digest.hpp"
#include "net/addr.hpp"

namespace {

using pp::exp::IntervalPolicy;
using pp::exp::ScenarioConfig;

// Short versions of the example scenarios: enough sim time to exercise
// schedules, bursts, PSM parking, splices, and reaping, but fast to run.
ScenarioConfig base() {
  ScenarioConfig cfg;
  cfg.duration_s = 20.0;
  cfg.web_pages = 4;
  cfg.ftp_bytes = 400'000;
  return cfg;
}

}  // namespace

int main() {
  if (const char* seed = std::getenv("PP_HASH_SEED")) {
    pp::net::set_hash_salt(std::strtoull(seed, nullptr, 10));
  }

  struct Named {
    const char* name;
    ScenarioConfig cfg;
  };
  Named scenarios[] = {
      {"all_video_fixed500", base()},
      {"mixed_variable", base()},
      {"web_fixed100", base()},
      {"ge_faulted", base()},
      {"lqf_channel", base()},
      {"opportunistic_channel", base()},
      {"probabilistic_channel", base()},
  };
  scenarios[0].cfg.roles = {1, 1, 2, 3};
  scenarios[1].cfg.roles = {1, 2, pp::exp::kRoleWeb, pp::exp::kRoleFtp};
  scenarios[1].cfg.policy = IntervalPolicy::Variable;
  scenarios[2].cfg.roles = {pp::exp::kRoleWeb, pp::exp::kRoleWeb};
  scenarios[2].cfg.policy = IntervalPolicy::Fixed100;
  // Gilbert-Elliott corruption via the fault layer (shared-stream channel
  // delegation): pins the FaultPlan -> ChannelModel draw compatibility.
  {
    ScenarioConfig& c = scenarios[3].cfg;
    c.roles = {1, 1, 2, pp::exp::kRoleWeb};
    c.duration_s = 15.0;
    c.web_pages = 3;
    c.fault.ge.enabled = true;
    c.fault.ge.p_good_bad = 0.01;
    c.fault.ge.p_bad_good = 0.05;
    c.fault.ge.loss_bad = 0.85;
  }
  // The policy zoo on a bursty per-client channel ladder.
  for (int i = 4; i <= 6; ++i) {
    ScenarioConfig& c = scenarios[i].cfg;
    c.roles = {1, 1, 2, 2};
    c.wireless_p_loss = 0.0;
    c.channel = pp::channel::ChannelSpec::ladder(3, 0.8);
  }
  scenarios[4].cfg.policy = IntervalPolicy::LongestQueue500;
  scenarios[5].cfg.policy = IntervalPolicy::Opportunistic500;
  scenarios[6].cfg.policy = IntervalPolicy::Probabilistic500;

  for (const Named& s : scenarios) {
    const std::uint64_t d = pp::exp::run_digest(s.cfg);
    std::printf("%s %016" PRIx64 "\n", s.name, d);
  }
  return 0;
}

// pp_digest: print replay digests for a fixed set of example scenarios.
//
// The determinism harness runs this binary twice with different
// PP_HASH_SEED values (which salt every unordered-container hash, see
// net::set_hash_salt) and diffs the output: identical lines mean no code
// path let hash-bucket iteration order leak into simulation behaviour.
//
//   PP_HASH_SEED=1 pp_digest > a.txt
//   PP_HASH_SEED=2 pp_digest > b.txt
//   diff a.txt b.txt
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "exp/digest.hpp"
#include "net/addr.hpp"

namespace {

using pp::exp::IntervalPolicy;
using pp::exp::ScenarioConfig;

// Short versions of the example scenarios: enough sim time to exercise
// schedules, bursts, PSM parking, splices, and reaping, but fast to run.
ScenarioConfig base() {
  ScenarioConfig cfg;
  cfg.duration_s = 20.0;
  cfg.web_pages = 4;
  cfg.ftp_bytes = 400'000;
  return cfg;
}

}  // namespace

int main() {
  if (const char* seed = std::getenv("PP_HASH_SEED")) {
    pp::net::set_hash_salt(std::strtoull(seed, nullptr, 10));
  }

  struct Named {
    const char* name;
    ScenarioConfig cfg;
  };
  Named scenarios[] = {
      {"all_video_fixed500", base()},
      {"mixed_variable", base()},
      {"web_fixed100", base()},
  };
  scenarios[0].cfg.roles = {1, 1, 2, 3};
  scenarios[1].cfg.roles = {1, 2, pp::exp::kRoleWeb, pp::exp::kRoleFtp};
  scenarios[1].cfg.policy = IntervalPolicy::Variable;
  scenarios[2].cfg.roles = {pp::exp::kRoleWeb, pp::exp::kRoleWeb};
  scenarios[2].cfg.policy = IntervalPolicy::Fixed100;

  for (const Named& s : scenarios) {
    const std::uint64_t d = pp::exp::run_digest(s.cfg);
    std::printf("%s %016" PRIx64 "\n", s.name, d);
  }
  return 0;
}

# Runs pp_digest under two different hash salts and fails unless the
# replay digests are identical (see src/exp/digest.hpp).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PP_HASH_SEED=1 ${PP_DIGEST}
  OUTPUT_FILE ${WORK_DIR}/digest_seed1.txt
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "pp_digest failed under PP_HASH_SEED=1 (rc=${rc1})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PP_HASH_SEED=99991 ${PP_DIGEST}
  OUTPUT_FILE ${WORK_DIR}/digest_seed2.txt
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "pp_digest failed under PP_HASH_SEED=99991 (rc=${rc2})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/digest_seed1.txt ${WORK_DIR}/digest_seed2.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  file(READ ${WORK_DIR}/digest_seed1.txt a)
  file(READ ${WORK_DIR}/digest_seed2.txt b)
  message(FATAL_ERROR "replay digests diverge across hash salts — some "
          "code path depends on unordered iteration order.\n"
          "seed 1:\n${a}\nseed 99991:\n${b}")
endif()
message(STATUS "digests identical across hash salts")

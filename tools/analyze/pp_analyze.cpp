// pp_analyze: whole-project static analysis for the simulation sources.
//
// Where pp_lint scans one file at a time, pp_analyze builds a project
// index (every .cpp/.hpp under src/, bench/, examples/, tests/, with
// include edges and module ids) and runs both the single-file rule
// families and the cross-file ones:
//
//   rng-stream-unique     duplicate RNG stream tags across the project
//   obs-name-consistency  find_*("name") reads with no registration site
//   check-side-effect     ++/--/assignment inside PP_CHECK arguments
//   layer-dag             include edges violating the module layer DAG
//   hot-path-alloc        allocating constructs in the sim/net hot closure
//
// plus wall-clock, randomness, unordered-iter, raw-new/raw-delete, and
// naked-duration everywhere.  A finding is suppressed at the site by
//   // pp-lint: allow(<rule>): <justification>
// or accepted by an entry in the committed baseline (tools/analyze/
// baseline.txt; see baseline.hpp for the format).  Anything else fails
// the run — pp_analyze is a tier-1 ctest, so a new finding fails CI.
//
// Usage:
//   pp_analyze --root <repo-root> [--baseline <file>]
//              [--update-baseline <file>] [--list-hot]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/index.hpp"
#include "analyze/rules.hpp"

int main(int argc, char** argv) {
  using namespace pp::analyze;

  std::string root;
  std::string baseline_path;
  std::string update_path;
  bool list_hot = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    if (arg == "--root") {
      if (const char* v = next()) root = v;
    } else if (arg == "--baseline") {
      if (const char* v = next()) baseline_path = v;
    } else if (arg == "--update-baseline") {
      if (const char* v = next()) update_path = v;
    } else if (arg == "--list-hot") {
      list_hot = true;
    } else {
      std::fprintf(stderr,
                   "usage: pp_analyze --root <repo-root> "
                   "[--baseline <file>] [--update-baseline <file>] "
                   "[--list-hot]\n");
      return 2;
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "pp_analyze: --root is required\n");
    return 2;
  }

  const ProjectIndex idx =
      ProjectIndex::load(root, {"src", "bench", "examples", "tests"});

  if (list_hot) {
    for (const std::size_t fi : idx.hot_closure({"sim", "net", "proxy", "exp"})) {
      std::printf("%s\n", idx.files()[fi].rel.c_str());
    }
    return 0;
  }

  std::vector<Finding> findings = run_all_rules(idx);

  if (!update_path.empty()) {
    std::ofstream out(update_path);
    out << render_baseline(idx, findings);
    std::printf("pp_analyze: wrote %zu baseline entr%s to %s\n",
                findings.size(), findings.size() == 1 ? "y" : "ies",
                update_path.c_str());
    return 0;
  }

  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty() &&
      !load_baseline(baseline_path, baseline)) {
    std::fprintf(stderr, "pp_analyze: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  const std::vector<BaselineEntry> stale =
      apply_baseline(idx, baseline, findings);

  for (const BaselineEntry& e : stale) {
    std::fprintf(stderr,
                 "pp_analyze: stale baseline entry (fixed? remove it): "
                 "%s\t%s\t%s\n",
                 e.rule.c_str(), e.file.c_str(), e.line_text.c_str());
  }
  for (const Finding& v : findings) {
    std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("pp_analyze: %zu new finding(s) not in baseline\n",
                findings.size());
    return 1;
  }
  std::printf("pp_analyze: clean (%zu files, %zu baselined)\n",
              idx.files().size(), baseline.size() - stale.size());
  return 0;
}

#include "analyze/index.hpp"

#include <algorithm>
#include <filesystem>

namespace pp::analyze {

namespace fs = std::filesystem;

namespace {

bool has_fixture_component(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "fixtures") return true;
  }
  return false;
}

std::string dirname_of(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string{} : rel.substr(0, slash + 1);
}

}  // namespace

ProjectIndex ProjectIndex::load(const std::string& root_dir,
                                const std::vector<std::string>& subdirs) {
  ProjectIndex idx;
  std::vector<fs::path> paths;
  const fs::path root{root_dir};
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::is_directory(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      // Judge only the root-relative path: a fixture tree may itself be
      // the scan root (the analyzer's own tests), but fixture trees
      // *inside* a project must not pollute the project index.
      if (has_fixture_component(fs::relative(e.path(), root))) continue;
      const auto ext = e.path().extension();
      if (ext == ".cpp" || ext == ".hpp") paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const fs::path& p : paths) {
    const std::string rel =
        fs::relative(p, root).generic_string();
    idx.by_rel_.emplace(rel, static_cast<int>(idx.files_.size()));
    idx.files_.push_back(load_file(p.string(), rel));
    std::string module;
    if (rel.rfind("src/", 0) == 0) {
      const std::size_t slash = rel.find('/', 4);
      if (slash != std::string::npos) {
        module = rel.substr(4, slash - 4);
        idx.src_modules_.insert(module);
      }
    }
    idx.modules_.push_back(module);
  }

  // Resolve quoted includes: the build adds src/ to the include path, and
  // tests include siblings relative to their own directory.
  idx.includes_.resize(idx.files_.size());
  for (std::size_t i = 0; i < idx.files_.size(); ++i) {
    const FileScan& f = idx.files_[i];
    std::size_t pos = 0;
    while ((pos = f.code.find("#include", pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += 8;
      const std::size_t q = skip_ws(f.code, here + 8);
      if (q >= f.code.size() || f.code[q] != '"') continue;  // <system>
      // The stripped view blanks literal contents; read the path from the
      // recorded string literals.
      for (const StringLit& s : f.strings) {
        if (s.pos != q) continue;
        Include inc;
        inc.pos = here;
        inc.target = s.text;
        int r = idx.find("src/" + s.text);
        if (r < 0) r = idx.find(dirname_of(f.rel) + s.text);
        if (r < 0) r = idx.find(s.text);
        inc.resolved = r;
        idx.includes_[i].push_back(inc);
        break;
      }
    }
  }
  return idx;
}

std::string ProjectIndex::module_of_include(const std::string& target) const {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return {};
  const std::string head = target.substr(0, slash);
  return src_modules_.count(head) ? head : std::string{};
}

int ProjectIndex::find(const std::string& rel) const {
  const auto it = by_rel_.find(rel);
  return it == by_rel_.end() ? -1 : it->second;
}

std::vector<std::size_t> ProjectIndex::hot_closure(
    const std::set<std::string>& root_modules) const {
  std::vector<char> hot(files_.size(), 0);
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (root_modules.count(modules_[i])) {
      hot[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const std::size_t i = work.back();
    work.pop_back();
    for (const Include& inc : includes_[i]) {
      if (inc.resolved < 0) continue;
      const auto r = static_cast<std::size_t>(inc.resolved);
      if (!hot[r]) {
        hot[r] = 1;
        work.push_back(r);
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (hot[i]) out.push_back(i);
  }
  return out;
}

}  // namespace pp::analyze

// Rule registry for pp_lint / pp_analyze.
//
// Two rule shapes share one Finding type:
//
//   * file rules see a single FileScan — the original pp_lint families
//     (wall-clock, randomness, unordered-iter, raw-new/raw-delete,
//     naked-duration) plus check-side-effect; pp_lint runs exactly these.
//   * project rules see the whole ProjectIndex — rng-stream-unique,
//     obs-name-consistency, layer-dag, hot-path-alloc need the cross-file
//     symbol/include view.
//
// Every finding is suppressible at the site with
//   // pp-lint: allow(<rule>): <justification>
// and pre-existing accepted findings are carried by the committed baseline
// (see baseline.hpp).  Rule ids are stable: they appear in allow comments
// and baseline entries.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyze/index.hpp"
#include "analyze/lexer.hpp"

namespace pp::analyze {

struct Finding {
  std::string file;  // FileScan::rel
  int line = 0;
  std::string rule;
  std::string message;
};

// -- single-file rules (the pp_lint families) -------------------------------

// Names of variables declared with an unordered container type in this
// stripped text (for unordered-iter; a .cpp also collects from its sibling
// header, since member loops iterate containers declared there).
void collect_unordered_vars(const std::string& code,
                            std::set<std::string>& names);

void rule_wall_clock_randomness(const FileScan& f, std::vector<Finding>& out);
void rule_new_delete(const FileScan& f, std::vector<Finding>& out);
void rule_unordered_iter(const FileScan& f,
                         const std::set<std::string>& unordered_vars,
                         std::vector<Finding>& out);
void rule_naked_duration(const FileScan& f, std::vector<Finding>& out);
void rule_check_side_effect(const FileScan& f, std::vector<Finding>& out);

// All single-file rules against one file (collecting unordered vars from
// `sibling_code` too when non-null).  This is pp_lint's whole rule set.
void run_file_rules(const FileScan& f, const std::string* sibling_code,
                    std::vector<Finding>& out);

// -- project rules ----------------------------------------------------------

void rule_rng_stream_unique(const ProjectIndex& idx,
                            std::vector<Finding>& out);
void rule_obs_name_consistency(const ProjectIndex& idx,
                               std::vector<Finding>& out);
void rule_layer_dag(const ProjectIndex& idx, std::vector<Finding>& out);
void rule_hot_path_alloc(const ProjectIndex& idx, std::vector<Finding>& out);

// All project rules.
void run_project_rules(const ProjectIndex& idx, std::vector<Finding>& out);

// File + project rules over the whole index, allow-comments already
// applied, sorted by (file, line, rule).  This is pp_analyze's rule set.
std::vector<Finding> run_all_rules(const ProjectIndex& idx);

// Drop findings suppressed by an adjacent allow comment.
void apply_allow_comments(const ProjectIndex& idx,
                          std::vector<Finding>& findings);

}  // namespace pp::analyze

// ProjectIndex: the whole-project view the cross-file rules run against.
//
// Loads every .cpp/.hpp under the scan roots, lexes each once (see
// lexer.hpp), and derives the two structures single-file scanning cannot
// see:
//
//   * include edges — every `#include "..."` resolved against the indexed
//     files (quoted project includes are rooted at src/ or at the
//     including file's directory), giving a file-level dependency graph;
//   * module ids — the first path component under src/ ("sim", "net",
//     "proxy", ...), the unit the layer DAG is expressed in.
//
// From those it computes the hot-path closure: every file in a hot root
// module plus everything those files transitively include.  Code in the
// closure executes on the event/packet hot path even though it lives
// elsewhere (an inline header pulled into the event loop is as hot as the
// loop itself).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace pp::analyze {

struct Include {
  std::size_t pos = 0;       // offset of the '#' in raw/code
  std::string target;        // the quoted path as written
  int resolved = -1;         // index into files(), -1 when external
};

class ProjectIndex {
 public:
  // Scan `root_dir/<sub>` for each subdir that exists, indexing every
  // .cpp/.hpp in deterministic (sorted) path order.  Any path containing a
  // "fixtures" component is skipped: fixture trees are deliberately
  // violating analyzer inputs, not project code.
  static ProjectIndex load(const std::string& root_dir,
                           const std::vector<std::string>& subdirs);

  const std::vector<FileScan>& files() const { return files_; }
  const std::vector<std::vector<Include>>& includes() const {
    return includes_;
  }

  // Module of a file: "sim" for src/sim/..., "" for files outside src/.
  const std::string& module_of(std::size_t file) const {
    return modules_[file];
  }
  // Module named by a quoted include path ("sim/time.hpp" -> "sim"), or ""
  // when the include does not name a src/ module.
  std::string module_of_include(const std::string& target) const;

  // Index of the file with this root-relative path, or -1.
  int find(const std::string& rel) const;

  // Every file whose module is in `root_modules`, plus all files those
  // transitively include.  Returned as file indices, sorted.
  std::vector<std::size_t> hot_closure(
      const std::set<std::string>& root_modules) const;

  // All src/ module names seen in this index.
  const std::set<std::string>& src_modules() const { return src_modules_; }

 private:
  std::vector<FileScan> files_;
  std::vector<std::vector<Include>> includes_;
  std::vector<std::string> modules_;
  std::map<std::string, int> by_rel_;
  std::set<std::string> src_modules_;
};

}  // namespace pp::analyze

#include "analyze/lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace pp::analyze {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string strip_comments_and_strings(const std::string& in,
                                       std::vector<StringLit>* strings) {
  std::string out = in;
  enum class St { Code, Line, Block, Str, Chr } st = St::Code;
  StringLit cur;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Str;
          cur.pos = i;
          cur.text.clear();
        } else if (c == '\'' && i > 0 && !ident_char(in[i - 1])) {
          st = St::Chr;  // skip digit separators like 1'000'000
        }
        break;
      case St::Line:
        if (c == '\n') st = St::Code;
        else out[i] = ' ';
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\') {
          out[i] = ' ';
          cur.text += c;
          if (n != '\n') {
            if (i + 1 < in.size()) {
              out[i + 1] = ' ';
              cur.text += n;
            }
            ++i;
          }
        } else if (c == '"') {
          st = St::Code;
          if (strings) strings->push_back(cur);
        } else {
          if (c != '\n') out[i] = ' ';
          cur.text += c;
        }
        break;
      case St::Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool token_at(const std::string& text, std::size_t pos,
              const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !ident_char(text[end]);
}

std::size_t skip_ws(const std::string& t, std::size_t i) {
  while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i]))) {
    ++i;
  }
  return i;
}

std::size_t match_group(const std::string& t, std::size_t open) {
  if (open >= t.size()) return std::string::npos;
  const char o = t[open];
  char close = '\0';
  switch (o) {
    case '(': close = ')'; break;
    case '{': close = '}'; break;
    case '[': close = ']'; break;
    case '<': close = '>'; break;
    default: return std::string::npos;
  }
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == o) ++depth;
    else if (t[i] == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

int line_of(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  int lo = 0, hi = static_cast<int>(line_starts.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (line_starts[static_cast<std::size_t>(mid)] <= pos) lo = mid;
    else hi = mid - 1;
  }
  return lo + 1;  // 1-indexed
}

bool allowlisted(const std::vector<std::string>& raw_lines, int line,
                 const std::string& rule) {
  const std::string needle = "pp-lint: allow(" + rule + ")";
  for (int l = line; l >= line - 1 && l >= 1; --l) {
    if (l > static_cast<int>(raw_lines.size())) continue;
    const std::string& s = raw_lines[static_cast<std::size_t>(l - 1)];
    const std::size_t p = s.find(needle);
    if (p == std::string::npos) continue;
    std::size_t j = p + needle.size();
    if (j < s.size() && s[j] == ':') {
      ++j;
      while (j < s.size() &&
             std::isspace(static_cast<unsigned char>(s[j]))) {
        ++j;
      }
      if (j < s.size()) return true;  // non-empty justification
    }
    // allow() without a justification does not suppress anything.
  }
  return false;
}

FileScan load_file(const std::string& path, const std::string& rel) {
  FileScan f;
  f.path = path;
  f.rel = rel;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  f.raw = ss.str();
  f.code = strip_comments_and_strings(f.raw, &f.strings);
  f.line_starts.push_back(0);
  std::string cur;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i] == '\n') {
      f.raw_lines.push_back(cur);
      cur.clear();
      f.line_starts.push_back(i + 1);
    } else {
      cur += f.raw[i];
    }
  }
  f.raw_lines.push_back(cur);
  return f;
}

}  // namespace pp::analyze

// Shared lexing layer for the project's static-analysis tools (pp_lint,
// pp_analyze).
//
// This is deliberately not a C++ parser: the analyzers favour simple,
// reviewable token rules with an escape-hatch comment over full semantic
// analysis.  The lexer gives every rule the same three views of a file:
//
//   raw        the bytes on disk (for allow-comment lookup and reporting)
//   code       comment- and string-stripped text, same length/line
//              structure as raw, so positions map 1:1
//   strings    every string literal with its position and contents (the
//              stripped view blanks them; rules that care about names —
//              obs metric strings, include paths — read them from here)
//
// plus small positional helpers (token_at, skip_ws, balanced-group
// matching, line_of) that the rules build on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pp::analyze {

// One string literal as written in the source ("..." contents, without the
// quotes; escape sequences are preserved verbatim).
struct StringLit {
  std::size_t pos = 0;  // offset of the opening quote in raw/code
  std::string text;
};

struct FileScan {
  std::string path;      // as given to load()
  std::string rel;       // path relative to the scan root ("src/sim/rng.cpp")
  std::string raw;       // file bytes
  std::string code;      // comment/string-stripped, same length as raw
  std::vector<std::string> raw_lines;
  std::vector<std::size_t> line_starts;
  std::vector<StringLit> strings;
};

bool ident_char(char c);

// Replace comments and string/char literal contents with spaces, keeping
// line structure intact; records each string literal in `strings` when
// non-null.  Raw strings are handled well enough for this codebase (no raw
// strings containing quotes).
std::string strip_comments_and_strings(const std::string& in,
                                       std::vector<StringLit>* strings);

// True when text[pos..] starts the exact identifier `word` on a token
// boundary.
bool token_at(const std::string& text, std::size_t pos,
              const std::string& word);

std::size_t skip_ws(const std::string& t, std::size_t i);

// Given `open` at an opening '(' / '{' / '[' / '<', return the position of
// the matching closer, or npos when unbalanced.
std::size_t match_group(const std::string& t, std::size_t open);

// 1-indexed line number of a byte offset.
int line_of(const std::vector<std::size_t>& line_starts, std::size_t pos);

// `// pp-lint: allow(<rule>): <justification>` on the given or preceding
// raw line, with a non-empty justification.
bool allowlisted(const std::vector<std::string>& raw_lines, int line,
                 const std::string& rule);

// Load and pre-lex one file.  `rel` is stored verbatim as the report path.
FileScan load_file(const std::string& path, const std::string& rel);

}  // namespace pp::analyze

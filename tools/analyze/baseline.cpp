#include "analyze/baseline.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace pp::analyze {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

bool load_baseline(const std::string& path,
                   std::vector<BaselineEntry>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    if (t1 == std::string::npos) continue;
    const std::size_t t2 = line.find('\t', t1 + 1);
    if (t2 == std::string::npos) continue;
    BaselineEntry e;
    e.rule = line.substr(0, t1);
    e.file = line.substr(t1 + 1, t2 - t1 - 1);
    e.line_text = line.substr(t2 + 1);
    out.push_back(std::move(e));
  }
  return true;
}

std::string finding_line_text(const ProjectIndex& idx, const Finding& v) {
  const int fi = idx.find(v.file);
  if (fi < 0) return {};
  const auto& lines = idx.files()[static_cast<std::size_t>(fi)].raw_lines;
  if (v.line < 1 || v.line > static_cast<int>(lines.size())) return {};
  return trim(lines[static_cast<std::size_t>(v.line - 1)]);
}

std::vector<BaselineEntry> apply_baseline(
    const ProjectIndex& idx, std::vector<BaselineEntry>& baseline,
    std::vector<Finding>& findings) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& v : findings) {
    const std::string text = finding_line_text(idx, v);
    bool matched = false;
    for (BaselineEntry& e : baseline) {
      if (e.consumed || e.rule != v.rule || e.file != v.file ||
          e.line_text != text) {
        continue;
      }
      e.consumed = true;
      matched = true;
      break;
    }
    if (!matched) kept.push_back(std::move(v));
  }
  findings = std::move(kept);

  std::vector<BaselineEntry> stale;
  for (const BaselineEntry& e : baseline) {
    if (!e.consumed) stale.push_back(e);
  }
  return stale;
}

std::string render_baseline(const ProjectIndex& idx,
                            const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "# pp_analyze baseline: accepted pre-existing findings.\n"
     << "# <rule>\\t<file>\\t<trimmed source line>; regenerate with\n"
     << "#   pp_analyze --root . --update-baseline "
        "tools/analyze/baseline.txt\n";
  for (const Finding& v : findings) {
    os << v.rule << '\t' << v.file << '\t' << finding_line_text(idx, v)
       << '\n';
  }
  return os.str();
}

}  // namespace pp::analyze

// Cross-file rule families.  Each one enforces a project invariant that a
// single-file scan cannot see:
//
//   rng-stream-unique     every named RNG stream tag (k*StreamTag
//                         constants, and integer literals xor'd into a
//                         sim::Rng seed) must be distinct project-wide —
//                         a duplicate silently correlates two
//                         "independent" chains and breaks salt-invariance
//   obs-name-consistency  every literal name passed to find_counter/
//                         find_time_gauge/find_histogram must match a
//                         registration site (counter()/time_gauge()/
//                         histogram() with the same literal) somewhere in
//                         the project — a typo'd name silently reads a
//                         null metric
//   layer-dag             include edges between src/ modules must follow
//                         the declared dependency DAG (sim → net →
//                         transport → proxy/client → exp; obs and check
//                         leaf-usable everywhere)
//   hot-path-alloc        allocating constructs (std::function, unreserved
//                         push_back in loops, string building) are banned
//                         in the hot closure: src/sim + src/net plus
//                         everything they transitively include
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>

#include "analyze/rules.hpp"

namespace pp::analyze {

namespace {

// Parse an integer literal (decimal or 0x hex, with optional ' digit
// separators and u/l suffixes) starting at `i`.  Returns true and advances
// `i` past the literal on success.
bool parse_int_literal(const std::string& t, std::size_t& i,
                       std::uint64_t* value) {
  std::size_t j = i;
  bool hex = false;
  if (j + 1 < t.size() && t[j] == '0' && (t[j + 1] == 'x' || t[j + 1] == 'X')) {
    hex = true;
    j += 2;
  }
  std::uint64_t v = 0;
  bool any = false;
  while (j < t.size()) {
    const char c = t[j];
    if (c == '\'') {
      ++j;
      continue;
    }
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (hex && c >= 'a' && c <= 'f') d = 10 + (c - 'a');
    else if (hex && c >= 'A' && c <= 'F') d = 10 + (c - 'A');
    if (d < 0) break;
    v = v * (hex ? 16 : 10) + static_cast<std::uint64_t>(d);
    any = true;
    ++j;
  }
  if (!any) return false;
  while (j < t.size() && (t[j] == 'u' || t[j] == 'U' || t[j] == 'l' ||
                          t[j] == 'L')) {
    ++j;
  }
  if (j < t.size() && ident_char(t[j])) return false;  // e.g. 0x12garbage
  i = j;
  *value = v;
  return true;
}

std::string hex_str(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct StreamSite {
  std::size_t file;
  std::size_t pos;
  std::string name;  // tag identifier, or "<literal>" for inline seeds
};

}  // namespace

void rule_rng_stream_unique(const ProjectIndex& idx,
                            std::vector<Finding>& out) {
  std::map<std::uint64_t, std::vector<StreamSite>> by_value;

  for (std::size_t fi = 0; fi < idx.files().size(); ++fi) {
    const FileScan& f = idx.files()[fi];
    const std::string& t = f.code;

    // Definition sites: <ident ending in StreamTag> = <integer literal>.
    std::size_t pos = 0;
    while ((pos = t.find("StreamTag", pos)) != std::string::npos) {
      std::size_t s = pos;
      pos += 9;
      while (s > 0 && ident_char(t[s - 1])) --s;
      const std::size_t e = s + (pos - s);
      if (e < t.size() && ident_char(t[e])) continue;  // longer identifier
      const std::string name = t.substr(s, e - s);
      std::size_t i = skip_ws(t, e);
      if (i >= t.size() || t[i] != '=') continue;  // usage, not definition
      i = skip_ws(t, i + 1);
      std::uint64_t v = 0;
      if (!parse_int_literal(t, i, &v)) continue;
      if (v == 0) {
        out.push_back({f.rel, line_of(f.line_starts, s), "rng-stream-unique",
                       "stream tag '" + name +
                           "' is 0: xor-identity aliases the root seed "
                           "stream"});
      }
      by_value[v].push_back({fi, s, name});
    }

    // Inline seeds: an integer literal xor'd inside a Rng{...}/Rng(...)
    // construction.
    pos = 0;
    while ((pos = t.find("Rng", pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += 3;
      if (!token_at(t, here, "Rng")) continue;
      const std::size_t open = skip_ws(t, here + 3);
      if (open >= t.size() || (t[open] != '{' && t[open] != '(')) continue;
      const std::size_t close = match_group(t, open);
      if (close == std::string::npos) continue;
      for (std::size_t j = open + 1; j < close; ++j) {
        if (t[j] != '^') continue;
        std::size_t i = skip_ws(t, j + 1);
        std::uint64_t v = 0;
        if (i < close && parse_int_literal(t, i, &v)) {
          by_value[v].push_back({fi, j, "<literal>"});
        }
      }
    }
  }

  for (const auto& [value, sites] : by_value) {
    if (sites.size() < 2) continue;
    for (const StreamSite& s : sites) {
      const FileScan& f = idx.files()[s.file];
      std::string others;
      for (const StreamSite& o : sites) {
        if (&o == &s) continue;
        if (!others.empty()) others += ", ";
        others += idx.files()[o.file].rel + ":" +
                  std::to_string(line_of(idx.files()[o.file].line_starts,
                                         o.pos));
      }
      out.push_back({f.rel, line_of(f.line_starts, s.pos),
                     "rng-stream-unique",
                     "RNG stream tag " + hex_str(value) + " ('" + s.name +
                         "') also used at " + others +
                         "; duplicate tags correlate \"independent\" "
                         "streams"});
    }
  }
}

namespace {

// When `pos` is a method-call site `.name(` / `->name(` whose sole
// argument is one string literal, return that literal's text.
bool literal_only_arg(const FileScan& f, std::size_t name_pos,
                      const std::string& name, std::string* lit_text,
                      std::size_t* lit_pos) {
  if (!token_at(f.code, name_pos, name)) return false;
  if (name_pos == 0) return false;
  const char prev = f.code[name_pos - 1];
  if (prev != '.' && prev != '>') return false;  // require method call
  const std::size_t open = skip_ws(f.code, name_pos + name.size());
  if (open >= f.code.size() || f.code[open] != '(') return false;
  const std::size_t q = skip_ws(f.code, open + 1);
  if (q >= f.code.size() || f.code[q] != '"') return false;
  for (const StringLit& s : f.strings) {
    if (s.pos != q) continue;
    const std::size_t after = skip_ws(f.code, q + s.text.size() + 2);
    if (after >= f.code.size() || f.code[after] != ')') return false;
    *lit_text = s.text;
    *lit_pos = q;
    return true;
  }
  return false;
}

}  // namespace

void rule_obs_name_consistency(const ProjectIndex& idx,
                               std::vector<Finding>& out) {
  // kind index: 0 counter, 1 time_gauge, 2 histogram, 3 gauge.
  static const char* kCreate[] = {"counter", "time_gauge", "histogram",
                                  "gauge"};
  static const char* kFind[] = {"find_counter", "find_time_gauge",
                                "find_histogram"};
  std::set<std::string> created[4];

  for (const FileScan& f : idx.files()) {
    for (int k = 0; k < 4; ++k) {
      std::size_t pos = 0;
      const std::string word = kCreate[k];
      while ((pos = f.code.find(word, pos)) != std::string::npos) {
        const std::size_t here = pos;
        pos += word.size();
        std::string lit;
        std::size_t lp = 0;
        if (literal_only_arg(f, here, word, &lit, &lp)) {
          created[k].insert(lit);
        }
      }
    }
  }

  for (std::size_t fi = 0; fi < idx.files().size(); ++fi) {
    const FileScan& f = idx.files()[fi];
    for (int k = 0; k < 3; ++k) {
      std::size_t pos = 0;
      const std::string word = kFind[k];
      while ((pos = f.code.find(word, pos)) != std::string::npos) {
        const std::size_t here = pos;
        pos += word.size();
        std::string lit;
        std::size_t lp = 0;
        if (!literal_only_arg(f, here, word, &lit, &lp)) continue;
        if (created[k].count(lit)) continue;
        out.push_back(
            {f.rel, line_of(f.line_starts, lp), "obs-name-consistency",
             std::string{kFind[k]} + "(\"" + lit +
                 "\") does not match any " + kCreate[k] +
                 "(\"...\") registration site in the project; a typo'd "
                 "name silently reads a null metric"});
      }
    }
  }
}

namespace {

// The declared module DAG.  A module may always include itself and the
// foundation trio (sim/obs/check, which may also include each other); the
// table lists its additional allowed dependencies.  exp and src/bench are
// top-of-stack harness layers and may include everything.
struct Layer {
  const char* module;
  std::vector<const char*> deps;
  bool any = false;
};

const std::vector<Layer>& layer_table() {
  static const std::vector<Layer> kTable = {
      {"sim", {}, false},
      {"obs", {}, false},
      {"check", {}, false},
      {"energy", {}, false},
      {"net", {}, false},
      {"channel", {"net"}, false},
      {"transport", {"net"}, false},
      {"fault", {"channel", "net"}, false},
      {"workload", {"transport", "net"}, false},
      {"proxy", {"channel", "transport", "net"}, false},
      {"client", {"proxy", "energy", "net", "transport", "channel"}, false},
      {"trace",
       {"client", "proxy", "energy", "net", "transport", "channel"},
       false},
      {"exp", {}, true},
      {"bench", {}, true},
  };
  return kTable;
}

bool is_foundation(const std::string& m) {
  return m == "sim" || m == "obs" || m == "check";
}

}  // namespace

void rule_layer_dag(const ProjectIndex& idx, std::vector<Finding>& out) {
  std::map<std::string, const Layer*> table;
  for (const Layer& l : layer_table()) table.emplace(l.module, &l);

  for (std::size_t fi = 0; fi < idx.files().size(); ++fi) {
    const FileScan& f = idx.files()[fi];
    const std::string& mod = idx.module_of(fi);
    if (mod.empty()) continue;  // bench/, examples/, tests/ are above the DAG
    const auto it = table.find(mod);
    if (it == table.end()) {
      out.push_back({f.rel, 1, "layer-dag",
                     "module 'src/" + mod +
                         "' is not in the layer table (tools/analyze/"
                         "rules_project.cpp); declare its dependencies"});
      continue;
    }
    const Layer& layer = *it->second;
    for (const Include& inc : idx.includes()[fi]) {
      const std::string dep = idx.module_of_include(inc.target);
      if (dep.empty() || dep == mod) continue;
      if (layer.any) continue;
      // sim/obs/check are leaf-usable everywhere (including each other).
      if (is_foundation(dep)) continue;
      bool ok = false;
      for (const char* d : layer.deps) {
        if (dep == d) {
          ok = true;
          break;
        }
      }
      if (ok) continue;
      std::string allowed = "sim, obs, check";
      for (const char* d : layer.deps) allowed += std::string{", "} + d;
      out.push_back({f.rel, line_of(f.line_starts, inc.pos), "layer-dag",
                     "src/" + mod + " may not include \"" + inc.target +
                         "\" (src/" + dep + "); allowed dependencies: " +
                         allowed});
    }
  }
}

namespace {

// Byte ranges of loop bodies (for/while/do, braced or single-statement).
std::vector<std::pair<std::size_t, std::size_t>> loop_regions(
    const std::string& t) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (const char* kw : {"for", "while", "do"}) {
    const std::string word = kw;
    std::size_t pos = 0;
    while ((pos = t.find(word, pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += word.size();
      if (!token_at(t, here, word)) continue;
      std::size_t body = 0;
      if (word == "do") {
        body = skip_ws(t, here + word.size());
      } else {
        const std::size_t open = skip_ws(t, here + word.size());
        if (open >= t.size() || t[open] != '(') continue;
        const std::size_t close = match_group(t, open);
        if (close == std::string::npos) continue;
        body = skip_ws(t, close + 1);
      }
      if (body >= t.size()) continue;
      if (t[body] == '{') {
        const std::size_t end = match_group(t, body);
        if (end != std::string::npos) regions.emplace_back(body + 1, end);
      } else {
        const std::size_t semi = t.find(';', body);
        if (semi != std::string::npos) regions.emplace_back(body, semi);
      }
    }
  }
  return regions;
}

bool in_regions(
    const std::vector<std::pair<std::size_t, std::size_t>>& regions,
    std::size_t pos) {
  for (const auto& [s, e] : regions) {
    if (pos >= s && pos < e) return true;
  }
  return false;
}

// Identifier of the object expression ending just before `dot` (the '.' of
// `.push_back`, or the '>' of `->push_back`); walks back over one trailing
// [index] group.
std::string object_before(const std::string& t, std::size_t dot) {
  std::size_t i = dot;
  if (i >= 1 && t[i - 1] == '-') --i;  // '->': caller passes pos of '>'
  if (i == 0) return {};
  std::size_t e = i;
  if (t[e - 1] == ']') {
    int depth = 0;
    while (e > 0) {
      --e;
      if (t[e] == ']') ++depth;
      else if (t[e] == '[') {
        --depth;
        if (depth == 0) break;
      }
    }
  }
  std::size_t s = e;
  while (s > 0 && ident_char(t[s - 1])) --s;
  return t.substr(s, e - s);
}

}  // namespace

void rule_hot_path_alloc(const ProjectIndex& idx, std::vector<Finding>& out) {
  const std::vector<std::size_t> hot = idx.hot_closure({"sim", "net", "proxy", "exp"});

  for (const std::size_t fi : hot) {
    const FileScan& f = idx.files()[fi];
    const std::string& t = f.code;

    // a) std::function: type-erased call targets allocate per capture.
    std::size_t pos = 0;
    while ((pos = t.find("std::function", pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += 13;
      if (here > 0 && (ident_char(t[here - 1]) || t[here - 1] == ':'))
        continue;
      if (pos < t.size() && ident_char(t[pos])) continue;
      out.push_back({f.rel, line_of(f.line_starts, here), "hot-path-alloc",
                     "std::function in the hot closure allocates per "
                     "capture; use sim::EventCallback, a template "
                     "parameter, or a concrete functor"});
    }

    // b) push_back/emplace_back in a loop with no visible reserve()/
    //    resize() on the same object in this file or its header/source
    //    sibling.
    const auto regions = loop_regions(t);
    const std::string* sibling = nullptr;
    {
      std::string sib = f.rel;
      const std::size_t ext = sib.rfind('.');
      if (ext != std::string::npos) {
        sib.replace(ext, std::string::npos,
                    sib.compare(ext, std::string::npos, ".cpp") == 0
                        ? ".hpp"
                        : ".cpp");
        const int si = idx.find(sib);
        if (si >= 0) sibling = &idx.files()[static_cast<std::size_t>(si)].code;
      }
    }
    for (const char* method : {"push_back", "emplace_back"}) {
      const std::string word = method;
      pos = 0;
      while ((pos = t.find(word, pos)) != std::string::npos) {
        const std::size_t here = pos;
        pos += word.size();
        if (!token_at(t, here, word)) continue;
        if (here == 0 || (t[here - 1] != '.' && t[here - 1] != '>'))
          continue;
        if (!in_regions(regions, here)) continue;
        const std::string obj = object_before(t, here - 1);
        if (obj.empty()) continue;
        bool reserved = false;
        for (const char* grow : {".reserve", "->reserve", ".resize",
                                 "->resize"}) {
          const std::string pat = obj + grow;
          if (t.find(pat) != std::string::npos ||
              (sibling && sibling->find(pat) != std::string::npos)) {
            reserved = true;
            break;
          }
        }
        if (reserved) continue;
        out.push_back({f.rel, line_of(f.line_starts, here), "hot-path-alloc",
                       std::string{method} + " on '" + obj +
                           "' in a loop with no visible reserve(); "
                           "pre-reserve capacity or use a fixed slab"});
      }
    }

    // c) string building: std::to_string / ostringstream / operator+ on a
    //    string literal all allocate.
    for (const char* word : {"std::to_string", "ostringstream",
                             "stringstream"}) {
      const std::string w = word;
      pos = 0;
      while ((pos = t.find(w, pos)) != std::string::npos) {
        const std::size_t here = pos;
        pos += w.size();
        // Token-boundary guard: "ostringstream" must not re-match as the
        // inner "stringstream", and "xto_string" is a different name.  A
        // leading "std::" qualifier on the stream types is still a match.
        if (here > 0 && ident_char(t[here - 1])) continue;
        if (here + w.size() < t.size() && ident_char(t[here + w.size()]))
          continue;
        out.push_back({f.rel, line_of(f.line_starts, here),
                       "hot-path-alloc",
                       std::string{word} +
                           " builds a std::string (heap allocation); keep "
                           "formatting off the hot path"});
      }
    }
    for (const StringLit& s : f.strings) {
      const std::size_t close = s.pos + s.text.size() + 1;
      const std::size_t after = skip_ws(t, close + 1);
      bool concat = after < t.size() && t[after] == '+' &&
                    (after + 1 >= t.size() || t[after + 1] != '+');
      if (!concat && s.pos > 0) {
        std::size_t b = s.pos;
        while (b > 0 &&
               std::isspace(static_cast<unsigned char>(t[b - 1]))) {
          --b;
        }
        concat = b > 0 && t[b - 1] == '+' && (b < 2 || t[b - 2] != '+');
      }
      if (!concat) continue;
      out.push_back({f.rel, line_of(f.line_starts, s.pos), "hot-path-alloc",
                     "string concatenation with operator+ allocates; keep "
                     "formatting off the hot path"});
    }
  }
}

void run_project_rules(const ProjectIndex& idx, std::vector<Finding>& out) {
  rule_rng_stream_unique(idx, out);
  rule_obs_name_consistency(idx, out);
  rule_layer_dag(idx, out);
  rule_hot_path_alloc(idx, out);
}

void apply_allow_comments(const ProjectIndex& idx,
                          std::vector<Finding>& findings) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& v : findings) {
    const int fi = idx.find(v.file);
    if (fi >= 0 &&
        allowlisted(idx.files()[static_cast<std::size_t>(fi)].raw_lines,
                    v.line, v.rule)) {
      continue;
    }
    kept.push_back(std::move(v));
  }
  findings = std::move(kept);
}

std::vector<Finding> run_all_rules(const ProjectIndex& idx) {
  std::vector<Finding> out;
  for (std::size_t fi = 0; fi < idx.files().size(); ++fi) {
    const FileScan& f = idx.files()[fi];
    const std::string* sibling_code = nullptr;
    std::string sib = f.rel;
    if (sib.size() > 4 && sib.compare(sib.size() - 4, 4, ".cpp") == 0) {
      sib.replace(sib.size() - 4, 4, ".hpp");
      const int si = idx.find(sib);
      if (si >= 0) {
        sibling_code = &idx.files()[static_cast<std::size_t>(si)].code;
      }
    }
    run_file_rules(f, sibling_code, out);
  }
  run_project_rules(idx, out);
  apply_allow_comments(idx, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace pp::analyze

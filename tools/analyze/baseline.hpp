// Committed-findings baseline for pp_analyze.
//
// The baseline lets a new rule land with its pre-existing findings tracked
// instead of blocking: an entry accepts one finding by rule, file, and the
// *content* of the flagged line (leading/trailing whitespace trimmed), so
// entries survive unrelated line-number churn but expire when the flagged
// code itself changes.  Format, one entry per line, tab-separated:
//
//   <rule>\t<file>\t<trimmed source line>
//
// Lines starting with '#' and blank lines are ignored.  Matching consumes
// entries (an entry accepts at most one finding per run); entries that
// matched nothing are reported as stale so the file shrinks as findings
// are fixed.  New findings — anything not allow-annotated and not in the
// baseline — fail the run.
#pragma once

#include <string>
#include <vector>

#include "analyze/index.hpp"
#include "analyze/rules.hpp"

namespace pp::analyze {

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string line_text;
  bool consumed = false;
};

// Parse a baseline file.  Returns false (and leaves `out` empty) when the
// path does not exist.
bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out);

// Trimmed content of the finding's source line, as used for matching and
// for --update-baseline output.
std::string finding_line_text(const ProjectIndex& idx, const Finding& v);

// Partition `findings` against the baseline: matched findings are removed,
// consuming their entry.  Returns the stale (unconsumed) entries.
std::vector<BaselineEntry> apply_baseline(const ProjectIndex& idx,
                                          std::vector<BaselineEntry>& baseline,
                                          std::vector<Finding>& findings);

// Serialize findings as baseline entries (sorted, deduplicated input
// expected).
std::string render_baseline(const ProjectIndex& idx,
                            const std::vector<Finding>& findings);

}  // namespace pp::analyze

// Single-file rule families: the determinism/resource rules pp_lint has
// always enforced, plus check-side-effect.  See rules.hpp for the roster.
#include <algorithm>
#include <cctype>

#include "analyze/rules.hpp"

namespace pp::analyze {

namespace {

const char* kTimeMsg = "wall clock; use sim::Time from the simulator";
const char* kRngMsg = "use sim::Rng (simulator-owned, seeded)";

}  // namespace

void collect_unordered_vars(const std::string& code,
                            std::set<std::string>& names) {
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string::npos) {
      if (!token_at(code, pos, kw)) {
        ++pos;
        continue;
      }
      std::size_t i = pos + std::string(kw).size();
      pos = i;
      i = skip_ws(code, i);
      if (i >= code.size() || code[i] != '<') continue;  // e.g. using-decl
      const std::size_t close = match_group(code, i);
      if (close == std::string::npos) continue;
      i = skip_ws(code, close + 1);
      if (i < code.size() && code[i] == '&') i = skip_ws(code, i + 1);
      std::string name;
      while (i < code.size() && ident_char(code[i])) name += code[i++];
      if (!name.empty()) names.insert(name);
    }
  }
}

void rule_wall_clock_randomness(const FileScan& f,
                                std::vector<Finding>& out) {
  struct Ban {
    const char* rule;
    const char* word;
    bool call_only;  // only when followed by '('
    const char* msg_prefix;
  };
  static const Ban kBans[] = {
      {"wall-clock", "system_clock", false, "wall clock"},
      {"wall-clock", "high_resolution_clock", false, "wall clock"},
      {"wall-clock", "steady_clock", false, "wall clock"},
      {"wall-clock", "gettimeofday", false, "wall clock"},
      {"wall-clock", "clock_gettime", false, "wall clock"},
      {"wall-clock", "time", true, "wall clock"},
      {"randomness", "rand", true, "unseeded randomness"},
      {"randomness", "srand", false, "unseeded randomness"},
      {"randomness", "random_device", false, "nondeterministic entropy"},
      {"randomness", "mt19937", false, "std random engine"},
      {"randomness", "mt19937_64", false, "std random engine"},
      {"randomness", "minstd_rand", false, "std random engine"},
      {"randomness", "default_random_engine", false, "std random engine"},
  };
  for (const Ban& b : kBans) {
    std::size_t pos = 0;
    const std::string word = b.word;
    while ((pos = f.code.find(word, pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += word.size();
      if (!token_at(f.code, here, word)) continue;
      if (b.call_only) {
        const std::size_t after = skip_ws(f.code, here + word.size());
        if (after >= f.code.size() || f.code[after] != '(') continue;
        // A *declaration* of a function with this name (preceded by a type
        // identifier) is not a call of the banned libc function.
        std::size_t before = here;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 f.code[before - 1]))) {
          --before;
        }
        const bool std_qualified =
            before >= 5 && f.code.compare(before - 5, 5, "std::") == 0;
        if (!std_qualified && before > 0 &&
            (ident_char(f.code[before - 1]) || f.code[before - 1] == ':' ||
             f.code[before - 1] == '.' || f.code[before - 1] == '>' ||
             f.code[before - 1] == '&' || f.code[before - 1] == '*')) {
          // Member access (x.time()), a different namespace, or a
          // declaration preceded by a return type — not the libc call.
          continue;
        }
      }
      const std::string msg =
          std::string{b.msg_prefix} + "; " +
          (std::string{b.rule} == "wall-clock"
               ? "sim::Time is the only clock"
               : kRngMsg);
      (void)kTimeMsg;
      out.push_back({f.rel, line_of(f.line_starts, here), b.rule, msg});
    }
  }
}

void rule_new_delete(const FileScan& f, std::vector<Finding>& out) {
  std::size_t pos = 0;
  while ((pos = f.code.find("new", pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += 3;
    if (!token_at(f.code, here, "new")) continue;
    out.push_back({f.rel, line_of(f.line_starts, here), "raw-new",
                   "naked new; use make_unique/make_shared or a container"});
  }
  pos = 0;
  while ((pos = f.code.find("delete", pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += 6;
    if (!token_at(f.code, here, "delete")) continue;
    // `= delete` (deleted special member) is idiomatic and allowed.
    std::size_t before = here;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(f.code[before - 1]))) {
      --before;
    }
    if (before > 0 && f.code[before - 1] == '=') continue;
    out.push_back({f.rel, line_of(f.line_starts, here), "raw-delete",
                   "naked delete; use RAII ownership"});
  }
}

void rule_unordered_iter(const FileScan& f,
                         const std::set<std::string>& unordered_vars,
                         std::vector<Finding>& out) {
  if (unordered_vars.empty()) return;
  std::size_t pos = 0;
  while ((pos = f.code.find("for", pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += 3;
    if (!token_at(f.code, here, "for")) continue;
    std::size_t i = skip_ws(f.code, here + 3);
    if (i >= f.code.size() || f.code[i] != '(') continue;
    // Find the ':' at parenthesis depth 1 (range-for); a ';' first means a
    // classic for loop.
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t j = i; j < f.code.size(); ++j) {
      const char c = f.code[j];
      if (c == '(') ++depth;
      else if (c == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      } else if (c == ';' && depth == 1) {
        break;  // classic for
      } else if (c == ':' && depth == 1 && colon == std::string::npos) {
        // ignore :: qualifiers
        const bool dbl = (j + 1 < f.code.size() && f.code[j + 1] == ':') ||
                         (j > 0 && f.code[j - 1] == ':');
        if (!dbl) colon = j;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = f.code.substr(colon + 1, close - colon - 1);
    // A call in the range expression (sorted_items(...), span(), ...)
    // means the container is already being adapted.
    if (range.find('(') != std::string::npos) continue;
    // Last identifier of the range expression is the container name.
    std::size_t e = range.size();
    while (e > 0 &&
           std::isspace(static_cast<unsigned char>(range[e - 1]))) {
      --e;
    }
    std::size_t s = e;
    while (s > 0 && ident_char(range[s - 1])) --s;
    const std::string name = range.substr(s, e - s);
    if (unordered_vars.count(name) == 0) continue;
    out.push_back(
        {f.rel, line_of(f.line_starts, here), "unordered-iter",
         "range-for over unordered container '" + name +
             "'; iterate check::sorted_items/sorted_keys instead"});
  }
}

void rule_naked_duration(const FileScan& f, std::vector<Finding>& out) {
  static const char* kTypes[] = {"int",      "long",     "short",
                                 "unsigned", "double",   "float",
                                 "int32_t",  "uint32_t", "int64_t",
                                 "uint64_t", "size_t"};
  static const char* kSuffixes[] = {"_ns", "_us", "_ms"};
  std::size_t i = 0;
  const std::string& t = f.code;
  while (i < t.size()) {
    if (!ident_char(t[i])) {
      ++i;
      continue;
    }
    std::size_t s = i;
    while (i < t.size() && ident_char(t[i])) ++i;
    const std::string word = t.substr(s, i - s);
    bool is_type = false;
    for (const char* ty : kTypes) {
      if (word == ty) {
        is_type = true;
        break;
      }
    }
    if (!is_type) continue;
    // Next identifier (skipping cv/ref noise) is the declared name.
    std::size_t j = skip_ws(t, i);
    while (j < t.size() && (t[j] == '&' || t[j] == '*')) {
      j = skip_ws(t, j + 1);
    }
    std::size_t ns = j;
    while (j < t.size() && ident_char(t[j])) ++j;
    const std::string name = t.substr(ns, j - ns);
    if (name.empty()) continue;
    bool suffixed = false;
    for (const char* suf : kSuffixes) {
      const std::string sfx = suf;
      if (name.size() > sfx.size() &&
          name.compare(name.size() - sfx.size(), sfx.size(), sfx) == 0) {
        suffixed = true;
        break;
      }
    }
    if (!suffixed) continue;
    // A '(' right after the name is a function declaration (count_ns()
    // style accessors) — durations are only banned as stored variables.
    const std::size_t after = skip_ws(t, j);
    if (after < t.size() && t[after] == '(') continue;
    out.push_back({f.rel, line_of(f.line_starts, ns), "naked-duration",
                   "raw arithmetic duration '" + name +
                       "'; use sim::Time/sim::Duration"});
  }
}

namespace {

// True when the balanced-paren argument text of a PP_CHECK contains a
// mutation: ++/--, or any assignment operator.  String contents are
// already blanked in the stripped view, so a '=' inside the component
// string cannot trip this.
bool has_side_effect(const std::string& a, std::size_t* where) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if ((a[i] == '+' && a[i + 1] == '+') ||
        (a[i] == '-' && a[i + 1] == '-')) {
      *where = i;
      return true;
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != '=') continue;
    const char next = i + 1 < a.size() ? a[i + 1] : '\0';
    if (next == '=') {
      ++i;  // '==' comparison; skip both
      continue;
    }
    const char prev = i > 0 ? a[i - 1] : '\0';
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') {
      // '<=' '>=' '!=' comparisons.  '<<=' / '>>=' ARE assignments:
      const char prev2 = i > 1 ? a[i - 2] : '\0';
      if (!((prev == '<' && prev2 == '<') || (prev == '>' && prev2 == '>')))
        continue;
    }
    if (prev == '[') continue;  // lambda capture [=]
    *where = i;
    return true;
  }
  return false;
}

}  // namespace

void rule_check_side_effect(const FileScan& f, std::vector<Finding>& out) {
  for (const char* macro : {"PP_CHECK", "PP_CHECK_AT"}) {
    std::size_t pos = 0;
    const std::string word = macro;
    while ((pos = f.code.find(word, pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += word.size();
      if (!token_at(f.code, here, word)) continue;
      // PP_CHECK_AT also matches the PP_CHECK scan; let its own pass
      // handle it.
      if (word == "PP_CHECK" && pos < f.code.size() && f.code[pos] == '_')
        continue;
      const std::size_t open = skip_ws(f.code, here + word.size());
      if (open >= f.code.size() || f.code[open] != '(') continue;
      const std::size_t close = match_group(f.code, open);
      if (close == std::string::npos) continue;
      const std::string args =
          f.code.substr(open + 1, close - open - 1);
      std::size_t where = 0;
      if (!has_side_effect(args, &where)) continue;
      out.push_back(
          {f.rel, line_of(f.line_starts, open + 1 + where),
           "check-side-effect",
           std::string{macro} +
               " argument mutates state (++/--/assignment); checks must "
               "be removable without changing behaviour"});
    }
  }
}

void run_file_rules(const FileScan& f, const std::string* sibling_code,
                    std::vector<Finding>& out) {
  std::set<std::string> unordered_vars;
  collect_unordered_vars(f.code, unordered_vars);
  if (sibling_code) collect_unordered_vars(*sibling_code, unordered_vars);
  rule_wall_clock_randomness(f, out);
  rule_new_delete(f, out);
  rule_unordered_iter(f, unordered_vars, out);
  rule_naked_duration(f, out);
  rule_check_side_effect(f, out);
}

}  // namespace pp::analyze

// pp_lint: single-file determinism lint for the simulation sources.
//
// Thin driver over the shared analyzer library (tools/analyze/): scans
// every .cpp/.hpp under the directories given on the command line and runs
// the per-file rule families —
//
//   wall-clock      real-time clocks — sim::Time is the only clock
//   randomness      std random facilities — sim::Rng is the only entropy
//                   source
//   unordered-iter  range-for directly over an unordered_map/unordered_set
//                   variable; iterate check::sorted_items/sorted_keys
//   raw-new         naked `new` — ownership must go through make_unique/
//                   make_shared/containers
//   raw-delete      naked `delete` (deleted special members are exempt)
//   naked-duration  arithmetic variables suffixed _ns/_us/_ms — durations
//                   must be sim::Time/sim::Duration
//   check-side-effect  ++/--/assignment inside a PP_CHECK argument —
//                   checks must be removable without changing behaviour
//
// The cross-file families (rng-stream-unique, obs-name-consistency,
// layer-dag, hot-path-alloc) need the whole-project index and live in
// pp_analyze; run that for the full pass.  A finding is suppressed by an
// allowlist comment on the same or the preceding line, with a mandatory
// justification:
//
//   // pp-lint: allow(unordered-iter): order-insensitive sum
//
// Exit status is the number of unsuppressed findings (0 = clean).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "analyze/rules.hpp"

int main(int argc, char** argv) {
  using namespace pp::analyze;
  namespace fs = std::filesystem;

  if (argc < 2) {
    std::fprintf(stderr, "usage: pp_lint <src-dir>...\n");
    return 2;
  }
  const auto in_fixture_tree = [](const fs::path& p) {
    for (const auto& part : p) {
      if (part == "fixtures") return true;
    }
    return false;
  };
  std::vector<fs::path> files;
  for (int a = 1; a < argc; ++a) {
    for (const auto& e : fs::recursive_directory_iterator(argv[a])) {
      if (!e.is_regular_file()) continue;
      // Fixture trees hold deliberate violations for the analyzer's own
      // tests; linting them would bury real findings.
      if (in_fixture_tree(e.path())) continue;
      const auto ext = e.path().extension();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());

  int violations = 0;
  for (const fs::path& p : files) {
    const FileScan f = load_file(p.string(), p.string());
    // A .cpp's member loops iterate containers declared in its header.
    std::string sibling_code;
    const std::string* sibling = nullptr;
    fs::path sib = p;
    if (p.extension() == ".cpp") {
      sib.replace_extension(".hpp");
      if (fs::exists(sib)) {
        sibling_code = load_file(sib.string(), sib.string()).code;
        sibling = &sibling_code;
      }
    }

    std::vector<Finding> found;
    run_file_rules(f, sibling, found);

    for (const Finding& v : found) {
      if (allowlisted(f.raw_lines, v.line, v.rule)) continue;
      std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                  v.rule.c_str(), v.message.c_str());
      ++violations;
    }
  }
  if (violations > 0) {
    std::printf("pp_lint: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("pp_lint: clean (%zu files)\n", files.size());
  return 0;
}

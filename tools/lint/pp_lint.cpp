// pp_lint: repo-specific determinism lint for the simulation sources.
//
// Scans every .cpp/.hpp under the directories given on the command line and
// rejects constructs that break bit-deterministic replay or the project's
// resource rules:
//
//   wall-clock      real-time clocks (system_clock, time(), gettimeofday,
//                   ...) — sim::Time is the only clock
//   randomness      std random facilities (rand, mt19937, random_device,
//                   ...) — sim::Rng is the only entropy source
//   unordered-iter  range-for directly over a variable declared as an
//                   unordered_map/unordered_set — bucket order is not
//                   deterministic; iterate via check::sorted_items/
//                   sorted_keys instead
//   raw-new         naked `new` — ownership must go through make_unique/
//                   make_shared/containers
//   raw-delete      naked `delete` (deleted special members are exempt)
//   naked-duration  arithmetic variables suffixed _ns/_us/_ms — durations
//                   must be sim::Time/sim::Duration (accessor *functions*
//                   like count_ns() are exempt)
//   std-function    std::function inside src/sim or src/net — the event
//                   and packet hot paths; type-erased std::function calls
//                   there cost a heap allocation per capture.  Use
//                   sim::EventCallback, a template parameter, or a
//                   concrete functor (cold-path uses take an allow)
//
// A finding is suppressed by an allowlist comment on the same or the
// preceding line, with a mandatory justification:
//
//   // pp-lint: allow(unordered-iter): order-insensitive sum
//
// Exit status is the number of unsuppressed findings (0 = clean).  The
// scanner is a hand-rolled tokenizer over comment- and string-stripped
// text; it favours simple rules with an escape hatch over full parsing.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Replace comments and string/char literal contents with spaces, keeping
// line structure intact.  Raw strings are handled well enough for this
// codebase (no raw strings containing quotes).
std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class St { Code, Line, Block, Str, Chr } st = St::Code;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'' && i > 0 && !ident_char(in[i - 1])) {
          st = St::Chr;  // skip digit separators like 1'000'000
        }
        break;
      case St::Line:
        if (c == '\n') st = St::Code;
        else out[i] = ' ';
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') {
            if (i + 1 < in.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// True when text[pos..] starts the exact identifier `word` on a token
// boundary.
bool token_at(const std::string& text, std::size_t pos,
              const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !ident_char(text[end]);
}

std::size_t skip_ws(const std::string& t, std::size_t i) {
  while (i < t.size() &&
         std::isspace(static_cast<unsigned char>(t[i]))) {
    ++i;
  }
  return i;
}

int line_of(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  int lo = 0, hi = static_cast<int>(line_starts.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (line_starts[static_cast<std::size_t>(mid)] <= pos) lo = mid;
    else hi = mid - 1;
  }
  return lo + 1;  // 1-indexed
}

// `// pp-lint: allow(<rule>): <justification>` on the given or preceding
// raw line, with a non-empty justification.
bool allowlisted(const std::vector<std::string>& raw_lines, int line,
                 const std::string& rule) {
  const std::string needle = "pp-lint: allow(" + rule + ")";
  for (int l = line; l >= line - 1 && l >= 1; --l) {
    const std::string& s = raw_lines[static_cast<std::size_t>(l - 1)];
    const std::size_t p = s.find(needle);
    if (p == std::string::npos) continue;
    std::size_t j = p + needle.size();
    if (j < s.size() && s[j] == ':') {
      ++j;
      while (j < s.size() &&
             std::isspace(static_cast<unsigned char>(s[j]))) {
        ++j;
      }
      if (j < s.size()) return true;  // non-empty justification
    }
    // allow() without a justification does not suppress anything.
  }
  return false;
}

struct FileScan {
  std::string path;
  std::string raw;
  std::string code;  // comment/string-stripped, same length as raw
  std::vector<std::string> raw_lines;
  std::vector<std::size_t> line_starts;
};

FileScan load(const fs::path& p) {
  FileScan f;
  f.path = p.string();
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  f.raw = ss.str();
  f.code = strip_comments_and_strings(f.raw);
  f.line_starts.push_back(0);
  std::string cur;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i] == '\n') {
      f.raw_lines.push_back(cur);
      cur.clear();
      f.line_starts.push_back(i + 1);
    } else {
      cur += f.raw[i];
    }
  }
  f.raw_lines.push_back(cur);
  return f;
}

// Collect names of variables declared with an unordered container type in
// this file's stripped text.  Handles multi-line declarations by matching
// angle brackets from the template argument list.
void collect_unordered_vars(const std::string& code,
                            std::set<std::string>& names) {
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string::npos) {
      if (!token_at(code, pos, kw)) {
        ++pos;
        continue;
      }
      std::size_t i = pos + std::string(kw).size();
      pos = i;
      i = skip_ws(code, i);
      if (i >= code.size() || code[i] != '<') continue;  // e.g. using-decl
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        else if (code[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
      }
      i = skip_ws(code, i);
      if (i < code.size() && code[i] == '&') i = skip_ws(code, i + 1);
      std::string name;
      while (i < code.size() && ident_char(code[i])) name += code[i++];
      if (!name.empty()) names.insert(name);
    }
  }
}

void scan_simple_tokens(const FileScan& f, std::vector<Finding>& out) {
  struct Ban {
    const char* rule;
    const char* word;
    bool call_only;  // only when followed by '('
    const char* msg;
  };
  static const Ban kBans[] = {
      {"wall-clock", "system_clock", false,
       "wall clock; use sim::Time from the simulator"},
      {"wall-clock", "high_resolution_clock", false,
       "wall clock; use sim::Time from the simulator"},
      {"wall-clock", "steady_clock", false,
       "wall clock; use sim::Time from the simulator"},
      {"wall-clock", "gettimeofday", false,
       "wall clock; use sim::Time from the simulator"},
      {"wall-clock", "clock_gettime", false,
       "wall clock; use sim::Time from the simulator"},
      {"wall-clock", "time", true,
       "wall clock; use sim::Time from the simulator"},
      {"randomness", "rand", true,
       "unseeded randomness; use sim::Rng (simulator-owned, seeded)"},
      {"randomness", "srand", false,
       "unseeded randomness; use sim::Rng (simulator-owned, seeded)"},
      {"randomness", "random_device", false,
       "nondeterministic entropy; use sim::Rng (simulator-owned, seeded)"},
      {"randomness", "mt19937", false,
       "std random engine; use sim::Rng (simulator-owned, seeded)"},
      {"randomness", "mt19937_64", false,
       "std random engine; use sim::Rng (simulator-owned, seeded)"},
      {"randomness", "minstd_rand", false,
       "std random engine; use sim::Rng (simulator-owned, seeded)"},
      {"randomness", "default_random_engine", false,
       "std random engine; use sim::Rng (simulator-owned, seeded)"},
  };
  for (const Ban& b : kBans) {
    std::size_t pos = 0;
    const std::string word = b.word;
    while ((pos = f.code.find(word, pos)) != std::string::npos) {
      const std::size_t here = pos;
      pos += word.size();
      if (!token_at(f.code, here, word)) continue;
      if (b.call_only) {
        const std::size_t after = skip_ws(f.code, here + word.size());
        if (after >= f.code.size() || f.code[after] != '(') continue;
        // A *declaration* of a function with this name (preceded by a type
        // identifier) is not a call of the banned libc function.
        std::size_t before = here;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 f.code[before - 1]))) {
          --before;
        }
        const bool std_qualified =
            before >= 5 && f.code.compare(before - 5, 5, "std::") == 0;
        if (!std_qualified && before > 0 &&
            (ident_char(f.code[before - 1]) || f.code[before - 1] == ':' ||
             f.code[before - 1] == '.' || f.code[before - 1] == '>' ||
             f.code[before - 1] == '&' || f.code[before - 1] == '*')) {
          // Member access (x.time()), a different namespace, or a
          // declaration preceded by a return type — not the libc call.
          continue;
        }
      }
      out.push_back({f.path, line_of(f.line_starts, here), b.rule, b.msg});
    }
  }
}

// std::function is banned on the hot paths only: src/sim (the event
// engine) and src/net (per-packet code).  Elsewhere (transport callbacks,
// sweep plumbing, bench harness) it is fine.
void scan_std_function(const FileScan& f, std::vector<Finding>& out) {
  const bool hot = f.path.find("src/sim") != std::string::npos ||
                   f.path.find("src/net") != std::string::npos;
  if (!hot) return;
  static const std::string word = "std::function";
  std::size_t pos = 0;
  while ((pos = f.code.find(word, pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += word.size();
    const std::size_t end = here + word.size();
    if (end < f.code.size() && ident_char(f.code[end])) continue;
    if (here > 0 &&
        (ident_char(f.code[here - 1]) || f.code[here - 1] == ':')) {
      continue;
    }
    out.push_back({f.path, line_of(f.line_starts, here), "std-function",
                   "std::function on a sim/net hot path allocates per "
                   "capture; use sim::EventCallback, a template parameter, "
                   "or a concrete functor"});
  }
}

void scan_new_delete(const FileScan& f, std::vector<Finding>& out) {
  std::size_t pos = 0;
  while ((pos = f.code.find("new", pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += 3;
    if (!token_at(f.code, here, "new")) continue;
    out.push_back({f.path, line_of(f.line_starts, here), "raw-new",
                   "naked new; use make_unique/make_shared or a container"});
  }
  pos = 0;
  while ((pos = f.code.find("delete", pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += 6;
    if (!token_at(f.code, here, "delete")) continue;
    // `= delete` (deleted special member) is idiomatic and allowed.
    std::size_t before = here;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(f.code[before - 1]))) {
      --before;
    }
    if (before > 0 && f.code[before - 1] == '=') continue;
    out.push_back({f.path, line_of(f.line_starts, here), "raw-delete",
                   "naked delete; use RAII ownership"});
  }
}

void scan_unordered_iter(const FileScan& f,
                         const std::set<std::string>& unordered_vars,
                         std::vector<Finding>& out) {
  if (unordered_vars.empty()) return;
  std::size_t pos = 0;
  while ((pos = f.code.find("for", pos)) != std::string::npos) {
    const std::size_t here = pos;
    pos += 3;
    if (!token_at(f.code, here, "for")) continue;
    std::size_t i = skip_ws(f.code, here + 3);
    if (i >= f.code.size() || f.code[i] != '(') continue;
    // Find the ':' at parenthesis depth 1 (range-for); a ';' first means a
    // classic for loop.
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t j = i; j < f.code.size(); ++j) {
      const char c = f.code[j];
      if (c == '(') ++depth;
      else if (c == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      } else if (c == ';' && depth == 1) {
        break;  // classic for
      } else if (c == ':' && depth == 1 && colon == std::string::npos) {
        // ignore :: qualifiers
        const bool dbl = (j + 1 < f.code.size() && f.code[j + 1] == ':') ||
                         (j > 0 && f.code[j - 1] == ':');
        if (!dbl) colon = j;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = f.code.substr(colon + 1, close - colon - 1);
    // A call in the range expression (sorted_items(...), span(), ...)
    // means the container is already being adapted.
    if (range.find('(') != std::string::npos) continue;
    // Last identifier of the range expression is the container name.
    std::size_t e = range.size();
    while (e > 0 &&
           std::isspace(static_cast<unsigned char>(range[e - 1]))) {
      --e;
    }
    std::size_t s = e;
    while (s > 0 && ident_char(range[s - 1])) --s;
    const std::string name = range.substr(s, e - s);
    if (unordered_vars.count(name) == 0) continue;
    out.push_back(
        {f.path, line_of(f.line_starts, here), "unordered-iter",
         "range-for over unordered container '" + name +
             "'; iterate check::sorted_items/sorted_keys instead"});
  }
}

void scan_naked_duration(const FileScan& f, std::vector<Finding>& out) {
  static const char* kTypes[] = {"int",      "long",     "short",
                                 "unsigned", "double",   "float",
                                 "int32_t",  "uint32_t", "int64_t",
                                 "uint64_t", "size_t"};
  static const char* kSuffixes[] = {"_ns", "_us", "_ms"};
  std::size_t i = 0;
  const std::string& t = f.code;
  while (i < t.size()) {
    if (!ident_char(t[i])) {
      ++i;
      continue;
    }
    std::size_t s = i;
    while (i < t.size() && ident_char(t[i])) ++i;
    const std::string word = t.substr(s, i - s);
    bool is_type = false;
    for (const char* ty : kTypes) {
      if (word == ty) {
        is_type = true;
        break;
      }
    }
    if (!is_type) continue;
    // Next identifier (skipping cv/ref noise) is the declared name.
    std::size_t j = skip_ws(t, i);
    while (j < t.size() && (t[j] == '&' || t[j] == '*')) {
      j = skip_ws(t, j + 1);
    }
    std::size_t ns = j;
    while (j < t.size() && ident_char(t[j])) ++j;
    const std::string name = t.substr(ns, j - ns);
    if (name.empty()) continue;
    bool suffixed = false;
    for (const char* suf : kSuffixes) {
      const std::string sfx = suf;
      if (name.size() > sfx.size() &&
          name.compare(name.size() - sfx.size(), sfx.size(), sfx) == 0) {
        suffixed = true;
        break;
      }
    }
    if (!suffixed) continue;
    // A '(' right after the name is a function declaration (count_ns()
    // style accessors) — durations are only banned as stored variables.
    const std::size_t after = skip_ws(t, j);
    if (after < t.size() && t[after] == '(') continue;
    out.push_back({f.path, line_of(f.line_starts, ns), "naked-duration",
                   "raw arithmetic duration '" + name +
                       "'; use sim::Time/sim::Duration"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: pp_lint <src-dir>...\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int a = 1; a < argc; ++a) {
    for (const auto& e : fs::recursive_directory_iterator(argv[a])) {
      if (!e.is_regular_file()) continue;
      const auto ext = e.path().extension();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());

  int violations = 0;
  for (const fs::path& p : files) {
    const FileScan f = load(p);
    std::set<std::string> unordered_vars;
    collect_unordered_vars(f.code, unordered_vars);
    // A .cpp's member loops iterate containers declared in its header.
    fs::path sibling = p;
    if (p.extension() == ".cpp") {
      sibling.replace_extension(".hpp");
      if (fs::exists(sibling)) {
        collect_unordered_vars(load(sibling).code, unordered_vars);
      }
    }

    std::vector<Finding> found;
    scan_simple_tokens(f, found);
    scan_std_function(f, found);
    scan_new_delete(f, found);
    scan_unordered_iter(f, unordered_vars, found);
    scan_naked_duration(f, found);

    for (const Finding& v : found) {
      if (allowlisted(f.raw_lines, v.line, v.rule)) continue;
      std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                  v.rule.c_str(), v.message.c_str());
      ++violations;
    }
  }
  if (violations > 0) {
    std::printf("pp_lint: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("pp_lint: clean (%zu files)\n", files.size());
  return 0;
}

// Channel-quality specifications: the declarative half of the per-client
// channel subsystem.
//
// A ChannelSpec describes a multi-state Markov quality ladder for every
// client's wireless channel, as pure data: rung 0 is the best state and
// higher rungs are progressively worse.  The chain steps in one of two
// clocks.  With tick_s == 0 each delivery attempt advances the chain one
// step (one transition draw) and then corrupts the frame with the rung's
// own loss probability — the two-rung special case is exactly the
// Gilbert-Elliott model that used to live privately inside
// fault::FaultPlan, preserved draw for draw.  With tick_s > 0 the chain
// instead evolves on that wall-clock tick: each delivery attempt first
// catches the chain up with one transition draw per elapsed tick, then
// draws corruption.  Time-based fading is what makes *reacting* to channel
// state meaningful — a deferred client's fade can end while it sleeps,
// which per-attempt stepping (no attempts => frozen chain) cannot express.
// The N-rung generalization is the rate-ladder channel of the joint
// queue/channel-aware scheduling literature (arXiv:1807.10128).
//
// Deliberately light on dependencies (plain numbers only) so config-level
// code can embed a spec without pulling in the network stack.  The runtime
// half that owns the RNG streams and per-client state is
// channel::ChannelModel.
#pragma once

#include <vector>

namespace pp::channel {

// One quality state.  Transition probabilities are per delivery attempt:
// p_up moves toward rung 0 (better), p_down toward the last rung (worse).
// The stepper ignores p_up on rung 0 and p_down on the last rung.
struct ChannelRung {
  double p_up = 0.0;
  double p_down = 0.0;
  double loss = 0.0;         // per-attempt corruption probability
  double goodput_bps = 4e6;  // nominal goodput published to observers
};

struct ChannelSpec {
  bool enabled = false;
  // true: every client draws from its own stream derived from the run seed
  // and its address, so adding or removing one client's traffic can never
  // shift another client's draw sequence.  false: all clients share one
  // stream in attempt order — the legacy FaultPlan draw sequence, kept so
  // delegated Gilbert-Elliott runs reproduce their pre-promotion digests.
  bool per_client_streams = true;
  // Recent-loss EWMA smoothing per attempt (observer surface only).
  double ewma_alpha = 0.05;
  // Chain clock: 0 = legacy per-attempt stepping (transition probabilities
  // are per delivery attempt); > 0 = time-based stepping (probabilities are
  // per tick of this many seconds, caught up lazily at each attempt).
  double tick_s = 0.0;
  std::vector<ChannelRung> rungs;  // index 0 = best; needs >= 2 when enabled

  int num_states() const { return static_cast<int>(rungs.size()); }

  // -- Presets ----------------------------------------------------------------------
  // The classic two-state Gilbert-Elliott channel (rung 0 = good).
  static ChannelSpec two_state(double p_good_bad, double p_bad_good,
                               double loss_good, double loss_bad,
                               double goodput_bps = 4e6);
  // An n-rung rate ladder parameterized by burstiness in [0, 1]: higher
  // burstiness means stickier degraded states (longer fades) and deeper
  // worst-rung loss.
  static ChannelSpec ladder(int n, double burstiness,
                            double top_goodput_bps = 4e6);
};

}  // namespace pp::channel

#include "channel/model.hpp"

#include <cmath>
#include <utility>

#include "check/check.hpp"
#include "obs/metrics.hpp"

namespace pp::channel {

namespace {

// Stream tag folded into the run seed so channel draws are independent of
// the simulator's shared stream and of the fault stream (which has its own
// tag).  Changing this constant changes every channel-modeled run.
constexpr std::uint64_t kChannelStreamTag = 0xC4A77E10'5AD1E5CULL;
// Odd multiplier decorrelating per-client child seeds before splitmix64.
constexpr std::uint64_t kClientSeedMix = 0x9E3779B97F4A7C15ULL;

}  // namespace

sim::Rng channel_stream(std::uint64_t run_seed) {
  return sim::Rng{run_seed ^ kChannelStreamTag};
}

std::uint64_t client_stream_seed(std::uint64_t run_seed, std::uint32_t raw_ip) {
  return (run_seed ^ kChannelStreamTag) +
         kClientSeedMix * (static_cast<std::uint64_t>(raw_ip) + 1);
}

ChannelSpec ChannelSpec::two_state(double p_good_bad, double p_bad_good,
                                   double loss_good, double loss_bad,
                                   double goodput_bps) {
  ChannelSpec s;
  s.enabled = true;
  s.rungs.push_back(
      ChannelRung{/*p_up=*/0.0, /*p_down=*/p_good_bad, loss_good, goodput_bps});
  s.rungs.push_back(ChannelRung{/*p_up=*/p_bad_good, /*p_down=*/0.0, loss_bad,
                                goodput_bps * 0.2});
  return s;
}

ChannelSpec ChannelSpec::ladder(int n, double burstiness,
                                double top_goodput_bps) {
  ChannelSpec s;
  s.enabled = true;
  s.rungs.reserve(static_cast<std::size_t>(n));
  // The ladder fades in wall-clock time (20 ms chain tick), not per
  // attempt: a client that is not being served still sees its fade end,
  // which is the physical premise behind deferring bad-channel clients
  // (DESIGN.md §12.3).  Higher burstiness: degraded rungs are entered more
  // often and left more slowly (correlated fades), and the worst rung
  // loses nearly everything.  Exit rates put fades on the order of a
  // second — long enough to be a real fade, short enough that a
  // deadline-bounded deferral can outwait one.
  s.tick_s = 0.02;
  const double worst_loss = 0.55 + 0.4 * burstiness;
  for (int i = 0; i < n; ++i) {
    const double t = n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
    ChannelRung r;
    r.p_up = i == 0 ? 0.0 : 0.09 * (1.05 - burstiness);
    r.p_down = i == n - 1 ? 0.0 : 0.008 * (0.15 + burstiness);
    // Convex in depth: mid rungs are mildly lossy, the bottom is a fade.
    r.loss = 0.002 + (worst_loss - 0.002) * t * t;
    r.goodput_bps = top_goodput_bps * std::pow(0.6, i);
    s.rungs.push_back(r);
  }
  return s;
}

ChannelModel::ChannelModel(ChannelSpec spec, std::uint64_t run_seed)
    : spec_{std::move(spec)},
      seed_{run_seed},
      shared_{channel_stream(run_seed)} {
  PP_CHECK(!spec_.rungs.empty(), "channel.spec.rungs");
}

ChannelModel::ChannelModel(ChannelSpec spec, sim::Rng stream)
    : spec_{std::move(spec)}, shared_{stream} {
  spec_.per_client_streams = false;
  PP_CHECK(!spec_.rungs.empty(), "channel.spec.rungs");
}

void ChannelModel::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_attempts_ = m->counter("channel.state.attempts");
    ctr_losses_ = m->counter("channel.state.losses");
    ctr_worse_ = m->counter("channel.state.worse_entries");
  });
}

ChannelModel::Station& ChannelModel::station(std::uint32_t raw) {
  auto it = stations_.find(raw);
  if (it != stations_.end()) return it->second;
  Station st;
  if (spec_.per_client_streams) {
    st.rng.emplace(client_stream_seed(seed_, raw));
  }
  return stations_.emplace(raw, std::move(st)).first->second;
}

// One transition draw: exactly one uniform per step (the legacy
// Gilbert-Elliott discipline; a two-rung ladder consumes the identical
// draw sequence the fault layer always has).  Returns true when the chain
// moved to a worse rung.
bool ChannelModel::step(Station& st, sim::Rng& rng) {
  const int last = spec_.num_states() - 1;
  if (last == 0) return false;
  const ChannelRung& r = spec_.rungs[static_cast<std::size_t>(st.state)];
  const double u = rng.uniform();
  if (st.state == 0) {
    if (u < r.p_down) {
      ++st.state;
      return true;
    }
  } else if (st.state == last) {
    if (u < r.p_up) --st.state;
  } else {
    if (u < r.p_up) {
      --st.state;
    } else if (u < r.p_up + r.p_down) {
      ++st.state;
      return true;
    }
  }
  return false;
}

ChannelModel::Attempt ChannelModel::finish_attempt(Station& st, sim::Rng& rng,
                                                   bool worsened) {
  Attempt a;
  a.worsened = worsened;
  a.state = st.state;

  // Loss draw from the post-transition rung, only when it can lose (a zero
  // probability must not consume randomness — digest compatibility).
  const double p = spec_.rungs[static_cast<std::size_t>(st.state)].loss;
  a.lost = p > 0 && rng.chance(p);
  st.ewma += spec_.ewma_alpha * ((a.lost ? 1.0 : 0.0) - st.ewma);

  ++stats_.attempts;
  if (a.lost) ++stats_.losses;
  if (a.worsened) ++stats_.worse_entries;
  PP_OBS(if (ctr_attempts_) {
    ctr_attempts_->inc();
    if (a.lost) ctr_losses_->inc();
    if (a.worsened) ctr_worse_->inc();
  });
  return a;
}

ChannelModel::Attempt ChannelModel::attempt(net::Ipv4Addr client) {
  Station& st = station(client.raw());
  sim::Rng& rng = st.rng ? *st.rng : shared_;
  return finish_attempt(st, rng, step(st, rng));
}

ChannelModel::Attempt ChannelModel::attempt_at(net::Ipv4Addr client,
                                               sim::Time now) {
  if (spec_.tick_s <= 0.0) return attempt(client);
  Station& st = station(client.raw());
  sim::Rng& rng = st.rng ? *st.rng : shared_;
  // Catch the chain up: one transition draw per tick elapsed since the
  // station's epoch.  The chain thus evolves in wall-clock time whether or
  // not the client is being served — a fade ends while a deferred client
  // sleeps.  The draw count is a pure function of `now`, so replay stays
  // deterministic and salt-invariant.
  const auto tick_ns =
      static_cast<std::int64_t>(spec_.tick_s * 1e9);
  const std::int64_t target = now.count_ns() / tick_ns;
  bool worsened = false;
  for (; st.ticks_done < target; ++st.ticks_done) {
    worsened = step(st, rng) || worsened;
  }
  return finish_attempt(st, rng, worsened);
}

bool ChannelModel::corrupted(const net::Packet& pkt, net::Ipv4Addr receiver,
                             sim::Time now) {
  return attempt_at(station_of(pkt, receiver), now).lost;
}

ChannelView ChannelModel::view_of(net::Ipv4Addr client) const {
  ChannelView v;
  v.num_states = spec_.num_states();
  const auto it = stations_.find(client.raw());
  if (it == stations_.end()) {
    // Never attempted: report the best rung's nominal goodput.
    v.goodput_bps = spec_.rungs.empty() ? 0.0 : spec_.rungs[0].goodput_bps;
    return v;
  }
  v.known = true;
  v.state = it->second.state;
  v.loss_ewma = it->second.ewma;
  v.goodput_bps =
      spec_.rungs[static_cast<std::size_t>(v.state)].goodput_bps *
      (1.0 - v.loss_ewma);
  return v;
}

}  // namespace pp::channel

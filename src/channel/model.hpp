// ChannelModel: the runtime half of the per-client channel subsystem.
//
// Owns every client's Markov quality chain plus the RNG that drives it, in
// one of two stream modes:
//
//  * per-client streams (the default): each client's chain draws from an
//    independent stream derived from the run seed and the client address,
//    so one client's traffic volume can never shift another's draws and
//    replay digests stay salt-invariant (state lives in an ordered map);
//  * one shared stream: all clients draw from a single stream in attempt
//    order — the exact draw sequence fault::FaultPlan has always produced,
//    kept so Gilbert-Elliott runs delegated from the fault layer reproduce
//    their pre-promotion replay digests bit for bit.
//
// The model is both a net::ChannelLossModel (install it on the medium to
// corrupt frames) and a ChannelObserver (schedulers query per-client
// quality).  fault::FaultPlan instead calls attempt() directly and keeps
// its own stats/obs, so the delegated chain never double-publishes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "channel/observer.hpp"
#include "channel/spec.hpp"
#include "net/wireless.hpp"
#include "obs/hooks.hpp"
#include "sim/rng.hpp"

namespace pp::channel {

struct ChannelStats {
  std::uint64_t attempts = 0;
  std::uint64_t losses = 0;
  std::uint64_t worse_entries = 0;  // transitions to a worse rung
};

class ChannelModel : public net::ChannelLossModel, public ChannelObserver {
 public:
  // What one delivery attempt did to a client's channel.
  struct Attempt {
    bool lost = false;
    int state = 0;        // rung after the transition step
    bool worsened = false;  // this attempt moved the chain to a worse rung
  };

  // Per-client streams derived from `run_seed` (spec.per_client_streams
  // must be true).
  ChannelModel(ChannelSpec spec, std::uint64_t run_seed);
  // Shared-stream mode with an explicit pre-seeded stream (FaultPlan
  // delegation; forces spec.per_client_streams = false).
  ChannelModel(ChannelSpec spec, sim::Rng stream);

  ChannelModel(const ChannelModel&) = delete;
  ChannelModel& operator=(const ChannelModel&) = delete;

  // Advance `client`'s chain one step and draw frame corruption from the
  // resulting rung.  Exactly one transition draw per attempt, plus one loss
  // draw when the rung's loss probability is positive (the legacy
  // Gilbert-Elliott draw discipline).
  Attempt attempt(net::Ipv4Addr client);

  // Time-aware attempt: when the spec has a chain tick, first catch the
  // client's chain up with one transition draw per tick elapsed, then draw
  // corruption.  With tick_s == 0 this is exactly attempt().  `worsened`
  // reports whether any catch-up step moved to a worse rung.
  Attempt attempt_at(net::Ipv4Addr client, sim::Time now);

  // net::ChannelLossModel: attempt_at() on the frame's station-side
  // channel.
  bool corrupted(const net::Packet& pkt, net::Ipv4Addr receiver,
                 sim::Time now) override;

  // ChannelObserver: pure query, never draws or mutates.
  ChannelView view_of(net::Ipv4Addr client) const override;

  // Publish channel.state.* counters.
  void set_obs(obs::Hook hook);

  const ChannelStats& stats() const { return stats_; }
  const ChannelSpec& spec() const { return spec_; }

 private:
  struct Station {
    int state = 0;  // every channel starts in the best rung
    double ewma = 0.0;
    std::int64_t ticks_done = 0;  // chain ticks consumed (tick_s > 0 mode)
    std::optional<sim::Rng> rng;  // per-client mode only
  };

  Station& station(std::uint32_t raw);
  bool step(Station& st, sim::Rng& rng);
  Attempt finish_attempt(Station& st, sim::Rng& rng, bool worsened);

  ChannelSpec spec_;
  std::uint64_t seed_ = 0;
  sim::Rng shared_;  // shared-stream mode draws; unused per-client
  // Ordered map: chain state and stream creation must never follow
  // hash-bucket layout.
  std::map<std::uint32_t, Station> stations_;

  ChannelStats stats_;
  obs::Hook obs_;
  obs::Counter* ctr_attempts_ = nullptr;
  obs::Counter* ctr_losses_ = nullptr;
  obs::Counter* ctr_worse_ = nullptr;
};

// The wireless channel belongs to the (client, AP) pair: downlink frames
// carry the client as receiver; uplink frames reach the AP radio (address
// 0.0.0.0), so the transmitting client identifies the channel.
inline net::Ipv4Addr station_of(const net::Packet& pkt,
                                net::Ipv4Addr receiver) {
  return receiver.raw() != 0 ? receiver : pkt.src;
}

// The named channel RNG stream: independent of the simulator's shared
// stream and of the fault stream.  Exposed so tests can reproduce draws
// without constructing a model.
sim::Rng channel_stream(std::uint64_t run_seed);
// The per-client child seed (per_client_streams mode).
std::uint64_t client_stream_seed(std::uint64_t run_seed, std::uint32_t raw_ip);

}  // namespace pp::channel

// ChannelObserver: the read-only query surface of the channel subsystem.
//
// Consumers (the proxy's scheduler policies, diagnostics) see a per-client
// ChannelView snapshot — current quality rung, estimated goodput, recent
// loss EWMA — without any way to advance the chain or touch its RNG.
// Querying is pure: it never draws randomness and never mutates state, so
// wiring an observer into a run cannot perturb replay digests.
#pragma once

#include "net/addr.hpp"

namespace pp::channel {

// Snapshot of one client's channel quality at query time.
struct ChannelView {
  bool known = false;  // the observer has state for this client
  int state = 0;       // quality rung, 0 = best
  int num_states = 1;
  double loss_ewma = 0.0;    // recent per-attempt loss, EWMA-smoothed
  double goodput_bps = 0.0;  // rung goodput discounted by the loss EWMA

  // In the worst rung (the Gilbert-Elliott "bad" state).
  bool bad() const { return known && num_states > 1 && state == num_states - 1; }
};

class ChannelObserver {
 public:
  virtual ~ChannelObserver() = default;
  virtual ChannelView view_of(net::Ipv4Addr client) const = 0;
};

}  // namespace pp::channel

// UDP socket bound to a node port.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace pp::transport {

class UdpSocket : public net::DatagramHandler {
 public:
  using ReceiveFn = std::function<void(const net::Packet&)>;

  // Binds `port` on `node` (0 => ephemeral).  Unbinds on destruction.
  UdpSocket(net::Node& node, net::Port port = 0);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  net::Port port() const { return port_; }

  void set_receive_fn(ReceiveFn fn) { receive_ = std::move(fn); }

  // Send `bytes` of payload, optionally carrying an application message.
  void send_to(net::Ipv4Addr dst, net::Port dst_port, std::uint32_t bytes,
               std::shared_ptr<const net::Message> data = nullptr);

  // net::DatagramHandler.
  void on_datagram(const net::Packet& pkt) override;

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }

 private:
  net::Node& node_;
  net::Port port_;
  ReceiveFn receive_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace pp::transport

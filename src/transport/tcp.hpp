// A simplified but functional TCP.
//
// Implements what the paper's transparent proxy depends on: three-way
// handshake, byte-stream sequence space, cumulative ACKs with out-of-order
// reassembly, receiver flow control (advertised window), slow start + AIMD
// congestion control, RTO with exponential backoff and Karn's algorithm,
// fast retransmit on three duplicate ACKs, and FIN teardown.
//
// Byte contents are modelled as counts (the simulation never materializes
// payload buffers).  Sequence numbers are 64-bit and never wrap.
//
// Proxy-specific hooks:
//   * set_send_gate(false) pauses all transmissions (used to confine the
//     proxy's client-side connection to its burst slot);
//   * set_egress_hook() observes/mutates every outgoing segment (used by
//     the packet-marking machinery of Section 3.2.2);
//   * manual consume mode lets the owner delay freeing receive-buffer
//     space so flow control back-pressures the sender (the proxy's
//     server-side connection throttles fast wired servers this way).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/hooks.hpp"
#include "sim/simulator.hpp"

namespace pp::transport {

struct Endpoint {
  net::Ipv4Addr ip;
  net::Port port = 0;
  auto operator<=>(const Endpoint&) const = default;
};

struct TcpOptions {
  std::uint32_t mss = 1400;
  std::uint32_t recv_window = 64 * 1024;
  std::uint32_t initial_cwnd_segments = 2;
  sim::Duration min_rto = sim::Time::ms(200);
  sim::Duration initial_rto = sim::Time::sec(1);
  sim::Duration max_rto = sim::Time::sec(60);
  // Owner consumes received bytes explicitly via consume(); until then they
  // occupy receive-buffer space and shrink the advertised window.
  bool manual_consume = false;
  // When the send gate is closed, defer RTO retransmissions until the gate
  // reopens instead of transmitting into a sleeping client's void.
  bool defer_rtx_when_gated = false;
};

enum class TcpState : std::uint8_t {
  Closed,
  SynSent,
  SynRcvd,
  Established,
  FinWait,    // our FIN sent, not yet acked
  CloseWait,  // remote FIN received, we have not closed yet
  LastAck,    // remote FIN received and our FIN sent
  Done,
};

const char* to_string(TcpState s);

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;       // payload bytes, incl. retransmissions
  std::uint64_t bytes_delivered = 0;  // in-order bytes handed to the app
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_received = 0;
};

class TcpConnection : public net::SegmentHandler {
 public:
  using SendFn = std::function<void(net::Packet)>;
  using DeliverFn = std::function<void(std::uint64_t bytes)>;
  using EventFn = std::function<void()>;
  using EgressHook = std::function<void(net::Packet&)>;

  // `passive` connections wait for a SYN; active ones send it via connect().
  TcpConnection(sim::Simulator& sim, SendFn send, Endpoint local,
                Endpoint remote, TcpOptions opts, bool passive);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // -- Application interface --------------------------------------------------
  void connect();
  // Append bytes to the send stream.
  void send(std::uint64_t bytes);
  // Half-close: FIN once all queued bytes are sent and acked.
  void close();
  // Free receive-buffer space (manual_consume mode only).
  void consume(std::uint64_t bytes);

  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }
  void set_on_established(EventFn fn) { on_established_ = std::move(fn); }
  void set_on_closed(EventFn fn) { on_closed_ = std::move(fn); }
  // Fires once when the peer's FIN is consumed (stream fully received).
  void set_on_remote_fin(EventFn fn) { on_remote_fin_ = std::move(fn); }

  // -- Proxy hooks -------------------------------------------------------------
  void set_send_gate(bool open);
  bool send_gate() const { return gate_open_; }
  void set_egress_hook(EgressHook h) { egress_hook_ = std::move(h); }

  // Publish retransmission/timeout counters and RTO-stall timeline events.
  void set_obs(obs::Hook hook);

  // -- Introspection -----------------------------------------------------------
  TcpState state() const { return state_; }
  bool established() const { return state_ == TcpState::Established; }
  bool done() const { return state_ == TcpState::Done; }
  Endpoint local() const { return local_; }
  Endpoint remote() const { return remote_; }
  // Stream bytes queued by the app but not yet transmitted the first time.
  std::uint64_t bytes_unsent() const { return app_limit_ - snd_nxt_data_; }
  // Total bytes the app has ever queued via send() (sent or not).
  std::uint64_t bytes_submitted() const { return app_limit_; }
  // close() requested but the FIN has not gone out yet (e.g. gated).
  bool close_pending() const { return fin_pending_ && !fin_sent_; }
  // FIN sent but not yet acknowledged (it may need a retransmission slot).
  bool fin_unacked() const { return fin_sent_ && !fin_acked_; }
  std::uint64_t bytes_in_flight() const { return snd_nxt_data_ - snd_una_data_; }
  std::uint64_t bytes_acked() const { return snd_una_data_; }
  std::uint64_t cwnd() const { return cwnd_; }
  std::uint64_t peer_window() const { return peer_wnd_; }
  sim::Duration srtt() const { return srtt_; }
  const TcpStats& stats() const { return stats_; }

  // Flow key of segments this connection *receives* (remote -> local).
  net::FlowKey incoming_flow() const {
    return {remote_.ip, remote_.port, local_.ip, local_.port,
            net::Protocol::Tcp};
  }

  // net::SegmentHandler.
  void on_segment(const net::Packet& pkt) override;

 private:
  // Data sequence space: byte 0 is the first payload byte; SYN and FIN are
  // tracked out-of-band (syn consumes wire seq 0, data byte k is wire seq
  // k+1).  We keep everything in *data* coordinates internally.
  void emit(std::uint64_t seq, std::uint32_t len, bool syn, bool fin,
            bool is_rtx);
  void send_ack();
  void try_send();
  void maybe_send_fin();
  void arm_rtx_timer();
  void cancel_rtx_timer();
  void on_rtx_timeout();
  void retransmit_one();
  void enter_established();
  void finish_if_done();
  void process_ack(const net::Packet& pkt);
  void process_data(const net::Packet& pkt);
  std::uint32_t advertised_window() const;

  sim::Simulator& sim_;
  SendFn send_fn_;
  Endpoint local_;
  Endpoint remote_;
  TcpOptions opts_;
  TcpState state_;

  // Sender.
  std::uint64_t app_limit_ = 0;     // total bytes the app has queued
  std::uint64_t snd_una_data_ = 0;  // first unacked data byte
  std::uint64_t snd_nxt_data_ = 0;  // next new data byte to send
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::uint64_t peer_wnd_;
  std::uint32_t dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;
  bool syn_acked_ = false;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  bool gate_open_ = true;
  bool rtx_deferred_ = false;

  // RTT estimation (Karn: only segments never retransmitted are timed).
  sim::Duration srtt_ = sim::Time::zero();
  sim::Duration rttvar_ = sim::Time::zero();
  sim::Duration rto_;
  bool rtt_valid_ = false;
  std::uint64_t timed_seq_ = 0;  // data seq whose ack completes the sample
  sim::Time timed_sent_at_;
  bool timing_ = false;

  sim::EventHandle rtx_timer_;

  // Receiver.
  std::uint64_t rcv_nxt_data_ = 0;  // next expected data byte
  bool syn_received_ = false;
  bool fin_received_ = false;
  std::uint64_t fin_seq_data_ = 0;  // data-length of remote stream when FIN set
  std::map<std::uint64_t, std::uint64_t> ooo_;  // seq -> end (data coords)
  std::uint64_t unconsumed_ = 0;  // delivered but not consumed (manual mode)

  DeliverFn on_deliver_;
  EventFn on_established_;
  EventFn on_closed_;
  EventFn on_remote_fin_;
  EgressHook egress_hook_;
  TcpStats stats_;
  bool closed_notified_ = false;

  obs::Hook obs_;
  obs::Counter* ctr_rtx_ = nullptr;
  obs::Counter* ctr_timeouts_ = nullptr;
  obs::Counter* ctr_fast_rtx_ = nullptr;
};

// -- Node conveniences ---------------------------------------------------------

// Open an active connection from `node` to (dst, dst_port).  Registers the
// demux entry; the returned connection unregisters itself on destruction
// if you call detach(), otherwise the caller must keep `node` alive.
std::unique_ptr<TcpConnection> tcp_connect(net::Node& node, net::Ipv4Addr dst,
                                           net::Port dst_port,
                                           TcpOptions opts = {});

// Listening server socket on a node: accepts connections, owns them.
class TcpServer {
 public:
  // Called when a connection is accepted (after SYN).
  using AcceptFn = std::function<void(TcpConnection&)>;

  TcpServer(net::Node& node, net::Port port, TcpOptions opts = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void set_on_accept(AcceptFn fn) { on_accept_ = std::move(fn); }

  std::size_t connection_count() const { return conns_.size(); }
  // Destroy connections that have fully closed (frees demux entries).
  void reap_done();

 private:
  net::Node& node_;
  net::Port port_;
  TcpOptions opts_;
  AcceptFn on_accept_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;
};

}  // namespace pp::transport

#include "transport/tcp.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::transport {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::Closed: return "Closed";
    case TcpState::SynSent: return "SynSent";
    case TcpState::SynRcvd: return "SynRcvd";
    case TcpState::Established: return "Established";
    case TcpState::FinWait: return "FinWait";
    case TcpState::CloseWait: return "CloseWait";
    case TcpState::LastAck: return "LastAck";
    case TcpState::Done: return "Done";
  }
  return "?";
}

TcpConnection::TcpConnection(sim::Simulator& sim, SendFn send, Endpoint local,
                             Endpoint remote, TcpOptions opts, bool passive)
    : sim_{sim},
      send_fn_{std::move(send)},
      local_{local},
      remote_{remote},
      opts_{opts},
      state_{TcpState::Closed},
      cwnd_{std::uint64_t{opts.initial_cwnd_segments} * opts.mss},
      ssthresh_{std::uint64_t{1} << 30},
      peer_wnd_{opts.recv_window},
      rto_{opts.initial_rto} {
  (void)passive;  // passive connections simply wait for the SYN
}

TcpConnection::~TcpConnection() { cancel_rtx_timer(); }

std::uint32_t TcpConnection::advertised_window() const {
  std::uint64_t used = opts_.manual_consume ? unconsumed_ : 0;
  for (const auto& [s, e] : ooo_) used += e - s;
  return used >= opts_.recv_window
             ? 0u
             : static_cast<std::uint32_t>(opts_.recv_window - used);
}

void TcpConnection::emit(std::uint64_t seq, std::uint32_t len, bool syn,
                         bool fin, bool is_rtx) {
  net::Packet pkt = net::make_packet();
  pkt.src = local_.ip;
  pkt.src_port = local_.port;
  pkt.dst = remote_.ip;
  pkt.dst_port = remote_.port;
  pkt.proto = net::Protocol::Tcp;
  pkt.payload = len;
  pkt.tcp.syn = syn;
  pkt.tcp.fin = fin;
  // Wire sequence space: SYN occupies 0, data byte k occupies k+1, FIN
  // occupies L+1 (L = stream length).  `seq` arrives in data coordinates.
  pkt.tcp.seq = syn ? 0 : seq + 1;
  if (syn_received_) {
    pkt.tcp.ack_flag = true;
    std::uint64_t ack = rcv_nxt_data_ + 1;  // +1 for the peer's SYN
    if (fin_received_ && rcv_nxt_data_ >= fin_seq_data_) ack += 1;
    pkt.tcp.ack = ack;
  }
  pkt.tcp.wnd = advertised_window();
  pkt.sent_at = sim_.now();
  ++stats_.segments_sent;
  stats_.bytes_sent += len;
  if (is_rtx) {
    ++stats_.retransmissions;
    PP_OBS(if (ctr_rtx_) ctr_rtx_->inc());
  }

  // Karn's algorithm: time one un-retransmitted data segment at a time.
  if (!is_rtx && len > 0 && !timing_) {
    timing_ = true;
    timed_seq_ = seq + len;
    timed_sent_at_ = sim_.now();
  }
  if (egress_hook_) egress_hook_(pkt);
  send_fn_(std::move(pkt));
}

void TcpConnection::send_ack() {
  // Pure ACK: carries the next wire seq we would send, no payload.
  emit(snd_nxt_data_, 0, false, false, false);
}

void TcpConnection::connect() {
  PP_CHECK_AT(state_ == TcpState::Closed, "transport.tcp.connect", sim_.now());
  state_ = TcpState::SynSent;
  emit(0, 0, /*syn=*/true, false, false);
  arm_rtx_timer();
}

void TcpConnection::send(std::uint64_t bytes) {
  app_limit_ += bytes;
  if (established() || state_ == TcpState::CloseWait) try_send();
}

void TcpConnection::close() {
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::consume(std::uint64_t bytes) {
  PP_CHECK_AT(opts_.manual_consume, "transport.tcp.consume", sim_.now());
  PP_CHECK_AT(bytes <= unconsumed_, "transport.tcp.consume", sim_.now());
  const std::uint32_t before = advertised_window();
  unconsumed_ -= bytes;
  // Window update: tell a potentially stalled sender that space opened up.
  if (before < opts_.mss && advertised_window() >= opts_.mss &&
      state_ != TcpState::Closed && syn_received_) {
    send_ack();
  }
}

void TcpConnection::set_send_gate(bool open) {
  if (gate_open_ == open) return;
  gate_open_ = open;
  if (open) {
    if (rtx_deferred_) {
      rtx_deferred_ = false;
      retransmit_one();
      arm_rtx_timer();
    }
    try_send();
    maybe_send_fin();
  }
}

void TcpConnection::try_send() {
  if (!gate_open_) return;
  if (!(established() || state_ == TcpState::CloseWait)) return;
  while (snd_nxt_data_ < app_limit_) {
    const std::uint64_t wnd = std::min<std::uint64_t>(cwnd_, peer_wnd_);
    const std::uint64_t flight = bytes_in_flight();
    if (flight >= wnd) break;
    std::uint64_t len = std::min<std::uint64_t>(
        {static_cast<std::uint64_t>(opts_.mss), app_limit_ - snd_nxt_data_,
         wnd - flight});
    if (len == 0) break;
    emit(snd_nxt_data_, static_cast<std::uint32_t>(len), false, false, false);
    snd_nxt_data_ += len;
  }
  // Zero-window deadlock avoidance: probe with one byte.
  if (peer_wnd_ == 0 && bytes_in_flight() == 0 &&
      snd_nxt_data_ < app_limit_ && !rtx_timer_.pending()) {
    sim::Duration probe_after = rto_;
    rtx_timer_ = sim_.after(probe_after, [this] {
      if (peer_wnd_ == 0 && bytes_in_flight() == 0 &&
          snd_nxt_data_ < app_limit_ && gate_open_) {
        emit(snd_nxt_data_, 1, false, false, false);
        snd_nxt_data_ += 1;
        arm_rtx_timer();
      } else {
        try_send();
      }
    });
    return;
  }
  maybe_send_fin();
  if (bytes_in_flight() > 0 && !rtx_timer_.pending()) arm_rtx_timer();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_ || !gate_open_) return;
  if (!(established() || state_ == TcpState::CloseWait)) return;
  if (snd_nxt_data_ < app_limit_) return;  // data still unsent
  fin_sent_ = true;
  emit(app_limit_, 0, false, /*fin=*/true, false);
  state_ = fin_received_ ? TcpState::LastAck : TcpState::FinWait;
  arm_rtx_timer();
}

void TcpConnection::arm_rtx_timer() {
  cancel_rtx_timer();
  rtx_timer_ = sim_.after(rto_, [this] { on_rtx_timeout(); });
}

void TcpConnection::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_rtx_ = m->counter("tcp.retransmissions");
    ctr_timeouts_ = m->counter("tcp.timeouts");
    ctr_fast_rtx_ = m->counter("tcp.fast_retransmits");
  });
}

void TcpConnection::cancel_rtx_timer() { rtx_timer_.cancel(); }

void TcpConnection::on_rtx_timeout() {
  const bool syn_out = (state_ == TcpState::SynSent ||
                        state_ == TcpState::SynRcvd);
  const bool fin_out = fin_sent_ && !fin_acked_;
  if (!syn_out && !fin_out && bytes_in_flight() == 0) return;  // all acked

  ++stats_.timeouts;
  PP_OBS(if (ctr_timeouts_) ctr_timeouts_->inc();
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::TcpStall,
                        remote_.ip.raw(), stats_.timeouts));
  if (timing_) timing_ = false;  // Karn: retransmitted samples are invalid
  if (!syn_out) {
    const std::uint64_t flight = std::max<std::uint64_t>(
        bytes_in_flight(), std::uint64_t{opts_.mss});
    ssthresh_ = std::max<std::uint64_t>(flight / 2,
                                        std::uint64_t{2} * opts_.mss);
    cwnd_ = opts_.mss;
  }
  dup_acks_ = 0;
  rto_ = std::min(rto_ * 2, opts_.max_rto);
  if (!gate_open_ && opts_.defer_rtx_when_gated) {
    rtx_deferred_ = true;
    return;  // gate reopening retransmits and re-arms
  }
  retransmit_one();
  arm_rtx_timer();
}

void TcpConnection::retransmit_one() {
  if (state_ == TcpState::SynSent) {
    emit(0, 0, true, false, true);
    return;
  }
  if (state_ == TcpState::SynRcvd) {
    emit(0, 0, true, false, true);  // SYN-ACK again
    return;
  }
  if (snd_una_data_ < snd_nxt_data_) {
    const std::uint64_t len = std::min<std::uint64_t>(
        {static_cast<std::uint64_t>(opts_.mss),
         snd_nxt_data_ - snd_una_data_});
    emit(snd_una_data_, static_cast<std::uint32_t>(len), false, false, true);
    return;
  }
  if (fin_sent_ && !fin_acked_) {
    emit(app_limit_, 0, false, true, true);
  }
}

void TcpConnection::enter_established() {
  if (established()) return;
  state_ = TcpState::Established;
  rto_ = opts_.initial_rto;
  if (on_established_) on_established_();
  try_send();
}

void TcpConnection::finish_if_done() {
  if (fin_sent_ && fin_acked_ && fin_received_ &&
      rcv_nxt_data_ >= fin_seq_data_) {
    state_ = TcpState::Done;
    cancel_rtx_timer();
    if (!closed_notified_) {
      closed_notified_ = true;
      if (on_closed_) on_closed_();
    }
  }
}

void TcpConnection::process_ack(const net::Packet& pkt) {
  if (!pkt.tcp.ack_flag) return;
  const std::uint64_t a = pkt.tcp.ack;
  const std::uint64_t prev_wnd = peer_wnd_;
  peer_wnd_ = pkt.tcp.wnd;

  if (!syn_acked_ && a >= 1) {
    syn_acked_ = true;
    if (state_ == TcpState::SynSent || state_ == TcpState::SynRcvd)
      enter_established();
  }
  const std::uint64_t data_acked = a >= 1 ? std::min(a - 1, app_limit_) : 0;
  if (fin_sent_ && a >= app_limit_ + 2) {
    if (!fin_acked_) {
      fin_acked_ = true;
      cancel_rtx_timer();
      finish_if_done();
    }
  }

  if (data_acked > snd_una_data_) {
    const std::uint64_t newly = data_acked - snd_una_data_;
    snd_una_data_ = data_acked;
    dup_acks_ = 0;
    // RTT sample (Karn-filtered).
    if (timing_ && snd_una_data_ >= timed_seq_) {
      timing_ = false;
      const sim::Duration sample = sim_.now() - timed_sent_at_;
      if (!rtt_valid_) {
        srtt_ = sample;
        rttvar_ = sample / 2;
        rtt_valid_ = true;
      } else {
        const sim::Duration err =
            sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = (rttvar_ * 3 + err) / 4;
        srtt_ = (srtt_ * 7 + sample) / 8;
      }
      sim::Duration rto = srtt_ + std::max(rttvar_ * 4, sim::Time::ms(10));
      rto_ = std::clamp(rto, opts_.min_rto, opts_.max_rto);
    }
    if (in_recovery_) {
      if (snd_una_data_ >= recover_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        retransmit_one();  // NewReno partial ack
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += std::min<std::uint64_t>(newly, opts_.mss);  // slow start
    } else {
      cwnd_ += std::max<std::uint64_t>(
          1, std::uint64_t{opts_.mss} * opts_.mss / cwnd_);  // AIMD
    }
    if (bytes_in_flight() > 0 || (fin_sent_ && !fin_acked_)) {
      arm_rtx_timer();
    } else {
      cancel_rtx_timer();
    }
    try_send();
  } else if (established() && pkt.payload == 0 && !pkt.tcp.syn &&
             !pkt.tcp.fin && data_acked == snd_una_data_ &&
             bytes_in_flight() > 0) {
    ++dup_acks_;
    ++stats_.dup_acks_received;
    if (dup_acks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recover_point_ = snd_nxt_data_;
      ssthresh_ = std::max<std::uint64_t>(bytes_in_flight() / 2,
                                          std::uint64_t{2} * opts_.mss);
      cwnd_ = ssthresh_ + std::uint64_t{3} * opts_.mss;
      ++stats_.fast_retransmits;
      PP_OBS(if (ctr_fast_rtx_) ctr_fast_rtx_->inc());
      retransmit_one();
      arm_rtx_timer();
    }
  }
  if (peer_wnd_ > prev_wnd) try_send();
}

void TcpConnection::process_data(const net::Packet& pkt) {
  if (pkt.payload == 0) return;
  std::uint64_t start = pkt.tcp.seq - 1;  // wire -> data coordinates
  std::uint64_t end = start + pkt.payload;
  if (end <= rcv_nxt_data_) {
    send_ack();  // stale retransmission; re-ack
    return;
  }
  if (start < rcv_nxt_data_) start = rcv_nxt_data_;
  if (start <= rcv_nxt_data_) {
    rcv_nxt_data_ = end;
    // Merge any now-contiguous out-of-order runs.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_nxt_data_) {
      rcv_nxt_data_ = std::max(rcv_nxt_data_, it->second);
      it = ooo_.erase(it);
    }
    // Sequence continuity: the cumulative point only moves forward, and
    // every surviving out-of-order run stays strictly beyond it (a run at
    // or below rcv_nxt_data_ means the merge loop lost bytes or delivered
    // some twice — fatal for a proxy splicing two sequence spaces).
    PP_CHECK_AT(rcv_nxt_data_ >= stats_.bytes_delivered,
                "transport.tcp.seq_continuity", sim_.now());
    PP_CHECK_AT(ooo_.empty() || ooo_.begin()->first > rcv_nxt_data_,
                "transport.tcp.seq_continuity", sim_.now());
    const std::uint64_t delivered = rcv_nxt_data_ - stats_.bytes_delivered;
    stats_.bytes_delivered = rcv_nxt_data_;
    if (opts_.manual_consume) unconsumed_ += delivered;
    if (on_deliver_ && delivered > 0) on_deliver_(delivered);
  } else {
    // Out of order: remember the run (coalesce overlaps).
    auto [it, inserted] = ooo_.emplace(start, end);
    if (!inserted) {
      it->second = std::max(it->second, end);
    } else {
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= it->first) {
          prev->second = std::max(prev->second, it->second);
          it = ooo_.erase(it);
          it = prev;
        }
      }
      auto next = std::next(it);
      while (next != ooo_.end() && next->first <= it->second) {
        it->second = std::max(it->second, next->second);
        next = ooo_.erase(next);
      }
    }
  }
  // The receive stream never runs past the remote FIN.
  PP_CHECK_AT(!fin_received_ || rcv_nxt_data_ <= fin_seq_data_,
              "transport.tcp.fin_overrun", sim_.now());
  send_ack();
}

void TcpConnection::on_segment(const net::Packet& pkt) {
  ++stats_.segments_received;
  if (pkt.tcp.rst) {
    state_ = TcpState::Done;
    cancel_rtx_timer();
    if (!closed_notified_) {
      closed_notified_ = true;
      if (on_closed_) on_closed_();
    }
    return;
  }

  if (pkt.tcp.syn) {
    syn_received_ = true;
    if (state_ == TcpState::Closed) {
      // Passive open: answer SYN with SYN-ACK.
      state_ = TcpState::SynRcvd;
      emit(0, 0, true, false, false);
      arm_rtx_timer();
      return;
    }
    if (state_ == TcpState::SynSent) {
      process_ack(pkt);  // SYN-ACK carries the ack of our SYN
      if (established()) send_ack();
      return;
    }
    if (state_ == TcpState::SynRcvd) {
      emit(0, 0, true, false, true);  // duplicate SYN; repeat SYN-ACK
      return;
    }
    send_ack();  // duplicate SYN on an established connection
    return;
  }

  process_ack(pkt);
  if (state_ == TcpState::SynRcvd && syn_acked_) enter_established();

  process_data(pkt);

  if (pkt.tcp.fin) {
    const std::uint64_t fin_pos = (pkt.tcp.seq - 1) + pkt.payload;
    fin_seq_data_ = fin_pos;
    if (rcv_nxt_data_ >= fin_pos && !fin_received_) {
      fin_received_ = true;
      if (state_ == TcpState::Established) state_ = TcpState::CloseWait;
      if (state_ == TcpState::FinWait && fin_acked_) finish_if_done();
      if (state_ == TcpState::FinWait && !fin_acked_)
        state_ = TcpState::LastAck;
      send_ack();
      if (on_remote_fin_) on_remote_fin_();
      finish_if_done();
    } else if (!fin_received_) {
      send_ack();  // FIN ahead of missing data
    }
  }
}

// -- Node conveniences ---------------------------------------------------------

namespace {

class NodeTcpConnection final : public TcpConnection {
 public:
  NodeTcpConnection(net::Node& node, Endpoint local, Endpoint remote,
                    TcpOptions opts, bool passive)
      : TcpConnection(
            node.sim(), [&node](net::Packet p) { node.send(std::move(p)); },
            local, remote, opts, passive),
        node_{node} {}
  ~NodeTcpConnection() override { node_.unregister_tcp(incoming_flow()); }

 private:
  net::Node& node_;
};

}  // namespace

std::unique_ptr<TcpConnection> tcp_connect(net::Node& node, net::Ipv4Addr dst,
                                           net::Port dst_port,
                                           TcpOptions opts) {
  const Endpoint local{node.ip(), node.alloc_port()};
  const Endpoint remote{dst, dst_port};
  auto conn = std::make_unique<NodeTcpConnection>(node, local, remote, opts,
                                                  /*passive=*/false);
  node.register_tcp(conn->incoming_flow(), *conn);
  conn->connect();
  return conn;
}

TcpServer::TcpServer(net::Node& node, net::Port port, TcpOptions opts)
    : node_{node}, port_{port}, opts_{opts} {
  node_.listen_tcp(port_, [this](const net::Packet& syn) -> net::SegmentHandler* {
    const Endpoint local{node_.ip(), port_};
    const Endpoint remote{syn.src, syn.src_port};
    auto conn = std::make_unique<NodeTcpConnection>(node_, local, remote,
                                                    opts_, /*passive=*/true);
    TcpConnection* raw = conn.get();
    conns_.push_back(std::move(conn));
    if (on_accept_) on_accept_(*raw);
    return raw;
  });
}

TcpServer::~TcpServer() {
  node_.unlisten_tcp(port_);
  conns_.clear();  // NodeTcpConnection dtor unregisters demux entries
}

void TcpServer::reap_done() {
  std::erase_if(conns_, [](const std::unique_ptr<TcpConnection>& c) {
    return c->done();
  });
}

}  // namespace pp::transport

#include "transport/udp.hpp"

#include <utility>

namespace pp::transport {

UdpSocket::UdpSocket(net::Node& node, net::Port port)
    : node_{node}, port_{port == 0 ? node.alloc_port() : port} {
  node_.bind_udp(port_, *this);
}

UdpSocket::~UdpSocket() { node_.unbind_udp(port_); }

void UdpSocket::send_to(net::Ipv4Addr dst, net::Port dst_port,
                        std::uint32_t bytes,
                        std::shared_ptr<const net::Message> data) {
  net::Packet pkt = net::make_packet();
  pkt.src = node_.ip();
  pkt.src_port = port_;
  pkt.dst = dst;
  pkt.dst_port = dst_port;
  pkt.proto = net::Protocol::Udp;
  pkt.payload = bytes;
  pkt.data = std::move(data);
  ++sent_;
  node_.send(std::move(pkt));
}

void UdpSocket::on_datagram(const net::Packet& pkt) {
  ++received_;
  if (receive_) receive_(pkt);
}

}  // namespace pp::transport

#include "fault/plan.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "net/access_point.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::fault {

namespace {

// Stream tag folded into the run seed so fault draws are independent of the
// simulator's shared stream (and of any future named stream with its own
// tag).  Changing this constant changes every faulted run.
constexpr std::uint64_t kFaultStreamTag = 0xFA011E57'0DD5EEDEULL;

// Separate stream for churn-storm expansion: storm timing must not perturb
// (or be perturbed by) the corruption draw sequence above.
constexpr std::uint64_t kChurnStreamTag = 0xC1108A17'F1A55EEDULL;

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::DeepFade:
      return "deep_fade";
    case FaultKind::ApStall:
      return "ap_stall";
    case FaultKind::LinkFlap:
      return "link_flap";
    case FaultKind::ProxyPause:
      return "proxy_pause";
    case FaultKind::ClientChurn:
      return "client_churn";
  }
  return "?";
}

sim::Rng fault_stream(std::uint64_t run_seed) {
  return sim::Rng{run_seed ^ kFaultStreamTag};
}

sim::Rng churn_stream(std::uint64_t run_seed) {
  return sim::Rng{run_seed ^ kChurnStreamTag};
}

std::vector<FaultWindow> expand_churn_storm(
    const ChurnStorm& storm, const std::vector<net::Ipv4Addr>& fleet,
    std::uint64_t run_seed) {
  std::vector<FaultWindow> windows;
  if (!storm.enabled || fleet.empty()) return windows;

  sim::Rng rng = churn_stream(run_seed);

  // Uniform duration draw over [lo, hi]; degenerate ranges collapse to lo.
  auto draw = [&rng](sim::Duration lo, sim::Duration hi) {
    if (hi.count_ns() <= lo.count_ns()) return lo;
    return sim::Time::ns(rng.uniform_int(lo.count_ns(), hi.count_ns()));
  };

  // Pick the flapping subset with a seeded partial Fisher-Yates shuffle so
  // the choice depends only on (fleet order, seed), never on hash layout.
  std::vector<net::Ipv4Addr> pool = fleet;
  std::size_t n_flap = static_cast<std::size_t>(
      storm.flap_fraction * static_cast<double>(pool.size()) + 0.5);
  n_flap = std::max<std::size_t>(1, std::min(n_flap, pool.size()));
  for (std::size_t i = 0; i < n_flap; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(pool.size() - i) - 1));
    std::swap(pool[i], pool[j]);
  }

  // Each flapping client alternates: home stagger, then away/home cycles.
  // Every away window must close strictly before the storm does, so the
  // auditor's end-of-run recovery demand always holds.
  const sim::Time storm_end = storm.start + storm.duration;
  for (std::size_t i = 0; i < n_flap; ++i) {
    sim::Time t = storm.start + draw(storm.min_home, storm.max_home);
    for (;;) {
      const sim::Duration away = draw(storm.min_away, storm.max_away);
      if (t + away >= storm_end) break;
      windows.push_back({FaultKind::ClientChurn, pool[i], t, away});
      t = t + away + draw(storm.min_home, storm.max_home);
    }
  }
  return windows;
}

FaultPlan::FaultPlan(sim::Simulator& sim, FaultSpec spec,
                     std::uint64_t run_seed)
    : sim_{sim}, spec_{std::move(spec)}, rng_{fault_stream(run_seed)} {
  if (spec_.ge.enabled) {
    // Delegate the chain to the channel subsystem in shared-stream mode,
    // seeded with the same named fault stream the private implementation
    // used: the draw sequence (one transition draw per attempt, a loss
    // draw only when the rung can lose) is reproduced bit for bit.
    ge_chain_ = std::make_unique<channel::ChannelModel>(
        channel::ChannelSpec::two_state(spec_.ge.p_good_bad,
                                        spec_.ge.p_bad_good,
                                        spec_.ge.loss_good, spec_.ge.loss_bad),
        fault_stream(run_seed));
  }
}

void FaultPlan::attach_medium(net::WirelessMedium& medium) {
  base_p_loss_ = medium.params().p_loss;
  medium.set_loss_model(this);
}

void FaultPlan::attach_wired_link(net::Channel& downlink,
                                  net::Channel& uplink) {
  link_down_ = &downlink;
  link_up_ = &uplink;
}

void FaultPlan::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_activated_ = m->counter("fault.windows_activated");
    ctr_recovered_ = m->counter("fault.windows_recovered");
    ctr_ge_losses_ = m->counter("fault.ge_losses");
    ctr_fade_losses_ = m->counter("fault.fade_losses");
    hist_window_us_ = m->histogram("fault.window_us");
  });
}

void FaultPlan::arm() {
  for (std::size_t i = 0; i < spec_.windows.size(); ++i) {
    const FaultWindow& w = spec_.windows[i];
    PP_CHECK(w.duration > sim::Time::zero(), "fault.window.duration");
    sim_.at(w.start, [this, i] { activate(spec_.windows[i]); });
    sim_.at(w.end(), [this, i] { recover(spec_.windows[i]); });
  }
}

void FaultPlan::activate(const FaultWindow& w) {
  ++stats_.windows_activated;
  const int depth = ++depth_[w.kind];
  // System-wide kinds nest (only the outermost edge applies); churn windows
  // target distinct clients, so every window's own edges must fire.
  if (depth == 1 || w.kind == FaultKind::ClientChurn) apply(w, true);
  PP_OBS(if (ctr_activated_) ctr_activated_->inc();
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::FaultStart, w.client.raw(),
                        static_cast<std::uint64_t>(w.kind)));
}

void FaultPlan::recover(const FaultWindow& w) {
  ++stats_.windows_recovered;
  auto it = depth_.find(w.kind);
  PP_CHECK_AT(it != depth_.end() && it->second > 0, "fault.window.pairing",
              sim_.now());
  const bool closed = --it->second == 0;
  if (closed) depth_.erase(it);
  if (closed || w.kind == FaultKind::ClientChurn) apply(w, false);
  PP_OBS(if (ctr_recovered_) ctr_recovered_->inc();
         if (hist_window_us_) hist_window_us_->observe(
             static_cast<std::uint64_t>(w.duration.count_us()));
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::FaultEnd, w.client.raw(),
                        static_cast<std::uint64_t>(w.kind)));
}

void FaultPlan::apply(const FaultWindow& w, bool on) {
  switch (w.kind) {
    case FaultKind::DeepFade:
      // No component effect: corrupted() consults the open windows.
      break;
    case FaultKind::ApStall:
      if (ap_ != nullptr) ap_->set_stalled(on);
      break;
    case FaultKind::LinkFlap:
      if (link_down_ != nullptr) link_down_->set_down(on);
      if (link_up_ != nullptr) link_up_->set_down(on);
      break;
    case FaultKind::ProxyPause:
      if (proxy_pause_) proxy_pause_(on);
      break;
    case FaultKind::ClientChurn:
      if (churn_) churn_(w.client, on);
      break;
  }
}

bool FaultPlan::active(FaultKind kind) const {
  auto it = depth_.find(kind);
  return it != depth_.end() && it->second > 0;
}

bool FaultPlan::corrupted(const net::Packet& pkt, net::Ipv4Addr receiver,
                          sim::Time now) {
  // The wireless channel belongs to the (client, AP) pair: downlink frames
  // carry the client as receiver; uplink frames reach the AP radio (address
  // 0.0.0.0), so the transmitting client identifies the channel.
  const net::Ipv4Addr chan = channel::station_of(pkt, receiver);

  // Deep fades dominate: total loss on the faded channel, no RNG consumed,
  // so fade windows never perturb the draw sequence of other channels.
  for (const auto& w : spec_.windows) {
    if (w.kind != FaultKind::DeepFade) continue;
    if (w.client == chan && now >= w.start && now < w.end()) {
      ++stats_.fade_losses;
      PP_OBS(if (ctr_fade_losses_) ctr_fade_losses_->inc());
      return true;
    }
  }

  if (ge_chain_) {
    // One chain step per delivery attempt; the delegated model keeps no obs
    // hook of its own here, so fault counters stay the only publication.
    const channel::ChannelModel::Attempt a = ge_chain_->attempt(chan);
    if (a.worsened) ++stats_.ge_bad_entries;
    if (a.lost) {
      ++stats_.ge_losses;
      PP_OBS(if (ctr_ge_losses_) ctr_ge_losses_->inc());
      return true;
    }
    return false;
  }

  if (base_p_loss_ > 0 && rng_.chance(base_p_loss_)) {
    ++stats_.base_losses;
    return true;
  }
  return false;
}

}  // namespace pp::fault

// FaultPlan: the runtime half of the fault-injection layer.
//
// Constructed from a FaultSpec plus the run seed, a FaultPlan
//
//  * implements net::ChannelLossModel, replacing the medium's uniform
//    per-frame corruption with Gilbert-Elliott correlated loss plus
//    per-client deep-fade windows (falling back to the medium's configured
//    p_loss when the GE chain is disabled);
//  * schedules every fault window on the simulator, applying and reverting
//    the component effect (AP stall, link flap, proxy pause) at the window
//    edges and recording FaultStart/FaultEnd timeline events that the
//    check::Auditor pairs up;
//  * draws every random number from its own named RNG stream, derived
//    deterministically from the run seed -- never from the simulator's
//    shared stream -- so a faulted run stays a pure function of its config
//    and replay digests keep holding under different hash salts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "channel/model.hpp"
#include "fault/spec.hpp"
#include "net/link.hpp"
#include "net/wireless.hpp"
#include "obs/hooks.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pp::net {
class AccessPoint;
}  // namespace pp::net

namespace pp::fault {

struct FaultStats {
  std::uint64_t windows_activated = 0;
  std::uint64_t windows_recovered = 0;
  std::uint64_t ge_losses = 0;       // frames corrupted by the GE chain
  std::uint64_t fade_losses = 0;     // frames killed by a deep-fade window
  std::uint64_t base_losses = 0;     // uniform fallback corruption
  std::uint64_t ge_bad_entries = 0;  // transitions into the bad state
};

class FaultPlan : public net::ChannelLossModel {
 public:
  FaultPlan(sim::Simulator& sim, FaultSpec spec, std::uint64_t run_seed);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // -- Wiring (all optional; unwired effects are skipped) -------------------------
  // Registers this plan as the medium's loss model and adopts the medium's
  // p_loss as the fallback corruption probability when GE is disabled.
  void attach_medium(net::WirelessMedium& medium);
  void attach_access_point(net::AccessPoint& ap) { ap_ = &ap; }
  // Both directions of the proxy <-> AP wired link (flapped together).
  void attach_wired_link(net::Channel& downlink, net::Channel& uplink);
  // Called with true on ProxyPause activation, false on recovery.
  void set_proxy_pause(std::function<void(bool paused)> fn) {
    proxy_pause_ = std::move(fn);
  }
  // Called with (client, true) when a ClientChurn window opens (the client
  // leaves the cell) and (client, false) when it closes (rejoin).  Unlike
  // the system-wide kinds, churn applies per window: overlapping windows
  // for different clients each fire.
  void set_churn(std::function<void(net::Ipv4Addr client, bool away)> fn) {
    churn_ = std::move(fn);
  }

  // Publish fault counters and FaultStart/FaultEnd timeline events.
  void set_obs(obs::Hook hook);

  // Schedule every window on the simulator.  Call once, before running.
  void arm();

  // net::ChannelLossModel: one call per (frame, receiver) delivery attempt.
  bool corrupted(const net::Packet& pkt, net::Ipv4Addr receiver,
                 sim::Time now) override;

  const FaultStats& stats() const { return stats_; }
  const FaultSpec& spec() const { return spec_; }
  // True while any window of `kind` is open (diagnostics / tests).
  bool active(FaultKind kind) const;

  // Query surface over the delegated Gilbert-Elliott chain (null when the
  // chain is disabled).  The proxy's channel-aware policies consume this on
  // faulted runs; querying never draws RNG, so wiring it cannot perturb
  // replay digests.
  const channel::ChannelObserver* channel_observer() const {
    return ge_chain_.get();
  }

 private:
  void activate(const FaultWindow& w);
  void recover(const FaultWindow& w);
  void apply(const FaultWindow& w, bool on);

  sim::Simulator& sim_;
  FaultSpec spec_;
  sim::Rng rng_;  // named stream: fault draws only, never sim_.rng()
  double base_p_loss_ = 0.0;

  net::AccessPoint* ap_ = nullptr;
  net::Channel* link_down_ = nullptr;
  net::Channel* link_up_ = nullptr;
  std::function<void(bool)> proxy_pause_;
  std::function<void(net::Ipv4Addr, bool)> churn_;

  // The Gilbert-Elliott chain, delegated to the channel subsystem in
  // shared-stream mode: the model replays the exact per-attempt draw
  // sequence this class produced when it owned the chain privately, so
  // faulted-run digests are unchanged.  Null when spec_.ge is disabled.
  std::unique_ptr<channel::ChannelModel> ge_chain_;
  // Open-window depth per kind, so overlapping windows of one kind nest.
  std::map<FaultKind, int> depth_;

  FaultStats stats_;
  obs::Hook obs_;
  obs::Counter* ctr_activated_ = nullptr;
  obs::Counter* ctr_recovered_ = nullptr;
  obs::Counter* ctr_ge_losses_ = nullptr;
  obs::Counter* ctr_fade_losses_ = nullptr;
  obs::Histogram* hist_window_us_ = nullptr;
};

// The named fault RNG stream: an independent generator derived from the run
// seed and a fixed stream tag.  Exposed so tests can prove fault draws
// reproduce without constructing a plan.
sim::Rng fault_stream(std::uint64_t run_seed);

// The named churn RNG stream, consumed only by expand_churn_storm — its
// own tag so storm timing never correlates with the corruption draws.
sim::Rng churn_stream(std::uint64_t run_seed);

// Expand a churn storm into concrete per-client ClientChurn windows over
// `fleet`.  Pure function of (storm, fleet, run_seed): the flapping subset
// is chosen by seeded Fisher-Yates draws and each chosen client alternates
// away/home periods drawn uniformly from the storm's bounds, clipped so
// every window closes before the storm does.  Returns an empty vector when
// the storm is disabled or the fleet is empty.
std::vector<FaultWindow> expand_churn_storm(const ChurnStorm& storm,
                                            const std::vector<net::Ipv4Addr>& fleet,
                                            std::uint64_t run_seed);

}  // namespace pp::fault

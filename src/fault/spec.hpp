// Fault specifications: the declarative half of the fault-injection layer.
//
// A FaultSpec describes everything that can go wrong during a run, as pure
// data: a Gilbert-Elliott two-state channel model (correlated/bursty frame
// corruption, the pathology uniform `p_loss` cannot express) and a list of
// typed fault windows (per-client deep fades, access-point forwarding
// stalls, wired link flaps, proxy pause/resume).  The spec lives in
// configuration structs (exp::ScenarioConfig, exp::TestbedParams); the
// runtime half that schedules and applies it is fault::FaultPlan.
//
// Deliberately light on dependencies (addresses and times only) so that
// config-level code can embed a spec without pulling in the network stack.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"

namespace pp::fault {

// Two-state Markov channel (Gilbert-Elliott).  The chain advances one step
// per delivery attempt on the affected station's channel; each state
// corrupts frames with its own probability.  Mean sojourn in a state is
// 1/p_exit attempts, so small transition probabilities model fades that
// span many frames -- the correlated-loss behaviour of real WLANs.
struct GilbertElliottParams {
  bool enabled = false;
  double p_good_bad = 0.005;  // per-attempt transition into the bad state
  double p_bad_good = 0.02;   // per-attempt transition back to good
  double loss_good = 0.001;   // corruption probability in the good state
  double loss_bad = 0.85;     // corruption probability in the bad state
};

// What a fault window does while it is open.
enum class FaultKind : std::uint8_t {
  DeepFade = 1,     // total loss on one client's channel (both directions)
  ApStall = 2,      // access point freezes downlink forwarding (queue holds)
  LinkFlap = 3,     // proxy <-> AP wired link drops everything
  ProxyPause = 4,   // proxy scheduling loop pauses (queues preserved)
  ClientChurn = 5,  // client leaves the cell, rejoining at window close
};

const char* to_string(FaultKind k);

// A closed interval of misbehaviour: [start, start + duration).  Windows
// must close before the run's horizon -- the check::Auditor verifies every
// activation has a matching recovery by end of run.
struct FaultWindow {
  FaultKind kind = FaultKind::DeepFade;
  // DeepFade / ClientChurn target; default (0.0.0.0) for system-wide kinds.
  net::Ipv4Addr client{};
  sim::Time start;
  sim::Duration duration;

  sim::Time end() const { return start + duration; }
};

// Churn storm: flap a fraction of the fleet with randomized away/home
// periods.  Declarative only — the testbed (which knows the fleet's
// addresses) expands it into concrete ClientChurn windows via
// fault::expand_churn_storm, drawing from the named churn RNG stream so
// the expansion is a pure, salt-invariant function of (storm, fleet,
// run seed).
struct ChurnStorm {
  bool enabled = false;
  sim::Time start;
  sim::Duration duration;
  double flap_fraction = 0.25;  // fraction of the fleet that flaps
  // Per-cycle bounds: each flapping client alternates away/home periods
  // drawn uniformly from these ranges; windows always close before the
  // storm ends (the auditor demands recovery by end of run).
  sim::Duration min_away = sim::Time::ms(1500);
  sim::Duration max_away = sim::Time::ms(4000);
  sim::Duration min_home = sim::Time::ms(1500);
  sim::Duration max_home = sim::Time::ms(4000);
};

struct FaultSpec {
  GilbertElliottParams ge{};
  std::vector<FaultWindow> windows;
  ChurnStorm storm{};

  bool any() const { return ge.enabled || storm.enabled || !windows.empty(); }

  // -- Convenience builders -------------------------------------------------------
  FaultSpec& fade(net::Ipv4Addr client, sim::Time start, sim::Duration dur) {
    windows.push_back({FaultKind::DeepFade, client, start, dur});
    return *this;
  }
  FaultSpec& ap_stall(sim::Time start, sim::Duration dur) {
    windows.push_back({FaultKind::ApStall, net::Ipv4Addr{}, start, dur});
    return *this;
  }
  FaultSpec& link_flap(sim::Time start, sim::Duration dur) {
    windows.push_back({FaultKind::LinkFlap, net::Ipv4Addr{}, start, dur});
    return *this;
  }
  FaultSpec& proxy_pause(sim::Time start, sim::Duration dur) {
    windows.push_back({FaultKind::ProxyPause, net::Ipv4Addr{}, start, dur});
    return *this;
  }
  FaultSpec& churn(net::Ipv4Addr client, sim::Time start, sim::Duration dur) {
    windows.push_back({FaultKind::ClientChurn, client, start, dur});
    return *this;
  }
  FaultSpec& churn_storm(sim::Time start, sim::Duration dur,
                         double flap_fraction = 0.25) {
    storm.enabled = true;
    storm.start = start;
    storm.duration = dur;
    storm.flap_fraction = flap_fraction;
    return *this;
  }
};

}  // namespace pp::fault

// Simulation time: a strongly-typed nanosecond count.
//
// A single type serves both absolute times and durations (the usual DES
// convention); semantic intent is conveyed by factory names and variable
// names.  All arithmetic is integer, so simulations are bit-deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace pp::sim {

class Time {
 public:
  constexpr Time() = default;

  // -- Factories ------------------------------------------------------------
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }
  // Fractional seconds (rounded toward zero).  Used by analytic models only;
  // the core engine never converts through floating point.
  static constexpr Time seconds(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9)};
  }
  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  // -- Accessors --------------------------------------------------------------
  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr std::int64_t count_us() const { return ns_ / 1'000; }
  constexpr std::int64_t count_ms() const { return ns_ / 1'000'000; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  // -- Arithmetic -------------------------------------------------------------
  constexpr Time operator+(Time o) const { return Time{ns_ + o.ns_}; }
  constexpr Time operator-(Time o) const { return Time{ns_ - o.ns_}; }
  constexpr Time operator*(std::int64_t k) const { return Time{ns_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ns_ / k}; }
  // Ratio of two durations.
  constexpr double ratio(Time denom) const {
    return static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }
  Time& operator+=(Time o) {
    ns_ += o.ns_;
    return *this;
  }
  Time& operator-=(Time o) {
    ns_ -= o.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Time&) const = default;

  std::string str() const;

 private:
  constexpr explicit Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

using Duration = Time;

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace pp::sim

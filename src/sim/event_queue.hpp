// Pending-event set for the discrete-event engine.
//
// A binary heap keyed on (time, insertion sequence) so simultaneous events
// fire in schedule order — the tie-break makes runs fully deterministic.
// Cancellation is lazy: a cancelled event stays in the heap but is skipped
// when popped, so emptiness is probed via next_time().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace pp::sim {

using EventFn = std::function<void()>;

// Handle to a scheduled event; allows cancellation.  Default-constructed
// handles refer to nothing and are safe to cancel.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }
  // Cancel the event if still pending.  Idempotent.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> s) : state_{std::move(s)} {}
  std::shared_ptr<bool> state_;  // true => cancelled or fired
};

class EventQueue {
 public:
  EventHandle push(Time when, EventFn fn);

  // True when no pending (non-cancelled) events remain.
  bool empty() { return next_time() == Time::max(); }
  // Upper bound on pending events (may include cancelled entries).
  std::size_t size_bound() const { return heap_.size(); }

  // Earliest pending event time; Time::max() if empty.
  Time next_time();

  // Pop and return the earliest pending event.  Precondition: !empty().
  struct Fired {
    Time when;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pp::sim

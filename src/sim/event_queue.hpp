// Pending-event set for the discrete-event engine.
//
// Layout: a slab of fixed-size slots holds the callbacks (EventCallback,
// small-buffer-optimized; see callback.hpp) and a 4-ary min-heap of
// 24-byte (time, seq, slot) nodes orders them.  Sift operations therefore
// move small PODs, never callbacks, and the steady-state schedule/fire
// cycle performs zero heap allocations: fired and cancelled slots are
// eagerly recycled through a free list, and oversized captures recycle
// through the queue's CallbackPool.
//
// Ordering is (time, insertion sequence) — simultaneous events fire in
// schedule order, which keeps runs bit-deterministic and replay digests
// stable across engine rewrites.
//
// Cancellation is an O(1) flag-set: the slot is released immediately (its
// capture destroyed, its generation bumped) and the heap node it leaves
// behind goes stale — detected by a seq mismatch and discarded when it
// surfaces.  Handles are generation-counted (queue, slot, generation)
// triples, so a stale handle can never cancel a recycled slot.
//
// const-correctness: empty() is an O(1) live-event count; next_time() and
// pop() lazily discard stale heap prefixes.  The heap and meta-counters
// are `mutable` — discarding a node whose event no longer exists does not
// change the queue's observable state, so the probes are genuinely const.
//
// Lifetime: handles and Fired callbacks must not outlive the queue (in
// practice: the Simulator, which components already hold by reference).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace pp::sim {

class EventQueue;

// Handle to a scheduled event; allows cancellation.  Default-constructed
// handles refer to nothing and are safe to query or cancel.  Copies are
// cheap (16 bytes) and all observe the same event: once it fires or any
// copy cancels it, every copy reports !pending() and cancels are no-ops.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  bool pending() const;
  // Cancel the event if still pending.  Idempotent; O(1).
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
      : q_{q}, slot_{slot}, gen_{gen} {}

  EventQueue* q_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    // Stale heap nodes discarded (one per cancellation, eventually).
    std::uint64_t stale_pruned = 0;
    AllocStats alloc;
  };

  EventQueue() : pool_{stats_.alloc} {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  template <typename F>
  EventHandle push(Time when, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.cb = EventCallback{std::forward<F>(fn), pool_, stats_.alloc};
    s.seq = next_seq_;
    heap_push(HeapNode{when, next_seq_, slot});
    ++next_seq_;
    ++live_;
    ++stats_.scheduled;
    return EventHandle{this, slot, s.gen};
  }

  // True when no pending (non-cancelled) events remain.  O(1), exact.
  bool empty() const { return live_ == 0; }
  // Pending (non-cancelled) events.
  std::size_t size() const { return live_; }
  // Heap nodes currently held (size() plus not-yet-pruned stale nodes).
  std::size_t size_bound() const { return heap_.size(); }

  // Earliest pending event time; Time::max() if empty.
  Time next_time() const;

  // Pop and return the earliest pending event.  Precondition: !empty().
  struct Fired {
    Time when;
    EventCallback fn;
  };
  Fired pop();

  const Stats& stats() const { return stats_; }
  // Slab high-water mark: slots ever allocated (== peak concurrent events).
  std::size_t slab_slots() const { return slots_.size(); }

 private:
  friend class EventHandle;

  struct Slot {
    EventCallback cb;
    std::uint64_t seq = kNoSeq;  // kNoSeq while the slot is free
    std::uint32_t gen = 0;       // bumped on every release
  };

  struct HeapNode {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};
  static constexpr std::size_t kArity = 4;

  static bool node_less(const HeapNode& a, const HeapNode& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  bool slot_pending(std::uint32_t slot, std::uint32_t gen) const;
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);

  void heap_push(HeapNode n);
  // Remove the root.  const: see header comment on lazy pruning.
  void heap_pop_root() const;
  // Discard stale nodes (seq mismatch) from the top of the heap.
  void prune_stale() const;

  mutable std::vector<HeapNode> heap_;  // 4-ary min-heap on (when, seq)
  std::vector<Slot> slots_;             // slab, indexed by HeapNode::slot
  std::vector<std::uint32_t> free_;     // released slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  mutable Stats stats_;
  CallbackPool pool_;
};

inline bool EventHandle::pending() const {
  return q_ != nullptr && q_->slot_pending(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (q_ != nullptr) q_->cancel_slot(slot_, gen_);
}

}  // namespace pp::sim

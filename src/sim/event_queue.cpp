#include "sim/event_queue.hpp"

#include <utility>

#include "check/check.hpp"

namespace pp::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.seq = kNoSeq;
  ++s.gen;
  free_.push_back(slot);
}

bool EventQueue::slot_pending(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.gen == gen && s.seq != kNoSeq;
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_pending(slot, gen)) return;
  release_slot(slot);  // its heap node goes stale; pruned when it surfaces
  --live_;
  ++stats_.cancelled;
}

void EventQueue::heap_push(HeapNode n) {
  std::size_t i = heap_.size();
  heap_.push_back(n);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!node_less(n, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = n;
}

void EventQueue::heap_pop_root() const {
  const HeapNode last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t end = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (node_less(heap_[c], heap_[best])) best = c;
    }
    if (!node_less(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void EventQueue::prune_stale() const {
  while (!heap_.empty()) {
    const HeapNode& top = heap_.front();
    if (slots_[top.slot].seq == top.seq) return;  // live root
    heap_pop_root();
    ++stats_.stale_pruned;
  }
}

Time EventQueue::next_time() const {
  prune_stale();
  return heap_.empty() ? Time::max() : heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  prune_stale();
  PP_CHECK(!heap_.empty(), "sim.event_queue.pop_empty");
  const HeapNode top = heap_.front();
  heap_pop_root();
  Slot& s = slots_[top.slot];
  Fired fired{top.when, std::move(s.cb)};
  // Release before returning so a handle queried from inside its own
  // callback reports !pending(), and the slot is reusable immediately.
  release_slot(top.slot);
  --live_;
  ++stats_.fired;
  return fired;
}

}  // namespace pp::sim

#include "sim/event_queue.hpp"

#include <utility>

#include "check/check.hpp"

namespace pp::sim {

EventHandle EventQueue::push(Time when, EventFn fn) {
  auto state = std::make_shared<bool>(false);
  heap_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventHandle{std::move(state)};
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

Time EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? Time::max() : heap_.top().when;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  PP_CHECK(!heap_.empty(), "sim.event_queue.pop_empty");
  // priority_queue::top() is const; move out via const_cast on the handle —
  // safe because we pop immediately and never touch the moved-from entry.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.when, std::move(top.fn)};
  *top.cancelled = true;  // mark fired so the handle reports !pending()
  heap_.pop();
  return fired;
}

}  // namespace pp::sim

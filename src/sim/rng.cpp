#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

#include "check/check.hpp"

namespace pp::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PP_CHECK(lo <= hi, "sim.rng.uniform_int");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Modulo bias is negligible for spans << 2^64 used here.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  PP_CHECK(mean > 0, "sim.rng.exponential");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::pareto(double alpha, double lo, double hi) {
  PP_CHECK(alpha > 0 && lo > 0 && hi > lo, "sim.rng.pareto");
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace pp::sim

#include "sim/time.hpp"

#include <cstdio>

namespace pp::sim {

std::string Time::str() const {
  char buf[64];
  const double s = to_seconds();
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.6fs", s);
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.str(); }

}  // namespace pp::sim

// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded through splitmix64.  We do not use <random> engines
// because their distributions are not guaranteed identical across standard
// library implementations; every draw here is reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

namespace pp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Bernoulli trial.
  bool chance(double p);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);
  // Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed sizes).
  double pareto(double alpha, double lo, double hi);
  // Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);

  // Derive an independent child stream (e.g. one per entity).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace pp::sim

// EventCallback: the engine's move-only, type-erased `void()` callable.
//
// Scheduling an event must not touch the global heap.  std::function's
// small-buffer is implementation-defined and far too small for the packet
// path (a lambda capturing `this` plus a net::Packet is ~120 bytes), so
// every hop of every packet used to pay a heap allocation.  EventCallback
// fixes the buffer size at kInlineCapacity — chosen to hold the largest
// steady-state capture in the simulator with headroom — and stores the
// callable inline whenever it fits and is nothrow-movable.  Oversized or
// throwing-move captures fall back to a CallbackPool block: a size-classed
// free list owned by the EventQueue, so even the fallback stops hitting
// the allocator once the pool is warm.
//
// AllocStats counts both paths; the EventQueue publishes them as the
// `sim.alloc.*` metrics.  An EventCallback (and anything moved out of the
// queue, e.g. EventQueue::Fired) must not outlive the pool it was built
// against — in practice, the Simulator that scheduled it.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>  // pp-lint: allow(raw-new): header name, not an expression
#include <type_traits>
#include <utility>
#include <vector>

namespace pp::sim {

// Allocation behaviour of the scheduling path (see EventQueue::stats()).
struct AllocStats {
  std::uint64_t callbacks_inline = 0;  // captures stored in the SBO buffer
  std::uint64_t callbacks_pooled = 0;  // oversized captures (pool fallback)
  std::uint64_t pool_reuses = 0;       // pool blocks served from a free list
  std::uint64_t pool_allocs = 0;       // pool blocks taken from the heap
};

// Size-classed free lists for oversized callback captures.  Blocks are
// rounded up to a power of two; released blocks park on the class's free
// list and are handed back on the next allocation of that class, so a
// steady-state simulation stops allocating once its largest captures have
// been seen once.  All blocks are returned to the heap on destruction.
class CallbackPool {
 public:
  explicit CallbackPool(AllocStats& stats) : stats_{stats} {}
  ~CallbackPool() {
    for (auto& cls : free_) {
      // Every live block was handed out by allocate() below and funnels
      // back through release(); this is the single point of return.
      // pp-lint: allow(raw-delete): pool backing store teardown
      for (void* p : cls) ::operator delete(p);
    }
  }

  CallbackPool(const CallbackPool&) = delete;
  CallbackPool& operator=(const CallbackPool&) = delete;

  // Smallest power-of-two >= bytes (and >= kMinBlock).
  static std::size_t size_class(std::size_t bytes) {
    return std::size_t{1} << class_index(bytes);
  }

  void* allocate(std::size_t bytes) {
    auto& cls = free_[class_index(bytes)];
    if (!cls.empty()) {
      void* p = cls.back();
      cls.pop_back();
      ++stats_.pool_reuses;
      return p;
    }
    ++stats_.pool_allocs;
    // Recycled via the free lists above; released in the destructor.
    // pp-lint: allow(raw-new): pool backing store
    return ::operator new(size_class(bytes));
  }

  void release(void* p, std::size_t bytes) {
    free_[class_index(bytes)].push_back(p);
  }

 private:
  static constexpr std::size_t kMinBlock = 256;
  static constexpr std::size_t kClasses = 32;  // up to 2^31-byte captures

  static std::size_t class_index(std::size_t bytes) {
    if (bytes <= kMinBlock) return std::bit_width(kMinBlock - 1);
    return std::bit_width(bytes - 1);
  }

  std::array<std::vector<void*>, kClasses> free_;
  AllocStats& stats_;
};

class EventCallback {
 public:
  // The SBO threshold: captures up to this many bytes (nothrow-movable,
  // alignment <= max_align_t) are stored inline.  Sized to hold the
  // wireless medium's frame-completion lambda — the fattest steady-state
  // capture (this + StationId + two times + a net::Packet) — with room for
  // the packet struct to grow.
  static constexpr std::size_t kInlineCapacity = 152;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& fn, CallbackPool& pool, AllocStats& stats) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (fits_inline<Fn>()) {
      // pp-lint: allow(raw-new): placement-new into the SBO buffer
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
      ++stats.callbacks_inline;
    } else {
      HeapRep rep;
      rep.block = pool.allocate(sizeof(Fn));
      rep.pool = &pool;
      rep.bytes = sizeof(Fn);
      // pp-lint: allow(raw-new): placement-new into the pool block
      ::new (rep.block) Fn(std::forward<F>(fn));
      // pp-lint: allow(raw-new): placement-new of the block descriptor
      ::new (static_cast<void*>(buf_)) HeapRep(rep);
      ops_ = &kHeapOps<Fn>;
      ++stats.callbacks_pooled;
    }
  }

  EventCallback(EventCallback&& o) noexcept : ops_{o.ops_} {
    if (ops_) ops_->relocate(o, *this);
    o.ops_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_) ops_->relocate(o, *this);
      o.ops_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void reset() {
    if (ops_) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(*this); }

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  // Declared up front: the kInlineOps/kHeapOps initializers below name them.
  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];

  struct Ops {
    void (*invoke)(EventCallback&);
    // Move-construct `dst`'s storage from `src` and destroy `src`'s.
    void (*relocate)(EventCallback& src, EventCallback& dst) noexcept;
    void (*destroy)(EventCallback&) noexcept;
  };

  struct HeapRep {
    void* block;
    CallbackPool* pool;
    std::size_t bytes;
  };

  template <typename Fn>
  Fn* inline_obj() {
    return std::launder(reinterpret_cast<Fn*>(buf_));
  }
  HeapRep* heap_rep() {
    return std::launder(reinterpret_cast<HeapRep*>(buf_));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      // invoke
      [](EventCallback& c) { (*c.inline_obj<Fn>())(); },
      // relocate
      [](EventCallback& src, EventCallback& dst) noexcept {
        // pp-lint: allow(raw-new): placement-new into the SBO buffer
        ::new (static_cast<void*>(dst.buf_))
            Fn(std::move(*src.inline_obj<Fn>()));
        src.inline_obj<Fn>()->~Fn();
      },
      // destroy
      [](EventCallback& c) noexcept { c.inline_obj<Fn>()->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      // invoke
      [](EventCallback& c) { (*static_cast<Fn*>(c.heap_rep()->block))(); },
      // relocate: the capture stays in its pool block; only the three-word
      // descriptor moves.
      [](EventCallback& src, EventCallback& dst) noexcept {
        // pp-lint: allow(raw-new): placement-new of the block descriptor
        ::new (static_cast<void*>(dst.buf_)) HeapRep(*src.heap_rep());
      },
      // destroy
      [](EventCallback& c) noexcept {
        const HeapRep rep = *c.heap_rep();
        static_cast<Fn*>(rep.block)->~Fn();
        rep.pool->release(rep.block, rep.bytes);
      },
  };

  const Ops* ops_ = nullptr;
};

static_assert(sizeof(EventCallback) == 160,
              "one cache-line-aligned slab slot payload; revisit "
              "kInlineCapacity if this drifts");

}  // namespace pp::sim

#include "sim/simulator.hpp"

#include "check/check.hpp"

namespace pp::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    auto [when, fn] = queue_.pop();
    PP_CHECK_AT(when >= now_, "sim.simulator.monotonic_clock", now_);
    now_ = when;
    ++events_fired_;
    fn();
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() <= until) {
    auto [when, fn] = queue_.pop();
    PP_CHECK_AT(when >= now_, "sim.simulator.monotonic_clock", now_);
    now_ = when;
    ++events_fired_;
    fn();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace pp::sim

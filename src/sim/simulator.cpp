#include "sim/simulator.hpp"

#include "check/check.hpp"

namespace pp::sim {

EventHandle Simulator::at(Time when, EventFn fn) {
  PP_CHECK_AT(when >= now_, "sim.simulator.schedule_into_past", now_);
  return queue_.push(when, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() != Time::max()) {
    auto [when, fn] = queue_.pop();
    PP_CHECK_AT(when >= now_, "sim.simulator.monotonic_clock", now_);
    now_ = when;
    ++events_fired_;
    fn();
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() <= until) {
    auto [when, fn] = queue_.pop();
    PP_CHECK_AT(when >= now_, "sim.simulator.monotonic_clock", now_);
    now_ = when;
    ++events_fired_;
    fn();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace pp::sim

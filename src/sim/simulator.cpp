#include "sim/simulator.hpp"

#include <cassert>

namespace pp::sim {

EventHandle Simulator::at(Time when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.push(when, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() != Time::max()) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    ++events_fired_;
    fn();
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() <= until) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    ++events_fired_;
    fn();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace pp::sim

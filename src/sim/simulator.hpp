// The discrete-event simulator: a clock plus the pending-event set.
//
// Single-threaded and deterministic.  Entities hold a Simulator& and
// schedule callbacks; the driver calls run_until()/run().
#pragma once

#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedule fn at an absolute time (must be >= now()).
  EventHandle at(Time when, EventFn fn);
  // Schedule fn after a delay (must be >= 0).
  EventHandle after(Duration delay, EventFn fn) {
    return at(now_ + delay, std::move(fn));
  }

  // Run until the event queue drains or stop() is called.
  void run();
  // Run all events with time <= until, then set the clock to `until`.
  void run_until(Time until);
  // Abort the run loop after the current event returns.
  void stop() { stopped_ = true; }

  std::uint64_t events_fired() const { return events_fired_; }

 private:
  Time now_ = Time::zero();
  EventQueue queue_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_fired_ = 0;
};

}  // namespace pp::sim

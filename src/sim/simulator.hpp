// The discrete-event simulator: a clock plus the pending-event set.
//
// Single-threaded and deterministic.  Entities hold a Simulator& and
// schedule callbacks; the driver calls run_until()/run().
#pragma once

#include <cstdint>
#include <utility>

#include "check/check.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedule fn at an absolute time (must be >= now()).  The callable is
  // forwarded straight into the event slab — no std::function, no heap
  // allocation for captures within EventCallback::kInlineCapacity.
  template <typename F>
  EventHandle at(Time when, F&& fn) {
    PP_CHECK_AT(when >= now_, "sim.simulator.schedule_into_past", now_);
    return queue_.push(when, std::forward<F>(fn));
  }
  // Schedule fn after a delay (must be >= 0).
  template <typename F>
  EventHandle after(Duration delay, F&& fn) {
    return at(now_ + delay, std::forward<F>(fn));
  }

  // Run until the event queue drains or stop() is called.
  void run();
  // Run all events with time <= until, then set the clock to `until`.
  void run_until(Time until);
  // Abort the run loop after the current event returns.
  void stop() { stopped_ = true; }

  std::uint64_t events_fired() const { return events_fired_; }
  // Scheduling/allocation behaviour of the event engine (sim.events.* /
  // sim.alloc.* when published through obs).
  const EventQueue::Stats& queue_stats() const { return queue_.stats(); }
  std::size_t queue_slab_slots() const { return queue_.slab_slots(); }

 private:
  Time now_ = Time::zero();
  EventQueue queue_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_fired_ = 0;
};

}  // namespace pp::sim

// Client-side association lifecycle (dynamic membership).
//
// Drives the per-client state machine
//
//   Disassociated -> Associating -> AcquiringSrp -> Associated
//                         ^                             |
//                         +--------- Draining <---------+
//
// over the tiny Join/Leave protocol in proxy/assoc.hpp:
//
//  * join(): send Join, retransmit with exponential backoff until the
//    JoinAck arrives (Associating), then stay awake until a schedule
//    broadcast is heard (AcquiringSrp) — that broadcast anchors the SRP
//    cadence, after which the PowerDaemon sleeps normally (Associated).
//    If no schedule is heard inside the acquisition timeout (lost
//    broadcasts, paused proxy), fall back to re-joining.
//  * leave(): send Leave (graceful: the proxy drains our queue first),
//    retransmit with backoff, and on the LeaveAck — or after the bounded
//    retries are exhausted — fire on_down so the owner powers the radio
//    off.  The radio stays up through Draining: the drain bursts and the
//    ack still have to be heard.
//
// All timing is deterministic: backoff jitter comes from a named RNG
// stream derived from (run seed, stream tag, client address), never from
// the simulator's shared stream, so churn timing is identical across
// replays and invariant to hash salts.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "obs/hooks.hpp"
#include "proxy/assoc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pp::client {

struct AssocParams {
  bool enabled = false;
  // Seed for the backoff-jitter stream; the testbed sets this to the run
  // seed so churn timing replays bit-identically.
  std::uint64_t run_seed = 1;
  net::Ipv4Addr proxy_ip = net::Ipv4Addr::octets(10, 0, 0, 254);
  // Base retransmission timeout for Join/Leave; attempt k waits
  // retry_timeout * backoff_base^k (capped) +/- jitter_frac of itself.
  sim::Duration retry_timeout = sim::Time::ms(120);
  double backoff_base = 2.0;
  sim::Duration backoff_cap = sim::Time::ms(2000);
  double jitter_frac = 0.25;
  // JoinAck in hand but no schedule heard yet: re-join after this long.
  sim::Duration srp_acquire_timeout = sim::Time::ms(1500);
  // Leave retransmissions before giving up and going dark unacked.
  int max_leave_retries = 3;
};

struct AssocStats {
  std::uint64_t joins_sent = 0;     // first transmissions only
  std::uint64_t join_retries = 0;   // backoff retransmissions
  std::uint64_t join_acks = 0;
  std::uint64_t srp_reacquires = 0; // acquisition timeouts -> re-join
  std::uint64_t leaves_sent = 0;
  std::uint64_t leave_retries = 0;
  std::uint64_t leave_acks = 0;
  std::uint64_t leave_abandons = 0;  // gave up waiting for the LeaveAck
};

class AssociationAgent {
 public:
  enum class State : std::uint8_t {
    Disassociated,
    Associating,   // Join sent, awaiting JoinAck
    AcquiringSrp,  // JoinAck in hand, awaiting a schedule broadcast
    Associated,
    Draining,      // Leave sent, awaiting LeaveAck
  };

  // pp-lint: allow(hot-path-alloc): constructed once per client at wiring
  using SendFn = std::function<void(net::Packet)>;

  // `send` transmits a control packet uplink; `on_down` fires when the
  // client has left the cell for good (LeaveAck received or leave retries
  // exhausted) so the owner can power the radio off.
  AssociationAgent(sim::Simulator& sim, net::Ipv4Addr self, AssocParams params,
                   SendFn send, std::function<void()> on_down);
  ~AssociationAgent();

  AssociationAgent(const AssociationAgent&) = delete;
  AssociationAgent& operator=(const AssociationAgent&) = delete;

  // The testbed pre-registers the whole fleet with the proxy at start, so
  // an assoc-enabled run begins Associated without a Join handshake (and
  // differs from a plain run only when churn actually happens).
  void start_associated() { state_ = State::Associated; }

  void join();
  void leave();

  // An association control packet addressed to this client arrived.
  void on_packet(const proxy::AssocMessage& msg);
  // A schedule broadcast reached this client (SRP cadence acquired).
  void note_schedule();

  State state() const { return state_; }
  bool associated() const { return state_ == State::Associated; }
  // A handshake is in flight: the radio must stay powered outside the
  // daemon's schedule or the JoinAck / schedule broadcast / LeaveAck the
  // state machine is waiting for would be lost on the air.
  bool needs_radio() const {
    return state_ == State::Associating || state_ == State::AcquiringSrp ||
           state_ == State::Draining;
  }
  const AssocStats& stats() const { return stats_; }

  void set_obs(obs::Hook hook);

 private:
  void send_control(proxy::AssocKind kind);
  void send_join();
  void send_leave();
  void go_down();
  sim::Duration backoff(int attempt);

  sim::Simulator& sim_;
  net::Ipv4Addr self_;
  AssocParams params_;
  SendFn send_;
  std::function<void()> on_down_;
  sim::Rng rng_;

  State state_ = State::Disassociated;
  std::uint64_t ctrl_seq_ = 0;  // last issued handshake seq
  int attempt_ = 0;             // retransmissions of the current handshake
  sim::EventHandle timer_;      // retry / acquisition timer

  obs::Hook obs_;
  obs::Counter* ctr_retries_ = nullptr;

  AssocStats stats_;
};

// The named association RNG stream for one client: the run seed, the
// stream tag, and the client address folded in so per-client jitter
// sequences are mutually independent and salt-invariant.
sim::Rng assoc_stream(std::uint64_t run_seed, net::Ipv4Addr self);

}  // namespace pp::client

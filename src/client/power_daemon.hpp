// The client-side power daemon (Sections 3.1-3.3).
//
// A small state machine that decides when the WNIC sleeps and wakes:
//
//  * wake shortly before each expected schedule broadcast (adaptive delay
//    compensation, anchored on the previous schedule's observed arrival);
//  * on a schedule, sleep until the client's rendezvous point, wake for the
//    burst, and sleep again when the marked packet arrives;
//  * ignore a schedule that arrives while a burst is still in progress
//    until the marked packet (or a further schedule) arrives — and accept
//    burst data that arrives before its schedule (the out-of-order rules
//    of Section 3.2.2);
//  * if an expected schedule never arrives, stay in high-power mode until
//    the next one (Section 4.3, "Worst-case client");
//  * honor the schedule-reuse flag (the paper's future-work extension):
//    when set, skip waking for the next broadcast and go straight to the
//    next burst rendezvous point.
//
// The daemon is deliberately decoupled from the live network client: it is
// driven by on_schedule()/on_data() events plus simulator timers, so the
// identical policy code runs inside the live client *and* inside the
// trace-driven postmortem analyzer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "client/delay_comp.hpp"
#include "net/packet.hpp"
#include "obs/hooks.hpp"
#include "proxy/schedule.hpp"
#include "sim/simulator.hpp"

namespace pp::client {

struct DaemonConfig {
  DelayCompensation comp{};
  // How long after the expected schedule arrival to wait before declaring
  // the schedule missed.
  sim::Duration schedule_grace = sim::Time::ms(30);
  // Fallback for slotted-static schedules whose slots may carry no data:
  // sleep when the slot ends even without a marked packet.
  bool sleep_at_slot_end = false;
  sim::Duration slot_end_grace = sim::Time::ms(5);
  // Gaps shorter than this are not worth the wake transition penalty.
  sim::Duration min_sleep = sim::Time::ms(4);
  // Honor ScheduleMessage::reuse_next (skip the next schedule wake).
  bool honor_reuse = true;
  // After app-initiated uplink activity (connection setup, requests), hold
  // the radio awake this long so immediate responses — TCP handshake
  // segments pass the proxy ungated — are not missed.  Data responses ride
  // scheduled bursts, so only a couple of wired round trips are needed.
  sim::Duration activity_hold = sim::Time::ms(50);
  // Missed-schedule escalation (graceful degradation under bursty loss).
  // Disabled by default, preserving the paper's worst-case behavior: stay
  // awake until the next SRP.  When enabled, each consecutive miss widens
  // the grace window by `backoff` (capped at max_grace), and after
  // `awake_misses` consecutive misses the daemon stops burning the whole
  // interval awake and instead sleeps between SRP wake attempts.
  struct MissEscalation {
    bool enabled = false;
    int awake_misses = 1;    // misses tolerated before sleeping through
    double backoff = 2.0;    // grace multiplier per consecutive miss
    sim::Duration max_grace = sim::Time::ms(240);
  };
  MissEscalation escalation{};
  // When a schedule is missed but its burst data arrives anyway, the daemon
  // re-anchors by estimate alone (`anchor_ += interval`) and sleeps — a
  // "blind coast".  A stale anchor (e.g. one poisoned by a queue-delayed
  // schedule released after an AP stall) can make every coast wake late
  // enough to sleep through the next broadcast *and* its k-repeat copies,
  // coasting desynchronized forever.  After this many consecutive coasts
  // without hearing a real broadcast, stay awake for one to re-anchor.
  int max_blind_coasts = 2;
};

struct DaemonStats {
  std::uint64_t schedules_received = 0;
  std::uint64_t schedules_missed = 0;
  std::uint64_t bursts_completed = 0;   // marked packet seen
  std::uint64_t slot_end_sleeps = 0;    // slot-end fallback fired
  std::uint64_t sleeps = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t forced_wakes = 0;
  // Degradation bookkeeping: a "first miss" opens an outage, further
  // consecutive misses deepen it, and the next received schedule closes it
  // (a resync).  Deduped k-repeat copies never touch the outage state.
  std::uint64_t first_misses = 0;
  std::uint64_t repeat_misses = 0;
  std::uint64_t escalated_sleeps = 0;  // intervals slept through in outage
  std::uint64_t resyncs = 0;
  std::uint64_t repeats_deduped = 0;
  std::uint64_t coast_breaks = 0;  // blind-coast streaks cut short
  // Awake time spent waiting for the first packet after a wake (the "early
  // transition" waste of Figure 6) and awake time caused by missed
  // schedules (its "MissedSched" component).
  sim::Duration early_wait;
  sim::Duration missed_wait;
};

class PowerDaemon {
 public:
  using WnicFn = std::function<void(bool awake)>;

  PowerDaemon(sim::Simulator& sim, net::Ipv4Addr self, DaemonConfig cfg,
              WnicFn wnic);
  ~PowerDaemon();

  PowerDaemon(const PowerDaemon&) = delete;
  PowerDaemon& operator=(const PowerDaemon&) = delete;

  // Begin awake, waiting for the first schedule.  Safe to call again after
  // stop(): all schedule/miss state is reset first (a rejoining client
  // must not trust an anchor from before its absence).
  void start();
  // Power the radio down and drop all schedule state (client left the
  // cell).  Idempotent; start() brings the daemon back.
  void stop();

  // A schedule broadcast was received (WNIC necessarily awake).
  void on_schedule(std::shared_ptr<const proxy::ScheduleMessage> msg);
  // A packet addressed to this client was received.  The daemon only reads
  // the payload size and the end-of-burst mark, so callers that have
  // already moved the packet into the stack use the field form directly.
  void on_data(const net::Packet& pkt) { on_data(pkt.payload, pkt.marked); }
  void on_data(std::uint32_t payload, bool marked);
  // The application initiated uplink activity: wake and stay awake until
  // the next schedule resynchronizes us.
  void force_awake();
  // Push the activity hold out to `base` + activity_hold.  Called once the
  // uplink frame actually clears the busy channel, so the response window
  // is measured from when the request could first be answered.
  void extend_hold(sim::Time base);

  bool awake() const { return awake_; }
  const DaemonStats& stats() const { return stats_; }

  // Publish missed-schedule events keyed to `subject` (the client's IP).
  void set_obs(obs::Hook hook, std::uint32_t subject);

 private:
  enum class State : std::uint8_t {
    AwaitingSchedule,  // awake, expecting a schedule broadcast
    Sleeping,
    AwaitingBurst,  // awake at an RP, burst not yet started
    Receiving,      // burst in progress (no mark yet)
  };

  void apply_schedule(std::shared_ptr<const proxy::ScheduleMessage> msg,
                      sim::Time arrival);
  void plan_next_step();
  void sleep_until(sim::Time t, State next, std::size_t entry_idx);
  void begin_wait(State next, std::size_t entry_idx);
  void end_burst(bool via_mark);
  void on_schedule_grace_expired();
  void on_slot_end();
  void maybe_resleep();
  void settle_first_wait();
  void note_resync();
  void set_wnic(bool awake);
  void reset();

  sim::Simulator& sim_;
  net::Ipv4Addr self_;
  DaemonConfig cfg_;
  WnicFn wnic_;

  State state_ = State::AwaitingSchedule;
  bool awake_ = true;
  std::shared_ptr<const proxy::ScheduleMessage> cur_;
  sim::Time anchor_;  // arrival time anchoring cur_'s offsets
  std::vector<proxy::ScheduleEntry> my_entries_;
  std::size_t entry_idx_ = 0;
  std::shared_ptr<const proxy::ScheduleMessage> pending_;
  sim::Time pending_arrival_;

  sim::EventHandle wake_timer_;
  sim::EventHandle grace_timer_;
  sim::EventHandle slot_timer_;
  sim::EventHandle resleep_timer_;  // resume sleeping when a hold expires

  // Most recent sleep plan, so an activity hold can resume it.
  sim::Time planned_wake_;
  State planned_next_ = State::AwaitingSchedule;
  std::size_t planned_entry_ = 0;

  bool waiting_first_ = false;
  sim::Time wake_started_;
  sim::Time hold_until_;  // no sleeping before this (activity hold)
  bool miss_active_ = false;
  sim::Time miss_start_;

  // Outage state (escalation policy): consecutive misses since the last
  // received schedule, the current (possibly widened) grace window, and
  // when the outage opened.
  std::uint64_t consecutive_misses_ = 0;
  sim::Duration cur_grace_;
  sim::Time first_miss_at_;
  int blind_coasts_ = 0;  // consecutive estimate-only re-anchors

  obs::Hook obs_;
  std::uint32_t obs_subject_ = 0;
  obs::Counter* ctr_sched_missed_ = nullptr;
  obs::Counter* ctr_resyncs_ = nullptr;
  obs::Histogram* hist_outage_us_ = nullptr;

  DaemonStats stats_;
};

}  // namespace pp::client

// A mobile client running 802.11 power-save mode instead of the paper's
// proxy schedule — the baseline of Section 2.
//
// The client dozes between beacons, waking shortly before each one.  If
// the beacon's TIM indicates buffered traffic, it stays awake until the
// final ("no more data") frame arrives; otherwise it dozes again.  Energy
// accounting matches EnergyAwareClient, so PSM and proxy scheduling are
// directly comparable.
#pragma once

#include <cstdint>
#include <string>

#include "client/energy_client.hpp"  // ClientTraffic
#include "energy/wnic.hpp"
#include "net/node.hpp"
#include "net/psm.hpp"
#include "net/wireless.hpp"
#include "sim/simulator.hpp"

namespace pp::client {

struct PsmParams {
  sim::Duration early = sim::Time::ms(2);  // wake this long before a beacon
  sim::Duration beacon_grace = sim::Time::ms(20);
  sim::Duration min_sleep = sim::Time::ms(4);
  sim::Duration activity_hold = sim::Time::ms(50);
  energy::WnicPowerModel power{};
};

class PsmClient : public net::WirelessStation {
 public:
  PsmClient(sim::Simulator& sim, net::WirelessMedium& medium,
            net::Ipv4Addr ip, std::string name, PsmParams params = {});

  PsmClient(const PsmClient&) = delete;
  PsmClient& operator=(const PsmClient&) = delete;

  // Begin awake, waiting for the first beacon.
  void start() {}

  net::Node& node() { return node_; }
  net::Ipv4Addr ip() const { return node_.ip(); }
  const ClientTraffic& traffic() const { return traffic_; }
  const energy::EnergyAccountant& accountant() const { return acc_; }

  double energy_mj(sim::Time now) const { return acc_.energy_mj(now); }
  double naive_energy_mj(sim::Time now) const;
  double energy_saved_fraction(sim::Time now) const;
  double loss_fraction() const;

  std::uint64_t beacons_received() const { return beacons_received_; }
  std::uint64_t beacons_missed() const { return beacons_missed_; }

  // net::WirelessStation.
  bool listening() const override { return awake_; }
  void deliver(net::Packet pkt, sim::Duration airtime) override;
  void missed(const net::Packet& pkt, sim::Duration airtime) override;
  void on_air(sim::Time start, sim::Duration dur) override;

 private:
  void on_beacon(const net::BeaconMessage& b);
  void doze_until(sim::Time t);
  void wake();

  sim::Simulator& sim_;
  net::Node node_;
  PsmParams params_;
  energy::EnergyAccountant acc_;
  bool awake_ = true;
  bool draining_ = false;  // TIM indicated us; awaiting the final frame
  sim::Time last_beacon_arrival_;
  sim::Duration beacon_interval_ = sim::Time::ms(100);
  sim::Time hold_until_;
  sim::EventHandle wake_timer_;
  sim::EventHandle grace_timer_;
  std::uint64_t beacons_received_ = 0;
  std::uint64_t beacons_missed_ = 0;
  ClientTraffic traffic_;
  sim::Time start_time_;
};

}  // namespace pp::client

#include "client/association.hpp"

#include <memory>
#include <utility>

#include "obs/metrics.hpp"

namespace pp::client {
namespace {

// Stream tag for association backoff jitter (see DESIGN.md on named RNG
// streams).  Unique across the project — pp_analyze rng-stream-unique.
constexpr std::uint64_t kAssocStreamTag = 0xA550'C1A7'0B0F'F5E7ULL;

// Weyl increment decorrelates per-client streams derived from one tag.
constexpr std::uint64_t kClientMix = 0x9E37'79B9'7F4A'7C15ULL;

}  // namespace

sim::Rng assoc_stream(std::uint64_t run_seed, net::Ipv4Addr self) {
  return sim::Rng{(run_seed ^ kAssocStreamTag) + kClientMix * self.raw()};
}

AssociationAgent::AssociationAgent(sim::Simulator& sim, net::Ipv4Addr self,
                                   AssocParams params, SendFn send,
                                   std::function<void()> on_down)
    : sim_{sim},
      self_{self},
      params_{params},
      send_{std::move(send)},
      on_down_{std::move(on_down)},
      rng_{assoc_stream(params.run_seed, self)} {}

AssociationAgent::~AssociationAgent() { timer_.cancel(); }

void AssociationAgent::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_retries_ = m->counter("client.assoc.retries");
  });
}

sim::Duration AssociationAgent::backoff(int attempt) {
  double mult = 1.0;
  for (int i = 0; i < attempt; ++i) mult *= params_.backoff_base;
  double ns = static_cast<double>(params_.retry_timeout.count_ns()) * mult;
  const double cap = static_cast<double>(params_.backoff_cap.count_ns());
  if (ns > cap) ns = cap;
  // Deterministic jitter from the named stream desynchronizes clients that
  // start a handshake at the same instant (churn storms).
  const double j = 1.0 + params_.jitter_frac * (2.0 * rng_.uniform() - 1.0);
  return sim::Time::ns(static_cast<std::int64_t>(ns * j));
}

void AssociationAgent::send_control(proxy::AssocKind kind) {
  auto msg = std::make_shared<proxy::AssocMessage>();
  msg->kind = kind;
  msg->seq = ctrl_seq_;
  net::Packet pkt = net::make_packet();
  pkt.src = self_;
  pkt.src_port = proxy::kAssocPort;
  pkt.dst = params_.proxy_ip;
  pkt.dst_port = proxy::kAssocPort;
  pkt.proto = net::Protocol::Udp;
  pkt.payload = proxy::AssocMessage::kWireBytes;
  pkt.data = std::move(msg);
  pkt.sent_at = sim_.now();
  if (send_) send_(std::move(pkt));
}

void AssociationAgent::join() {
  // Legal from Disassociated (normal rejoin) and Draining (flapped back
  // before the leave completed: the Join simply supersedes it proxy-side).
  if (state_ == State::Associating || state_ == State::AcquiringSrp ||
      state_ == State::Associated)
    return;
  timer_.cancel();
  state_ = State::Associating;
  attempt_ = 0;
  ++ctrl_seq_;
  ++stats_.joins_sent;
  send_join();
}

void AssociationAgent::send_join() {
  if (attempt_ > 0) {
    ++stats_.join_retries;
    PP_OBS(if (ctr_retries_) ctr_retries_->inc());
  }
  send_control(proxy::AssocKind::Join);
  timer_ = sim_.after(backoff(attempt_), [this] {
    ++attempt_;
    send_join();  // unbounded: without membership there is nothing else
  });
}

void AssociationAgent::leave() {
  if (state_ == State::Disassociated || state_ == State::Draining) return;
  timer_.cancel();
  state_ = State::Draining;
  attempt_ = 0;
  ++ctrl_seq_;
  ++stats_.leaves_sent;
  send_leave();
}

void AssociationAgent::send_leave() {
  if (attempt_ > 0) {
    ++stats_.leave_retries;
    PP_OBS(if (ctr_retries_) ctr_retries_->inc());
  }
  send_control(proxy::AssocKind::Leave);
  timer_ = sim_.after(backoff(attempt_), [this] {
    if (attempt_ >= params_.max_leave_retries) {
      // The proxy's drain deadline bounds its side; ours is bounded here.
      // Going dark unacked is safe: the proxy eventually drops the queue.
      ++stats_.leave_abandons;
      go_down();
      return;
    }
    ++attempt_;
    send_leave();
  });
}

void AssociationAgent::go_down() {
  timer_.cancel();
  state_ = State::Disassociated;
  if (on_down_) on_down_();
}

void AssociationAgent::on_packet(const proxy::AssocMessage& msg) {
  switch (msg.kind) {
    case proxy::AssocKind::JoinAck:
      if (state_ != State::Associating || msg.seq != ctrl_seq_) return;
      ++stats_.join_acks;
      timer_.cancel();
      state_ = State::AcquiringSrp;
      attempt_ = 0;
      // Admitted, but the SRP cadence is only known once a broadcast is
      // heard.  The renegotiated schedule normally lands within an
      // interval; if every copy is lost, fall back to a fresh Join (the
      // proxy re-acks and renegotiates again).
      timer_ = sim_.after(params_.srp_acquire_timeout, [this] {
        ++stats_.srp_reacquires;
        state_ = State::Associating;
        ++ctrl_seq_;
        attempt_ = 0;
        ++stats_.joins_sent;
        send_join();
      });
      break;
    case proxy::AssocKind::LeaveAck:
      if (state_ != State::Draining || msg.seq != ctrl_seq_) return;
      ++stats_.leave_acks;
      go_down();
      break;
    case proxy::AssocKind::Join:
    case proxy::AssocKind::Leave:
      break;  // proxy-bound; not expected downlink
  }
}

void AssociationAgent::note_schedule() {
  if (state_ != State::AcquiringSrp) return;
  timer_.cancel();
  state_ = State::Associated;
}

}  // namespace pp::client

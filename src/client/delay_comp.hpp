// Delay compensation (Section 3.3).
//
// A client must wake before its rendezvous point, but access-point jitter,
// the proxy's thread scheduling, and clock skew shift packet arrivals.  The
// paper's adaptive algorithm anchors every transition a fixed offset after
// the *observed arrival time* of the previous schedule, waking an "early
// transition amount" before the expected arrival.  Two baselines: anchoring
// on the proxy's clock stamp (no path-delay adaptation), and no early
// transition at all.
#pragma once

#include "sim/time.hpp"

namespace pp::client {

enum class CompensationMode {
  Adaptive,    // anchor on observed schedule arrival (the paper's algorithm)
  ProxyClock,  // anchor on the srp timestamp inside the schedule
  None,        // adaptive anchor but no early transition
};

struct DelayCompensation {
  CompensationMode mode = CompensationMode::Adaptive;
  // The early transition amount: how much before the expected arrival the
  // WNIC is woken.  6 ms is the paper's best value for 100 ms intervals.
  sim::Duration early = sim::Time::ms(6);
  // Worst-case arrival shift between two consecutive schedule broadcasts.
  // The adaptive anchor carries the previous broadcast's path delay: if that
  // broadcast was jittered by j_prev and the next by j_next, the next
  // arrival lands j_next - j_prev relative to the anchor, so a client can
  // desync whenever j_prev - j_next exceeds the early amount.  Deployments
  // set this to the configured AP jitter bound (jitter_max + spike_max) and
  // the guard below widens the early transition to cover it.  Zero (the
  // default) preserves the paper's fixed early amount.
  sim::Duration jitter_bound = sim::Time::zero();

  // The early amount actually applied: never less than the jitter bound,
  // so a maximally-jittered anchor still wakes the client in time.
  sim::Duration effective_early() const {
    return early < jitter_bound ? jitter_bound : early;
  }

  // When to wake for an event nominally `offset` after the schedule.
  // `arrival` is when the schedule reached the client; `srp_stamp` is the
  // proxy clock value it carried.
  sim::Time wake_time(sim::Time arrival, sim::Time srp_stamp,
                      sim::Duration offset) const {
    switch (mode) {
      case CompensationMode::Adaptive:
        return arrival + offset - effective_early();
      case CompensationMode::ProxyClock:
        return srp_stamp + offset - effective_early();
      case CompensationMode::None:
        return arrival + offset;
    }
    return arrival + offset;
  }
};

}  // namespace pp::client

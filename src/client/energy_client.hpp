// The live mobile client: a wireless station whose radio is governed by
// the PowerDaemon, with WNIC energy accounting attached.
//
// Applications (video player, web browser, ftp) attach sockets to node().
// Setting Params::naive produces the paper's baseline client that keeps
// its WNIC in high-power mode for the whole run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "client/association.hpp"
#include "client/power_daemon.hpp"
#include "energy/wnic.hpp"
#include "net/node.hpp"
#include "net/wireless.hpp"
#include "obs/hooks.hpp"
#include "proxy/schedule.hpp"
#include "sim/simulator.hpp"

namespace pp::client {

struct ClientParams {
  DaemonConfig daemon{};
  energy::WnicPowerModel power{};
  // When set, the client's energy row lives in this shared fleet ledger
  // (flat SoA — see energy::EnergyLedger) and `power` is ignored; the
  // ledger's model applies.  Null keeps a private single-row ledger.
  energy::EnergyLedger* ledger = nullptr;
  bool naive = false;  // never sleep (the comparison baseline)
  // Dynamic membership (client churn).  When enabled the client carries an
  // AssociationAgent; set_away() drives leave/rejoin handshakes with the
  // proxy and powers the daemon down while disassociated.
  AssocParams assoc{};
};

struct ClientTraffic {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_missed = 0;  // addressed to us while asleep/corrupt
  std::uint64_t bytes_received = 0;
  std::uint64_t broadcasts_missed = 0;
  sim::Duration receive_airtime;
  sim::Duration missed_airtime;
  sim::Duration transmit_airtime;
  // Downlink UDP datagram delay (origin send to client delivery), data
  // plane only — schedule broadcasts and burst markers excluded.
  sim::Duration delay_sum;
  std::uint64_t delay_samples = 0;
};

class EnergyAwareClient : public net::WirelessStation {
 public:
  EnergyAwareClient(sim::Simulator& sim, net::WirelessMedium& medium,
                    net::Ipv4Addr ip, std::string name,
                    ClientParams params = {});

  EnergyAwareClient(const EnergyAwareClient&) = delete;
  EnergyAwareClient& operator=(const EnergyAwareClient&) = delete;

  // Begin the power daemon (no-op for naive clients).  An assoc-enabled
  // client starts Associated: the testbed pre-registers the fleet.
  void start();

  // Churn driver (FaultPlan ClientChurn windows).  away=true starts a
  // graceful leave — the radio stays up until the proxy's LeaveAck (or the
  // retry budget runs out), then the daemon stops.  away=false restarts
  // the daemon and re-joins.  No-op unless assoc is enabled.
  void set_away(bool away);
  // Present (non-null) only when assoc is enabled.
  const AssociationAgent* assoc() const { return assoc_.get(); }

  // Publish the per-client awake duty-cycle gauge ("client.<ip>.awake")
  // and sleep/wake timeline events; also hooks the daemon's miss counter.
  void set_obs(obs::Hook hook);

  net::Node& node() { return node_; }
  net::Ipv4Addr ip() const { return node_.ip(); }
  PowerDaemon& daemon() { return daemon_; }
  const DaemonStats& daemon_stats() const { return daemon_.stats(); }
  const ClientTraffic& traffic() const { return traffic_; }
  const energy::EnergyAccountant& accountant() const { return acc_; }

  // -- Energy results ------------------------------------------------------------
  double energy_mj(sim::Time now) const { return acc_.energy_mj(now); }
  // What a naive client would have used over the same trace: always idle,
  // receiving every frame addressed to it (including the ones we missed).
  double naive_energy_mj(sim::Time now) const;
  // 1 - energy/naive: the paper's headline metric.
  double energy_saved_fraction(sim::Time now) const;
  // Fraction of addressed packets missed.
  double loss_fraction() const;

  // -- net::WirelessStation --------------------------------------------------------
  bool listening() const override;
  void deliver(net::Packet pkt, sim::Duration airtime) override;
  void missed(const net::Packet& pkt, sim::Duration airtime) override;
  void on_air(sim::Time start, sim::Duration dur) override;

 private:
  void record_power_state(bool awake);

  sim::Simulator& sim_;
  net::Node node_;
  ClientParams params_;
  energy::EnergyAccountant acc_;
  PowerDaemon daemon_;
  std::unique_ptr<AssociationAgent> assoc_;
  ClientTraffic traffic_;
  sim::Time start_time_;

  obs::Hook obs_;
  obs::TimeWeightedGauge* twg_awake_ = nullptr;
};

}  // namespace pp::client

#include "client/psm_client.hpp"

#include <utility>

namespace pp::client {

PsmClient::PsmClient(sim::Simulator& sim, net::WirelessMedium& medium,
                     net::Ipv4Addr ip, std::string name, PsmParams params)
    : sim_{sim},
      node_{sim, ip, std::move(name)},
      params_{params},
      acc_{params.power, sim.now(), energy::WnicMode::Idle},
      start_time_{sim.now()} {
  const auto station_id = medium.attach_station(*this, ip);
  node_.set_transmitter([this, &medium, station_id](net::Packet pkt) {
    if (!awake_) wake();
    hold_until_ = sim_.now() + params_.activity_hold;
    medium.transmit(station_id, std::move(pkt));
    sim::Time base = medium.busy_until();
    if (base + params_.activity_hold > hold_until_)
      hold_until_ = base + params_.activity_hold;
  });
}

void PsmClient::wake() {
  awake_ = true;
  acc_.set_mode(sim_.now(), energy::WnicMode::Idle);
}

void PsmClient::doze_until(sim::Time t) {
  wake_timer_.cancel();
  sim::Time now = sim_.now();
  if (t < now) t = now;
  if (now < hold_until_) {
    // Uplink activity in flight: re-evaluate when the hold expires.
    wake_timer_ = sim_.at(std::max(hold_until_, now),
                          [this, t] { doze_until(t); });
    return;
  }
  if (t - now > params_.min_sleep) {
    awake_ = false;
    acc_.set_mode(now, energy::WnicMode::Sleep);
  }
  wake_timer_ = sim_.at(t, [this] {
    wake();
    // If the beacon never shows, stay awake until one does.
    grace_timer_.cancel();
    grace_timer_ = sim_.at(sim_.now() + params_.early + params_.beacon_grace,
                           [this] { ++beacons_missed_; });
  });
}

void PsmClient::on_beacon(const net::BeaconMessage& b) {
  ++beacons_received_;
  grace_timer_.cancel();
  last_beacon_arrival_ = sim_.now();
  beacon_interval_ = b.beacon_interval;
  if (b.indicates(ip())) {
    draining_ = true;  // stay awake until the final buffered frame
    return;
  }
  draining_ = false;
  doze_until(last_beacon_arrival_ + beacon_interval_ - params_.early);
}

void PsmClient::deliver(net::Packet pkt, sim::Duration airtime) {
  acc_.add_transient(energy::WnicMode::Receive, airtime);
  traffic_.receive_airtime += airtime;

  if (pkt.is_broadcast() && pkt.dst_port == net::kBeaconPort) {
    if (const auto* b =
            dynamic_cast<const net::BeaconMessage*>(pkt.data.get())) {
      on_beacon(*b);
    }
    return;
  }
  ++traffic_.packets_received;
  traffic_.bytes_received += pkt.payload;
  const bool marked = pkt.marked;
  node_.handle_packet(std::move(pkt));
  if (draining_ && marked) {
    draining_ = false;
    doze_until(last_beacon_arrival_ + beacon_interval_ - params_.early);
  }
}

void PsmClient::missed(const net::Packet& pkt, sim::Duration airtime) {
  traffic_.missed_airtime += airtime;
  if (pkt.is_broadcast()) {
    ++traffic_.broadcasts_missed;
  } else {
    ++traffic_.packets_missed;
  }
}

void PsmClient::on_air(sim::Time /*start*/, sim::Duration dur) {
  acc_.add_transient(energy::WnicMode::Transmit, dur);
  traffic_.transmit_airtime += dur;
}

double PsmClient::naive_energy_mj(sim::Time now) const {
  const auto& m = acc_.model();
  const double total_s = (now - start_time_).to_seconds();
  const double recv_s =
      (traffic_.receive_airtime + traffic_.missed_airtime).to_seconds();
  const double tx_s = traffic_.transmit_airtime.to_seconds();
  return m.mw(energy::WnicMode::Idle) * total_s +
         (m.mw(energy::WnicMode::Receive) - m.mw(energy::WnicMode::Idle)) *
             recv_s +
         (m.mw(energy::WnicMode::Transmit) - m.mw(energy::WnicMode::Idle)) *
             tx_s;
}

double PsmClient::energy_saved_fraction(sim::Time now) const {
  const double naive = naive_energy_mj(now);
  return naive > 0 ? 1.0 - energy_mj(now) / naive : 0;
}

double PsmClient::loss_fraction() const {
  const double total = static_cast<double>(traffic_.packets_received +
                                           traffic_.packets_missed);
  return total > 0
             ? static_cast<double>(traffic_.packets_missed) / total
             : 0;
}

}  // namespace pp::client

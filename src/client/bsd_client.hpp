// Bounded-Slowdown (BSD) baseline — the paper's reference [9] (Krashinsky
// & Balakrishnan, MobiCom 2002), contrasted in Section 2.
//
// BSD minimizes energy subject to a maximum RTT slowdown factor p: after
// uplink activity the client listens continuously for a base window (so
// short responses suffer no slowdown), then dozes with listen intervals
// that grow so the added latency never exceeds p times the elapsed wait.
// Like 802.11 PSM it rides the access point's beacon/TIM machinery; the
// paper's point is that this suits request/response web traffic but not
// long-lived multimedia streams, where packets keep arriving forever.
//
// Model: awake_window after each request-like uplink; afterwards the
// client wakes only for every k-th beacon, with k growing by `growth`
// (capped so the slowdown stays bounded) until traffic arrives, which
// resets the ladder.
#pragma once

#include <cstdint>
#include <string>

#include "client/energy_client.hpp"  // ClientTraffic
#include "energy/wnic.hpp"
#include "net/node.hpp"
#include "net/psm.hpp"
#include "net/wireless.hpp"
#include "sim/simulator.hpp"

namespace pp::client {

struct BsdParams {
  // Listen continuously this long after a request (the "1/p RTT" base
  // window: responses inside it see no slowdown at all).
  sim::Duration awake_window = sim::Time::ms(300);
  // Beacon skip ladder: wake every k-th beacon, k doubling up to the cap.
  int max_beacon_skip = 8;
  sim::Duration early = sim::Time::ms(2);
  sim::Duration min_sleep = sim::Time::ms(4);
  energy::WnicPowerModel power{};
};

class BsdClient : public net::WirelessStation {
 public:
  BsdClient(sim::Simulator& sim, net::WirelessMedium& medium,
            net::Ipv4Addr ip, std::string name, BsdParams params = {});

  BsdClient(const BsdClient&) = delete;
  BsdClient& operator=(const BsdClient&) = delete;

  net::Node& node() { return node_; }
  net::Ipv4Addr ip() const { return node_.ip(); }
  const ClientTraffic& traffic() const { return traffic_; }
  const energy::EnergyAccountant& accountant() const { return acc_; }

  double energy_mj(sim::Time now) const { return acc_.energy_mj(now); }
  double naive_energy_mj(sim::Time now) const;
  double energy_saved_fraction(sim::Time now) const;
  double loss_fraction() const;
  int current_beacon_skip() const { return skip_; }

  // net::WirelessStation.
  bool listening() const override { return awake_; }
  void deliver(net::Packet pkt, sim::Duration airtime) override;
  void missed(const net::Packet& pkt, sim::Duration airtime) override;
  void on_air(sim::Time start, sim::Duration dur) override;

 private:
  void on_beacon(const net::BeaconMessage& b);
  void enter_awake_window();
  void doze_for_skip();
  void wake();

  sim::Simulator& sim_;
  net::Node node_;
  BsdParams params_;
  energy::EnergyAccountant acc_;
  bool awake_ = true;
  bool draining_ = false;
  int skip_ = 1;  // wake every skip-th beacon
  sim::Time last_beacon_arrival_;
  sim::Duration beacon_interval_ = sim::Time::ms(100);
  sim::Time window_until_;  // end of the current always-awake window
  sim::EventHandle wake_timer_;
  sim::EventHandle window_timer_;
  ClientTraffic traffic_;
  sim::Time start_time_;
};

}  // namespace pp::client

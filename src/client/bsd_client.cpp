#include "client/bsd_client.hpp"

#include <algorithm>
#include <utility>

namespace pp::client {

BsdClient::BsdClient(sim::Simulator& sim, net::WirelessMedium& medium,
                     net::Ipv4Addr ip, std::string name, BsdParams params)
    : sim_{sim},
      node_{sim, ip, std::move(name)},
      params_{params},
      acc_{params.power, sim.now(), energy::WnicMode::Idle},
      start_time_{sim.now()} {
  const auto station_id = medium.attach_station(*this, ip);
  node_.set_transmitter([this, &medium, station_id](net::Packet pkt) {
    const bool request_like =
        pkt.proto == net::Protocol::Tcp &&
        (pkt.tcp.syn || pkt.tcp.fin || pkt.payload > 0);
    if (request_like) enter_awake_window();
    if (!awake_) wake();
    medium.transmit(station_id, std::move(pkt));
  });
}

void BsdClient::wake() {
  awake_ = true;
  acc_.set_mode(sim_.now(), energy::WnicMode::Idle);
}

void BsdClient::enter_awake_window() {
  // Fresh request: listen continuously; reset the skip ladder.
  skip_ = 1;
  window_until_ = sim_.now() + params_.awake_window;
  wake();
  wake_timer_.cancel();
  window_timer_.cancel();
  window_timer_ = sim_.at(window_until_, [this] {
    // Window over: fall back to beacon-skipping sleep.
    if (sim_.now() >= window_until_) doze_for_skip();
  });
}

void BsdClient::doze_for_skip() {
  wake_timer_.cancel();
  const sim::Time t = last_beacon_arrival_ +
                      beacon_interval_ * skip_ - params_.early;
  const sim::Time now = sim_.now();
  const sim::Time target = std::max(t, now);
  if (target - now > params_.min_sleep) {
    awake_ = false;
    acc_.set_mode(now, energy::WnicMode::Sleep);
  }
  wake_timer_ = sim_.at(target, [this] { wake(); });
}

void BsdClient::on_beacon(const net::BeaconMessage& b) {
  last_beacon_arrival_ = sim_.now();
  beacon_interval_ = b.beacon_interval;
  if (b.indicates(ip())) {
    draining_ = true;  // stay up for the parked frames
    return;
  }
  if (sim_.now() < window_until_) return;  // inside the awake window
  // Nothing for us: grow the skip ladder (bounding the added latency) and
  // doze until the k-th next beacon.
  skip_ = std::min(skip_ * 2, params_.max_beacon_skip);
  doze_for_skip();
}

void BsdClient::deliver(net::Packet pkt, sim::Duration airtime) {
  acc_.add_transient(energy::WnicMode::Receive, airtime);
  traffic_.receive_airtime += airtime;
  if (pkt.is_broadcast() && pkt.dst_port == net::kBeaconPort) {
    if (const auto* b =
            dynamic_cast<const net::BeaconMessage*>(pkt.data.get())) {
      on_beacon(*b);
    }
    return;
  }
  ++traffic_.packets_received;
  traffic_.bytes_received += pkt.payload;
  const bool marked = pkt.marked;
  node_.handle_packet(std::move(pkt));
  // Traffic resets the ladder: more may follow soon.
  skip_ = 1;
  if (draining_ && marked) {
    draining_ = false;
    if (sim_.now() >= window_until_) doze_for_skip();
  }
}

void BsdClient::missed(const net::Packet& pkt, sim::Duration airtime) {
  traffic_.missed_airtime += airtime;
  if (pkt.is_broadcast()) {
    ++traffic_.broadcasts_missed;
  } else {
    ++traffic_.packets_missed;
  }
}

void BsdClient::on_air(sim::Time /*start*/, sim::Duration dur) {
  acc_.add_transient(energy::WnicMode::Transmit, dur);
  traffic_.transmit_airtime += dur;
}

double BsdClient::naive_energy_mj(sim::Time now) const {
  const auto& m = acc_.model();
  const double total_s = (now - start_time_).to_seconds();
  const double recv_s =
      (traffic_.receive_airtime + traffic_.missed_airtime).to_seconds();
  const double tx_s = traffic_.transmit_airtime.to_seconds();
  return m.mw(energy::WnicMode::Idle) * total_s +
         (m.mw(energy::WnicMode::Receive) - m.mw(energy::WnicMode::Idle)) *
             recv_s +
         (m.mw(energy::WnicMode::Transmit) - m.mw(energy::WnicMode::Idle)) *
             tx_s;
}

double BsdClient::energy_saved_fraction(sim::Time now) const {
  const double naive = naive_energy_mj(now);
  return naive > 0 ? 1.0 - energy_mj(now) / naive : 0;
}

double BsdClient::loss_fraction() const {
  const double total = static_cast<double>(traffic_.packets_received +
                                           traffic_.packets_missed);
  return total > 0 ? static_cast<double>(traffic_.packets_missed) / total
                   : 0;
}

}  // namespace pp::client

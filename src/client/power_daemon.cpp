#include "client/power_daemon.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::client {

PowerDaemon::PowerDaemon(sim::Simulator& sim, net::Ipv4Addr self,
                         DaemonConfig cfg, WnicFn wnic)
    : sim_{sim},
      self_{self},
      cfg_{cfg},
      wnic_{std::move(wnic)},
      cur_grace_{cfg.schedule_grace} {}

PowerDaemon::~PowerDaemon() {
  wake_timer_.cancel();
  grace_timer_.cancel();
  slot_timer_.cancel();
  resleep_timer_.cancel();
}

void PowerDaemon::set_wnic(bool awake) {
  if (awake_ == awake) return;
  awake_ = awake;
  if (wnic_) wnic_(awake);
}

void PowerDaemon::start() {
  // Restart-safe: a rejoining client's daemon must not carry schedule
  // state from before its absence (the anchor is stale, the entries are
  // for an old membership set).
  reset();
  set_wnic(true);
}

void PowerDaemon::stop() {
  reset();
  set_wnic(false);
}

void PowerDaemon::reset() {
  wake_timer_.cancel();
  grace_timer_.cancel();
  slot_timer_.cancel();
  resleep_timer_.cancel();
  state_ = State::AwaitingSchedule;
  cur_.reset();
  pending_.reset();
  my_entries_.clear();
  entry_idx_ = 0;
  planned_wake_ = sim::Time{};
  planned_next_ = State::AwaitingSchedule;
  planned_entry_ = 0;
  waiting_first_ = false;
  hold_until_ = sim::Time{};
  miss_active_ = false;
  consecutive_misses_ = 0;
  cur_grace_ = cfg_.schedule_grace;
  blind_coasts_ = 0;
}

void PowerDaemon::set_obs(obs::Hook hook, std::uint32_t subject) {
  (void)hook;
  (void)subject;
  PP_OBS(obs_ = hook; obs_subject_ = subject; if (auto* m = obs_.metrics()) {
    ctr_sched_missed_ = m->counter("client.schedules_missed");
    ctr_resyncs_ = m->counter("client.resyncs");
    hist_outage_us_ = m->histogram("client.outage_us");
  });
}

void PowerDaemon::settle_first_wait() {
  if (!waiting_first_) return;
  waiting_first_ = false;
  stats_.early_wait += sim_.now() - wake_started_;
}

void PowerDaemon::note_resync() {
  if (consecutive_misses_ == 0) return;
  ++stats_.resyncs;
  PP_OBS(if (ctr_resyncs_) ctr_resyncs_->inc();
         if (hist_outage_us_) hist_outage_us_->observe(static_cast<
             std::uint64_t>((sim_.now() - first_miss_at_).count_us()));
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::Resync, obs_subject_,
                        consecutive_misses_));
  consecutive_misses_ = 0;
  cur_grace_ = cfg_.schedule_grace;
}

void PowerDaemon::on_schedule(
    std::shared_ptr<const proxy::ScheduleMessage> msg) {
  // k-repeat hardening copies carry the original's seq_no: a schedule we
  // already hold (applied or deferred) is a duplicate and must not disturb
  // the state machine.
  if ((cur_ && msg->seq_no <= cur_->seq_no) ||
      (pending_ && msg->seq_no <= pending_->seq_no)) {
    ++stats_.repeats_deduped;
    return;
  }
  ++stats_.schedules_received;
  grace_timer_.cancel();
  if (miss_active_) {
    miss_active_ = false;
    stats_.missed_wait += sim_.now() - miss_start_;
  }
  note_resync();
  if (state_ == State::AwaitingSchedule) settle_first_wait();

  // A repeated copy anchors delay compensation on where the original would
  // have arrived, not on its own (lagged) arrival.
  const sim::Time arrival = sim_.now() - msg->repeat_offset;
  if (state_ == State::Receiving) {
    // A burst is still in progress.  Rule (1) of Section 3.2.2: defer the
    // new schedule until the marked packet — unless one is already
    // deferred, which means the mark was dropped; then this second
    // schedule forcibly ends the burst.
    if (pending_) {
      apply_schedule(std::move(msg), arrival);
    } else {
      pending_ = std::move(msg);
      pending_arrival_ = arrival;
    }
    return;
  }
  apply_schedule(std::move(msg), arrival);
}

void PowerDaemon::apply_schedule(
    std::shared_ptr<const proxy::ScheduleMessage> msg, sim::Time arrival) {
  pending_.reset();
  slot_timer_.cancel();
  blind_coasts_ = 0;  // anchored on a real broadcast again
  cur_ = std::move(msg);
  anchor_ = arrival;
  my_entries_.clear();
  for (const auto& e : cur_->entries)
    if (e.client == self_) my_entries_.push_back(e);
  std::stable_sort(my_entries_.begin(), my_entries_.end(),
                   [](const auto& a, const auto& b) {
                     return a.rp_offset < b.rp_offset;
                   });
  entry_idx_ = 0;
  plan_next_step();
}

void PowerDaemon::plan_next_step() {
  // plan_next_step requires an applied schedule
  PP_CHECK(cur_ != nullptr, "client.power_daemon.plan");
  if (entry_idx_ < my_entries_.size()) {
    const auto& e = my_entries_[entry_idx_];
    const sim::Time t =
        cfg_.comp.wake_time(anchor_, cur_->srp_time, e.rp_offset);
    sleep_until(t, State::AwaitingBurst, entry_idx_);
    return;
  }
  // All bursts for this interval are done.
  if (cur_->reuse_next && cfg_.honor_reuse && !my_entries_.empty()) {
    // Future-work extension / static schedules: the same layout repeats, so
    // skip the next schedule broadcast and go straight to our next RP.
    anchor_ += cur_->interval;
    entry_idx_ = 0;
    plan_next_step();
    return;
  }
  const sim::Time t =
      cfg_.comp.wake_time(anchor_, cur_->srp_time, cur_->interval);
  sleep_until(t, State::AwaitingSchedule, 0);
}

void PowerDaemon::sleep_until(sim::Time t, State next, std::size_t entry_idx) {
  wake_timer_.cancel();
  const sim::Time now = sim_.now();
  if (t < now) t = now;
  planned_wake_ = t;
  planned_next_ = next;
  planned_entry_ = entry_idx;
  if (now < hold_until_ && hold_until_ < t) {
    // Activity hold: stay awake for imminent responses, then re-evaluate.
    state_ = next;
    wake_timer_ = sim_.at(hold_until_, [this, t, next, entry_idx] {
      if (state_ == next) sleep_until(t, next, entry_idx);
    });
    return;
  }
  if (t - now > cfg_.min_sleep && now >= hold_until_) {
    set_wnic(false);
    state_ = State::Sleeping;
    ++stats_.sleeps;
  }
  wake_timer_ =
      sim_.at(t, [this, next, entry_idx] { begin_wait(next, entry_idx); });
}

void PowerDaemon::begin_wait(State next, std::size_t entry_idx) {
  grace_timer_.cancel();
  slot_timer_.cancel();
  set_wnic(true);
  state_ = next;
  waiting_first_ = true;
  wake_started_ = sim_.now();

  if (next == State::AwaitingSchedule) {
    // We woke `early` before the expected arrival; the grace window runs
    // from that expected arrival.
    const sim::Time expected = sim_.now() + cfg_.comp.early;
    grace_timer_ = sim_.at(expected + cur_grace_,
                           [this] { on_schedule_grace_expired(); });
    return;
  }
  if (next == State::AwaitingBurst && cfg_.sleep_at_slot_end &&
      entry_idx < my_entries_.size()) {
    const auto& e = my_entries_[entry_idx];
    const sim::Time slot_end = anchor_ + e.rp_offset + e.duration;
    // A late wake (sleep_until clamps the wake to `now`) can land past the
    // slot's end; fire the slot-end handler immediately rather than
    // scheduling into the past.
    sim::Time fire = slot_end + cfg_.slot_end_grace;
    if (fire < sim_.now()) fire = sim_.now();
    slot_timer_ = sim_.at(fire, [this] { on_slot_end(); });
  }
}

void PowerDaemon::on_data(std::uint32_t payload, bool marked) {
  // Pure control segments (handshake ACKs, FINs) are not burst data; they
  // flow through the proxy ungated and must not disturb the burst state
  // machine.
  if (payload == 0 && !marked) return;
  ++stats_.data_packets;
  settle_first_wait();
  if (state_ == State::AwaitingBurst || state_ == State::AwaitingSchedule) {
    // Burst began — possibly before its schedule arrived (rule (2) of
    // Section 3.2.2: accept data that comes before a schedule).
    state_ = State::Receiving;
  }
  if (marked) end_burst(/*via_mark=*/true);
}

void PowerDaemon::end_burst(bool via_mark) {
  if (via_mark) {
    ++stats_.bursts_completed;
  } else {
    ++stats_.slot_end_sleeps;
  }
  slot_timer_.cancel();
  settle_first_wait();

  if (pending_) {
    auto msg = std::move(pending_);
    apply_schedule(std::move(msg), pending_arrival_);
    return;
  }
  if (!cur_) {
    // Mark arrived before we ever saw a schedule: stay awake for one.
    state_ = State::AwaitingSchedule;
    return;
  }
  if (miss_active_) {
    // We missed the schedule that announced this burst but caught the data
    // anyway.  Sleep until the *next* schedule, estimating its SRP one
    // interval past the one we missed (Section 4.3, worst-case discussion).
    if (blind_coasts_ >= cfg_.max_blind_coasts) {
      // The streak of estimate-only re-anchors is long enough that the
      // anchor itself is suspect — keep the outage open and stay awake
      // until a real broadcast re-anchors us.
      ++stats_.coast_breaks;
      state_ = State::AwaitingSchedule;
      return;
    }
    ++blind_coasts_;
    miss_active_ = false;
    stats_.missed_wait += sim_.now() - miss_start_;
    note_resync();
    anchor_ += cur_->interval;
    my_entries_.clear();
    entry_idx_ = 0;
    plan_next_step();
    return;
  }
  ++entry_idx_;
  plan_next_step();
}

void PowerDaemon::on_schedule_grace_expired() {
  if (state_ != State::AwaitingSchedule) return;
  ++stats_.schedules_missed;
  ++consecutive_misses_;
  if (consecutive_misses_ == 1) {
    ++stats_.first_misses;
    first_miss_at_ = sim_.now();
  } else {
    ++stats_.repeat_misses;
  }
  PP_OBS(if (ctr_sched_missed_) ctr_sched_missed_->inc();
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::ScheduleMissed,
                        obs_subject_));
  // The early portion of the wait was ordinary early-transition waste; the
  // rest accrues as missed-schedule waste until a schedule shows up.
  if (waiting_first_) {
    waiting_first_ = false;
    stats_.early_wait += cfg_.comp.early;
  }
  if (!miss_active_) {
    miss_active_ = true;
    miss_start_ = sim_.now();
  }
  if (!cfg_.escalation.enabled || !cur_) {
    // Paper behavior (Section 4.3, worst-case client): remain awake; the
    // next schedule (or our burst's marked packet, if the data still
    // flows) resynchronizes us.
    return;
  }
  // Escalation: estimate where the SRP we just gave up on was expected
  // (this timer fired `cur_grace_` past it), widen the grace window for
  // the next attempt, then decide whether to wait out the interval awake
  // or sleep through to the next SRP.
  const sim::Time expected = sim_.now() - cur_grace_;
  const sim::Time next_expected = expected + cur_->interval;
  const sim::Duration widened =
      sim::Time::seconds(cur_grace_.to_seconds() * cfg_.escalation.backoff);
  cur_grace_ = std::min(widened, cfg_.escalation.max_grace);
  if (consecutive_misses_ <=
      static_cast<std::uint64_t>(cfg_.escalation.awake_misses)) {
    // Early in the outage: stay awake (our burst may still arrive) and
    // re-arm the grace timer on the next expected SRP.
    grace_timer_ = sim_.at(next_expected + cur_grace_,
                           [this] { on_schedule_grace_expired(); });
    return;
  }
  // Deep outage: burning a whole interval awake buys nothing — settle the
  // missed-wait accrual and sleep until just before the next expected SRP.
  ++stats_.escalated_sleeps;
  miss_active_ = false;
  stats_.missed_wait += sim_.now() - miss_start_;
  sleep_until(next_expected - cfg_.comp.early, State::AwaitingSchedule, 0);
}

void PowerDaemon::on_slot_end() {
  if (state_ != State::AwaitingBurst && state_ != State::Receiving) return;
  end_burst(/*via_mark=*/false);
}

void PowerDaemon::force_awake() {
  hold_until_ = sim_.now() + cfg_.activity_hold;
  // When the hold expires, resume the planned sleep if nothing changed.
  resleep_timer_.cancel();
  resleep_timer_ = sim_.at(hold_until_, [this] { maybe_resleep(); });
  if (awake_ && state_ != State::Sleeping) return;
  ++stats_.forced_wakes;
  set_wnic(true);
  // Keep the existing wake timer: the planned schedule/burst wake target is
  // still correct, we are merely awake early waiting for a response.
  waiting_first_ = false;
  if (state_ == State::Sleeping) state_ = State::AwaitingSchedule;
}

void PowerDaemon::extend_hold(sim::Time base) {
  if (base < sim_.now()) base = sim_.now();
  const sim::Time until = base + cfg_.activity_hold;
  if (until <= hold_until_) return;
  hold_until_ = until;
  resleep_timer_.cancel();
  resleep_timer_ = sim_.at(hold_until_, [this] { maybe_resleep(); });
}

void PowerDaemon::maybe_resleep() {
  if (sim_.now() < hold_until_) return;  // a later hold supersedes this one
  if (!awake_ || state_ == State::Receiving) return;
  if (!wake_timer_.pending()) return;  // no planned wake; stay up
  if (planned_wake_ <= sim_.now()) return;
  sleep_until(planned_wake_, planned_next_, planned_entry_);
}

}  // namespace pp::client

#include "client/energy_client.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::client {

EnergyAwareClient::EnergyAwareClient(sim::Simulator& sim,
                                     net::WirelessMedium& medium,
                                     net::Ipv4Addr ip, std::string name,
                                     ClientParams params)
    : sim_{sim},
      node_{sim, ip, std::move(name)},
      params_{params},
      acc_{params.ledger != nullptr
               ? energy::EnergyAccountant{*params.ledger, sim.now(),
                                          energy::WnicMode::Idle}
               : energy::EnergyAccountant{params.power, sim.now(),
                                          energy::WnicMode::Idle}},
      daemon_{sim, ip, params.daemon,
              [this](bool awake) {
                acc_.set_mode(sim_.now(), awake ? energy::WnicMode::Idle
                                                : energy::WnicMode::Sleep);
                record_power_state(awake);
              }},
      start_time_{sim.now()} {
  const auto station_id = medium.attach_station(*this, ip);
  node_.set_transmitter([this, &medium, station_id](net::Packet pkt) {
    // Uplink requires the radio on; app-initiated sends wake it and extend
    // the activity hold so the response is not slept through.  Pure TCP
    // ACKs (sent while receiving a burst) must NOT hold the radio awake,
    // or the post-burst sleep would be lost.
    const bool request_like =
        pkt.proto == net::Protocol::Tcp &&
        (pkt.tcp.syn || pkt.tcp.fin || pkt.payload > 0);
    if (!params_.naive && request_like) daemon_.force_awake();
    medium.transmit(station_id, std::move(pkt));
    // The channel may be busy for a while before the frame even airs;
    // measure the response hold from when it clears.
    if (!params_.naive && request_like)
      daemon_.extend_hold(medium.busy_until());
  });
  if (params_.assoc.enabled) {
    assoc_ = std::make_unique<AssociationAgent>(
        sim_, ip, params_.assoc,
        [this, &medium, station_id](net::Packet pkt) {
          // Control frames ride the raw medium path: the energy and airtime
          // accounting comes through on_air like any other uplink frame.
          medium.transmit(station_id, std::move(pkt));
        },
        [this] {
          // Departed for good: radio off (naive baselines stay listening —
          // they never sleep by definition).
          if (!params_.naive) daemon_.stop();
        });
  }
}

void EnergyAwareClient::start() {
  if (assoc_) assoc_->start_associated();
  if (!params_.naive) daemon_.start();
}

void EnergyAwareClient::set_away(bool away) {
  if (!assoc_) return;
  if (away) {
    assoc_->leave();
  } else {
    // Radio up first: the JoinAck and the renegotiated schedule must be
    // heard.  The daemon resets to AwaitingSchedule, so it stays awake
    // until the fresh broadcast anchors it.
    if (!params_.naive) daemon_.start();
    assoc_->join();
  }
}

void EnergyAwareClient::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    twg_awake_ = m->time_gauge("client." + ip().str() + ".awake");
    twg_awake_->set(sim_.now(), listening() ? 1.0 : 0.0);
  } daemon_.set_obs(hook, ip().raw());
    if (assoc_) assoc_->set_obs(hook));
}

void EnergyAwareClient::record_power_state(bool awake) {
  (void)awake;
  PP_OBS(if (twg_awake_) twg_awake_->set(sim_.now(), awake ? 1.0 : 0.0);
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(),
                        awake ? obs::EventKind::Wake : obs::EventKind::Sleep,
                        ip().raw()));
}

bool EnergyAwareClient::listening() const {
  // An in-flight association handshake pins the radio up even where the
  // daemon would sleep: the acks it is waiting for arrive outside any
  // scheduled slot.
  return params_.naive || daemon_.awake() || (assoc_ && assoc_->needs_radio());
}

void EnergyAwareClient::deliver(net::Packet pkt, sim::Duration airtime) {
  acc_.add_transient(energy::WnicMode::Receive, airtime);
  traffic_.receive_airtime += airtime;

  // Association control (unicast, both ports == kAssocPort): control
  // plane like the schedule broadcast — charged for energy, not counted
  // as traffic.
  if (pkt.proto == net::Protocol::Udp && !pkt.is_broadcast() &&
      pkt.dst_port == proxy::kAssocPort &&
      pkt.src_port == proxy::kAssocPort) {
    if (assoc_) {
      if (auto msg =
              std::dynamic_pointer_cast<const proxy::AssocMessage>(pkt.data))
        assoc_->on_packet(*msg);
    }
    return;
  }

  const bool is_schedule =
      pkt.proto == net::Protocol::Udp && pkt.is_broadcast() &&
      pkt.dst_port == proxy::kSchedulePort;
  if (is_schedule) {
    // Control plane: charged for energy (airtime above) but not counted as
    // received traffic.
    if (assoc_) assoc_->note_schedule();
    if (params_.naive) return;
    if (auto msg =
            std::dynamic_pointer_cast<const proxy::ScheduleMessage>(pkt.data)) {
      daemon_.on_schedule(std::move(msg));
    }
    return;
  }
  ++traffic_.packets_received;
  traffic_.bytes_received += pkt.payload;
  // Downlink datagram delay: UDP data keeps its origin timestamp through
  // the proxy queue, so now - sent_at is the end-to-end buffering delay.
  // Burst markers (proxy-originated, src_port == kSchedulePort) are control
  // plane and excluded.
  if (pkt.proto == net::Protocol::Udp && !pkt.is_broadcast() &&
      pkt.src_port != proxy::kSchedulePort) {
    traffic_.delay_sum += sim_.now() - pkt.sent_at;
    ++traffic_.delay_samples;
  }
  // Hand to the stack first (so ACKs go out while we are still awake),
  // then let the daemon act on the marked bit — a marked packet may put
  // the radio to sleep immediately.
  const std::uint32_t payload = pkt.payload;
  const bool marked = pkt.marked;
  node_.handle_packet(std::move(pkt));
  if (!params_.naive) daemon_.on_data(payload, marked);
}

void EnergyAwareClient::missed(const net::Packet& pkt, sim::Duration airtime) {
  traffic_.missed_airtime += airtime;
  if (pkt.is_broadcast()) {
    ++traffic_.broadcasts_missed;
  } else {
    ++traffic_.packets_missed;
  }
}

void EnergyAwareClient::on_air(sim::Time /*start*/, sim::Duration dur) {
  acc_.add_transient(energy::WnicMode::Transmit, dur);
  traffic_.transmit_airtime += dur;
}

double EnergyAwareClient::naive_energy_mj(sim::Time now) const {
  const auto& m = acc_.model();
  const double total_s = (now - start_time_).to_seconds();
  const double recv_s =
      (traffic_.receive_airtime + traffic_.missed_airtime).to_seconds();
  const double tx_s = traffic_.transmit_airtime.to_seconds();
  return m.mw(energy::WnicMode::Idle) * total_s +
         (m.mw(energy::WnicMode::Receive) - m.mw(energy::WnicMode::Idle)) *
             recv_s +
         (m.mw(energy::WnicMode::Transmit) - m.mw(energy::WnicMode::Idle)) *
             tx_s;
}

double EnergyAwareClient::energy_saved_fraction(sim::Time now) const {
  const double naive = naive_energy_mj(now);
  if (naive <= 0) return 0;
  return 1.0 - energy_mj(now) / naive;
}

double EnergyAwareClient::loss_fraction() const {
  const double total = static_cast<double>(traffic_.packets_received +
                                           traffic_.packets_missed);
  if (total <= 0) return 0;
  return static_cast<double>(traffic_.packets_missed) / total;
}

}  // namespace pp::client

#include "proxy/scheduler.hpp"

#include <algorithm>

#include "check/check.hpp"

namespace pp::proxy {

sim::Duration demand_cost(const ClientDemand& d, const BandwidthEstimator& est,
                          const SlotParams& sp) {
  const sim::Duration udp =
      d.udp_packets > 0 ? est.queue_cost(d.udp_packets, d.udp_bytes)
                        : est.bulk_cost(d.udp_bytes, sp.mtu);
  return udp + est.bulk_cost(d.tcp_bytes, sp.mtu, sp.tcp_ack_bytes);
}

std::vector<ScheduleEntry> lay_out(
    const std::vector<std::pair<net::Ipv4Addr, sim::Duration>>& slots,
    sim::Duration lead) {
  std::vector<ScheduleEntry> entries;
  entries.reserve(slots.size());
  sim::Duration offset = lead;
  for (const auto& [ip, dur] : slots) {
    entries.push_back(ScheduleEntry{ip, offset, dur});
    offset += dur;
  }
  return entries;
}

sim::Duration Scheduler::widened_cost(const ClientDemand& d,
                                      const BandwidthEstimator& est,
                                      const SlotParams& sp) const {
  sim::Duration cost = demand_cost(d, est, sp) + sp.burst_guard;
  if (measured_goodput_ && d.channel.known && d.channel.goodput_bps > 0) {
    const sim::Duration measured =
        sim::Time::seconds(static_cast<double>(d.total()) * 8.0 /
                           d.channel.goodput_bps) +
        sp.burst_guard;
    if (measured > cost) cost = measured;
  }
  return cost;
}

bool slots_conflict(const ScheduleEntry& a, const ScheduleEntry& b) {
  if (a.kind == SlotKind::TcpOnly && b.kind == SlotKind::TcpOnly) return false;
  return a.rp_offset + a.duration > b.rp_offset &&
         b.rp_offset + b.duration > a.rp_offset;
}

BuiltSchedule FixedIntervalScheduler::build(
    const std::vector<ClientDemand>& demands, const BandwidthEstimator& est) {
  const sim::Duration available = interval_ - sp_.lead;
  std::vector<std::pair<net::Ipv4Addr, sim::Duration>> slots;
  std::vector<std::uint64_t> bytes;
  slots.reserve(demands.size());
  bytes.reserve(demands.size());
  sim::Duration total = sim::Time::zero();
  std::uint64_t total_bytes = 0;
  for (const auto& d : demands) {
    if (d.total() == 0) continue;
    const sim::Duration cost = widened_cost(d, est, sp_);
    slots.emplace_back(d.ip, cost);
    bytes.push_back(d.total());
    total += cost;
    total_bytes += d.total();
  }
  if (total > available && total_bytes > 0) {
    // Overcommitted: each active client gets a fraction of the available
    // interval proportional to its queue depth (Section 3.2.1).
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const double share = static_cast<double>(bytes[i]) /
                           static_cast<double>(total_bytes);
      slots[i].second = sim::Time::ns(static_cast<std::int64_t>(
          share * static_cast<double>(available.count_ns())));
    }
  }
  return BuiltSchedule{interval_, false, lay_out(slots, sp_.lead)};
}

BuiltSchedule VariableIntervalScheduler::build(
    const std::vector<ClientDemand>& demands, const BandwidthEstimator& est) {
  // Size the interval so every client can empty its queue.
  std::vector<std::pair<net::Ipv4Addr, sim::Duration>> slots;
  sim::Duration total = sim::Time::zero();
  for (const auto& d : demands) {
    if (d.total() == 0) continue;
    const sim::Duration cost = widened_cost(d, est, sp_);
    slots.emplace_back(d.ip, cost);
    total += cost;
  }
  sim::Duration interval = sp_.lead + total;
  if (interval < min_) interval = min_;
  if (interval > max_) {
    // Demand exceeds the cap: shrink slots proportionally.
    const sim::Duration available = max_ - sp_.lead;
    const double scale = available.ratio(total);
    for (auto& [ip, dur] : slots) {
      dur = sim::Time::ns(static_cast<std::int64_t>(
          scale * static_cast<double>(dur.count_ns())));
    }
    interval = max_;
  }
  return BuiltSchedule{interval, false, lay_out(slots, sp_.lead)};
}

BuiltSchedule StaticScheduler::build(const std::vector<ClientDemand>&,
                                     const BandwidthEstimator&) {
  // Permanent equal slots, independent of demand.
  PP_CHECK(!clients_.empty(), "proxy.static_scheduler.clients");
  const sim::Duration available = interval_ - sp_.lead;
  const sim::Duration each =
      available / static_cast<std::int64_t>(clients_.size());
  std::vector<std::pair<net::Ipv4Addr, sim::Duration>> slots;
  slots.reserve(clients_.size());
  for (const auto& ip : clients_) slots.emplace_back(ip, each);
  BuiltSchedule out{interval_, /*reuse_next=*/true, lay_out(slots, sp_.lead)};
  return out;
}

SlottedStaticScheduler::SlottedStaticScheduler(
    sim::Duration interval, double tcp_weight,
    std::vector<net::Ipv4Addr> udp_clients,
    std::vector<net::Ipv4Addr> tcp_clients, SlotParams sp)
    : interval_{interval},
      tcp_weight_{tcp_weight},
      udp_clients_{std::move(udp_clients)},
      tcp_clients_{std::move(tcp_clients)},
      sp_{sp} {
  PP_CHECK(tcp_weight_ > 0 && tcp_weight_ < 1,
           "proxy.slotted_scheduler.tcp_weight");
}

BuiltSchedule SlottedStaticScheduler::build(const std::vector<ClientDemand>&,
                                            const BandwidthEstimator&) {
  const sim::Duration available = interval_ - sp_.lead;
  const sim::Duration tcp_slot = sim::Time::ns(static_cast<std::int64_t>(
      tcp_weight_ * static_cast<double>(available.count_ns())));
  std::vector<ScheduleEntry> entries;
  // Every client is awake during the TCP slot so that background TCP
  // latency stays bounded (Section 4.3 / Figure 7).
  for (const auto& ip : tcp_clients_)
    entries.push_back(ScheduleEntry{ip, sp_.lead, tcp_slot, SlotKind::TcpOnly});
  for (const auto& ip : udp_clients_)
    entries.push_back(ScheduleEntry{ip, sp_.lead, tcp_slot, SlotKind::TcpOnly});
  // Then equal UDP slots in the remainder.
  if (!udp_clients_.empty()) {
    const sim::Duration udp_total = available - tcp_slot;
    const sim::Duration each =
        udp_total / static_cast<std::int64_t>(udp_clients_.size());
    sim::Duration offset = sp_.lead + tcp_slot;
    for (const auto& ip : udp_clients_) {
      entries.push_back(ScheduleEntry{ip, offset, each, SlotKind::UdpOnly});
      offset += each;
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ScheduleEntry& a, const ScheduleEntry& b) {
                     return a.rp_offset < b.rp_offset;
                   });
  return BuiltSchedule{interval_, /*reuse_next=*/true, std::move(entries)};
}

}  // namespace pp::proxy

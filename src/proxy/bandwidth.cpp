#include "proxy/bandwidth.hpp"

#include <cmath>

#include "check/check.hpp"

namespace pp::proxy {

void BandwidthEstimator::fit(const std::vector<Sample>& samples) {
  PP_CHECK(samples.size() >= 2, "proxy.bandwidth.fit");
  // Ordinary least squares on (x = payload, y = seconds).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(samples.size());
  for (const auto& s : samples) {
    const double x = static_cast<double>(s.payload_bytes);
    sx += x;
    sy += s.seconds;
    sxx += x * x;
    sxy += x * s.seconds;
  }
  const double denom = n * sxx - sx * sx;
  PP_CHECK(std::abs(denom) > 1e-12, "proxy.bandwidth.fit");
  b_ = (n * sxy - sx * sy) / denom;
  a_ = (sy - b_ * sx) / n;
  if (a_ < 0) a_ = 0;
  if (b_ < 0) b_ = 0;
  fitted_ = true;
}

sim::Duration BandwidthEstimator::bulk_cost(std::uint64_t bytes,
                                            std::uint32_t mtu,
                                            std::uint32_t ack_bytes) const {
  if (bytes == 0) return sim::Time::zero();
  PP_CHECK(mtu > 0, "proxy.bandwidth.bulk_cost");
  const std::uint64_t full = bytes / mtu;
  const std::uint32_t tail = static_cast<std::uint32_t>(bytes % mtu);
  double secs = static_cast<double>(full) *
                (a_ + b_ * static_cast<double>(mtu));
  if (tail > 0) secs += a_ + b_ * static_cast<double>(tail);
  const std::uint64_t npkts = full + (tail > 0 ? 1 : 0);
  if (ack_bytes > 0) {
    secs += static_cast<double>(npkts) *
            (a_ + b_ * static_cast<double>(ack_bytes));
  }
  return sim::Time::seconds(secs);
}

std::uint64_t BandwidthEstimator::payload_budget(sim::Duration slot,
                                                 std::uint32_t mtu,
                                                 std::uint32_t ack_bytes) const {
  // The small epsilon keeps bulk_cost() -> payload_budget() round trips
  // exact: a slot sized for N bytes must yield a budget of at least N, or
  // queue tails (single bytes) can never drain.
  const double eps = 1e-9;
  const double slot_s = slot.to_seconds() + eps;
  if (slot_s <= 0) return 0;
  // Cost per full packet (+ ack); derive whole packets, then fit the tail.
  const double per_pkt = a_ + b_ * static_cast<double>(mtu) +
                         (ack_bytes > 0
                              ? a_ + b_ * static_cast<double>(ack_bytes)
                              : 0.0);
  const double full = std::floor(slot_s / per_pkt + eps);
  std::uint64_t bytes = static_cast<std::uint64_t>(full) * mtu;
  double rem = slot_s - full * per_pkt;
  const double tail_fixed =
      a_ + (ack_bytes > 0 ? a_ + b_ * static_cast<double>(ack_bytes) : 0.0);
  if (rem > tail_fixed && b_ > 0) {
    const double tail = std::min(static_cast<double>(mtu - 1),
                                 (rem - tail_fixed) / b_ + 0.5);
    if (tail > 0) bytes += static_cast<std::uint64_t>(tail);
  }
  return bytes;
}

}  // namespace pp::proxy

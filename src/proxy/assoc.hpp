// Association control protocol (dynamic membership).
//
// Clients join and leave the proxy's cell at runtime: a Join admits the
// client into the demand set (and triggers an immediate SRP renegotiation
// so the newcomer hears a schedule right away), a Leave drains or drops
// its queue and removes it.  The exchange is a tiny unicast UDP protocol
// on a dedicated port — both directions use kAssocPort as source and
// destination so either end classifies control traffic in O(1), exactly
// like the schedule broadcast uses kSchedulePort.
//
// Reliability is client-driven: the proxy acks every Join/Leave, and the
// client retransmits with deterministic exponential backoff (jitter from
// its own named RNG stream) until acked.  All proxy-side handling is
// idempotent, so duplicated or reordered control packets are harmless.
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace pp::proxy {

// Association control port (client <-> proxy, unicast UDP both ways).
inline constexpr net::Port kAssocPort = 9010;

enum class AssocKind : std::uint8_t {
  Join = 1,  // client -> proxy: admit me to the schedule
  JoinAck,   // proxy -> client: admitted (schedule renegotiation follows)
  Leave,     // client -> proxy: remove me (graceful: drain my queue first)
  LeaveAck,  // proxy -> client: departed; it is safe to power the radio off
};

inline const char* to_string(AssocKind k) {
  switch (k) {
    case AssocKind::Join: return "join";
    case AssocKind::JoinAck: return "join_ack";
    case AssocKind::Leave: return "leave";
    case AssocKind::LeaveAck: return "leave_ack";
  }
  return "?";
}

struct AssocMessage : net::Message {
  AssocKind kind = AssocKind::Join;
  // Chosen by the client per join()/leave() transition and reused across
  // retransmissions; the proxy echoes it in the matching ack so a stale
  // ack from an abandoned handshake is ignored.
  std::uint64_t seq = 0;
  // Leave only: drain the queue (bounded by the proxy's drain deadline)
  // before acking, instead of dropping it immediately.
  bool graceful = true;

  // Modeled wire size: kind + flags + seq + padding.
  static constexpr std::uint32_t kWireBytes = 16;
};

}  // namespace pp::proxy

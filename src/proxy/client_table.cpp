#include "proxy/client_table.hpp"

namespace pp::proxy {

void ClientTable::reserve(std::size_t n) {
  ip_.reserve(n);
  pkt_q_.reserve(n);
  splices_.reserve(n);
  last_activity_.reserve(n);
  membership_.reserve(n);
  leave_seq_.reserve(n);
  drain_timer_.reserve(n);
  channel_.reserve(n);
  index_.reserve(n);
}

ClientId ClientTable::ensure(net::Ipv4Addr ip, sim::Time now) {
  const auto it = index_.find(ip);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<ClientId>(ip_.size());
  ip_.push_back(ip);
  pkt_q_.emplace_back();
  pkt_q_.back().set_pool(pool_);
  splices_.emplace_back();
  last_activity_.push_back(now);
  membership_.push_back(Membership::Joined);
  leave_seq_.push_back(0);
  drain_timer_.emplace_back();
  channel_.emplace_back();
  index_.emplace(ip, id);
  return id;
}

}  // namespace pp::proxy

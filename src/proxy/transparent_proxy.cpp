#include "proxy/transparent_proxy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "check/sorted.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "proxy/burst.hpp"

namespace pp::proxy {

TransparentProxy::TransparentProxy(sim::Simulator& sim,
                                   std::unique_ptr<Scheduler> scheduler,
                                   ProxyParams params)
    : sim_{sim},
      scheduler_{std::move(scheduler)},
      params_{params},
      wired_sink_{*this, /*wired=*/true},
      wireless_sink_{*this, /*wired=*/false} {
  // Non-negotiable transport settings for the splice to work.
  params_.server_side_tcp.manual_consume = true;
  params_.client_side_tcp.defer_rtx_when_gated = true;
}

TransparentProxy::~TransparentProxy() {
  tick_handle_.cancel();
  for (auto& h : burst_handles_) h.cancel();
}

void TransparentProxy::calibrate(const net::WirelessMedium& medium) {
  // Microbenchmark of Section 3.2.2: sample per-frame channel time over a
  // range of payload sizes and fit the linear send-cost model.
  std::vector<BandwidthEstimator::Sample> samples;
  samples.reserve(8);
  for (std::uint32_t payload : {40u, 200u, 400u, 600u, 800u, 1000u, 1200u,
                                1400u}) {
    net::Packet probe = net::make_packet();
    probe.dst = net::Ipv4Addr::octets(172, 16, 0, 200);
    probe.proto = net::Protocol::Udp;
    probe.payload = payload;
    samples.push_back({payload, medium.airtime_of(probe).to_seconds() *
                                    params_.cost_model_scale});
  }
  estimator_.fit(samples);
}

void TransparentProxy::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_schedules_ = m->counter("proxy.schedules_sent");
    ctr_queue_drops_ = m->counter("proxy.queue_drops");
    ctr_queued_ = m->counter("proxy.queued_packets");
    ctr_empty_markers_ = m->counter("proxy.empty_burst_markers");
    hist_burst_us_ = m->histogram("proxy.burst_duration_us");
    hist_burst_bytes_ = m->histogram("proxy.burst_bytes");
    hist_interval_us_ = m->histogram("proxy.schedule_interval_us");
    twg_queue_depth_ = m->time_gauge("proxy.queue_depth_bytes");
    twg_queue_depth_->set(sim_.now(), static_cast<double>(total_q_bytes_));
  });
  scheduler_->set_obs(hook);
}

obs::Counter* TransparentProxy::churn_counter(obs::Counter*& slot,
                                              const char* name) {
  if (slot == nullptr) {
    if (auto* m = obs_.metrics()) slot = m->counter(name);
  }
  return slot;
}

void TransparentProxy::start(sim::Time first_srp) {
  if (!wired_tx_ || !wireless_tx_)
    throw std::logic_error("TransparentProxy: transmitters not wired");
  running_ = true;
  tick_handle_ = sim_.at(first_srp, [this] { schedule_tick(); });
}

void TransparentProxy::stop() {
  running_ = false;
  tick_handle_.cancel();
  for (auto& h : burst_handles_) h.cancel();
  burst_handles_.clear();
}

void TransparentProxy::close_all_gates() {
  // Flat id walk: gate close order is the registration order (and it is
  // order-insensitive anyway — gates are independent).
  for (ClientId id = 0; id < table_.size(); ++id)
    for (Splice* s : table_.splices(id)) s->client_side->set_send_gate(false);
}

void TransparentProxy::pause() {
  if (paused_) return;
  paused_ = true;
  ++stats_.pauses;
  tick_handle_.cancel();
  for (auto& h : burst_handles_) h.cancel();
  burst_handles_.clear();
  // Close the gates so no splice keeps streaming into a dead interval;
  // queued datagrams and buffered splice bytes stay put.
  close_all_gates();
}

void TransparentProxy::resume() {
  if (!paused_) return;
  paused_ = false;
  // Re-enter the loop with a fresh SRP: queues drained on the normal path.
  if (running_) tick_handle_ = sim_.at(sim_.now(), [this] { schedule_tick(); });
}

std::uint64_t TransparentProxy::buffered_bytes(net::Ipv4Addr client) const {
  const ClientId id = table_.find(client);
  if (id == kNoClient) return 0;
  std::uint64_t total = table_.queue(id).bytes();
  for (const Splice* s : table_.splices(id))
    total += s->buffered + s->client_side->bytes_unsent();
  return total;
}

void TransparentProxy::reserve_clients(std::size_t n) {
  table_.reserve(n);
  demands_scratch_.reserve(n);
}

void TransparentProxy::register_client(net::Ipv4Addr ip) {
  const ClientId id = table_.ensure(ip, sim_.now());
  if (table_.membership(id) == Membership::Joined) return;
  // Re-join: a Draining client that comes back keeps its queue; a Departed
  // one starts clean (its queue was dropped at departure).
  table_.drain_timer(id).cancel();
  table_.membership(id) = Membership::Joined;
  table_.last_activity(id) = sim_.now();
}

void TransparentProxy::deregister_client(net::Ipv4Addr ip) {
  const ClientId id = table_.find(ip);
  if (id == kNoClient || table_.membership(id) == Membership::Departed)
    return;
  table_.drain_timer(id).cancel();
  drop_queue(id);
  abort_splices(id);
  table_.membership(id) = Membership::Departed;
  ++stats_.leaves;
  PP_OBS(if (auto* c = churn_counter(ctr_leaves_, "proxy.churn.leaves"))
             c->inc();
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::ClientLeave, ip.raw()));
}

bool TransparentProxy::client_active(net::Ipv4Addr ip) const {
  const ClientId id = table_.find(ip);
  return id != kNoClient && table_.membership(id) != Membership::Departed;
}

void TransparentProxy::on_assoc_packet(const net::Packet& pkt) {
  const auto msg = std::dynamic_pointer_cast<const AssocMessage>(pkt.data);
  if (!msg) return;
  ++stats_.assoc_rx;
  const ClientId id = table_.ensure(pkt.src, sim_.now());
  switch (msg->kind) {
    case AssocKind::Join: {
      const bool fresh = table_.membership(id) != Membership::Joined;
      if (fresh) {
        table_.drain_timer(id).cancel();
        table_.membership(id) = Membership::Joined;
        table_.last_activity(id) = sim_.now();
        ++stats_.joins;
        PP_OBS(if (auto* c = churn_counter(ctr_joins_, "proxy.churn.joins"))
                   c->inc();
               if (auto* tl = obs_.timeline())
                   tl->record(sim_.now(), obs::EventKind::ClientJoin,
                              table_.ip(id).raw()));
      }
      // Ack first, renegotiate second: the unicast ack enters the downlink
      // path ahead of the fresh broadcast, so the client normally holds a
      // JoinAck by the time the schedule lands.
      send_assoc(AssocKind::JoinAck, table_.ip(id), msg->seq);
      if (fresh) renegotiate();
      break;
    }
    case AssocKind::Leave: {
      if (table_.membership(id) == Membership::Departed) {
        // The LeaveAck was lost; the departure already completed.  Re-ack.
        send_assoc(AssocKind::LeaveAck, table_.ip(id), msg->seq);
        break;
      }
      table_.leave_seq(id) = msg->seq;
      if (table_.membership(id) == Membership::Draining)
        break;  // retransmission
      if (!msg->graceful) {
        finish_leave(id, /*timed_out=*/false);
        break;
      }
      table_.membership(id) = Membership::Draining;
      table_.drain_timer(id) =
          sim_.after(params_.drain_deadline, [this, ip = table_.ip(id)] {
            const ClientId cid = table_.find(ip);
            if (cid != kNoClient &&
                table_.membership(cid) == Membership::Draining)
              finish_leave(cid, /*timed_out=*/true);
          });
      // A fresh schedule gives the drain its slot without waiting out the
      // current interval; if nothing is queued this completes immediately.
      maybe_finish_drain(id);
      if (table_.membership(id) == Membership::Draining) renegotiate();
      break;
    }
    case AssocKind::JoinAck:
    case AssocKind::LeaveAck:
      break;  // client-bound; not expected on the uplink
  }
}

void TransparentProxy::send_assoc(AssocKind kind, net::Ipv4Addr client,
                                  std::uint64_t seq) {
  if (!wireless_tx_) return;
  auto msg = std::make_shared<AssocMessage>();
  msg->kind = kind;
  msg->seq = seq;
  net::Packet pkt = net::make_packet();
  pkt.src = params_.proxy_ip;
  pkt.src_port = kAssocPort;
  pkt.dst = client;
  pkt.dst_port = kAssocPort;
  pkt.proto = net::Protocol::Udp;
  pkt.payload = AssocMessage::kWireBytes;
  pkt.data = std::move(msg);
  pkt.sent_at = sim_.now();
  wireless_tx_(std::move(pkt));
}

void TransparentProxy::renegotiate() {
  if (!running_ || paused_) return;
  ++stats_.renegotiations;
  PP_OBS(if (auto* c =
                 churn_counter(ctr_renegs_, "proxy.churn.renegotiations"))
             c->inc());
  // Collapse the current interval: cancel the pending SRP and every
  // burst/repeat timer, close the gates, and broadcast a fresh schedule
  // right away on the normal path.
  tick_handle_.cancel();
  for (auto& h : burst_handles_) h.cancel();
  burst_handles_.clear();
  close_all_gates();
  tick_handle_ = sim_.at(sim_.now(), [this] { schedule_tick(); });
}

bool TransparentProxy::drained(ClientId id) const {
  if (!table_.queue(id).empty()) return false;
  for (const Splice* s : table_.splices(id))
    if (s->buffered + s->client_side->bytes_unsent() > 0) return false;
  return true;
}

void TransparentProxy::maybe_finish_drain(ClientId id) {
  if (table_.membership(id) == Membership::Draining && drained(id))
    finish_leave(id, /*timed_out=*/false);
}

void TransparentProxy::finish_leave(ClientId id, bool timed_out) {
  (void)timed_out;
  table_.drain_timer(id).cancel();
  const std::uint64_t dropped = table_.queue(id).bytes();
  (void)dropped;  // obs-only: the ClientLeave record carries it
  drop_queue(id);
  abort_splices(id);
  table_.membership(id) = Membership::Departed;
  ++stats_.leaves;
  PP_OBS(if (auto* c = churn_counter(ctr_leaves_, "proxy.churn.leaves"))
             c->inc();
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::ClientLeave,
                        table_.ip(id).raw(), dropped));
  send_assoc(AssocKind::LeaveAck, table_.ip(id), table_.leave_seq(id));
}

void TransparentProxy::drop_queue(ClientId id) {
  net::ChunkQueue& q = table_.queue(id);
  const std::uint64_t bytes = q.bytes();
  while (!q.empty()) {
    total_q_bytes_ -= q.front()->length;
    q.drop_front();
    ++stats_.churn_dropped_packets;
  }
  stats_.churn_dropped_bytes += bytes;
  PP_CHECK_AT(q.bytes() == 0, "proxy.churn.queue_drop", sim_.now());
  PP_OBS(if (bytes > 0) {
    if (auto* c =
            churn_counter(ctr_churn_dropped_, "proxy.churn.dropped_bytes"))
      c->inc(bytes);
    if (twg_queue_depth_)
      twg_queue_depth_->set(sim_.now(), static_cast<double>(total_q_bytes_));
  });
}

void TransparentProxy::abort_splices(ClientId id) {
  // The departing client will never ack another segment: tear both sides
  // down now so no per-splice state outlives membership.  Wired segments
  // that later arrive for these flows count as unmatched, like segments
  // for any reaped splice.
  std::vector<Splice*>& splices = table_.splices(id);
  while (!splices.empty()) {
    Splice* sp = splices.back();
    splices.pop_back();
    by_server_flow_.erase(sp->key.reversed());
    by_client_flow_.erase(sp->key);
    ++stats_.splices_closed;
  }
}

void TransparentProxy::enqueue_downlink(net::Packet pkt) {
  const ClientId id = table_.ensure(pkt.dst, sim_.now());
  // No membership, no buffering: downlink for a departed client is dropped
  // at the door (counted with the queue-limit drops).
  if (table_.membership(id) == Membership::Departed) {
    ++stats_.queue_drops;
    PP_OBS(if (ctr_queue_drops_) ctr_queue_drops_->inc();
           if (auto* tl = obs_.timeline())
               tl->record(sim_.now(), obs::EventKind::Drop, pkt.dst.raw(),
                          pkt.payload));
    return;
  }
  table_.last_activity(id) = sim_.now();
  net::ChunkQueue& q = table_.queue(id);
  // Admission in payload bytes — the one queue_limit_bytes convention for
  // application buffering (see net/chunk.hpp).
  if (q.bytes() + pkt.payload > params_.queue_limit_bytes) {
    ++stats_.queue_drops;
    PP_OBS(if (ctr_queue_drops_) ctr_queue_drops_->inc();
           if (auto* tl = obs_.timeline())
               tl->record(sim_.now(), obs::EventKind::Drop, pkt.dst.raw(),
                          pkt.payload));
    return;
  }
  total_q_bytes_ += pkt.payload;
  q.push(std::move(pkt));
  ++stats_.queued_packets;
  PP_OBS(if (ctr_queued_) {
    ctr_queued_->inc();
    twg_queue_depth_->set(sim_.now(), static_cast<double>(total_q_bytes_));
  });
}

void TransparentProxy::on_wired_packet(net::Packet pkt) {
  if (params_.mode == ProxyMode::Passthrough) {
    wireless_tx_(std::move(pkt));
    return;
  }
  if (pkt.proto == net::Protocol::Tcp &&
      params_.mode == ProxyMode::Splice) {
    auto it = by_server_flow_.find(pkt.flow());
    if (it != by_server_flow_.end()) {
      it->second->server_side->on_segment(pkt);
    } else {
      ++stats_.unmatched_packets;  // e.g. segments for a reaped splice
    }
    return;
  }
  // UDP downlink (and, in BufferedPassthrough, raw TCP) is buffered.
  enqueue_downlink(std::move(pkt));
}

void TransparentProxy::on_wireless_packet(net::Packet pkt) {
  // Association control is proxy-terminated in every mode — membership is
  // orthogonal to how the downlink is shaped.
  if (pkt.proto == net::Protocol::Udp && !pkt.is_broadcast() &&
      pkt.dst_port == kAssocPort && pkt.src_port == kAssocPort) {
    on_assoc_packet(pkt);
    return;
  }
  if (params_.mode != ProxyMode::Splice) {
    wired_tx_(std::move(pkt));
    return;
  }
  if (pkt.proto == net::Protocol::Udp) {
    wired_tx_(std::move(pkt));  // uplink passes through unshaped
    return;
  }
  auto it = by_client_flow_.find(pkt.flow());
  if (it != by_client_flow_.end()) {
    it->second->client_side->on_segment(pkt);
    return;
  }
  if (pkt.tcp.syn && !pkt.tcp.ack_flag) {
    Splice& s = create_splice(pkt);
    s.client_side->on_segment(pkt);
    return;
  }
  ++stats_.unmatched_packets;
}

Splice& TransparentProxy::create_splice(const net::Packet& syn) {
  // Figure 3: the client's SYN to the server is terminated locally by a
  // client-side socket masquerading as the server (steps 1-4), and a
  // server-side socket masquerading as the client opens the onward
  // connection (steps 5-8).  Header rewriting is implicit: each socket is
  // constructed with the spoofed endpoints.
  auto splice = std::make_unique<Splice>();
  Splice* sp = splice.get();
  sp->key = syn.flow();
  sp->client_ip = syn.src;

  const transport::Endpoint client_ep{syn.src, syn.src_port};
  const transport::Endpoint server_ep{syn.dst, syn.dst_port};

  sp->client_side = std::make_unique<transport::TcpConnection>(
      sim_,
      [this, sp](net::Packet p) {
        sp->marker.on_egress(p);
        wireless_tx_(std::move(p));
      },
      /*local=*/server_ep, /*remote=*/client_ep, params_.client_side_tcp,
      /*passive=*/true);
  sp->server_side = std::make_unique<transport::TcpConnection>(
      sim_, [this](net::Packet p) { wired_tx_(std::move(p)); },
      /*local=*/client_ep, /*remote=*/server_ep, params_.server_side_tcp,
      /*passive=*/false);

  sp->client_side->set_send_gate(false);  // data flows only in bursts
  PP_OBS(if (obs_) {
    sp->client_side->set_obs(obs_);
    sp->server_side->set_obs(obs_);
  });

  sp->server_side->set_on_deliver([this, sp](std::uint64_t n) {
    sp->buffered += n;
    table_.last_activity(table_.ensure(sp->client_ip, sim_.now())) = sim_.now();
  });
  sp->server_side->set_on_remote_fin([this, sp] {
    sp->server_fin = true;
    maybe_finish_splice(*sp);
  });
  sp->client_side->set_on_deliver(
      [sp](std::uint64_t n) { sp->server_side->send(n); });  // uplink bytes
  sp->client_side->set_on_remote_fin([sp] {
    // Client finished sending; propagate the half-close upstream.
    sp->server_side->close();
  });

  by_server_flow_.emplace(sp->key.reversed(), sp);
  table_.splices(table_.ensure(syn.src, sim_.now())).push_back(sp);
  ++stats_.splices_created;
  auto [it, ok] = by_client_flow_.emplace(sp->key, std::move(splice));
  PP_CHECK_AT(ok, "proxy.splice.duplicate_flow", sim_.now());
  sp->server_side->connect();
  return *it->second;
}

void TransparentProxy::maybe_finish_splice(Splice& s) {
  // Once the server has finished and every byte has been handed to the
  // client-side socket, close toward the client (the FIN rides the next
  // burst, since FIN emission respects the send gate).
  if (s.server_fin && s.buffered == 0 && !s.client_close_requested) {
    s.client_close_requested = true;
    s.client_side->close();
  }
}

void TransparentProxy::reap_splices() {
  std::vector<net::FlowKey> done;
  done.reserve(by_client_flow_.size());
  // Sorted scan: stats and erase order must not follow hash-bucket layout.
  for (const auto* kv : check::sorted_items(by_client_flow_)) {
    if (kv->second->client_side->done() && kv->second->server_side->done())
      done.push_back(kv->first);
  }
  for (const auto& key : done) {
    auto it = by_client_flow_.find(key);
    Splice* sp = it->second.get();
    by_server_flow_.erase(key.reversed());
    auto& vec = table_.splices(table_.ensure(sp->client_ip, sim_.now()));
    std::erase(vec, sp);
    by_client_flow_.erase(it);
    ++stats_.splices_closed;
  }
}

void TransparentProxy::audit() const {
  // Datagram conservation: every packet ever queued was bursted, dropped
  // at a departure, or is still sitting in a per-client queue (queue-limit
  // drops are counted before the queue, so they do not enter the
  // identity).  A departed client must hold no residue at all.
  std::uint64_t residual_pkts = 0;
  std::uint64_t residual_bytes = 0;
  for (ClientId id = 0; id < table_.size(); ++id) {
    // Chunk-granularity structural audit: view totals, refcounts and
    // offset/length ranges of the residual queue itself.
    const net::ChunkQueue& q = table_.queue(id);
    q.audit();
    residual_pkts += q.packets();
    residual_bytes += q.bytes();
    if (table_.membership(id) == Membership::Departed) {
      PP_CHECK_AT(q.empty() && table_.splices(id).empty(),
                  "proxy.churn.departed_state_leak", sim_.now());
    }
  }
  PP_CHECK_AT(stats_.queued_packets == stats_.burst_packets +
                                           stats_.churn_dropped_packets +
                                           residual_pkts,
              "proxy.queue.packet_conservation", sim_.now());
  PP_CHECK_AT(total_q_bytes_ == residual_bytes,
              "proxy.queue.byte_conservation", sim_.now());

  // Splice byte conservation: every in-order byte the server side handed
  // up is either still awaiting a burst or has been submitted to the
  // client-side socket.  Sorted so a violation always reports the same
  // splice first.
  for (const auto* kv : check::sorted_items(by_client_flow_)) {
    const Splice& s = *kv->second;
    PP_CHECK_AT(s.server_side->stats().bytes_delivered ==
                    s.buffered + s.client_side->bytes_submitted(),
                "proxy.splice.byte_conservation", sim_.now());
  }
}

void TransparentProxy::schedule_tick() {
  if (!running_ || paused_) return;
  reap_splices();
  burst_handles_.clear();

  std::vector<ClientDemand>& demands = demands_scratch_;
  demands.clear();
  demands.reserve(table_.size());
  for (ClientId id = 0; id < table_.size(); ++id) {
    // Departed clients are out of the demand set; Draining ones stay until
    // their queue empties or the drain deadline drops it.
    if (table_.membership(id) == Membership::Departed) continue;
    const net::ChunkQueue& q = table_.queue(id);
    ClientDemand d;
    d.ip = table_.ip(id);
    d.udp_bytes = q.bytes();
    d.udp_packets = q.packets();
    for (const Splice* s : table_.splices(id)) {
      d.tcp_bytes += s->buffered + s->client_side->bytes_unsent();
      // A pending or unacknowledged FIN needs a slot too (it only leaves,
      // or is retransmitted, when the gate opens).
      if (s->client_side->close_pending() || s->client_side->fin_unacked())
        d.tcp_bytes += 40;
    }
    // Deadline slack: how long the oldest buffered datagram can still wait
    // before blowing the delay target.  Full target when nothing is queued.
    d.deadline_slack = params_.delay_target;
    if (!q.empty()) {
      const sim::Duration age = sim_.now() - q.front()->data->pkt.sent_at;
      d.deadline_slack = age >= params_.delay_target
                             ? sim::Time::zero()
                             : params_.delay_target - age;
    }
    if (channel_obs_ != nullptr) {
      // Refresh the flat channel column once per SRP; the demand snapshot
      // (and any multi-pass policy) reads the cached copy.
      table_.channel(id) = channel_obs_->view_of(d.ip);
      d.channel = table_.channel(id);
    }
    demands.push_back(d);
  }

  BuiltSchedule built = scheduler_->build(demands, estimator_);

  // Slot non-overlap invariant: no two bursts of one interval may share
  // channel time, or clients would sleep through each other's data
  // (TcpOnly pairs are exempt — see slots_conflict).
  for (std::size_t i = 0; i < built.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < built.entries.size(); ++j) {
      PP_CHECK_AT(!slots_conflict(built.entries[i], built.entries[j]),
                  "proxy.schedule.slot_overlap", sim_.now());
    }
  }

  auto msg = std::make_shared<ScheduleMessage>();
  msg->seq_no = ++schedule_seq_;
  msg->srp_time = sim_.now();
  msg->interval = built.interval;
  msg->reuse_next = built.reuse_next;
  msg->entries = built.entries;
  last_schedule_ = msg;

  net::Packet bc = net::make_packet();
  bc.src = params_.proxy_ip;
  bc.src_port = kSchedulePort;
  bc.dst = net::Ipv4Addr::broadcast();
  bc.dst_port = kSchedulePort;
  bc.proto = net::Protocol::Udp;
  bc.payload = msg->serialized_bytes();
  bc.data = msg;
  bc.sent_at = sim_.now();
  wireless_tx_(std::move(bc));
  ++stats_.schedules_sent;
  PP_OBS(if (ctr_schedules_) {
    ctr_schedules_->inc();
    hist_interval_us_->observe(
        static_cast<std::uint64_t>(built.interval.count_us()));
    for (const ScheduleEntry& entry : msg->entries)
      hist_burst_us_->observe(
          static_cast<std::uint64_t>(entry.duration.count_us()));
  } if (auto* tl = obs_.timeline())
        tl->record(sim_.now(), obs::EventKind::ScheduleBroadcast, 0,
                   msg->entries.size()));

  const sim::Time srp = sim_.now();

  // Schedule-loss hardening: rebroadcast the SRP k-1 more times inside the
  // guard window.  Copies share the seq_no (clients dedupe on it) and carry
  // their lag in repeat_offset so delay compensation still anchors on the
  // original SRP.  The timers ride burst_handles_ so pause()/stop() cancel
  // pending repeats with everything else.
  burst_handles_.reserve(static_cast<std::size_t>(
                             std::max(params_.schedule_repeats - 1, 0)) +
                         2 * msg->entries.size());
  for (int r = 1; r < params_.schedule_repeats; ++r) {
    const sim::Duration lag = params_.repeat_spacing * r;
    burst_handles_.push_back(sim_.at(srp + lag, [this, msg, lag] {
      auto rep = std::make_shared<ScheduleMessage>(*msg);
      rep->repeat_offset = lag;
      net::Packet rbc = net::make_packet();
      rbc.src = params_.proxy_ip;
      rbc.src_port = kSchedulePort;
      rbc.dst = net::Ipv4Addr::broadcast();
      rbc.dst_port = kSchedulePort;
      rbc.proto = net::Protocol::Udp;
      rbc.payload = rep->serialized_bytes();
      rbc.data = std::move(rep);
      rbc.sent_at = sim_.now();
      wireless_tx_(std::move(rbc));
      ++stats_.schedule_repeats_sent;
      PP_OBS(if (auto* tl = obs_.timeline()) tl->record(
          sim_.now(), obs::EventKind::ScheduleRepeat, 0,
          static_cast<std::uint64_t>(lag.count_us())));
    }));
  }

  for (const ScheduleEntry& entry : msg->entries) {
    burst_handles_.push_back(sim_.at(
        srp + entry.rp_offset,
        [this, entry] { BurstSession{*this, entry}.open(); }));
    burst_handles_.push_back(
        sim_.at(srp + entry.rp_offset + entry.duration,
                [this, entry] { BurstSession{*this, entry}.close(); }));
  }
  tick_handle_ = sim_.at(srp + built.interval, [this] { schedule_tick(); });
}

}  // namespace pp::proxy

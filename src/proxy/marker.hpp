// The packet-marking protocol of Section 3.2.2 ("Packet Marking").
//
// A burst is terminated by a marked packet (the IP TOS bit) so the client
// knows when to sleep.  For TCP this is subtle: the bursting thread decides
// *which byte* ends the burst, but the segment carrying that byte is built
// later (and may be delayed by the congestion window).  The paper uses
// three shared variables per client-side socket:
//
//   S — bytes written into the socket by the bursting thread,
//   Q — bytes sent on the wire by the IPQ thread (first transmissions only;
//       retransmissions do not advance Q, so S >= Q is an invariant),
//   M — the byte number to mark; when Q reaches M the IPQ thread marks the
//       packet and resets M.
//
// Because writing into our simulated socket can emit segments synchronously,
// the bursting side must arm M *before* the final write (arm_after).
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace pp::proxy {

class BurstMarker {
 public:
  // -- Bursting-thread side ----------------------------------------------------
  // Record `n` bytes written into the socket (call after arming if these
  // are the final bytes of a burst).
  void bytes_written(std::uint64_t n) { s_ += n; }
  // Arm the mark at S + n: the burst ends after `n` more written bytes.
  void arm_after(std::uint64_t n) {
    m_ = s_ + n;
    armed_ = true;
    expect_fin_ = false;
  }
  // Arm the mark at the current S (everything written so far ends the burst).
  void arm_now() { arm_after(0); }
  // Like arm_after, but the connection closes at the end of this burst: the
  // mark rides the FIN segment (the true last packet) instead of the last
  // data segment, so the client does not sleep before the FIN arrives.
  void arm_after_with_fin(std::uint64_t n) {
    arm_after(n);
    expect_fin_ = true;
  }
  void disarm() {
    armed_ = false;
    expect_fin_ = false;
  }

  // -- IPQ-thread side -----------------------------------------------------------
  // Inspect an outgoing segment; advances Q for first transmissions and
  // sets pkt.marked when the armed byte leaves.  `data_end` is the data
  // coordinate one past the segment's last payload byte.
  void on_egress(net::Packet& pkt);

  // -- Introspection ---------------------------------------------------------------
  std::uint64_t written() const { return s_; }   // S
  std::uint64_t sent() const { return q_; }      // Q
  bool armed() const { return armed_; }
  std::uint64_t marks_emitted() const { return marks_; }

 private:
  std::uint64_t s_ = 0;
  std::uint64_t q_ = 0;
  std::uint64_t m_ = 0;
  bool armed_ = false;
  bool expect_fin_ = false;
  std::uint64_t marks_ = 0;
};

}  // namespace pp::proxy

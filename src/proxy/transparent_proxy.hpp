// The transparent proxy (Section 3).
//
// The proxy is a bridge between the wired LAN (servers) and the access
// point (clients).  Neither side knows it exists:
//
//  * TCP connections are spliced (Figure 3): the client's SYN to a server
//    is terminated at a proxy-owned "client-side" socket that masquerades
//    as the server, and a matching "server-side" socket masquerading as the
//    client connects onward.  The double connection keeps the server-side
//    RTT free of client buffering delay, so the sender's window stays open.
//  * UDP downlink datagrams are buffered per client and released in bursts.
//  * Uplink traffic (ACKs, requests, receiver reports) passes through
//    immediately — only the downlink is shaped.
//
// At each SRP the proxy snapshots all client queues, asks its Scheduler
// for a burst layout, broadcasts the schedule, and bursts each client's
// data in its slot, terminating every burst with a marked packet.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/chunk.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/wireless.hpp"
#include "obs/hooks.hpp"
#include "proxy/assoc.hpp"
#include "proxy/bandwidth.hpp"
#include "proxy/client_table.hpp"
#include "proxy/marker.hpp"
#include "proxy/schedule.hpp"
#include "proxy/scheduler.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace pp::proxy {

class BurstSession;

// One spliced TCP connection pair (Figure 3): the client-side socket
// masquerades as the server, the server-side socket as the client.  Owned
// by the proxy's flow maps; ClientTable rows hold non-owning pointers.
struct Splice {
  net::FlowKey key;  // client -> server
  net::Ipv4Addr client_ip;
  std::unique_ptr<transport::TcpConnection> client_side;
  std::unique_ptr<transport::TcpConnection> server_side;
  BurstMarker marker;
  std::uint64_t buffered = 0;  // server bytes awaiting burst to client
  bool server_fin = false;     // server finished sending
  bool client_close_requested = false;
};

enum class ProxyMode : std::uint8_t {
  // Full system: spliced TCP + buffered UDP + burst scheduling.
  Splice,
  // Ablation: buffer and burst raw packets without splicing — the
  // end-to-end TCP connection sees the full buffering delay.
  BufferedPassthrough,
  // Ablation/baseline: forward everything immediately (no proxy effect).
  Passthrough,
};

struct ProxyParams {
  net::Ipv4Addr proxy_ip = net::Ipv4Addr::octets(10, 0, 0, 254);
  // Per-client datagram buffer.  Section 3.2.2 sizes the whole proxy at
  // ~one second of data for all clients (512 KB at 4 Mb/s); per client
  // that is ~64 KB — and keeping it near one second also keeps the
  // receiver-report feedback loop fast enough for stream adaptation.
  std::uint64_t queue_limit_bytes = 64 * 1024;
  SlotParams slots{};
  ProxyMode mode = ProxyMode::Splice;
  // Ablation knob: scale the calibrated send-cost model.  Values below 1
  // make the proxy overestimate channel capacity, reproducing the slot
  // overruns Section 3.2.2's microbenchmarks exist to prevent.
  double cost_model_scale = 1.0;
  // Schedule-loss hardening: total SRP broadcast transmissions per interval
  // (1 = no repeats).  Repeats are spaced `repeat_spacing` apart, carry the
  // same seq_no (clients dedupe) and a repeat_offset so delay compensation
  // still anchors on the original SRP.
  int schedule_repeats = 1;
  sim::Duration repeat_spacing = sim::Time::ms(3);
  // Downlink delay target used to compute per-client deadline slack for the
  // scheduler (time the oldest queued datagram can still wait).  Policies
  // that ignore slack (the paper's own schedulers) are unaffected.  Must
  // exceed 2x the SRP interval for deferral to ever be safe: the oldest
  // queued packet at an SRP is typically one interval old already, so a
  // target below 2 intervals makes every client permanently urgent.
  sim::Duration delay_target = sim::Time::ms(2000);
  transport::TcpOptions server_side_tcp{};  // manual_consume forced on
  transport::TcpOptions client_side_tcp{};  // defer_rtx_when_gated forced on
  // Graceful-leave drain budget: a departing client's queue stays in the
  // demand set this long; whatever has not been bursted by then is dropped
  // (with conservation accounting) and the LeaveAck goes out regardless.
  sim::Duration drain_deadline = sim::Time::ms(1500);
};

struct ProxyStats {
  std::uint64_t schedules_sent = 0;
  std::uint64_t bursts_opened = 0;
  std::uint64_t queued_packets = 0;
  std::uint64_t burst_packets = 0;  // raw packets released from the queue
  std::uint64_t queue_drops = 0;
  std::uint64_t udp_bytes_burst = 0;
  std::uint64_t tcp_bytes_burst = 0;
  std::uint64_t splices_created = 0;
  std::uint64_t splices_closed = 0;
  std::uint64_t empty_burst_markers = 0;
  std::uint64_t unmatched_packets = 0;
  std::uint64_t schedule_repeats_sent = 0;
  std::uint64_t pauses = 0;
  // -- Churn lifecycle ---------------------------------------------------------
  std::uint64_t joins = 0;               // Join handshakes admitted
  std::uint64_t leaves = 0;              // departures completed (acked/forced)
  std::uint64_t renegotiations = 0;      // membership-triggered immediate SRPs
  std::uint64_t assoc_rx = 0;            // association control packets seen
  std::uint64_t bursts_skipped = 0;      // slots whose client left mid-interval
  std::uint64_t churn_drained_bytes = 0;   // bytes bursted while Draining
  std::uint64_t churn_dropped_packets = 0; // queue packets dropped at departure
  std::uint64_t churn_dropped_bytes = 0;
};

class TransparentProxy {
 public:
  TransparentProxy(sim::Simulator& sim, std::unique_ptr<Scheduler> scheduler,
                   ProxyParams params = {});
  ~TransparentProxy();

  TransparentProxy(const TransparentProxy&) = delete;
  TransparentProxy& operator=(const TransparentProxy&) = delete;

  // -- Wiring ------------------------------------------------------------------
  // Sink for packets arriving from the wired LAN (the bridge's LAN port).
  net::PacketSink& wired_sink() { return wired_sink_; }
  // Sink for packets arriving from the access point (uplink).
  net::PacketSink& wireless_sink() { return wireless_sink_; }
  void set_wired_tx(std::function<void(net::Packet)> tx) {
    wired_tx_ = std::move(tx);
  }
  void set_wireless_tx(std::function<void(net::Packet)> tx) {
    wireless_tx_ = std::move(tx);
  }
  // Batched emission: a burst's raw-datagram chain leaves as one ChunkQueue
  // (one link/medium reservation per slot).  Optional — when unset, bursts
  // unbundle onto wireless_tx_.  Control traffic (schedule broadcasts,
  // spliced TCP segments, markers, acks) always uses wireless_tx_.
  void set_wireless_burst_tx(std::function<void(net::ChunkQueue)> tx) {
    wireless_burst_tx_ = std::move(tx);
  }

  // Fit the send-cost model from the medium (the microbenchmark of
  // Section 3.2.2).  Must be called before start().
  void calibrate(const net::WirelessMedium& medium);
  // Provide an already-fitted estimator instead.
  void set_estimator(BandwidthEstimator est) { estimator_ = est; }

  // Begin the schedule loop with the first SRP at `first_srp`.
  void start(sim::Time first_srp);
  void stop();

  // Fault injection: freeze the schedule loop (cancel the pending SRP and
  // burst timers, close every client send gate) while preserving all
  // queues and splices.  resume() broadcasts a fresh schedule immediately.
  void pause();
  void resume();
  bool paused() const { return paused_; }

  // -- Membership --------------------------------------------------------------
  // Admit a client into the demand set (pre-registration at testbed start,
  // or a re-join after deregister_client / a Leave).  Idempotent.
  void register_client(net::Ipv4Addr ip);
  // Inverse of register_client: abrupt removal.  Drops the client's queued
  // datagrams (counted as churn drops so conservation audits still hold),
  // aborts its splices, and excludes it from future schedules.  The state
  // slot itself is retained (Departed) so churn never grows the heap; a
  // later register_client revives it with no stale bytes.  No-op for
  // unknown clients.
  void deregister_client(net::Ipv4Addr ip);
  // True while the client is in the demand set (Joined or Draining).
  bool client_active(net::Ipv4Addr ip) const;
  // Pre-size the client table (and demand scratch) for a known fleet.
  void reserve_clients(std::size_t n);

  // Wire a channel-quality observer (owned elsewhere — typically the
  // testbed's ChannelModel, or the FaultPlan's delegated GE chain).  When
  // set, each SRP's demand snapshot carries the per-client ChannelView so
  // channel-aware policies can act on it.  Queries only: never perturbs
  // the observed model's RNG streams.
  void set_channel_observer(const channel::ChannelObserver* obs) {
    channel_obs_ = obs;
  }

  // Publish schedule/burst/drop metrics and timeline spans.  Also forwarded
  // to the TCP connections of every splice created afterwards.
  void set_obs(obs::Hook hook);

  // -- Introspection ------------------------------------------------------------
  const ProxyStats& stats() const { return stats_; }
  const BandwidthEstimator& estimator() const { return estimator_; }
  std::uint64_t buffered_bytes(net::Ipv4Addr client) const;
  std::size_t splice_count() const { return by_client_flow_.size(); }
  // Invariant audit (see src/check/): datagram-queue packet/byte
  // conservation and per-splice byte conservation.  Aborts via PP_CHECK
  // on violation.
  void audit() const;
  const ScheduleMessage* last_schedule() const { return last_schedule_.get(); }

 private:
  // One splice's TCP allowance within a burst (BurstSession scratch).
  struct BurstPlan {
    Splice* splice;
    std::uint64_t chunk;
    std::uint64_t pre_unsent;
  };

  class Sink : public net::PacketSink {
   public:
    Sink(TransparentProxy& p, bool wired) : proxy_{p}, wired_{wired} {}
    void handle_packet(net::Packet pkt) override {
      if (wired_) {
        proxy_.on_wired_packet(std::move(pkt));
      } else {
        proxy_.on_wireless_packet(std::move(pkt));
      }
    }

   private:
    TransparentProxy& proxy_;
    bool wired_;
  };

  void on_wired_packet(net::Packet pkt);
  void on_wireless_packet(net::Packet pkt);
  void enqueue_downlink(net::Packet pkt);
  void on_assoc_packet(const net::Packet& pkt);
  void send_assoc(AssocKind kind, net::Ipv4Addr client, std::uint64_t seq);
  // Membership changed: collapse the current interval and broadcast a
  // fresh schedule immediately (the k-repeat hardening rides along).
  void renegotiate();
  bool drained(ClientId id) const;
  void maybe_finish_drain(ClientId id);
  // Complete a departure: drop whatever is left, abort splices, mark
  // Departed, ack the Leave.
  void finish_leave(ClientId id, bool timed_out);
  void drop_queue(ClientId id);
  void abort_splices(ClientId id);
  // Close every splice's client-side send gate (pause / renegotiate).
  void close_all_gates();
  Splice& create_splice(const net::Packet& syn);
  void maybe_finish_splice(Splice& s);
  void reap_splices();

  // Churn counters register on first use, not at set_obs: a churn-free run
  // must publish no churn metrics, or its digest would shift against the
  // pinned legacy fingerprints.
  obs::Counter* churn_counter(obs::Counter*& slot, const char* name);
  void schedule_tick();

  // Burst emission lives in BurstSession (proxy/burst.hpp): one session
  // per scheduled slot owns the open -> emit -> close lifecycle.
  friend class BurstSession;

  sim::Simulator& sim_;
  std::unique_ptr<Scheduler> scheduler_;
  const channel::ChannelObserver* channel_obs_ = nullptr;
  ProxyParams params_;
  BandwidthEstimator estimator_;
  Sink wired_sink_;
  Sink wireless_sink_;
  std::function<void(net::Packet)> wired_tx_;
  std::function<void(net::Packet)> wireless_tx_;
  std::function<void(net::ChunkQueue)> wireless_burst_tx_;
  // Backing store for every per-client queue and burst chain.  shared_ptr:
  // chains captured in pending events may outlive the proxy at teardown.
  std::shared_ptr<net::ChunkPool> chunk_pool_ =
      std::make_shared<net::ChunkPool>();

  // Flat SoA per-client state, dense ClientId in registration order (see
  // proxy/client_table.hpp).  Every fleet walk iterates ids 0..size-1.
  ClientTable table_{chunk_pool_};
  std::unordered_map<net::FlowKey, std::unique_ptr<Splice>, net::FlowKeyHash>
      by_client_flow_;  // key: client -> server
  std::unordered_map<net::FlowKey, Splice*, net::FlowKeyHash>
      by_server_flow_;  // key: server -> client

  obs::Hook obs_;
  obs::Counter* ctr_schedules_ = nullptr;
  obs::Counter* ctr_queue_drops_ = nullptr;
  obs::Counter* ctr_queued_ = nullptr;
  obs::Counter* ctr_empty_markers_ = nullptr;
  obs::Counter* ctr_joins_ = nullptr;
  obs::Counter* ctr_leaves_ = nullptr;
  obs::Counter* ctr_renegs_ = nullptr;
  obs::Counter* ctr_churn_drained_ = nullptr;
  obs::Counter* ctr_churn_dropped_ = nullptr;
  obs::Histogram* hist_burst_us_ = nullptr;
  obs::Histogram* hist_burst_bytes_ = nullptr;
  obs::Histogram* hist_interval_us_ = nullptr;
  obs::TimeWeightedGauge* twg_queue_depth_ = nullptr;
  std::uint64_t total_q_bytes_ = 0;  // sum of all clients' pkt_q.bytes()

  // SRP-tick scratch, reused every interval so the steady-state schedule
  // loop stays off the heap.
  std::vector<ClientDemand> demands_scratch_;
  std::vector<BurstPlan> plan_scratch_;

  bool running_ = false;
  bool paused_ = false;
  std::uint64_t schedule_seq_ = 0;
  std::shared_ptr<ScheduleMessage> last_schedule_;
  sim::EventHandle tick_handle_;
  std::vector<sim::EventHandle> burst_handles_;
  ProxyStats stats_;
};

}  // namespace pp::proxy

// Flat per-client state for the proxy (SoA).
//
// The proxy's per-client hot state used to live behind an
// unordered_map<ip, unique_ptr<ClientState>>: every SRP demand snapshot,
// burst open and membership check chased a hash bucket and a heap pointer
// per client.  At fleet scale (thousands of clients per cell) that walk is
// the schedule loop's cache budget.  ClientTable packs each logical field
// into its own flat array indexed by a dense ClientId, assigned in
// registration order:
//
//   * the demand snapshot scans columns sequentially (queue totals,
//     membership, activity, cached channel view) instead of pointer-hopping;
//   * iteration order is id order == registration order, so every walk is
//     deterministic by construction — no sorted_items() or lint waivers;
//   * Departed clients keep their row (queues empty), so sustained churn
//     reuses slots and ids stay dense and stable for a run's lifetime.
//
// The ip -> id index is a salted unordered_map, but it is only ever used
// for point lookups — no iteration — so replay digests stay salt-invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "channel/observer.hpp"
#include "net/addr.hpp"
#include "net/chunk.hpp"
#include "sim/simulator.hpp"

namespace pp::proxy {

struct Splice;  // defined in transparent_proxy.hpp

using ClientId = std::uint32_t;
inline constexpr ClientId kNoClient = 0xFFFF'FFFFu;

// Association lifecycle as the proxy sees it.  Departed rows are retained
// (zero queued bytes, no splices) so churn never grows the table.
enum class Membership : std::uint8_t { Joined, Draining, Departed };

class ClientTable {
 public:
  explicit ClientTable(std::shared_ptr<net::ChunkPool> pool)
      : pool_{std::move(pool)} {}

  std::size_t size() const { return ip_.size(); }
  void reserve(std::size_t n);

  // Point lookup; kNoClient when the ip has never been seen.
  ClientId find(net::Ipv4Addr ip) const {
    const auto it = index_.find(ip);
    return it == index_.end() ? kNoClient : it->second;
  }
  // Lookup-or-append: a fresh row starts Joined with an empty queue.
  ClientId ensure(net::Ipv4Addr ip, sim::Time now);

  // -- Columns ---------------------------------------------------------------
  net::Ipv4Addr ip(ClientId id) const { return ip_[id]; }
  net::ChunkQueue& queue(ClientId id) { return pkt_q_[id]; }
  const net::ChunkQueue& queue(ClientId id) const { return pkt_q_[id]; }
  std::vector<Splice*>& splices(ClientId id) { return splices_[id]; }
  const std::vector<Splice*>& splices(ClientId id) const {
    return splices_[id];
  }
  sim::Time& last_activity(ClientId id) { return last_activity_[id]; }
  Membership& membership(ClientId id) { return membership_[id]; }
  Membership membership(ClientId id) const { return membership_[id]; }
  std::uint64_t& leave_seq(ClientId id) { return leave_seq_[id]; }
  sim::EventHandle& drain_timer(ClientId id) { return drain_timer_[id]; }
  // Channel view cached at the most recent SRP (unknown when no observer).
  channel::ChannelView& channel(ClientId id) { return channel_[id]; }

 private:
  std::shared_ptr<net::ChunkPool> pool_;
  // One flat array per field, all indexed by ClientId.
  std::vector<net::Ipv4Addr> ip_;
  std::vector<net::ChunkQueue> pkt_q_;
  std::vector<std::vector<Splice*>> splices_;
  std::vector<sim::Time> last_activity_;
  std::vector<Membership> membership_;
  std::vector<std::uint64_t> leave_seq_;
  std::vector<sim::EventHandle> drain_timer_;
  std::vector<channel::ChannelView> channel_;
  std::unordered_map<net::Ipv4Addr, ClientId, net::Ipv4AddrHash> index_;
};

}  // namespace pp::proxy

#include "proxy/marker.hpp"

#include "check/check.hpp"

namespace pp::proxy {

void BurstMarker::on_egress(net::Packet& pkt) {
  if (pkt.proto != net::Protocol::Tcp || pkt.tcp.syn) return;
  if (pkt.payload == 0) {
    // A FIN with all burst bytes already on the wire is the true end of
    // the burst when the connection closes here.
    if (pkt.tcp.fin && armed_ && expect_fin_ && q_ >= m_) {
      pkt.marked = true;
      disarm();
      ++marks_;
    }
    return;
  }
  // Wire seq -> data coordinates (SYN occupies wire seq 0).
  const std::uint64_t data_end = (pkt.tcp.seq - 1) + pkt.payload;
  if (data_end <= q_) return;  // retransmission: Q does not advance
  q_ = data_end;
  // The IPQ thread cannot send bytes never written.
  PP_CHECK(q_ <= s_, "proxy.marker.bytes_sent");
  if (armed_ && q_ >= m_ && !expect_fin_) {
    pkt.marked = true;
    disarm();
    ++marks_;
  }
}

}  // namespace pp::proxy

#include "proxy/schedule.hpp"

#include <sstream>

namespace pp::proxy {

std::string ScheduleMessage::str() const {
  std::ostringstream os;
  os << "schedule#" << seq_no << " interval=" << interval.str();
  if (reuse_next) os << " reuse";
  for (const auto& e : entries) {
    os << " [" << e.client.str() << " rp=" << e.rp_offset.str()
       << " dur=" << e.duration.str() << "]";
  }
  return os.str();
}

}  // namespace pp::proxy

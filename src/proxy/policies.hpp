// The scheduler policy zoo: queue- and channel-aware burst layouts behind
// the same Scheduler interface as the paper's dynamic policies.
//
// All three run a fixed burst interval (comparable to the paper's 500 ms
// FixedIntervalScheduler, which stays the untouched baseline) and differ in
// who gets channel time:
//
//  * LongestQueueFirstScheduler — classic max-queue priority: serve clients
//    in descending backlog order at full drain cost until the interval is
//    exhausted; the tail is starved until the next SRP.
//  * ChannelAwareOpportunisticScheduler — joint queue/channel scheduling in
//    the spirit of arXiv:1807.10128: clients whose channel sits in the
//    worst quality rung are deferred (no slot: they sleep the interval out
//    instead of burning airtime and energy on frames the fade would eat),
//    and the reclaimed airtime goes to good-state clients.  Deferral is
//    bounded by the client's deadline slack and a consecutive-skip cap, so
//    a long fade degrades to the baseline instead of starving the client.
//  * BufferAwareProbabilisticScheduler — randomized buffer-threshold
//    admission after arXiv:1509.02655: each backlogged client is served
//    with probability q/(q + q0), so deep queues are near-certain and
//    shallow queues probabilistically batch up across intervals.  Draws
//    come from a named deterministic stream derived from the run seed —
//    never the simulator's shared stream — so runs stay replayable.
#pragma once

#include <cstdint>
#include <map>

#include "proxy/scheduler.hpp"
#include "sim/rng.hpp"

namespace pp::proxy {

class LongestQueueFirstScheduler final : public Scheduler {
 public:
  explicit LongestQueueFirstScheduler(sim::Duration interval,
                                      SlotParams sp = {})
      : interval_{interval}, sp_{sp} {}
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;
  void set_obs(obs::Hook hook) override;

 private:
  sim::Duration interval_;
  SlotParams sp_;
  obs::Counter* ctr_starved_ = nullptr;
};

class ChannelAwareOpportunisticScheduler final : public Scheduler {
 public:
  // `max_deferrals`: consecutive SRPs a bad-channel client may be skipped
  // before it is served regardless (in addition to the deadline-slack
  // guard, which force-serves earlier when data would go late).
  // `use_measured_goodput`: convenience forward to the base class's
  // set_measured_goodput (widen slots by measured EWMA goodput when it is
  // worse than the rung-nominal rate).
  explicit ChannelAwareOpportunisticScheduler(
      sim::Duration interval, int max_deferrals = 3, SlotParams sp = {},
      bool use_measured_goodput = false)
      : interval_{interval}, max_deferrals_{max_deferrals}, sp_{sp} {
    set_measured_goodput(use_measured_goodput);
  }
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;
  void set_obs(obs::Hook hook) override;

 private:
  sim::Duration interval_;
  int max_deferrals_;
  SlotParams sp_;
  // Consecutive deferrals per client (ordered map: layout must never
  // follow hash-bucket order).
  std::map<std::uint32_t, int> deferred_;
  obs::Counter* ctr_deferrals_ = nullptr;
  obs::Counter* ctr_forced_ = nullptr;
};

class BufferAwareProbabilisticScheduler final : public Scheduler {
 public:
  // `threshold_bytes` is q0 in the admission probability q/(q + q0).
  BufferAwareProbabilisticScheduler(sim::Duration interval,
                                    std::uint64_t run_seed,
                                    std::uint64_t threshold_bytes = 16 * 1024,
                                    SlotParams sp = {});
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;
  void set_obs(obs::Hook hook) override;

 private:
  sim::Duration interval_;
  std::uint64_t threshold_bytes_;
  SlotParams sp_;
  sim::Rng rng_;  // named stream: policy draws only, never sim.rng()
  obs::Counter* ctr_skips_ = nullptr;
  obs::Counter* ctr_forced_ = nullptr;
};

// The named policy RNG stream: an independent generator derived from the
// run seed and a fixed stream tag.  Exposed so tests can reproduce policy
// draws without constructing a scheduler.
sim::Rng policy_stream(std::uint64_t run_seed);

}  // namespace pp::proxy

// The schedule broadcast: the proxy's contract with its clients.
//
// At every scheduler rendezvous point (SRP) the proxy broadcasts one UDP
// packet describing, for each active client, the offset of its rendezvous
// point (RP) within the coming burst interval and the length of its data
// burst.  The message also announces when the *next* schedule will be sent,
// which is what lets clients sleep in between.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pp::proxy {

// Well-known UDP port clients listen on for schedule broadcasts.
inline constexpr net::Port kSchedulePort = 9009;

// What traffic the proxy sends in a slot.  Dynamic schedules use Any; the
// slotted static baseline (Figure 7) separates TCP and UDP slots.
enum class SlotKind : std::uint8_t { Any, TcpOnly, UdpOnly };

struct ScheduleEntry {
  net::Ipv4Addr client;
  sim::Duration rp_offset;  // from the SRP (schedule send time)
  sim::Duration duration;   // length of this client's burst slot
  SlotKind kind = SlotKind::Any;
};

struct ScheduleMessage : net::Message {
  std::uint64_t seq_no = 0;
  sim::Time srp_time;      // proxy clock when the schedule was sent
  sim::Duration interval;  // next SRP = srp_time + interval
  // Future-work extension (Section 5): when true, the same schedule repeats
  // next interval and clients may skip waking for the next broadcast.
  bool reuse_next = false;
  // How far after srp_time this copy was (re)broadcast.  Zero on the first
  // transmission; k-repeat hardening copies carry their lag so clients can
  // recover the original SRP anchor for delay compensation.
  sim::Duration repeat_offset{};
  std::vector<ScheduleEntry> entries;

  // Entry lookup for one client; nullptr when the client has no burst.
  const ScheduleEntry* find(net::Ipv4Addr ip) const {
    for (const auto& e : entries)
      if (e.client == ip) return &e;
    return nullptr;
  }

  // Approximate serialized size: header + per-entry (addr, two offsets).
  std::uint32_t serialized_bytes() const {
    return 24 + static_cast<std::uint32_t>(entries.size()) * 12;
  }

  std::string str() const;
};

}  // namespace pp::proxy

// The linear send-cost model of Section 3.2.2 ("Bandwidth Constraints").
//
// The proxy cannot push bytes to the access point faster than the wireless
// medium drains them, or a client's burst spills into the next client's
// slot.  The paper runs microbenchmarks and fits a linear cost function of
// message size; we do the same: sample the channel's per-frame airtime at a
// range of payload sizes and least-squares fit  cost(n) = a + b*n.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace pp::proxy {

class BandwidthEstimator {
 public:
  // Fit from (payload bytes, channel seconds) samples.
  struct Sample {
    std::uint32_t payload_bytes;
    double seconds;
  };

  BandwidthEstimator() = default;
  explicit BandwidthEstimator(const std::vector<Sample>& samples) {
    fit(samples);
  }

  void fit(const std::vector<Sample>& samples);

  bool fitted() const { return fitted_; }
  double overhead_seconds() const { return a_; }
  double seconds_per_byte() const { return b_; }

  // Channel time to deliver one packet with `payload` bytes.
  sim::Duration packet_cost(std::uint32_t payload) const {
    return sim::Time::seconds(a_ + b_ * static_cast<double>(payload));
  }

  // Channel time to deliver `bytes` of payload split into `mtu`-sized
  // packets, each optionally followed by a small acknowledgement frame of
  // `ack_bytes` (pass 0 for UDP).
  sim::Duration bulk_cost(std::uint64_t bytes, std::uint32_t mtu,
                          std::uint32_t ack_bytes = 0) const;

  // Channel time for an already-packetized queue: `packets` frames
  // totalling `bytes` of payload.  Datagram queues keep their original
  // framing, so the per-packet overhead must be charged per queued packet,
  // not per MTU-sized chunk.
  sim::Duration queue_cost(std::uint64_t packets, std::uint64_t bytes) const {
    return sim::Time::seconds(static_cast<double>(packets) * a_ +
                              static_cast<double>(bytes) * b_);
  }

  // Largest payload byte count whose bulk_cost fits within `slot`.
  std::uint64_t payload_budget(sim::Duration slot, std::uint32_t mtu,
                               std::uint32_t ack_bytes = 0) const;

 private:
  double a_ = 1e-3;   // conservative defaults until fitted
  double b_ = 2e-6;
  bool fitted_ = false;
};

}  // namespace pp::proxy

// Burst-schedule construction policies (Section 3.2.1).
//
// At each SRP the proxy snapshots every client's packet-queue depth and
// asks a Scheduler to lay out the coming burst interval.  Four policies:
//
//  * FixedIntervalScheduler  — fixed interval (the paper's 100 ms / 500 ms);
//    each active client gets a slice proportional to its queue depth when
//    demand exceeds the interval, or exactly its drain cost otherwise.
//  * VariableIntervalScheduler — interval sized so every client drains its
//    queue (clamped to [min, max]).
//  * StaticScheduler — permanent equal slots for a fixed client set; the
//    schedule never changes, so it is broadcast with the reuse flag and
//    clients skip waking for subsequent schedule messages.
//  * SlottedStaticScheduler — the Figure 7 baseline: a fixed TCP slot (all
//    clients awake) followed by equal per-client UDP slots.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/observer.hpp"
#include "obs/hooks.hpp"
#include "proxy/bandwidth.hpp"
#include "proxy/schedule.hpp"
#include "sim/time.hpp"

namespace pp::proxy {

// Snapshot of one client's buffered downlink data at an SRP.
struct ClientDemand {
  net::Ipv4Addr ip;
  std::uint64_t udp_bytes = 0;
  std::uint64_t tcp_bytes = 0;
  // Queued datagram count (UDP keeps its original framing, so its channel
  // cost depends on the packet count, not just bytes).
  std::uint64_t udp_packets = 0;
  // Per-client channel quality at the SRP (default view when no channel
  // observer is wired: unknown, treated as good).
  channel::ChannelView channel{};
  // Time left before the oldest queued datagram exceeds the proxy's delay
  // target; the full target when nothing is queued.  A zero slack means
  // "already late" — policies must not defer such a client.
  sim::Duration deadline_slack{};

  std::uint64_t total() const { return udp_bytes + tcp_bytes; }
};

struct BuiltSchedule {
  sim::Duration interval;
  bool reuse_next = false;
  std::vector<ScheduleEntry> entries;  // sorted by rp_offset
};

struct SlotParams {
  // Gap between the SRP and the first burst: covers the schedule frame's
  // own airtime plus client wake slack.
  sim::Duration lead = sim::Time::ms(4);
  // Idle guard appended to each burst to absorb access-point jitter.
  sim::Duration burst_guard = sim::Time::ms(1);
  std::uint32_t mtu = 1400;
  std::uint32_t tcp_ack_bytes = 40;  // uplink ack airtime charged to TCP
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual BuiltSchedule build(const std::vector<ClientDemand>& demands,
                              const BandwidthEstimator& est) = 0;
  // Publish sched.policy.* counters (default: nothing to publish).  The
  // proxy forwards its own hook here at wiring time.
  virtual void set_obs(obs::Hook hook) { (void)hook; }
  // Size slots by the ChannelView's measured EWMA goodput when it is worse
  // than the calibrated nominal rate (see widened_cost).  Composes with
  // every demand-driven policy; the static schedules ignore per-client
  // costs, so it is rejected for them at the builder.
  void set_measured_goodput(bool on) { measured_goodput_ = on; }

 protected:
  // Drain cost for `d` including the burst guard, widened by the measured
  // goodput when enabled.  Widening only: a lucky EWMA above nominal must
  // not under-size the slot and cause an overrun the guard cannot absorb.
  sim::Duration widened_cost(const ClientDemand& d,
                             const BandwidthEstimator& est,
                             const SlotParams& sp) const;

  bool measured_goodput_ = false;
};

// -- Shared policy helpers ---------------------------------------------------------

// Channel time to drain one client's queue, TCP acks included.
sim::Duration demand_cost(const ClientDemand& d, const BandwidthEstimator& est,
                          const SlotParams& sp);

// Lay out entries back-to-back starting at `lead`, in the order given.
std::vector<ScheduleEntry> lay_out(
    const std::vector<std::pair<net::Ipv4Addr, sim::Duration>>& slots,
    sim::Duration lead);

// The slot non-overlap invariant (see src/check): true when two entries of
// one interval illegally share channel time.  TcpOnly pairs are exempt —
// the static TCP schedule deliberately gives all TCP clients one shared
// listening slot.  Used by the proxy's schedule_tick PP_CHECK and by the
// scheduler tests.
bool slots_conflict(const ScheduleEntry& a, const ScheduleEntry& b);

class FixedIntervalScheduler final : public Scheduler {
 public:
  explicit FixedIntervalScheduler(sim::Duration interval, SlotParams sp = {})
      : interval_{interval}, sp_{sp} {}
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;

 private:
  sim::Duration interval_;
  SlotParams sp_;
};

class VariableIntervalScheduler final : public Scheduler {
 public:
  VariableIntervalScheduler(sim::Duration min_interval = sim::Time::ms(100),
                            sim::Duration max_interval = sim::Time::ms(500),
                            SlotParams sp = {})
      : min_{min_interval}, max_{max_interval}, sp_{sp} {}
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;

 private:
  sim::Duration min_;
  sim::Duration max_;
  SlotParams sp_;
};

class StaticScheduler final : public Scheduler {
 public:
  StaticScheduler(sim::Duration interval, std::vector<net::Ipv4Addr> clients,
                  SlotParams sp = {})
      : interval_{interval}, clients_{std::move(clients)}, sp_{sp} {}
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;

 private:
  sim::Duration interval_;
  std::vector<net::Ipv4Addr> clients_;
  SlotParams sp_;
};

class SlottedStaticScheduler final : public Scheduler {
 public:
  // `tcp_weight` in (0, 1): fraction of the interval reserved for the TCP
  // slot, during which every client is awake.
  SlottedStaticScheduler(sim::Duration interval, double tcp_weight,
                         std::vector<net::Ipv4Addr> udp_clients,
                         std::vector<net::Ipv4Addr> tcp_clients,
                         SlotParams sp = {});
  BuiltSchedule build(const std::vector<ClientDemand>& demands,
                      const BandwidthEstimator& est) override;

 private:
  sim::Duration interval_;
  double tcp_weight_;
  std::vector<net::Ipv4Addr> udp_clients_;
  std::vector<net::Ipv4Addr> tcp_clients_;
  SlotParams sp_;
};

}  // namespace pp::proxy

// BurstSession — the proxy's single burst-emission API (Section 3.2.2).
//
// One session per scheduled slot per interval.  open() runs at the slot's
// rp_offset: it snapshots the client's chunk queue up to the slot budget
// (moving chunk views, never copying datagrams), plans the TCP allowance,
// arms the end-of-burst marker, and emits the whole raw chain as ONE
// batched medium reservation (a single airtime computation for the burst
// plus the marked terminator) instead of N per-packet sends.  close() runs
// at the slot's end and shuts the TCP send gates.
//
// The session is a transient view object (proxy reference + schedule
// entry, copied into the two slot timers) — cheap enough to construct in
// an event callback's inline storage, and self-contained so a schedule
// renegotiation that cancels the timers leaves nothing dangling.
//
// This replaces the old open_burst / close_burst / send_empty_burst_marker
// member trio; the mid-interval-shrink (departed client) skip, the
// graceful-leave drain accounting and the empty-burst marker all live
// behind this one interface now.
#pragma once

#include "proxy/schedule.hpp"

namespace pp::proxy {

class TransparentProxy;

class BurstSession {
 public:
  BurstSession(TransparentProxy& proxy, const ScheduleEntry& entry)
      : proxy_{proxy}, entry_{entry} {}

  // Slot start: snapshot, plan, mark, emit (one reservation), open gates.
  void open();
  // Slot end: close the client's TCP send gates.
  void close();

 private:
  void emit_empty_marker();

  TransparentProxy& proxy_;
  ScheduleEntry entry_;
};

}  // namespace pp::proxy

#include "proxy/burst.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "proxy/transparent_proxy.hpp"

namespace pp::proxy {

void BurstSession::open() {
  TransparentProxy& p = proxy_;
  // The demand set can shrink mid-interval: a client that departed between
  // the SRP and its slot must not have state re-created for a burst nobody
  // is listening to.  Its slot simply goes unused (non-overlap holds).
  const ClientId id = p.table_.find(entry_.client);
  if (id == kNoClient || p.table_.membership(id) == Membership::Departed) {
    ++p.stats_.bursts_skipped;
    return;
  }
  ++p.stats_.bursts_opened;
  sim::Duration budget = entry_.duration - p.params_.slots.burst_guard;
  if (budget < sim::Time::zero()) budget = sim::Time::zero();
  const double budget_s = budget.to_seconds();
  double spent_s = 0;

  // Phase 1: move buffered raw datagrams (UDP, or everything in
  // BufferedPassthrough mode) into the burst chain, paced by the send-cost
  // model.  Chunk views move between the queues; the datagrams stay put.
  net::ChunkQueue chain{p.chunk_pool_};
  net::ChunkQueue& pkt_q = p.table_.queue(id);
  if (entry_.kind != SlotKind::TcpOnly) {
    while (!pkt_q.empty()) {
      const std::uint32_t payload = pkt_q.front()->length;
      const double cost = p.estimator_.packet_cost(payload).to_seconds();
      if (spent_s + cost > budget_s) break;
      spent_s += cost;
      pkt_q.pop_front_to(chain);
      p.total_q_bytes_ -= payload;
      ++p.stats_.burst_packets;
    }
    PP_OBS(if (p.twg_queue_depth_ && !chain.empty())
               p.twg_queue_depth_->set(
                   p.sim_.now(), static_cast<double>(p.total_q_bytes_)));
  }

  // Phase 2: plan the TCP allowance for the remaining slot time.
  std::vector<TransparentProxy::BurstPlan>& plans = p.plan_scratch_;
  plans.clear();
  bool any_tcp = false;
  if (entry_.kind != SlotKind::UdpOnly && p.params_.mode == ProxyMode::Splice) {
    const sim::Duration remaining = sim::Time::seconds(budget_s - spent_s);
    std::uint64_t allowance = p.estimator_.payload_budget(
        remaining, p.params_.slots.mtu, p.params_.slots.tcp_ack_bytes);
    const std::vector<Splice*>& splices = p.table_.splices(id);
    plans.reserve(splices.size());
    for (Splice* s : splices) {
      const std::uint64_t pre = s->client_side->bytes_unsent();
      const std::uint64_t pre_use = std::min(allowance, pre);
      allowance -= pre_use;
      const std::uint64_t chunk = std::min(allowance, s->buffered);
      allowance -= chunk;
      plans.push_back({s, chunk, pre});
      if (chunk > 0 || pre > 0) any_tcp = true;
    }
    // Guaranteed progress: a scheduled burst always moves at least one
    // segment of buffered data, even if rounding left no allowance (the
    // burst guard absorbs the overrun).
    if (!any_tcp) {
      for (auto& pl : plans) {
        if (pl.splice->buffered > 0) {
          pl.chunk = std::min<std::uint64_t>(pl.splice->buffered,
                                             p.params_.slots.mtu);
          any_tcp = true;
          break;
        }
      }
    }
  }

  // Burst termination (Section 3.2.2): the very last packet of the burst
  // carries the mark.  TCP data is sent after raw packets, so if any TCP
  // bytes will flow, arm the last active splice's marker; otherwise mark
  // the chain's tail view; otherwise synthesize a tiny marked control
  // packet so the client can sleep (dynamic schedules only).
  Splice* marking = nullptr;
  bool need_empty_marker = false;
  if (any_tcp) {
    for (auto& pl : plans)
      if (pl.chunk > 0 || pl.pre_unsent > 0) marking = pl.splice;
  } else if (!chain.empty()) {
    chain.mark_tail();
  } else if (entry_.kind == SlotKind::Any) {
    need_empty_marker = true;  // sent after the gates open, see below
  }

  // Emit the raw chain as one batched reservation (single airtime
  // computation downstream); fall back to per-packet emission when no
  // burst transmitter is wired.
  std::uint64_t burst_bytes = chain.bytes();
  p.stats_.udp_bytes_burst += chain.bytes();
  if (!chain.empty()) {
    if (p.wireless_burst_tx_) {
      p.wireless_burst_tx_(std::move(chain));
    } else {
      while (!chain.empty()) p.wireless_tx_(chain.pop_packet());
    }
  }

  // Write planned bytes into the client-side sockets (gates still closed,
  // so nothing leaves yet), arming the marker before the final write.
  for (auto& pl : plans) {
    if (pl.splice == marking) {
      // If this burst drains the stream and the server has finished, the
      // connection closes right after: put the mark on the FIN itself.
      const bool closes_now =
          (pl.splice->server_fin && pl.splice->buffered == pl.chunk &&
           !pl.splice->client_side->fin_unacked()) ||
          pl.splice->client_side->close_pending();
      if (closes_now) {
        pl.splice->marker.arm_after_with_fin(pl.chunk);
      } else {
        pl.splice->marker.arm_after(pl.chunk);
      }
    }
    if (pl.chunk > 0) {
      pl.splice->server_side->consume(pl.chunk);
      pl.splice->buffered -= pl.chunk;
      pl.splice->marker.bytes_written(pl.chunk);
      pl.splice->client_side->send(pl.chunk);
      p.stats_.tcp_bytes_burst += pl.chunk;
      burst_bytes += pl.chunk;
    }
    p.maybe_finish_splice(*pl.splice);
  }
  // Open the gates: pre-unsent and new bytes flow, cwnd permitting.
  for (auto& pl : plans) pl.splice->client_side->set_send_gate(true);

  // The empty-burst marker goes out last so that control segments flushed
  // by the gate opening (FINs, deferred retransmissions) reach the client
  // before it sleeps on the mark.
  if (need_empty_marker) emit_empty_marker();

  if (p.table_.membership(id) == Membership::Draining && burst_bytes > 0) {
    p.stats_.churn_drained_bytes += burst_bytes;
    PP_OBS(if (auto* c = p.churn_counter(p.ctr_churn_drained_,
                                         "proxy.churn.drained_bytes"))
               c->inc(burst_bytes));
  }

  PP_OBS(if (p.hist_burst_bytes_) p.hist_burst_bytes_->observe(burst_bytes);
         if (auto* tl = p.obs_.timeline())
             tl->span(p.sim_.now(), entry_.duration, obs::EventKind::Burst,
                      entry_.client.raw(), burst_bytes));

  // A graceful leaver whose last queued byte just went out departs now
  // rather than waiting for the drain deadline.  (May destroy this burst's
  // splices — nothing below touches them.)
  p.maybe_finish_drain(id);
}

void BurstSession::close() {
  TransparentProxy& p = proxy_;
  if (entry_.kind == SlotKind::UdpOnly) return;
  const ClientId id = p.table_.find(entry_.client);
  if (id == kNoClient) return;
  for (Splice* s : p.table_.splices(id))
    s->client_side->set_send_gate(false);
}

void BurstSession::emit_empty_marker() {
  TransparentProxy& p = proxy_;
  net::Packet pkt = net::make_packet();
  pkt.src = p.params_.proxy_ip;
  pkt.src_port = kSchedulePort;
  pkt.dst = entry_.client;
  pkt.dst_port = kSchedulePort;
  pkt.proto = net::Protocol::Udp;
  pkt.payload = 16;
  pkt.marked = true;
  pkt.sent_at = p.sim_.now();
  ++p.stats_.empty_burst_markers;
  PP_OBS(if (p.ctr_empty_markers_) p.ctr_empty_markers_->inc();
         if (auto* tl = p.obs_.timeline())
             tl->record(p.sim_.now(), obs::EventKind::EmptyBurstMarker,
                        entry_.client.raw()));
  p.wireless_tx_(std::move(pkt));
}

}  // namespace pp::proxy

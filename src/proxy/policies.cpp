#include "proxy/policies.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace pp::proxy {

namespace {

// Stream tag folded into the run seed so policy draws are independent of
// the simulator's shared stream and of the other named streams (fault,
// channel).  Changing this constant changes every probabilistic-policy run.
constexpr std::uint64_t kPolicyStreamTag = 0x5C4ED001'BA5EBA11ULL;

// FixedInterval-style layout over the served subset: each client gets its
// full drain cost (per `cost_of`, so measured-goodput widening composes),
// shrunk proportionally to queue depth when the subset overcommits the
// interval (Section 3.2.1's rule, applied post-admission).
template <typename CostFn>
std::vector<std::pair<net::Ipv4Addr, sim::Duration>> fit_proportional(
    const std::vector<const ClientDemand*>& served, sim::Duration available,
    CostFn cost_of) {
  std::vector<std::pair<net::Ipv4Addr, sim::Duration>> slots;
  std::vector<std::uint64_t> bytes;
  slots.reserve(served.size());
  bytes.reserve(served.size());
  sim::Duration total = sim::Time::zero();
  std::uint64_t total_bytes = 0;
  for (const ClientDemand* d : served) {
    const sim::Duration cost = cost_of(*d);
    slots.emplace_back(d->ip, cost);
    bytes.push_back(d->total());
    total += cost;
    total_bytes += d->total();
  }
  if (total > available && total_bytes > 0) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const double share = static_cast<double>(bytes[i]) /
                           static_cast<double>(total_bytes);
      slots[i].second = sim::Time::ns(static_cast<std::int64_t>(
          share * static_cast<double>(available.count_ns())));
    }
  }
  return slots;
}

}  // namespace

sim::Rng policy_stream(std::uint64_t run_seed) {
  return sim::Rng{run_seed ^ kPolicyStreamTag};
}

// -- LongestQueueFirstScheduler ----------------------------------------------------

void LongestQueueFirstScheduler::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(if (auto* m = hook.metrics())
             ctr_starved_ = m->counter("sched.policy.lqf.starved"));
}

BuiltSchedule LongestQueueFirstScheduler::build(
    const std::vector<ClientDemand>& demands, const BandwidthEstimator& est) {
  const sim::Duration available = interval_ - sp_.lead;
  // Deepest queue first; stable sort keeps SRP (registration) order on ties
  // so the layout stays deterministic.
  std::vector<const ClientDemand*> active;
  active.reserve(demands.size());
  for (const ClientDemand& d : demands) {
    if (d.total() > 0) active.push_back(&d);
  }
  std::stable_sort(active.begin(), active.end(),
                   [](const ClientDemand* a, const ClientDemand* b) {
                     return a->total() > b->total();
                   });

  std::vector<std::pair<net::Ipv4Addr, sim::Duration>> slots;
  slots.reserve(active.size());
  sim::Duration used = sim::Time::zero();
  std::uint64_t starved = 0;
  for (const ClientDemand* d : active) {
    const sim::Duration remaining = available - used;
    // A slot shorter than the burst guard carries no data: starve instead
    // of emitting a useless (or zero-length) entry.
    if (remaining <= sp_.burst_guard) {
      ++starved;
      continue;
    }
    sim::Duration cost = widened_cost(*d, est, sp_);
    if (cost > remaining) cost = remaining;  // partial tail slot
    slots.emplace_back(d->ip, cost);
    used += cost;
  }
  PP_OBS(if (ctr_starved_ && starved > 0) ctr_starved_->inc(starved));
  return BuiltSchedule{interval_, false, lay_out(slots, sp_.lead)};
}

// -- ChannelAwareOpportunisticScheduler --------------------------------------------

void ChannelAwareOpportunisticScheduler::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(if (auto* m = hook.metrics()) {
    ctr_deferrals_ = m->counter("sched.policy.opp.deferrals");
    ctr_forced_ = m->counter("sched.policy.opp.forced");
  });
}

BuiltSchedule ChannelAwareOpportunisticScheduler::build(
    const std::vector<ClientDemand>& demands, const BandwidthEstimator& est) {
  const sim::Duration available = interval_ - sp_.lead;
  std::vector<const ClientDemand*> served;
  served.reserve(demands.size());
  std::uint64_t deferrals = 0;
  std::uint64_t forced = 0;
  for (const ClientDemand& d : demands) {
    if (d.total() == 0) {
      // Queue drained: the skip streak (if any) is over.
      deferred_.erase(d.ip.raw());
      continue;
    }
    int& skips = deferred_[d.ip.raw()];
    const bool bad = d.channel.bad();
    // Defer only while the oldest datagram can still make its deadline
    // after sitting out one more interval.
    const bool can_wait = d.deadline_slack > interval_;
    if (bad && can_wait && skips < max_deferrals_) {
      ++skips;
      ++deferrals;
      continue;
    }
    if (bad) ++forced;  // bad channel, but late or skip-capped: serve anyway
    skips = 0;
    served.push_back(&d);
  }
  PP_OBS(if (ctr_deferrals_ && deferrals > 0) ctr_deferrals_->inc(deferrals);
         if (ctr_forced_ && forced > 0) ctr_forced_->inc(forced));
  // Lay out the admitted set deepest-queue-first at full drain cost (the
  // LQF rule): under overcommit the airtime reclaimed from deferred
  // bad-channel clients must reach the deepest good-state queues whole,
  // not be smeared proportionally across every admitted slot.
  std::stable_sort(served.begin(), served.end(),
                   [](const ClientDemand* a, const ClientDemand* b) {
                     return a->total() > b->total();
                   });
  std::vector<std::pair<net::Ipv4Addr, sim::Duration>> slots;
  slots.reserve(served.size());
  sim::Duration used = sim::Time::zero();
  for (const ClientDemand* d : served) {
    const sim::Duration remaining = available - used;
    if (remaining <= sp_.burst_guard) break;  // tail starved this interval
    sim::Duration cost = widened_cost(*d, est, sp_);
    if (cost > remaining) cost = remaining;
    slots.emplace_back(d->ip, cost);
    used += cost;
  }
  return BuiltSchedule{interval_, false, lay_out(slots, sp_.lead)};
}

// -- BufferAwareProbabilisticScheduler ---------------------------------------------

BufferAwareProbabilisticScheduler::BufferAwareProbabilisticScheduler(
    sim::Duration interval, std::uint64_t run_seed,
    std::uint64_t threshold_bytes, SlotParams sp)
    : interval_{interval},
      threshold_bytes_{threshold_bytes},
      sp_{sp},
      rng_{policy_stream(run_seed)} {}

void BufferAwareProbabilisticScheduler::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(if (auto* m = hook.metrics()) {
    ctr_skips_ = m->counter("sched.policy.prob.skips");
    ctr_forced_ = m->counter("sched.policy.prob.forced");
  });
}

BuiltSchedule BufferAwareProbabilisticScheduler::build(
    const std::vector<ClientDemand>& demands, const BandwidthEstimator& est) {
  const sim::Duration available = interval_ - sp_.lead;
  std::vector<const ClientDemand*> served;
  served.reserve(demands.size());
  std::uint64_t skips = 0;
  std::uint64_t forced = 0;
  for (const ClientDemand& d : demands) {
    if (d.total() == 0) continue;
    const double q = static_cast<double>(d.total());
    const double p = q / (q + static_cast<double>(threshold_bytes_));
    // One admission draw per backlogged client per SRP, always consumed so
    // the stream position is a pure function of the demand snapshot.
    const bool admit = rng_.chance(p);
    const bool urgent = d.deadline_slack <= interval_;
    if (!admit && !urgent) {
      ++skips;
      continue;
    }
    if (!admit) ++forced;  // lost the draw but the deadline overrides it
    served.push_back(&d);
  }
  PP_OBS(if (ctr_skips_ && skips > 0) ctr_skips_->inc(skips);
         if (ctr_forced_ && forced > 0) ctr_forced_->inc(forced));
  const auto slots =
      fit_proportional(served, available, [&](const ClientDemand& d) {
        return widened_cost(d, est, sp_);
      });
  return BuiltSchedule{interval_, false, lay_out(slots, sp_.lead)};
}

}  // namespace pp::proxy

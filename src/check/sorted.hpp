// Deterministic iteration over unordered associative containers.
//
// Range-for over an unordered_map visits elements in bucket order, which
// depends on the hash function, the bucket count, and the insertion
// history — none of which are part of the simulation's deterministic
// contract (net::set_hash_salt exists precisely to perturb them).  Any
// loop whose side effects depend on visit order must iterate through one
// of these helpers instead; pp_lint rejects direct range-for over
// unordered containers outside an explicit allowlist.
//
// The helpers materialize a vector of pointers and sort it by key, so the
// container itself is not copied and values can be mutated through the
// returned references.
#pragma once

#include <algorithm>
#include <vector>

namespace pp::check {

// Pointers to the container's value_type (the pair), sorted by key.
// Usage:  for (auto* kv : check::sorted_items(map_)) use(kv->first, kv->second);
template <typename Map>
std::vector<typename Map::value_type*> sorted_items(Map& m) {
  std::vector<typename Map::value_type*> items;
  items.reserve(m.size());
  for (auto it = m.begin(); it != m.end(); ++it) items.push_back(&*it);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return items;
}

template <typename Map>
std::vector<const typename Map::value_type*> sorted_items(const Map& m) {
  std::vector<const typename Map::value_type*> items;
  items.reserve(m.size());
  for (auto it = m.begin(); it != m.end(); ++it) items.push_back(&*it);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return items;
}

// Just the keys, sorted.  For unordered_set, or when the loop body mutates
// the container (pointers into a rehashed map would dangle; keys copied
// here stay valid).
template <typename Container>
std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (auto it = c.begin(); it != c.end(); ++it) {
    if constexpr (requires { it->first; }) {
      keys.push_back(it->first);
    } else {
      keys.push_back(*it);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace pp::check

#include "check/audit.hpp"

#include "check/check.hpp"

namespace pp::check {

void Auditor::on_event(const obs::TimelineEvent& e) {
  ++audited_;
  PP_CHECK_AT(e.at >= last_at_, "check.auditor.monotonic", e.at);
  PP_CHECK_AT(e.dur >= sim::Time::zero(), "check.auditor.span", e.at);
  last_at_ = e.at;

  switch (e.kind) {
    case obs::EventKind::Sleep: {
      // Clients boot awake (WNIC idle), so a Sleep is legal as the first
      // event; two Sleeps without an intervening Wake are not.
      bool& awake = awake_.emplace(e.subject, true).first->second;
      PP_CHECK_AT(awake, "check.auditor.sleep_wake", e.at);
      awake = false;
      break;
    }
    case obs::EventKind::Wake: {
      bool& awake = awake_.emplace(e.subject, true).first->second;
      PP_CHECK_AT(!awake, "check.auditor.sleep_wake", e.at);
      awake = true;
      break;
    }
    case obs::EventKind::FaultStart: {
      const std::uint64_t key = (e.value << 32) | e.subject;
      ++fault_depth_[key];
      break;
    }
    case obs::EventKind::FaultEnd: {
      const std::uint64_t key = (e.value << 32) | e.subject;
      auto it = fault_depth_.find(key);
      PP_CHECK_AT(it != fault_depth_.end() && it->second > 0,
                  "check.auditor.fault_pairing", e.at);
      if (it != fault_depth_.end() && --it->second == 0)
        fault_depth_.erase(it);
      break;
    }
    default:
      break;
  }
}

void Auditor::finalize(sim::Time horizon) {
  PP_CHECK_AT(last_at_ <= horizon, "check.auditor.horizon", horizon);
  // Every fault window recovered before the end of the run.
  PP_CHECK_AT(fault_depth_.empty(), "check.auditor.fault_open", horizon);
}

}  // namespace pp::check

#include "check/audit.hpp"

#include "check/check.hpp"

namespace pp::check {

void Auditor::on_event(const obs::TimelineEvent& e) {
  ++audited_;
  PP_CHECK_AT(e.at >= last_at_, "check.auditor.monotonic", e.at);
  PP_CHECK_AT(e.dur >= sim::Time::zero(), "check.auditor.span", e.at);
  last_at_ = e.at;

  switch (e.kind) {
    case obs::EventKind::Sleep: {
      // Clients boot awake (WNIC idle), so a Sleep is legal as the first
      // event; two Sleeps without an intervening Wake are not.
      bool& awake = awake_.emplace(e.subject, true).first->second;
      PP_CHECK_AT(awake, "check.auditor.sleep_wake", e.at);
      awake = false;
      break;
    }
    case obs::EventKind::Wake: {
      bool& awake = awake_.emplace(e.subject, true).first->second;
      PP_CHECK_AT(!awake, "check.auditor.sleep_wake", e.at);
      awake = true;
      break;
    }
    default:
      break;
  }
}

void Auditor::finalize(sim::Time horizon) {
  PP_CHECK_AT(last_at_ <= horizon, "check.auditor.horizon", horizon);
}

}  // namespace pp::check

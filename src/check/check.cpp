#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pp::check {

namespace {

FailureHandler g_handler = nullptr;

}  // namespace

std::string format(const Violation& v) {
  std::ostringstream os;
  os << "[PP_CHECK] ";
  if (v.has_time) {
    // Render sim time inline (pp::sim's operator<< lives in pp_sim, which
    // this library must not link against — see CMakeLists.txt).
    const std::int64_t ns = v.at.count_ns();
    os << "t=" << static_cast<double>(ns) * 1e-9 << "s ";
  }
  os << v.component << ": invariant violated: " << v.expr << " (" << v.file
     << ":" << v.line << ")";
  return os.str();
}

FailureHandler set_failure_handler(FailureHandler h) {
  FailureHandler prev = g_handler;
  g_handler = h;
  return prev;
}

void throwing_handler(const Violation& v) { throw CheckError(v); }

namespace {

[[noreturn]] void dispatch(const Violation& v) {
  if (g_handler) g_handler(v);  // may throw instead of returning
  std::fprintf(stderr, "%s\n", format(v).c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void fail(const char* expr, const char* file, int line,
          const char* component) {
  dispatch(Violation{expr, file, line, component, false, sim::Time::zero()});
}

void fail_at(const char* expr, const char* file, int line,
             const char* component, sim::Time at) {
  dispatch(Violation{expr, file, line, component, true, at});
}

}  // namespace pp::check

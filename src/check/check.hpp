// PP_CHECK: machine-checked invariants with simulation context.
//
// Bare assert() is compiled out of the default RelWithDebInfo build, so the
// invariants it stated were never enforced in the configuration that tier-1
// actually runs.  PP_CHECK is active in every build unless
// -DPP_CHECK_DISABLED is given, and a violation reports the simulation time
// and the component that detected it before aborting — the two facts needed
// to replay a failure deterministically (the simulator is bit-deterministic,
// so "seed + sim time" pinpoints the event).
//
// Two forms:
//
//   PP_CHECK(cond, "sim.rng");               // no clock available
//   PP_CHECK_AT(cond, "net.access_point", sim_.now());
//
// Tests install a throwing handler (ScopedFailureHandler +
// throwing_handler) so fault-injection scenarios can assert that a
// deliberately violated invariant trips the right check without spawning
// death-test subprocesses.
#pragma once

#include <stdexcept>
#include <string>

#include "sim/time.hpp"

#if defined(PP_CHECK_DISABLED)
#define PP_CHECK_ENABLED 0
#else
#define PP_CHECK_ENABLED 1
#endif

namespace pp::check {

// A tripped invariant, as handed to the failure handler.
struct Violation {
  const char* expr;       // stringified condition
  const char* file;
  int line;
  const char* component;  // dotted component path, e.g. "proxy.splice"
  bool has_time;          // false when no simulation clock was in scope
  sim::Time at;           // sim time of the violation (when has_time)
};

// One-line human-readable rendering ("[PP_CHECK] t=1.204s proxy.splice ...").
std::string format(const Violation& v);

// Called on every violation.  The default handler prints format(v) to
// stderr; if the handler returns, the process aborts.  A test handler may
// throw instead (see throwing_handler).  Returns the previous handler.
using FailureHandler = void (*)(const Violation&);
FailureHandler set_failure_handler(FailureHandler h);

// Exception carrying a formatted violation; thrown by throwing_handler.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const Violation& v) : std::runtime_error(format(v)) {}
};

// Handler for tests: converts the violation into a CheckError.
[[noreturn]] void throwing_handler(const Violation& v);

// RAII installation of a failure handler for one scope.
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler h)
      : prev_{set_failure_handler(h)} {}
  ~ScopedFailureHandler() { set_failure_handler(prev_); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler prev_;
};

// Invoked by the macros; calls the handler, then aborts if it returns.
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       const char* component);
[[noreturn]] void fail_at(const char* expr, const char* file, int line,
                          const char* component, sim::Time at);

}  // namespace pp::check

#if PP_CHECK_ENABLED

#define PP_CHECK(cond, component)                                         \
  do {                                                                    \
    if (!(cond)) ::pp::check::fail(#cond, __FILE__, __LINE__, component); \
  } while (0)

#define PP_CHECK_AT(cond, component, now)                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pp::check::fail_at(#cond, __FILE__, __LINE__, component, now);      \
  } while (0)

#else  // PP_CHECK_ENABLED

// Disabled: the condition is not evaluated (assert semantics).  sizeof
// keeps the expression syntactically checked without odr-using anything.
#define PP_CHECK(cond, component) \
  do {                            \
    (void)sizeof(cond);           \
    (void)(component);            \
  } while (0)

#define PP_CHECK_AT(cond, component, now) \
  do {                                    \
    (void)sizeof(cond);                   \
    (void)(component);                    \
    (void)sizeof(now);                    \
  } while (0)

#endif  // PP_CHECK_ENABLED

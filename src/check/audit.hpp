// Runtime invariant auditor riding the observability stream.
//
// The Auditor attaches as the Timeline's sink (obs::TimelineSink), so every
// instrumented component that records an event is audited for free — no new
// hooks in the hot paths.  It enforces the cross-component invariants that
// cannot live inside any single component:
//
//   * Timeline monotonicity: events arrive in non-decreasing sim-time order
//     (the DES contract; a violation means an entity recorded against a
//     stale clock or the event queue mis-ordered).
//   * Sleep/wake alternation: a client radio cannot sleep twice without an
//     intervening wake (and vice versa).  Double transitions corrupt the
//     energy integral silently.
//   * Non-negative durations on spans.
//   * Fault pairing: every FaultStart has a matching FaultEnd with the same
//     (subject, kind-value) before end of run — an outage window that never
//     recovers would leave frozen queues that silently defeat the
//     conservation audits.  Overlapping windows of the same key nest.
//
// Per-component conservation invariants (packet conservation in the AP and
// proxy queues, WNIC energy residency, TCP splice byte conservation, slot
// non-overlap) live in the components themselves as PP_CHECK audits; the
// Testbed's finalize_audit() drives them at the end of a run.
#pragma once

#include <cstdint>
#include <map>

#include "obs/timeline.hpp"
#include "sim/time.hpp"

namespace pp::check {

class Auditor : public obs::TimelineSink {
 public:
  void on_event(const obs::TimelineEvent& e) override;

  // End-of-run check: the stream never ran past the horizon.
  void finalize(sim::Time horizon);

  std::uint64_t events_audited() const { return audited_; }

 private:
  std::uint64_t audited_ = 0;
  sim::Time last_at_ = sim::Time::zero();
  // Radio state per client subject; clients boot awake (WNIC idle).
  std::map<std::uint32_t, bool> awake_;
  // Open fault-window depth keyed by (kind-value << 32) | subject.
  std::map<std::uint64_t, int> fault_depth_;
};

}  // namespace pp::check

#include "energy/wnic.hpp"

#include "check/check.hpp"

namespace pp::energy {

std::uint32_t EnergyLedger::add_row(sim::Time start, WnicMode initial) {
  const std::uint32_t row = static_cast<std::uint32_t>(mode_.size());
  start_.push_back(start);
  last_change_.push_back(start);
  mode_.push_back(initial);
  in_mode_.emplace_back();
  transient_mj_.emplace_back();
  wake_transitions_.push_back(0);
  return row;
}

void EnergyLedger::reserve(std::size_t n) {
  start_.reserve(n);
  last_change_.reserve(n);
  mode_.reserve(n);
  in_mode_.reserve(n);
  transient_mj_.reserve(n);
  wake_transitions_.reserve(n);
}

void EnergyLedger::settle(std::uint32_t row, sim::Time now) {
  PP_CHECK_AT(now >= last_change_[row], "energy.accountant.settle", now);
  in_mode_[row][static_cast<std::size_t>(mode_[row])] +=
      now - last_change_[row];
  last_change_[row] = now;
}

void EnergyLedger::audit(std::uint32_t row, sim::Time now,
                         const char* component) const {
  // Energy conservation: every nanosecond between construction and `now`
  // is attributed to exactly one mode.  Requires finish(now) first so the
  // open residency interval is settled.
  // Auditing at a time before the last settled transition would make the
  // open-interval term below negative and could mask missing residency.
  PP_CHECK_AT(now >= last_change_[row], component, now);
  sim::Duration total = sim::Time::zero();
  for (const sim::Duration& d : in_mode_[row]) {
    PP_CHECK_AT(d >= sim::Time::zero(), component, now);
    total += d;
  }
  PP_CHECK_AT(total + (now - last_change_[row]) == now - start_[row],
              component, now);
}

void EnergyLedger::set_mode(std::uint32_t row, sim::Time now, WnicMode m) {
  if (m == mode_[row]) return;
  settle(row, now);
  if (mode_[row] == WnicMode::Sleep && m != WnicMode::Sleep)
    ++wake_transitions_[row];
  mode_[row] = m;
}

void EnergyLedger::add_transient(std::uint32_t row, WnicMode m,
                                 sim::Duration dur) {
  const double base = model_.mw(mode_[row]);
  const double actual = model_.mw(m);
  // Charge the difference: the base-mode time accrues normally via settle().
  transient_mj_[row][static_cast<std::size_t>(m)] +=
      (actual - base) * dur.to_seconds();
}

double EnergyLedger::energy_mj(std::uint32_t row, sim::Time now) const {
  double mj = 0;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    sim::Duration d = in_mode_[row][i];
    if (i == static_cast<std::size_t>(mode_[row])) d += now - last_change_[row];
    mj += model_.milliwatts[i] * d.to_seconds();
    mj += transient_mj_[row][i];
  }
  mj += wake_penalty_mj(row);
  return mj;
}

sim::Duration EnergyLedger::high_power_time(std::uint32_t row) const {
  sim::Duration d = sim::Time::zero();
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (i != static_cast<std::size_t>(WnicMode::Sleep)) d += in_mode_[row][i];
  }
  return d;
}

double optimal_energy_saved_fraction(const OptimalInput& in) {
  const auto& m = in.model;
  const double t = in.burst_receive_seconds;
  const double T = in.stream_seconds;
  const double e_opt = t * m.mw(WnicMode::Receive) +
                       (T - t) * m.mw(WnicMode::Sleep);
  const double e_naive = t * m.mw(WnicMode::Receive) +
                         (T - t) * m.mw(WnicMode::Idle);
  return 1.0 - e_opt / e_naive;
}

}  // namespace pp::energy

#include "energy/wnic.hpp"

#include "check/check.hpp"

namespace pp::energy {

void EnergyAccountant::settle(sim::Time now) {
  PP_CHECK_AT(now >= last_change_, "energy.accountant.settle", now);
  in_mode_[static_cast<std::size_t>(mode_)] += now - last_change_;
  last_change_ = now;
}

void EnergyAccountant::audit(sim::Time now, const char* component) const {
  // Energy conservation: every nanosecond between construction and `now`
  // is attributed to exactly one mode.  Requires finish(now) first so the
  // open residency interval is settled.
  // Auditing at a time before the last settled transition would make the
  // open-interval term below negative and could mask missing residency.
  PP_CHECK_AT(now >= last_change_, component, now);
  sim::Duration total = sim::Time::zero();
  for (const sim::Duration& d : in_mode_) {
    PP_CHECK_AT(d >= sim::Time::zero(), component, now);
    total += d;
  }
  PP_CHECK_AT(total + (now - last_change_) == now - start_, component, now);
}

void EnergyAccountant::set_mode(sim::Time now, WnicMode m) {
  if (m == mode_) return;
  settle(now);
  if (mode_ == WnicMode::Sleep && m != WnicMode::Sleep) ++wake_transitions_;
  mode_ = m;
}

void EnergyAccountant::add_transient(WnicMode m, sim::Duration dur) {
  const double base = model_.mw(mode_);
  const double actual = model_.mw(m);
  // Charge the difference: the base-mode time accrues normally via settle().
  transient_mj_[static_cast<std::size_t>(m)] +=
      (actual - base) * dur.to_seconds();
}

double EnergyAccountant::energy_mj(sim::Time now) const {
  double mj = 0;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    sim::Duration d = in_mode_[i];
    if (i == static_cast<std::size_t>(mode_)) d += now - last_change_;
    mj += model_.milliwatts[i] * d.to_seconds();
    mj += transient_mj_[i];
  }
  mj += wake_penalty_mj();
  return mj;
}

sim::Duration EnergyAccountant::high_power_time() const {
  sim::Duration d = sim::Time::zero();
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (i != static_cast<std::size_t>(WnicMode::Sleep)) d += in_mode_[i];
  }
  return d;
}

double optimal_energy_saved_fraction(const OptimalInput& in) {
  const auto& m = in.model;
  const double t = in.burst_receive_seconds;
  const double T = in.stream_seconds;
  const double e_opt = t * m.mw(WnicMode::Receive) +
                       (T - t) * m.mw(WnicMode::Sleep);
  const double e_naive = t * m.mw(WnicMode::Receive) +
                         (T - t) * m.mw(WnicMode::Idle);
  return 1.0 - e_opt / e_naive;
}

}  // namespace pp::energy

// WNIC power modelling.
//
// Power numbers are the paper's 2.4 GHz WaveLAN DSSS figures (Stemm et al.
// and Havinga): idle 1319 mW, receive 1425 mW, transmit 1675 mW, sleep
// 177 mW; a sleep->idle transition costs the equivalent of 2 ms of idle
// time (Krashinsky & Balakrishnan).
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace pp::energy {

enum class WnicMode : std::uint8_t { Sleep = 0, Idle = 1, Receive = 2, Transmit = 3 };
inline constexpr std::size_t kNumModes = 4;

inline const char* to_string(WnicMode m) {
  switch (m) {
    case WnicMode::Sleep: return "sleep";
    case WnicMode::Idle: return "idle";
    case WnicMode::Receive: return "receive";
    case WnicMode::Transmit: return "transmit";
  }
  return "?";
}

struct WnicPowerModel {
  // Milliwatts (== mJ per second) per mode, indexed by WnicMode.
  std::array<double, kNumModes> milliwatts{177.0, 1319.0, 1425.0, 1675.0};
  // Energy penalty of a sleep->idle transition, expressed as idle time.
  sim::Duration wake_transition = sim::Time::ms(2);

  double mw(WnicMode m) const {
    return milliwatts[static_cast<std::size_t>(m)];
  }
  double wake_energy_mj() const {
    return mw(WnicMode::Idle) * wake_transition.to_seconds();
  }

  static WnicPowerModel wavelan() { return {}; }
};

// Integrates energy over a WNIC mode timeline.  Call set_mode() at each
// transition; totals are exact (piecewise-constant integration).
class EnergyAccountant {
 public:
  explicit EnergyAccountant(WnicPowerModel model, sim::Time start,
                            WnicMode initial = WnicMode::Idle)
      : model_{model}, start_{start}, last_change_{start}, mode_{initial} {}

  WnicMode mode() const { return mode_; }

  // Transition to a new mode at `now`.  A sleep->high transition charges
  // the wake penalty.  Transitions to the current mode are no-ops.
  void set_mode(sim::Time now, WnicMode m);

  // Account `dur` of a transient mode (receive/transmit) inside the current
  // mode without changing it — used for per-frame airtime while idle.
  void add_transient(WnicMode m, sim::Duration dur);

  // Settle the current mode's residency up to `now` (call before reading
  // time_in()/high_power_time() mid-run or at the end of a run).
  void finish(sim::Time now) { settle(now); }

  // -- Results ---------------------------------------------------------------
  double energy_mj(sim::Time now) const;
  sim::Duration time_in(WnicMode m) const {
    return in_mode_[static_cast<std::size_t>(m)];
  }
  // Total time in any high-power mode (everything but sleep).
  sim::Duration high_power_time() const;
  std::uint64_t wake_transitions() const { return wake_transitions_; }
  double wake_penalty_mj() const {
    return static_cast<double>(wake_transitions_) * model_.wake_energy_mj();
  }

  const WnicPowerModel& model() const { return model_; }

  // Invariant audit (see src/check/): mode residencies partition the
  // whole [start, now) interval — Σ time_in(mode) == now - start.
  // `component` names the owning client in the violation report.
  void audit(sim::Time now, const char* component) const;

 private:
  void settle(sim::Time now);

  WnicPowerModel model_;
  sim::Time start_;
  sim::Time last_change_;
  WnicMode mode_;
  std::array<sim::Duration, kNumModes> in_mode_{};
  std::array<double, kNumModes> transient_mj_{};
  std::uint64_t wake_transitions_ = 0;
};

// The paper's closed-form optimal energy saving (Section 4.3):
//
//            E_opt       t_opt * P_recv + (T - t_opt) * P_sleep + b * E_byte
//  saved = 1 ------- = 1 ----------------------------------------------------
//            E_naive      t_nop * P_recv + (T - t_nop) * P_idle + b * E_byte
//
// where t_opt is the time to receive the whole stream back-to-back, T the
// stream duration without the proxy, b the bytes received and E_byte the
// per-byte receive cost.  We fold the per-byte cost into the receive-mode
// power (receive airtime scales with bytes), matching how the trace
// analyzer accounts energy.
struct OptimalInput {
  double stream_seconds;        // T: wall-clock length of the download
  double burst_receive_seconds; // t_opt: airtime to receive all bytes
  WnicPowerModel model{};
};

double optimal_energy_saved_fraction(const OptimalInput& in);

}  // namespace pp::energy

// WNIC power modelling.
//
// Power numbers are the paper's 2.4 GHz WaveLAN DSSS figures (Stemm et al.
// and Havinga): idle 1319 mW, receive 1425 mW, transmit 1675 mW, sleep
// 177 mW; a sleep->idle transition costs the equivalent of 2 ms of idle
// time (Krashinsky & Balakrishnan).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace pp::energy {

enum class WnicMode : std::uint8_t { Sleep = 0, Idle = 1, Receive = 2, Transmit = 3 };
inline constexpr std::size_t kNumModes = 4;

inline const char* to_string(WnicMode m) {
  switch (m) {
    case WnicMode::Sleep: return "sleep";
    case WnicMode::Idle: return "idle";
    case WnicMode::Receive: return "receive";
    case WnicMode::Transmit: return "transmit";
  }
  return "?";
}

struct WnicPowerModel {
  // Milliwatts (== mJ per second) per mode, indexed by WnicMode.
  std::array<double, kNumModes> milliwatts{177.0, 1319.0, 1425.0, 1675.0};
  // Energy penalty of a sleep->idle transition, expressed as idle time.
  sim::Duration wake_transition = sim::Time::ms(2);

  double mw(WnicMode m) const {
    return milliwatts[static_cast<std::size_t>(m)];
  }
  double wake_energy_mj() const {
    return mw(WnicMode::Idle) * wake_transition.to_seconds();
  }

  static WnicPowerModel wavelan() { return {}; }
};

// Flat column storage for a fleet of WNIC energy timelines.  One ledger
// holds every client of a testbed: the hot per-transition fields
// (last_change, mode) live in dense vectors indexed by row, so a 100k-client
// run touches contiguous memory instead of 100k heap-scattered accountants.
// All rows share one power model — a fleet is homogeneous by construction.
//
// Rows are handed out by add_row() and never reclaimed; the ledger is
// append-only for the lifetime of a run, so row indices stay stable and a
// reserve() up front makes registration allocation-free.
class EnergyLedger {
 public:
  explicit EnergyLedger(WnicPowerModel model = WnicPowerModel{})
      : model_{model} {}

  std::uint32_t add_row(sim::Time start, WnicMode initial);
  void reserve(std::size_t n);
  std::size_t size() const { return mode_.size(); }

  const WnicPowerModel& model() const { return model_; }

  WnicMode mode(std::uint32_t row) const { return mode_[row]; }
  void set_mode(std::uint32_t row, sim::Time now, WnicMode m);
  void add_transient(std::uint32_t row, WnicMode m, sim::Duration dur);
  void finish(std::uint32_t row, sim::Time now) { settle(row, now); }

  double energy_mj(std::uint32_t row, sim::Time now) const;
  sim::Duration time_in(std::uint32_t row, WnicMode m) const {
    return in_mode_[row][static_cast<std::size_t>(m)];
  }
  sim::Duration high_power_time(std::uint32_t row) const;
  std::uint64_t wake_transitions(std::uint32_t row) const {
    return wake_transitions_[row];
  }
  double wake_penalty_mj(std::uint32_t row) const {
    return static_cast<double>(wake_transitions_[row]) *
           model_.wake_energy_mj();
  }

  void audit(std::uint32_t row, sim::Time now, const char* component) const;

 private:
  void settle(std::uint32_t row, sim::Time now);

  WnicPowerModel model_;
  // Column vectors, all indexed by row.  The per-transition hot path reads
  // and writes only last_change_/mode_/in_mode_.
  std::vector<sim::Time> start_;
  std::vector<sim::Time> last_change_;
  std::vector<WnicMode> mode_;
  std::vector<std::array<sim::Duration, kNumModes>> in_mode_;
  std::vector<std::array<double, kNumModes>> transient_mj_;
  std::vector<std::uint64_t> wake_transitions_;
};

// Integrates energy over one WNIC mode timeline.  Call set_mode() at each
// transition; totals are exact (piecewise-constant integration).
//
// This is a row handle into an EnergyLedger.  Two construction modes:
//   * ledger-backed: the row lives in a shared fleet ledger (Testbed owns
//     one per run) — flat SoA state, cheap to scale;
//   * standalone: the legacy (model, start) ctor keeps working for tools
//     and tests by owning a private single-row ledger.
class EnergyAccountant {
 public:
  explicit EnergyAccountant(WnicPowerModel model, sim::Time start,
                            WnicMode initial = WnicMode::Idle)
      : owned_{std::make_unique<EnergyLedger>(model)},
        ledger_{owned_.get()},
        row_{ledger_->add_row(start, initial)} {}

  EnergyAccountant(EnergyLedger& ledger, sim::Time start,
                   WnicMode initial = WnicMode::Idle)
      : ledger_{&ledger}, row_{ledger.add_row(start, initial)} {}

  EnergyAccountant(const EnergyAccountant&) = delete;
  EnergyAccountant& operator=(const EnergyAccountant&) = delete;
  // Moving a standalone accountant must re-point the handle at the ledger
  // that moved with it.
  EnergyAccountant(EnergyAccountant&& o) noexcept
      : owned_{std::move(o.owned_)},
        ledger_{owned_ ? owned_.get() : o.ledger_},
        row_{o.row_} {}
  EnergyAccountant& operator=(EnergyAccountant&&) = delete;

  WnicMode mode() const { return ledger_->mode(row_); }

  // Transition to a new mode at `now`.  A sleep->high transition charges
  // the wake penalty.  Transitions to the current mode are no-ops.
  void set_mode(sim::Time now, WnicMode m) { ledger_->set_mode(row_, now, m); }

  // Account `dur` of a transient mode (receive/transmit) inside the current
  // mode without changing it — used for per-frame airtime while idle.
  void add_transient(WnicMode m, sim::Duration dur) {
    ledger_->add_transient(row_, m, dur);
  }

  // Settle the current mode's residency up to `now` (call before reading
  // time_in()/high_power_time() mid-run or at the end of a run).
  void finish(sim::Time now) { ledger_->finish(row_, now); }

  // -- Results ---------------------------------------------------------------
  double energy_mj(sim::Time now) const {
    return ledger_->energy_mj(row_, now);
  }
  sim::Duration time_in(WnicMode m) const {
    return ledger_->time_in(row_, m);
  }
  // Total time in any high-power mode (everything but sleep).
  sim::Duration high_power_time() const {
    return ledger_->high_power_time(row_);
  }
  std::uint64_t wake_transitions() const {
    return ledger_->wake_transitions(row_);
  }
  double wake_penalty_mj() const { return ledger_->wake_penalty_mj(row_); }

  const WnicPowerModel& model() const { return ledger_->model(); }

  // Invariant audit (see src/check/): mode residencies partition the
  // whole [start, now) interval — Σ time_in(mode) == now - start.
  // `component` names the owning client in the violation report.
  void audit(sim::Time now, const char* component) const {
    ledger_->audit(row_, now, component);
  }

 private:
  std::unique_ptr<EnergyLedger> owned_;  // standalone mode only
  EnergyLedger* ledger_;
  std::uint32_t row_;
};

// The paper's closed-form optimal energy saving (Section 4.3):
//
//            E_opt       t_opt * P_recv + (T - t_opt) * P_sleep + b * E_byte
//  saved = 1 ------- = 1 ----------------------------------------------------
//            E_naive      t_nop * P_recv + (T - t_nop) * P_idle + b * E_byte
//
// where t_opt is the time to receive the whole stream back-to-back, T the
// stream duration without the proxy, b the bytes received and E_byte the
// per-byte receive cost.  We fold the per-byte cost into the receive-mode
// power (receive airtime scales with bytes), matching how the trace
// analyzer accounts energy.
struct OptimalInput {
  double stream_seconds;        // T: wall-clock length of the download
  double burst_receive_seconds; // t_opt: airtime to receive all bytes
  WnicPowerModel model{};
};

double optimal_energy_saved_fraction(const OptimalInput& in);

}  // namespace pp::energy

#include "exp/multicell.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "check/check.hpp"
#include "exp/digest.hpp"
#include "exp/parallel.hpp"

namespace pp::exp {

namespace {

// Backbone arrivals enter the destination cell as plain UDP datagrams on
// this well-known port; clients have no listener (the payload is sink
// traffic), but the datagram still rides the full proxy downlink path.
constexpr net::Port kBackbonePort = 7977;

}  // namespace

Cell::Cell(int id, const MultiCellConfig& cfg)
    : id_{id}, num_cells_{cfg.num_cells}, cross_{cfg.cross} {
  ScenarioConfig cell_cfg = cfg.cell;
  // Statistically independent cells, each individually reproducible.
  cell_cfg.seed = cfg.cell.seed + 9973ULL * static_cast<std::uint64_t>(id);
  run_ = std::make_unique<ScenarioRun>(cell_cfg, [this](Testbed& bed) {
    // pp-lint: allow(hot-path-alloc): once per cell at construction
    gateway_ = &bed.add_server("backbone" + std::to_string(id_));
  });
  gw_sock_ = std::make_unique<transport::UdpSocket>(*gateway_, kBackbonePort);

  if (cross_.enabled && num_cells_ > 1 && cross_.fanout > 0) {
    // Phase-stagger emissions by cell id so the backbone exchange pattern
    // interleaves deterministically instead of synchronizing.
    const sim::Duration phase = sim::Time::ns(
        cross_.period.count_ns() * id_ / num_cells_);
    const sim::Time first = sim::Time::seconds(cross_.start_s) + phase;
    run_->bed().sim().at(first, [this] { emit(run_->bed().sim().now()); });
    // Start the round-robin cursors at this cell's id so the first targets
    // differ across cells.
    rr_cell_ = id_;
  }
}

void Cell::emit(sim::Time now) {
  const int clients_per_cell =
      static_cast<int>(run_->config().roles.size());
  outbox_.reserve(outbox_.size() + static_cast<std::size_t>(cross_.fanout));
  for (int k = 0; k < cross_.fanout; ++k) {
    rr_cell_ = (rr_cell_ + 1) % num_cells_;
    if (rr_cell_ == id_) rr_cell_ = (rr_cell_ + 1) % num_cells_;
    outbox_.push_back(Msg{rr_cell_, rr_client_ % clients_per_cell,
                          cross_.bytes, now});
    ++rr_client_;
  }
  run_->bed().sim().at(now + cross_.period,
                       [this] { emit(run_->bed().sim().now()); });
}

void Cell::inject(const Msg& m, sim::Time at) {
  transport::UdpSocket* sock = gw_sock_.get();
  const net::Ipv4Addr dst = testbed_client_ip(m.dst_client);
  const std::uint32_t bytes = m.bytes;
  run_->bed().sim().at(
      at, [sock, dst, bytes] { sock->send_to(dst, kBackbonePort, bytes); });
}

MultiCellTestbed::MultiCellTestbed(const MultiCellConfig& cfg) : cfg_{cfg} {
  if (cfg.num_cells < 1)
    throw std::invalid_argument("MultiCellTestbed: num_cells must be >= 1");
  if (cfg.backbone_latency <= sim::Time::zero())
    throw std::invalid_argument(
        "MultiCellTestbed: backbone_latency must be positive (it is the "
        "epoch length)");
  cells_.reserve(static_cast<std::size_t>(cfg.num_cells));
  for (int c = 0; c < cfg.num_cells; ++c)
    cells_.push_back(std::make_unique<Cell>(c, cfg));
}

MultiCellTestbed::~MultiCellTestbed() = default;

MultiCellResult MultiCellTestbed::run(unsigned threads,
                                      const std::vector<int>& cell_order) {
  const sim::Time horizon = sim::Time::seconds(cfg_.cell.duration_s);
  const sim::Duration epoch = cfg_.backbone_latency;

  std::vector<int> order(cells_.size());
  if (cell_order.empty()) {
    std::iota(order.begin(), order.end(), 0);
  } else {
    PP_CHECK(cell_order.size() == cells_.size(),
             "exp.multicell.order_size");
    order = cell_order;
  }

  sim::Time t = sim::Time::zero();
  while (t < horizon) {
    const sim::Time t_next = std::min(t + epoch, horizon);
    // Advance every cell one epoch in parallel; a cell touches only its
    // own simulator, so the only shared state is the task queue itself.
    // pp-lint: allow(hot-path-alloc): one task list per epoch, not per event
    std::vector<std::function<int()>> tasks;
    tasks.reserve(order.size());
    for (const int idx : order) {
      Cell* cell = cells_[static_cast<std::size_t>(idx)].get();
      tasks.push_back([cell, t_next] {
        cell->advance(t_next);
        return 0;
      });
    }
    run_parallel(tasks, threads);
    // Epoch barrier: route every outbox in cell-id order (NOT dispatch
    // order — routing must not depend on the permutation above).  A
    // message sent during [t, t_next) arrives at send + L, which is >=
    // t_next = every cell's current clock: never in anyone's past.
    for (auto& src : cells_) {
      for (const Cell::Msg& m : src->outbox()) {
        const sim::Time at = m.sent_at + cfg_.backbone_latency;
        Cell& dst = *cells_[static_cast<std::size_t>(m.dst_cell)];
        PP_CHECK_AT(at >= t_next, "exp.multicell.backbone_causality", at);
        dst.inject(m, at);
        ++backbone_messages_;
      }
      src->outbox().clear();
    }
    t = t_next;
  }

  // Teardown: finalize and collect serially in cell-id order; fold the
  // per-cell observer digests and merge the per-cell registries in that
  // same fixed order so the results are independent of worker count.
  MultiCellResult res;
  res.cells.reserve(cells_.size());
  res.backbone_messages = backbone_messages_;
  std::uint64_t digest = kFnvOffset;
  bool any_obs = false;
  for (auto& cp : cells_) {
    res.cells.push_back(cp->run().finish());
    res.events_total += cp->run().bed().sim().events_fired();
    if (auto obs = cp->run().bed().observer()) {
      digest = fnv1a_u64(digest, observer_digest(*obs));
      any_obs = true;
      res.merged.merge_from(obs->metrics);
    }
  }
  res.digest = any_obs ? digest : 0;
  return res;
}

MultiCellResult run_multicell(const MultiCellConfig& cfg, unsigned threads) {
  MultiCellTestbed bed{cfg};
  return bed.run(threads);
}

}  // namespace pp::exp

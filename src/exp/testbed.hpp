// Experiment testbed: the full topology of Figure 1.
//
//   servers --- 100 Mbps Ethernet --- [transparent proxy] --- access point
//                                                                  |
//                                       shared 11 Mbps wireless medium
//                                          |        |          |
//                                       client1  client2 ... monitoring
//                                                             station
//
// The proxy is the LAN's default (bridge) port, so all traffic destined to
// wireless clients flows through it, and a point-to-point link joins it to
// the access point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "channel/model.hpp"
#include "check/audit.hpp"
#include "client/energy_client.hpp"
#include "fault/plan.hpp"
#include "net/access_point.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/wireless.hpp"
#include "obs/observer.hpp"
#include "proxy/scheduler.hpp"
#include "proxy/transparent_proxy.hpp"
#include "sim/simulator.hpp"
#include "trace/monitor.hpp"

namespace pp::exp {

struct TestbedParams {
  std::uint64_t seed = 1;
  int num_clients = 10;
  net::WiredParams lan{};          // 100 Mbps Fast Ethernet
  net::WiredParams proxy_ap{};     // proxy <-> AP link
  net::WirelessParams wireless{};  // shared 11 Mbps medium
  net::AccessPointParams ap{};
  client::ClientParams client{};
  proxy::ProxyParams proxy{};
  // Fault-injection plan (see src/fault/).  When any() is true a FaultPlan
  // is constructed from the run seed and wired to the medium, AP, the
  // proxy <-> AP link, and the proxy's pause control; arm() runs at start().
  fault::FaultSpec fault{};
  // Channel-quality model (see src/channel/).  When enabled a ChannelModel
  // with per-client deterministic streams replaces the medium's flat p_loss
  // and the proxy observes per-client state at each SRP.  Mutually
  // exclusive with `fault` — the FaultPlan owns the loss model on faulted
  // runs (its GE chain is exposed to the proxy as a read-only observer).
  channel::ChannelSpec channel{};
  // Attach a MetricsRegistry + Timeline to every component.  Disable to
  // run with all instrumentation hooks detached (near-zero overhead; see
  // bench/micro_obs_overhead.cpp for the compile-time-off path).
  bool observe = true;
  // Attach the observer hook to every individual client (awake time-gauge
  // per client, per-client timeline events).  At 100k clients that is the
  // dominant observability cost, so scale runs disable it and keep the
  // cell-level streams (proxy, AP, medium) only.  No effect when
  // `observe` is false.
  bool per_client_obs = true;
};

class Testbed {
 public:
  Testbed(TestbedParams params, std::unique_ptr<proxy::Scheduler> scheduler);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // -- Topology access ------------------------------------------------------------
  sim::Simulator& sim() { return sim_; }
  net::WirelessMedium& medium() { return medium_; }
  proxy::TransparentProxy& proxy() { return *proxy_; }
  trace::MonitoringStation& monitor() { return monitor_; }
  net::AccessPoint& access_point() { return ap_; }

  // The unified observer (null when params.observe is false or the build
  // defines PP_OBS_DISABLED).  Shared so results can outlive the testbed.
  std::shared_ptr<obs::Observer> observer() { return observer_; }
  obs::MetricsRegistry* metrics() {
    return observer_ ? &observer_->metrics : nullptr;
  }
  obs::Timeline* timeline() {
    return observer_ ? &observer_->timeline : nullptr;
  }

  // Add a wired server (10.0.0.<n>).  Must precede start().
  net::Node& add_server(const std::string& name);

  int num_clients() const { return static_cast<int>(clients_.size()); }
  client::EnergyAwareClient& client(int i) { return *clients_.at(i); }
  net::Ipv4Addr client_ip(int i) const { return clients_.at(i)->ip(); }
  std::vector<net::Ipv4Addr> client_ips() const;

  // Calibrate the proxy's cost model, start the schedule loop at
  // `first_srp`, and start every client daemon.
  void start(sim::Time first_srp = sim::Time::ms(500));

  void run_until(sim::Time t) { sim_.run_until(t); }

  // Run every component's invariant audit (see src/check/): AP and proxy
  // packet/byte conservation, per-client energy accounting, and the
  // streaming timeline auditor's horizon check.  Call at the end of a run;
  // aborts (or throws under a test handler) on the first violation.
  void finalize_audit(sim::Time horizon);

  // Snapshot the event engine's sim.events.* / sim.alloc.* counters into
  // the metrics registry (no-op when not observing; idempotent).  Called
  // by finalize_audit; exposed for drivers that skip the audit.
  void publish_sim_metrics();

  // The streaming timeline auditor (null when not observing).
  check::Auditor* auditor() { return auditor_.get(); }
  // The fault plan (null when params.fault is empty).
  fault::FaultPlan* fault_plan() { return fault_.get(); }
  // The channel model (null unless params.channel.enabled).
  channel::ChannelModel* channel_model() { return channel_.get(); }

 private:
  TestbedParams params_;
  sim::Simulator sim_;
  net::EthernetLan lan_;
  std::unique_ptr<proxy::TransparentProxy> proxy_;
  net::EthernetLan::PortId bridge_port_;
  net::WirelessMedium medium_;
  net::AccessPoint ap_;
  std::unique_ptr<net::PointToPointLink> proxy_ap_link_;
  std::unique_ptr<net::ChannelSink> ap_uplink_sink_;
  trace::MonitoringStation monitor_;
  std::unique_ptr<fault::FaultPlan> fault_;
  std::unique_ptr<channel::ChannelModel> channel_;
  std::shared_ptr<obs::Observer> observer_;
  std::unique_ptr<check::Auditor> auditor_;
  // Fleet-wide flat energy state; every client's accountant is a row
  // handle into this ledger.  Must outlive clients_ (declared before it).
  energy::EnergyLedger energy_ledger_;
  std::vector<std::unique_ptr<client::EnergyAwareClient>> clients_;
  std::vector<std::unique_ptr<net::Node>> servers_;
  int next_server_ = 1;
  bool started_ = false;
  bool sim_metrics_published_ = false;
};

// Client address helper: 16-bit index over the low two octets —
// 172.16.<(i+1)>>8>.<(i+1)&0xff>; the first 255 clients keep the
// historical 172.16.0.<i+1> form.
net::Ipv4Addr testbed_client_ip(int i);

}  // namespace pp::exp

// Multi-seed replication: run one scenario under several seeds in parallel
// and summarize the distribution of a metric — the usual way to check that
// a single-seed result is not a fluke.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/scenario.hpp"

namespace pp::exp {

struct ReplicateStats {
  double mean = 0, stddev = 0, min = 0, max = 0;
  int n = 0;
  // Half-width of a ~95% normal confidence interval on the mean.
  double ci95() const {
    return n > 1 ? 1.96 * stddev / std::sqrt(static_cast<double>(n)) : 0;
  }
};

inline ReplicateStats summarize_samples(const std::vector<double>& xs) {
  ReplicateStats s;
  s.n = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  s.min = s.max = xs[0];
  for (double x : xs) {
    s.mean += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean /= s.n;
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / (s.n - 1)) : 0;
  return s;
}

// Run `cfg` under seeds base_seed .. base_seed+replicas-1 and summarize
// `metric(result)` across the runs.
inline ReplicateStats replicate(
    ScenarioConfig cfg, int replicas,
    const std::function<double(const ScenarioResult&)>& metric,
    std::uint64_t base_seed = 1000) {
  std::vector<std::function<double()>> tasks;
  tasks.reserve(replicas);
  for (int r = 0; r < replicas; ++r) {
    ScenarioConfig c = cfg;
    c.seed = base_seed + static_cast<std::uint64_t>(r);
    tasks.emplace_back([c, &metric] { return metric(run_scenario(c)); });
  }
  return summarize_samples(run_parallel(tasks));
}

// Convenience: mean energy saved (%) across all clients.
inline ReplicateStats replicate_saved(ScenarioConfig cfg, int replicas,
                                      std::uint64_t base_seed = 1000) {
  return replicate(
      std::move(cfg), replicas,
      [](const ScenarioResult& r) { return summarize_all(r.clients).avg; },
      base_seed);
}

}  // namespace pp::exp

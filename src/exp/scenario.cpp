#include "exp/scenario.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "proxy/policies.hpp"
#include "workload/ftp.hpp"
#include "workload/video.hpp"
#include "workload/web.hpp"

namespace pp::exp {

std::string role_name(int role) {
  if (role == kRoleWeb) return "TCP/web";
  if (role == kRoleFtp) return "TCP/ftp";
  if (role == kRoleIdle) return "idle";
  return std::to_string(workload::kFidelities[role].nominal_kbps) + "K";
}

std::string policy_name(IntervalPolicy p) {
  switch (p) {
    case IntervalPolicy::Fixed100: return "100ms";
    case IntervalPolicy::Fixed500: return "500ms";
    case IntervalPolicy::Variable: return "variable";
    case IntervalPolicy::StaticEqual100: return "static-100ms";
    case IntervalPolicy::SlottedStatic500: return "slotted-500ms";
    case IntervalPolicy::LongestQueue500: return "lqf-500ms";
    case IntervalPolicy::Opportunistic500: return "opportunistic-500ms";
    case IntervalPolicy::Probabilistic500: return "probabilistic-500ms";
  }
  return "?";
}

namespace {

std::unique_ptr<proxy::Scheduler> make_scheduler(const ScenarioConfig& cfg) {
  std::vector<net::Ipv4Addr> all, udp, tcp;
  all.reserve(cfg.roles.size());
  udp.reserve(cfg.roles.size());
  tcp.reserve(cfg.roles.size());
  for (std::size_t i = 0; i < cfg.roles.size(); ++i) {
    const auto ip = testbed_client_ip(static_cast<int>(i));
    all.push_back(ip);
    // Idle clients receive UDP (backbone cross-traffic) when anything
    // reaches them at all, so the slotted layout treats them as UDP.
    const bool udp_side = is_video_role(cfg.roles[i]) ||
                          cfg.roles[i] == kRoleIdle;
    (udp_side ? udp : tcp).push_back(ip);
  }
  std::unique_ptr<proxy::Scheduler> s = [&]() -> std::unique_ptr<proxy::Scheduler> {
  switch (cfg.policy) {
    case IntervalPolicy::Fixed100:
      return std::make_unique<proxy::FixedIntervalScheduler>(
          sim::Time::ms(100));
    case IntervalPolicy::Fixed500:
      return std::make_unique<proxy::FixedIntervalScheduler>(
          sim::Time::ms(500));
    case IntervalPolicy::Variable:
      return std::make_unique<proxy::VariableIntervalScheduler>();
    case IntervalPolicy::StaticEqual100:
      return std::make_unique<proxy::StaticScheduler>(sim::Time::ms(100),
                                                      std::move(all));
    case IntervalPolicy::SlottedStatic500:
      if (tcp.empty() || udp.empty())
        throw std::invalid_argument(
            "SlottedStatic500 needs both TCP and UDP clients");
      return std::make_unique<proxy::SlottedStaticScheduler>(
          sim::Time::ms(500), cfg.slotted_tcp_weight, std::move(udp),
          std::move(tcp));
    case IntervalPolicy::LongestQueue500:
      return std::make_unique<proxy::LongestQueueFirstScheduler>(
          sim::Time::ms(500));
    case IntervalPolicy::Opportunistic500:
      return std::make_unique<proxy::ChannelAwareOpportunisticScheduler>(
          sim::Time::ms(500), 3);
    case IntervalPolicy::Probabilistic500:
      return std::make_unique<proxy::BufferAwareProbabilisticScheduler>(
          sim::Time::ms(500), cfg.seed);
  }
  throw std::logic_error("unknown policy");
  }();
  // Goodput widening composes with every demand-driven policy; the builder
  // rejects it for the static schedules, which ignore per-client costs.
  s->set_measured_goodput(cfg.measured_goodput);
  return s;
}

}  // namespace

// Servers and per-client workload applications, owned for the lifetime of
// the run.  Declaration order matters: apps hold sockets on server nodes
// owned by the Testbed, which outlives this struct.
struct ScenarioRun::Apps {
  workload::VideoServerParams vsp;
  std::unique_ptr<workload::VideoServer> video_server;
  std::unique_ptr<workload::HttpServer> http_server;
  std::unique_ptr<workload::FtpServer> ftp_server;
  std::vector<std::unique_ptr<workload::VideoClient>> video_apps;
  std::vector<std::unique_ptr<workload::WebBrowsingClient>> web_apps;
  std::vector<std::unique_ptr<workload::FtpClient>> ftp_apps;
  std::vector<workload::VideoClient*> video_by_client;
  std::vector<workload::WebBrowsingClient*> web_by_client;
  std::vector<workload::FtpClient*> ftp_by_client;
};

// pp-lint: allow(hot-path-alloc): construction-time hook, runs once per cell
ScenarioRun::ScenarioRun(const ScenarioConfig& cfg,
                         const std::function<void(Testbed&)>& pre_start)
    : cfg_{cfg} {
  TestbedParams tp;
  tp.seed = cfg.seed;
  tp.num_clients = static_cast<int>(cfg.roles.size());
  if (cfg.wireless) {
    tp.wireless = *cfg.wireless;
  } else {
    tp.wireless.p_loss = cfg.wireless_p_loss;
  }
  if (cfg.ap) tp.ap = *cfg.ap;
  tp.client.daemon.comp.mode = cfg.compensation;
  tp.client.daemon.comp.early = cfg.early_transition;
  // Worst case between consecutive broadcasts: previous one maximally
  // jittered + spiked, next one not jittered at all.  Spikes only count
  // when they can occur.
  if (cfg.jitter_guard)
    tp.client.daemon.comp.jitter_bound =
        tp.ap.jitter_max +
        (tp.ap.p_spike > 0 ? tp.ap.spike_max : sim::Time::zero());
  tp.client.daemon.sleep_at_slot_end =
      cfg.policy == IntervalPolicy::SlottedStatic500;
  tp.client.daemon.honor_reuse = cfg.honor_reuse;
  tp.client.naive = cfg.naive_clients;
  tp.client.daemon.escalation.enabled = cfg.miss_escalation;
  tp.per_client_obs = cfg.per_client_obs;
  tp.proxy.mode = cfg.proxy_mode;
  tp.proxy.cost_model_scale = cfg.cost_model_scale;
  tp.proxy.schedule_repeats = cfg.schedule_repeats;
  tp.proxy.repeat_spacing = cfg.schedule_repeat_spacing;
  tp.fault = cfg.fault;
  tp.channel = cfg.channel;

  bed_ = std::make_unique<Testbed>(tp, make_scheduler(cfg));
  Testbed& bed = *bed_;
  apps_ = std::make_unique<Apps>();
  Apps& a = *apps_;

  // Servers: one multimedia server and one web/ftp server, as in the paper.
  net::Node& video_node = bed.add_server("realserver");
  net::Node& web_node = bed.add_server("webserver");

  a.vsp.adaptive = cfg.video_adaptive;
  a.vsp.trace_seed = cfg.seed * 7919 + 13;
  a.video_server = std::make_unique<workload::VideoServer>(video_node, a.vsp);
  a.http_server = std::make_unique<workload::HttpServer>(web_node);
  a.ftp_server = std::make_unique<workload::FtpServer>(web_node);

  a.video_by_client.assign(cfg.roles.size(), nullptr);
  a.web_by_client.assign(cfg.roles.size(), nullptr);
  a.ftp_by_client.assign(cfg.roles.size(), nullptr);

  // Reserve exact per-role counts: at fleet scale most clients are idle,
  // so a roles.size() upper bound would overshoot by orders of magnitude.
  {
    std::size_t n_video = 0, n_web = 0, n_ftp = 0;
    for (const int r : cfg.roles) {
      if (is_video_role(r)) ++n_video;
      else if (r == kRoleWeb) ++n_web;
      else if (r == kRoleFtp) ++n_ftp;
    }
    a.video_apps.reserve(n_video);
    a.web_apps.reserve(n_web);
    a.ftp_apps.reserve(n_ftp);
  }

  int video_order = 0;
  for (std::size_t i = 0; i < cfg.roles.size(); ++i) {
    auto& cl = bed.client(static_cast<int>(i));
    const int role = cfg.roles[i];
    if (is_video_role(role)) {
      a.video_server->expect_client(cl.ip(), role);
      auto app = std::make_unique<workload::VideoClient>(cl.node(),
                                                         video_node.ip());
      // Requests spaced roughly one second apart to spread traffic.
      app->play(sim::Time::seconds(cfg.video_start_s +
                                   video_order * cfg.video_spacing_s));
      ++video_order;
      a.video_by_client[i] = app.get();
      a.video_apps.push_back(std::move(app));
    } else if (role == kRoleWeb) {
      workload::WebScriptParams wsp;
      wsp.pages = cfg.web_pages;
      wsp.think_mean_s = cfg.web_think_mean_s;
      auto script = workload::generate_web_script(cfg.seed * 131 + i, wsp);
      a.http_server->add_script(cl.ip(), script);
      auto app = std::make_unique<workload::WebBrowsingClient>(
          cl.node(), web_node.ip(), std::move(script));
      app->start(sim::Time::seconds(1.0 + 0.3 * static_cast<double>(i)));
      a.web_by_client[i] = app.get();
      a.web_apps.push_back(std::move(app));
    } else if (role == kRoleFtp) {
      a.ftp_server->add_file(cl.ip(), cfg.ftp_bytes);
      auto app = std::make_unique<workload::FtpClient>(cl.node(),
                                                       web_node.ip());
      app->download(sim::Time::seconds(3.0 + 0.5 * static_cast<double>(i)));
      a.ftp_by_client[i] = app.get();
      a.ftp_apps.push_back(std::move(app));
    } else if (role == kRoleIdle) {
      // Associated and power-managed, no application: downlink traffic (if
      // any) arrives from elsewhere — the multi-cell backbone, typically.
    } else {
      throw std::invalid_argument("bad role");
    }
  }

  if (pre_start) pre_start(bed);
  bed.start(sim::Time::ms(500));
}

ScenarioRun::~ScenarioRun() = default;

ScenarioResult ScenarioRun::finish() {
  Testbed& bed = *bed_;
  Apps& a = *apps_;
  const sim::Time horizon = this->horizon();

  bed.finalize_audit(horizon);
  if (auto* m = bed.metrics()) m->finalize(horizon);

  ScenarioResult res;
  res.horizon = horizon;
  res.proxy_stats = bed.proxy().stats();
  res.ap_drops = bed.access_point().downlink_dropped();
  res.frames_on_air = bed.medium().frames_sent();
  if (auto* fp = bed.fault_plan()) res.fault_stats = fp->stats();
  res.clients.reserve(cfg_.roles.size());
  for (std::size_t i = 0; i < cfg_.roles.size(); ++i) {
    auto& cl = bed.client(static_cast<int>(i));
    ClientResult r;
    r.ip = cl.ip();
    r.role = cfg_.roles[i];
    r.saved_pct = 100.0 * cl.energy_saved_fraction(horizon);
    r.energy_mj = cl.energy_mj(horizon);
    r.naive_mj = cl.naive_energy_mj(horizon);
    r.loss_pct = 100.0 * cl.loss_fraction();
    r.packets_received = cl.traffic().packets_received;
    r.packets_missed = cl.traffic().packets_missed;
    r.bytes_received = cl.traffic().bytes_received;
    r.delay_samples = cl.traffic().delay_samples;
    r.mean_delay_ms = r.delay_samples > 0
                          ? cl.traffic().delay_sum.to_ms() /
                                static_cast<double>(r.delay_samples)
                          : 0;
    r.schedules_received = cl.daemon_stats().schedules_received;
    r.schedules_missed = cl.daemon_stats().schedules_missed;
    r.sleeps = cl.daemon_stats().sleeps;
    r.first_misses = cl.daemon_stats().first_misses;
    r.repeat_misses = cl.daemon_stats().repeat_misses;
    r.escalated_sleeps = cl.daemon_stats().escalated_sleeps;
    r.resyncs = cl.daemon_stats().resyncs;
    r.repeats_deduped = cl.daemon_stats().repeats_deduped;
    r.coast_breaks = cl.daemon_stats().coast_breaks;
    if (const auto* ag = cl.assoc()) {
      r.assoc_joins = ag->stats().joins_sent;
      r.assoc_leaves = ag->stats().leaves_sent;
      r.assoc_retries = ag->stats().join_retries + ag->stats().leave_retries;
    }
    if (auto* v = a.video_by_client[i]) {
      r.app_loss_pct = 100.0 * v->loss_fraction();
      r.video_fidelity_final = v->stats().fidelity_seen;
      r.app_bytes = v->stats().bytes;
    } else if (auto* w = a.web_by_client[i]) {
      r.pages_completed = w->stats().pages_completed;
      r.page_time_ms = w->stats().pages_completed > 0
                           ? w->stats().total_page_time.to_ms() /
                                 w->stats().pages_completed
                           : 0;
      r.app_bytes = w->stats().bytes_received;
    } else if (auto* f = a.ftp_by_client[i]) {
      r.ftp_seconds = f->stats().finished ? f->stats().transfer_seconds() : -1;
      r.app_bytes = f->stats().bytes_received;
    }
    res.clients.push_back(r);
  }
  if (cfg_.keep_trace) res.trace = bed.monitor().take();
  if (cfg_.keep_obs) res.obs = bed.observer();
  return res;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  ScenarioRun run{cfg};
  run.advance(run.horizon());
  return run.finish();
}

Summary summarize_all(const std::vector<ClientResult>& clients) {
  return summarize_saved(clients, [](const ClientResult&) { return true; });
}

Summary summarize_video(const std::vector<ClientResult>& clients) {
  return summarize_saved(
      clients, [](const ClientResult& c) { return is_video_role(c.role); });
}

Summary summarize_tcp(const std::vector<ClientResult>& clients) {
  return summarize_saved(
      clients, [](const ClientResult& c) { return !is_video_role(c.role); });
}

double average_loss_pct(const std::vector<ClientResult>& clients) {
  if (clients.empty()) return 0;
  double s = 0;
  for (const auto& c : clients) s += c.loss_pct;
  return s / static_cast<double>(clients.size());
}

}  // namespace pp::exp

#include "exp/testbed.hpp"

#include <stdexcept>

#include "check/check.hpp"

namespace pp::exp {

net::Ipv4Addr testbed_client_ip(int i) {
  // 16-bit client index spread over the third and fourth octets: clients
  // 0..254 keep their historical 172.16.0.<i+1> addresses; larger fleets
  // spill into 172.16.1.x and beyond (65534 clients max per testbed).
  const std::uint32_t n = static_cast<std::uint32_t>(i) + 1;
  return net::Ipv4Addr::octets(172, 16, static_cast<std::uint8_t>(n >> 8),
                               static_cast<std::uint8_t>(n & 0xff));
}

Testbed::Testbed(TestbedParams params,
                 std::unique_ptr<proxy::Scheduler> scheduler)
    : params_{params},
      sim_{params.seed},
      lan_{sim_, params.lan},
      proxy_{std::make_unique<proxy::TransparentProxy>(
          sim_, std::move(scheduler), params.proxy)},
      medium_{sim_, params.wireless},
      ap_{sim_, medium_, params.ap},
      monitor_{medium_} {
  // Bridge port: all LAN traffic to unknown (wireless) addresses lands here.
  bridge_port_ = lan_.attach_default(proxy_->wired_sink());
  proxy_->set_wired_tx([this](net::Packet pkt) {
    lan_.send(bridge_port_, std::move(pkt));
  });

  // Proxy <-> AP point-to-point link.
  proxy_ap_link_ = std::make_unique<net::PointToPointLink>(
      sim_, params_.proxy_ap, proxy_->wireless_sink(), ap_);
  proxy_->set_wireless_tx([this](net::Packet pkt) {
    proxy_ap_link_->send_a_to_b(std::move(pkt));
  });
  proxy_->set_wireless_burst_tx([this](net::ChunkQueue burst) {
    proxy_ap_link_->send_burst_a_to_b(std::move(burst));
  });
  ap_uplink_sink_ = std::make_unique<net::ChannelSink>(
      proxy_ap_link_->b_to_a());
  ap_.set_uplink_sink(*ap_uplink_sink_);

  // Churn: expand a declared storm into concrete per-client windows now
  // that the fleet's addresses are known; the storm flag is consumed so
  // the FaultPlan only ever sees plain windows.
  if (params_.fault.storm.enabled) {
    std::vector<net::Ipv4Addr> fleet;
    fleet.reserve(static_cast<std::size_t>(params_.num_clients));
    for (int i = 0; i < params_.num_clients; ++i)
      fleet.push_back(testbed_client_ip(i));
    std::vector<fault::FaultWindow> storm_windows =
        fault::expand_churn_storm(params_.fault.storm, fleet, params_.seed);
    params_.fault.windows.insert(params_.fault.windows.end(),
                                 storm_windows.begin(), storm_windows.end());
    params_.fault.storm.enabled = false;
  }
  // Any churn window turns the association agents on fleet-wide: the
  // clients named by windows flap, the rest just run with the agent idle
  // in the Associated state.
  bool churny = false;
  for (const auto& w : params_.fault.windows)
    if (w.kind == fault::FaultKind::ClientChurn) churny = true;
  if (churny) {
    params_.client.assoc.enabled = true;
    params_.client.assoc.run_seed = params_.seed;
    params_.client.assoc.proxy_ip = params_.proxy.proxy_ip;
  }

  // Fault plan: wired to every faultable component; windows arm at start().
  if (params_.fault.any()) {
    fault_ = std::make_unique<fault::FaultPlan>(sim_, params_.fault,
                                                params_.seed);
    fault_->attach_medium(medium_);
    fault_->attach_access_point(ap_);
    fault_->attach_wired_link(proxy_ap_link_->a_to_b(),
                              proxy_ap_link_->b_to_a());
    fault_->set_proxy_pause([this](bool paused) {
      if (paused) {
        proxy_->pause();
      } else {
        proxy_->resume();
      }
    });
    // Churn coordinator: drive the client's association agent and keep the
    // AP's association table in step.  (clients_ fills later in this
    // constructor; the callback only fires at sim time, after start().)
    fault_->set_churn([this](net::Ipv4Addr ip, bool away) {
      for (auto& c : clients_) {
        if (c->ip() == ip) {
          c->set_away(away);
          break;
        }
      }
      if (away) {
        ap_.disassociate(ip);
      } else {
        ap_.associate(ip);
      }
    });
  }

  // Channel-quality model: replaces the medium's flat p_loss with the
  // per-client state ladder and gives the proxy a quality observer.  On
  // faulted runs the FaultPlan owns the loss model instead, but its GE
  // chain (when present) still serves the proxy as a read-only observer.
  if (params_.channel.enabled) {
    PP_CHECK(!params_.fault.any(), "exp.testbed.channel_vs_fault");
    channel_ = std::make_unique<channel::ChannelModel>(params_.channel,
                                                       params_.seed);
    medium_.set_loss_model(channel_.get());
    proxy_->set_channel_observer(channel_.get());
  } else if (fault_ && fault_->channel_observer() != nullptr) {
    proxy_->set_channel_observer(fault_->channel_observer());
  }

  // Clients.  Energy state lives in the shared fleet ledger (one SoA row
  // per client) instead of per-object accountants.
  energy_ledger_ = energy::EnergyLedger{params_.client.power};
  energy_ledger_.reserve(params_.num_clients);
  params_.client.ledger = &energy_ledger_;
  clients_.reserve(params_.num_clients);
  for (int i = 0; i < params_.num_clients; ++i) {
    clients_.push_back(std::make_unique<client::EnergyAwareClient>(
        sim_, medium_, testbed_client_ip(i), "client" + std::to_string(i),
        params_.client));
  }

#if PP_OBS_ENABLED
  if (params_.observe) {
    observer_ = std::make_shared<obs::Observer>();
    // Stream every timeline event through the invariant auditor (time
    // monotonicity, sleep/wake alternation) as it is recorded.
    auditor_ = std::make_unique<check::Auditor>();
    observer_->timeline.set_sink(auditor_.get());
    const obs::Hook hook = observer_->hook();
    medium_.set_obs(hook);
    ap_.set_obs(hook);
    proxy_->set_obs(hook);
    if (fault_) fault_->set_obs(hook);
    if (channel_) channel_->set_obs(hook);
    if (params_.per_client_obs)
      for (auto& c : clients_) c->set_obs(hook);
  }
#endif
}

net::Node& Testbed::add_server(const std::string& name) {
  if (started_) throw std::logic_error("Testbed: add_server after start");
  const auto ip =
      net::Ipv4Addr::octets(10, 0, 0, static_cast<std::uint8_t>(next_server_++));
  auto node = std::make_unique<net::Node>(sim_, ip, name);
  const auto port = lan_.attach(*node, ip);
  net::Node* raw = node.get();
  raw->set_transmitter([this, port](net::Packet pkt) {
    lan_.send(port, std::move(pkt));
  });
  servers_.push_back(std::move(node));
  return *raw;
}

std::vector<net::Ipv4Addr> Testbed::client_ips() const {
  std::vector<net::Ipv4Addr> ips;
  ips.reserve(clients_.size());
  for (const auto& c : clients_) ips.push_back(c->ip());
  return ips;
}

void Testbed::finalize_audit(sim::Time horizon) {
  publish_sim_metrics();
  ap_.audit();
  proxy_->audit();
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const std::string component =
        "energy.accountant.client" + std::to_string(i);
    // Safe to pass c_str(): a violation never returns here (abort/throw).
    clients_[i]->accountant().audit(sim_.now(), component.c_str());
  }
  if (auditor_) auditor_->finalize(horizon);
}

void Testbed::publish_sim_metrics() {
  if (sim_metrics_published_) return;
  sim_metrics_published_ = true;
#if PP_OBS_ENABLED
  auto* m = metrics();
  if (m == nullptr) return;
  // Engine meta-counters.  The "sim." prefix is load-bearing: replay
  // digests skip it (see exp/digest.cpp), so these can move with engine
  // tuning without perturbing behavioral fingerprints.
  const sim::EventQueue::Stats& qs = sim_.queue_stats();
  m->counter("sim.events.scheduled")->inc(qs.scheduled);
  m->counter("sim.events.fired")->inc(qs.fired);
  m->counter("sim.events.cancelled")->inc(qs.cancelled);
  m->counter("sim.events.stale_pruned")->inc(qs.stale_pruned);
  m->counter("sim.events.slab_slots")
      ->inc(static_cast<std::uint64_t>(sim_.queue_slab_slots()));
  m->counter("sim.alloc.callbacks_inline")->inc(qs.alloc.callbacks_inline);
  m->counter("sim.alloc.callbacks_pooled")->inc(qs.alloc.callbacks_pooled);
  m->counter("sim.alloc.pool_reuses")->inc(qs.alloc.pool_reuses);
  m->counter("sim.alloc.pool_allocs")->inc(qs.alloc.pool_allocs);
#endif
}

void Testbed::start(sim::Time first_srp) {
  PP_CHECK(!started_, "exp.testbed.start");
  started_ = true;
  proxy_->calibrate(medium_);
  for (const auto& ip : client_ips()) proxy_->register_client(ip);
  if (fault_) fault_->arm();
  proxy_->start(first_srp);
  for (auto& c : clients_) c->start();
}

}  // namespace pp::exp

#include "exp/sweep/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "exp/sweep/key.hpp"

namespace pp::exp::sweep {

namespace {

namespace fs = std::filesystem;

constexpr char kRecordMagic[] = "ppsweep-record v1";

std::string fmt_f(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

// Token readers over a whitespace-separated stream.  istream's built-in
// double extraction does not accept hexfloat, so doubles go through
// strtod on a string token.
bool next_tok(std::istream& is, std::string& tok) {
  return static_cast<bool>(is >> tok);
}

bool read_u64(std::istream& is, std::uint64_t& v) {
  std::string t;
  if (!next_tok(is, t)) return false;
  char* end = nullptr;
  v = std::strtoull(t.c_str(), &end, 10);
  return end && *end == '\0';
}

bool read_i64(std::istream& is, std::int64_t& v) {
  std::string t;
  if (!next_tok(is, t)) return false;
  char* end = nullptr;
  v = std::strtoll(t.c_str(), &end, 10);
  return end && *end == '\0';
}

bool read_int(std::istream& is, int& v) {
  std::int64_t big = 0;
  if (!read_i64(is, big)) return false;
  v = static_cast<int>(big);
  return true;
}

bool read_f(std::istream& is, double& v) {
  std::string t;
  if (!next_tok(is, t)) return false;
  char* end = nullptr;
  v = std::strtod(t.c_str(), &end);
  return end && *end == '\0';
}

bool expect_tok(std::istream& is, const char* want) {
  std::string t;
  return next_tok(is, t) && t == want;
}

}  // namespace

RunRecord make_record(const ScenarioResult& res, std::uint64_t digest) {
  RunRecord r;
  r.clients = res.clients;
  r.proxy_stats = res.proxy_stats;
  r.fault_stats = res.fault_stats;
  r.horizon_ns = res.horizon.count_ns();
  r.ap_drops = res.ap_drops;
  r.frames_on_air = res.frames_on_air;
  r.digest = digest;
  return r;
}

void write_record(std::ostream& os, const RunRecord& r) {
  os << kRecordMagic << '\n';
  os << "horizon_ns " << r.horizon_ns << '\n';
  os << "ap_drops " << r.ap_drops << '\n';
  os << "frames_on_air " << r.frames_on_air << '\n';
  os << "digest " << r.digest << '\n';
  const proxy::ProxyStats& p = r.proxy_stats;
  os << "proxy " << p.schedules_sent << ' ' << p.bursts_opened << ' '
     << p.queued_packets << ' ' << p.burst_packets << ' ' << p.queue_drops
     << ' ' << p.udp_bytes_burst << ' ' << p.tcp_bytes_burst << ' '
     << p.splices_created << ' ' << p.splices_closed << ' '
     << p.empty_burst_markers << ' ' << p.unmatched_packets << ' '
     << p.schedule_repeats_sent << ' ' << p.pauses << ' ' << p.joins << ' '
     << p.leaves << ' ' << p.renegotiations << ' ' << p.bursts_skipped << ' '
     << p.churn_drained_bytes << ' ' << p.churn_dropped_packets << ' '
     << p.churn_dropped_bytes << '\n';
  const fault::FaultStats& f = r.fault_stats;
  os << "fault " << f.windows_activated << ' ' << f.windows_recovered << ' '
     << f.ge_losses << ' ' << f.fade_losses << ' ' << f.base_losses << ' '
     << f.ge_bad_entries << '\n';
  os << "clients " << r.clients.size() << '\n';
  for (const ClientResult& c : r.clients) {
    os << "c " << c.ip.raw() << ' ' << c.role << ' ' << fmt_f(c.saved_pct)
       << ' ' << fmt_f(c.energy_mj) << ' ' << fmt_f(c.naive_mj) << ' '
       << fmt_f(c.loss_pct) << ' ' << c.packets_received << ' '
       << c.packets_missed << ' ' << c.bytes_received << ' '
       << c.schedules_received << ' ' << c.schedules_missed << ' ' << c.sleeps
       << ' ' << c.first_misses << ' ' << c.repeat_misses << ' '
       << c.escalated_sleeps << ' ' << c.resyncs << ' ' << c.repeats_deduped
       << ' ' << c.coast_breaks << ' ' << fmt_f(c.app_loss_pct) << ' '
       << c.video_fidelity_final << ' ' << fmt_f(c.page_time_ms) << ' '
       << c.pages_completed << ' ' << fmt_f(c.ftp_seconds) << ' '
       << c.app_bytes << ' ' << fmt_f(c.mean_delay_ms) << ' '
       << c.delay_samples << ' ' << c.assoc_joins << ' ' << c.assoc_leaves
       << ' ' << c.assoc_retries << '\n';
  }
  os << "end\n";
}

bool read_record(std::istream& is, RunRecord& out) {
  // Magic line ("ppsweep-record" and "v1" as two tokens).
  std::string a, b;
  if (!next_tok(is, a) || !next_tok(is, b) || a + ' ' + b != kRecordMagic) {
    return false;
  }
  if (!expect_tok(is, "horizon_ns") || !read_i64(is, out.horizon_ns)) {
    return false;
  }
  if (!expect_tok(is, "ap_drops") || !read_u64(is, out.ap_drops)) return false;
  if (!expect_tok(is, "frames_on_air") || !read_u64(is, out.frames_on_air)) {
    return false;
  }
  if (!expect_tok(is, "digest") || !read_u64(is, out.digest)) return false;
  proxy::ProxyStats& p = out.proxy_stats;
  if (!expect_tok(is, "proxy") || !read_u64(is, p.schedules_sent) ||
      !read_u64(is, p.bursts_opened) || !read_u64(is, p.queued_packets) ||
      !read_u64(is, p.burst_packets) || !read_u64(is, p.queue_drops) ||
      !read_u64(is, p.udp_bytes_burst) || !read_u64(is, p.tcp_bytes_burst) ||
      !read_u64(is, p.splices_created) || !read_u64(is, p.splices_closed) ||
      !read_u64(is, p.empty_burst_markers) ||
      !read_u64(is, p.unmatched_packets) ||
      !read_u64(is, p.schedule_repeats_sent) || !read_u64(is, p.pauses) ||
      !read_u64(is, p.joins) || !read_u64(is, p.leaves) ||
      !read_u64(is, p.renegotiations) || !read_u64(is, p.bursts_skipped) ||
      !read_u64(is, p.churn_drained_bytes) ||
      !read_u64(is, p.churn_dropped_packets) ||
      !read_u64(is, p.churn_dropped_bytes)) {
    return false;
  }
  fault::FaultStats& f = out.fault_stats;
  if (!expect_tok(is, "fault") || !read_u64(is, f.windows_activated) ||
      !read_u64(is, f.windows_recovered) || !read_u64(is, f.ge_losses) ||
      !read_u64(is, f.fade_losses) || !read_u64(is, f.base_losses) ||
      !read_u64(is, f.ge_bad_entries)) {
    return false;
  }
  std::uint64_t n = 0;
  if (!expect_tok(is, "clients") || !read_u64(is, n) || n > 1'000'000) {
    return false;
  }
  out.clients.clear();
  out.clients.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ClientResult c;
    std::uint64_t ip_raw = 0;
    if (!expect_tok(is, "c") || !read_u64(is, ip_raw) ||
        !read_int(is, c.role) || !read_f(is, c.saved_pct) ||
        !read_f(is, c.energy_mj) || !read_f(is, c.naive_mj) ||
        !read_f(is, c.loss_pct) || !read_u64(is, c.packets_received) ||
        !read_u64(is, c.packets_missed) || !read_u64(is, c.bytes_received) ||
        !read_u64(is, c.schedules_received) ||
        !read_u64(is, c.schedules_missed) || !read_u64(is, c.sleeps) ||
        !read_u64(is, c.first_misses) || !read_u64(is, c.repeat_misses) ||
        !read_u64(is, c.escalated_sleeps) || !read_u64(is, c.resyncs) ||
        !read_u64(is, c.repeats_deduped) || !read_u64(is, c.coast_breaks) ||
        !read_f(is, c.app_loss_pct) || !read_int(is, c.video_fidelity_final) ||
        !read_f(is, c.page_time_ms) || !read_int(is, c.pages_completed) ||
        !read_f(is, c.ftp_seconds) || !read_u64(is, c.app_bytes) ||
        !read_f(is, c.mean_delay_ms) || !read_u64(is, c.delay_samples) ||
        !read_u64(is, c.assoc_joins) || !read_u64(is, c.assoc_leaves) ||
        !read_u64(is, c.assoc_retries)) {
      return false;
    }
    c.ip = net::Ipv4Addr{static_cast<std::uint32_t>(ip_raw)};
    out.clients.push_back(c);
  }
  return expect_tok(is, "end");
}

ResultCache::ResultCache(std::string dir) : dir_{std::move(dir)} {}

std::string ResultCache::entry_path(std::uint64_t key) const {
  return dir_ + "/" + key_hex(key) + ".ppr";
}

std::optional<RunRecord> ResultCache::lookup(
    std::uint64_t key, const std::string& canonical) const {
  std::ifstream in{entry_path(key), std::ios::binary};
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "ppsweep-entry v1") {
    return std::nullopt;
  }
  if (!std::getline(in, line) || line.rfind("config-bytes ", 0) != 0) {
    return std::nullopt;
  }
  const unsigned long want = std::strtoul(line.c_str() + 13, nullptr, 10);
  if (want == 0 || want != canonical.size()) return std::nullopt;
  std::string stored(want, '\0');
  if (!in.read(stored.data(), static_cast<std::streamsize>(want)) ||
      stored != canonical) {
    // 64-bit key collision or truncated entry: treat as a miss.
    return std::nullopt;
  }
  RunRecord rec;
  if (!read_record(in, rec)) return std::nullopt;
  return rec;
}

void ResultCache::store(std::uint64_t key, const std::string& canonical,
                        const RunRecord& r) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best effort; the write below reports
  const std::string path = entry_path(key);
  // Per-process temp name: concurrent sweeps of overlapping batteries
  // write the same bytes, and rename() makes whichever lands last win
  // atomically.
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) return;  // unwritable cache dir: degrade to uncached
    out << "ppsweep-entry v1\n";
    out << "config-bytes " << canonical.size() << '\n';
    out << canonical;
    write_record(out, r);
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace pp::exp::sweep

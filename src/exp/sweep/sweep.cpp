#include "exp/sweep/sweep.hpp"

// pp-lint: allow(wall-clock): host-side batch ETA only — wall time never
// enters simulation state, which runs exclusively on sim::Time.
#include <chrono>
#include <cstdlib>

#include "exp/digest.hpp"
#include "exp/parallel.hpp"

namespace pp::exp::sweep {

namespace {

// pp-lint: allow(wall-clock): host-side ETA, see header note
using WallClock = std::chrono::steady_clock;

struct LiveRun {
  RunRecord record;
  std::shared_ptr<ScenarioResult> live;
};

LiveRun run_live(const ScenarioConfig& cfg) {
  // Force observer retention so the replay digest comes out of the run we
  // already paid for (keep_obs only controls end-of-run retention; the
  // observer is attached either way, so this cannot perturb the result).
  ScenarioConfig run_cfg = cfg;
  run_cfg.keep_obs = true;
  auto res = std::make_shared<ScenarioResult>(run_scenario(run_cfg));
  const std::uint64_t digest = res->obs ? observer_digest(*res->obs) : 0;
  if (!cfg.keep_obs) res->obs.reset();  // honor the caller's retention ask
  return {make_record(*res, digest), std::move(res)};
}

}  // namespace

std::string default_cache_dir() {
  if (const char* env = std::getenv("PP_SWEEP_CACHE"); env && *env) {
    return env;
  }
  return ".pp-sweep-cache";
}

SweepResult run(const std::vector<Item>& items, const Options& opts) {
  const auto t0 = WallClock::now();
  const auto elapsed_s = [&t0] {
    return std::chrono::duration<double>(WallClock::now() - t0).count();
  };

  SweepResult out;
  out.outcomes.resize(items.size());
  out.stats.total = items.size();

  obs::Counter* ctr_runs = nullptr;
  obs::Counter* ctr_hits = nullptr;
  obs::Counter* ctr_misses = nullptr;
  obs::Counter* ctr_uncacheable = nullptr;
  if (opts.metrics) {
    ctr_runs = opts.metrics->counter("sweep.runs");
    ctr_hits = opts.metrics->counter("sweep.cache_hits");
    ctr_misses = opts.metrics->counter("sweep.cache_misses");
    ctr_uncacheable = opts.metrics->counter("sweep.uncacheable");
  }

  const ResultCache cache{opts.cache_dir.empty() ? default_cache_dir()
                                                 : opts.cache_dir};

  // Pass 1: key every item and resolve cache hits inline (lookups are
  // cheap file reads; only the misses are worth the pool).
  struct Pending {
    std::size_t index;
    std::string canonical;
    bool cacheable;
  };
  std::vector<Pending> pending;
  pending.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    Outcome& oc = out.outcomes[i];
    oc.label = items[i].label;
    const std::string canonical = canonical_config(items[i].cfg);
    oc.key = config_key(items[i].cfg, opts.salt);
    const bool can_cache = cacheable(items[i].cfg);
    if (can_cache && opts.use_cache) {
      if (auto hit = cache.lookup(oc.key, canonical)) {
        oc.cache_hit = true;
        oc.record = std::move(*hit);
        ++out.stats.hits;
        if (ctr_hits) ctr_hits->inc();
        continue;
      }
    }
    if (can_cache) {
      ++out.stats.misses;
      if (ctr_misses) ctr_misses->inc();
    } else {
      ++out.stats.uncacheable;
      if (ctr_uncacheable) ctr_uncacheable->inc();
    }
    pending.push_back({i, canonical, can_cache});
  }

  const auto report = [&](std::size_t runs_done) {
    if (!opts.on_progress) return;
    Progress p;
    p.total = items.size();
    p.hits = out.stats.hits;
    p.done = out.stats.hits + runs_done;
    p.elapsed_s = elapsed_s();
    p.eta_s = runs_done > 0
                  ? p.elapsed_s / static_cast<double>(runs_done) *
                        static_cast<double>(pending.size() - runs_done)
                  : 0;
    opts.on_progress(p);
  };
  report(0);

  // Pass 2: the misses, work-stealing wide.
  std::vector<std::function<LiveRun()>> tasks;
  tasks.reserve(pending.size());
  for (const Pending& p : pending) {
    const ScenarioConfig& cfg = items[p.index].cfg;
    tasks.emplace_back([&cfg] { return run_live(cfg); });
  }
  std::vector<LiveRun> ran = run_parallel(
      tasks, opts.threads,
      [&](std::size_t done, std::size_t) { report(done); });

  for (std::size_t j = 0; j < pending.size(); ++j) {
    const Pending& p = pending[j];
    Outcome& oc = out.outcomes[p.index];
    oc.record = std::move(ran[j].record);
    oc.live = std::move(ran[j].live);
    if (ctr_runs) ctr_runs->inc();
    if (p.cacheable && opts.use_cache) {
      cache.store(oc.key, p.canonical, oc.record);
    }
  }
  out.stats.elapsed_s = elapsed_s();
  return out;
}

}  // namespace pp::exp::sweep

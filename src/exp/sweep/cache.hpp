// The content-addressed on-disk result cache.
//
// A RunRecord is the serializable projection of a ScenarioResult: every
// client metric, the proxy/fault/AP counters, the horizon, and the run's
// replay digest.  It deliberately excludes the wireless trace and the
// observer snapshot — configs that retain those are not cacheable (see
// sweep::cacheable) and always run live.
//
// Round-trip exactness is the cache's core contract: doubles serialize as
// hexfloat, so a record read back from disk is bit-identical to the one
// stored, and anything rendered from it (tables, JSON) is byte-identical
// between a cold and a warm run.
//
// On disk, one file per key: `<dir>/<hex16>.ppr`, containing a version
// line, the full canonical config text (collision guard: a 64-bit key hit
// with mismatched config text is treated as a miss), and the record.
// Writes go to a `.tmp` sibling then rename(2) into place, so concurrent
// sweeps — in-process workers or separate processes — never observe a
// torn entry.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "exp/scenario.hpp"

namespace pp::exp::sweep {

struct RunRecord {
  std::vector<ClientResult> clients;
  proxy::ProxyStats proxy_stats{};
  fault::FaultStats fault_stats{};
  // pp-lint: allow(naked-duration): serialized wire-format field
  std::int64_t horizon_ns = 0;
  std::uint64_t ap_drops = 0;
  std::uint64_t frames_on_air = 0;
  // Replay digest of the run's observer state (0 when observability is
  // compiled out); equal digests mean bit-identical runs.
  std::uint64_t digest = 0;

  sim::Time horizon() const { return sim::Time::ns(horizon_ns); }
};

// Project the cache-safe part of a live result.
RunRecord make_record(const ScenarioResult& res, std::uint64_t digest);

void write_record(std::ostream& os, const RunRecord& r);
// Returns false (out untouched beyond partial fill) on malformed input.
bool read_record(std::istream& is, RunRecord& out);

class ResultCache {
 public:
  // Creates `dir` (and parents) on first store; lookups on a missing
  // directory simply miss.
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  // `canonical` is the full canonical_config text of the probed config.
  std::optional<RunRecord> lookup(std::uint64_t key,
                                  const std::string& canonical) const;
  void store(std::uint64_t key, const std::string& canonical,
             const RunRecord& r) const;

 private:
  std::string entry_path(std::uint64_t key) const;
  std::string dir_;
};

}  // namespace pp::exp::sweep

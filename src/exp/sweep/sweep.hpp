// The batch experiment engine: a declarative battery of scenarios, run
// through the work-stealing pool with content-addressed result caching.
//
// Every figure/table in the paper is a grid of ScenarioConfigs; the
// engine takes that grid as data (a vector of labelled Items), resolves
// each item against the on-disk cache, runs only the misses — in
// parallel, stealing across workers — and returns one Outcome per item in
// input order.  A warm re-run of an unchanged battery is pure cache hits:
// no simulation executes, and everything rendered from the records is
// byte-identical to the cold run.
//
// Caching is keyed by canonical_config + salt (see key.hpp).  Results
// that retain a trace or observer are not representable on disk; those
// items always run live and carry the full ScenarioResult in
// Outcome::live.
//
// Progress lands in two places: the `on_progress` callback (completion
// counts plus a wall-clock ETA over the remaining live runs) and, when an
// obs::MetricsRegistry is supplied, the `sweep.*` counters — the same
// observability surface the simulators use, so exporters and dashboards
// pick up batch health for free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep/cache.hpp"
#include "exp/sweep/key.hpp"
#include "obs/metrics.hpp"

namespace pp::exp::sweep {

struct Item {
  std::string label;  // battery-unique display name
  ScenarioConfig cfg;
};

struct Progress {
  std::size_t done = 0;   // items resolved (hits + finished runs)
  std::size_t total = 0;  // items in the battery
  std::size_t hits = 0;   // resolved from cache
  double elapsed_s = 0;   // wall clock since run() started
  double eta_s = 0;       // projected time to finish the remaining runs
};

struct Options {
  // 0 = resolve via exp::resolve_threads (PP_THREADS, sanitizer cap, hw).
  unsigned threads = 0;
  // Cache directory; empty = $PP_SWEEP_CACHE, else ".pp-sweep-cache".
  std::string cache_dir;
  bool use_cache = true;
  std::uint64_t salt = kCodeVersionSalt;
  // Serialized (never concurrent) progress callback.
  std::function<void(const Progress&)> on_progress;
  // Optional: count sweep.runs / sweep.cache_hits / sweep.cache_misses /
  // sweep.uncacheable into an observability registry.
  obs::MetricsRegistry* metrics = nullptr;
};

struct Outcome {
  std::string label;
  std::uint64_t key = 0;
  bool cache_hit = false;
  RunRecord record;
  // The full in-memory result, populated only for live runs (always for
  // uncacheable items, e.g. keep_trace).  Render reports from `record` —
  // that is what a warm run has.
  std::shared_ptr<ScenarioResult> live;
};

struct Stats {
  std::size_t total = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;       // cacheable items that ran live
  std::size_t uncacheable = 0;  // keep_trace/keep_obs items (always live)
  double elapsed_s = 0;
};

struct SweepResult {
  std::vector<Outcome> outcomes;  // input order
  Stats stats;
};

// Resolve the battery: hits from cache, misses through the work-stealing
// pool.  Exceptions from run_scenario propagate (first one, after all
// in-flight work finishes), matching run_parallel semantics.
SweepResult run(const std::vector<Item>& items, const Options& opts = {});

// The default cache directory for this process (honors $PP_SWEEP_CACHE).
std::string default_cache_dir();

}  // namespace pp::exp::sweep

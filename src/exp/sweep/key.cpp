#include "exp/sweep/key.hpp"

#include <cstdio>

namespace pp::exp::sweep {

namespace {

// Append "name=value\n".  Doubles use hexfloat ("%a"): exact, locale-free,
// and stable across compilers for the same bit pattern.
void put(std::string& out, const char* name, const std::string& v) {
  out += name;
  out += '=';
  out += v;
  out += '\n';
}

void put_u64(std::string& out, const char* name, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  put(out, name, buf);
}

void put_i64(std::string& out, const char* name, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  put(out, name, buf);
}

void put_f(std::string& out, const char* name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  put(out, name, buf);
}

void put_b(std::string& out, const char* name, bool v) {
  put(out, name, v ? "1" : "0");
}

}  // namespace

std::string canonical_config(const ScenarioConfig& cfg) {
  std::string out;
  out.reserve(1024);
  out += "ppsweep-config v1\n";
  {
    std::string roles;
    for (const int r : cfg.roles) {
      if (!roles.empty()) roles += ',';
      roles += std::to_string(r);
    }
    put(out, "roles", roles);
  }
  put_i64(out, "policy", static_cast<std::int64_t>(cfg.policy));
  put_u64(out, "seed", cfg.seed);
  put_i64(out, "early_transition_ns", cfg.early_transition.count_ns());
  put_i64(out, "compensation", static_cast<std::int64_t>(cfg.compensation));
  put_f(out, "slotted_tcp_weight", cfg.slotted_tcp_weight);
  put_i64(out, "proxy_mode", static_cast<std::int64_t>(cfg.proxy_mode));
  put_f(out, "cost_model_scale", cfg.cost_model_scale);
  put_b(out, "honor_reuse", cfg.honor_reuse);
  put_b(out, "naive_clients", cfg.naive_clients);
  put_f(out, "duration_s", cfg.duration_s);
  put_f(out, "video_start_s", cfg.video_start_s);
  put_f(out, "video_spacing_s", cfg.video_spacing_s);
  put_u64(out, "ftp_bytes", cfg.ftp_bytes);
  put_i64(out, "web_pages", cfg.web_pages);
  put_f(out, "web_think_mean_s", cfg.web_think_mean_s);
  put_b(out, "keep_trace", cfg.keep_trace);
  put_b(out, "keep_obs", cfg.keep_obs);
  put_b(out, "per_client_obs", cfg.per_client_obs);
  put_f(out, "wireless_p_loss", cfg.wireless_p_loss);
  put_b(out, "wireless_override", cfg.wireless.has_value());
  if (cfg.wireless) {
    const net::WirelessParams& w = *cfg.wireless;
    put_f(out, "wireless.rate_bps", w.rate_bps);
    put_f(out, "wireless.broadcast_rate_bps", w.broadcast_rate_bps);
    put_i64(out, "wireless.per_frame_overhead_ns",
            w.per_frame_overhead.count_ns());
    put_i64(out, "wireless.propagation_ns", w.propagation.count_ns());
    put_f(out, "wireless.p_loss", w.p_loss);
    put_u64(out, "wireless.mac_framing_bytes", w.mac_framing_bytes);
  }
  put_b(out, "ap_override", cfg.ap.has_value());
  if (cfg.ap) {
    const net::AccessPointParams& a = *cfg.ap;
    put_i64(out, "ap.base_delay_ns", a.base_delay.count_ns());
    put_i64(out, "ap.jitter_max_ns", a.jitter_max.count_ns());
    put_f(out, "ap.p_spike", a.p_spike);
    put_i64(out, "ap.spike_max_ns", a.spike_max.count_ns());
    put_u64(out, "ap.queue_limit_bytes", a.queue_limit_bytes);
  }
  put_b(out, "video_adaptive", cfg.video_adaptive);
  put_b(out, "fault.ge.enabled", cfg.fault.ge.enabled);
  put_f(out, "fault.ge.p_good_bad", cfg.fault.ge.p_good_bad);
  put_f(out, "fault.ge.p_bad_good", cfg.fault.ge.p_bad_good);
  put_f(out, "fault.ge.loss_good", cfg.fault.ge.loss_good);
  put_f(out, "fault.ge.loss_bad", cfg.fault.ge.loss_bad);
  put_u64(out, "fault.windows", cfg.fault.windows.size());
  for (const auto& w : cfg.fault.windows) {
    std::string line = std::to_string(static_cast<int>(w.kind)) + ',' +
                       std::to_string(w.client.raw()) + ',' +
                       std::to_string(w.start.count_ns()) + ',' +
                       std::to_string(w.duration.count_ns());
    put(out, "fault.window", line);
  }
  put_b(out, "fault.storm.enabled", cfg.fault.storm.enabled);
  if (cfg.fault.storm.enabled) {
    const fault::ChurnStorm& s = cfg.fault.storm;
    put_i64(out, "fault.storm.start_ns", s.start.count_ns());
    put_i64(out, "fault.storm.duration_ns", s.duration.count_ns());
    put_f(out, "fault.storm.flap_fraction", s.flap_fraction);
    put_i64(out, "fault.storm.min_away_ns", s.min_away.count_ns());
    put_i64(out, "fault.storm.max_away_ns", s.max_away.count_ns());
    put_i64(out, "fault.storm.min_home_ns", s.min_home.count_ns());
    put_i64(out, "fault.storm.max_home_ns", s.max_home.count_ns());
  }
  put_b(out, "measured_goodput", cfg.measured_goodput);
  put_b(out, "jitter_guard", cfg.jitter_guard);
  put_i64(out, "schedule_repeats", cfg.schedule_repeats);
  put_i64(out, "schedule_repeat_spacing_ns",
          cfg.schedule_repeat_spacing.count_ns());
  put_b(out, "miss_escalation", cfg.miss_escalation);
  put_b(out, "channel.enabled", cfg.channel.enabled);
  if (cfg.channel.enabled) {
    put_b(out, "channel.per_client_streams", cfg.channel.per_client_streams);
    put_f(out, "channel.ewma_alpha", cfg.channel.ewma_alpha);
    put_f(out, "channel.tick_s", cfg.channel.tick_s);
    put_u64(out, "channel.rungs", cfg.channel.rungs.size());
    for (const auto& r : cfg.channel.rungs) {
      put_f(out, "channel.rung.p_up", r.p_up);
      put_f(out, "channel.rung.p_down", r.p_down);
      put_f(out, "channel.rung.loss", r.loss);
      put_f(out, "channel.rung.goodput_bps", r.goodput_bps);
    }
  }
  return out;
}

// Fires when ScenarioConfig grows (or shrinks) on the reference toolchain:
// extend canonical_config above and bump kCodeVersionSalt, then update the
// pinned size.  Other ABIs skip the check rather than pin a wrong number.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(ScenarioConfig) == 464,
              "ScenarioConfig changed: update canonical_config() and bump "
              "kCodeVersionSalt");
#endif

std::string canonical_multicell_config(const MultiCellConfig& cfg) {
  std::string out;
  out.reserve(1536);
  out += "ppsweep-multicell v1\n";
  put_i64(out, "num_cells", cfg.num_cells);
  put_i64(out, "backbone_latency_ns", cfg.backbone_latency.count_ns());
  put_b(out, "cross.enabled", cfg.cross.enabled);
  if (cfg.cross.enabled) {
    put_i64(out, "cross.period_ns", cfg.cross.period.count_ns());
    put_u64(out, "cross.bytes", cfg.cross.bytes);
    put_i64(out, "cross.fanout", cfg.cross.fanout);
    put_f(out, "cross.start_s", cfg.cross.start_s);
  }
  // Embedded per-cell rendering: every scenario-level axis (client count
  // via roles, policy, seed, ...) flows into the fleet key unchanged.
  out += "cell{\n";
  out += canonical_config(cfg.cell);
  out += "}cell\n";
  return out;
}

// Same reference-toolchain guard as ScenarioConfig above: fires when
// MultiCellConfig grows, reminding you to extend
// canonical_multicell_config() and bump kCodeVersionSalt.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(MultiCellConfig) == 512,
              "MultiCellConfig changed: update canonical_multicell_config() "
              "and bump kCodeVersionSalt");
#endif

std::uint64_t config_key(const ScenarioConfig& cfg, std::uint64_t salt) {
  std::uint64_t h = fnv1a_u64(kFnvOffset, salt);
  for (const char c : canonical_config(cfg)) {
    h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  }
  return h;
}

std::uint64_t multicell_key(const MultiCellConfig& cfg, std::uint64_t salt) {
  std::uint64_t h = fnv1a_u64(kFnvOffset, salt ^ 0x6d63656c6cULL);  // "mcell"
  for (const char c : canonical_multicell_config(cfg)) {
    h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  }
  return h;
}

std::string key_hex(std::uint64_t key) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace pp::exp::sweep

// Content-addressed cache keys for scenario results.
//
// A scenario run is a pure function of its ScenarioConfig (the simulator
// is bit-deterministic, and the replay digests of src/exp/digest.hpp prove
// it), so a canonical serialization of the config is an exact content key
// for the result.  `canonical_config` renders every field — in a fixed
// order, with doubles in hexfloat so the text round-trips bit-exactly —
// and `config_key` folds that text plus a salt through FNV-1a.
//
// The salt is the invalidation lever:
//   * kCodeVersionSalt bakes in the sweep-cache schema AND the simulation
//     behaviour version.  Bump it in any PR that changes what a scenario
//     produces (new event ordering, recalibrated models, new stats) —
//     every cached result is stale the moment behaviour shifts.
//   * Options::salt (see sweep.hpp) lets tests and tools force a cold run
//     without touching the cache directory.
//
// Guard rail: canonical_config must cover every ScenarioConfig field, or
// two configs differing in the missed field would collide on one cache
// entry.  The static_assert below pins sizeof(ScenarioConfig) on the
// toolchain we build on; when adding a field it fires, reminding you to
// extend the serialization and bump kCodeVersionSalt.
#pragma once

#include <cstdint>
#include <string>

#include "exp/digest.hpp"
#include "exp/multicell.hpp"
#include "exp/scenario.hpp"

namespace pp::exp::sweep {

// Schema+behaviour version; bump on any change to canonical_config's
// format, RunRecord serialization, or simulation semantics.
// 0002: event-engine overhaul (pooled callbacks, 4-ary heap) — digests are
// unchanged by design, but perf baselines must be re-measured cold.
// 0003: channel-quality subsystem + policy zoo — new canonical_config
// fields (channel.*), new RunRecord columns (mean_delay_ms/delay_samples).
// 0004: client churn lifecycle — new canonical_config fields
// (measured_goodput, fault.storm.*), new RunRecord assoc counters.
// 0005: chunk-queue data path — batched burst emission changes delivery
// timing (one AP delay draw per burst, frames land inside one reservation)
// and RNG draw order; replay digests re-pinned.
// 0006: multi-cell scale-out — jitter-derived early-wake guard shifts every
// adaptive-compensation run (new canonical_config field jitter_guard);
// measured_goodput composes with all demand-driven policies; replay
// digests re-pinned.
inline constexpr std::uint64_t kCodeVersionSalt = 0x7070'5357'0006ULL;

// Deterministic text rendering of every config field ("k=v\n" lines).
std::string canonical_config(const ScenarioConfig& cfg);

// Multi-cell fleets are pure functions of their MultiCellConfig the same
// way a scenario is of its ScenarioConfig (worker count provably does not
// matter — see tests/multicell_test.cpp), so cell count, backbone latency,
// and the cross-traffic shape are first-class sweep axes.  The canonical
// text embeds the per-cell scenario rendering, so any cell-level change
// propagates into the fleet key automatically.
std::string canonical_multicell_config(const MultiCellConfig& cfg);

// FNV-1a over salt + canonical text.
std::uint64_t config_key(const ScenarioConfig& cfg,
                         std::uint64_t salt = kCodeVersionSalt);
std::uint64_t multicell_key(const MultiCellConfig& cfg,
                            std::uint64_t salt = kCodeVersionSalt);

// Fixed-width lowercase hex, the cache's file-name form.
std::string key_hex(std::uint64_t key);

// A result can only be cached when it is fully captured by a RunRecord:
// retained traces and observer snapshots do not round-trip through the
// on-disk format, so those runs always execute live.
inline bool cacheable(const ScenarioConfig& cfg) {
  return !cfg.keep_trace && !cfg.keep_obs;
}

}  // namespace pp::exp::sweep

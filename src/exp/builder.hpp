// ScenarioBuilder: the validated front door for assembling a
// ScenarioConfig, plus the named presets behind the paper's figures.
//
// The raw aggregate stays the immutable built product — run_scenario and
// the sweep engine consume a plain ScenarioConfig — but construction goes
// through the builder, which rejects nonsense at build() time instead of
// letting it surface as a confusing mid-run failure (or worse, a silently
// ignored knob): a slotted TCP weight on a non-slotted policy, a fault
// window that outlives the horizon, a fidelity index off the end of
// workload::kFidelities, and so on.
//
// Presets encode the experiment grids that used to be copy-pasted across
// the bench binaries: fig4()/fig5()/fig6()/fig7() match the paper's
// Section 4 setups, fault_battery() the SRP-blackout sweep, degradation()
// the hostile everything-at-once example.  A preset returns a builder, so
// call sites chain the knob under study and build():
//
//   auto cfg = ScenarioBuilder::fig7(/*fidelity=*/2, /*tcp_weight=*/0.33)
//                  .seed(7)
//                  .build();
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "exp/scenario.hpp"

namespace pp::exp {

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  // -- Roles -----------------------------------------------------------------------
  ScenarioBuilder& roles(std::vector<int> rs);
  ScenarioBuilder& video(int count, int fidelity);  // appends
  ScenarioBuilder& web(int count = 1);              // appends
  ScenarioBuilder& ftp(int count = 1);              // appends

  // -- Schedule --------------------------------------------------------------------
  ScenarioBuilder& policy(IntervalPolicy p);
  ScenarioBuilder& slotted_tcp_weight(double w);  // SlottedStatic500 only
  ScenarioBuilder& early_transition(sim::Duration d);
  ScenarioBuilder& compensation(client::CompensationMode m);
  ScenarioBuilder& honor_reuse(bool on);
  ScenarioBuilder& schedule_repeats(int k);
  ScenarioBuilder& schedule_repeat_spacing(sim::Duration d);
  ScenarioBuilder& miss_escalation(bool on = true);
  // Widen demand-driven slot costs with measured EWMA goodput (any
  // dynamic policy; static schedules ignore per-client costs).
  ScenarioBuilder& measured_goodput(bool on = true);
  // Derive the clients' early-wake guard from the AP jitter bound
  // (default on; fig6 opts out to expose the raw early-transition knob).
  ScenarioBuilder& jitter_guard(bool on);

  // -- Run shape -------------------------------------------------------------------
  ScenarioBuilder& seed(std::uint64_t s);
  ScenarioBuilder& duration_s(double s);
  ScenarioBuilder& video_start_s(double s);
  ScenarioBuilder& video_spacing_s(double s);
  ScenarioBuilder& ftp_bytes(std::uint64_t bytes);
  ScenarioBuilder& web_pages(int pages);
  ScenarioBuilder& web_think_mean_s(double s);
  ScenarioBuilder& video_adaptive(bool on);

  // -- Substrate -------------------------------------------------------------------
  ScenarioBuilder& proxy_mode(proxy::ProxyMode m);
  ScenarioBuilder& cost_model_scale(double scale);
  ScenarioBuilder& naive_clients(bool on = true);
  ScenarioBuilder& wireless_p_loss(double p);
  ScenarioBuilder& wireless(net::WirelessParams wp);
  ScenarioBuilder& ap(net::AccessPointParams app);
  ScenarioBuilder& ap_jitter(double p_spike, sim::Duration spike_max);

  // -- Faults & retention ----------------------------------------------------------
  ScenarioBuilder& fault(fault::FaultSpec spec);
  // Mutable access for incremental window building (validated at build()).
  fault::FaultSpec& fault_spec() { return cfg_.fault; }
  // Channel-quality model (mutually exclusive with fault injection: the
  // FaultPlan owns the loss model on faulted runs).
  ScenarioBuilder& channel(channel::ChannelSpec spec);
  channel::ChannelSpec& channel_spec() { return cfg_.channel; }
  ScenarioBuilder& keep_trace(bool on = true);
  ScenarioBuilder& keep_obs(bool on = true);

  // Validates and returns the immutable aggregate.  Throws
  // std::invalid_argument with a field-naming message on any violation.
  ScenarioConfig build() const;

  // -- Named presets (the paper's experiment setups) -------------------------------
  // Figure 4 / §4.2: an access pattern under one burst-interval policy,
  // seed 42, 140 s — the common battery cell.
  static ScenarioBuilder fig4(std::vector<int> pattern, IntervalPolicy p);
  // Figure 5: 7 video + 3 web mixed pattern under one policy.
  static ScenarioBuilder fig5(std::vector<int> pattern, IntervalPolicy p);
  // Figure 6: one 56K client at 100 ms with pronounced AP jitter and the
  // wireless trace retained for postmortem replay.
  static ScenarioBuilder fig6();
  // Figure 7: nine video clients of one fidelity + one background web
  // client on the slotted static schedule.
  static ScenarioBuilder fig7(int fidelity, double tcp_weight);
  // Fault battery base (bench/fault_sweep): `clients` 128K streams, no
  // channel noise; `faulted` adds the SRP-blackout fades + one AP stall.
  static ScenarioBuilder fault_battery(int clients, double duration_s,
                                       bool faulted);
  // Hostile everything-at-once scenario (examples/degradation_report):
  // GE corruption + one window of every typed fault, hardening on.
  static ScenarioBuilder degradation(double duration_s);

 private:
  ScenarioConfig cfg_;
  bool weight_set_ = false;
};

namespace presets {

// The paper's five Figure-4 access patterns, ten clients each.
// 0=56K 1=128K 2=256K 3=512K.
std::vector<std::pair<std::string, std::vector<int>>> fig4_patterns();
// Figure 5: seven video clients + three web clients.
std::vector<std::pair<std::string, std::vector<int>>> fig5_patterns();
// The three dynamic burst-interval policies, display-labelled.
std::vector<std::pair<std::string, IntervalPolicy>> dynamic_intervals();

}  // namespace presets

}  // namespace pp::exp

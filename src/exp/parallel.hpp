// Parallel experiment fan-out.
//
// Each scenario runs in its own Simulator instance with no shared mutable
// state, so whole configurations are embarrassingly parallel: a fixed pool
// of std::jthread workers pulls indices from an atomic counter.  Results
// land in order, so output is deterministic regardless of thread timing.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace pp::exp {

// Run tasks[i]() for every i, `threads`-wide; returns results in order.
template <typename Result>
std::vector<Result> run_parallel(
    const std::vector<std::function<Result()>>& tasks, unsigned threads = 0) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(tasks.size() ? tasks.size() : 1));
  std::vector<Result> results(tasks.size());
  std::atomic<std::size_t> next{0};
  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) return;
          results[i] = tasks[i]();
        }
      });
    }
  }  // jthreads join here
  return results;
}

}  // namespace pp::exp

// Parallel experiment fan-out.
//
// Each scenario runs in its own Simulator instance with no shared mutable
// state, so whole configurations are embarrassingly parallel: a fixed pool
// of std::jthread workers pulls indices from an atomic counter.  Results
// land in order, so output is deterministic regardless of thread timing.
//
// Exception safety: a task that throws must not let the exception escape
// the worker thread (that would std::terminate the process).  The first
// exception is captured; remaining queued tasks are skipped, in-flight
// tasks finish, all workers join, and the exception is rethrown in the
// caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pp::exp {

// Run tasks[i]() for every i, `threads`-wide; returns results in order.
// If any task throws, the first exception (by completion order) is
// rethrown here after all workers have joined.
template <typename Result>
std::vector<Result> run_parallel(
    const std::vector<std::function<Result()>>& tasks, unsigned threads = 0) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(tasks.size() ? tasks.size() : 1));
  std::vector<Result> results(tasks.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) return;
          try {
            results[i] = tasks[i]();
          } catch (...) {
            const std::lock_guard<std::mutex> lock{error_mu};
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace pp::exp

// Parallel experiment fan-out with work stealing.
//
// Each scenario runs in its own Simulator instance with no shared mutable
// state, so whole configurations are embarrassingly parallel.  Scenario
// durations vary wildly across a battery (a 400 s ftp ablation next to a
// 60 s loss sweep), so a single shared counter leaves late workers idle
// behind one long task queue.  Instead every worker owns a deque of task
// indices, seeded in contiguous blocks; a worker pops from the front of
// its own deque and, when empty, steals from the *back* of a victim's, so
// thieves take the work farthest from the owner's current position.
// Results still land at their original indices, so output is deterministic
// regardless of thread timing or steal order.
//
// Thread-count resolution (resolve_threads):
//   1. an explicit `threads` argument wins (tests pin exact widths);
//   2. else the PP_THREADS environment variable, when a positive integer;
//   3. else 1 under tsan/asan builds (sanitized CI runners are 2-core
//      machines that a hardware_concurrency-wide pool oversubscribes);
//   4. else std::thread::hardware_concurrency().
//
// Exception safety: a task that throws must not let the exception escape
// the worker thread (that would std::terminate the process).  The first
// exception is captured; remaining queued tasks are skipped, in-flight
// tasks finish, all workers join, and the exception is rethrown in the
// caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PP_EXP_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PP_EXP_SANITIZED 1
#endif
#endif
#ifndef PP_EXP_SANITIZED
#define PP_EXP_SANITIZED 0
#endif

namespace pp::exp {

inline constexpr bool kSanitizedBuild = PP_EXP_SANITIZED != 0;

// Number of workers a run_parallel call will actually use (see the
// resolution order in the header comment).  Exposed so callers and tests
// can predict pool width.
inline unsigned resolve_threads(unsigned requested, std::size_t n_tasks) {
  unsigned t = requested;
  if (t == 0) {
    if (const char* env = std::getenv("PP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) t = static_cast<unsigned>(v);
    }
  }
  if (t == 0) {
    t = kSanitizedBuild ? 1u : std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min<unsigned>(t, static_cast<unsigned>(n_tasks ? n_tasks : 1));
}

// Run tasks[i]() for every i; returns results in order.  `on_done(done,
// total)` — when provided — is invoked after each task completes, under an
// internal mutex (callbacks are serialized and may aggregate freely).  If
// any task throws, the first exception (by completion order) is rethrown
// here after all workers have joined.
template <typename Result>
std::vector<Result> run_parallel(
    const std::vector<std::function<Result()>>& tasks, unsigned threads = 0,
    const std::function<void(std::size_t, std::size_t)>& on_done = {}) {
  threads = resolve_threads(threads, tasks.size());
  std::vector<Result> results(tasks.size());

  // Per-worker deques: owner pops the front, thieves pop the back.  A
  // plain mutex per deque is plenty here — tasks are whole simulations,
  // milliseconds to minutes each, so queue traffic is negligible.
  struct StealQueue {
    std::mutex mu;
    std::deque<std::size_t> dq;
  };
  std::vector<std::unique_ptr<StealQueue>> queues;
  queues.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    queues.push_back(std::make_unique<StealQueue>());
  }
  // Contiguous block seeding keeps each worker near its original range, so
  // with evenly-sized tasks stealing is rare and order of execution stays
  // close to index order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    queues[i * threads / tasks.size()]->dq.push_back(i);
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::size_t done = 0;
  std::mutex done_mu;
  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          std::size_t i = 0;
          bool got = false;
          {
            StealQueue& own = *queues[t];
            const std::lock_guard<std::mutex> lock{own.mu};
            if (!own.dq.empty()) {
              i = own.dq.front();
              own.dq.pop_front();
              got = true;
            }
          }
          for (unsigned k = 1; !got && k < threads; ++k) {
            StealQueue& victim = *queues[(t + k) % threads];
            const std::lock_guard<std::mutex> lock{victim.mu};
            if (!victim.dq.empty()) {
              i = victim.dq.back();
              victim.dq.pop_back();
              got = true;
            }
          }
          // No queue ever refills, so empty-everywhere means every index
          // has been claimed (possibly still executing on another worker).
          if (!got) return;
          try {
            results[i] = tasks[i]();
            if (on_done) {
              const std::lock_guard<std::mutex> lock{done_mu};
              on_done(++done, tasks.size());
            }
          } catch (...) {
            const std::lock_guard<std::mutex> lock{error_mu};
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace pp::exp

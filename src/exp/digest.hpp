// Replay digests: order-sensitive FNV-1a fingerprints of an observed run.
//
// Two runs of the same scenario are bit-identical exactly when their
// digests match — the digest folds every timeline event in order plus all
// metric counters and histogram buckets, so any divergence in event order,
// timing, or counts changes it.  The determinism harness runs each example
// scenario twice under different unordered-container hash salts
// (net::set_hash_salt) and diffs the digests; a mismatch means some code
// path let hash-bucket iteration order leak into simulation behaviour.
#pragma once

#include <cstdint>

#include "exp/scenario.hpp"
#include "obs/observer.hpp"

namespace pp::exp {

// FNV-1a 64-bit building blocks (offset basis / prime from the spec).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime;
}
// Folds `v` as 8 fixed-width little-endian bytes (endianness-independent:
// bytes are extracted by shifting, not by reinterpreting memory).
inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) h = fnv1a_byte(h, (v >> (8 * i)) & 0xff);
  return h;
}

// Order-sensitive digest of every retained timeline event.
std::uint64_t timeline_digest(const obs::Timeline& tl);
// Digest of all counters and histogram buckets (maps are ordered by name).
// Skips "sim."-prefixed engine meta-counters: they report how the event
// engine executed (allocation/pruning behaviour), not what the simulated
// system did, so they must not perturb the behavioral fingerprint.
std::uint64_t metrics_digest(const obs::MetricsRegistry& m);
// Combined digest of a run's full observer state.
std::uint64_t observer_digest(const obs::Observer& o);

// Run `cfg` (keep_obs forced on) and digest the resulting observer.
// Returns 0 when observability is compiled out or detached.
std::uint64_t run_digest(ScenarioConfig cfg);

}  // namespace pp::exp

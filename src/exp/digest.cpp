#include "exp/digest.hpp"

namespace pp::exp {

namespace {

std::uint64_t fold_string(std::uint64_t h, const std::string& s) {
  h = fnv1a_u64(h, s.size());
  for (char c : s) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

// "sim."-prefixed counters are event-engine meta-metrics (pooled-callback
// and slab accounting, see Testbed::publish_sim_metrics).  They describe
// how the engine executed a run, not what the simulated system did, and
// they shift with engine internals (SBO threshold, pool sizing) — so the
// behavioral fingerprint must not fold them in.
bool engine_meta_metric(const std::string& name) {
  return name.rfind("sim.", 0) == 0;
}

}  // namespace

std::uint64_t timeline_digest(const obs::Timeline& tl) {
  std::uint64_t h = kFnvOffset;
  for (const obs::TimelineEvent& e : tl.events()) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(e.at.count_ns()));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(e.dur.count_ns()));
    h = fnv1a_byte(h, static_cast<std::uint8_t>(e.kind));
    h = fnv1a_u64(h, e.subject);
    h = fnv1a_u64(h, e.value);
  }
  h = fnv1a_u64(h, tl.size());
  h = fnv1a_u64(h, tl.dropped());
  return h;
}

std::uint64_t metrics_digest(const obs::MetricsRegistry& m) {
  std::uint64_t h = kFnvOffset;
  for (const auto& [name, ctr] : m.counters()) {
    if (engine_meta_metric(name)) continue;
    h = fold_string(h, name);
    h = fnv1a_u64(h, ctr.value());
  }
  for (const auto& [name, hist] : m.histograms()) {
    h = fold_string(h, name);
    h = fnv1a_u64(h, hist.count());
    h = fnv1a_u64(h, hist.sum());
  }
  return h;
}

std::uint64_t observer_digest(const obs::Observer& o) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(h, timeline_digest(o.timeline));
  h = fnv1a_u64(h, metrics_digest(o.metrics));
  return h;
}

std::uint64_t run_digest(ScenarioConfig cfg) {
  cfg.keep_obs = true;
  const ScenarioResult res = run_scenario(cfg);
  return res.obs ? observer_digest(*res.obs) : 0;
}

}  // namespace pp::exp

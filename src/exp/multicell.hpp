// Multi-cell scale-out: N independent cells stepped in lockstep epochs.
//
// A Cell is a full cell partition — AP + wireless medium + proxy shard +
// its clients — owning an independent simulator and event queue (a
// ScenarioRun).  Cells share nothing mutable, so a MultiCellTestbed can
// advance all of them concurrently on the work-stealing pool of
// exp/parallel.hpp.
//
// Cross-cell traffic crosses at the wired backbone only, and the backbone
// has a fixed latency L.  That bound makes conservative time-windowed
// synchronization exact rather than approximate: with epoch length L, a
// message emitted during epoch k (send time in [kL, (k+1)L)) arrives at
// send + L, which always falls inside epoch k+1's window [(k+1)L, (k+2)L).
// So cells advance one epoch in parallel, meet at a barrier, and the
// coordinator routes every outbox — in cell-id order, scheduling arrivals
// into the destination cells' event queues — before the next epoch begins.
// No cell ever receives an event in its past, and the exchange schedule is
// a pure function of the configuration, so replay digests are independent
// of worker count, hash salt, and cell execution order.
//
// The generator is deterministic by construction (no RNG): each cell emits
// a fixed-size message every `period`, phase-staggered by cell id, to
// destination cells in round-robin order (skipping itself) and to clients
// in round-robin order within the destination.  Arrivals enter the
// destination through a backbone gateway node on the wired LAN and flow
// down the normal proxy path: interception, per-client queueing, burst
// scheduling.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/scenario.hpp"
#include "obs/metrics.hpp"
#include "transport/udp.hpp"

namespace pp::exp {

// Deterministic cross-cell traffic (no RNG anywhere in the generator).
struct CrossTrafficSpec {
  bool enabled = true;
  sim::Duration period = sim::Time::ms(250);  // per-cell emission period
  std::uint32_t bytes = 600;                  // payload per message
  int fanout = 1;                             // messages per emission
  double start_s = 1.0;                       // first emission (plus phase)
};

struct MultiCellConfig {
  int num_cells = 2;
  // Per-cell scenario; cell c runs it with seed = cell.seed + 9973 * c so
  // cells are statistically independent but individually reproducible.
  ScenarioConfig cell;
  // Wired backbone latency between any two cells; also the epoch length
  // (see the header comment — the equality is what makes the windowed
  // exchange conservative).
  sim::Duration backbone_latency = sim::Time::ms(20);
  CrossTrafficSpec cross;
};

struct MultiCellResult {
  std::vector<ScenarioResult> cells;
  // FNV-1a fold of the per-cell observer digests in cell-id order; 0 when
  // observability is compiled out.  Bit-identical across worker counts.
  std::uint64_t digest = 0;
  // Fleet-wide aggregation of the per-cell metrics registries (counters
  // and histograms summed, time gauges unioned), merged at teardown in
  // cell-id order.
  obs::MetricsRegistry merged;
  std::uint64_t backbone_messages = 0;  // routed across the backbone
  std::uint64_t events_total = 0;       // sum of per-cell events fired
};

// One cell partition: an independent ScenarioRun plus the backbone
// gateway (a wired server node whose UDP socket injects arrivals into the
// cell) and the outbox the coordinator drains at each epoch barrier.
class Cell {
 public:
  struct Msg {
    int dst_cell;
    int dst_client;       // client index within the destination cell
    std::uint32_t bytes;
    sim::Time sent_at;    // source-cell send time
  };

  Cell(int id, const MultiCellConfig& cfg);

  int id() const { return id_; }
  ScenarioRun& run() { return *run_; }
  std::vector<Msg>& outbox() { return outbox_; }

  // Advance this cell's simulator to `t` (one epoch; called from a worker
  // thread — touches only this cell's state).
  void advance(sim::Time t) { run_->advance(t); }

  // Schedule a routed message to arrive at `at` (>= this cell's clock):
  // the gateway sends a UDP datagram to the target client, entering the
  // proxy's normal downlink path.
  void inject(const Msg& m, sim::Time at);

 private:
  void emit(sim::Time now);

  int id_;
  int num_cells_;
  CrossTrafficSpec cross_;
  std::unique_ptr<ScenarioRun> run_;
  net::Node* gateway_ = nullptr;  // owned by the cell's Testbed
  std::unique_ptr<transport::UdpSocket> gw_sock_;
  std::vector<Msg> outbox_;
  int rr_cell_ = 0;    // round-robin destination cell cursor
  int rr_client_ = 0;  // round-robin destination client cursor
};

class MultiCellTestbed {
 public:
  explicit MultiCellTestbed(const MultiCellConfig& cfg);
  ~MultiCellTestbed();

  int num_cells() const { return static_cast<int>(cells_.size()); }
  Cell& cell(int i) { return *cells_.at(static_cast<std::size_t>(i)); }

  // Run all cells to the configured horizon in lockstep epochs on
  // `threads` workers (0 = resolve from PP_THREADS / hardware), then
  // finalize and collect.  `cell_order` (when non-empty) permutes the
  // order cells are *dispatched* in — results must not depend on it; the
  // determinism tests exercise that.
  MultiCellResult run(unsigned threads = 0,
                      const std::vector<int>& cell_order = {});

 private:
  MultiCellConfig cfg_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::uint64_t backbone_messages_ = 0;
};

MultiCellResult run_multicell(const MultiCellConfig& cfg,
                              unsigned threads = 0);

}  // namespace pp::exp

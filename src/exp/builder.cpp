#include "exp/builder.hpp"

#include <stdexcept>
#include <string>

#include "exp/testbed.hpp"
#include "workload/video.hpp"

namespace pp::exp {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("ScenarioBuilder: " + what);
}

}  // namespace

ScenarioBuilder& ScenarioBuilder::roles(std::vector<int> rs) {
  cfg_.roles = std::move(rs);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::video(int count, int fidelity) {
  cfg_.roles.reserve(cfg_.roles.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) cfg_.roles.push_back(fidelity);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::web(int count) {
  cfg_.roles.reserve(cfg_.roles.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) cfg_.roles.push_back(kRoleWeb);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ftp(int count) {
  cfg_.roles.reserve(cfg_.roles.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) cfg_.roles.push_back(kRoleFtp);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::policy(IntervalPolicy p) {
  cfg_.policy = p;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::slotted_tcp_weight(double w) {
  cfg_.slotted_tcp_weight = w;
  weight_set_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::early_transition(sim::Duration d) {
  cfg_.early_transition = d;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::compensation(client::CompensationMode m) {
  cfg_.compensation = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::honor_reuse(bool on) {
  cfg_.honor_reuse = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::schedule_repeats(int k) {
  cfg_.schedule_repeats = k;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::schedule_repeat_spacing(sim::Duration d) {
  cfg_.schedule_repeat_spacing = d;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::miss_escalation(bool on) {
  cfg_.miss_escalation = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::measured_goodput(bool on) {
  cfg_.measured_goodput = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::jitter_guard(bool on) {
  cfg_.jitter_guard = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  cfg_.seed = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duration_s(double s) {
  cfg_.duration_s = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::video_start_s(double s) {
  cfg_.video_start_s = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::video_spacing_s(double s) {
  cfg_.video_spacing_s = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ftp_bytes(std::uint64_t bytes) {
  cfg_.ftp_bytes = bytes;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::web_pages(int pages) {
  cfg_.web_pages = pages;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::web_think_mean_s(double s) {
  cfg_.web_think_mean_s = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::video_adaptive(bool on) {
  cfg_.video_adaptive = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::proxy_mode(proxy::ProxyMode m) {
  cfg_.proxy_mode = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cost_model_scale(double scale) {
  cfg_.cost_model_scale = scale;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::naive_clients(bool on) {
  cfg_.naive_clients = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::wireless_p_loss(double p) {
  cfg_.wireless_p_loss = p;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::wireless(net::WirelessParams wp) {
  cfg_.wireless = wp;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ap(net::AccessPointParams app) {
  cfg_.ap = app;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ap_jitter(double p_spike,
                                            sim::Duration spike_max) {
  net::AccessPointParams app = cfg_.ap ? *cfg_.ap : net::AccessPointParams{};
  app.p_spike = p_spike;
  app.spike_max = spike_max;
  cfg_.ap = app;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault(fault::FaultSpec spec) {
  cfg_.fault = std::move(spec);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::channel(channel::ChannelSpec spec) {
  cfg_.channel = std::move(spec);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::keep_trace(bool on) {
  cfg_.keep_trace = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::keep_obs(bool on) {
  cfg_.keep_obs = on;
  return *this;
}

ScenarioConfig ScenarioBuilder::build() const {
  const ScenarioConfig& c = cfg_;
  if (c.roles.empty()) fail("no clients (roles is empty)");
  bool any_video = false, any_tcp = false;
  for (const int r : c.roles) {
    if (is_video_role(r)) {
      if (r >= workload::kNumFidelities) {
        fail("fidelity index " + std::to_string(r) + " out of range (have " +
             std::to_string(workload::kNumFidelities) + " fidelities)");
      }
      any_video = true;
    } else if (r == kRoleWeb || r == kRoleFtp) {
      any_tcp = true;
    } else if (r == kRoleIdle) {
      // Neither video nor TCP: idle clients carry no workload of their own.
    } else {
      fail("unknown role " + std::to_string(r));
    }
  }
  if (weight_set_ && c.policy != IntervalPolicy::SlottedStatic500) {
    fail("slotted_tcp_weight is only meaningful under SlottedStatic500");
  }
  if (c.policy == IntervalPolicy::SlottedStatic500) {
    if (!any_video || !any_tcp) {
      fail("SlottedStatic500 needs both TCP and UDP clients");
    }
    if (!(c.slotted_tcp_weight > 0.0 && c.slotted_tcp_weight < 1.0)) {
      fail("slotted_tcp_weight must be in (0, 1)");
    }
  }
  if (!(c.duration_s > 0)) fail("duration_s must be positive");
  if (c.video_start_s < 0) fail("video_start_s must be non-negative");
  if (c.video_spacing_s < 0) fail("video_spacing_s must be non-negative");
  if (c.early_transition < sim::Duration{}) {
    fail("early_transition must be non-negative");
  }
  if (!(c.cost_model_scale > 0)) fail("cost_model_scale must be positive");
  if (c.wireless_p_loss < 0 || c.wireless_p_loss >= 1.0) {
    fail("wireless_p_loss must be in [0, 1)");
  }
  if (c.schedule_repeats < 1) fail("schedule_repeats must be >= 1");
  if (c.schedule_repeats > 1 &&
      c.schedule_repeat_spacing <= sim::Duration{}) {
    fail("schedule_repeat_spacing must be positive when repeating");
  }
  const auto check_web = [&](const char* what, bool ok) {
    if (!ok) fail(what);
  };
  check_web("web_pages must be positive", c.web_pages > 0);
  check_web("web_think_mean_s must be positive", c.web_think_mean_s > 0);
  check_web("ftp_bytes must be positive", c.ftp_bytes > 0);
  const auto& ge = c.fault.ge;
  for (const double p :
       {ge.p_good_bad, ge.p_bad_good, ge.loss_good, ge.loss_bad}) {
    if (p < 0 || p > 1.0) fail("Gilbert-Elliott probabilities must be in [0, 1]");
  }
  if (c.channel.enabled) {
    if (c.fault.any()) {
      fail("channel model and fault injection are mutually exclusive (the "
           "FaultPlan owns the loss model on faulted runs)");
    }
    if (c.channel.rungs.size() < 2) {
      fail("channel model needs at least 2 quality rungs");
    }
    if (!(c.channel.ewma_alpha > 0.0 && c.channel.ewma_alpha <= 1.0)) {
      fail("channel ewma_alpha must be in (0, 1]");
    }
    for (const auto& r : c.channel.rungs) {
      for (const double p : {r.p_up, r.p_down, r.loss}) {
        if (p < 0 || p > 1.0) {
          fail("channel rung probabilities must be in [0, 1]");
        }
      }
      if (r.p_up + r.p_down > 1.0) {
        fail("channel rung p_up + p_down must not exceed 1");
      }
      if (!(r.goodput_bps > 0)) fail("channel rung goodput must be positive");
    }
  }
  const sim::Time horizon = sim::Time::seconds(c.duration_s);
  for (const auto& w : c.fault.windows) {
    if (w.duration <= sim::Duration{}) {
      fail("fault window duration must be positive");
    }
    if (w.start < sim::Time{}) fail("fault window starts before t=0");
    if (w.end() > horizon) {
      fail("fault window outlives the horizon (the auditor requires every "
           "window to recover before end of run)");
    }
    const bool per_client = w.kind == fault::FaultKind::DeepFade ||
                            w.kind == fault::FaultKind::ClientChurn;
    const bool has_client = w.client != net::Ipv4Addr{};
    if (per_client && !has_client) {
      fail(std::string(fault::to_string(w.kind)) +
           " window needs a client address");
    }
    if (!per_client && has_client) {
      fail("only DeepFade and ClientChurn windows take a client address");
    }
  }
  const auto& storm = c.fault.storm;
  if (storm.enabled) {
    if (!(storm.flap_fraction > 0.0 && storm.flap_fraction <= 1.0)) {
      fail("churn storm flap_fraction must be in (0, 1]");
    }
    if (storm.duration <= sim::Duration{}) {
      fail("churn storm duration must be positive");
    }
    if (storm.start < sim::Time{}) fail("churn storm starts before t=0");
    if (storm.start + storm.duration > horizon) {
      fail("churn storm outlives the horizon");
    }
    if (storm.min_away <= sim::Duration{} || storm.min_home <= sim::Duration{}) {
      fail("churn storm min periods must be positive");
    }
    if (storm.max_away < storm.min_away || storm.max_home < storm.min_home) {
      fail("churn storm max periods must be >= their minimums");
    }
  }
  if (c.measured_goodput && (c.policy == IntervalPolicy::StaticEqual100 ||
                             c.policy == IntervalPolicy::SlottedStatic500)) {
    fail("measured_goodput needs a demand-driven policy (static schedules "
         "ignore per-client slot costs)");
  }
  return cfg_;
}

// -- Presets -----------------------------------------------------------------------

ScenarioBuilder ScenarioBuilder::fig4(std::vector<int> pattern,
                                      IntervalPolicy p) {
  return ScenarioBuilder{}
      .roles(std::move(pattern))
      .policy(p)
      .seed(42)
      .duration_s(140.0);
}

ScenarioBuilder ScenarioBuilder::fig5(std::vector<int> pattern,
                                      IntervalPolicy p) {
  return fig4(std::move(pattern), p);
}

ScenarioBuilder ScenarioBuilder::fig6() {
  // Stressed timing: heavier access-point jitter makes the early-transition
  // trade-off visible, as the paper's real access point did.
  return ScenarioBuilder{}
      .video(1, 0)
      .policy(IntervalPolicy::Fixed100)
      .seed(19)
      .duration_s(140.0)
      .keep_trace()
      .ap_jitter(0.08, sim::Time::ms(8))
      // The whole point of fig6 is the raw early-transition trade-off:
      // auto-deriving the guard would flatten the curve it plots.
      .jitter_guard(false);
}

ScenarioBuilder ScenarioBuilder::fig7(int fidelity, double tcp_weight) {
  // Nine video clients of one fidelity + one background web client
  // ("medium" background traffic).
  return ScenarioBuilder{}
      .video(9, fidelity)
      .web(1)
      .policy(IntervalPolicy::SlottedStatic500)
      .slotted_tcp_weight(tcp_weight)
      .web_think_mean_s(2.0)
      .seed(42)
      .duration_s(140.0);
}

ScenarioBuilder ScenarioBuilder::fault_battery(int clients, double duration_s,
                                               bool faulted) {
  ScenarioBuilder b = ScenarioBuilder{}
                          .video(clients, 1)  // 128K streams
                          .policy(IntervalPolicy::Fixed500)
                          .seed(42)
                          .duration_s(duration_s)
                          .wireless_p_loss(0.0);  // fades are the only loss
  if (faulted) {
    using sim::Time;
    // SRPs fire at 500 ms + k * 500 ms; blackout the broadcast instant for
    // client (k mod clients).  Stop early enough that every window closes
    // before the horizon (the auditor requires recovery by end of run).
    for (int k = 0;; ++k) {
      const Time srp = Time::ms(500 + 500 * k);
      if (srp.to_seconds() >= duration_s - 0.1) break;
      b.fault_spec().fade(testbed_client_ip(k % clients), srp - Time::ms(2),
                          Time::ms(10));
    }
    b.fault_spec().ap_stall(Time::seconds(duration_s / 2.0), Time::ms(800));
  }
  return b;
}

ScenarioBuilder ScenarioBuilder::degradation(double duration_s) {
  using sim::Time;
  ScenarioBuilder b = ScenarioBuilder{}
                          .video(2, 1)
                          .video(1, 2)
                          .web(1)
                          .policy(IntervalPolicy::Fixed500)
                          .seed(7)
                          .duration_s(duration_s)
                          .wireless_p_loss(0.0)
                          .keep_obs()
                          .schedule_repeats(2)
                          .miss_escalation();
  auto& f = b.fault_spec();
  f.ge.enabled = true;
  f.ge.p_good_bad = 0.01;
  f.ge.p_bad_good = 0.02;
  f.ge.loss_bad = 0.9;
  f.fade(testbed_client_ip(0), Time::seconds(8.0), Time::ms(1800));
  f.ap_stall(Time::seconds(16.0), Time::ms(900));
  f.link_flap(Time::seconds(24.0), Time::ms(500));
  f.proxy_pause(Time::seconds(31.0), Time::ms(1200));
  return b;
}

namespace presets {

std::vector<std::pair<std::string, std::vector<int>>> fig4_patterns() {
  return {
      {"56K", std::vector<int>(10, 0)},
      {"256K", std::vector<int>(10, 2)},
      {"512K", std::vector<int>(10, 3)},
      {"56K_512K", {0, 0, 0, 0, 0, 3, 3, 3, 3, 3}},
      {"All", {0, 0, 0, 0, 0, 0, 1, 2, 2, 3}},
  };
}

std::vector<std::pair<std::string, std::vector<int>>> fig5_patterns() {
  auto mixed = [](std::vector<int> video) {
    video.insert(video.end(), {kRoleWeb, kRoleWeb, kRoleWeb});
    return video;
  };
  return {
      {"56K/TCP", mixed(std::vector<int>(7, 0))},
      {"256K/TCP", mixed(std::vector<int>(7, 2))},
      {"512K/TCP", mixed(std::vector<int>(7, 3))},
      {"All/TCP", mixed({0, 0, 1, 1, 2, 2, 3})},
  };
}

std::vector<std::pair<std::string, IntervalPolicy>> dynamic_intervals() {
  return {{"100ms", IntervalPolicy::Fixed100},
          {"500ms", IntervalPolicy::Fixed500},
          {"variable", IntervalPolicy::Variable}};
}

}  // namespace presets

}  // namespace pp::exp

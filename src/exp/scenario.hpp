// Scenario runners for the paper's experiments (Section 4).
//
// One generic runner covers the three experiment families — all-video
// (Figure 4), all-web (the "Multiple TCP clients" text result), and mixed
// video + TCP (Figure 5) — plus the static and slotted-static baselines
// (Section 4.3 / Figure 7) and the drop studies.  Each client is assigned
// a role: a video fidelity, web browsing, or an ftp download.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "channel/spec.hpp"
#include "client/power_daemon.hpp"
#include "exp/testbed.hpp"
#include "fault/spec.hpp"
#include "proxy/transparent_proxy.hpp"
#include "trace/record.hpp"

namespace pp::exp {

// Client roles.
inline constexpr int kRoleWeb = -1;
inline constexpr int kRoleFtp = -2;
// Idle: associated and power-managed but runs no application of its own —
// it only receives what others send it (cross-cell backbone traffic in the
// multi-cell engine).  This is what makes 100k-client fleets tractable:
// an idle client costs a few schedule events per SRP, not a workload.
inline constexpr int kRoleIdle = -3;
// Non-negative role values are video fidelity indices (see
// workload::kFidelities): 0=56K, 1=128K, 2=256K, 3=512K.

inline bool is_video_role(int role) { return role >= 0; }
std::string role_name(int role);

enum class IntervalPolicy {
  Fixed100,
  Fixed500,
  Variable,
  StaticEqual100,   // Section 4.3 static-schedule comparison
  SlottedStatic500,  // Figure 7: fixed TCP + UDP slots
  // -- Policy zoo (src/proxy/policies.hpp): queue/channel-aware layouts ----------
  LongestQueue500,   // max-queue priority, tail starved
  Opportunistic500,  // defer bad-channel clients within deadline slack
  Probabilistic500,  // randomized buffer-threshold admission
};
std::string policy_name(IntervalPolicy p);

struct ScenarioConfig {
  std::vector<int> roles;  // one per client
  IntervalPolicy policy = IntervalPolicy::Fixed500;
  std::uint64_t seed = 1;
  sim::Duration early_transition = sim::Time::ms(6);
  client::CompensationMode compensation = client::CompensationMode::Adaptive;
  // Derive the clients' early-wake guard from the AP's configured jitter
  // bound (jitter_max + spike_max): an anchor carried by a maximally-spiked
  // broadcast can shift the next arrival past a fixed early amount and
  // desync the client.  Opt out (fig6 does) to study the raw
  // early-transition trade-off the paper plots.
  bool jitter_guard = true;
  double slotted_tcp_weight = 0.33;  // only for SlottedStatic500
  proxy::ProxyMode proxy_mode = proxy::ProxyMode::Splice;
  double cost_model_scale = 1.0;  // ablation: mis-calibrated send cost
  bool honor_reuse = true;        // ablation: schedule-reuse extension
  bool naive_clients = false;     // baseline: WNIC always in high power
  double duration_s = 140.0;
  double video_start_s = 2.0;
  double video_spacing_s = 1.0;  // requests spaced ~1 s apart (Section 4.1)
  std::uint64_t ftp_bytes = 3'000'000;
  int web_pages = 20;
  double web_think_mean_s = 4.0;
  bool keep_trace = false;  // retain the monitoring-station trace
  bool keep_obs = false;    // retain the metrics registry + timeline
  // Per-client observability: each client publishes its awake time-gauge
  // and streams its power transitions into the timeline.  On by default;
  // scale runs (100k clients) turn it off and keep only the streaming
  // cell-level counters — per-client results still come from the clients'
  // own counters, which are always maintained.
  bool per_client_obs = true;
  // Default per-frame corruption probability on the wireless medium (real
  // 802.11b loses the occasional frame; lost marks and schedules are what
  // produce the paper's worst-case clients).
  double wireless_p_loss = 0.01;
  // Optional substrate overrides (drop studies, DummyNet-style shaping);
  // when set, wireless_p_loss is ignored.
  std::optional<net::WirelessParams> wireless;
  std::optional<net::AccessPointParams> ap;
  bool video_adaptive = true;  // RealServer loss adaptation on/off
  // -- Fault injection & graceful degradation (see src/fault/) -------------------
  // Gilbert–Elliott channel and typed fault windows; empty = no faults.
  fault::FaultSpec fault{};
  // -- Channel-quality model (see src/channel/) ----------------------------------
  // Per-client multi-state loss ladder with deterministic per-client RNG
  // streams; mutually exclusive with `fault` (the FaultPlan owns the loss
  // model on faulted runs).  Disabled = the flat wireless_p_loss above.
  channel::ChannelSpec channel{};
  // Proxy schedule hardening: SRP broadcast transmissions per interval.
  int schedule_repeats = 1;
  sim::Duration schedule_repeat_spacing = sim::Time::ms(3);
  // Client-side missed-schedule escalation (bounded grace backoff).
  bool miss_escalation = false;
  // Opportunistic500 only: widen slot cost estimates with the measured
  // EWMA goodput from the channel observer (never narrows them).
  bool measured_goodput = false;
};

struct ClientResult {
  net::Ipv4Addr ip;
  int role = 0;
  double saved_pct = 0;     // energy saved vs naive, percent
  double energy_mj = 0;
  double naive_mj = 0;
  double loss_pct = 0;      // packets addressed to the client it missed
  std::uint64_t packets_received = 0;
  std::uint64_t packets_missed = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t schedules_received = 0;
  std::uint64_t schedules_missed = 0;
  std::uint64_t sleeps = 0;
  // Degradation counters (see client::DaemonStats).
  std::uint64_t first_misses = 0;
  std::uint64_t repeat_misses = 0;
  std::uint64_t escalated_sleeps = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t repeats_deduped = 0;
  std::uint64_t coast_breaks = 0;
  // Application-level metrics (role-dependent).
  double app_loss_pct = 0;       // video: sequence-gap loss
  int video_fidelity_final = -1; // video: fidelity after adaptation
  // pp-lint: allow(naked-duration): derived report statistic, not sim state
  double mean_delay_ms = 0;      // mean downlink UDP datagram delay
  std::uint64_t delay_samples = 0;
  // pp-lint: allow(naked-duration): derived report statistic, not sim state
  double page_time_ms = 0;       // web: mean page completion time
  int pages_completed = 0;       // web
  double ftp_seconds = 0;        // ftp: transfer duration
  std::uint64_t app_bytes = 0;
  // Association lifecycle (zero unless churn windows enabled the agent).
  std::uint64_t assoc_joins = 0;
  std::uint64_t assoc_leaves = 0;
  std::uint64_t assoc_retries = 0;  // join + leave retransmissions
};

struct ScenarioResult {
  std::vector<ClientResult> clients;
  proxy::ProxyStats proxy_stats;
  sim::Time horizon;
  trace::TraceBuffer trace;  // populated when keep_trace
  std::uint64_t ap_drops = 0;
  std::uint64_t frames_on_air = 0;
  // Fault-layer stats (zeroed when cfg.fault is empty).
  fault::FaultStats fault_stats{};
  // Populated when keep_obs: the full metrics registry (time gauges already
  // finalized at `horizon`) and event timeline from the run.
  std::shared_ptr<obs::Observer> obs;
};

// A scenario decomposed into build / advance / collect steps.
//
// run_scenario() composes all three; the multi-cell engine
// (exp/multicell.hpp) instead holds one ScenarioRun per cell and steps
// them in lockstep epochs on worker threads, injecting backbone traffic
// between advances.  Construction builds the full testbed (servers,
// workload apps, scheduler) and starts it; advance() drains events up to a
// time (monotone across calls); finish() settles audits at the configured
// horizon and collects the ScenarioResult (call once, after the last
// advance).
class ScenarioRun {
 public:
  // `pre_start` (when given) runs after the testbed and workloads are
  // built but before bed.start(): the hook point where the multi-cell
  // engine adds its backbone gateway node to each cell.
  explicit ScenarioRun(
      const ScenarioConfig& cfg,
      // pp-lint: allow(hot-path-alloc): construction-time hook, runs once
      const std::function<void(Testbed&)>& pre_start = {});
  ~ScenarioRun();
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  Testbed& bed() { return *bed_; }
  const ScenarioConfig& config() const { return cfg_; }
  sim::Time horizon() const { return sim::Time::seconds(cfg_.duration_s); }

  void advance(sim::Time t) { bed_->run_until(t); }
  ScenarioResult finish();

 private:
  ScenarioConfig cfg_;
  std::unique_ptr<Testbed> bed_;
  struct Apps;  // servers + per-client workload applications
  std::unique_ptr<Apps> apps_;
};

ScenarioResult run_scenario(const ScenarioConfig& cfg);

// -- Summaries --------------------------------------------------------------------

struct Summary {
  double avg = 0, min = 0, max = 0;
  int n = 0;
};

// Summarize saved_pct over clients matching `pred` (all when empty).
template <typename Pred>
Summary summarize_saved(const std::vector<ClientResult>& clients, Pred pred) {
  Summary s;
  for (const auto& c : clients) {
    if (!pred(c)) continue;
    if (s.n == 0) {
      s.min = s.max = c.saved_pct;
    } else {
      s.min = std::min(s.min, c.saved_pct);
      s.max = std::max(s.max, c.saved_pct);
    }
    s.avg += c.saved_pct;
    ++s.n;
  }
  if (s.n > 0) s.avg /= s.n;
  return s;
}

Summary summarize_all(const std::vector<ClientResult>& clients);
Summary summarize_video(const std::vector<ClientResult>& clients);
Summary summarize_tcp(const std::vector<ClientResult>& clients);
double average_loss_pct(const std::vector<ClientResult>& clients);

}  // namespace pp::exp

// Trace serialization: a compact binary format plus a human-readable text
// dump.  Schedule messages are serialized structurally (entries included)
// so a trace file round-trips losslessly through the postmortem analyzer.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace pp::trace {

inline constexpr char kTraceMagic[8] = {'P', 'P', 'T', 'R', 'A', 'C', 'E', '2'};

// Binary round-trip.
void write_trace(std::ostream& os, const TraceBuffer& buf);
TraceBuffer read_trace(std::istream& is);

// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const TraceBuffer& buf);
TraceBuffer load_trace(const std::string& path);

// tcpdump-style one-line-per-frame text dump.
void dump_trace(std::ostream& os, const TraceBuffer& buf);

}  // namespace pp::trace

// The monitoring station: a promiscuous observer of the wireless medium.
//
// Mirrors the paper's tcpdump laptop — it records every frame, including
// frames the addressed client slept through (which is how postmortem loss
// accounting works).
#pragma once

#include <cstdint>

#include "net/wireless.hpp"
#include "trace/record.hpp"

namespace pp::trace {

class MonitoringStation {
 public:
  // Attaches a sniffer to the medium; records accumulate in buffer().
  explicit MonitoringStation(net::WirelessMedium& medium);

  const TraceBuffer& buffer() const { return buffer_; }
  TraceBuffer take() { return std::move(buffer_); }

  std::uint64_t frames() const { return buffer_.size(); }
  std::uint64_t bytes() const { return bytes_; }

 private:
  TraceBuffer buffer_;
  std::uint64_t bytes_ = 0;
};

}  // namespace pp::trace

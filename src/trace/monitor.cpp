#include "trace/monitor.hpp"

namespace pp::trace {

MonitoringStation::MonitoringStation(net::WirelessMedium& medium) {
  medium.add_sniffer([this](const net::SnifferRecord& r) {
    TraceRecord rec;
    rec.air_start = r.air_start;
    rec.airtime = r.airtime;
    rec.pkt_id = r.pkt.id;
    rec.src = r.pkt.src;
    rec.src_port = r.pkt.src_port;
    rec.dst = r.pkt.dst;
    rec.dst_port = r.pkt.dst_port;
    rec.proto = r.pkt.proto;
    rec.payload = r.pkt.payload;
    rec.marked = r.pkt.marked;
    rec.from_ap = r.from_ap;
    rec.delivered = r.delivered;
    rec.data = r.pkt.data;
    bytes_ += r.pkt.payload;
    buffer_.push_back(std::move(rec));
  });
}

}  // namespace pp::trace

#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "proxy/schedule.hpp"

namespace pp::trace {
namespace {

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace: truncated input");
  return v;
}

// Bit flags in the fixed record.
constexpr std::uint8_t kMarked = 1;
constexpr std::uint8_t kFromAp = 2;
constexpr std::uint8_t kDelivered = 4;
constexpr std::uint8_t kHasSchedule = 8;
constexpr std::uint8_t kTcp = 16;

}  // namespace

void write_trace(std::ostream& os, const TraceBuffer& buf) {
  os.write(kTraceMagic, sizeof kTraceMagic);
  put<std::uint64_t>(os, buf.size());
  for (const TraceRecord& r : buf) {
    put<std::int64_t>(os, r.air_start.count_ns());
    put<std::int64_t>(os, r.airtime.count_ns());
    put<std::uint64_t>(os, r.pkt_id);
    put<std::uint32_t>(os, r.src.raw());
    put<std::uint32_t>(os, r.dst.raw());
    put<std::uint16_t>(os, r.src_port);
    put<std::uint16_t>(os, r.dst_port);
    put<std::uint32_t>(os, r.payload);
    const auto* sched =
        dynamic_cast<const proxy::ScheduleMessage*>(r.data.get());
    std::uint8_t flags = 0;
    if (r.marked) flags |= kMarked;
    if (r.from_ap) flags |= kFromAp;
    if (r.delivered) flags |= kDelivered;
    if (sched != nullptr) flags |= kHasSchedule;
    if (r.proto == net::Protocol::Tcp) flags |= kTcp;
    put<std::uint8_t>(os, flags);
    if (sched != nullptr) {
      put<std::uint64_t>(os, sched->seq_no);
      put<std::int64_t>(os, sched->srp_time.count_ns());
      put<std::int64_t>(os, sched->interval.count_ns());
      put<std::int64_t>(os, sched->repeat_offset.count_ns());
      put<std::uint8_t>(os, sched->reuse_next ? 1 : 0);
      put<std::uint32_t>(os, static_cast<std::uint32_t>(sched->entries.size()));
      for (const auto& e : sched->entries) {
        put<std::uint32_t>(os, e.client.raw());
        put<std::int64_t>(os, e.rp_offset.count_ns());
        put<std::int64_t>(os, e.duration.count_ns());
        put<std::uint8_t>(os, static_cast<std::uint8_t>(e.kind));
      }
    }
  }
}

TraceBuffer read_trace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kTraceMagic, sizeof magic) != 0)
    throw std::runtime_error("trace: bad magic");
  const auto count = get<std::uint64_t>(is);
  TraceBuffer buf;
  buf.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.air_start = sim::Time::ns(get<std::int64_t>(is));
    r.airtime = sim::Time::ns(get<std::int64_t>(is));
    r.pkt_id = get<std::uint64_t>(is);
    r.src = net::Ipv4Addr{get<std::uint32_t>(is)};
    r.dst = net::Ipv4Addr{get<std::uint32_t>(is)};
    r.src_port = get<std::uint16_t>(is);
    r.dst_port = get<std::uint16_t>(is);
    r.payload = get<std::uint32_t>(is);
    const auto flags = get<std::uint8_t>(is);
    r.marked = flags & kMarked;
    r.from_ap = flags & kFromAp;
    r.delivered = flags & kDelivered;
    r.proto = (flags & kTcp) ? net::Protocol::Tcp : net::Protocol::Udp;
    if (flags & kHasSchedule) {
      auto sched = std::make_shared<proxy::ScheduleMessage>();
      sched->seq_no = get<std::uint64_t>(is);
      sched->srp_time = sim::Time::ns(get<std::int64_t>(is));
      sched->interval = sim::Time::ns(get<std::int64_t>(is));
      sched->repeat_offset = sim::Time::ns(get<std::int64_t>(is));
      sched->reuse_next = get<std::uint8_t>(is) != 0;
      const auto n = get<std::uint32_t>(is);
      sched->entries.reserve(n);
      for (std::uint32_t k = 0; k < n; ++k) {
        proxy::ScheduleEntry e;
        e.client = net::Ipv4Addr{get<std::uint32_t>(is)};
        e.rp_offset = sim::Time::ns(get<std::int64_t>(is));
        e.duration = sim::Time::ns(get<std::int64_t>(is));
        e.kind = static_cast<proxy::SlotKind>(get<std::uint8_t>(is));
        sched->entries.push_back(e);
      }
      r.data = std::move(sched);
    }
    buf.push_back(std::move(r));
  }
  return buf;
}

void save_trace(const std::string& path, const TraceBuffer& buf) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  write_trace(os, buf);
  if (!os) throw std::runtime_error("trace: write failed: " + path);
}

TraceBuffer load_trace(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  return read_trace(is);
}

void dump_trace(std::ostream& os, const TraceBuffer& buf) {
  for (const TraceRecord& r : buf) {
    os << r.air_start.str() << " " << (r.from_ap ? "v " : "^ ") << r.src.str()
       << ":" << r.src_port << " > " << r.dst.str() << ":" << r.dst_port
       << " " << to_string(r.proto) << " len " << r.payload;
    if (r.marked) os << " [mark]";
    if (!r.delivered) os << " [lost]";
    if (const auto* sched =
            dynamic_cast<const proxy::ScheduleMessage*>(r.data.get())) {
      os << " " << sched->str();
    }
    os << "\n";
  }
}

}  // namespace pp::trace

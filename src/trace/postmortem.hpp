// Postmortem energy analysis (Sections 3.1 and 4.1).
//
// Replays a wireless trace for one client under a chosen power policy and
// computes: time in high/low power, bytes received/transmitted, packets
// lost, and energy — compared against the naive client that keeps its WNIC
// in high-power mode for the whole trace.
//
// The replay drives the *same* PowerDaemon code the live client runs, in a
// private simulator, so live and postmortem results agree by construction
// (a property the tests check).  Varying DaemonConfig across replays of one
// trace is how the early-transition sweep of Figure 6 is produced.
#pragma once

#include <cstdint>
#include <vector>

#include "client/power_daemon.hpp"
#include "energy/wnic.hpp"
#include "net/addr.hpp"
#include "trace/record.hpp"

namespace pp::trace {

struct PostmortemReport {
  net::Ipv4Addr client;
  double energy_mj = 0;
  double naive_energy_mj = 0;
  double saved_fraction = 0;  // 1 - energy/naive
  sim::Duration high_power_time;
  sim::Duration low_power_time;
  std::uint64_t wake_transitions = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_missed = 0;
  double loss_fraction = 0;
  std::uint64_t schedules_received = 0;
  std::uint64_t schedules_missed = 0;
  // Figure 6 decomposition of wasted high-power time.
  sim::Duration early_wait;
  sim::Duration missed_wait;
  double early_wait_mj = 0;
  double missed_wait_mj = 0;
};

class PostmortemAnalyzer {
 public:
  PostmortemAnalyzer(const TraceBuffer& trace,
                     energy::WnicPowerModel model = {})
      : trace_{trace}, model_{model} {}

  // Replay the trace for `client` under `cfg`.  `horizon` extends the
  // accounting window past the last frame (use the experiment length).
  PostmortemReport analyze(net::Ipv4Addr client,
                           const client::DaemonConfig& cfg,
                           sim::Time horizon = sim::Time::zero()) const;

  // Convenience: analyze several clients under one config.
  std::vector<PostmortemReport> analyze_all(
      const std::vector<net::Ipv4Addr>& clients,
      const client::DaemonConfig& cfg,
      sim::Time horizon = sim::Time::zero()) const;

 private:
  const TraceBuffer& trace_;
  energy::WnicPowerModel model_;
};

}  // namespace pp::trace

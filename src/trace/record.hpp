// Wireless-side trace records — the simulation's tcpdump.
//
// The monitoring station (Section 3.1) hears every frame on the medium and
// records it; the postmortem analyzer later replays a trace to compute what
// energy any given client policy would have used.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pp::trace {

struct TraceRecord {
  sim::Time air_start;
  sim::Duration airtime;
  std::uint64_t pkt_id = 0;
  net::Ipv4Addr src;
  net::Port src_port = 0;
  net::Ipv4Addr dst;
  net::Port dst_port = 0;
  net::Protocol proto = net::Protocol::Udp;
  std::uint32_t payload = 0;
  bool marked = false;
  bool from_ap = false;
  bool delivered = false;  // ground truth from the medium
  // Application message (the schedule), kept by pointer in memory and
  // serialized structurally by the trace writer.
  std::shared_ptr<const net::Message> data;

  sim::Time air_end() const { return air_start + airtime; }
  bool is_broadcast() const { return dst.is_broadcast(); }
};

using TraceBuffer = std::vector<TraceRecord>;

}  // namespace pp::trace

#include "trace/postmortem.hpp"

#include <memory>

#include "proxy/schedule.hpp"
#include "sim/simulator.hpp"

namespace pp::trace {

PostmortemReport PostmortemAnalyzer::analyze(net::Ipv4Addr client,
                                             const client::DaemonConfig& cfg,
                                             sim::Time horizon) const {
  PostmortemReport rep;
  rep.client = client;

  sim::Simulator replay;
  energy::EnergyAccountant acc{model_, sim::Time::zero(),
                               energy::WnicMode::Idle};
  client::PowerDaemon daemon{replay, client, cfg, [&](bool awake) {
                               acc.set_mode(replay.now(),
                                            awake ? energy::WnicMode::Idle
                                                  : energy::WnicMode::Sleep);
                             }};
  daemon.start();

  sim::Duration addressed_airtime;   // frames a naive client would receive
  sim::Duration transmit_airtime;    // the client's own transmissions
  sim::Time end = horizon;

  for (const TraceRecord& rec : trace_) {
    if (rec.air_end() > end) end = rec.air_end();
    if (rec.src == client && !rec.from_ap) {
      // The client's own uplink frame: charge transmit airtime at replay
      // time (the radio was necessarily on to send it).
      transmit_airtime += rec.airtime;
      const sim::Duration airtime = rec.airtime;
      replay.at(rec.air_end(), [&acc, airtime] {
        acc.add_transient(energy::WnicMode::Transmit, airtime);
      });
      continue;
    }
    if (!rec.from_ap) continue;  // other clients' uplink frames
    const bool to_me = rec.dst == client;
    const bool is_schedule = rec.is_broadcast() &&
                             rec.dst_port == proxy::kSchedulePort;
    if (!to_me && !is_schedule) continue;
    addressed_airtime += rec.airtime;

    // NOTE: rec and is_schedule are captured by value — the loop locals are
    // long gone when these events fire.
    replay.at(rec.air_end(), [&rep, &daemon, &acc, rec, is_schedule] {
      if (!daemon.awake()) {
        if (!rec.is_broadcast()) ++rep.packets_missed;
        return;
      }
      acc.add_transient(energy::WnicMode::Receive, rec.airtime);
      if (is_schedule) {
        if (auto msg = std::dynamic_pointer_cast<const proxy::ScheduleMessage>(
                rec.data)) {
          daemon.on_schedule(std::move(msg));
        }
        return;
      }
      ++rep.packets_received;
      rep.bytes_received += rec.payload;
      net::Packet pkt;  // the daemon only looks at the marked bit
      pkt.marked = rec.marked;
      daemon.on_data(pkt);
    });
  }

  replay.run_until(end);

  const auto& st = daemon.stats();
  rep.schedules_received = st.schedules_received;
  rep.schedules_missed = st.schedules_missed;
  rep.early_wait = st.early_wait;
  rep.missed_wait = st.missed_wait;
  const double idle_sleep_delta = model_.mw(energy::WnicMode::Idle) -
                                  model_.mw(energy::WnicMode::Sleep);
  rep.early_wait_mj = idle_sleep_delta * st.early_wait.to_seconds();
  rep.missed_wait_mj = idle_sleep_delta * st.missed_wait.to_seconds();

  // Settle the accountant at the horizon.
  acc.finish(end);
  rep.energy_mj = acc.energy_mj(end);
  rep.high_power_time = acc.high_power_time();
  rep.low_power_time = acc.time_in(energy::WnicMode::Sleep);
  rep.wake_transitions = acc.wake_transitions();

  const double total_s = end.to_seconds();
  rep.naive_energy_mj =
      model_.mw(energy::WnicMode::Idle) * total_s +
      (model_.mw(energy::WnicMode::Receive) -
       model_.mw(energy::WnicMode::Idle)) *
          addressed_airtime.to_seconds() +
      (model_.mw(energy::WnicMode::Transmit) -
       model_.mw(energy::WnicMode::Idle)) *
          transmit_airtime.to_seconds();
  rep.saved_fraction =
      rep.naive_energy_mj > 0 ? 1.0 - rep.energy_mj / rep.naive_energy_mj : 0;
  const double total_pkts =
      static_cast<double>(rep.packets_received + rep.packets_missed);
  rep.loss_fraction =
      total_pkts > 0 ? static_cast<double>(rep.packets_missed) / total_pkts
                     : 0;
  return rep;
}

std::vector<PostmortemReport> PostmortemAnalyzer::analyze_all(
    const std::vector<net::Ipv4Addr>& clients, const client::DaemonConfig& cfg,
    sim::Time horizon) const {
  std::vector<PostmortemReport> out;
  out.reserve(clients.size());
  for (const auto& c : clients) out.push_back(analyze(c, cfg, horizon));
  return out;
}

}  // namespace pp::trace

#include "bench/battery.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pp::bench {

BatteryOptions parse_args(int argc, char** argv) {
  BatteryOptions opts;
  if (const char* env = std::getenv("PP_BENCH_JSON"); env && *env &&
      std::strcmp(env, "0") != 0) {
    opts.json = true;
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--cache-dir=", 12) == 0) {
      opts.cache_dir = a + 12;
    } else if (std::strcmp(a, "--no-cache") == 0) {
      opts.use_cache = false;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      opts.threads = static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10));
    } else if (std::strcmp(a, "--json") == 0) {
      opts.json = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      opts.progress = false;
    }
  }
  return opts;
}

exp::sweep::SweepResult run_battery(const std::vector<exp::sweep::Item>& items,
                                    const BatteryOptions& opts) {
  exp::sweep::Options so;
  so.threads = opts.threads;
  so.cache_dir = opts.cache_dir;
  so.use_cache = opts.use_cache;
  if (opts.progress) {
    so.on_progress = [](const exp::sweep::Progress& p) {
      std::fprintf(stderr, "\r[sweep] %zu/%zu done (%zu cached)", p.done,
                   p.total, p.hits);
      if (p.done < p.total && p.eta_s > 0) {
        std::fprintf(stderr, " eta %.1fs", p.eta_s);
      }
      std::fflush(stderr);
    };
  }
  auto result = exp::sweep::run(items, so);
  if (opts.progress) {
    std::fprintf(stderr,
                 "\r[sweep] %zu items: %zu cache hits, %zu runs, %zu "
                 "uncacheable, %.2fs\n",
                 result.stats.total, result.stats.hits, result.stats.misses,
                 result.stats.uncacheable, result.stats.elapsed_s);
  }
  return result;
}

int emit(const Report& rep, const BatteryOptions& opts) {
  if (opts.json) {
    std::printf("%s\n", rep.json().c_str());
  } else {
    rep.print();
  }
  return 0;
}

}  // namespace pp::bench

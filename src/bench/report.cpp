#include "bench/report.hpp"

#include <algorithm>
#include <cmath>

namespace pp::bench {

namespace {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

// Quoting is done with append rather than `"\"" + s + "\""`: GCC 12 -O3
// misfires -Wrestrict on const char* + rvalue-string and the build is
// -Werror.
void append_quoted(std::string& out, const std::string& s) {
  out.push_back('"');
  out.append(s);
  out.push_back('"');
}

Report::Cell make_text_cell(const std::string& column, std::string text) {
  Report::Cell c;
  c.column = column;
  append_quoted(c.json, json_escape(text));
  c.text = std::move(text);
  c.numeric = false;
  return c;
}

Report::Cell make_num_cell(const std::string& column, std::string text,
                           bool finite) {
  Report::Cell c;
  c.column = column;
  // Infinities/NaNs have no JSON number form; quote them.
  c.json = finite ? text : "\"" + text + "\"";
  c.text = std::move(text);
  c.numeric = true;
  return c;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

Report::Row& Report::Row::cell(const std::string& column,
                               const std::string& v) {
  cells_.push_back(make_text_cell(column, v));
  return *this;
}

Report::Row& Report::Row::cell(const std::string& column, const char* v) {
  cells_.push_back(make_text_cell(column, v));
  return *this;
}

Report::Row& Report::Row::cell(const std::string& column, double v,
                               int precision) {
  cells_.push_back(
      make_num_cell(column, fmt_double(v, precision), std::isfinite(v)));
  return *this;
}

Report::Row& Report::Row::cell(const std::string& column, std::uint64_t v) {
  cells_.push_back(make_num_cell(column, std::to_string(v), true));
  return *this;
}

Report::Row& Report::Row::cell(const std::string& column, std::int64_t v) {
  cells_.push_back(make_num_cell(column, std::to_string(v), true));
  return *this;
}

Report::Row& Report::Row::cell(const std::string& column, int v) {
  return cell(column, static_cast<std::int64_t>(v));
}

Report::Row& Report::Row::cell(const std::string& column, unsigned v) {
  return cell(column, static_cast<std::uint64_t>(v));
}

Report::Section& Report::section(const std::string& name) {
  for (Section& s : sections_) {
    if (s.name == name) return s;
  }
  sections_.emplace_back();
  sections_.back().name = name;
  return sections_.back();
}

Report::Section& Report::section_tail() {
  if (sections_.empty()) return section();
  return sections_.back();
}

void Report::print(std::FILE* out) const {
  std::fprintf(out, "\n=== %s ===\n", title_.c_str());
  for (const Section& sec : sections_) {
    if (!sec.name.empty()) std::fprintf(out, "\n--- %s ---\n", sec.name.c_str());
    // Column order: first-seen across the section's rows.
    std::vector<std::string> cols;
    for (const Row& row : sec.rows) {
      for (const Cell& c : row.cells_) {
        if (std::find(cols.begin(), cols.end(), c.column) == cols.end()) {
          cols.push_back(c.column);
        }
      }
    }
    std::vector<std::size_t> width(cols.size());
    std::vector<bool> numeric(cols.size(), true);
    for (std::size_t i = 0; i < cols.size(); ++i) width[i] = cols[i].size();
    for (const Row& row : sec.rows) {
      for (const Cell& c : row.cells_) {
        const auto it = std::find(cols.begin(), cols.end(), c.column);
        const auto i = static_cast<std::size_t>(it - cols.begin());
        width[i] = std::max(width[i], c.text.size());
        if (!c.numeric) numeric[i] = false;
      }
    }
    for (std::size_t i = 0; i < cols.size(); ++i) {
      std::fprintf(out, i ? "  %-*s" : "%-*s", static_cast<int>(width[i]),
                   cols[i].c_str());
    }
    std::fprintf(out, "\n");
    for (const Row& row : sec.rows) {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const Cell* cell = nullptr;
        for (const Cell& c : row.cells_) {
          if (c.column == cols[i]) {
            cell = &c;
            break;
          }
        }
        const std::string& text = cell ? cell->text : std::string{"-"};
        const bool right = numeric[i] && cell;
        std::fprintf(out, i ? "  %*s" : "%*s",
                     right ? static_cast<int>(width[i])
                           : -static_cast<int>(width[i]),
                     text.c_str());
      }
      std::fprintf(out, "\n");
    }
  }
  for (const std::string& n : notes_) std::fprintf(out, "%s\n", n.c_str());
}

std::string Report::json() const {
  std::string out = "{\"title\":\"" + json_escape(title_) + "\",\"sections\":[";
  bool first_sec = true;
  for (const Section& sec : sections_) {
    if (!first_sec) out += ",";
    first_sec = false;
    out += "{\"name\":\"" + json_escape(sec.name) + "\",\"rows\":[";
    bool first_row = true;
    for (const Row& row : sec.rows) {
      if (!first_row) out += ",";
      first_row = false;
      out += "{";
      bool first_cell = true;
      for (const Cell& c : row.cells_) {
        if (!first_cell) out += ",";
        first_cell = false;
        append_quoted(out, json_escape(c.column));
        out.push_back(':');
        out += c.json;
      }
      out += "}";
    }
    out += "]}";
  }
  out += "],\"notes\":[";
  bool first_note = true;
  for (const std::string& n : notes_) {
    if (!first_note) out += ",";
    first_note = false;
    append_quoted(out, json_escape(n));
  }
  out += "]}";
  return out;
}

}  // namespace pp::bench

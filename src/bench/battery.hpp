// The bench-side front door to the sweep engine.
//
// Every figure/table binary follows the same shape:
//
//   int main(int argc, char** argv) {
//     auto opts = pp::bench::parse_args(argc, argv);
//     std::vector<pp::exp::sweep::Item> items = ...;   // builder presets
//     auto sweep = pp::bench::run_battery(items, opts);
//     pp::bench::Report rep{"Figure N: ..."};
//     ... rows from sweep.outcomes[i].record ...
//     return pp::bench::emit(rep, opts);
//   }
//
// run_battery adds the human affordances around exp::sweep::run: progress
// with ETA on stderr and a cache-hit footer.  emit renders the Report —
// the table on stdout, or the JSON document instead when requested — so a
// binary's machine output is exactly Report::json() and nothing else.
//
// Flags every battery binary accepts (parse_args):
//   --cache-dir=DIR   result cache location (default $PP_SWEEP_CACHE or
//                     .pp-sweep-cache)
//   --no-cache        run everything live, store nothing
//   --threads=N       worker override (else $PP_THREADS, else hardware)
//   --json            print the JSON document instead of the table
//                     (also: PP_BENCH_JSON=1)
//   --quiet           no stderr progress
#pragma once

#include <string>
#include <vector>

#include "bench/report.hpp"
#include "exp/sweep/sweep.hpp"

namespace pp::bench {

struct BatteryOptions {
  std::string cache_dir;  // empty = sweep default
  unsigned threads = 0;   // 0 = resolve_threads
  bool use_cache = true;
  bool json = false;
  bool progress = true;
};

// Unknown flags are ignored (binaries may layer their own on top).
BatteryOptions parse_args(int argc, char** argv);

// Run the battery with stderr progress/footer per `opts`.
exp::sweep::SweepResult run_battery(const std::vector<exp::sweep::Item>& items,
                                    const BatteryOptions& opts = {});

// Render the report; returns 0 (a main()-tail convenience).
int emit(const Report& rep, const BatteryOptions& opts);

}  // namespace pp::bench

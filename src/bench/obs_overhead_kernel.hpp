// Shared kernel for the observability overhead microbenchmark: a stand-in
// for the proxy's burst hot loop (enqueue accounting + per-packet
// instrumentation), compiled twice — once normally and once in a TU that
// defines PP_OBS_DISABLED — so the same source measures the runtime-off
// and compile-time-off paths.
//
// `static` on purpose: the PP_OBS macro expands differently per TU, so the
// kernel must have internal linkage to stay ODR-clean.
#pragma once

#include <cstdint>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/time.hpp"

namespace pp_bench {

// Mirrors TransparentProxy::enqueue_downlink / open_burst: per packet, one
// queue-bytes update plus (counter inc, histogram observe, time-weighted
// gauge set) behind cached handles.
static inline std::uint64_t burst_hot_loop(pp::obs::Hook hook,
                                           std::uint64_t iters) {
  (void)hook;
  [[maybe_unused]] pp::obs::Counter* ctr = nullptr;
  [[maybe_unused]] pp::obs::Histogram* hist = nullptr;
  [[maybe_unused]] pp::obs::TimeWeightedGauge* twg = nullptr;
  PP_OBS(if (auto* m = hook.metrics()) {
    ctr = m->counter("bench.packets");
    hist = m->histogram("bench.payload");
    twg = m->time_gauge("bench.queue_depth");
  });
  std::uint64_t q = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t payload = 100 + (i & 0x3FF);
    q += payload;
    PP_OBS(if (ctr) {
      ctr->inc();
      hist->observe(payload);
      twg->set(pp::sim::Time::ns(static_cast<std::int64_t>(i)),
               static_cast<double>(q));
    });
    q -= payload / 2;
  }
  return q;
}

}  // namespace pp_bench

// Defined in micro_obs_overhead_disabled.cpp, where PP_OBS_DISABLED strips
// every instrumentation statement at compile time.
std::uint64_t obs_compiled_out_hot_loop(std::uint64_t iters);

// pp::bench::Report — the single sink every bench binary renders through.
//
// A Report is pure data: a title, ordered sections, rows of named cells,
// and trailing notes.  The fixed-width table and the JSON document render
// from that one structure, so the two can never drift — and because every
// cell is formatted exactly once when it is added, a report built from
// cached (bit-identical) records renders byte-identically to one built
// from a cold run.
//
//   Report rep{"Figure 4: ten UDP video clients"};
//   auto& sec = rep.section("burst interval: 500ms");
//   sec.row().cell("pattern", "56K").cell("avg%", s.avg, 1).cell(...);
//   rep.note("paper: 500 ms beats 100 ms everywhere");
//   rep.print();                       // the human table
//   std::string doc = rep.json();      // the machine rendering
//
// Columns are inferred per section in first-seen order; rows may omit
// trailing columns ("-" in the table, null in JSON).  Numeric cells
// right-align, strings left-align.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

namespace pp::bench {

class Report {
 public:
  struct Cell {
    std::string column;
    std::string text;  // table form
    std::string json;  // JSON token (quoted string or number literal)
    bool numeric = false;
  };

  class Row {
   public:
    Row& cell(const std::string& column, const std::string& v);
    Row& cell(const std::string& column, const char* v);
    Row& cell(const std::string& column, double v, int precision = 1);
    Row& cell(const std::string& column, std::uint64_t v);
    Row& cell(const std::string& column, std::int64_t v);
    Row& cell(const std::string& column, int v);
    Row& cell(const std::string& column, unsigned v);

   private:
    friend class Report;
    std::vector<Cell> cells_;
  };

  struct Section {
    std::string name;
    std::deque<Row> rows;  // deque: row() references stay stable

    Row& row() { return rows.emplace_back(); }
  };

  explicit Report(std::string title) : title_{std::move(title)} {}

  // Creates (or reuses, by name) a section; "" is the anonymous default.
  Section& section(const std::string& name = "");
  // Shorthand: a row in the most recent section.
  Row& row() { return section_tail().row(); }
  void note(std::string text) { notes_.push_back(std::move(text)); }

  const std::string& title() const { return title_; }

  void print(std::FILE* out = stdout) const;
  std::string json() const;

 private:
  Section& section_tail();
  std::string title_;
  std::deque<Section> sections_;
  std::vector<std::string> notes_;
};

// JSON string escaping for the small grammar reports use (quotes,
// backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace pp::bench

#include "workload/ftp.hpp"

namespace pp::workload {

FtpServer::FtpServer(net::Node& node) : node_{node}, server_{node, kFtpPort} {
  server_.set_on_accept([this](transport::TcpConnection& c) {
    const net::Ipv4Addr client = c.remote().ip;
    auto sent = std::make_shared<bool>(false);
    c.set_on_deliver([this, client, &c, sent](std::uint64_t) {
      if (*sent) return;
      auto it = files_.find(client);
      if (it == files_.end()) return;
      *sent = true;
      ++started_;
      c.send(it->second);
      c.close();
    });
  });
}

void FtpServer::add_file(net::Ipv4Addr client, std::uint64_t bytes) {
  files_[client] = bytes;
}

FtpClient::FtpClient(net::Node& node, net::Ipv4Addr server)
    : node_{node}, server_{server} {}

void FtpClient::download(sim::Time at) {
  node_.sim().at(at, [this] {
    stats_.started_at = node_.sim().now();
    conn_ = transport::tcp_connect(node_, server_, kFtpPort);
    conn_->set_on_established([this] { conn_->send(100); });  // RETR request
    conn_->set_on_deliver(
        [this](std::uint64_t n) { stats_.bytes_received += n; });
    conn_->set_on_remote_fin([this] {
      stats_.finished = true;
      stats_.finished_at = node_.sim().now();
      conn_->close();
    });
  });
}

}  // namespace pp::workload

#include "workload/video.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/check.hpp"

namespace pp::workload {

int fidelity_index(int nominal_kbps) {
  for (int i = 0; i < kNumFidelities; ++i)
    if (kFidelities[i].nominal_kbps == nominal_kbps) return i;
  throw std::invalid_argument("unknown fidelity: " +
                              std::to_string(nominal_kbps));
}

VideoPacketTrace generate_video_trace(int effective_kbps, std::uint64_t seed,
                                      VideoTraceParams params) {
  sim::Rng rng{seed};
  const int frames = static_cast<int>(params.duration_s * params.fps);
  const double frame_dt = 1.0 / params.fps;

  // Scene-level rate factors: each scene lasts 2-8 s with a lognormal
  // activity factor, giving the burstiness the scheduler must absorb.
  std::vector<double> weight(frames);
  int scene_end = 0;
  double scene_factor = 1.0;
  for (int f = 0; f < frames; ++f) {
    if (f >= scene_end) {
      scene_end = f + static_cast<int>(rng.uniform(2.0, 8.0) * params.fps);
      scene_factor = std::clamp(rng.lognormal(0.0, 0.4), 0.4, 2.2);
    }
    const bool i_frame = f % params.gop == 0;
    weight[f] = (i_frame ? params.i_frame_weight : 1.0) * scene_factor;
  }
  double total_weight = 0;
  for (double w : weight) total_weight += w;

  const double total_bytes =
      static_cast<double>(effective_kbps) * 1000.0 / 8.0 * params.duration_s;

  VideoPacketTrace trace;
  for (int f = 0; f < frames; ++f) {
    auto frame_bytes =
        static_cast<std::uint32_t>(total_bytes * weight[f] / total_weight);
    if (frame_bytes == 0) continue;
    // Packetize to the MTU, spreading chunks across the frame interval
    // (RealServer paces within a frame rather than bursting).
    const std::uint32_t npkts = (frame_bytes + params.mtu - 1) / params.mtu;
    for (std::uint32_t k = 0; k < npkts; ++k) {
      const std::uint32_t bytes =
          k + 1 < npkts ? params.mtu : frame_bytes - params.mtu * (npkts - 1);
      const double off =
          f * frame_dt + frame_dt * static_cast<double>(k) / npkts;
      trace.push_back(VideoPacket{sim::Time::seconds(off), bytes,
                                  static_cast<std::uint32_t>(f)});
    }
  }
  return trace;
}

// -- Server ----------------------------------------------------------------------

VideoServer::VideoServer(net::Node& node, VideoServerParams params)
    : node_{node},
      params_{params},
      control_{node, kRtspPort},
      media_{node, kMediaPort} {
  control_.set_on_accept([this](transport::TcpConnection& c) {
    const net::Ipv4Addr client = c.remote().ip;
    c.set_on_deliver([this, client](std::uint64_t) {
      // The PLAY request arrived; start streaming (idempotent per client).
      if (streams_.find(client) == streams_.end()) start_stream(client);
    });
  });
  media_.set_receive_fn(
      [this](const net::Packet& pkt) { on_receiver_report(pkt); });
}

const VideoPacketTrace& VideoServer::trace_for(int fidelity_idx) {
  PP_CHECK(fidelity_idx >= 0 && fidelity_idx < kNumFidelities,
           "workload.video.fidelity_index");
  auto& t = traces_[fidelity_idx];
  if (t.empty()) {
    t = generate_video_trace(kFidelities[fidelity_idx].effective_kbps,
                             params_.trace_seed + fidelity_idx, params_.trace);
  }
  return t;
}

void VideoServer::expect_client(net::Ipv4Addr client, int fidelity_idx) {
  expected_[client] = fidelity_idx;
}

void VideoServer::start_stream(net::Ipv4Addr client) {
  auto it = expected_.find(client);
  if (it == expected_.end()) return;  // unknown client; ignore
  auto s = std::make_unique<Stream>();
  s->client = client;
  s->fidelity_idx = it->second;
  s->epoch = node_.sim().now();
  s->last_adapt = node_.sim().now();
  s->stats.current_fidelity = s->fidelity_idx;
  Stream* raw = s.get();
  streams_.emplace(client, std::move(s));
  ++streams_started_;
  pump(*raw);
}

void VideoServer::pump(Stream& s) {
  const VideoPacketTrace& trace = trace_for(s.fidelity_idx);
  if (s.next_pkt >= trace.size()) {
    s.stats.finished = true;
    return;
  }
  const VideoPacket& vp = trace[s.next_pkt];
  const sim::Time due = s.epoch + vp.offset;
  s.timer = node_.sim().at(std::max(due, node_.sim().now()), [this, &s] {
    const VideoPacketTrace& tr = trace_for(s.fidelity_idx);
    const VideoPacket& pkt = tr[s.next_pkt];
    auto chunk = std::make_shared<MediaChunk>();
    chunk->seq = s.seq++;
    chunk->fidelity = static_cast<std::uint8_t>(s.fidelity_idx);
    media_.send_to(s.client, kMediaPort, pkt.bytes, std::move(chunk));
    ++s.stats.packets_sent;
    s.stats.bytes_sent += pkt.bytes;
    ++s.next_pkt;
    pump(s);
  });
}

void VideoServer::on_receiver_report(const net::Packet& pkt) {
  if (!params_.adaptive) return;
  const auto* rr = dynamic_cast<const ReceiverReport*>(pkt.data.get());
  if (rr == nullptr) return;
  auto it = streams_.find(pkt.src);
  if (it == streams_.end()) return;
  Stream& s = *it->second;
  if (rr->loss_fraction <= params_.adapt_loss_threshold) return;
  if (node_.sim().now() - s.last_adapt < params_.adapt_cooldown) return;
  if (s.fidelity_idx == 0) return;
  // RealServer believes the connection is lossy and adapts the stream to a
  // lower-quality, lower-bandwidth one (Section 4.3).
  const double progress =
      s.next_pkt < trace_for(s.fidelity_idx).size()
          ? trace_for(s.fidelity_idx)[s.next_pkt].offset.to_seconds() /
                params_.trace.duration_s
          : 1.0;
  --s.fidelity_idx;
  s.stats.current_fidelity = s.fidelity_idx;
  ++s.stats.downshifts;
  s.last_adapt = node_.sim().now();
  // Resume the lower-fidelity trace at the same point in stream time.
  const VideoPacketTrace& lower = trace_for(s.fidelity_idx);
  std::size_t pos = 0;
  while (pos < lower.size() &&
         lower[pos].offset.to_seconds() < progress * params_.trace.duration_s)
    ++pos;
  s.next_pkt = pos;
}

const VideoServer::StreamStats* VideoServer::stats_for(
    net::Ipv4Addr client) const {
  auto it = streams_.find(client);
  return it == streams_.end() ? nullptr : &it->second->stats;
}

// -- Client ----------------------------------------------------------------------

VideoClient::VideoClient(net::Node& node, net::Ipv4Addr server,
                         VideoClientParams params)
    : node_{node},
      server_{server},
      params_{params},
      media_{node, kMediaPort},
      last_report_{node.sim().now()} {
  media_.set_receive_fn([this](const net::Packet& pkt) { on_media(pkt); });
}

void VideoClient::play(sim::Time at) {
  node_.sim().at(at, [this] {
    control_ = transport::tcp_connect(node_, server_, kRtspPort);
    control_->set_on_established(
        [this] { control_->send(params_.play_request_bytes); });
  });
}

void VideoClient::on_media(const net::Packet& pkt) {
  ++stats_.packets;
  ++window_packets_;
  stats_.bytes += pkt.payload;
  if (const auto* chunk = dynamic_cast<const MediaChunk*>(pkt.data.get())) {
    stats_.highest_seq = std::max(stats_.highest_seq, chunk->seq);
    stats_.fidelity_seen = chunk->fidelity;
  }
  maybe_send_report();
}

double VideoClient::loss_fraction() const {
  if (stats_.packets == 0) return 0;
  const double expected = static_cast<double>(stats_.highest_seq) + 1.0;
  return std::max(0.0, 1.0 - static_cast<double>(stats_.packets) / expected);
}

double VideoClient::window_loss_fraction() const {
  const double expected =
      static_cast<double>(stats_.highest_seq - window_base_seq_);
  if (expected <= 0) return 0;
  return std::max(0.0,
                  1.0 - static_cast<double>(window_packets_) / expected);
}

void VideoClient::maybe_send_report() {
  // Sent while the WNIC is already awake (we just received data).
  if (node_.sim().now() - last_report_ < params_.rr_interval) return;
  last_report_ = node_.sim().now();
  auto rr = std::make_shared<ReceiverReport>();
  rr->loss_fraction = window_loss_fraction();
  rr->highest_seq = stats_.highest_seq;
  window_packets_ = 0;
  window_base_seq_ = stats_.highest_seq;
  media_.send_to(server_, kMediaPort, 64, std::move(rr));
  ++stats_.reports_sent;
}

}  // namespace pp::workload

#include "workload/web.hpp"

#include <algorithm>

namespace pp::workload {

std::vector<PageVisit> generate_web_script(std::uint64_t seed,
                                           WebScriptParams params) {
  sim::Rng rng{seed};
  std::vector<PageVisit> script;
  script.reserve(params.pages);
  for (int p = 0; p < params.pages; ++p) {
    PageVisit v;
    v.think_before = sim::Time::seconds(rng.exponential(params.think_mean_s));
    v.main_bytes = static_cast<std::uint32_t>(
        std::clamp(rng.lognormal(params.main_mu, params.main_sigma), 2'000.0,
                   200'000.0));
    const int nobj = static_cast<int>(
        rng.uniform_int(params.min_objects, params.max_objects));
    for (int i = 0; i < nobj; ++i) {
      v.objects.push_back(static_cast<std::uint32_t>(
          rng.pareto(params.obj_alpha, params.obj_min, params.obj_max)));
    }
    script.push_back(std::move(v));
  }
  return script;
}

std::uint64_t script_bytes(const std::vector<PageVisit>& script) {
  std::uint64_t total = 0;
  for (const auto& v : script) {
    total += v.main_bytes;
    for (auto o : v.objects) total += o;
  }
  return total;
}

// -- Server ----------------------------------------------------------------------

HttpServer::HttpServer(net::Node& node) : node_{node}, server_{node, kHttpPort} {
  server_.set_on_accept([this](transport::TcpConnection& c) {
    const net::Ipv4Addr client = c.remote().ip;
    auto responded = std::make_shared<bool>(false);
    c.set_on_deliver([this, client, &c, responded](std::uint64_t) {
      // First request bytes: answer with the next scripted object size.
      // A connection serves exactly one object (HTTP/1.0).
      if (*responded) return;
      auto it = pending_.find(client);
      if (it == pending_.end() || it->second.empty()) return;
      *responded = true;
      const std::uint32_t bytes = it->second.front();
      it->second.pop_front();
      ++served_;
      c.send(bytes);
      c.close();
    });
    server_.reap_done();
  });
}

void HttpServer::add_script(net::Ipv4Addr client,
                            const std::vector<PageVisit>& script) {
  auto& q = pending_[client];
  for (const auto& v : script) {
    q.push_back(v.main_bytes);
    for (auto o : v.objects) q.push_back(o);
  }
}

void HttpServer::push_response(net::Ipv4Addr client, std::uint32_t bytes) {
  pending_[client].push_back(bytes);
}

// -- Client ----------------------------------------------------------------------

WebBrowsingClient::WebBrowsingClient(net::Node& node, net::Ipv4Addr server,
                                     std::vector<PageVisit> script,
                                     WebClientParams params)
    : node_{node},
      server_{server},
      script_{std::move(script)},
      params_{params} {}

void WebBrowsingClient::start(sim::Time at) {
  node_.sim().at(at, [this] { next_page(); });
}

void WebBrowsingClient::next_page() {
  // Drop finished connections before opening new ones.
  std::erase_if(conns_, [](const auto& c) { return c->done(); });
  if (page_idx_ >= script_.size()) return;
  const PageVisit& v = script_[page_idx_];
  node_.sim().after(v.think_before, [this] {
    page_started_ = node_.sim().now();
    main_done_ = false;
    obj_idx_ = 0;
    fetch(script_[page_idx_].main_bytes, /*is_main=*/true);
  });
}

void WebBrowsingClient::fetch(std::uint32_t /*expect_hint*/, bool is_main) {
  ++inflight_;
  auto conn = transport::tcp_connect(node_, server_, kHttpPort);
  transport::TcpConnection* raw = conn.get();
  raw->set_on_established(
      [this, raw] { raw->send(params_.request_bytes); });
  raw->set_on_deliver(
      [this](std::uint64_t n) { stats_.bytes_received += n; });
  raw->set_on_remote_fin([this, raw, is_main] {
    raw->close();
    --inflight_;
    ++stats_.objects_completed;
    if (is_main) main_done_ = true;
    object_done();
  });
  conns_.push_back(std::move(conn));
}

void WebBrowsingClient::object_done() {
  const PageVisit& v = script_[page_idx_];
  // After the main document, fan out object fetches with bounded
  // parallelism (browsers open a handful of connections).
  while (main_done_ && obj_idx_ < v.objects.size() &&
         inflight_ < params_.max_parallel) {
    const std::uint32_t bytes = v.objects[obj_idx_++];
    fetch(bytes, /*is_main=*/false);
  }
  if (main_done_ && obj_idx_ >= v.objects.size() && inflight_ == 0) {
    ++stats_.pages_completed;
    stats_.total_page_time += node_.sim().now() - page_started_;
    ++page_idx_;
    next_page();
  }
}

}  // namespace pp::workload

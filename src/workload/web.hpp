// Web-browsing workload (Section 4.2, "Multiple TCP clients").
//
// Each browsing client fetches a sequence of pages: a main document plus
// several embedded objects, each over its own TCP connection (HTTP/1.0
// style, which is what gives the paper's "multiple concurrent TCP streams
// per client").  The whole visit sequence is generated ahead of time from
// a seed — the paper uses pre-generated scripts so traffic is identical
// across experiments — and shared between client and server, standing in
// for request URLs.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/node.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace pp::workload {

inline constexpr net::Port kHttpPort = 80;

struct PageVisit {
  sim::Duration think_before;           // idle time before the request
  std::uint32_t main_bytes;             // main document size
  std::vector<std::uint32_t> objects;   // embedded object sizes
};

struct WebScriptParams {
  double think_mean_s = 4.0;
  double main_mu = 9.2, main_sigma = 0.8;     // lognormal, ~15 KB median
  int min_objects = 2, max_objects = 8;
  double obj_alpha = 1.3;                     // bounded Pareto shape
  double obj_min = 2'000, obj_max = 60'000;
  int pages = 20;
};

std::vector<PageVisit> generate_web_script(std::uint64_t seed,
                                           WebScriptParams params = {});

// Total bytes a script will transfer (for test assertions).
std::uint64_t script_bytes(const std::vector<PageVisit>& script);

// -- Server ----------------------------------------------------------------------

// Serves objects whose sizes come from per-client scripts; responds to any
// request bytes on an accepted connection with the next scripted size,
// then closes the connection.
class HttpServer {
 public:
  explicit HttpServer(net::Node& node);

  // Queue the response sizes for `client`, in fetch order.
  void add_script(net::Ipv4Addr client, const std::vector<PageVisit>& script);
  void push_response(net::Ipv4Addr client, std::uint32_t bytes);

  std::uint64_t requests_served() const { return served_; }

 private:
  net::Node& node_;
  transport::TcpServer server_;
  std::unordered_map<net::Ipv4Addr, std::deque<std::uint32_t>, net::Ipv4AddrHash>
      pending_;
  std::uint64_t served_ = 0;
};

// -- Client ----------------------------------------------------------------------

struct WebClientParams {
  std::uint32_t request_bytes = 300;
  int max_parallel = 4;  // concurrent object connections per page
};

class WebBrowsingClient {
 public:
  WebBrowsingClient(net::Node& node, net::Ipv4Addr server,
                    std::vector<PageVisit> script, WebClientParams params = {});

  void start(sim::Time at);

  struct Stats {
    int pages_completed = 0;
    int objects_completed = 0;
    std::uint64_t bytes_received = 0;
    sim::Duration total_page_time;  // request to last object, summed
  };
  const Stats& stats() const { return stats_; }
  bool finished() const { return page_idx_ >= script_.size() && inflight_ == 0; }

 private:
  void next_page();
  void fetch(std::uint32_t expect_hint, bool is_main);
  void object_done();

  net::Node& node_;
  net::Ipv4Addr server_;
  std::vector<PageVisit> script_;
  WebClientParams params_;
  std::size_t page_idx_ = 0;
  std::size_t obj_idx_ = 0;  // next object of the current page
  int inflight_ = 0;
  bool main_done_ = false;
  sim::Time page_started_;
  std::vector<std::unique_ptr<transport::TcpConnection>> conns_;
  Stats stats_;
};

}  // namespace pp::workload

// Streaming-video workload (Section 4.1).
//
// The paper streams a 1:59 trailer encoded at 56/128/256/512 kbps nominal
// (34/80/225/450 kbps effective — the encoder undershoots) from RealServer
// to RealOne clients.  We synthesize an equivalent VBR packet trace:
// 24 fps, I/P frame structure, scene-level rate variation, packetized to
// the MTU, normalized to the effective bitrate.
//
// The server implements the RealServer behaviour that matters for the
// paper's 512 kbps anomaly (Section 4.3): clients send receiver reports,
// and when reported loss exceeds a threshold the server adapts the stream
// down to the next lower fidelity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/node.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace pp::workload {

inline constexpr net::Port kRtspPort = 554;   // control (TCP)
inline constexpr net::Port kMediaPort = 5004;  // data + receiver reports (UDP)

// The paper's four fidelities.
struct VideoFidelity {
  int nominal_kbps;
  int effective_kbps;
};
inline constexpr VideoFidelity kFidelities[] = {
    {56, 34}, {128, 80}, {256, 225}, {512, 450}};
inline constexpr int kNumFidelities = 4;

// Index into kFidelities for a nominal rate (56 -> 0, ..., 512 -> 3).
int fidelity_index(int nominal_kbps);

struct VideoPacket {
  sim::Duration offset;  // from stream start
  std::uint32_t bytes;
  std::uint32_t frame;
};
using VideoPacketTrace = std::vector<VideoPacket>;

struct VideoTraceParams {
  double duration_s = 119.0;  // the 1:59 trailer
  int fps = 24;
  int gop = 12;              // one I frame per GOP
  double i_frame_weight = 5.0;
  std::uint32_t mtu = 1400;
};

// Deterministic VBR trace normalized to `effective_kbps`.
VideoPacketTrace generate_video_trace(int effective_kbps, std::uint64_t seed,
                                      VideoTraceParams params = {});

// -- Messages --------------------------------------------------------------------

struct MediaChunk : net::Message {
  std::uint32_t seq = 0;
  std::uint8_t fidelity = 0;  // index into kFidelities
};

struct ReceiverReport : net::Message {
  double loss_fraction = 0;
  std::uint32_t highest_seq = 0;
};

// -- Server ----------------------------------------------------------------------

struct VideoServerParams {
  double adapt_loss_threshold = 0.05;  // RealServer-style downshift trigger
  sim::Duration adapt_cooldown = sim::Time::sec(4);
  bool adaptive = true;
  std::uint64_t trace_seed = 99;
  VideoTraceParams trace{};
};

class VideoServer {
 public:
  VideoServer(net::Node& node, VideoServerParams params = {});

  // Pre-register a client (out-of-band session description, standing in
  // for RTSP SETUP): when `client` connects on the control port and sends
  // its PLAY request, stream at kFidelities[fidelity_idx].
  void expect_client(net::Ipv4Addr client, int fidelity_idx);

  struct StreamStats {
    std::uint32_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    int current_fidelity = 0;
    int downshifts = 0;
    bool finished = false;
  };
  const StreamStats* stats_for(net::Ipv4Addr client) const;
  int streams_started() const { return streams_started_; }

 private:
  struct Stream {
    net::Ipv4Addr client;
    int fidelity_idx;
    sim::Time epoch;
    std::size_t next_pkt = 0;
    std::uint32_t seq = 0;
    sim::Time last_adapt;
    StreamStats stats;
    sim::EventHandle timer;
  };

  void start_stream(net::Ipv4Addr client);
  void pump(Stream& s);
  void on_receiver_report(const net::Packet& pkt);
  const VideoPacketTrace& trace_for(int fidelity_idx);

  net::Node& node_;
  VideoServerParams params_;
  transport::TcpServer control_;
  transport::UdpSocket media_;
  std::unordered_map<net::Ipv4Addr, int, net::Ipv4AddrHash> expected_;
  std::unordered_map<net::Ipv4Addr, std::unique_ptr<Stream>, net::Ipv4AddrHash>
      streams_;
  VideoPacketTrace traces_[kNumFidelities];  // lazily generated
  int streams_started_ = 0;
};

// -- Client ----------------------------------------------------------------------

struct VideoClientParams {
  sim::Duration rr_interval = sim::Time::sec(2);
  std::uint32_t play_request_bytes = 200;
};

// The player application on a mobile client's node.  Receiver reports are
// sent opportunistically while the WNIC is already awake receiving data,
// so reporting does not wreck the sleep schedule (the paper's clients
// require similar "minor modifications").
class VideoClient {
 public:
  VideoClient(net::Node& node, net::Ipv4Addr server,
              VideoClientParams params = {});

  // Open the control connection and request the stream.
  void play(sim::Time at);

  struct Stats {
    std::uint32_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint32_t highest_seq = 0;
    int fidelity_seen = -1;  // last fidelity index observed
    std::uint32_t reports_sent = 0;
  };
  const Stats& stats() const { return stats_; }
  // Media packets lost over the whole stream (by sequence-number gap).
  double loss_fraction() const;
  // Loss within the current report window (what receiver reports carry,
  // RTCP-style — a recovered stream stops reporting loss).
  double window_loss_fraction() const;

 private:
  void on_media(const net::Packet& pkt);
  void maybe_send_report();

  net::Node& node_;
  net::Ipv4Addr server_;
  VideoClientParams params_;
  transport::UdpSocket media_;
  std::unique_ptr<transport::TcpConnection> control_;
  sim::Time last_report_;
  std::uint32_t window_packets_ = 0;   // received since the last report
  std::uint32_t window_base_seq_ = 0;  // highest_seq at the last report
  Stats stats_;
};

}  // namespace pp::workload

// Bulk-transfer (ftp) workload: one long TCP download per client.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace pp::workload {

inline constexpr net::Port kFtpPort = 21;

// Serves one file per client; the size is registered out of band (standing
// in for the ftp control dialogue).
class FtpServer {
 public:
  explicit FtpServer(net::Node& node);

  void add_file(net::Ipv4Addr client, std::uint64_t bytes);

  std::uint64_t transfers_started() const { return started_; }

 private:
  net::Node& node_;
  transport::TcpServer server_;
  std::unordered_map<net::Ipv4Addr, std::uint64_t, net::Ipv4AddrHash> files_;
  std::uint64_t started_ = 0;
};

struct FtpClientStats {
  std::uint64_t bytes_received = 0;
  bool finished = false;
  sim::Time started_at;
  sim::Time finished_at;
  double transfer_seconds() const {
    return (finished_at - started_at).to_seconds();
  }
};

class FtpClient {
 public:
  FtpClient(net::Node& node, net::Ipv4Addr server);

  void download(sim::Time at);
  const FtpClientStats& stats() const { return stats_; }

 private:
  net::Node& node_;
  net::Ipv4Addr server_;
  std::unique_ptr<transport::TcpConnection> conn_;
  FtpClientStats stats_;
};

}  // namespace pp::workload

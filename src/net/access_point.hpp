// The wireless access point: bridges the proxy's wired link onto the
// shared medium (downlink) and forwards station frames upstream (uplink).
//
// Downlink frames pass through a FIFO queue whose service adds a base
// forwarding delay plus random jitter — the access-point delay variation
// that Section 3.3 of the paper compensates for on the clients.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/chunk.hpp"
#include "net/link.hpp"
#include "net/psm.hpp"
#include "net/wireless.hpp"
#include "obs/hooks.hpp"
#include "sim/simulator.hpp"

namespace pp::net {

struct AccessPointParams {
  sim::Duration base_delay = sim::Time::us(300);
  // Uniform jitter added to every forwarded frame.
  sim::Duration jitter_max = sim::Time::us(500);
  // Occasionally the AP stalls (CPU contention, management frames): with
  // probability p_spike an extra uniform [0, spike_max) delay is added.
  double p_spike = 0.02;
  sim::Duration spike_max = sim::Time::ms(6);
  // Caps the forwarding FIFO in wire bytes (it models the link budget) and
  // each PSM parked queue in payload bytes (application buffering — the
  // same convention as the proxy's queue_limit_bytes; see net/chunk.hpp).
  std::uint64_t queue_limit_bytes = 512 * 1024;
};

class AccessPoint : public PacketSink, public WirelessStation {
 public:
  AccessPoint(sim::Simulator& sim, WirelessMedium& medium,
              AccessPointParams params = {});

  // Where uplink (station -> wired) frames are forwarded.  Must be set
  // before any station transmits.
  void set_uplink_sink(PacketSink& sink) { uplink_ = &sink; }

  // PacketSink (wired side, downlink direction).
  void handle_packet(Packet pkt) override;
  // Batched downlink: one forwarding-queue admission, one service-delay
  // draw and one departure event for a whole burst chain, handed to the
  // medium as a single reservation.  Stalled and PSM-parked destinations
  // fall back to the per-frame path.
  void handle_burst(ChunkQueue burst) override;

  // WirelessStation (radio side).
  bool listening() const override { return true; }
  void deliver(Packet pkt, sim::Duration airtime) override;

  std::uint64_t downlink_dropped() const { return dropped_; }
  std::uint64_t downlink_forwarded() const { return forwarded_; }
  std::uint64_t backlog_bytes() const { return backlog_bytes_; }

  // Fault injection: while stalled, admitted downlink frames freeze in the
  // forwarding queue (still subject to the queue limit, still counted as
  // backlog so the conservation audit holds); un-stalling releases them in
  // FIFO order with fresh service delays.  Frames whose departure was
  // already scheduled before the stall still leave — a stall freezes the
  // queue head, it does not recall frames in service.
  void set_stalled(bool stalled);
  bool stalled() const { return stalled_; }
  std::uint64_t stalled_frames() const { return stalled_q_.size(); }

  // Publish drop/forward counters and the backlog depth gauge.
  void set_obs(obs::Hook hook);

  // -- 802.11 power-save mode (see net/psm.hpp) -----------------------------------
  // Begin broadcasting beacons every `interval`.  Frames destined to
  // stations registered via register_psm_station() are buffered and
  // released after the beacon that indicates them.
  void enable_psm(sim::Duration interval);
  void register_psm_station(Ipv4Addr ip);
  std::uint64_t beacons_sent() const { return beacons_sent_; }
  std::uint64_t psm_buffered_frames() const;

  // -- Association table (client churn) -------------------------------------------
  // A departing station's parked PSM frames are flushed to the drop
  // counter (so downlink conservation still holds) and its queue — hence
  // its TIM entry — disappears; a returning station that was registered
  // for PSM gets a fresh parked queue.  Both are no-ops for stations that
  // never registered, so non-PSM testbeds are unaffected.
  void associate(Ipv4Addr ip);
  void disassociate(Ipv4Addr ip);
  std::uint64_t assoc_flushed_frames() const { return assoc_flushed_; }

  // Invariant audit (see src/check/): downlink packet conservation —
  // in == forwarded + dropped + backlogged + PSM-parked.  Aborts via
  // PP_CHECK on violation.
  void audit() const;

 private:
  void send_beacon();
  void forward_downlink(Packet pkt);
  void dispatch_downlink(Packet pkt);
  void note_drop(const Packet& pkt);
  sim::Simulator& sim_;
  WirelessMedium& medium_;
  WirelessMedium::StationId radio_id_;
  AccessPointParams params_;
  PacketSink* uplink_ = nullptr;
  sim::Time last_departure_ = sim::Time::zero();
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t backlog_packets_ = 0;
  std::uint64_t downlink_in_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
  bool stalled_ = false;
  std::deque<Packet> stalled_q_;

  obs::Hook obs_;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_forwarded_ = nullptr;
  obs::TimeWeightedGauge* twg_backlog_ = nullptr;

  // PSM state.  Parked queues are ChunkQueues (the shared downlink queue
  // type): payload-byte admission via bytes(), O(1) depth for the TIM.
  // Nodes come from the AP's own pool — frames arriving in a burst chain
  // are re-wrapped at the parking boundary, which costs a node move, not a
  // payload copy.
  std::shared_ptr<ChunkPool> chunk_pool_ = std::make_shared<ChunkPool>();
  bool psm_enabled_ = false;
  sim::Duration beacon_interval_;
  std::uint64_t beacon_seq_ = 0;
  std::uint64_t beacons_sent_ = 0;
  std::uint64_t assoc_flushed_ = 0;  // PSM frames dropped at disassociation
  std::unordered_map<Ipv4Addr, ChunkQueue, Ipv4AddrHash> psm_queues_;
  // Stations ever registered for PSM, so associate() knows whether to
  // re-create a parked queue (disassociation erases the queue itself).
  std::unordered_map<Ipv4Addr, bool, Ipv4AddrHash> psm_registered_;
  sim::EventHandle beacon_timer_;
};

}  // namespace pp::net

// Refcounted chunk queues — the one buffer type on the downlink data path
// (lighttpd's chunk.c / network_write.c idiom, adapted to datagrams).
//
// A datagram entering the splice is wrapped once in a ChunkDatagram and
// from then on moves by reference: the proxy's per-client queue, the burst
// chain handed down the wire, the AP's PSM parked queues and the medium's
// in-flight reservation all hold Chunk *views* (offset/length into the
// datagram's payload) linked into intrusive chains.  Queued → snapshotted →
// scheduled → bursted → traced, without re-copying or re-enqueueing the
// packet per hop.  Per-datagram metadata (arrival time via pkt.sent_at,
// flow addressing, the end-of-burst mark) rides along: delay accounting,
// deadline slack and the conservation auditors read it off the view.
//
// Byte convention: ChunkQueue::bytes() counts *payload* bytes (the view
// lengths).  Every queue_limit_bytes admission check on the data path —
// proxy per-client queues and the AP's PSM parking — compares payload
// bytes against the limit, and the queue_depth gauges publish the same
// number.  Wire-level queues (Channel, the AP forwarding FIFO) stay on
// wire_size(): they model link budgets, not application buffering.
//
// Nodes come from a ChunkPool slab allocator.  Queues hold the pool by
// shared_ptr because burst chains are captured into event callbacks: a
// chain destroyed after its owning component (testbed teardown order) must
// still be able to return its nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace pp::net {

// The underlying refcounted datagram.  `refs` counts the Chunk views alive
// over it; the packet's storage is released when the last view goes.
struct ChunkDatagram {
  Packet pkt;
  std::uint32_t refs = 0;
};

// One view over [offset, offset+length) of a datagram's payload.  A full
// view has offset 0 and length == pkt.payload; split_front() produces
// partial views when a burst boundary lands inside a datagram.  The mark
// flag lives on the view, not the datagram: only the copy that terminates
// a burst carries it.
struct Chunk {
  ChunkDatagram* data = nullptr;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  bool marked = false;
  Chunk* next = nullptr;
};

// Wire bytes of one view: its payload share plus IP + transport headers
// (mirrors Packet::wire_size() for the materialized view).
inline std::uint32_t chunk_wire_bytes(const Chunk& c) {
  return c.length + 20u + (c.data->pkt.proto == Protocol::Tcp ? 20u : 8u);
}

// Slab allocator for Chunk and ChunkDatagram nodes.  Free lists are plain
// vectors (reserved at slab growth), so steady-state take/give never
// touches the heap.
class ChunkPool {
 public:
  ChunkPool() = default;
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  Chunk* take_chunk();
  void give_chunk(Chunk* c);
  ChunkDatagram* take_datagram();
  void give_datagram(ChunkDatagram* d);

  // Slab growth count — a flat value after warmup is the zero-alloc
  // steady-state evidence the counting-allocator test asserts on.
  std::uint64_t slab_allocs() const { return slab_allocs_; }
  std::size_t chunk_slots() const { return chunk_slabs_.size() * kSlab; }

 private:
  static constexpr std::size_t kSlab = 256;

  std::vector<std::unique_ptr<Chunk[]>> chunk_slabs_;
  std::vector<std::unique_ptr<ChunkDatagram[]>> dgram_slabs_;
  std::vector<Chunk*> free_chunks_;
  std::vector<ChunkDatagram*> free_dgrams_;
  std::uint64_t slab_allocs_ = 0;
};

// An intrusive chain of Chunk views with O(1) push/pop/splice and running
// packet/byte totals (so demand snapshots are O(1)).  Move-only, 48 bytes:
// it is passed by value through the burst path and fits the simulator's
// inline event-callback storage alongside its captures.
class ChunkQueue {
 public:
  ChunkQueue() = default;
  explicit ChunkQueue(std::shared_ptr<ChunkPool> pool)
      : pool_{std::move(pool)} {}
  ~ChunkQueue() { clear(); }

  ChunkQueue(const ChunkQueue&) = delete;
  ChunkQueue& operator=(const ChunkQueue&) = delete;
  ChunkQueue(ChunkQueue&& o) noexcept;
  ChunkQueue& operator=(ChunkQueue&& o) noexcept;

  void set_pool(std::shared_ptr<ChunkPool> pool) { pool_ = std::move(pool); }
  const std::shared_ptr<ChunkPool>& pool() const { return pool_; }

  bool empty() const { return head_ == nullptr; }
  std::size_t packets() const { return count_; }
  // Payload bytes queued (see the byte-convention note above).
  std::uint64_t bytes() const { return bytes_; }
  Chunk* front() { return head_; }
  const Chunk* front() const { return head_; }
  Chunk* back() { return tail_; }
  const Chunk* back() const { return tail_; }

  // Wrap a datagram in a fresh full-length view at the tail.
  void push(Packet pkt);
  // Materialize the front view as a Packet and release it.  A sole full
  // view moves the packet out (no copy, no refcount churn); a shared or
  // partial view copies with payload = view length.  The view's mark is
  // OR-ed onto the packet.
  Packet pop_packet();
  // Release the front view without materializing it.
  void drop_front();
  // Move the front chunk node to the tail of `dst` — the per-hop handoff;
  // the datagram itself never moves.  Queues must share a pool.
  void pop_front_to(ChunkQueue& dst);
  // Splice the whole chain onto the tail of `dst` in O(1).
  void move_all_to(ChunkQueue& dst);
  // Split the front view at `bytes` (0 < bytes < front length): the front
  // chunk shrinks to [offset, offset+bytes) and a second view over the
  // remainder is inserted right after it, bumping the datagram's refcount.
  // Used when a burst boundary lands inside a datagram.
  void split_front(std::uint32_t bytes);
  // Set the end-of-burst mark on the tail view.
  void mark_tail();
  // Release every view.
  void clear();

  template <typename F>
  void for_each(F&& f) const {
    for (const Chunk* c = head_; c != nullptr; c = c->next) f(*c);
  }

  // Structural invariants: totals match the chain, every view is in range
  // and referenced.  Aborts via PP_CHECK on violation.
  void audit() const;

 private:
  void release(Chunk* c);

  std::shared_ptr<ChunkPool> pool_;
  Chunk* head_ = nullptr;
  Chunk* tail_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace pp::net
